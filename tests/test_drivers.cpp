// Structural properties of the plan drivers (goto_common): op field
// integrity, barrier arities per parallelization method, buffer reuse,
// and the umbrella header compiling cleanly (this TU includes it).
#include <gtest/gtest.h>

#include "src/libs/goto_common.h"
#include "src/smmkit.h"
#include "src/threading/partition.h"

namespace smm::libs {
namespace {

TEST(UmbrellaHeader, EverythingVisible) {
  // Touch one symbol from each namespace the umbrella promises.
  EXPECT_GT(model::cmr(8, 12), 0.0);
  EXPECT_EQ(sim::phytium2000p().cores, 64);
  EXPECT_EQ(openblas_like().traits().unroll, 8);
  EXPECT_EQ(core::reference_smm().traits().name, "smm-ref");
}

TEST(PackOpFactories, ChunkedFieldsConsistent) {
  TileConfig tiles;
  tiles.family = "openblas";
  tiles.mr = 16;
  tiles.nr = 4;
  tiles.edge = EdgeStrategy::kEdgeKernels;
  const auto m_list = chunk_dim(43, 16, tiles.edge, {16, 8, 4, 2, 1});
  const auto offsets = chunk_elem_offsets(m_list, /*kc=*/10);
  const plan::PackAOp op = make_pack_a_op(tiles, m_list, offsets, 0,
                                          m_list.size(), /*buffer=*/0,
                                          /*ii=*/5, /*kk=*/3, /*kc_eff=*/10);
  EXPECT_EQ(op.i0, 5);
  EXPECT_EQ(op.k0, 3);
  EXPECT_EQ(op.mc, 43);
  EXPECT_FALSE(op.pad);
  index_t total = 0;
  for (const index_t c : op.chunks) total += c;
  EXPECT_EQ(total, 43);
  // Subrange: offsets anchor to the first chunk.
  const plan::PackAOp sub = make_pack_a_op(tiles, m_list, offsets, 1, 3, 0,
                                           5, 3, 10);
  EXPECT_EQ(sub.dst_offset, offsets[1]);
  EXPECT_EQ(sub.i0, 5 + m_list[1].offset);
}

TEST(PackOpFactories, PaddedFieldsConsistent) {
  TileConfig tiles;
  tiles.family = "blis";
  tiles.mr = 8;
  tiles.nr = 12;
  tiles.edge = EdgeStrategy::kPadding;
  const auto n_list = chunk_dim(30, 12, tiles.edge, {});
  const auto offsets = chunk_elem_offsets(n_list, 7);
  const plan::PackBOp op = make_pack_b_op(tiles, n_list, offsets, 0,
                                          n_list.size(), 0, 0, 0, 7);
  EXPECT_TRUE(op.pad);
  EXPECT_TRUE(op.chunks.empty());
  EXPECT_EQ(op.nc, 30);  // useful extent; the packer zero-fills to 36
}

TEST(GridDriver, MSplitUsesOneBarrierGroup) {
  plan::GemmPlan plan;
  plan.strategy = "grid";
  plan.shape = {128, 64, 64};
  plan.scalar = plan::ScalarType::kF32;
  GotoConfig cfg;
  cfg.tiles.family = "openblas";
  cfg.tiles.mr = 16;
  cfg.tiles.nr = 4;
  cfg.tiles.m_chunks = {16, 8, 4, 2, 1};
  build_grid_parallel(plan, cfg, 8, par::Grid2D{8, 1});
  plan.validate();
  ASSERT_EQ(plan.barriers.size(), 1u);
  EXPECT_EQ(plan.barriers[0].participants, 8);
  // Every thread's rows are disjoint and tile-aligned except the tail.
  const plan::PlanStats stats = plan::analyze(plan);
  EXPECT_DOUBLE_EQ(stats.useful_flops, plan.shape.flops());
}

TEST(GridDriver, SquareGridMakesColumnGroups) {
  plan::GemmPlan plan;
  plan.strategy = "grid";
  plan.shape = {128, 128, 64};
  plan.scalar = plan::ScalarType::kF32;
  GotoConfig cfg;
  cfg.tiles.family = "openblas";
  cfg.tiles.mr = 16;
  cfg.tiles.nr = 4;
  cfg.tiles.m_chunks = {16, 8, 4, 2, 1};
  build_grid_parallel(plan, cfg, 4, par::Grid2D{2, 2});
  plan.validate();
  ASSERT_EQ(plan.barriers.size(), 2u);  // one per column group
  for (const auto& bar : plan.barriers) EXPECT_EQ(bar.participants, 2);
}

TEST(WaysDriver, BarrierGroupsMatchWays) {
  plan::GemmPlan plan;
  plan.strategy = "ways";
  plan.shape = {240, 480, 128};
  plan.scalar = plan::ScalarType::kF32;
  GotoConfig cfg;
  cfg.tiles.family = "blis";
  cfg.tiles.mr = 8;
  cfg.tiles.nr = 12;
  cfg.tiles.edge = EdgeStrategy::kPadding;
  cfg.mc = 120;
  cfg.nc = 240;
  par::Ways ways{2, 2, 2, 1};  // jc=2, ic=2, jr=2
  build_ways_parallel(plan, cfg, ways);
  plan.validate();
  // 2 B barriers (one per jc group, ic*jr*ir = 4 participants) and
  // 4 A barriers (one per (jc, ic), jr*ir = 2 participants).
  int b_groups = 0, a_groups = 0;
  for (const auto& bar : plan.barriers) {
    if (bar.participants == 4) ++b_groups;
    if (bar.participants == 2) ++a_groups;
  }
  EXPECT_EQ(b_groups, 2);
  EXPECT_EQ(a_groups, 4);
}

TEST(WaysDriver, RequiresPacking) {
  plan::GemmPlan plan;
  plan.shape = {64, 64, 64};
  plan.scalar = plan::ScalarType::kF32;
  GotoConfig cfg;
  cfg.pack_a = false;
  EXPECT_THROW(build_ways_parallel(plan, cfg, par::Ways{2, 1, 1, 1}),
               Error);
}

TEST(SingleThreadDriver, EigenOrderBlocksFromM) {
  // block_from_m changes the op order: the first pack must be an A pack.
  plan::GemmPlan plan;
  plan.strategy = "st";
  plan.shape = {300, 300, 300};
  plan.scalar = plan::ScalarType::kF32;
  GotoConfig cfg;
  cfg.tiles.family = "eigen";
  cfg.tiles.mr = 12;
  cfg.tiles.nr = 4;
  cfg.tiles.m_chunks = {12, 8, 4, 2, 1};
  cfg.mc = 192;
  cfg.kc = 256;
  cfg.nc = 128;
  cfg.block_from_m = true;
  build_singlethread(plan, cfg);
  plan.validate();
  ASSERT_FALSE(plan.thread_ops[0].empty());
  EXPECT_TRUE(
      std::holds_alternative<plan::PackAOp>(plan.thread_ops[0].front()));
}

}  // namespace
}  // namespace smm::libs
