// Reference SMM (Section IV): packing heuristic, kernel/parallel
// selection, and numerical correctness of every option combination.
#include <gtest/gtest.h>

#include <limits>

#include "src/core/kernel_select.h"
#include "src/core/parallel_select.h"
#include "src/core/plan_builder.h"
#include "src/plan/native_executor.h"
#include "src/core/smm.h"
#include "tests/test_helpers.h"

namespace smm::core {
namespace {

TEST(DecidePacking, AutoFollowsP2C) {
  SmmOptions opt;
  // Small M: packing B cannot amortize (Section III-A).
  const PackingDecision small_m = decide_packing({8, 2048, 2048}, 4, opt);
  EXPECT_FALSE(small_m.pack_b);
  EXPECT_TRUE(small_m.edge_pack_b);
  // Large M *and* a B that spills past L2: packing pays.
  const PackingDecision big_m = decide_packing({512, 2048, 256}, 4, opt);
  EXPECT_TRUE(big_m.pack_b);
  EXPECT_FALSE(big_m.edge_pack_b);
  // SMM-sized B (fits the L2 outright) is never worth copying, even with
  // plenty of reuse — the truly "small" regime.
  EXPECT_FALSE(decide_packing({512, 200, 200}, 4, opt).pack_b);
  // SMM-sized A never packs; very large A does.
  EXPECT_FALSE(big_m.pack_a);
  EXPECT_TRUE(decide_packing({2048, 64, 2048}, 4, opt).pack_a);
}

TEST(DecidePacking, OverridesRespected) {
  SmmOptions opt;
  opt.pack_b = SmmOptions::Packing::kAlways;
  EXPECT_TRUE(decide_packing({8, 200, 200}, 4, opt).pack_b);
  opt.pack_b = SmmOptions::Packing::kNever;
  EXPECT_FALSE(decide_packing({512, 2048, 2048}, 4, opt).pack_b);
  opt.edge_pack = false;
  EXPECT_FALSE(decide_packing({8, 201, 200}, 4, opt).edge_pack_b);
}

TEST(KernelSelect, MultiplesPreferHighCmrCoveringTile) {
  // M=64 N=64: both 16x4 and 8x8 cover exactly; 8x8 wins on CMR (Eq. 5).
  const KernelChoice c = choose_main_tile({64, 64, 64});
  EXPECT_EQ(c.mr, 8);
  EXPECT_EQ(c.nr, 8);
  // 16x4 must win when N is not a multiple of 8.
  const KernelChoice c2 = choose_main_tile({64, 4, 64});
  EXPECT_EQ(c2.nr, 4);
}

TEST(KernelSelect, TwelveRowsPick12x4) {
  const KernelChoice c = choose_main_tile({12, 48, 48});
  EXPECT_EQ(c.mr, 12);
}

TEST(KernelSelect, TinyMAvoidsTallTile) {
  const KernelChoice c = choose_main_tile({4, 64, 64});
  EXPECT_LE(c.mr, 8);
}

TEST(KernelSelect, ScoreDiscountsEdges) {
  EXPECT_GT(tile_score({64, 64, 64}, 16, 4),
            tile_score({65, 64, 64}, 16, 4));
}

TEST(ParallelSelect, CapsThreadsByTiles) {
  // 16x16: 1x4 tiles of 16x4 -> 4 tiles -> 1 thread at min 4 tiles each.
  const ParallelChoice c = choose_parallel({16, 16, 64}, 64, 16, 4, 240,
                                           480);
  EXPECT_EQ(c.nthreads, 1);
  // Big problem: full 64 threads.
  const ParallelChoice big =
      choose_parallel({1024, 1024, 256}, 64, 16, 4, 240, 480);
  EXPECT_EQ(big.nthreads, 64);
}

TEST(ParallelSelect, PowerOfTwo) {
  const ParallelChoice c =
      choose_parallel({256, 256, 64}, 48, 16, 4, 240, 480);
  EXPECT_EQ(c.nthreads & (c.nthreads - 1), 0);
  EXPECT_LE(c.nthreads, 48);
}

// Every packing-option combination must stay numerically correct.
class SmmOptionsCorrectness
    : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(SmmOptionsCorrectness, MatchesNaive) {
  const auto [pa, pb, edge] = GetParam();
  SmmOptions opt;
  opt.pack_a = static_cast<SmmOptions::Packing>(pa);
  opt.pack_b = static_cast<SmmOptions::Packing>(pb);
  opt.edge_pack = edge;
  for (const auto& [m, n, k] :
       {std::tuple<index_t, index_t, index_t>{33, 45, 29},
        std::tuple<index_t, index_t, index_t>{64, 61, 64},
        std::tuple<index_t, index_t, index_t>{7, 130, 40}}) {
    test::GemmProblem<float> prob(m, n, k, /*seed=*/pa * 100 + pb * 10 + m);
    prob.reference(1.25f, -0.5f);
    smm_gemm(1.25f, prob.a.cview(), prob.b.cview(), -0.5f, prob.c.view(),
             /*nthreads=*/1, opt);
    EXPECT_TRUE(prob.check(k))
        << "pack_a=" << pa << " pack_b=" << pb << " edge=" << edge << " "
        << m << "x" << n << "x" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Options, SmmOptionsCorrectness,
    ::testing::Combine(::testing::Values(0, 1, 2), ::testing::Values(0, 1, 2),
                       ::testing::Bool()),
    [](const auto& info) {
      return "pa" + std::to_string(std::get<0>(info.param)) + "_pb" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "_edge" : "_noedge");
    });

TEST(SmmGemm, AdaptiveVsPinnedKernelBothCorrect) {
  SmmOptions pinned;
  pinned.adaptive_kernel = false;
  test::GemmProblem<float> prob(50, 50, 50, /*seed=*/8);
  prob.reference(1.0f, 0.0f);
  smm_gemm(1.0f, prob.a.cview(), prob.b.cview(), 0.0f, prob.c.view(), 1,
           pinned);
  EXPECT_TRUE(prob.check(50));
}

TEST(SmmGemm, ParallelAutoCap) {
  // Requesting 64 threads on a small problem must not crash or spawn an
  // unbalanced plan; result stays correct.
  test::GemmProblem<float> prob(48, 48, 48, /*seed=*/21);
  prob.reference(1.0f, 1.0f);
  smm_gemm(1.0f, prob.a.cview(), prob.b.cview(), 1.0f, prob.c.view(),
           /*nthreads=*/64);
  EXPECT_TRUE(prob.check(48));
}

TEST(ParallelSelect, DeepKShapesSplitK) {
  // (8, 8, 4096): 4 tiles of 16x4 -> tile parallelism is dead, but K can
  // feed 16 slices of >= 256.
  const ParallelChoice c =
      choose_parallel({8, 8, 4096}, 64, 16, 4, 240, 480);
  EXPECT_GT(c.k_parts, 1);
  EXPECT_EQ(c.nthreads, c.k_parts);
  // Plenty of tiles: no K split.
  const ParallelChoice wide =
      choose_parallel({1024, 1024, 4096}, 64, 16, 4, 240, 480);
  EXPECT_EQ(wide.k_parts, 1);
  // Deep K but tiny budget: stays sequential.
  const ParallelChoice seq = choose_parallel({8, 8, 4096}, 1, 16, 4, 240,
                                             480);
  EXPECT_EQ(seq.nthreads, 1);
}

class KSplitCorrectness : public ::testing::TestWithParam<int> {};

TEST_P(KSplitCorrectness, MatchesNaive) {
  const int parts = GetParam();
  BuildSpec spec;
  spec.mr = 16;
  spec.nr = 4;
  spec.k_parts = parts;
  spec.nthreads = parts;
  for (const auto& [m, n, k] :
       {std::tuple<index_t, index_t, index_t>{8, 8, 777},
        std::tuple<index_t, index_t, index_t>{17, 5, 1024},
        std::tuple<index_t, index_t, index_t>{3, 33, 512}}) {
    plan::GemmPlan p;
    p.strategy = "k-split";
    p.shape = {m, n, k};
    p.scalar = plan::ScalarType::kF32;
    build_smm_plan(p, spec);
    p.validate();
    EXPECT_EQ(p.nthreads, parts);
    test::GemmProblem<float> prob(m, n, k, /*seed=*/parts * 17 + m);
    prob.reference(1.5f, -0.25f);
    plan::execute_plan(p, 1.5f, prob.a.cview(), prob.b.cview(), -0.25f,
                       prob.c.view());
    EXPECT_TRUE(prob.check(k)) << parts << " parts, " << m << "x" << n
                               << "x" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Parts, KSplitCorrectness,
                         ::testing::Values(2, 4, 8),
                         [](const auto& info) {
                           return "p" + std::to_string(info.param);
                         });

TEST(KSplit, BetaZeroDoesNotReadC) {
  BuildSpec spec;
  spec.k_parts = 4;
  spec.nthreads = 4;
  plan::GemmPlan p;
  p.strategy = "k-split";
  p.shape = {8, 8, 512};
  p.scalar = plan::ScalarType::kF32;
  build_smm_plan(p, spec);
  test::GemmProblem<float> prob(8, 8, 512, /*seed=*/9);
  prob.c.fill(std::numeric_limits<float>::quiet_NaN());
  prob.c_expected.fill(0.0f);
  prob.reference(1.0f, 0.0f);
  plan::execute_plan(p, 1.0f, prob.a.cview(), prob.b.cview(), 0.0f,
                     prob.c.view());
  EXPECT_TRUE(prob.check(512));
}

TEST(KSplit, EndToEndThroughSmmGemm) {
  // The auto path must route (8, 8, 4096) x 8 threads through the K
  // split and stay correct.
  test::GemmProblem<float> prob(8, 8, 4096, /*seed=*/77);
  prob.reference(1.0f, 1.0f);
  smm_gemm(1.0f, prob.a.cview(), prob.b.cview(), 1.0f, prob.c.view(),
           /*nthreads=*/8);
  EXPECT_TRUE(prob.check(4096));
}

TEST(SmmGemm, ThreadCapOptionHonoured) {
  SmmOptions opt;
  opt.thread_cap = 2;
  const auto strategy = make_reference_smm(opt);
  const plan::GemmPlan p = strategy->make_plan(
      {1024, 1024, 128}, plan::ScalarType::kF32, 64);
  EXPECT_LE(p.nthreads, 2);
}

}  // namespace
}  // namespace smm::core
