// Cache simulator and residency analyzer.
#include <gtest/gtest.h>

#include "src/common/error.h"
#include "src/sim/cache/cache_sim.h"
#include "src/sim/cache/residency.h"
#include "src/sim/machine.h"

namespace smm::sim {
namespace {

CacheLevelConfig tiny_cache(ReplacementPolicy policy) {
  return CacheLevelConfig{.size_bytes = 1024,
                          .ways = 2,
                          .line_bytes = 64,
                          .policy = policy,
                          .shared_by_cores = 1};
}

TEST(CacheSim, ColdMissThenHit) {
  CacheSim cache(tiny_cache(ReplacementPolicy::kLru));
  EXPECT_EQ(cache.access(0), AccessResult::kMiss);
  EXPECT_EQ(cache.access(4), AccessResult::kHit);   // same line
  EXPECT_EQ(cache.access(63), AccessResult::kHit);
  EXPECT_EQ(cache.access(64), AccessResult::kMiss);  // next line
  EXPECT_EQ(cache.hits(), 2);
  EXPECT_EQ(cache.misses(), 2);
}

TEST(CacheSim, LruEvictsOldest) {
  // 2-way, 8 sets: three lines mapping to set 0 are 0, 1024, 2048.
  CacheSim cache(tiny_cache(ReplacementPolicy::kLru));
  cache.access(0);
  cache.access(1024);
  cache.access(0);     // refresh line 0
  cache.access(2048);  // evicts 1024 (LRU)
  EXPECT_EQ(cache.access(0), AccessResult::kHit);
  EXPECT_EQ(cache.access(1024), AccessResult::kMiss);
}

TEST(CacheSim, FifoIgnoresRecency) {
  CacheSim cache(tiny_cache(ReplacementPolicy::kFifo));
  cache.access(0);
  cache.access(1024);
  cache.access(0);     // does NOT refresh under FIFO
  cache.access(2048);  // evicts 0 (oldest fill)
  EXPECT_EQ(cache.access(0), AccessResult::kMiss);
}

TEST(CacheSim, WorkingSetWithinCapacityAllHits) {
  const auto cfg = CacheLevelConfig{.size_bytes = 32 * 1024,
                                    .ways = 8,
                                    .line_bytes = 64,
                                    .policy = ReplacementPolicy::kLru,
                                    .shared_by_cores = 1};
  CacheSim cache(cfg);
  // Touch 16 KB twice: second sweep must be all hits under LRU.
  for (std::uint64_t a = 0; a < 16 * 1024; a += 64) cache.access(a);
  const index_t misses_first = cache.misses();
  for (std::uint64_t a = 0; a < 16 * 1024; a += 64) cache.access(a);
  EXPECT_EQ(cache.misses(), misses_first);
}

TEST(CacheSim, RandomReplacementHurtsAtCapacity) {
  // Sweep slightly more than capacity repeatedly: LRU thrashes fully;
  // pseudo-random keeps some lines and wins — and is *worse* than LRU
  // when the working set fits with reuse-friendly patterns. Here we pin
  // the paper-relevant property: policies differ measurably.
  const auto lru_cfg = tiny_cache(ReplacementPolicy::kLru);
  const auto rnd_cfg = tiny_cache(ReplacementPolicy::kPseudoRandom);
  CacheSim lru(lru_cfg), rnd(rnd_cfg);
  // Cyclic sweep of 2x capacity: every set oversubscribed, LRU thrashes.
  for (int rep = 0; rep < 50; ++rep)
    for (std::uint64_t a = 0; a < 2048 + 64; a += 64) {
      lru.access(a);
      rnd.access(a);
    }
  // Cyclic sweep one line over capacity: LRU misses everything.
  EXPECT_GT(lru.miss_rate(), 0.95);
  EXPECT_LT(rnd.miss_rate(), lru.miss_rate());
}

TEST(CacheSim, DeterministicWithSeed) {
  CacheSim a(tiny_cache(ReplacementPolicy::kPseudoRandom), 7);
  CacheSim b(tiny_cache(ReplacementPolicy::kPseudoRandom), 7);
  for (std::uint64_t addr = 0; addr < 64 * 1024; addr += 64) {
    EXPECT_EQ(a.access(addr % 4096), b.access(addr % 4096));
  }
}

TEST(CacheSim, BadGeometryThrows) {
  CacheLevelConfig bad = tiny_cache(ReplacementPolicy::kLru);
  bad.size_bytes = 1000;  // not sets*ways*line
  EXPECT_THROW(CacheSim cache(bad), smm::Error);
}

TEST(CacheHierarchy, LevelsReported) {
  CacheHierarchy h(tiny_cache(ReplacementPolicy::kLru),
                   CacheLevelConfig{.size_bytes = 8192,
                                    .ways = 4,
                                    .line_bytes = 64,
                                    .policy = ReplacementPolicy::kLru,
                                    .shared_by_cores = 1});
  EXPECT_EQ(h.access(0), 3);  // cold: memory
  EXPECT_EQ(h.access(0), 1);  // L1 hit
  // Evict from L1 by sweeping past its capacity; line 0 should be in L2.
  for (std::uint64_t a = 64; a <= 2048; a += 64) h.access(a);
  EXPECT_EQ(h.access(0), 2);
}

// ---- Residency analyzer ----------------------------------------------------

class ResidencyTest : public ::testing::Test {
 protected:
  MachineConfig machine_ = phytium2000p();
  ResidencyAnalyzer analyzer_{machine_};

  KernelContext small_smm() const {
    KernelContext ctx;
    ctx.kc = 64;
    ctx.mr = 16;
    ctx.nr = 4;
    ctx.i_iters = 4;
    ctx.j_iters = 16;
    ctx.a_block_elems = 64 * 64;
    ctx.b_block_elems = 64 * 64;
    ctx.c_block_elems = 64 * 64;
    return ctx;
  }
};

TEST_F(ResidencyTest, SmallProblemAllL1) {
  const ResidencyResult r = analyzer_.analyze(small_smm(), 4);
  EXPECT_EQ(r.a, MemLevel::kL1);
  EXPECT_EQ(r.b, MemLevel::kL1);
  EXPECT_EQ(r.c, MemLevel::kL1);
  EXPECT_DOUBLE_EQ(r.latency.a, machine_.core.lat_l1);
}

TEST_F(ResidencyTest, BigABlockStreamsFromL2) {
  KernelContext ctx = small_smm();
  ctx.a_block_elems = 128 * 256;  // 128 KB > L1
  const ResidencyResult r = analyzer_.analyze(ctx, 4);
  EXPECT_EQ(r.a, MemLevel::kL2);
  EXPECT_GT(r.latency.a, machine_.core.lat_l1);
  EXPECT_LT(r.latency.a, machine_.core.lat_l2);  // prefetch hides most
}

TEST_F(ResidencyTest, LowReuseBStreams) {
  KernelContext ctx = small_smm();
  ctx.i_iters = 1;  // tiny M: each B sliver used once
  ctx.b_block_elems = 512 * 512;
  const ResidencyResult r = analyzer_.analyze(ctx, 4);
  EXPECT_NE(r.b, MemLevel::kL1);
}

TEST_F(ResidencyTest, CrossPanelGroupGoesRemote) {
  KernelContext ctx = small_smm();
  ctx.i_iters = 1;
  ctx.group_b_threads = 16;  // spans 4 L2 slices
  const ResidencyResult r = analyzer_.analyze(ctx, 4);
  EXPECT_EQ(r.b, MemLevel::kL2Remote);
}

TEST_F(ResidencyTest, SharingDegradesL2) {
  const double alone = analyzer_.level_latency(MemLevel::kL2, 1);
  const double crowded = analyzer_.level_latency(MemLevel::kL2, 4);
  EXPECT_GT(crowded, alone);
}

TEST_F(ResidencyTest, StridedBNotPrefetched) {
  KernelContext ctx = small_smm();
  ctx.i_iters = 1;
  ctx.b_block_elems = 512 * 512;  // beyond L1, streams
  KernelContext strided = ctx;
  strided.b_strided = true;
  const double smooth = analyzer_.analyze(ctx, 4).latency.b;
  const double rough = analyzer_.analyze(strided, 4).latency.b;
  EXPECT_GT(rough, smooth);
}

}  // namespace
}  // namespace smm::sim
