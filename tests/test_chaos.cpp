// Runtime-hardening chaos tests (DESIGN.md §10): the watchdog detects a
// deliberately hung pool worker, quarantines and rebuilds the pool; every
// memory-pressure injection site degrades instead of throwing out of
// smm_gemm; the guarded executor treats pool-class faults as rebuildable;
// and a short concurrent soak drives mixed traffic while the fault
// scheduler cycles every injection site — no hang, no crash, no
// unverified result. The 60-second version of the soak is
// bench/chaos_soak; this file keeps each case seconds-short so tier-1
// stays fast.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/common/error.h"
#include "src/core/batched.h"
#include "src/core/plan_builder.h"
#include "src/core/plan_cache.h"
#include "src/core/smm.h"
#include "src/libs/naive.h"
#include "src/plan/native_executor.h"
#include "src/robust/fault_injection.h"
#include "src/robust/guarded_executor.h"
#include "src/robust/health.h"
#include "src/threading/partition.h"
#include "src/threading/thread_pool.h"
#include "src/threading/worker_pool.h"
#include "tests/test_helpers.h"

namespace smm {
namespace {

using robust::FaultInjector;
using robust::FaultSite;
using robust::FaultSpec;
using robust::GuardedExecutor;
using robust::GuardOptions;
using robust::Outcome;
using robust::RunReport;
using robust::ScopedFault;

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::instance().disarm_all();
    robust::reset_injected_hangs();
    default_timeout_ = par::WorkerPool::instance().watchdog_timeout_ms();
    heal_pool();
  }

  void TearDown() override {
    FaultInjector::instance().disarm_all();
    // Free anything a test left parked, then re-arm blocking for the
    // next case.
    robust::cancel_injected_hangs();
    robust::reset_injected_hangs();
    par::WorkerPool::instance().set_watchdog_timeout_ms(default_timeout_);
    heal_pool();
  }

  /// Two clean pooled regions: a quarantined pool rebuilds on the first
  /// (served via spawn fallback) and is parked-and-ready again by the
  /// second, so no test inherits a poisoned roster.
  static void heal_pool() {
    for (int i = 0; i < 2; ++i) par::run_parallel(2, [](int) {});
  }

  long default_timeout_ = 0;
};

// ---- watchdog + quarantine -------------------------------------------------

TEST_F(ChaosTest, WatchdogDetectsHungWorkerQuarantinesAndRecovers) {
  auto& pool = par::WorkerPool::instance();
  const auto health_before = robust::health().snapshot();
  const auto stats_before = pool.stats();
  pool.set_watchdog_timeout_ms(150);

  {
    ScopedFault hang(FaultSite::kWorkerHang,
                     {.fire_after = 0, .max_fires = 1});
    try {
      par::run_parallel(4, [](int) {});
      FAIL() << "a hung worker did not fail the region";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kPoolTimeout) << e.what();
    }
    EXPECT_TRUE(pool.quarantined());
  }

  const auto health_mid = robust::health().snapshot();
  EXPECT_GE(health_mid.pool_watchdog_timeouts,
            health_before.pool_watchdog_timeouts + 1);
  EXPECT_GE(health_mid.pool_quarantines,
            health_before.pool_quarantines + 1);

  // Recovery: the quarantined pool declines one region (served by the
  // spawn fallback while the fresh roster comes up), then serves again.
  robust::reset_injected_hangs();
  std::atomic<int> ran{0};
  par::run_parallel(4, [&](int) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 4);
  EXPECT_FALSE(pool.quarantined());
  par::run_parallel(4, [&](int) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 8);

  const auto stats_after = pool.stats();
  EXPECT_GE(stats_after.watchdog_timeouts,
            stats_before.watchdog_timeouts + 1);
  EXPECT_GE(stats_after.quarantines, stats_before.quarantines + 1);
  EXPECT_GE(stats_after.rebuilds, stats_before.rebuilds + 1);
  EXPECT_GE(robust::health().snapshot().pool_rebuilds,
            health_before.pool_rebuilds + 1);

  // The recovered pool computes correctly.
  test::GemmProblem<float> prob(96, 64, 48, 0xD06);
  prob.reference(1.0f, 1.0f);
  core::smm_gemm(1.0f, prob.a.cview(), prob.b.cview(), 1.0f, prob.c.view(),
                 4);
  EXPECT_TRUE(prob.check(48));
}

TEST_F(ChaosTest, ZeroTimeoutDisablesTheWatchdog) {
  auto& pool = par::WorkerPool::instance();
  const auto before = pool.stats();
  pool.set_watchdog_timeout_ms(0);
  // A region far slower than any armed deadline would be: with the
  // watchdog off it must complete untouched.
  par::run_parallel(4, [](int) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  });
  const auto after = pool.stats();
  EXPECT_EQ(after.watchdog_timeouts, before.watchdog_timeouts);
  EXPECT_EQ(after.quarantines, before.quarantines);
  EXPECT_FALSE(pool.quarantined());
}

TEST_F(ChaosTest, SpawnFailureFailsTheCallInsteadOfTerminating) {
  const auto before = robust::health().snapshot();
  ScopedFault fault(FaultSite::kPoolSpawnFail,
                    {.fire_after = 0, .max_fires = 16});
  std::atomic<int> ran{0};
  try {
    // Wider than any roster a prior case grew: the pool must try (and
    // fail) to grow, decline, and the spawn fallback must then fail the
    // unspawned tids instead of std::terminate-ing on a half-built
    // thread vector.
    par::run_parallel(8, [&](int) { ran.fetch_add(1); });
    FAIL() << "spawn failure did not fail the region";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kPoolSpawnFail) << e.what();
  }
  const auto after = robust::health().snapshot();
  EXPECT_GE(after.pool_spawn_failures, before.pool_spawn_failures + 1);
}

// ---- guarded executor x pool faults ----------------------------------------

TEST_F(ChaosTest, GuardedExecutorRebuildsSerialOnPoolFault) {
  // The shape must actually parallelize or no pool fault can fire.
  constexpr GemmShape kShape{256, 256, 256};
  ASSERT_GT(core::reference_smm()
                .make_plan(kShape, plan::ScalarType::kF32, 4)
                .nthreads,
            1);

  par::WorkerPool::instance().set_watchdog_timeout_ms(150);
  GuardedExecutor guard;
  const auto before = robust::health().snapshot();
  test::GemmProblem<float> prob(kShape.m, kShape.n, kShape.k, 0x9001);
  prob.reference(1.0f, 0.0f);

  // Hit 0 of kPoolSpawnFail is the pool growing for the first attempt —
  // that one must succeed so the hang (then the watchdog) fires first;
  // every later spawn (rebuild growth, spawn fallback) fails, so the
  // parallel runtime is gone until the guard degrades to a serial plan.
  ScopedFault hang(FaultSite::kWorkerHang, {.fire_after = 0, .max_fires = 1});
  FaultInjector::instance().arm(FaultSite::kPoolSpawnFail,
                                {.fire_after = 1, .max_fires = 1000});

  const RunReport report =
      guard.run(1.0f, prob.a.cview(), prob.b.cview(), 0.0f, prob.c.view(), 4);

  EXPECT_EQ(report.outcome, Outcome::kDegraded) << report.summary();
  EXPECT_STREQ(report.fallback, "rebuilt-plan");
  // The watchdog poison cancels the plan's barriers too, so peers of the
  // hung worker fail as kWorkerPanic and the aggregate may carry either
  // pool-class code — both route the guard to the serial rebuild.
  EXPECT_TRUE(report.first_error == ErrorCode::kPoolTimeout ||
              report.first_error == ErrorCode::kWorkerPanic)
      << report.summary();
  const auto after = robust::health().snapshot();
  EXPECT_GE(after.pool_watchdog_timeouts, before.pool_watchdog_timeouts + 1);
  EXPECT_TRUE(prob.check(kShape.k));
}

// ---- memory-pressure degradations ------------------------------------------

TEST_F(ChaosTest, ArenaExhaustionDegradesToPerCallBuffers) {
  const auto before = robust::health().snapshot();
  test::GemmProblem<float> prob(64, 48, 64, 0xA12E);
  prob.reference(1.5f, 0.5f);
  core::SmmOptions opts;
  opts.pack_a = opts.pack_b = core::SmmOptions::Packing::kAlways;

  ScopedFault fault(FaultSite::kArenaExhausted,
                    {.fire_after = 0, .max_fires = 1});
  core::smm_gemm(1.5f, prob.a.cview(), prob.b.cview(), 0.5f, prob.c.view(),
                 1, opts);
  EXPECT_TRUE(prob.check(64));
  EXPECT_GE(FaultInjector::instance().fired_count(FaultSite::kArenaExhausted),
            1u);
  const auto after = robust::health().snapshot();
  EXPECT_GE(after.arena_fallbacks, before.arena_fallbacks + 1);
}

TEST_F(ChaosTest, CacheInsertFailureServesThePlanUncached) {
  const auto before = robust::health().snapshot();
  core::PlanCache cache(core::reference_smm(), 16);
  const GemmShape shape{32, 32, 32};

  {
    ScopedFault fault(FaultSite::kCacheInsertFail,
                      {.fire_after = 0, .max_fires = 1});
    const auto plan = cache.get(shape, plan::ScalarType::kF32, 1);
    ASSERT_NE(plan, nullptr);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.insert_failures(), 1u);

    // The uncached plan still computes.
    test::GemmProblem<float> prob(32, 32, 32, 7);
    prob.reference(1.0f, 0.0f);
    plan::execute_plan(*plan, 1.0f, prob.a.cview(), prob.b.cview(), 0.0f,
                       prob.c.view());
    EXPECT_TRUE(prob.check(32));
  }

  // The site is exhausted: the same key now builds and caches normally.
  const auto plan2 = cache.get(shape, plan::ScalarType::kF32, 1);
  ASSERT_NE(plan2, nullptr);
  EXPECT_EQ(cache.size(), 1u);
  const auto after = robust::health().snapshot();
  EXPECT_GE(after.plan_cache_insert_failures,
            before.plan_cache_insert_failures + 1);
}

TEST_F(ChaosTest, PrepackAllocFallsBackToPackOnTheFly) {
  const auto before = robust::health().snapshot();
  core::SmmOptions opts;
  opts.pack_b = core::SmmOptions::Packing::kAlways;
  // This shape materializes cleanly (PrepackedBTest); under the injected
  // allocation failure the handle must degrade, not throw.
  test::GemmProblem<float> prob(24, 16, 12, 9);
  prob.reference(1.0f, 2.0f);

  ScopedFault fault(FaultSite::kPrepackAlloc,
                    {.fire_after = 0, .max_fires = 1});
  const auto handle =
      core::smm_prepack_b<float>(prob.b.cview(), /*m=*/24, 1, opts);
  EXPECT_FALSE(handle.materialized());
  handle.run(1.0f, prob.a.cview(), 2.0f, prob.c.view());
  EXPECT_TRUE(prob.check(12));
  const auto after = robust::health().snapshot();
  EXPECT_GE(after.prepack_fallbacks, before.prepack_fallbacks + 1);
}

// ---- barriers under fire ---------------------------------------------------

TEST_F(ChaosTest, BarrierTripFailsStopWithoutStrandingPeers) {
  // The jc=2 x ic=2 decomposition of this shape declares two
  // two-participant barriers (asserted in test_parallel); tile
  // constants match build_ways_plan there.
  par::Ways ways;
  ways.jc = 2;
  ways.ic = 2;
  core::BuildSpec spec;
  spec.mr = 16;
  spec.nr = 4;
  spec.mc = 240;
  spec.kc = 512;
  spec.nc = 480;
  spec.nthreads = ways.total();
  spec.ways = ways;
  spec.pack_a = spec.pack_b = true;
  plan::GemmPlan plan;
  plan.strategy = "test";
  plan.shape = {256, 256, 64};
  plan.scalar = plan::ScalarType::kF32;
  core::build_smm_plan(plan, spec);
  ASSERT_FALSE(plan.barriers.empty());

  test::GemmProblem<float> prob(256, 256, 64, 0xBA88);
  {
    ScopedFault fault(FaultSite::kBarrierTrip,
                      {.fire_after = 0, .max_fires = 1});
    try {
      plan::execute_plan(plan, 1.0f, prob.a.cview(), prob.b.cview(), 0.0f,
                         prob.c.view());
      FAIL() << "tripped barrier did not fail the call";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kWorkerPanic) << e.what();
    }
  }

  // The trip poisoned the barrier (peers failed instead of waiting
  // forever) and the runtime survives: a clean run computes correctly.
  prob.reference(1.0f, 0.0f);
  plan::execute_plan(plan, 1.0f, prob.a.cview(), prob.b.cview(), 0.0f,
                     prob.c.view());
  EXPECT_TRUE(prob.check(64));
}

// ---- plan-cache single flight under concurrent failure ---------------------

TEST_F(ChaosTest, SingleFlightBuildFailureDoesNotPoisonCacheOrWaiters) {
  core::PlanCache cache(core::reference_smm(), 16);
  const GemmShape shape{48, 32, 16};
  constexpr int kThreads = 8;
  constexpr int kFailures = 3;

  std::atomic<int> builds{0};
  std::atomic<int> throwers{0};
  std::atomic<int> served{0};
  std::atomic<int> bad_plan{0};
  const core::PlanCache::PlanBuilder builder = [&]() -> plan::GemmPlan {
    if (builds.fetch_add(1) < kFailures)
      throw Error(ErrorCode::kAlloc, "injected build failure");
    return core::reference_smm().make_plan(shape, plan::ScalarType::kF32, 1);
  };

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  std::atomic<bool> go{false};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      while (!go.load()) std::this_thread::yield();
      try {
        const auto plan =
            cache.get_or_build(shape, plan::ScalarType::kF32, 1, 0, builder);
        if (plan == nullptr || plan->shape.m != shape.m)
          bad_plan.fetch_add(1);
        served.fetch_add(1);
      } catch (const Error&) {
        throwers.fetch_add(1);
      }
    });
  }
  go.store(true);
  for (auto& t : threads) t.join();

  // A failed build is the builder's own failure only: waiters retried
  // the lookup instead of inheriting it, so at most one caller throws
  // per failed build and nobody blocked forever (the joins above).
  EXPECT_EQ(served.load() + throwers.load(), kThreads);
  EXPECT_LE(throwers.load(), kFailures);
  EXPECT_GE(served.load(), kThreads - kFailures);
  EXPECT_EQ(bad_plan.load(), 0);

  // No poisoned entry: the key now serves a valid cached plan.
  const auto plan =
      cache.get_or_build(shape, plan::ScalarType::kF32, 1, 0, builder);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(cache.size(), 1u);
}

// ---- concurrent chaos soak -------------------------------------------------

TEST_F(ChaosTest, ConcurrentSoakSurvivesEveryFaultSite) {
  par::WorkerPool::instance().set_watchdog_timeout_ms(200);

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> ops{0};
  std::atomic<std::size_t> guarded_failures{0};
  std::atomic<std::size_t> unexpected{0};

  std::vector<std::thread> traffic;

  // Guarded traffic: the correctness oracle of the soak. Whatever the
  // scheduler injects, every served result is ABFT-verified and a fully
  // failed request would be counted (and fails the test).
  traffic.emplace_back([&] {
    GuardedExecutor guard;
    test::GemmProblem<float> prob(256, 256, 64, 0x600D);
    Matrix<float> c(256, 256);
    while (!stop.load()) {
      try {
        const RunReport r = guard.run(1.0f, prob.a.cview(), prob.b.cview(),
                                      0.0f, c.view(), 4);
        if (r.outcome == Outcome::kFailed) guarded_failures.fetch_add(1);
      } catch (...) {
        unexpected.fetch_add(1);
      }
      ops.fetch_add(1);
    }
  });

  // Raw warm-path traffic: parallel, cached, packing — fail-stop faults
  // may surface as smm::Error (fine); anything else is a bug.
  traffic.emplace_back([&] {
    test::GemmProblem<float> prob(128, 128, 128, 0x5A11);
    core::SmmOptions opts;
    opts.pack_a = opts.pack_b = core::SmmOptions::Packing::kAlways;
    while (!stop.load()) {
      try {
        core::smm_gemm(1.0f, prob.a.cview(), prob.b.cview(), 0.0f,
                       prob.c.view(), 4, opts);
      } catch (const Error&) {
      } catch (const std::bad_alloc&) {
      } catch (...) {
        unexpected.fetch_add(1);
      }
      ops.fetch_add(1);
    }
  });

  // Batched traffic across the shared process-wide cache.
  traffic.emplace_back([&] {
    constexpr int kItems = 4;
    std::vector<test::GemmProblem<float>> probs;
    probs.reserve(kItems);
    for (int i = 0; i < kItems; ++i) probs.emplace_back(32, 32, 32, 100u + i);
    while (!stop.load()) {
      try {
        std::vector<core::GemmBatchItem<float>> items;
        items.reserve(kItems);
        for (auto& p : probs)
          items.push_back({p.a.cview(), p.b.cview(), p.c.view()});
        core::batched_smm(1.0f, items, 0.0f, core::default_plan_cache(), 2);
      } catch (const Error&) {
      } catch (const std::bad_alloc&) {
      } catch (...) {
        unexpected.fetch_add(1);
      }
      ops.fetch_add(1);
    }
  });

  // Prepack traffic: handle construction under fire plus replay.
  traffic.emplace_back([&] {
    test::GemmProblem<float> prob(24, 16, 12, 0x9AC);
    core::SmmOptions opts;
    opts.pack_b = core::SmmOptions::Packing::kAlways;
    while (!stop.load()) {
      try {
        const auto handle =
            core::smm_prepack_b<float>(prob.b.cview(), /*m=*/24, 1, opts);
        handle.run(1.0f, prob.a.cview(), 0.0f, prob.c.view());
      } catch (const Error&) {
      } catch (const std::bad_alloc&) {
      } catch (...) {
        unexpected.fetch_add(1);
      }
      ops.fetch_add(1);
    }
  });

  // The fault scheduler: two full cycles over every site, a small burst
  // each phase. Hang phases resolve within the 200 ms watchdog deadline.
  constexpr FaultSite kAllSites[] = {
      FaultSite::kPackBitFlip,   FaultSite::kWorkerThrow,
      FaultSite::kAllocFail,     FaultSite::kKernelMiscompute,
      FaultSite::kWorkerHang,    FaultSite::kPoolSpawnFail,
      FaultSite::kArenaExhausted, FaultSite::kCacheInsertFail,
      FaultSite::kPrepackAlloc,  FaultSite::kBarrierTrip,
  };
  for (int cycle = 0; cycle < 2; ++cycle) {
    for (const FaultSite site : kAllSites) {
      FaultInjector::instance().arm(site, {.fire_after = 0, .max_fires = 4});
      std::this_thread::sleep_for(std::chrono::milliseconds(120));
      FaultInjector::instance().disarm(site);
      robust::cancel_injected_hangs();
      robust::reset_injected_hangs();
    }
  }

  stop.store(true);
  robust::cancel_injected_hangs();  // free stragglers so the joins finish
  for (auto& t : traffic) t.join();
  robust::reset_injected_hangs();

  EXPECT_EQ(unexpected.load(), 0u);
  EXPECT_EQ(guarded_failures.load(), 0u);
  EXPECT_GT(ops.load(), 0u);

  // Everything heals: with no faults armed a clean call is bit-correct.
  FaultInjector::instance().disarm_all();
  test::GemmProblem<float> fin(96, 64, 48, 0xF1A7);
  fin.reference(1.0f, 1.0f);
  core::smm_gemm(1.0f, fin.a.cview(), fin.b.cview(), 1.0f, fin.c.view(), 4);
  EXPECT_TRUE(fin.check(48));
}

}  // namespace
}  // namespace smm
