#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/matrix/matrix.h"
#include "src/pack/edge_pack.h"
#include "src/pack/pack.h"

namespace smm::pack {
namespace {

TEST(PackSizes, PaddedVersusTight) {
  EXPECT_EQ(packed_a_size(11, 10, 8, /*pad=*/true), 16 * 10);
  EXPECT_EQ(packed_a_size(11, 10, 8, /*pad=*/false), 110);
  EXPECT_EQ(packed_b_size(10, 13, 4, /*pad=*/true), 16 * 10);
  EXPECT_EQ(packed_b_size(10, 13, 4, /*pad=*/false), 130);
}

TEST(PackSizes, PanelOffsets) {
  EXPECT_EQ(packed_a_panel_offset(0, 20, 7, 8, false), 0);
  EXPECT_EQ(packed_a_panel_offset(2, 20, 7, 8, false), 2 * 8 * 7);
  EXPECT_EQ(packed_b_panel_offset(3, 7, 20, 4, true), 3 * 4 * 7);
  EXPECT_EQ(packed_a_panel_rows(1, 11, 8, false), 3);
  EXPECT_EQ(packed_a_panel_rows(1, 11, 8, true), 8);
  EXPECT_EQ(packed_b_panel_cols(2, 11, 4, false), 3);
}

TEST(PackA, LayoutIsColumnOfPanels) {
  // A 5x3 block, mr = 4, tight: panel 0 (rows 0..3), panel 1 (row 4).
  Matrix<float> a(5, 3);
  a.fill_iota();
  std::vector<float> dst(15, -1.0f);
  pack_a(a.cview(), 4, /*pad=*/false, dst.data());
  // Panel 0, column k: elements a(0..3, k).
  for (index_t k = 0; k < 3; ++k)
    for (index_t i = 0; i < 4; ++i)
      EXPECT_EQ(dst[static_cast<std::size_t>(k * 4 + i)], a(i, k));
  // Panel 1 starts at 4*3 = 12; one row per column.
  for (index_t k = 0; k < 3; ++k)
    EXPECT_EQ(dst[static_cast<std::size_t>(12 + k)], a(4, k));
}

TEST(PackA, PaddingZeroFills) {
  Matrix<float> a(5, 2);
  a.fill(1.0f);
  std::vector<float> dst(static_cast<std::size_t>(packed_a_size(5, 2, 4, true)),
                         -1.0f);
  pack_a(a.cview(), 4, /*pad=*/true, dst.data());
  // Second panel columns: row 0 is a(4,k) = 1, rows 1..3 are zeros.
  for (index_t k = 0; k < 2; ++k) {
    EXPECT_EQ(dst[static_cast<std::size_t>(8 + k * 4 + 0)], 1.0f);
    for (index_t i = 1; i < 4; ++i)
      EXPECT_EQ(dst[static_cast<std::size_t>(8 + k * 4 + i)], 0.0f);
  }
}

TEST(PackB, LayoutIsRowOfPanels) {
  // B 3x5 block, nr = 4: panel 0 cols 0..3, panel 1 col 4.
  Matrix<float> b(3, 5);
  b.fill_iota();
  std::vector<float> dst(15, -1.0f);
  pack_b(b.cview(), 4, /*pad=*/false, dst.data());
  for (index_t k = 0; k < 3; ++k)
    for (index_t j = 0; j < 4; ++j)
      EXPECT_EQ(dst[static_cast<std::size_t>(k * 4 + j)], b(k, j));
  for (index_t k = 0; k < 3; ++k)
    EXPECT_EQ(dst[static_cast<std::size_t>(12 + k)], b(k, 4));
}

TEST(PackChunked, HeightsLayout) {
  // 11 rows as 8 + 2 + 1 (the OpenBLAS edge decomposition).
  Matrix<float> a(11, 4);
  a.fill_iota();
  std::vector<float> dst(44, -1.0f);
  pack_a_chunked(a.cview(), {8, 2, 1}, dst.data());
  // Chunk 0: 8-tall panels.
  EXPECT_EQ(dst[0], a(0, 0));
  EXPECT_EQ(dst[8 + 3], a(3, 1));
  // Chunk 1 starts at 8*4 = 32: rows 8..9.
  EXPECT_EQ(dst[32], a(8, 0));
  EXPECT_EQ(dst[33], a(9, 0));
  EXPECT_EQ(dst[34], a(8, 1));
  // Chunk 2 starts at 32 + 2*4 = 40: row 10.
  EXPECT_EQ(dst[40], a(10, 0));
  EXPECT_EQ(dst[43], a(10, 3));
}

TEST(PackChunked, WidthsLayout) {
  Matrix<float> b(3, 7);
  b.fill_iota();
  std::vector<float> dst(21, -1.0f);
  pack_b_chunked(b.cview(), {4, 2, 1}, dst.data());
  EXPECT_EQ(dst[0], b(0, 0));
  EXPECT_EQ(dst[4 * 1 + 2], b(1, 2));
  // Chunk 1 at 12: cols 4..5, rows interleaved per k.
  EXPECT_EQ(dst[12], b(0, 4));
  EXPECT_EQ(dst[13], b(0, 5));
  EXPECT_EQ(dst[14], b(1, 4));
  // Chunk 2 at 18.
  EXPECT_EQ(dst[18], b(0, 6));
}

TEST(PackChunked, BadCoverageThrows) {
  Matrix<float> a(10, 2);
  std::vector<float> dst(20);
  EXPECT_THROW(pack_a_chunked(a.cview(), {8, 4}, dst.data()), Error);
  EXPECT_THROW(pack_a_chunked(a.cview(), {8, 1}, dst.data()), Error);
}

TEST(EdgePack, BEdgeColumns) {
  Rng rng(2);
  Matrix<float> b(6, 10);
  b.fill_random(rng);
  std::vector<float> dst(static_cast<std::size_t>(6 * 4), -1.0f);
  pack_b_edge_columns(b.cview(), /*edge_cols=*/2, /*nr=*/4, dst.data());
  for (index_t k = 0; k < 6; ++k) {
    EXPECT_EQ(dst[static_cast<std::size_t>(k * 4 + 0)], b(k, 8));
    EXPECT_EQ(dst[static_cast<std::size_t>(k * 4 + 1)], b(k, 9));
    EXPECT_EQ(dst[static_cast<std::size_t>(k * 4 + 2)], 0.0f);
    EXPECT_EQ(dst[static_cast<std::size_t>(k * 4 + 3)], 0.0f);
  }
}

TEST(EdgePack, AEdgeRows) {
  Rng rng(3);
  Matrix<float> a(10, 3);
  a.fill_random(rng);
  std::vector<float> dst(static_cast<std::size_t>(4 * 3), -1.0f);
  pack_a_edge_rows(a.cview(), /*edge_rows=*/3, /*mr=*/4, dst.data());
  for (index_t k = 0; k < 3; ++k) {
    for (index_t i = 0; i < 3; ++i)
      EXPECT_EQ(dst[static_cast<std::size_t>(k * 4 + i)], a(7 + i, k));
    EXPECT_EQ(dst[static_cast<std::size_t>(k * 4 + 3)], 0.0f);
  }
}

TEST(EdgePack, BadEdgeThrows) {
  Matrix<float> b(4, 4);
  std::vector<float> dst(16);
  EXPECT_THROW(pack_b_edge_columns(b.cview(), 0, 4, dst.data()), Error);
  EXPECT_THROW(pack_b_edge_columns(b.cview(), 5, 4, dst.data()), Error);
}

TEST(PackTraffic, CountsReadAndWrite) {
  EXPECT_EQ(pack_traffic_bytes<float>(10, 10), 800);
  EXPECT_EQ(pack_traffic_bytes<double>(10, 10), 1600);
}

}  // namespace
}  // namespace smm::pack
