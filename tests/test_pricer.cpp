// Plan pricer: breakdown accounting, monotonicity, barrier scheduling and
// option handling.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/smm.h"
#include "src/libs/blasfeo_like/gemm_blasfeo_like.h"
#include "src/libs/blis_like/gemm_blis_like.h"
#include "src/libs/eigen_like/gemm_eigen_like.h"
#include "src/libs/openblas_like/gemm_openblas_like.h"
#include "src/sim/exec/pricer.h"
#include "src/sim/exec/trace_export.h"
#include "src/sim/machine.h"

namespace smm::sim {
namespace {

class PricerTest : public ::testing::Test {
 protected:
  MachineConfig machine_ = phytium2000p();
  PlanPricer pricer_{machine_};

  SimReport price(const libs::GemmStrategy& s, GemmShape shape,
                  int threads = 1, PricerOptions opt = {}) {
    return simulate_strategy(s, shape, plan::ScalarType::kF32, threads,
                             pricer_, opt);
  }
};

TEST_F(PricerTest, SingleThreadBreakdownHasNoSync) {
  const SimReport r = price(libs::openblas_like(), {64, 64, 64});
  EXPECT_EQ(r.breakdown.sync, 0.0);
  EXPECT_GT(r.breakdown.kernel, 0.0);
  EXPECT_GT(r.breakdown.pack_a, 0.0);
  EXPECT_GT(r.breakdown.pack_b, 0.0);
  EXPECT_DOUBLE_EQ(r.makespan_cycles, r.breakdown.total());
}

TEST_F(PricerTest, EfficiencyWithinPhysicalBounds) {
  for (const libs::GemmStrategy* s :
       {&libs::openblas_like(), &libs::blis_like(), &libs::blasfeo_like(),
        &libs::eigen_like(), &core::reference_smm()}) {
    for (index_t n : {8, 40, 120, 200}) {
      const SimReport r = price(*s, {n, n, n});
      EXPECT_GT(r.efficiency(machine_), 0.0) << s->traits().name << " " << n;
      EXPECT_LE(r.efficiency(machine_), 1.0) << s->traits().name << " " << n;
      EXPECT_LE(r.kernel_efficiency(machine_), 1.0)
          << s->traits().name << " " << n;
    }
  }
}

TEST_F(PricerTest, MoreWorkCostsMoreCycles) {
  const SimReport small = price(libs::blis_like(), {64, 64, 64});
  const SimReport big = price(libs::blis_like(), {128, 128, 128});
  EXPECT_GT(big.makespan_cycles, small.makespan_cycles);
}

TEST_F(PricerTest, EfficiencyRisesWithSquareSize) {
  // Fig. 5(a): every library's efficiency grows with the matrix size in
  // the SMM regime.
  for (const libs::GemmStrategy* s :
       {&libs::openblas_like(), &libs::blis_like(), &libs::blasfeo_like()}) {
    const double e20 = price(*s, {20, 20, 20}).efficiency(machine_);
    const double e160 = price(*s, {160, 160, 160}).efficiency(machine_);
    EXPECT_GT(e160, e20) << s->traits().name;
  }
}

TEST_F(PricerTest, BlasfeoConversionExcludedByDefault) {
  const SimReport normal = price(libs::blasfeo_like(), {48, 48, 48});
  EXPECT_EQ(normal.breakdown.convert, 0.0);
  PricerOptions opt;
  opt.include_format_conversion = true;
  const SimReport with_conv = price(libs::blasfeo_like(), {48, 48, 48}, 1,
                                    opt);
  EXPECT_GT(with_conv.breakdown.convert, 0.0);
  EXPECT_GT(with_conv.makespan_cycles, normal.makespan_cycles);
}

TEST_F(PricerTest, MultiThreadHasSyncAndBeatsLatency) {
  // N too small for jc-only parallelism: the ways must share buffers and
  // pay real barriers.
  const GemmShape shape{2048, 96, 2048};
  const SimReport t1 = price(libs::blis_like(), shape, 1);
  const SimReport t8 = price(libs::blis_like(), shape, 8);
  EXPECT_GT(t8.breakdown.sync, 0.0);
  // 8 threads must be faster in wall cycles on a big-enough problem.
  EXPECT_LT(t8.makespan_cycles, t1.makespan_cycles);
  // But not superlinear.
  EXPECT_GT(t8.makespan_cycles, t1.makespan_cycles / 10.0);
}

TEST_F(PricerTest, PaddingShowsUpInComputedFlops) {
  const SimReport r = price(libs::blis_like(), {9, 13, 32});
  EXPECT_GT(r.computed_flops, r.useful_flops * 1.5);
  const SimReport e = price(libs::openblas_like(), {9, 13, 32});
  EXPECT_DOUBLE_EQ(e.computed_flops, e.useful_flops);
}

TEST_F(PricerTest, DeterministicAcrossCalls) {
  const SimReport a = price(libs::eigen_like(), {57, 57, 57});
  const SimReport b = price(libs::eigen_like(), {57, 57, 57});
  EXPECT_DOUBLE_EQ(a.makespan_cycles, b.makespan_cycles);
}

TEST_F(PricerTest, CsvRowWellFormed) {
  const SimReport r = price(libs::openblas_like(), {32, 32, 32});
  const std::string row = r.csv_row(machine_);
  const std::string header = SimReport::csv_header();
  EXPECT_EQ(std::count(row.begin(), row.end(), ','),
            std::count(header.begin(), header.end(), ','));
}

TEST_F(PricerTest, TimelineMatchesBreakdown) {
  PricerOptions opt;
  opt.collect_timeline = true;
  const SimReport r = price(libs::blis_like(), {64, 256, 128}, 4, opt);
  ASSERT_FALSE(r.timeline.empty());
  // Per-category sums over the timeline equal the breakdown exactly.
  SimBreakdown sums;
  for (const auto& ev : r.timeline) {
    const std::string cat = ev.category;
    if (cat == "kernel") sums.kernel += ev.duration_cycles;
    if (cat == "pack_a") sums.pack_a += ev.duration_cycles;
    if (cat == "pack_b") sums.pack_b += ev.duration_cycles;
    if (cat == "sync") sums.sync += ev.duration_cycles;
  }
  EXPECT_NEAR(sums.kernel, r.breakdown.kernel, 1e-6);
  EXPECT_NEAR(sums.pack_a, r.breakdown.pack_a, 1e-6);
  EXPECT_NEAR(sums.pack_b, r.breakdown.pack_b, 1e-6);
  EXPECT_NEAR(sums.sync, r.breakdown.sync, 1e-6);
  // Events on one thread never overlap and never exceed the makespan.
  std::vector<double> last_end(4, 0.0);
  std::vector<TraceEvent> sorted = r.timeline;
  std::sort(sorted.begin(), sorted.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_cycles < b.start_cycles;
            });
  for (const auto& ev : sorted) {
    auto& end = last_end[static_cast<std::size_t>(ev.thread)];
    EXPECT_GE(ev.start_cycles, end - 1e-6) << ev.category;
    end = ev.start_cycles + ev.duration_cycles;
    EXPECT_LE(end, r.makespan_cycles + 1e-6);
  }
}

TEST_F(PricerTest, TimelineOffByDefault) {
  const SimReport r = price(libs::blis_like(), {64, 64, 64});
  EXPECT_TRUE(r.timeline.empty());
}

TEST_F(PricerTest, ChromeTraceJsonRoundTrips) {
  PricerOptions opt;
  opt.collect_timeline = true;
  const SimReport r = price(libs::openblas_like(), {32, 32, 32}, 1, opt);
  const std::string json = to_chrome_trace_json(r);
  // Structural sanity: array brackets, one object per event + metadata.
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            static_cast<long>(r.timeline.size()) + 2);  // +process meta
}

TEST_F(PricerTest, A64fxLikeMachinePricesSanely) {
  // The SVE-512 machine: 4x the lanes, 2 FMA pipes — the same logical
  // kernels price with a much higher per-core peak, and efficiency stays
  // bounded. Wide vectors make *small* matrices relatively harder
  // (a 16-row tile is a single SVE vector): efficiency at 16^3 must be
  // below the Phytium model's.
  const auto a64fx = a64fx_like();
  EXPECT_NEAR(a64fx.peak_gflops(4, 48), 48 * 2.2 * 64, 1e-9);  // ~6.7 Tflops
  PlanPricer pricer(a64fx);
  for (index_t n : {16, 64, 160}) {
    const auto r = simulate_strategy(core::reference_smm(), {n, n, n},
                                     plan::ScalarType::kF32, 1, pricer);
    EXPECT_GT(r.efficiency(a64fx), 0.0) << n;
    EXPECT_LE(r.efficiency(a64fx), 1.0) << n;
  }
  PlanPricer phytium(phytium2000p());
  const double small_a64 =
      simulate_strategy(core::reference_smm(), {16, 16, 16},
                        plan::ScalarType::kF32, 1, pricer)
          .efficiency(a64fx);
  const double small_ph =
      simulate_strategy(core::reference_smm(), {16, 16, 16},
                        plan::ScalarType::kF32, 1, phytium)
          .efficiency(phytium.machine());
  EXPECT_LT(small_a64, small_ph);
}

TEST_F(PricerTest, K0PlanPricesScaleOnly) {
  const plan::GemmPlan plan = libs::openblas_like().make_plan(
      {16, 16, 0}, plan::ScalarType::kF32, 1);
  const SimReport r = pricer_.price(plan);
  EXPECT_EQ(r.breakdown.kernel, 0.0);
  EXPECT_GT(r.breakdown.scale, 0.0);
}

}  // namespace
}  // namespace smm::sim
