// Reproduction gates: the qualitative shapes of the paper's figures and
// tables, asserted on the simulated Phytium 2000+. These are the claims a
// reader would check the reproduction against:
//   Fig. 5  - single-thread ranking BLASFEO > OpenBLAS/BLIS > Eigen, with
//             BLASFEO near peak and Eigen far below;
//   Fig. 6  - packing share falls with M/N and is negligible for small K;
//   Fig. 7  - the clustered edge-kernel layout loses to a pipelined one;
//   Fig. 9  - kernel-only efficiency peaks at tile multiples;
//   Fig. 10 - at 64 threads BLIS wins, OpenBLAS collapses for small M;
//   Table II- PackB share falls and kernel share rises with M.
#include <gtest/gtest.h>

#include "src/core/smm.h"
#include "src/libs/blasfeo_like/gemm_blasfeo_like.h"
#include "src/libs/blis_like/gemm_blis_like.h"
#include "src/libs/eigen_like/gemm_eigen_like.h"
#include "src/libs/openblas_like/gemm_openblas_like.h"
#include "src/sim/exec/pricer.h"
#include "src/sim/machine.h"

namespace smm::sim {
namespace {

class Calibration : public ::testing::Test {
 protected:
  MachineConfig machine_ = phytium2000p();
  PlanPricer pricer_{machine_};

  double eff(const libs::GemmStrategy& s, GemmShape shape,
             int threads = 1) {
    return simulate_strategy(s, shape, plan::ScalarType::kF32, threads,
                             pricer_)
        .efficiency(machine_);
  }
  SimReport report(const libs::GemmStrategy& s, GemmShape shape,
                   int threads = 1) {
    return simulate_strategy(s, shape, plan::ScalarType::kF32, threads,
                             pricer_);
  }
};

// ---- Fig. 5: single-thread ranking ---------------------------------------

TEST_F(Calibration, Fig5RankingAtModerateSquare) {
  const GemmShape shape{100, 100, 100};
  const double blasfeo = eff(libs::blasfeo_like(), shape);
  const double openblas = eff(libs::openblas_like(), shape);
  const double blis = eff(libs::blis_like(), shape);
  const double eigen = eff(libs::eigen_like(), shape);
  EXPECT_GT(blasfeo, openblas);
  EXPECT_GT(blasfeo, blis);
  EXPECT_GT(openblas, eigen);
  EXPECT_GT(blis, eigen);
}

TEST_F(Calibration, Fig5BlasfeoNearPeakBestCase) {
  // Paper: "BLASFEO can reach 96% of the theoretical peak".
  double best = 0;
  for (index_t n : {160, 176, 192, 200})
    best = std::max(best, eff(libs::blasfeo_like(), {n, n, n}));
  EXPECT_GT(best, 0.88);
  EXPECT_LE(best, 0.99);
}

TEST_F(Calibration, Fig5EigenFarBelowPeak) {
  // Paper: "Eigen can only reach 58%".
  double best = 0;
  for (index_t n : {100, 144, 192, 200})
    best = std::max(best, eff(libs::eigen_like(), {n, n, n}));
  EXPECT_LT(best, 0.70);
  EXPECT_GT(best, 0.35);
}

TEST_F(Calibration, Fig5SmallKBehavesDifferently) {
  // Fig. 5(d) vs 5(b): packing cost scales with K*N, so at small K the
  // packing *share* is negligible while at small M it dominates —
  // the reason the K-sweep curves look unlike the M/N sweeps.
  auto pack_share = [&](GemmShape s) {
    const SimReport r = report(libs::openblas_like(), s);
    return r.breakdown.share(r.breakdown.pack_a + r.breakdown.pack_b);
  };
  EXPECT_LT(pack_share({200, 200, 8}), 0.5 * pack_share({8, 200, 200}));
}

// ---- Fig. 6: packing overhead ---------------------------------------------

TEST_F(Calibration, Fig6PackingShareFallsWithM) {
  auto share = [&](GemmShape s) {
    const SimReport r = report(libs::openblas_like(), s);
    return r.breakdown.share(r.breakdown.pack_a + r.breakdown.pack_b);
  };
  const double m4 = share({4, 200, 200});
  const double m40 = share({40, 200, 200});
  const double m200 = share({200, 200, 200});
  EXPECT_GT(m4, m40);
  EXPECT_GT(m40, m200);
  // Paper: "in the worst cases, it accounts for more than 50%".
  EXPECT_GT(m4, 0.40);
}

TEST_F(Calibration, Fig6SmallKPackingNegligible) {
  const SimReport r = report(libs::openblas_like(), {200, 200, 4});
  const double share =
      r.breakdown.share(r.breakdown.pack_a + r.breakdown.pack_b);
  EXPECT_LT(share, 0.25);
}

// ---- Fig. 9: kernel-only efficiency ----------------------------------------

TEST_F(Calibration, Fig9KernelEfficiencyPeaksAtMultiples) {
  auto keff = [&](index_t m) {
    return report(libs::openblas_like(), {m, 100, 100})
        .kernel_efficiency(machine_);
  };
  // Paper: best ~93.3% at multiples, worst ~71.8%.
  EXPECT_GT(keff(80), 0.85);
  EXPECT_LT(keff(80), 0.99);
  EXPECT_GT(keff(80), keff(75));
  EXPECT_GT(keff(80), keff(83));
  double worst = 1.0;
  for (index_t m = 2; m <= 40; m += 2) worst = std::min(worst, keff(m));
  EXPECT_LT(worst, 0.80);
  EXPECT_GT(worst, 0.18);
}

// ---- Fig. 10 / Table II: 64 threads -----------------------------------------

TEST_F(Calibration, Fig10BlisBestAt64Threads) {
  for (index_t m : {16, 64, 128}) {
    const GemmShape shape{m, 2048, 2048};
    const double blis = eff(libs::blis_like(), shape, 64);
    const double openblas = eff(libs::openblas_like(), shape, 64);
    const double eigen = eff(libs::eigen_like(), shape, 64);
    EXPECT_GT(blis, openblas) << "m=" << m;
    EXPECT_GT(blis, eigen) << "m=" << m;
  }
}

TEST_F(Calibration, Fig10OpenblasCollapsesAtSmallM) {
  const double small = eff(libs::openblas_like(), {16, 2048, 2048}, 64);
  const double large = eff(libs::openblas_like(), {1024, 2048, 2048}, 64);
  EXPECT_LT(small, 0.5 * large);
}

TEST_F(Calibration, Fig10BlisPeaksAroundSixtyPercent) {
  // Paper: "BLIS is the best performer among them, peaking at around 60%"
  // for the small-dimension cases.
  double best = 0;
  for (index_t m : {128, 192, 256})
    best = std::max(best, eff(libs::blis_like(), {m, 2048, 2048}, 64));
  EXPECT_GT(best, 0.45);
  EXPECT_LT(best, 0.80);
}

TEST_F(Calibration, TableTwoShapes) {
  // PackB share falls with M; kernel share rises; kernel efficiency
  // climbs from the ~40s into the ~70s (percent).
  const SimReport m16 = report(libs::blis_like(), {16, 2048, 2048}, 64);
  const SimReport m128 = report(libs::blis_like(), {128, 2048, 2048}, 64);
  const SimReport m256 = report(libs::blis_like(), {256, 2048, 2048}, 64);
  const auto pack_b_share = [](const SimReport& r) {
    return r.breakdown.share(r.breakdown.pack_b);
  };
  const auto kernel_share = [](const SimReport& r) {
    return r.breakdown.share(r.breakdown.kernel);
  };
  EXPECT_GT(pack_b_share(m16), pack_b_share(m128));
  EXPECT_GT(pack_b_share(m128), pack_b_share(m256));
  EXPECT_LT(kernel_share(m16), kernel_share(m256));
  EXPECT_GT(pack_b_share(m16), 0.30);   // paper: 56.9%
  EXPECT_LT(pack_b_share(m256), 0.20);  // paper: 9.7%
  EXPECT_LT(m16.kernel_efficiency(machine_),
            m256.kernel_efficiency(machine_));
  EXPECT_LT(m16.kernel_efficiency(machine_), 0.68);  // paper: 43.6%
  EXPECT_GT(m256.kernel_efficiency(machine_), 0.55);  // paper: 74.6%
}


// ---- Double precision: the 563.2 Gflops dp peak basis ----------------------

TEST_F(Calibration, DgemmOrderingMatchesSgemm) {
  // The characterization is precision-independent in shape: BLASFEO
  // leads, Eigen trails, for dgemm too (Eq. 1-2 widths halve).
  const GemmShape shape{96, 96, 96};
  auto eff64 = [&](const libs::GemmStrategy& s) {
    return simulate_strategy(s, shape, plan::ScalarType::kF64, 1, pricer_)
        .efficiency(machine_);
  };
  const double blasfeo = eff64(libs::blasfeo_like());
  const double openblas = eff64(libs::openblas_like());
  const double eigen = eff64(libs::eigen_like());
  EXPECT_GT(blasfeo, openblas);
  EXPECT_GT(openblas, eigen);
  EXPECT_GT(blasfeo, 0.7);
  EXPECT_LE(blasfeo, 1.0);
}

TEST_F(Calibration, DgemmPeakBasisIsHalved) {
  // Identical cycles at half the lanes: a dgemm report's Gflops are
  // measured against the 563.2 dp peak (Section II-A).
  const auto r64 = report(libs::blasfeo_like(), {64, 64, 64});
  EXPECT_NEAR(machine_.peak_gflops(8, 64), 563.2, 1e-9);
  (void)r64;
}

// ---- Section IV: the reference SMM must beat the baselines where the
// paper says the bottlenecks are.

TEST_F(Calibration, ReferenceSmmBeatsPackingLibsAtSmallM) {
  const GemmShape shape{8, 200, 200};
  const double ref = eff(core::reference_smm(), shape);
  EXPECT_GT(ref, eff(libs::openblas_like(), shape));
  EXPECT_GT(ref, eff(libs::eigen_like(), shape));
}

TEST_F(Calibration, ReferenceSmmCompetitiveEverywhere) {
  for (index_t n : {20, 60, 100, 160}) {
    const GemmShape shape{n, n, n};
    const double ref = eff(core::reference_smm(), shape);
    const double best_baseline =
        std::max({eff(libs::openblas_like(), shape),
                  eff(libs::blis_like(), shape),
                  eff(libs::eigen_like(), shape)});
    EXPECT_GT(ref, 0.9 * best_baseline) << n;
  }
}

}  // namespace
}  // namespace smm::sim
