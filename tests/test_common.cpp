#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include <cstdlib>

#include "src/common/aligned_buffer.h"
#include "src/common/env.h"
#include "src/common/error.h"
#include "src/common/rng.h"
#include "src/common/str.h"
#include "src/common/types.h"

namespace smm {
namespace {

TEST(GemmShape, FlopsCountsMulAndAdd) {
  EXPECT_DOUBLE_EQ((GemmShape{2, 3, 4}).flops(), 48.0);
  EXPECT_DOUBLE_EQ((GemmShape{0, 3, 4}).flops(), 0.0);
}

TEST(AlignedBuffer, AlignmentAndZeroInit) {
  AlignedBuffer<float> buf(1000);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % kBufferAlignment,
            0u);
  for (index_t i = 0; i < buf.size(); ++i) EXPECT_EQ(buf[i], 0.0f);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer<double> a(16);
  a[3] = 7.0;
  const double* ptr = a.data();
  AlignedBuffer<double> b = std::move(a);
  EXPECT_EQ(b.data(), ptr);
  EXPECT_EQ(b[3], 7.0);
  EXPECT_EQ(a.size(), 0);  // NOLINT(bugprone-use-after-move)
}

TEST(AlignedBuffer, EmptyAndReset) {
  AlignedBuffer<float> buf;
  EXPECT_TRUE(buf.empty());
  buf.reset(8);
  EXPECT_EQ(buf.size(), 8);
  buf.reset(0);
  EXPECT_TRUE(buf.empty());
}

TEST(AlignedBuffer, NegativeSizeThrows) {
  EXPECT_THROW(AlignedBuffer<float>(-1), Error);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.uniform(-3.0, 5.0);
    EXPECT_GE(d, -3.0);
    EXPECT_LT(d, 5.0);
  }
}

TEST(Rng, IndexBounds) {
  Rng rng(11);
  std::set<index_t> seen;
  for (int i = 0; i < 200; ++i) {
    const index_t v = rng.next_index(7);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit over 200 draws
  EXPECT_THROW(rng.next_index(0), Error);
}

TEST(Str, Printf) {
  EXPECT_EQ(strprintf("x=%d y=%.1f", 3, 2.5), "x=3 y=2.5");
  EXPECT_EQ(strprintf("%s", ""), "");
}

TEST(Str, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ", "), "only");
}

TEST(ErrorMacro, ThrowsWithContext) {
  try {
    SMM_EXPECT(1 == 2, "should fail");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("should fail"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

// ---- environment knobs (common/env.h) --------------------------------------
//
// Regression contract for the consolidated parser: a malformed knob is
// IGNORED (the fallback wins) — it must never throw or abort at startup.
// Before consolidation the service/shard/tune/failover layers each had a
// private strtol wrapper; these tests pin the one shared policy.

TEST(Env, ParseLongAcceptsWellFormedValues) {
  EXPECT_EQ(env::parse_long("42", 7, 0), 42);
  EXPECT_EQ(env::parse_long("0", 7, 0), 0);
  EXPECT_EQ(env::parse_long("  8", 7, 0), 8);  // strtol skips whitespace
  EXPECT_EQ(env::parse_long("1", 7, 1), 1);    // at the min bound
}

TEST(Env, ParseLongIgnoresMalformedValuesInsteadOfThrowing) {
  // Every malformed shape falls back; none may throw.
  EXPECT_EQ(env::parse_long(nullptr, 7, 0), 7);   // unset
  EXPECT_EQ(env::parse_long("", 7, 0), 7);        // empty
  EXPECT_EQ(env::parse_long("abc", 7, 0), 7);     // unparsable
  EXPECT_EQ(env::parse_long("12x", 7, 0), 7);     // trailing garbage
  EXPECT_EQ(env::parse_long("1.5", 7, 0), 7);     // not an integer
  EXPECT_EQ(env::parse_long("-3", 7, 0), 7);      // below min (0)
  EXPECT_EQ(env::parse_long("0", 7, 1), 7);       // below min (1)
  EXPECT_EQ(env::parse_long("99999999999999999999", 7, 0), 7);  // overflow
}

TEST(Env, ParseDoubleAcceptsAndRangeChecks) {
  EXPECT_DOUBLE_EQ(env::parse_double("0.25", 0.5, 0.0, 1.0), 0.25);
  EXPECT_DOUBLE_EQ(env::parse_double("0", 0.5, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(env::parse_double("1", 0.5, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(env::parse_double(nullptr, 0.5, 0.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(env::parse_double("", 0.5, 0.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(env::parse_double("half", 0.5, 0.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(env::parse_double("0.5x", 0.5, 0.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(env::parse_double("1.5", 0.5, 0.0, 1.0), 0.5);   // > max
  EXPECT_DOUBLE_EQ(env::parse_double("-0.1", 0.5, 0.0, 1.0), 0.5);  // < min
  EXPECT_DOUBLE_EQ(env::parse_double("nan", 0.5, 0.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(env::parse_double("inf", 0.5, 0.0, 1.0), 0.5);
}

TEST(Env, ReadersConsultTheProcessEnvironment) {
  ::setenv("SMMKIT_TEST_ENV_KNOB", "12", 1);
  EXPECT_EQ(env::read_long("SMMKIT_TEST_ENV_KNOB", 3), 12);
  EXPECT_EQ(env::read_positive_long("SMMKIT_TEST_ENV_KNOB", 3), 12);
  ::setenv("SMMKIT_TEST_ENV_KNOB", "0", 1);
  EXPECT_EQ(env::read_long("SMMKIT_TEST_ENV_KNOB", 3), 0);
  EXPECT_EQ(env::read_positive_long("SMMKIT_TEST_ENV_KNOB", 3), 3);  // > 0
  ::setenv("SMMKIT_TEST_ENV_KNOB", "garbage", 1);
  EXPECT_EQ(env::read_long("SMMKIT_TEST_ENV_KNOB", 3), 3);
  ::setenv("SMMKIT_TEST_ENV_KNOB", "0.75", 1);
  EXPECT_DOUBLE_EQ(env::read_fraction("SMMKIT_TEST_ENV_KNOB", 0.1), 0.75);
  ::setenv("SMMKIT_TEST_ENV_KNOB", "2.5", 1);
  EXPECT_DOUBLE_EQ(env::read_fraction("SMMKIT_TEST_ENV_KNOB", 0.1), 0.1);
  EXPECT_DOUBLE_EQ(env::read_double("SMMKIT_TEST_ENV_KNOB", 0.1), 2.5);
  ::setenv("SMMKIT_TEST_ENV_KNOB", "hello", 1);
  EXPECT_EQ(env::read_string("SMMKIT_TEST_ENV_KNOB", "fb"), "hello");
  ::setenv("SMMKIT_TEST_ENV_KNOB", "", 1);
  EXPECT_EQ(env::read_string("SMMKIT_TEST_ENV_KNOB", "fb"), "fb");
  ::unsetenv("SMMKIT_TEST_ENV_KNOB");
  EXPECT_EQ(env::read_long("SMMKIT_TEST_ENV_KNOB", 3), 3);
  EXPECT_EQ(env::read_string("SMMKIT_TEST_ENV_KNOB", "fb"), "fb");
}

}  // namespace
}  // namespace smm
