#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "src/common/aligned_buffer.h"
#include "src/common/error.h"
#include "src/common/rng.h"
#include "src/common/str.h"
#include "src/common/types.h"

namespace smm {
namespace {

TEST(GemmShape, FlopsCountsMulAndAdd) {
  EXPECT_DOUBLE_EQ((GemmShape{2, 3, 4}).flops(), 48.0);
  EXPECT_DOUBLE_EQ((GemmShape{0, 3, 4}).flops(), 0.0);
}

TEST(AlignedBuffer, AlignmentAndZeroInit) {
  AlignedBuffer<float> buf(1000);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % kBufferAlignment,
            0u);
  for (index_t i = 0; i < buf.size(); ++i) EXPECT_EQ(buf[i], 0.0f);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer<double> a(16);
  a[3] = 7.0;
  const double* ptr = a.data();
  AlignedBuffer<double> b = std::move(a);
  EXPECT_EQ(b.data(), ptr);
  EXPECT_EQ(b[3], 7.0);
  EXPECT_EQ(a.size(), 0);  // NOLINT(bugprone-use-after-move)
}

TEST(AlignedBuffer, EmptyAndReset) {
  AlignedBuffer<float> buf;
  EXPECT_TRUE(buf.empty());
  buf.reset(8);
  EXPECT_EQ(buf.size(), 8);
  buf.reset(0);
  EXPECT_TRUE(buf.empty());
}

TEST(AlignedBuffer, NegativeSizeThrows) {
  EXPECT_THROW(AlignedBuffer<float>(-1), Error);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.uniform(-3.0, 5.0);
    EXPECT_GE(d, -3.0);
    EXPECT_LT(d, 5.0);
  }
}

TEST(Rng, IndexBounds) {
  Rng rng(11);
  std::set<index_t> seen;
  for (int i = 0; i < 200; ++i) {
    const index_t v = rng.next_index(7);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit over 200 draws
  EXPECT_THROW(rng.next_index(0), Error);
}

TEST(Str, Printf) {
  EXPECT_EQ(strprintf("x=%d y=%.1f", 3, 2.5), "x=3 y=2.5");
  EXPECT_EQ(strprintf("%s", ""), "");
}

TEST(Str, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ", "), "only");
}

TEST(ErrorMacro, ThrowsWithContext) {
  try {
    SMM_EXPECT(1 == 2, "should fail");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("should fail"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace smm
