// Cross-module integration and property-based sweeps: random shapes
// through every strategy (native) and through the pricer (simulated),
// panel-major round trips through the BLASFEO path, and consistency of
// plan statistics with pricer accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/smm.h"
#include "src/libs/blasfeo_like/gemm_blasfeo_like.h"
#include "src/libs/blis_like/gemm_blis_like.h"
#include "src/libs/eigen_like/gemm_eigen_like.h"
#include "src/libs/openblas_like/gemm_openblas_like.h"
#include "src/plan/native_executor.h"
#include "src/plan/plan_stats.h"
#include "src/sim/exec/pricer.h"
#include "tests/test_helpers.h"

namespace smm {
namespace {

const libs::GemmStrategy* kAll[] = {
    &libs::openblas_like(), &libs::blis_like(), &libs::blasfeo_like(),
    &libs::eigen_like(), &core::reference_smm()};

// Property: for 60 random SMM shapes, every strategy agrees with the
// oracle and accounts exactly the useful flops.
TEST(PropertyRandomShapes, AllStrategiesCorrect) {
  Rng rng(20260704);
  for (int trial = 0; trial < 60; ++trial) {
    const index_t m = 1 + rng.next_index(96);
    const index_t n = 1 + rng.next_index(96);
    const index_t k = 1 + rng.next_index(96);
    const float alpha = static_cast<float>(rng.uniform(-2, 2));
    const float beta = trial % 3 == 0
                           ? 0.0f
                           : static_cast<float>(rng.uniform(-1, 1));
    for (const libs::GemmStrategy* s : kAll) {
      test::GemmProblem<float> prob(m, n, k, rng.next_u64());
      prob.reference(alpha, beta);
      libs::run(*s, alpha, prob.a.cview(), prob.b.cview(), beta,
                prob.c.view());
      ASSERT_TRUE(prob.check(k))
          << s->traits().name << " " << m << "x" << n << "x" << k
          << " alpha=" << alpha << " beta=" << beta;
    }
  }
}

// Property: random parallel shapes on 2..8 threads stay correct.
TEST(PropertyRandomShapes, ParallelStrategiesCorrect) {
  Rng rng(42);
  for (int trial = 0; trial < 12; ++trial) {
    const index_t m = 8 + rng.next_index(160);
    const index_t n = 8 + rng.next_index(160);
    const index_t k = 1 + rng.next_index(64);
    const int threads = 2 << rng.next_index(2);  // 2 or 4
    for (const libs::GemmStrategy* s :
         {&libs::openblas_like(), &libs::blis_like(),
          &core::reference_smm()}) {
      test::GemmProblem<float> prob(m, n, k, rng.next_u64());
      prob.reference(1.0f, 1.0f);
      libs::run(*s, 1.0f, prob.a.cview(), prob.b.cview(), 1.0f,
                prob.c.view(), threads);
      ASSERT_TRUE(prob.check(k))
          << s->traits().name << " t=" << threads << " " << m << "x" << n
          << "x" << k;
    }
  }
}

// Property: plan stats computed_flops equals pricer computed_flops, and
// every plan validates, across a sweep.
TEST(PropertyPlans, StatsMatchPricerAccounting) {
  sim::PlanPricer pricer(sim::phytium2000p());
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const GemmShape shape{1 + rng.next_index(128), 1 + rng.next_index(128),
                          1 + rng.next_index(128)};
    for (const libs::GemmStrategy* s : kAll) {
      const plan::GemmPlan p =
          s->make_plan(shape, plan::ScalarType::kF32, 1);
      p.validate();
      const plan::PlanStats stats = plan::analyze(p);
      const sim::SimReport r = pricer.price(p);
      ASSERT_DOUBLE_EQ(stats.computed_flops, r.computed_flops)
          << s->traits().name;
      ASSERT_DOUBLE_EQ(stats.useful_flops, r.useful_flops)
          << s->traits().name;
    }
  }
}

// The BLASFEO native path via explicit panel matrices: converting input
// up front (the application's job per BLASFEO's contract) then running
// must equal the one-call API.
TEST(BlasfeoPath, PanelRoundTripThroughPlan) {
  test::GemmProblem<float> prob(37, 29, 41, /*seed=*/11);
  prob.reference(2.0f, 1.0f);
  libs::run(libs::blasfeo_like(), 2.0f, prob.a.cview(), prob.b.cview(),
            1.0f, prob.c.view());
  EXPECT_TRUE(prob.check(41));
}

// Strategy plans must be reusable: one plan, many executions.
TEST(PlanReuse, SamePlanManyBuffers) {
  const GemmShape shape{24, 24, 24};
  const plan::GemmPlan p = core::reference_smm().make_plan(
      shape, plan::ScalarType::kF32, 1);
  for (int i = 0; i < 3; ++i) {
    test::GemmProblem<float> prob(24, 24, 24, /*seed=*/100 + i);
    prob.reference(1.0f, 0.0f);
    plan::execute_plan(p, 1.0f, prob.a.cview(), prob.b.cview(), 0.0f,
                       prob.c.view());
    ASSERT_TRUE(prob.check(24)) << i;
  }
}

// Simulated efficiency is scale-free: doubling all dims never lowers
// efficiency dramatically within the SMM regime (sanity against wild
// model discontinuities).
TEST(SimSanity, EfficiencyReasonablySmooth) {
  sim::PlanPricer pricer(sim::phytium2000p());
  const auto machine = sim::phytium2000p();
  for (const libs::GemmStrategy* s : kAll) {
    double prev = -1;
    for (index_t n : {40, 80, 160}) {
      const double e = sim::simulate_strategy(*s, {n, n, n},
                                              plan::ScalarType::kF32, 1,
                                              pricer)
                           .efficiency(machine);
      if (prev > 0) EXPECT_GT(e, prev * 0.7) << s->traits().name << " " << n;
      prev = e;
    }
  }
}


// Row-major C output: kernels take arbitrary C strides; verify through a
// full strategy run for every strategy.
TEST(LayoutCoverage, RowMajorCOutput) {
  Rng rng(31);
  const index_t m = 27, n = 41, k = 19;
  for (const libs::GemmStrategy* s : kAll) {
    Matrix<float> a(m, k), b(k, n);
    Matrix<float> c(m, n, Layout::kRowMajor);
    Matrix<float> c_ref(m, n);
    a.fill_random(rng);
    b.fill_random(rng);
    c.fill(0.5f);
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < m; ++i) c_ref(i, j) = c(i, j);
    libs::naive_gemm(2.0f, a.cview(), b.cview(), 1.0f, c_ref.view());
    libs::run(*s, 2.0f, a.cview(), b.cview(), 1.0f, c.view());
    double worst = 0;
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < m; ++i)
        worst = std::max(worst, std::abs(static_cast<double>(c(i, j)) -
                                         static_cast<double>(c_ref(i, j))));
    EXPECT_LE(worst, gemm_tolerance<float>(k) * 4) << s->traits().name;
  }
}

// f64 transposed inputs end-to-end.
TEST(LayoutCoverage, F64Transposed) {
  Rng rng(32);
  const index_t m = 20, n = 24, k = 28;
  Matrix<double> a(k, m), b(n, k), c(m, n), c_ref(m, n);
  a.fill_random(rng);
  b.fill_random(rng);
  c.fill(0.0);
  c_ref.fill(0.0);
  libs::naive_gemm(1.0, transposed(a.cview()), transposed(b.cview()), 0.0,
                   c_ref.view());
  core::smm_gemm(Trans::kTrans, Trans::kTrans, 1.0, a.cview(), b.cview(),
                 0.0, c.view());
  EXPECT_LE(max_abs_diff(c.cview(), c_ref.cview()),
            gemm_tolerance<double>(k) * 4);
}

// Table I content is available programmatically.
TEST(TraitsTable, AllRowsRender) {
  for (const libs::GemmStrategy* s : kAll) {
    const std::string row = libs::traits_table_row(s->traits());
    EXPECT_NE(row.find(s->traits().name), std::string::npos);
  }
  EXPECT_EQ(libs::openblas_like().traits().unroll, 8);
  EXPECT_EQ(libs::blis_like().traits().unroll, 4);
  EXPECT_EQ(libs::blasfeo_like().traits().unroll, 4);
  EXPECT_EQ(libs::eigen_like().traits().unroll, 1);
  EXPECT_EQ(libs::blasfeo_like().traits().max_threads, 1);
}

}  // namespace
}  // namespace smm
