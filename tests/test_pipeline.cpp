// Pipeline-model behaviour: throughput bounds, schedule-quality ordering
// (Fig. 7's claim), latency sensitivity, and structural invariants.
#include <gtest/gtest.h>

#include "src/kernels/schedule.h"
#include "src/kernels/schedules_armv8.h"
#include "src/sim/machine.h"
#include "src/sim/pipeline/pipeline_sim.h"
#include "src/sim/pipeline/uop.h"

namespace smm::sim {
namespace {

const CoreConfig& core() {
  static const CoreConfig c = phytium2000p().core;
  return c;
}

double steady_eff(const kern::KernelSchedule& s, const StreamLatency& lat) {
  // Useful-flop efficiency: 2*mr*nr flops per k over the core peak.
  const double per_k = steady_state_cycles_per_k(s, core(), lat);
  const double flops_per_k = 2.0 * s.mr * s.nr;
  return flops_per_k / (per_k * 8.0);  // 8 sp flops/cycle peak
}

TEST(Pipeline, NeverBeatsFmaPortBound) {
  const auto s = kern::build_schedule(kern::openblas_main_spec(16, 4));
  const StreamLatency lat{3, 3, 3};
  const PipelineResult r = simulate_schedule(s, 64, core(), lat);
  // 16 FMA uops per k-iteration on one port: >= 16 cycles each body-k.
  EXPECT_GE(r.cycles, 16.0 * 64 * s.unroll);
  EXPECT_LE(r.fma_port_utilization, 1.0);
}

TEST(Pipeline, PipelinedMainKernelNearPeak) {
  // A well-scheduled 16x4 at L1 latencies sustains > 90% FMA utilization.
  const auto s = kern::build_schedule(kern::openblas_main_spec(16, 4));
  EXPECT_GT(steady_eff(s, {3, 3, 3}), 0.90);
}

TEST(Pipeline, Fig7ClusteredWorseThanPipelined) {
  // The paper's core claim about edge kernels: the clustered 8x4 layout
  // underperforms a software-pipelined layout of the same tile.
  const auto clustered = kern::fig7_openblas_8x4_schedule();
  const auto pipelined = kern::build_schedule(kern::smm_spec(8, 4));
  // A sliver streaming from the raw shared L2 (no prefetch cover): beyond
  // the scheduling-queue backlog (~16 cycles of lead), the clustered
  // layout's short load-to-use distance is exposed while the pipelined
  // layout still hides it.
  const StreamLatency lat{18, 3, 3};
  EXPECT_LT(steady_eff(clustered, lat), steady_eff(pipelined, lat) - 0.05);
  // At L1 latency both layouts reach the FMA-port bound: the penalty is
  // conditional, which is why the main kernels get away with it on big
  // tiles but edge cases (whose operands stream) do not.
  EXPECT_NEAR(steady_eff(clustered, {3, 3, 3}),
              steady_eff(pipelined, {3, 3, 3}), 0.02);
}

TEST(Pipeline, SimpleStyleWorstOfTheThree) {
  const StreamLatency lat{3, 3, 3};
  const double simple =
      steady_eff(kern::build_schedule(kern::eigen_spec(12, 4)), lat);
  const double clustered =
      steady_eff(kern::build_schedule(kern::openblas_edge_spec(12, 4)), lat);
  const double pipelined =
      steady_eff(kern::build_schedule(kern::smm_spec(12, 4)), lat);
  EXPECT_LT(simple, clustered);
  EXPECT_LT(clustered, pipelined + 1e-9);
  // Eigen's dup-per-B-element costs FP slots: ceiling 12/16.
  EXPECT_LT(simple, 12.0 / 16.0 + 0.02);
}

TEST(Pipeline, TinyTilesAreLoadBound) {
  // 1x4: one FMA but two-plus loads per k — the load ports bound it
  // (Section III-B: small edge kernels cannot keep the FMA pipe busy).
  const auto s = kern::build_schedule(kern::openblas_edge_spec(1, 4));
  EXPECT_LT(steady_eff(s, {3, 3, 3}), 0.75);
}

TEST(Pipeline, LatencySensitivityDependsOnSchedule) {
  // Raising the B latency hurts the clustered layout more than the
  // pipelined one (short load-to-use distance cannot hide it).
  const auto clustered = kern::fig7_openblas_8x4_schedule();
  const auto pipelined = kern::build_schedule(kern::smm_spec(8, 4));
  const double c3 = steady_eff(clustered, {3, 3, 3});
  const double c20 = steady_eff(clustered, {3, 20, 3});
  const double p3 = steady_eff(pipelined, {3, 3, 3});
  const double p20 = steady_eff(pipelined, {3, 20, 3});
  EXPECT_GT((c3 - c20), (p3 - p20) - 1e-9);
}

TEST(Pipeline, ShortKcPaysRampAndEpilogue) {
  const auto s = kern::build_schedule(kern::smm_spec(16, 4));
  const StreamLatency lat{3, 3, 3};
  const double c8 = kernel_invocation_cycles(s, 8, core(), lat);
  const double c64 = kernel_invocation_cycles(s, 64, core(), lat);
  // Per-k cost at kc=8 must exceed per-k cost at kc=64.
  EXPECT_GT(c8 / 8.0, c64 / 64.0);
}

TEST(Pipeline, ExtrapolationMatchesDirectSimulation) {
  const auto s = kern::build_schedule(kern::blis_spec(8, 12));
  const StreamLatency lat{3, 3, 3};
  // kc = 512 is beyond the simulated window; compare against kc = 384
  // (within it) scaled by the steady-state rate.
  const double direct = kernel_invocation_cycles(s, 384, core(), lat);
  const double extrap = kernel_invocation_cycles(s, 512, core(), lat);
  const double per_k = steady_state_cycles_per_k(s, core(), lat);
  EXPECT_NEAR(extrap - direct, 128 * per_k, 0.05 * 128 * per_k);
}

TEST(Pipeline, ZeroBodies) {
  const auto s = kern::build_schedule(kern::smm_spec(8, 4));
  const PipelineResult r = simulate_schedule(s, 0, core(), {3, 3, 3});
  EXPECT_GT(r.cycles, 0.0);  // prologue + epilogue still run
  // No body FMAs; only the C-writeback FMAs of the epilogue remain.
  EXPECT_EQ(r.fma_uops, 8);  // 8x4 tile -> 8 accumulator vectors
}

TEST(Pipeline, QueueDepthMatters) {
  // The relaxed machine (32-entry queues) runs the clustered layout
  // at least as fast — the 16-entry queue is a real constraint.
  const auto s = kern::fig7_openblas_8x4_schedule();
  const StreamLatency lat{7.5, 3, 3};
  CoreConfig tight = core();
  CoreConfig relaxed = phytium2000p_relaxed().core;
  const double t = steady_state_cycles_per_k(s, tight, lat);
  const double r = steady_state_cycles_per_k(s, relaxed, lat);
  EXPECT_LE(r, t + 1e-9);
}

TEST(Pipeline, DispatchWidthBounds) {
  // Total cycles can never beat uops / dispatch width.
  const auto s = kern::build_schedule(kern::blis_spec(8, 12));
  const PipelineResult r = simulate_schedule(s, 16, core(), {3, 3, 3});
  EXPECT_GE(r.cycles,
            static_cast<double>(r.uops) / core().dispatch_width - 1);
}


TEST(UopRender, ListingsContainExpectedMnemonics) {
  const auto s = kern::fig7_openblas_8x4_schedule();
  const std::string text = render_schedule(s);
  EXPECT_NE(text.find("ldp.s"), std::string::npos);
  EXPECT_NE(text.find("ldr.q"), std::string::npos);
  EXPECT_NE(text.find("fmla"), std::string::npos);
  EXPECT_NE(text.find("-- body"), std::string::npos);
  EXPECT_NE(text.find("openblas-fig7-8x4"), std::string::npos);
}

TEST(UopRender, EveryKindHasAMnemonic) {
  using kern::UopKind;
  for (const auto kind :
       {UopKind::kLoadVec, UopKind::kLoadPair, UopKind::kLoadScalar,
        UopKind::kStoreVec, UopKind::kFma, UopKind::kFmul, UopKind::kFadd,
        UopKind::kVZero, UopKind::kDup, UopKind::kInt, UopKind::kBranch}) {
    EXPECT_STRNE(to_string(kind), "?");
  }
}

TEST(Pipeline, StallCounterMovesWithLatency) {
  // More exposed latency -> at least as many dispatch stalls.
  const auto s = kern::fig7_openblas_8x4_schedule();
  const auto fast = simulate_schedule(s, 64, core(), {3, 3, 3});
  const auto slow = simulate_schedule(s, 64, core(), {48, 3, 3});
  EXPECT_GE(slow.dispatch_stall_cycles, fast.dispatch_stall_cycles);
  EXPECT_GT(slow.cycles, fast.cycles);
}

}  // namespace
}  // namespace smm::sim
