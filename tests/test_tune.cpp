// smm::tune — online input-aware autotuning (DESIGN.md §14): mode knob,
// sampling/EWMA mechanics, the explore→commit state machine, persisted
// table hygiene (corrupt/truncated/foreign files rejected and rebuilt),
// the warm start (second process reaches steady state with zero
// re-plans), and the tuner's feedback into service admission budgets.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "src/common/cancel.h"
#include "src/core/parallel_cost.h"
#include "src/core/plan_cache.h"
#include "src/core/smm.h"
#include "src/plan/native_executor.h"
#include "src/robust/health.h"
#include "src/service/smm_service.h"
#include "src/tune/tune.h"
#include "src/tune/tune_table.h"
#include "tests/test_helpers.h"

namespace smm::tune {
namespace {

/// Every test in this binary touches process-wide knobs (the mode
/// override, the global tuner, health counters); scrub them on both
/// sides so tests stay order-independent.
class TuneTest : public ::testing::Test {
 protected:
  void SetUp() override { scrub(); }
  void TearDown() override { scrub(); }
  static void scrub() {
    set_mode_override(Mode::kAuto);
    tuner().reset();
    robust::health().reset();
  }
};

ShapeClass cls(index_t m, index_t n, index_t k) {
  return ShapeClass{m, n, k, /*scalar=*/0, /*nthreads=*/1};
}

/// Drive `t` through baseline → explore → commit for `sc`: inflated
/// baseline samples force the divergence trigger, then each trial sample
/// reports a cost derived from the active candidate's spec via `cost`,
/// so the test controls which candidate wins. Returns the committed
/// snapshot.
ClassSnapshot drive_to_commit(Tuner& t, const ShapeClass& sc,
                              double (*cost)(const core::BuildSpec&)) {
  // Baseline: hugely diverged from any prediction.
  for (int i = 0; i < 64; ++i) {
    const auto snaps = t.snapshot_classes();
    if (!snaps.empty() && snaps[0].exploring) break;
    t.record(sc, SampleToken{true, snaps.empty() ? 0u : snaps[0].epoch},
             1.0e9, {});
  }
  // Trials: cost keyed off the installed candidate.
  for (int i = 0; i < 256; ++i) {
    const auto snaps = t.snapshot_classes();
    if (snaps.empty()) break;
    if (snaps[0].committed) break;
    const SampleToken token = t.sample_token(sc);
    if (!token.sample) continue;
    const PlanChoice choice = t.plan_choice(sc);
    t.record(sc, token, choice.has_spec ? cost(choice.spec) : 5.0e8, {});
  }
  const auto snaps = t.snapshot_classes();
  EXPECT_EQ(snaps.size(), 1u);
  EXPECT_TRUE(snaps[0].committed);
  return snaps.empty() ? ClassSnapshot{} : snaps[0];
}

double prefer_small_kc(const core::BuildSpec& spec) {
  return 1000.0 + static_cast<double>(spec.kc);
}

// ---- mode knob -------------------------------------------------------------

TEST_F(TuneTest, ModeOverrideWinsAndAutoReturnsToEnv) {
  const Mode env = mode();  // whatever SMMKIT_AUTOTUNE resolves to
  set_mode_override(Mode::kAdapt);
  EXPECT_EQ(mode(), Mode::kAdapt);
  set_mode_override(Mode::kOff);
  EXPECT_EQ(mode(), Mode::kOff);
  set_mode_override(Mode::kAuto);
  EXPECT_EQ(mode(), env);
  EXPECT_STREQ(to_string(Mode::kObserve), "observe");
  EXPECT_STREQ(to_string(Mode::kAdapt), "adapt");
}

// ---- sampling + EWMA -------------------------------------------------------

TEST_F(TuneTest, SamplePeriodGatesTokensAndOffDisablesThem) {
  Tuner::Options opt;
  opt.sample_period = 8;
  Tuner t(opt);
  set_mode_override(Mode::kObserve);
  const ShapeClass sc = cls(24, 24, 24);
  int sampled = 0;
  for (int i = 0; i < 64; ++i)
    if (t.sample_token(sc).sample) ++sampled;
  EXPECT_EQ(sampled, 8);  // exactly 1-in-8
  set_mode_override(Mode::kOff);
  for (int i = 0; i < 64; ++i) EXPECT_FALSE(t.sample_token(sc).sample);
}

TEST_F(TuneTest, EwmaConvergesAndObservedCostNeedsMinSamples) {
  Tuner::Options opt;
  opt.min_samples = 4;
  opt.ewma_alpha = 0.5;
  Tuner t(opt);
  set_mode_override(Mode::kObserve);
  const ShapeClass sc = cls(16, 16, 16);
  for (int i = 0; i < 3; ++i) t.record(sc, {true, 0}, 1000.0, {});
  EXPECT_FALSE(t.observed_cost_ns(16, 16, 16, 0, 1).has_value());
  t.record(sc, {true, 0}, 1000.0, {});
  const auto got = t.observed_cost_ns(16, 16, 16, 0, 1);
  ASSERT_TRUE(got.has_value());
  EXPECT_NEAR(*got, 1000.0, 1e-9);
  // The any-scalar query (scalar < 0) serves the same class.
  EXPECT_TRUE(t.observed_cost_ns(16, 16, 16, -1, 1).has_value());
  // A different shape/thread budget is a different class: no data.
  EXPECT_FALSE(t.observed_cost_ns(16, 16, 17, 0, 1).has_value());
  EXPECT_FALSE(t.observed_cost_ns(16, 16, 16, 0, 2).has_value());
  EXPECT_EQ(t.samples(), 4u);
}

TEST_F(TuneTest, StaleEpochSamplesAreDiscarded) {
  Tuner t;
  set_mode_override(Mode::kObserve);
  const ShapeClass sc = cls(16, 16, 16);
  t.record(sc, {true, 0}, 500.0, {});
  // Epoch 7 never happened for this class: the sample must be dropped.
  t.record(sc, {true, 7}, 9.0e9, {});
  EXPECT_EQ(t.samples(), 1u);
  // Non-finite and non-positive walls are not observations either.
  t.record(sc, {true, 0}, -1.0, {});
  t.record(sc, {true, 0}, 0.0, {});
  EXPECT_EQ(t.samples(), 1u);
}

// ---- explore / commit state machine ----------------------------------------

TEST_F(TuneTest, DivergenceTriggersExploreAndCommitsBestCandidate) {
  set_mode_override(Mode::kAdapt);
  Tuner::Options opt;
  opt.min_samples = 3;
  opt.trial_samples = 2;
  opt.max_candidates = 3;
  Tuner t(opt);
  const ShapeClass sc = cls(64, 64, 64);

  EXPECT_FALSE(t.plan_choice(sc).has_spec);  // unknown class: default
  const ClassSnapshot committed = drive_to_commit(t, sc, prefer_small_kc);

  // The winner is the trialed candidate with the smallest kc (the cost
  // function preferred it), installed as an override under a bumped
  // epoch whose fingerprint perturbs the plan-cache key.
  EXPECT_GT(t.replans(), 0u);
  EXPECT_GT(committed.epoch, 0u);
  const PlanChoice choice = t.plan_choice(sc);
  ASSERT_TRUE(choice.has_spec);
  EXPECT_NE(choice.fingerprint, 0u);
  EXPECT_EQ(choice.spec.kc, committed.spec.kc);
  // Off/observe modes refuse to speak for the plan even when committed.
  set_mode_override(Mode::kOff);
  EXPECT_FALSE(t.plan_choice(sc).has_spec);
  set_mode_override(Mode::kObserve);
  EXPECT_FALSE(t.plan_choice(sc).has_spec);
}

TEST_F(TuneTest, CommittedClassReopensOnDrift) {
  set_mode_override(Mode::kAdapt);
  Tuner::Options opt;
  opt.min_samples = 3;
  opt.trial_samples = 2;
  opt.max_candidates = 2;
  opt.sample_period = 1;  // the drift samples must not be rationed
  Tuner t(opt);
  const ShapeClass sc = cls(32, 32, 96);
  drive_to_commit(t, sc, prefer_small_kc);
  const std::uint64_t replans_before = t.replans();

  // The committed cost drifts 100x: the class must re-open.
  for (int i = 0; i < 32; ++i) {
    const auto snaps = t.snapshot_classes();
    ASSERT_EQ(snaps.size(), 1u);
    if (snaps[0].exploring) break;
    const SampleToken token = t.sample_token(sc);
    if (!token.sample) continue;
    t.record(sc, token, 2.0e8, {});
  }
  EXPECT_TRUE(t.snapshot_classes()[0].exploring);
  EXPECT_GT(t.replans(), replans_before);
}

// ---- plan integration ------------------------------------------------------

TEST_F(TuneTest, OffAndObserveLeaveCachedPlanDecisionsUntouched) {
  const GemmShape shape{48, 48, 48};
  // The baseline: what the untouched runtime path builds.
  set_mode_override(Mode::kOff);
  core::PlanCache cache_off(core::reference_smm());
  const auto p_off = core::cached_smm_plan(cache_off, shape,
                                           plan::ScalarType::kF32, 1, {});
  // Observe mode measures but never redecides: bit-identical strategy.
  set_mode_override(Mode::kObserve);
  core::PlanCache cache_obs(core::reference_smm());
  const auto p_obs = core::cached_smm_plan(cache_obs, shape,
                                           plan::ScalarType::kF32, 1, {});
  EXPECT_EQ(p_off->strategy, p_obs->strategy);
  EXPECT_EQ(p_off->strategy, "smm-ref");
  EXPECT_EQ(p_off->nthreads, p_obs->nthreads);
  EXPECT_EQ(p_off->buffers.size(), p_obs->buffers.size());
}

TEST_F(TuneTest, AdaptServesCommittedWinnerThroughThePlanCache) {
  set_mode_override(Mode::kAdapt);
  const ShapeClass sc = cls(40, 40, 40);
  drive_to_commit(tuner(), sc, prefer_small_kc);
  ASSERT_TRUE(tuner().plan_choice(sc).has_spec);

  core::PlanCache cache(core::reference_smm());
  const auto tuned = core::cached_smm_plan(cache, GemmShape{40, 40, 40},
                                           plan::ScalarType::kF32, 1, {});
  EXPECT_EQ(tuned->strategy, "smm-tuned");
  // The tuned plan must still be correct end to end.
  test::GemmProblem<float> p(40, 40, 40, /*seed=*/11);
  p.reference(1.5f, 0.5f);
  core::smm_gemm(1.5f, p.a.cview(), p.b.cview(), 0.5f, p.c.view());
  EXPECT_TRUE(p.check(40));
  // Dropping back to off re-aliases the default entry, not the winner.
  set_mode_override(Mode::kOff);
  const auto off = core::cached_smm_plan(cache, GemmShape{40, 40, 40},
                                         plan::ScalarType::kF32, 1, {});
  EXPECT_EQ(off->strategy, "smm-ref");
}

TEST_F(TuneTest, ExplicitPackingOptionsAreNeverOverruled) {
  set_mode_override(Mode::kAdapt);
  const ShapeClass sc = cls(44, 44, 44);
  drive_to_commit(tuner(), sc, prefer_small_kc);
  ASSERT_TRUE(tuner().plan_choice(sc).has_spec);
  // The caller pinned packing: the tuner must stand aside.
  core::SmmOptions options;
  options.pack_b = core::SmmOptions::Packing::kNever;
  core::PlanCache cache(core::reference_smm());
  const auto p = core::cached_smm_plan(cache, GemmShape{44, 44, 44},
                                       plan::ScalarType::kF32, 1, options);
  EXPECT_EQ(p->strategy, "smm-ref");
}

// ---- timed executor with cancellation --------------------------------------

TEST_F(TuneTest, TimedExecutorHonorsCancelAndFillsTimings) {
  const GemmShape shape{32, 32, 32};
  set_mode_override(Mode::kOff);
  core::PlanCache cache(core::reference_smm());
  const auto plan = core::cached_smm_plan(cache, shape,
                                          plan::ScalarType::kF32, 1, {});
  test::GemmProblem<float> p(32, 32, 32, /*seed=*/3);
  p.reference(1.0f, 0.0f);
  std::vector<plan::ThreadTiming> timings;
  CancelSource src;
  plan::execute_plan_timed(*plan, 1.0f, p.a.cview(), p.b.cview(), 0.0f,
                           p.c.view(), timings, src.token());
  EXPECT_TRUE(p.check(32));
  ASSERT_EQ(timings.size(), static_cast<std::size_t>(plan->nthreads));
  EXPECT_GT(timings[0].total_ns, 0.0);
  // A pre-stopped token rejects before the first op: C untouched.
  Matrix<float> c_before = p.c.clone();
  src.request_cancel();
  EXPECT_THROW(plan::execute_plan_timed(*plan, 1.0f, p.a.cview(),
                                        p.b.cview(), 0.0f, p.c.view(),
                                        timings, src.token()),
               Error);
  EXPECT_EQ(max_abs_diff(p.c.cview(), c_before.cview()), 0.0);
}

// ---- persistence -----------------------------------------------------------

class TableTest : public TuneTest {
 protected:
  void SetUp() override {
    TuneTest::SetUp();
    dir_ = "tune_test_tables";
    ::mkdir(dir_.c_str(), 0755);
    path_ = Tuner::table_path(dir_);
    std::remove(path_.c_str());
  }
  void TearDown() override {
    std::remove(path_.c_str());
    ::rmdir(dir_.c_str());
    TuneTest::TearDown();
  }
  std::string dir_;
  std::string path_;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void dump(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST_F(TableTest, RoundTripsEntriesAndModel) {
  const MachineFingerprint fp = machine_fingerprint();
  model::ParallelCostModel model = core::calibrated_cost_model();
  std::vector<TableEntry> entries(2);
  entries[0].key = cls(16, 16, 16);
  entries[0].epoch = 3;
  entries[0].has_override = true;
  entries[0].spec.kc = 128;
  entries[0].spec.pack_b = true;
  entries[0].mean_ns = 1234.5;
  entries[0].samples = 40;
  entries[1].key = cls(64, 64, 512);
  entries[1].has_override = false;
  ASSERT_TRUE(write_table(path_, fp, model, entries));

  model::ParallelCostModel got_model;
  std::vector<TableEntry> got;
  ASSERT_EQ(read_table(path_, fp, &got_model, &got), TableStatus::kOk);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].key, entries[0].key);
  EXPECT_EQ(got[0].epoch, 3u);
  EXPECT_TRUE(got[0].has_override);
  EXPECT_EQ(got[0].spec.kc, 128);
  EXPECT_TRUE(got[0].spec.pack_b);
  EXPECT_DOUBLE_EQ(got[0].mean_ns, 1234.5);
  EXPECT_EQ(got[0].samples, 40u);
  EXPECT_FALSE(got[1].has_override);
  EXPECT_EQ(model::cost_model_digest(got_model),
            model::cost_model_digest(model));
}

TEST_F(TableTest, CorruptTruncatedAndForeignTablesAreRejected) {
  const MachineFingerprint fp = machine_fingerprint();
  ASSERT_TRUE(
      write_table(path_, fp, core::calibrated_cost_model(), {}));
  const std::string good = slurp(path_);
  ASSERT_FALSE(good.empty());

  // Missing file.
  model::ParallelCostModel m;
  std::vector<TableEntry> e;
  EXPECT_EQ(read_table(path_ + ".nope", fp, &m, &e),
            TableStatus::kMissing);

  // One flipped payload bit breaks the seal.
  std::string bad = good;
  bad[bad.size() / 2] = static_cast<char>(bad[bad.size() / 2] ^ 0x40);
  dump(path_, bad);
  EXPECT_EQ(read_table(path_, fp, &m, &e), TableStatus::kCorrupt);

  // A torn write (truncation) breaks it too.
  dump(path_, good.substr(0, good.size() - 5));
  EXPECT_EQ(read_table(path_, fp, &m, &e), TableStatus::kCorrupt);
  dump(path_, good.substr(0, 4));
  EXPECT_EQ(read_table(path_, fp, &m, &e), TableStatus::kCorrupt);

  // Another machine's table: valid seal, wrong fingerprint.
  MachineFingerprint foreign = fp;
  foreign.cores = fp.cores + 8;
  ASSERT_TRUE(
      write_table(path_, foreign, core::calibrated_cost_model(), {}));
  EXPECT_EQ(read_table(path_, fp, &m, &e), TableStatus::kForeign);
  EXPECT_TRUE(e.empty());
}

TEST_F(TableTest, LoadRejectsBadTablesAndCountsThemStale) {
  Tuner t;
  // Missing: a cold start, not an anomaly.
  EXPECT_FALSE(t.load_table(path_));
  EXPECT_EQ(t.table_stale(), 0u);
  // Corrupt: rejected, counted, rebuilt from scratch.
  dump(path_, "garbage that is definitely not a tune table");
  const auto stale_before =
      robust::health().snapshot().tune_table_stale;
  EXPECT_FALSE(t.load_table(path_));
  EXPECT_EQ(t.table_stale(), 1u);
  EXPECT_EQ(robust::health().snapshot().tune_table_stale,
            stale_before + 1);
  EXPECT_TRUE(t.snapshot_classes().empty());
}

TEST_F(TableTest, WarmStartReachesSteadyStateWithZeroReplans) {
  // First process: tune, commit, persist.
  set_mode_override(Mode::kAdapt);
  Tuner::Options opt;
  opt.min_samples = 3;
  opt.trial_samples = 2;
  opt.max_candidates = 3;
  opt.table_dir = dir_;
  Tuner first(opt);
  const ShapeClass sc = cls(56, 56, 56);
  const ClassSnapshot committed =
      drive_to_commit(first, sc, prefer_small_kc);
  // The commit itself persisted the table (no explicit save here).
  struct ::stat st{};
  ASSERT_EQ(::stat(path_.c_str(), &st), 0) << "commit did not persist";

  // Second process: loads the table, reaches steady state immediately —
  // zero re-plans, zero exploration, the winner served from call one.
  Tuner second(opt);
  ASSERT_TRUE(second.load_table(path_));
  EXPECT_EQ(second.replans(), 0u);
  EXPECT_GT(second.table_hits(), 0u);
  const auto classes = second.snapshot_classes();
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_TRUE(classes[0].committed);
  EXPECT_TRUE(classes[0].from_table);
  const PlanChoice choice = second.plan_choice(sc);
  ASSERT_TRUE(choice.has_spec);
  EXPECT_EQ(choice.spec.kc, committed.spec.kc);

  // Steady-state traffic at the committed cost: the class must neither
  // re-plan nor re-explore (explored_once came from the table).
  for (int i = 0; i < 200; ++i) {
    const SampleToken token = second.sample_token(sc);
    if (token.sample)
      second.record(sc, token, committed.ewma_ns, {});
  }
  EXPECT_EQ(second.replans(), 0u);
  EXPECT_FALSE(second.snapshot_classes()[0].exploring);
}

// ---- service budgets -------------------------------------------------------

TEST_F(TuneTest, ServiceBudgetsFollowObservedCostButRoutingDoesNot) {
  set_mode_override(Mode::kObserve);
  service::ServiceOptions options;
  options.shards = 4;
  options.lanes = 1;
  service::SmmService svc(options);
  const index_t m = 72, n = 72, k = 72;
  const double static_est = svc.estimate_cost_ns(m, n, k);
  const int home = svc.route_shard(m, n, k, 0);

  // The tuner observes this class costing 100x the static estimate
  // (scalar=0 here; the service queries scalar-agnostically).
  const ShapeClass sc{m, n, k, 0, options.threads_per_request};
  const double observed = static_est * 100.0;
  for (int i = 0; i < 8; ++i) tuner().record(sc, {true, 0}, observed, {});

  // Budgets re-read from the tune table; the route must not move.
  EXPECT_NEAR(svc.estimate_cost_ns(m, n, k), observed, observed * 1e-9);
  EXPECT_EQ(svc.route_shard(m, n, k, 0), home);
  // Off switches the budgets back to the static constants.
  set_mode_override(Mode::kOff);
  EXPECT_NEAR(svc.estimate_cost_ns(m, n, k), static_est,
              static_est * 1e-9);
  svc.shutdown();
}

// ---- health ----------------------------------------------------------------

TEST_F(TuneTest, HealthMirrorsSamplesAndReplans) {
  set_mode_override(Mode::kAdapt);
  Tuner::Options opt;
  opt.min_samples = 3;
  opt.trial_samples = 2;
  opt.max_candidates = 2;
  Tuner t(opt);
  drive_to_commit(t, cls(20, 20, 80), prefer_small_kc);
  const auto s = robust::health().snapshot();
  EXPECT_EQ(s.tune_samples, t.samples());
  EXPECT_EQ(s.tune_replans, t.replans());
  EXPECT_GT(s.tune_replans, 0u);
  EXPECT_LE(s.tune_replans, s.tune_samples);
}

}  // namespace
}  // namespace smm::tune
