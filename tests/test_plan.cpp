// Plan structure: validation, stats, chunking helpers and the native
// executor on hand-crafted plans.
#include <gtest/gtest.h>

#include "src/libs/goto_common.h"
#include "src/libs/openblas_like/gemm_openblas_like.h"
#include "src/libs/blis_like/gemm_blis_like.h"
#include "src/plan/native_executor.h"
#include "src/plan/plan.h"
#include "src/plan/plan_stats.h"
#include "tests/test_helpers.h"

namespace smm::plan {
namespace {

using libs::Chunk;
using libs::EdgeStrategy;

TEST(ChunkDim, EdgeKernelDecomposition) {
  const auto chunks = libs::chunk_dim(75, 16, EdgeStrategy::kEdgeKernels,
                                      {16, 8, 4, 2, 1});
  // 4 full 16s then 8 + 2 + 1 — the paper's Section III-B example.
  ASSERT_EQ(chunks.size(), 7u);
  EXPECT_EQ(chunks[3].tile, 16);
  EXPECT_EQ(chunks[4].tile, 8);
  EXPECT_EQ(chunks[5].tile, 2);
  EXPECT_EQ(chunks[6].tile, 1);
  EXPECT_EQ(chunks[6].offset, 74);
  for (const auto& c : chunks) EXPECT_EQ(c.tile, c.useful);
}

TEST(ChunkDim, PaddingKeepsFullTiles) {
  const auto chunks =
      libs::chunk_dim(75, 8, EdgeStrategy::kPadding, {});
  ASSERT_EQ(chunks.size(), 10u);
  EXPECT_EQ(chunks[9].tile, 8);
  EXPECT_EQ(chunks[9].useful, 3);
}

TEST(ChunkDim, ZeroExtent) {
  EXPECT_TRUE(
      libs::chunk_dim(0, 8, EdgeStrategy::kPadding, {}).empty());
}

TEST(ChunkDim, ElemOffsets) {
  const auto chunks = libs::chunk_dim(11, 8, EdgeStrategy::kEdgeKernels,
                                      {8, 4, 2, 1});
  const auto offsets = libs::chunk_elem_offsets(chunks, 10);
  ASSERT_EQ(offsets.size(), chunks.size());
  EXPECT_EQ(offsets[0], 0);
  EXPECT_EQ(offsets[1], 80);  // first chunk is 8 tall x kc 10
}

TEST(PlanValidate, CatchesBufferOverflow) {
  GemmPlan plan;
  plan.shape = {8, 8, 8};
  plan.nthreads = 1;
  plan.thread_ops.assign(1, {});
  const int buf = add_buffer(plan, 4);  // too small
  PackAOp op;
  op.buffer = buf;
  op.mc = 8;
  op.kc = 8;
  op.mr = 8;
  plan.thread_ops[0].push_back(op);
  EXPECT_THROW(plan.validate(), Error);
}

TEST(PlanValidate, CatchesBadBarrierArity) {
  GemmPlan plan;
  plan.shape = {4, 4, 4};
  plan.nthreads = 2;
  plan.thread_ops.assign(2, {});
  const int bar = add_barrier(plan, 2);
  plan.thread_ops[0].push_back(BarrierOp{bar});
  // Thread 1 never arrives: arity mismatch.
  EXPECT_THROW(plan.validate(), Error);
}

TEST(PlanValidate, CatchesKernelOutOfC) {
  GemmPlan plan;
  plan.shape = {4, 4, 4};
  plan.nthreads = 1;
  plan.thread_ops.assign(1, {});
  KernelOp op;
  op.kernel = kern::KernelRegistry::instance().find_tile("openblas", 4, 4);
  op.kc = 4;
  op.i0 = 2;  // 2 + 4 > 4
  op.useful_m = 4;
  op.useful_n = 4;
  op.a.kind = OperandRef::Kind::kDirectA;
  op.b.kind = OperandRef::Kind::kDirectB;
  plan.thread_ops[0].push_back(op);
  EXPECT_THROW(plan.validate(), Error);
}

TEST(PlanStats, CountsAndFlops) {
  const GemmShape shape{75, 60, 60};
  const GemmPlan plan = libs::openblas_like().make_plan(
      shape, ScalarType::kF32, 1);
  const PlanStats stats = analyze(plan);
  EXPECT_GT(stats.kernel_ops, 0);
  EXPECT_EQ(stats.pack_a_ops, 1);
  EXPECT_EQ(stats.pack_b_ops, 1);
  EXPECT_DOUBLE_EQ(stats.useful_flops, shape.flops());
  // Edge kernels (not padding): computed == useful.
  EXPECT_DOUBLE_EQ(stats.computed_flops, stats.useful_flops);
  // The 75-row edge uses the 8, 2 and 1 kernels (Section III-B example).
  EXPECT_TRUE(stats.kernel_mix.count("openblas/8x4"));
  EXPECT_TRUE(stats.kernel_mix.count("openblas/2x4"));
  EXPECT_TRUE(stats.kernel_mix.count("openblas/1x4"));
}

TEST(PlanStats, BlisPaddingOverhead) {
  // 9x13 with an 8x12 padded kernel: tiles 2x2, computed = 16*24*k.
  const GemmShape shape{9, 13, 32};
  const GemmPlan plan =
      libs::blis_like().make_plan(shape, ScalarType::kF32, 1);
  const PlanStats stats = analyze(plan);
  EXPECT_DOUBLE_EQ(stats.useful_flops, shape.flops());
  EXPECT_DOUBLE_EQ(stats.computed_flops, 2.0 * 16 * 24 * 32);
  EXPECT_GT(stats.padding_overhead(), 1.5);
}

TEST(NativeExecutor, HandBuiltDirectPlan) {
  // One kernel op reading A and B directly: C = A*B for 4x4x6.
  const GemmShape shape{4, 4, 6};
  GemmPlan plan;
  plan.strategy = "hand";
  plan.shape = shape;
  plan.scalar = ScalarType::kF32;
  plan.nthreads = 1;
  plan.thread_ops.assign(1, {});
  KernelOp op;
  op.kernel = kern::KernelRegistry::instance().find_tile("smm-direct", 4, 4);
  op.kc = 6;
  op.useful_m = 4;
  op.useful_n = 4;
  op.a.kind = OperandRef::Kind::kDirectA;
  op.b.kind = OperandRef::Kind::kDirectB;
  plan.thread_ops[0].push_back(op);
  plan.validate();

  test::GemmProblem<float> prob(4, 4, 6, /*seed=*/17);
  prob.reference(1.0f, 0.0f);
  execute_plan(plan, 1.0f, prob.a.cview(), prob.b.cview(), 0.0f,
               prob.c.view());
  EXPECT_TRUE(prob.check(6));
}

TEST(NativeExecutor, ScalarTypeMismatchThrows) {
  const GemmPlan plan = libs::openblas_like().make_plan(
      {8, 8, 8}, ScalarType::kF32, 1);
  test::GemmProblem<double> prob(8, 8, 8, 3);
  EXPECT_THROW(execute_plan(plan, 1.0, prob.a.cview(), prob.b.cview(), 0.0,
                            prob.c.view()),
               Error);
}

TEST(NativeExecutor, ShapeMismatchThrows) {
  const GemmPlan plan = libs::openblas_like().make_plan(
      {8, 8, 8}, ScalarType::kF32, 1);
  test::GemmProblem<float> prob(8, 8, 9, 3);
  EXPECT_THROW(execute_plan(plan, 1.0f, prob.a.cview(), prob.b.cview(), 0.0f,
                            prob.c.view()),
               Error);
}

TEST(GridPlan, BarrierStructure) {
  const GemmPlan plan = libs::openblas_like().make_plan(
      {64, 64, 64}, ScalarType::kF32, 4);
  EXPECT_EQ(plan.nthreads, 4);
  // OpenBLAS splits M across all threads (Section III-D: workload
  // mc/threads x nc x kc): one column group, one barrier of everyone.
  EXPECT_EQ(plan.barriers.size(), 1u);
  EXPECT_EQ(plan.barriers[0].participants, 4);
  plan.validate();
}

TEST(WaysPlan, SharedBuffersPerGroup) {
  const GemmPlan plan =
      libs::blis_like().make_plan({128, 512, 64}, ScalarType::kF32, 8);
  plan.validate();
  const PlanStats stats = analyze(plan);
  EXPECT_GT(stats.barrier_ops, 0);
  EXPECT_DOUBLE_EQ(stats.useful_flops, (GemmShape{128, 512, 64}).flops());
}

}  // namespace
}  // namespace smm::plan
