// End-to-end numerical correctness of every GEMM strategy: each plan is
// executed natively and compared against the naive oracle, across shapes
// (square, edge-heavy, tall/skinny/short), alpha/beta combinations, scalar
// types and thread counts.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>

#include "src/core/smm.h"
#include "src/libs/blasfeo_like/gemm_blasfeo_like.h"
#include "src/libs/blis_like/gemm_blis_like.h"
#include "src/libs/eigen_like/gemm_eigen_like.h"
#include "src/libs/gemm_interface.h"
#include "src/libs/openblas_like/gemm_openblas_like.h"
#include "src/plan/plan_stats.h"
#include "tests/test_helpers.h"

namespace smm {
namespace {

const libs::GemmStrategy* strategy_by_name(const std::string& name) {
  if (name == "openblas") return &libs::openblas_like();
  if (name == "blis") return &libs::blis_like();
  if (name == "blasfeo") return &libs::blasfeo_like();
  if (name == "eigen") return &libs::eigen_like();
  if (name == "smm-ref") return &core::reference_smm();
  return nullptr;
}

using ShapeTuple = std::tuple<index_t, index_t, index_t>;

class StrategyCorrectness
    : public ::testing::TestWithParam<std::tuple<std::string, ShapeTuple>> {
};

TEST_P(StrategyCorrectness, MatchesNaiveF32) {
  const auto& [name, shape] = GetParam();
  const auto [m, n, k] = shape;
  const libs::GemmStrategy* strategy = strategy_by_name(name);
  ASSERT_NE(strategy, nullptr);
  test::GemmProblem<float> prob(m, n, k, /*seed=*/m * 1315423911u + n * 31u + k);
  prob.reference(1.5f, 0.5f);
  libs::run(*strategy, 1.5f, prob.a.cview(), prob.b.cview(), 0.5f,
            prob.c.view());
  EXPECT_TRUE(prob.check(k)) << name << " " << m << "x" << n << "x" << k;
}

TEST_P(StrategyCorrectness, MatchesNaiveF64) {
  const auto& [name, shape] = GetParam();
  const auto [m, n, k] = shape;
  const libs::GemmStrategy* strategy = strategy_by_name(name);
  ASSERT_NE(strategy, nullptr);
  test::GemmProblem<double> prob(m, n, k, /*seed=*/m * 77u + n * 13u + k);
  prob.reference(-0.75, 2.0);
  libs::run(*strategy, -0.75, prob.a.cview(), prob.b.cview(), 2.0,
            prob.c.view());
  EXPECT_TRUE(prob.check(k)) << name << " " << m << "x" << n << "x" << k;
}

TEST_P(StrategyCorrectness, BetaZeroDoesNotReadC) {
  const auto& [name, shape] = GetParam();
  const auto [m, n, k] = shape;
  const libs::GemmStrategy* strategy = strategy_by_name(name);
  ASSERT_NE(strategy, nullptr);
  test::GemmProblem<float> prob(m, n, k, /*seed=*/99);
  // Poison C with NaN: beta == 0 must overwrite, never accumulate.
  prob.c.fill(std::numeric_limits<float>::quiet_NaN());
  prob.c_expected.fill(0.0f);
  prob.reference(2.0f, 0.0f);
  libs::run(*strategy, 2.0f, prob.a.cview(), prob.b.cview(), 0.0f,
            prob.c.view());
  EXPECT_TRUE(prob.check(k)) << name;
}

TEST_P(StrategyCorrectness, UsefulFlopsAccounted) {
  const auto& [name, shape] = GetParam();
  const auto [m, n, k] = shape;
  const libs::GemmStrategy* strategy = strategy_by_name(name);
  ASSERT_NE(strategy, nullptr);
  const plan::GemmPlan p = strategy->make_plan(GemmShape{m, n, k},
                                               plan::ScalarType::kF32, 1);
  const plan::PlanStats stats = plan::analyze(p);
  // Every useful flop is emitted exactly once.
  EXPECT_DOUBLE_EQ(stats.useful_flops, (GemmShape{m, n, k}).flops())
      << name;
  // Padding never computes more than the padded bounding tiles.
  EXPECT_GE(stats.computed_flops, stats.useful_flops);
}

const ShapeTuple kShapes[] = {
    {1, 1, 1},     {2, 3, 4},     {5, 5, 5},     {8, 8, 8},
    {16, 16, 16},  {15, 17, 19},  {16, 4, 64},   {4, 16, 64},
    {31, 33, 37},  {48, 48, 48},  {64, 64, 64},  {75, 60, 60},
    {80, 80, 80},  {100, 100, 100}, {11, 4, 200}, {200, 8, 8},
    {8, 200, 8},   {8, 8, 200},   {2, 200, 200}, {200, 2, 200},
    {200, 200, 2}, {97, 101, 103},
};

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StrategyCorrectness,
    ::testing::Combine(::testing::Values("openblas", "blis", "blasfeo",
                                         "eigen", "smm-ref"),
                       ::testing::ValuesIn(kShapes)),
    [](const auto& info) {
      const auto& shape = std::get<1>(info.param);
      std::string name = std::get<0>(info.param);
      for (auto& ch : name)
        if (ch == '-') ch = '_';
      return name + "_" +
             std::to_string(std::get<0>(shape)) + "x" +
             std::to_string(std::get<1>(shape)) + "x" +
             std::to_string(std::get<2>(shape));
    });

// ---- Multi-threaded native execution -------------------------------------

class ParallelCorrectness
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(ParallelCorrectness, MatchesNaive) {
  const auto& [name, threads] = GetParam();
  const libs::GemmStrategy* strategy = strategy_by_name(name);
  ASSERT_NE(strategy, nullptr);
  for (const auto& [m, n, k] :
       {ShapeTuple{64, 64, 64}, ShapeTuple{16, 96, 80},
        ShapeTuple{130, 70, 33}}) {
    test::GemmProblem<float> prob(m, n, k, /*seed=*/threads * 1000 + m);
    prob.reference(1.0f, 1.0f);
    libs::run(*strategy, 1.0f, prob.a.cview(), prob.b.cview(), 1.0f,
              prob.c.view(), threads);
    EXPECT_TRUE(prob.check(k))
        << name << " threads=" << threads << " " << m << "x" << n << "x"
        << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Threads, ParallelCorrectness,
    ::testing::Combine(::testing::Values("openblas", "blis", "eigen",
                                         "smm-ref"),
                       ::testing::Values(2, 4, 8)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param);
      for (auto& ch : name)
        if (ch == '-') ch = '_';
      return name + "_t" + std::to_string(std::get<1>(info.param));
    });

// ---- Transposition: C = alpha * op(A) * op(B) + beta * C -------------------

class TransposeCorrectness
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(TransposeCorrectness, MatchesNaive) {
  const auto& [name, combo] = GetParam();
  const libs::GemmStrategy* strategy = strategy_by_name(name);
  ASSERT_NE(strategy, nullptr);
  const Trans ta = (combo & 1) != 0 ? Trans::kTrans : Trans::kNoTrans;
  const Trans tb = (combo & 2) != 0 ? Trans::kTrans : Trans::kNoTrans;
  for (const auto& [m, n, k] :
       {ShapeTuple{17, 23, 29}, ShapeTuple{48, 32, 16},
        ShapeTuple{5, 80, 40}}) {
    Rng rng(static_cast<std::uint64_t>(combo * 1000 + m));
    // Allocate the operands in their *stored* orientation.
    Matrix<float> a_store(ta == Trans::kTrans ? k : m,
                          ta == Trans::kTrans ? m : k);
    Matrix<float> b_store(tb == Trans::kTrans ? n : k,
                          tb == Trans::kTrans ? k : n);
    Matrix<float> c(m, n), c_ref(m, n);
    a_store.fill_random(rng);
    b_store.fill_random(rng);
    c.fill_random(rng);
    c_ref = c.clone();
    libs::naive_gemm(1.25f, apply_trans(ta, a_store.cview()),
                     apply_trans(tb, b_store.cview()), 0.5f, c_ref.view());
    libs::run(*strategy, ta, tb, 1.25f, a_store.cview(), b_store.cview(),
              0.5f, c.view());
    EXPECT_LE(max_abs_diff(c.cview(), c_ref.cview()),
              gemm_tolerance<float>(k) * 4)
        << name << " " << to_string(ta) << to_string(tb) << " " << m << "x"
        << n << "x" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    OpCombos, TransposeCorrectness,
    ::testing::Combine(::testing::Values("openblas", "blis", "blasfeo",
                                         "eigen", "smm-ref"),
                       ::testing::Values(0, 1, 2, 3)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param);
      for (auto& ch : name)
        if (ch == '-') ch = '_';
      const int combo = std::get<1>(info.param);
      return name + ((combo & 1) != 0 ? "_tA" : "_nA") +
             ((combo & 2) != 0 ? "_tB" : "_nB");
    });

TEST(TransposeApi, SmmGemmOpOverload) {
  // C = A^T * B with A stored k x m.
  const index_t m = 21, n = 33, k = 27;
  Rng rng(4);
  Matrix<float> a(k, m), b(k, n), c(m, n), c_ref(m, n);
  a.fill_random(rng);
  b.fill_random(rng);
  c.fill(0.0f);
  c_ref.fill(0.0f);
  libs::naive_gemm(1.0f, transposed(a.cview()), b.cview(), 0.0f,
                   c_ref.view());
  core::smm_gemm(Trans::kTrans, Trans::kNoTrans, 1.0f, a.cview(), b.cview(),
                 0.0f, c.view());
  EXPECT_LE(max_abs_diff(c.cview(), c_ref.cview()),
            gemm_tolerance<float>(k) * 4);
}

TEST(TransposeApi, TransposedViewIsAView) {
  Matrix<float> a(3, 5);
  a.fill_iota();
  const auto t = transposed(a.cview());
  EXPECT_EQ(t.rows(), 5);
  EXPECT_EQ(t.cols(), 3);
  for (index_t i = 0; i < 3; ++i)
    for (index_t j = 0; j < 5; ++j) EXPECT_EQ(t(j, i), a(i, j));
  // Double transpose is the identity view.
  const auto tt = transposed(t);
  EXPECT_EQ(tt.layout(), a.view().layout());
  EXPECT_EQ(&tt(2, 4), &a(2, 4));
}

// ---- Degenerate shapes ----------------------------------------------------

TEST(StrategyEdgeCases, KZeroScalesC) {
  for (const char* name : {"openblas", "blis", "blasfeo", "eigen",
                           "smm-ref"}) {
    const libs::GemmStrategy* strategy = strategy_by_name(name);
    test::GemmProblem<float> prob(7, 9, 0, /*seed=*/5);
    prob.reference(3.0f, 0.25f);
    libs::run(*strategy, 3.0f, prob.a.cview(), prob.b.cview(), 0.25f,
              prob.c.view());
    EXPECT_TRUE(prob.check(1)) << name;
  }
}

TEST(StrategyEdgeCases, EmptyOutputIsNoop) {
  for (const char* name : {"openblas", "blis", "blasfeo", "eigen",
                           "smm-ref"}) {
    const libs::GemmStrategy* strategy = strategy_by_name(name);
    Matrix<float> a(0, 5), b(5, 0), c(0, 0);
    EXPECT_NO_THROW(libs::run(*strategy, 1.0f, a.cview(), b.cview(), 0.0f,
                              c.view()))
        << name;
  }
}

TEST(StrategyEdgeCases, DimensionMismatchThrows) {
  Matrix<float> a(4, 5), b(6, 3), c(4, 3);
  EXPECT_THROW(libs::run(libs::openblas_like(), 1.0f, a.cview(), b.cview(),
                         0.0f, c.view()),
               Error);
}

// Views into a larger allocation (non-minimal leading dimension).
TEST(StrategyEdgeCases, StridedViews) {
  Rng rng(7);
  Matrix<float> big_a(100, 100), big_b(100, 100), big_c(100, 100);
  big_a.fill_random(rng);
  big_b.fill_random(rng);
  big_c.fill_random(rng);
  const index_t m = 33, n = 21, k = 40;
  auto a = big_a.cview().block(3, 5, m, k);
  auto b = big_b.cview().block(11, 2, k, n);
  auto c = big_c.view().block(7, 9, m, n);
  Matrix<float> expected(m, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) expected(i, j) = c(i, j);
  libs::naive_gemm(1.0f, a, b, 1.0f, expected.view());
  libs::run(core::reference_smm(), 1.0f, a, b, 1.0f, c);
  double worst = 0;
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i)
      worst = std::max(worst, std::abs(static_cast<double>(c(i, j)) -
                                       expected(i, j)));
  EXPECT_LE(worst, gemm_tolerance<float>(k) * 4);
}

}  // namespace
}  // namespace smm
