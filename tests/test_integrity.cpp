// smm::integrity under fire (DESIGN.md §12): row+column ABFT with
// localization and in-place repair, sealed cached state (PlanCache plan
// seals, PrepackedB content checksums), the SMMKIT_ABFT mode knob, and
// the exact accounting invariant detected == corrected + recomputed.
// Every corruption is deterministic (seeded injection or a direct flip),
// so a failing case reproduces exactly.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>

#include "src/core/plan_cache.h"
#include "src/core/smm.h"
#include "src/libs/naive.h"
#include "src/matrix/compare.h"
#include "src/robust/abft.h"
#include "src/robust/fault_injection.h"
#include "src/robust/guarded_executor.h"
#include "src/robust/health.h"
#include "src/robust/integrity.h"
#include "tests/test_helpers.h"

namespace smm {
namespace {

using integrity::AbftMode;
using robust::CChecksums;
using robust::FaultInjector;
using robust::FaultSite;
using robust::FaultSpec;
using robust::GuardedExecutor;
using robust::GuardOptions;
using robust::IntegrityReport;
using robust::Outcome;
using robust::Repair;
using robust::RunReport;
using robust::ScopedFault;

// Same evenly-tiled shape as test_robust: no flip can hide in padding.
constexpr index_t kM = 64, kN = 48, kK = 64;

core::SmmOptions always_pack() {
  core::SmmOptions o;
  o.pack_a = core::SmmOptions::Packing::kAlways;
  o.pack_b = core::SmmOptions::Packing::kAlways;
  return o;
}

/// Flip bit `bit` of c(i, j) in place.
void flip_bit(MatrixView<float> c, index_t i, index_t j, int bit) {
  std::uint32_t u;
  float v = c(i, j);
  std::memcpy(&u, &v, sizeof(u));
  u ^= std::uint32_t{1} << bit;
  std::memcpy(&v, &u, sizeof(v));
  c(i, j) = v;
}

class IntegrityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::instance().disarm_all();
    integrity::set_mode_override(AbftMode::kCorrect);
    strategy_ = core::make_reference_smm(always_pack());
  }
  void TearDown() override {
    FaultInjector::instance().disarm_all();
    integrity::set_mode_override(AbftMode::kAuto);
  }

  /// A problem with C already holding the true product (the state an
  /// executor leaves behind), plus the naive oracle.
  struct Truth {
    test::GemmProblem<float> prob;
    explicit Truth(std::uint64_t seed, float alpha = 1.0f,
                   float beta = 0.0f)
        : prob(kM, kN, kK, seed) {
      prob.reference(alpha, beta);
      prob.c = prob.c_expected.clone();
    }
  };

  IntegrityReport verify(Truth& t, AbftMode mode, float alpha = 1.0f) {
    return robust::verify_and_repair<float>(
        alpha, t.prob.a.cview(), t.prob.b.cview(), 0.0f,
        /*c0_sums=*/nullptr, /*c_before=*/nullptr, 0, t.prob.c.view(),
        mode);
  }

  std::unique_ptr<libs::GemmStrategy> strategy_;
};

// ---- Mode knob -------------------------------------------------------------

TEST_F(IntegrityTest, EnvKnobParsesEveryValue) {
  ASSERT_EQ(setenv("SMMKIT_ABFT", "off", 1), 0);
  EXPECT_EQ(integrity::mode_from_env(), AbftMode::kOff);
  ASSERT_EQ(setenv("SMMKIT_ABFT", "detect", 1), 0);
  EXPECT_EQ(integrity::mode_from_env(), AbftMode::kDetect);
  ASSERT_EQ(setenv("SMMKIT_ABFT", "correct", 1), 0);
  EXPECT_EQ(integrity::mode_from_env(), AbftMode::kCorrect);
  ASSERT_EQ(setenv("SMMKIT_ABFT", "bogus", 1), 0);
  EXPECT_EQ(integrity::mode_from_env(), AbftMode::kDetect);
  ASSERT_EQ(unsetenv("SMMKIT_ABFT"), 0);
  EXPECT_EQ(integrity::mode_from_env(), AbftMode::kDetect);
}

TEST_F(IntegrityTest, OverrideWinsAndResolveNeverReturnsAuto) {
  integrity::set_mode_override(AbftMode::kOff);
  EXPECT_EQ(integrity::mode(), AbftMode::kOff);
  EXPECT_EQ(integrity::resolve(AbftMode::kAuto), AbftMode::kOff);
  EXPECT_EQ(integrity::resolve(AbftMode::kCorrect), AbftMode::kCorrect);
  integrity::set_mode_override(AbftMode::kCorrect);
  EXPECT_EQ(integrity::mode(), AbftMode::kCorrect);
}

TEST_F(IntegrityTest, AbftOptionChangesPlanCacheFingerprint) {
  core::SmmOptions a, b;
  b.abft = AbftMode::kCorrect;
  EXPECT_NE(core::options_fingerprint(a), core::options_fingerprint(b));
}

// ---- Seal primitives -------------------------------------------------------

TEST_F(IntegrityTest, ContentChecksumSeesEveryBit) {
  std::uint8_t buf[37] = {};
  const std::uint64_t clean = integrity::content_checksum(buf, sizeof(buf));
  for (std::size_t byte : {std::size_t{0}, std::size_t{8},
                           std::size_t{36}}) {
    buf[byte] ^= 1;
    EXPECT_NE(integrity::content_checksum(buf, sizeof(buf)), clean)
        << "flip at byte " << byte << " was invisible";
    buf[byte] ^= 1;
  }
  EXPECT_EQ(integrity::content_checksum(buf, sizeof(buf)), clean);
  // Length participates: a zero tail must not extend silently.
  EXPECT_NE(integrity::content_checksum(buf, 36),
            integrity::content_checksum(buf, 37));
}

TEST_F(IntegrityTest, PlanSealCatchesStructuralRot) {
  const GemmShape shape{kM, kN, kK};
  plan::GemmPlan plan =
      strategy_->make_plan(shape, plan::ScalarType::kF32, 1);
  const std::uint64_t clean = integrity::plan_seal(plan);
  EXPECT_EQ(integrity::plan_seal(plan), clean) << "seal not deterministic";
  ASSERT_TRUE(integrity::corrupt_plan_for_test(plan));
  EXPECT_NE(integrity::plan_seal(plan), clean);
}

// ---- verify_and_repair -----------------------------------------------------

TEST_F(IntegrityTest, CleanResultPassesWithoutDetection) {
  Truth t(0x11);
  const IntegrityReport r = verify(t, AbftMode::kCorrect);
  EXPECT_TRUE(r.ok);
  EXPECT_FALSE(r.detected);
  EXPECT_EQ(r.repair, Repair::kNone);
}

TEST_F(IntegrityTest, DetectModeLocalizesButNeverWrites) {
  Truth t(0x22);
  flip_bit(t.prob.c.view(), 17, 11, 30);
  const Matrix<float> before = t.prob.c.clone();
  const IntegrityReport r = verify(t, AbftMode::kDetect);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.detected);
  EXPECT_EQ(r.repair, Repair::kNone);
  EXPECT_EQ(r.bad_row, 17);
  EXPECT_EQ(r.bad_col, 11);
  // Detect mode reports; it must not touch C.
  EXPECT_EQ(max_abs_diff(t.prob.c.cview(), before.cview()), 0.0);
}

TEST_F(IntegrityTest, SingleFlipRepairedByElementRecompute) {
  Truth t(0x33);
  flip_bit(t.prob.c.view(), 40, 7, 30);
  const IntegrityReport r = verify(t, AbftMode::kCorrect);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.detected);
  EXPECT_EQ(r.repair, Repair::kElement);
  EXPECT_EQ(r.bad_row, 40);
  EXPECT_EQ(r.bad_col, 7);
  EXPECT_LE(max_abs_diff(t.prob.c.cview(), t.prob.c_expected.cview()),
            gemm_tolerance<float>(kK) * 8.0);
}

TEST_F(IntegrityTest, NaNDamageRepairedInPlace) {
  Truth t(0x44);
  t.prob.c.view()(5, 5) = std::numeric_limits<float>::quiet_NaN();
  const IntegrityReport r = verify(t, AbftMode::kCorrect);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.detected);
  EXPECT_EQ(r.repair, Repair::kElement);
  EXPECT_LE(max_abs_diff(t.prob.c.cview(), t.prob.c_expected.cview()),
            gemm_tolerance<float>(kK) * 8.0);
}

TEST_F(IntegrityTest, ColumnDamageRepairedByPanelRecompute) {
  Truth t(0x55);
  for (index_t i : {index_t{3}, index_t{20}, index_t{50}})
    flip_bit(t.prob.c.view(), i, 9, 30);
  const IntegrityReport r = verify(t, AbftMode::kCorrect);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.detected);
  EXPECT_EQ(r.repair, Repair::kPanel);
  EXPECT_LE(max_abs_diff(t.prob.c.cview(), t.prob.c_expected.cview()),
            gemm_tolerance<float>(kK) * 8.0);
}

TEST_F(IntegrityTest, WholesaleDamageIsReportedNotPatched) {
  Truth t(0x66);
  for (index_t j = 0; j < kN; ++j)
    for (index_t i = 0; i < kM; ++i) t.prob.c.view()(i, j) += 100.0f;
  const IntegrityReport r = verify(t, AbftMode::kCorrect);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.detected);
  // A localized patch of near-total damage would cost more than the full
  // recompute the caller already owns — refuse and report.
  EXPECT_EQ(r.repair, Repair::kNone);
  EXPECT_GT(r.damaged_cols, static_cast<int>(kN) / 2);
}

TEST_F(IntegrityTest, BetaNonZeroVerifiesAgainstPrecomputedChecksums) {
  const float alpha = 1.0f, beta = 0.5f;
  test::GemmProblem<float> prob(kM, kN, kK, 0x77);
  const Matrix<float> c0 = prob.c.clone();
  const CChecksums c0sums = robust::checksum_c<float>(c0.cview());
  prob.reference(alpha, beta);
  prob.c = prob.c_expected.clone();
  flip_bit(prob.c.view(), 30, 30, 30);
  const IntegrityReport r = robust::verify_and_repair<float>(
      alpha, prob.a.cview(), prob.b.cview(), beta, &c0sums, c0.data(), kM,
      prob.c.view(), AbftMode::kCorrect);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.detected);
  EXPECT_EQ(r.repair, Repair::kElement);
  EXPECT_LE(max_abs_diff(prob.c.cview(), prob.c_expected.cview()),
            gemm_tolerance<float>(kK) * 8.0);
}

TEST_F(IntegrityTest, FuzzSingleAndDoubleBitFlips) {
  Rng rng(0xF122);
  for (int iter = 0; iter < 60; ++iter) {
    Truth t(0x1000 + static_cast<std::uint64_t>(iter));
    const int flips = 1 + static_cast<int>(rng.next_index(2));
    for (int f = 0; f < flips; ++f)
      flip_bit(t.prob.c.view(), rng.next_index(kM), rng.next_index(kN),
               static_cast<int>(rng.next_index(32)));
    const IntegrityReport r = verify(t, AbftMode::kCorrect);
    // Correct mode either saw nothing (the flip drowned below the
    // rounding tolerance) or repaired it; localizable damage this small
    // must never be left to a full recompute.
    EXPECT_TRUE(r.ok) << "iter " << iter << " residual " << r.residual;
    if (r.detected) EXPECT_NE(r.repair, Repair::kNone) << "iter " << iter;
    const double diff =
        max_abs_diff(t.prob.c.cview(), t.prob.c_expected.cview());
    EXPECT_LE(diff, gemm_tolerance<float>(kK) * 8.0 + 2.0 * r.tolerance)
        << "iter " << iter;
  }
}

// ---- GuardedExecutor integration -------------------------------------------

TEST_F(IntegrityTest, KernelFlipServedAsCorrectedOnFirstAttempt) {
  GuardOptions opts;
  opts.abft = AbftMode::kCorrect;
  GuardedExecutor guard(*strategy_, opts);
  test::GemmProblem<float> prob(kM, kN, kK, 0x88);
  prob.reference(1.0f, 0.0f);
  ScopedFault fault(FaultSite::kKernelMiscompute, FaultSpec{0, 1});
  const RunReport report = guard.run(1.0f, prob.a.cview(), prob.b.cview(),
                                     0.0f, prob.c.view());
  EXPECT_EQ(report.outcome, Outcome::kCorrected);
  EXPECT_EQ(report.attempts, 1);
  EXPECT_STREQ(report.repair, "element");
  EXPECT_TRUE(prob.check(kK));
}

TEST_F(IntegrityTest, DetectModeStillRecoversByRetry) {
  GuardOptions opts;
  opts.abft = AbftMode::kDetect;
  GuardedExecutor guard(*strategy_, opts);
  test::GemmProblem<float> prob(kM, kN, kK, 0x99);
  prob.reference(1.0f, 0.0f);
  ScopedFault fault(FaultSite::kKernelMiscompute, FaultSpec{0, 1});
  const RunReport report = guard.run(1.0f, prob.a.cview(), prob.b.cview(),
                                     0.0f, prob.c.view());
  EXPECT_EQ(report.outcome, Outcome::kRecovered);
  EXPECT_EQ(report.first_error, ErrorCode::kChecksumMismatch);
  EXPECT_STREQ(report.repair, "none");
  EXPECT_TRUE(prob.check(kK));
}

TEST_F(IntegrityTest, ScratchSlabFlipRepairedOrRecovered) {
  GuardOptions opts;
  opts.abft = AbftMode::kCorrect;
  GuardedExecutor guard(*strategy_, opts);
  test::GemmProblem<float> prob(kM, kN, kK, 0xAA);
  prob.reference(0.5f, 1.0f);
  ScopedFault fault(FaultSite::kScratchSlabFlip, FaultSpec{0, 1});
  const RunReport report = guard.run(0.5f, prob.a.cview(), prob.b.cview(),
                                     1.0f, prob.c.view());
  EXPECT_TRUE(report.ok());
  EXPECT_GE(FaultInjector::instance().fired_count(
                FaultSite::kScratchSlabFlip),
            1u);
  EXPECT_TRUE(prob.check(kK));
}

TEST_F(IntegrityTest, AccountingDetectedEqualsCorrectedPlusRecomputed) {
  robust::health().reset();
  GuardOptions correct_opts;
  correct_opts.abft = AbftMode::kCorrect;
  GuardedExecutor correct_guard(*strategy_, correct_opts);
  GuardOptions detect_opts;
  detect_opts.abft = AbftMode::kDetect;
  GuardedExecutor detect_guard(*strategy_, detect_opts);

  test::GemmProblem<float> prob(kM, kN, kK, 0xBB);
  prob.reference(1.0f, 0.0f);
  // Clean run: no integrity traffic at all.
  Matrix<float> c = prob.c.clone();
  EXPECT_EQ(correct_guard
                .run(1.0f, prob.a.cview(), prob.b.cview(), 0.0f, c.view())
                .outcome,
            Outcome::kOk);
  {  // One flip repaired in place.
    c = prob.c.clone();
    ScopedFault fault(FaultSite::kKernelMiscompute, FaultSpec{0, 1});
    EXPECT_EQ(correct_guard
                  .run(1.0f, prob.a.cview(), prob.b.cview(), 0.0f, c.view())
                  .outcome,
              Outcome::kCorrected);
  }
  {  // One flip detected only — the retry is the recompute.
    c = prob.c.clone();
    ScopedFault fault(FaultSite::kKernelMiscompute, FaultSpec{0, 1});
    EXPECT_EQ(detect_guard
                  .run(1.0f, prob.a.cview(), prob.b.cview(), 0.0f, c.view())
                  .outcome,
              Outcome::kRecovered);
  }
  const robust::HealthSnapshot s = robust::health().snapshot();
  EXPECT_EQ(s.integrity_detected, 2u);
  EXPECT_EQ(s.integrity_corrected, 1u);
  EXPECT_EQ(s.integrity_recomputed, 1u);
  EXPECT_EQ(s.integrity_detected,
            s.integrity_corrected + s.integrity_recomputed);
  EXPECT_EQ(s.corrected_runs, 1u);
}

// ---- Sealed cached state ---------------------------------------------------

TEST_F(IntegrityTest, PlanCacheQuarantinesRottedEntryAndRebuilds) {
  robust::health().reset();
  core::PlanCache cache(*strategy_, 8);
  const GemmShape shape{kM, kN, kK};
  const auto p1 = cache.get(shape, plan::ScalarType::kF32, 1);
  ASSERT_NE(p1, nullptr);
  EXPECT_EQ(cache.builds(), 1u);
  ASSERT_NE(cache.get(shape, plan::ScalarType::kF32, 1), nullptr);
  EXPECT_EQ(cache.hits(), 1u);
  {
    ScopedFault fault(FaultSite::kPlanCacheFlip, FaultSpec{0, 1});
    const auto p3 = cache.get(shape, plan::ScalarType::kF32, 1);
    ASSERT_NE(p3, nullptr);
  }
  EXPECT_EQ(cache.seal_rejections(), 1u);
  EXPECT_EQ(cache.builds(), 2u) << "quarantined entry must be rebuilt";
  const robust::HealthSnapshot s = robust::health().snapshot();
  EXPECT_EQ(s.integrity_quarantines, 1u);
  EXPECT_EQ(s.plan_seal_rebuilds, 1u);
  // The rebuilt entry serves hits again.
  ASSERT_NE(cache.get(shape, plan::ScalarType::kF32, 1), nullptr);
  EXPECT_EQ(cache.seal_rejections(), 1u);
}

TEST_F(IntegrityTest, PrepackedBRepacksRottedStorage) {
  robust::health().reset();
  test::GemmProblem<float> prob(kM, kN, kK, 0xCC);
  prob.reference(1.0f, 0.0f);
  auto handle =
      core::smm_prepack_b<float>(prob.b.cview(), kM, 1, always_pack());
  ASSERT_TRUE(handle.materialized());
  handle.run(1.0f, prob.a.cview(), 0.0f, prob.c.view());
  EXPECT_TRUE(prob.check(kK));

  ASSERT_TRUE(handle.corrupt_storage_for_test());
  prob.c.view()(0, 0) = 0.0f;  // make a stale pass impossible
  handle.run(1.0f, prob.a.cview(), 0.0f, prob.c.view());
  EXPECT_TRUE(prob.check(kK)) << "rotted pack served to the kernels";
  const robust::HealthSnapshot s = robust::health().snapshot();
  EXPECT_EQ(s.integrity_quarantines, 1u);
  EXPECT_EQ(s.prepack_repacks, 1u);
}

TEST_F(IntegrityTest, PrepackedBThrowsWhenRepairDisabled) {
  test::GemmProblem<float> prob(kM, kN, kK, 0xDD);
  auto handle =
      core::smm_prepack_b<float>(prob.b.cview(), kM, 1, always_pack());
  ASSERT_TRUE(handle.materialized());
  handle.set_repair(false);
  ASSERT_TRUE(handle.corrupt_storage_for_test());
  try {
    handle.run(1.0f, prob.a.cview(), 0.0f, prob.c.view());
    FAIL() << "rotted storage with repair disabled must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCacheCorrupted);
  }
}

TEST_F(IntegrityTest, PrepackedStoreFlipSiteIsCaughtBeforeExecution) {
  robust::health().reset();
  test::GemmProblem<float> prob(kM, kN, kK, 0xEE);
  prob.reference(2.0f, 0.0f);
  auto handle =
      core::smm_prepack_b<float>(prob.b.cview(), kM, 1, always_pack());
  ASSERT_TRUE(handle.materialized());
  ScopedFault fault(FaultSite::kPrepackedStoreFlip, FaultSpec{0, 1});
  handle.run(2.0f, prob.a.cview(), 0.0f, prob.c.view());
  EXPECT_GE(FaultInjector::instance().fired_count(
                FaultSite::kPrepackedStoreFlip),
            1u);
  EXPECT_TRUE(prob.check(kK));
  EXPECT_GE(robust::health().snapshot().prepack_repacks, 1u);
}

TEST_F(IntegrityTest, SealValidationIsFreeWhenModeOff) {
  integrity::set_mode_override(AbftMode::kOff);
  robust::health().reset();
  test::GemmProblem<float> prob(kM, kN, kK, 0xFF);
  auto handle =
      core::smm_prepack_b<float>(prob.b.cview(), kM, 1, always_pack());
  ASSERT_TRUE(handle.materialized());
  // With the mode off nothing validates (and the injection site is never
  // reached): rot is the caller's risk, as documented.
  ScopedFault fault(FaultSite::kPrepackedStoreFlip, FaultSpec{0, 1});
  handle.run(1.0f, prob.a.cview(), 0.0f, prob.c.view());
  EXPECT_EQ(FaultInjector::instance().fired_count(
                FaultSite::kPrepackedStoreFlip),
            0u);
  EXPECT_EQ(robust::health().snapshot().integrity_quarantines, 0u);
}

}  // namespace
}  // namespace smm
