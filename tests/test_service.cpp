// smm::service tests (DESIGN.md §11): deadline/cancel corners through the
// cancellable execution stack, admission control (depth, cost budget,
// watermark shedding, priority eviction), the circuit breaker's
// trip → half-open → recover cycle, drain/shutdown lifecycle (including
// the no-live-pool-threads promise), fork safety after warm-up, the
// check_finite input screen, and a TSan-clean concurrent submit/cancel
// stress. The sustained 4×-overload version lives in bench/overload_soak.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <thread>
#include <vector>

#include "src/common/cancel.h"
#include "src/common/error.h"
#include "src/common/fork_guard.h"
#include "src/core/batched.h"
#include "src/core/smm.h"
#include "src/robust/fault_injection.h"
#include "src/robust/health.h"
#include "src/service/circuit_breaker.h"
#include "src/service/smm_service.h"
#include "src/threading/thread_pool.h"
#include "src/threading/worker_pool.h"
#include "tests/test_helpers.h"

namespace smm {
namespace {

using robust::FaultInjector;
using robust::FaultSite;
using robust::FaultSpec;
using robust::ScopedFault;
using service::BreakerState;
using service::CircuitBreaker;
using service::Priority;
using service::Result;
using service::ServiceOptions;
using service::SmmService;
using service::Ticket;

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::instance().disarm_all();
    heal_pool();
  }
  void TearDown() override {
    FaultInjector::instance().disarm_all();
    heal_pool();
  }
  static void heal_pool() {
    for (int i = 0; i < 2; ++i) par::run_parallel(2, [](int) {});
  }
};

/// A batch request big enough to occupy a single-lane service for tens of
/// milliseconds — the deterministic way to keep later submissions queued.
struct Blocker {
  Matrix<double> a{96, 96};
  Matrix<double> b{96, 96};
  std::vector<Matrix<double>> cs;
  std::vector<service::BatchItem<double>> items;

  explicit Blocker(int n = 60) {
    Rng rng(7);
    a.fill_random(rng);
    b.fill_random(rng);
    cs.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      cs.emplace_back(96, 96);
      items.push_back({a.cview(), b.cview(), cs.back().view()});
    }
  }
};

// ---- cancel token ----------------------------------------------------------

TEST_F(ServiceTest, CancelTokenReportsCancelBeforeDeadline) {
  CancelSource src(std::chrono::steady_clock::now() -
                   std::chrono::milliseconds(1));
  const CancelToken token = src.token();
  EXPECT_TRUE(token.expired());
  src.request_cancel();
  // Explicit cancel wins even with a lapsed deadline.
  try {
    token.throw_if_stopped();
    FAIL() << "expected a throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCancelled);
  }
}

TEST_F(ServiceTest, DefaultTokenIsInert) {
  CancelToken token;
  EXPECT_FALSE(token.valid());
  EXPECT_FALSE(token.stop_requested());
  EXPECT_NO_THROW(token.throw_if_stopped());
}

TEST_F(ServiceTest, ExpiredTokenStopsSmmGemmWithCUntouched) {
  test::GemmProblem<double> p(24, 24, 24, 11);
  const CancelSource src(std::chrono::steady_clock::now() -
                         std::chrono::milliseconds(1));
  try {
    core::smm_gemm(1.0, p.a.cview(), p.b.cview(), 0.0, p.c.view(), 1,
                   core::SmmOptions{}, src.token());
    FAIL() << "expected kDeadlineExceeded";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDeadlineExceeded);
  }
  // Stop observed before the first op: C still holds its seed values.
  EXPECT_EQ(max_abs_diff(p.c.cview(), p.c_expected.cview()), 0.0);
}

TEST_F(ServiceTest, CancelledTokenFailsBatchedSmmBeforeAnyItem) {
  test::GemmProblem<double> p(16, 16, 16, 12);
  std::vector<core::GemmBatchItem<double>> items{
      {p.a.cview(), p.b.cview(), p.c.view()}};
  CancelSource src;
  src.request_cancel();
  const CancelToken token = src.token();
  try {
    core::batched_smm(1.0, items, 0.0, core::default_plan_cache(), 1,
                      &token);
    FAIL() << "expected kCancelled";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCancelled);
  }
  EXPECT_EQ(max_abs_diff(p.c.cview(), p.c_expected.cview()), 0.0);
}

// ---- deadlines through the service -----------------------------------------

TEST_F(ServiceTest, AlreadyExpiredDeadlineFailsAtFirstCheck) {
  SmmService svc;
  test::GemmProblem<double> p(32, 32, 32, 21);
  // deadline_ms = 1: expired long before the lane reaches it is not
  // guaranteed — so pre-cancel the clock by waiting out the deadline
  // before the queue can drain is racy. Instead use a 1 ms deadline and
  // sleep past it with the request already terminal or queued; both
  // terminal paths must report kDeadlineExceeded with C untouched.
  Ticket t = svc.submit(1.0, p.a.cview(), p.b.cview(), 0.0, p.c.view(),
                        Priority::kNormal, /*deadline_ms=*/1);
  const Result& r = t.wait();
  if (!r.ok) {
    EXPECT_EQ(r.code, ErrorCode::kDeadlineExceeded) << r.message;
    EXPECT_EQ(max_abs_diff(p.c.cview(), p.c_expected.cview()), 0.0);
  }
  svc.shutdown();
}

TEST_F(ServiceTest, DeadlineExpiresWhileQueued) {
  ServiceOptions options;
  options.shards = 1;  // single queue: the blocker provably blocks
  options.lanes = 1;
  SmmService svc(options);
  Blocker blocker;
  Ticket busy = svc.submit_batch(1.0, blocker.items, 0.0);
  test::GemmProblem<double> p(32, 32, 32, 22);
  // The blocker occupies the only lane for tens of ms; a 1 ms deadline
  // lapses while this request waits in the queue.
  Ticket t = svc.submit(1.0, p.a.cview(), p.b.cview(), 0.0, p.c.view(),
                        Priority::kNormal, /*deadline_ms=*/1);
  const Result& r = t.wait();
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.code, ErrorCode::kDeadlineExceeded) << r.message;
  // Queued-but-unstarted: C untouched.
  EXPECT_EQ(max_abs_diff(p.c.cview(), p.c_expected.cview()), 0.0);
  EXPECT_TRUE(busy.wait().ok);
  EXPECT_GE(svc.stats().deadline_misses, 1u);
  svc.shutdown();
}

TEST_F(ServiceTest, DeadlineExpiresMidExecution) {
  ServiceOptions options;
  options.shards = 1;
  options.lanes = 1;
  SmmService svc(options);
  Blocker blocker(200);  // a couple hundred ms of work in one request
  Ticket t = svc.submit_batch(1.0, blocker.items, 0.0, Priority::kNormal,
                              /*deadline_ms=*/5);
  const Result& r = t.wait();
  ASSERT_FALSE(r.ok);
  // The op-boundary checks catch the lapse mid-run (or, if the lane was
  // slow to start, while queued) — either way the typed code survives
  // the parallel aggregation.
  EXPECT_EQ(r.code, ErrorCode::kDeadlineExceeded) << r.message;
  svc.shutdown();
}

TEST_F(ServiceTest, SubmittedWorkComputesCorrectResult) {
  SmmService svc;
  test::GemmProblem<double> p(48, 40, 56, 23);
  p.reference(1.5, 0.5);
  Ticket t = svc.submit(1.5, p.a.cview(), p.b.cview(), 0.5, p.c.view());
  const Result& r = t.wait();
  ASSERT_TRUE(r.ok) << r.message;
  EXPECT_TRUE(p.check(56));
  svc.shutdown();
}

// ---- timed ticket waits (DESIGN.md §16) ------------------------------------

TEST_F(ServiceTest, WaitForTimesOutOnInFlightWorkThenSeesCompletion) {
  ServiceOptions options;
  options.shards = 1;
  options.lanes = 1;
  SmmService svc(options);
  Blocker blocker;
  Ticket busy = svc.submit_batch(1.0, blocker.items, 0.0);
  test::GemmProblem<double> p(32, 32, 32, 61);
  p.reference(1.0, 0.0);
  Ticket t = svc.submit(1.0, p.a.cview(), p.b.cview(), 0.0, p.c.view());
  // Queued behind tens of ms of blocker: a 1 ms wait must time out and
  // leave the ticket live (still cancellable / re-waitable).
  EXPECT_FALSE(t.wait_for(std::chrono::milliseconds(1)));
  EXPECT_TRUE(t.valid());
  EXPECT_FALSE(t.done());
  // The timeout-then-complete race: keep issuing short timed waits until
  // one observes the terminal state. Each timed-out wait must leave the
  // ticket intact for the next.
  bool done = false;
  for (int i = 0; i < 10000 && !done; ++i)
    done = t.wait_for(std::chrono::milliseconds(2));
  ASSERT_TRUE(done);
  EXPECT_TRUE(t.done());
  EXPECT_TRUE(t.wait().ok);  // no longer blocks
  EXPECT_TRUE(p.check(32));
  EXPECT_TRUE(busy.wait().ok);
  svc.shutdown();
}

TEST_F(ServiceTest, WaitUntilInThePastReportsTerminalStateOnly) {
  SmmService svc;
  test::GemmProblem<double> p(24, 24, 24, 62);
  Ticket t = svc.submit(1.0, p.a.cview(), p.b.cview(), 0.0, p.c.view());
  t.wait();
  // Already terminal: a lapsed deadline still returns true immediately.
  EXPECT_TRUE(t.wait_until(std::chrono::steady_clock::now() -
                           std::chrono::seconds(1)));
  EXPECT_TRUE(t.wait_for(std::chrono::seconds(0)));
  svc.shutdown();
}

TEST_F(ServiceTest, InvalidTicketTimedWaitReturnsImmediately) {
  const Ticket t;
  ASSERT_FALSE(t.valid());
  // Matches wait(): an invalid ticket never blocks; the Result carries
  // the error, the timed wait just reports "terminal".
  EXPECT_TRUE(t.wait_for(std::chrono::hours(1)));
  EXPECT_TRUE(t.wait_until(std::chrono::steady_clock::now() +
                           std::chrono::hours(1)));
}

// ---- admission control -----------------------------------------------------

TEST_F(ServiceTest, QueueDepthRejectsWithOverloaded) {
  ServiceOptions options;
  options.shards = 1;  // depth/shedding tests exercise ONE shard's queue;
  options.lanes = 1;   // stealing peers would drain it nondeterministically
  options.queue_depth = 2;
  options.shed_low_watermark = 1.0;  // isolate the depth gate
  options.shed_high_watermark = 1.0;
  SmmService svc(options);
  Blocker blocker;
  Ticket busy = svc.submit_batch(1.0, blocker.items, 0.0);
  // Wait until the blocker is in flight so the queue is empty.
  while (svc.stats().in_flight == 0 && !busy.done())
    std::this_thread::yield();

  test::GemmProblem<double> p(32, 32, 32, 31);
  std::vector<Ticket> fill;
  for (int i = 0; i < 2; ++i)
    fill.push_back(
        svc.submit(1.0, p.a.cview(), p.b.cview(), 0.0, p.c.view()));
  const auto t0 = std::chrono::steady_clock::now();
  Ticket rejected =
      svc.submit(1.0, p.a.cview(), p.b.cview(), 0.0, p.c.view());
  const auto reject_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count();
  const Result& r = rejected.wait();
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.code, ErrorCode::kOverloaded) << r.message;
  // O(µs) rejection: no plan work on the submit path. Generous bound —
  // single-core CI machines schedule coarsely.
  EXPECT_LT(reject_us, 20000);
  EXPECT_GE(svc.stats().rejected, 1u);
  for (auto& t : fill) t.wait();
  busy.wait();
  svc.shutdown();
}

TEST_F(ServiceTest, WatermarkShedsLowPriorityFirst) {
  ServiceOptions options;
  options.shards = 1;
  options.lanes = 1;
  options.queue_depth = 4;
  options.shed_low_watermark = 0.5;
  options.shed_high_watermark = 0.8;
  SmmService svc(options);
  Blocker blocker;
  Ticket busy = svc.submit_batch(1.0, blocker.items, 0.0);
  while (svc.stats().in_flight == 0 && !busy.done())
    std::this_thread::yield();

  test::GemmProblem<double> p(32, 32, 32, 32);
  std::vector<Ticket> queued;
  for (int i = 0; i < 2; ++i)
    queued.push_back(
        svc.submit(1.0, p.a.cview(), p.b.cview(), 0.0, p.c.view()));
  // fill = 2/4 = 0.5 >= low watermark: kLow is shed, kNormal still fits.
  Ticket low = svc.submit(1.0, p.a.cview(), p.b.cview(), 0.0, p.c.view(),
                          Priority::kLow);
  ASSERT_FALSE(low.wait().ok);
  EXPECT_EQ(low.wait().code, ErrorCode::kOverloaded);
  queued.push_back(
      svc.submit(1.0, p.a.cview(), p.b.cview(), 0.0, p.c.view()));
  // fill = 3/4 = 0.75 < high watermark: one more kNormal fits; then the
  // queue is full and a kHigh arrival evicts the newest kNormal.
  queued.push_back(
      svc.submit(1.0, p.a.cview(), p.b.cview(), 0.0, p.c.view()));
  Ticket high = svc.submit(1.0, p.a.cview(), p.b.cview(), 0.0, p.c.view(),
                           Priority::kHigh);
  std::size_t evicted = 0;
  for (auto& t : queued)
    if (!t.wait().ok && t.wait().code == ErrorCode::kOverloaded) ++evicted;
  EXPECT_EQ(evicted, 1u);
  EXPECT_GE(svc.stats().shed, 1u);     // the watermark-shed kLow
  EXPECT_EQ(svc.stats().evicted, 1u);  // the displaced kNormal
  // Eviction is post-admission: the submission partition stays exact.
  EXPECT_EQ(svc.stats().submitted,
            svc.stats().admitted + svc.stats().rejected);
  busy.wait();
  high.wait();
  svc.shutdown();
}

TEST_F(ServiceTest, EnvWatermarksUnorderedPairIsIgnored) {
  // low > high would make the SmmService ctor throw; an env
  // misconfiguration must be dropped as a whole instead (matching the
  // "unparsable values are ignored" contract), and an ordered pair must
  // still apply.
  ASSERT_EQ(setenv("SMMKIT_SHED_LOW_WATERMARK", "0.9", 1), 0);
  ASSERT_EQ(setenv("SMMKIT_SHED_HIGH_WATERMARK", "0.4", 1), 0);
  ServiceOptions base;
  const ServiceOptions unordered = service::service_options_from_env(base);
  EXPECT_EQ(unordered.shed_low_watermark, base.shed_low_watermark);
  EXPECT_EQ(unordered.shed_high_watermark, base.shed_high_watermark);
  SmmService svc(unordered);  // must not throw
  svc.shutdown();

  ASSERT_EQ(setenv("SMMKIT_SHED_LOW_WATERMARK", "0.25", 1), 0);
  ASSERT_EQ(setenv("SMMKIT_SHED_HIGH_WATERMARK", "0.75", 1), 0);
  const ServiceOptions ordered = service::service_options_from_env(base);
  EXPECT_EQ(ordered.shed_low_watermark, 0.25);
  EXPECT_EQ(ordered.shed_high_watermark, 0.75);

  unsetenv("SMMKIT_SHED_LOW_WATERMARK");
  unsetenv("SMMKIT_SHED_HIGH_WATERMARK");
}

TEST_F(ServiceTest, CostBudgetBoundsQueueAccumulation) {
  ServiceOptions options;
  options.shards = 1;
  options.lanes = 1;
  // Budget below the predicted cost of two queued 32³ requests but above
  // one — so the queue holds exactly one while a blocker runs.
  const SmmService probe;  // for the cost model constants
  const double unit = probe.estimate_cost_ns(32, 32, 32);
  options.cost_budget_ns = 1.5 * unit;
  SmmService svc(options);
  Blocker blocker;
  Ticket busy = svc.submit_batch(1.0, blocker.items, 0.0);
  while (svc.stats().in_flight == 0 && !busy.done())
    std::this_thread::yield();

  test::GemmProblem<double> p(32, 32, 32, 33);
  Ticket first =
      svc.submit(1.0, p.a.cview(), p.b.cview(), 0.0, p.c.view());
  Ticket second =
      svc.submit(1.0, p.a.cview(), p.b.cview(), 0.0, p.c.view());
  const Result& r = second.wait();
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.code, ErrorCode::kOverloaded) << r.message;
  first.wait();
  busy.wait();
  svc.shutdown();
}

TEST_F(ServiceTest, OversizedRequestAdmittedWhenQueueEmpty) {
  ServiceOptions options;
  options.shards = 1;
  options.cost_budget_ns = 1.0;  // smaller than any request's estimate
  SmmService svc(options);
  test::GemmProblem<double> p(32, 32, 32, 34);
  p.reference(1.0, 0.0);
  // The budget bounds accumulation, not request size: an empty queue
  // admits even a request that alone exceeds it.
  Ticket t = svc.submit(1.0, p.a.cview(), p.b.cview(), 0.0, p.c.view());
  EXPECT_TRUE(t.wait().ok) << t.wait().message;
  EXPECT_TRUE(p.check(32));
  svc.shutdown();
}

// ---- circuit breaker -------------------------------------------------------

TEST_F(ServiceTest, BreakerUnitTripHalfOpenRecover) {
  CircuitBreaker::Options options;
  options.failure_threshold = 2;
  options.open_for = std::chrono::milliseconds(30);
  CircuitBreaker breaker(options);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.allow());
  breaker.on_failure();
  breaker.on_failure();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_FALSE(breaker.allow());
  EXPECT_EQ(breaker.trips(), 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_TRUE(breaker.allow());  // this caller is the half-open probe
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_FALSE(breaker.allow());  // probe slot taken
  breaker.on_failure();           // probe fails: straight back to open
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 2u);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_TRUE(breaker.allow());
  breaker.on_neutral();  // a cancelled probe frees the slot undecided
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_TRUE(breaker.allow());
  breaker.on_success();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST_F(ServiceTest, ServiceBreakerTripsOnRepeatedFailuresAndRecovers) {
  ServiceOptions options;
  options.shards = 1;
  options.lanes = 1;
  options.threads_per_request = 2;  // route through the worker pool
  options.breaker.failure_threshold = 2;
  options.breaker.open_for = std::chrono::milliseconds(50);
  SmmService svc(options);
  test::GemmProblem<double> p(64, 64, 64, 41);

  // Warm the shape so the failing runs fail in execution, not plan build.
  EXPECT_TRUE(
      svc.submit(1.0, p.a.cview(), p.b.cview(), 0.0, p.c.view()).wait().ok);

  {
    ScopedFault fault(FaultSite::kWorkerThrow,
                      FaultSpec{/*fire_after=*/0, /*max_fires=*/64});
    for (int i = 0; i < 2; ++i) {
      const Result& r =
          svc.submit(1.0, p.a.cview(), p.b.cview(), 0.0, p.c.view())
              .wait();
      ASSERT_FALSE(r.ok);
      EXPECT_EQ(r.code, ErrorCode::kWorkerPanic) << r.message;
    }
    EXPECT_EQ(svc.breaker_state(), BreakerState::kOpen);
    // Open breaker: rejected at admission with kOverloaded, counted.
    const Result& rejected =
        svc.submit(1.0, p.a.cview(), p.b.cview(), 0.0, p.c.view()).wait();
    ASSERT_FALSE(rejected.ok);
    EXPECT_EQ(rejected.code, ErrorCode::kOverloaded);
    EXPECT_GE(svc.stats().breaker_rejections, 1u);
  }

  // Fault gone; after open_for the next request is the half-open probe
  // and its success closes the breaker.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  const Result& probe =
      svc.submit(1.0, p.a.cview(), p.b.cview(), 0.0, p.c.view()).wait();
  EXPECT_TRUE(probe.ok) << probe.message;
  EXPECT_EQ(svc.breaker_state(), BreakerState::kClosed);
  svc.shutdown();
}

// ---- lifecycle -------------------------------------------------------------

TEST_F(ServiceTest, CancelDuringDrainCompletesQueuedAsCancelled) {
  ServiceOptions options;
  options.shards = 1;
  options.lanes = 1;
  SmmService svc(options);
  Blocker blocker;
  Ticket busy = svc.submit_batch(1.0, blocker.items, 0.0);
  test::GemmProblem<double> p(32, 32, 32, 51);
  std::vector<Ticket> queued;
  for (int i = 0; i < 3; ++i)
    queued.push_back(
        svc.submit(1.0, p.a.cview(), p.b.cview(), 0.0, p.c.view()));

  std::thread drainer([&] { svc.drain(); });
  for (auto& t : queued) t.cancel();
  drainer.join();

  // drain() returned: every admitted request is terminal, and the
  // cancelled ones report kCancelled with C untouched.
  EXPECT_TRUE(busy.done());
  for (auto& t : queued) {
    ASSERT_TRUE(t.done());
    const Result& r = t.wait();
    if (!r.ok) EXPECT_EQ(r.code, ErrorCode::kCancelled) << r.message;
  }
  EXPECT_GE(svc.stats().cancellations, 1u);
  // Draining service refuses new work.
  const Result& late =
      svc.submit(1.0, p.a.cview(), p.b.cview(), 0.0, p.c.view()).wait();
  ASSERT_FALSE(late.ok);
  EXPECT_EQ(late.code, ErrorCode::kShuttingDown);
  svc.shutdown();
}

TEST_F(ServiceTest, ShutdownCompletesAdmittedWorkAndReleasesPoolThreads) {
  ServiceOptions options;
  options.shards = 1;  // exercises the legacy process-wide pool promise
  options.lanes = 2;
  options.threads_per_request = 2;  // make the pool spawn workers
  std::vector<Ticket> tickets;
  test::GemmProblem<double> p(48, 48, 48, 52);
  // Two lanes execute two requests concurrently, so each request needs
  // its own C — sharing p.c across submissions would be a data race.
  std::vector<Matrix<double>> cs;
  for (int i = 0; i < 6; ++i) cs.emplace_back(48, 48);
  {
    SmmService svc(options);
    for (int i = 0; i < 6; ++i)
      tickets.push_back(svc.submit(1.0, p.a.cview(), p.b.cview(), 0.0,
                                   cs[static_cast<std::size_t>(i)].view()));
    svc.shutdown();
    for (auto& t : tickets) EXPECT_TRUE(t.done());
    // The pool below the service holds zero live threads.
    EXPECT_EQ(par::WorkerPool::instance().live_threads(), 0);
  }
  // The pool lazily respawns for the next user.
  par::run_parallel(2, [](int) {});
  EXPECT_GT(par::WorkerPool::instance().live_threads(), 0);
}

TEST_F(ServiceTest, ReleaseThreadsIsReentrantWithPoolUse) {
  auto& pool = par::WorkerPool::instance();
  par::run_parallel(3, [](int) {});
  EXPECT_GT(pool.live_threads(), 0);
  pool.release_threads();
  EXPECT_EQ(pool.live_threads(), 0);
  pool.release_threads();  // idempotent
  EXPECT_EQ(pool.live_threads(), 0);
  std::atomic<int> ran{0};
  par::run_parallel(3, [&](int) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 3);
}

// ---- fork safety -----------------------------------------------------------

TEST_F(ServiceTest, ForkedChildAfterWarmupRunsSmmGemm) {
  // Warm everything fork() endangers: parked pool workers, the watchdog,
  // the process-wide plan caches.
  test::GemmProblem<double> p(32, 32, 32, 61);
  p.reference(1.0, 0.0);
  core::smm_gemm(1.0, p.a.cview(), p.b.cview(), 0.0, p.c.view(), 2);
  ASSERT_TRUE(p.check(32));
  ASSERT_GT(par::WorkerPool::instance().live_threads(), 0);
  ASSERT_GE(common::fork_handler_count(), 2u);

  const std::size_t resets_before =
      robust::health().snapshot().fork_resets;
  const pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // Child: single-threaded, inherited pool/cache state reset by the
    // atfork handlers. A parallel smm_gemm must spawn a fresh roster and
    // produce the right numbers. _exit keeps gtest/atexit machinery out.
    int status = 0;
    try {
      test::GemmProblem<double> q(32, 32, 32, 61);
      q.reference(1.0, 0.0);
      core::smm_gemm(1.0, q.a.cview(), q.b.cview(), 0.0, q.c.view(), 2);
      if (!q.check(32)) status |= 1;
      if (robust::health().snapshot().fork_resets != resets_before + 1)
        status |= 2;
    } catch (...) {
      status |= 4;
    }
    _exit(status);
  }
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), 0);
  // Parent unaffected: same call still works on the parent's roster.
  core::smm_gemm(1.0, p.a.cview(), p.b.cview(), 0.0, p.c.view(), 2);
}

// ---- check_finite ----------------------------------------------------------

TEST_F(ServiceTest, CheckFiniteRejectsNaNInput) {
  test::GemmProblem<double> p(16, 16, 16, 71);
  p.a.view()(3, 4) = std::numeric_limits<double>::quiet_NaN();
  core::SmmOptions options;
  options.check_finite = true;
  const std::size_t before =
      robust::health().snapshot().nonfinite_rejections;
  try {
    core::smm_gemm(1.0, p.a.cview(), p.b.cview(), 0.0, p.c.view(), 1,
                   options);
    FAIL() << "expected kNonFinite";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNonFinite);
  }
  EXPECT_EQ(robust::health().snapshot().nonfinite_rejections, before + 1);
  EXPECT_EQ(max_abs_diff(p.c.cview(), p.c_expected.cview()), 0.0);
}

TEST_F(ServiceTest, CheckFiniteSkipsCWhenBetaZero) {
  test::GemmProblem<double> p(16, 16, 16, 72);
  p.reference(1.0, 0.0);
  p.c.view()(0, 0) = std::numeric_limits<double>::infinity();
  core::SmmOptions options;
  options.check_finite = true;
  // beta == 0 overwrites C: a stale Inf there is harmless and allowed.
  core::smm_gemm(1.0, p.a.cview(), p.b.cview(), 0.0, p.c.view(), 1,
                 options);
  EXPECT_TRUE(p.check(16));
  // beta != 0 reads C: now it must be rejected.
  p.c.view()(0, 0) = std::numeric_limits<double>::infinity();
  try {
    core::smm_gemm(1.0, p.a.cview(), p.b.cview(), 0.5, p.c.view(), 1,
                   options);
    FAIL() << "expected kNonFinite";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNonFinite);
  }
}

TEST_F(ServiceTest, NonFiniteFaultSiteFires) {
  test::GemmProblem<double> p(16, 16, 16, 73);
  core::SmmOptions options;
  options.check_finite = true;
  ScopedFault fault(FaultSite::kNonFiniteInput, FaultSpec{});
  try {
    core::smm_gemm(1.0, p.a.cview(), p.b.cview(), 0.0, p.c.view(), 1,
                   options);
    FAIL() << "expected injected kNonFinite";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNonFinite);
  }
  EXPECT_EQ(FaultInjector::instance().fired_count(FaultSite::kNonFiniteInput),
            1u);
}

TEST_F(ServiceTest, ServiceScreensNonFiniteWhenConfigured) {
  ServiceOptions options;
  options.gemm.check_finite = true;
  SmmService svc(options);
  test::GemmProblem<double> p(16, 16, 16, 74);
  p.a.view()(0, 0) = std::numeric_limits<double>::quiet_NaN();
  const Result& r =
      svc.submit(1.0, p.a.cview(), p.b.cview(), 0.0, p.c.view()).wait();
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.code, ErrorCode::kNonFinite) << r.message;
  // A poisoned request is the caller's fault, not the substrate's: the
  // breaker must stay closed.
  EXPECT_EQ(svc.breaker_state(), BreakerState::kClosed);
  svc.shutdown();
}

// ---- coherent health snapshot ----------------------------------------------

TEST_F(ServiceTest, SnapshotNeverTearsAcrossTransaction) {
  robust::health().reset();
  std::atomic<bool> stop{false};
  // Writers keep two counters in lockstep inside transactions; a torn
  // snapshot would observe them unequal.
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        robust::Health::Transaction tx;
        robust::health().rebuild_fallbacks.fetch_add(
            1, std::memory_order_relaxed);
        robust::health().naive_fallbacks.fetch_add(
            1, std::memory_order_relaxed);
        // The shard router's correlated pair (DESIGN.md §13): admit()
        // brackets these two exactly like this.
        robust::health().service_submitted.fetch_add(
            1, std::memory_order_relaxed);
        robust::health().service_routed.fetch_add(
            1, std::memory_order_relaxed);
        // The autotuner's correlated pair (DESIGN.md §14): a re-plan is
        // always driven by a recorded sample.
        robust::health().tune_samples.fetch_add(1,
                                                std::memory_order_relaxed);
        robust::health().tune_replans.fetch_add(1,
                                                std::memory_order_relaxed);
        // The resilient client's correlated pair (DESIGN.md §16): a
        // rescued call implies a prior retry attempt, so
        // retry_successes <= retry_attempts must hold in every snapshot.
        robust::health().retry_attempts.fetch_add(
            1, std::memory_order_relaxed);
        robust::health().retry_successes.fetch_add(
            1, std::memory_order_relaxed);
      }
    });
  }
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(200);
  std::size_t reads = 0;
  while (std::chrono::steady_clock::now() < until) {
    const auto s = robust::health().snapshot();
    ASSERT_EQ(s.rebuild_fallbacks, s.naive_fallbacks)
        << "torn snapshot after " << reads << " reads";
    ASSERT_EQ(s.service_submitted, s.service_routed)
        << "torn submitted/routed pair after " << reads << " reads";
    ASSERT_EQ(s.tune_samples, s.tune_replans)
        << "torn tune samples/replans pair after " << reads << " reads";
    ASSERT_EQ(s.retry_attempts, s.retry_successes)
        << "torn retry attempts/successes pair after " << reads << " reads";
    ++reads;
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : writers) w.join();
  EXPECT_GT(reads, 0u);
  robust::health().reset();
}

// ---- concurrency stress ----------------------------------------------------

TEST_F(ServiceTest, ConcurrentSubmitCancelStress) {
  ServiceOptions options;
  options.shards = 1;  // the multi-shard stress lives in test_shard
  options.lanes = 2;
  options.queue_depth = 16;
  options.default_deadline_ms = 50;
  SmmService svc(options);
  constexpr int kProducers = 4;
  constexpr int kIters = 120;
  std::atomic<std::size_t> ok{0}, stopped{0}, refused{0}, failed{0};
  std::vector<std::thread> producers;
  for (int w = 0; w < kProducers; ++w) {
    producers.emplace_back([&, w] {
      test::GemmProblem<double> p(24, 24, 24,
                                  1000 + static_cast<std::uint64_t>(w));
      for (int i = 0; i < kIters; ++i) {
        const auto priority = static_cast<Priority>(i % 3);
        Ticket t = svc.submit(1.0, p.a.cview(), p.b.cview(), 0.0,
                              p.c.view(), priority);
        if (i % 3 == 0) t.cancel();
        const Result& r = t.wait();
        if (r.ok) {
          ok.fetch_add(1);
        } else if (r.code == ErrorCode::kCancelled ||
                   r.code == ErrorCode::kDeadlineExceeded) {
          stopped.fetch_add(1);
        } else if (r.code == ErrorCode::kOverloaded) {
          refused.fetch_add(1);
        } else {
          failed.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  svc.shutdown();
  EXPECT_EQ(failed.load(), 0u);
  EXPECT_GT(ok.load(), 0u);
  EXPECT_GT(stopped.load(), 0u);
  const auto s = svc.stats();
  EXPECT_EQ(s.submitted,
            static_cast<std::size_t>(kProducers) * kIters);
  EXPECT_EQ(s.submitted, s.admitted + s.rejected);
  EXPECT_EQ(s.queued, 0u);
  EXPECT_EQ(s.in_flight, 0u);
}

}  // namespace
}  // namespace smm
