// Zero-overhead dispatch: the persistent WorkerPool, the fingerprinted
// single-flight PlanCache behind smm_gemm, the ExecScratch arena, and the
// PrepackedB replay handle. These are the concurrency-heavy pieces of the
// call path, so most tests here hammer them from many threads (the CI
// thread-sanitizer job runs exactly this binary).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/common/error.h"
#include "src/core/plan_cache.h"
#include "src/core/smm.h"
#include "src/plan/exec_scratch.h"
#include "src/plan/native_executor.h"
#include "src/robust/health.h"
#include "src/threading/thread_pool.h"
#include "src/threading/worker_pool.h"
#include "tests/test_helpers.h"

namespace smm {
namespace {

// ---- WorkerPool ------------------------------------------------------------

TEST(WorkerPool, RunsEveryBodyExactlyOnce) {
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> mask{0};
    par::run_parallel(4, [&](int tid) { mask.fetch_or(1 << tid); });
    EXPECT_EQ(mask.load(), 0b1111);
  }
}

TEST(WorkerPool, ServesRepeatedRegionsWithoutRespawning) {
  par::run_parallel(3, [](int) {});  // warm the pool
  const auto before = par::WorkerPool::instance().stats();
  for (int round = 0; round < 20; ++round)
    par::run_parallel(3, [](int) {});
  const auto after = par::WorkerPool::instance().stats();
  EXPECT_GE(after.regions, before.regions + 20);
  EXPECT_EQ(after.workers, before.workers);  // parked threads reused
}

TEST(WorkerPool, MasterRunsBodyZeroInPlace) {
  const auto self = std::this_thread::get_id();
  std::thread::id tid0;
  par::run_parallel(4, [&](int tid) {
    if (tid == 0) tid0 = std::this_thread::get_id();
  });
  EXPECT_EQ(tid0, self);
}

TEST(WorkerPool, NestedRegionsFallBackAndComplete) {
  // A body that forks again must not deadlock on the pool's region lock:
  // the inner region takes the spawn path. The sum checks every inner
  // body of every outer body ran exactly once.
  std::atomic<int> sum{0};
  const auto fallbacks_before =
      robust::health().pool_spawn_fallbacks.load();
  par::run_parallel(3, [&](int outer) {
    par::run_parallel(2, [&](int inner) {
      sum.fetch_add(10 * (outer + 1) + inner);
    });
  });
  // outer 0..2, each contributing (10*(o+1)+0) + (10*(o+1)+1).
  EXPECT_EQ(sum.load(), 21 + 41 + 61);
  EXPECT_GE(robust::health().pool_spawn_fallbacks.load(),
            fallbacks_before + 3);
}

TEST(WorkerPool, ConcurrentExternalCallersAllComplete) {
  // Independent threads race for the pool; losers take the spawn path.
  // Every region must still run all its bodies.
  constexpr int kCallers = 6;
  std::atomic<int> total{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&] {
      for (int round = 0; round < 25; ++round)
        par::run_parallel(4, [&](int) { total.fetch_add(1); });
    });
  }
  for (auto& th : callers) th.join();
  EXPECT_EQ(total.load(), kCallers * 25 * 4);
}

TEST(WorkerPool, SingleFailureRethrownWithOriginalType) {
  EXPECT_THROW(
      par::run_parallel(4,
                        [](int tid) {
                          if (tid == 2)
                            throw std::invalid_argument("tid 2 dies");
                        }),
      std::invalid_argument);
}

TEST(WorkerPool, MultipleFailuresAggregateToWorkerPanic) {
  try {
    par::run_parallel(4, [](int tid) {
      if (tid >= 2) throw std::runtime_error("boom");
    });
    FAIL() << "expected an aggregate error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kWorkerPanic);
    EXPECT_NE(std::string(e.what()).find("thread 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("thread 3"), std::string::npos);
  }
}

TEST(WorkerPool, FailureHookFiresBeforeJoin) {
  // The poisoning hook must run while peers may still be blocked — i.e.
  // at capture time, not after the join. A peer waits until the hook has
  // observably fired, so completion of this test proves the ordering.
  std::atomic<bool> poisoned{false};
  EXPECT_THROW(
      par::run_parallel(
          2,
          [&](int tid) {
            if (tid == 1) throw std::runtime_error("die");
            while (!poisoned.load()) std::this_thread::yield();
          },
          [&] { poisoned.store(true); }),
      std::runtime_error);  // the failure is rethrown after the join
  EXPECT_TRUE(poisoned.load());
}

TEST(WorkerPool, SingleThreadBypassTouchesNoPoolState) {
  const auto before = par::WorkerPool::instance().stats();
  for (int i = 0; i < 100; ++i) par::run_parallel(1, [](int) {});
  const auto after = par::WorkerPool::instance().stats();
  EXPECT_EQ(after.regions, before.regions);
}

// ---- PlanCache -------------------------------------------------------------

TEST(PlanCacheDispatch, FingerprintSeparatesOptionSets) {
  core::PlanCache cache(core::reference_smm(), 8);
  core::SmmOptions never;
  never.pack_b = core::SmmOptions::Packing::kNever;
  core::SmmOptions always;
  always.pack_b = core::SmmOptions::Packing::kAlways;
  ASSERT_NE(core::options_fingerprint(never),
            core::options_fingerprint(always));
  const auto p1 = cache.get({64, 64, 64}, plan::ScalarType::kF32, 1,
                            core::options_fingerprint(never));
  const auto p2 = cache.get({64, 64, 64}, plan::ScalarType::kF32, 1,
                            core::options_fingerprint(always));
  // Same shape, different fingerprints: two distinct entries, no alias.
  EXPECT_NE(p1.get(), p2.get());
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(PlanCacheDispatch, GetOrBuildSingleFlightsConcurrentMisses) {
  core::PlanCache cache(core::reference_smm(), 8);
  constexpr int kThreads = 8;
  std::atomic<int> builders{0};
  std::vector<std::shared_ptr<const plan::GemmPlan>> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      results[static_cast<std::size_t>(t)] = cache.get_or_build(
          {24, 24, 24}, plan::ScalarType::kF32, 1, /*fingerprint=*/7,
          [&] {
            builders.fetch_add(1);
            // Hold the build open so racers must wait on the in-flight
            // future rather than slipping in after completion.
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            return core::reference_smm().make_plan(
                {24, 24, 24}, plan::ScalarType::kF32, 1);
          });
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(builders.load(), 1);
  EXPECT_EQ(cache.builds(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits() + cache.misses(), static_cast<std::size_t>(kThreads));
  for (int t = 1; t < kThreads; ++t)
    EXPECT_EQ(results[0].get(), results[static_cast<std::size_t>(t)].get());
}

TEST(PlanCacheDispatch, PersistentBuildFailureFailsEveryCallerCleanly) {
  // A build failure belongs to its own caller: waiters that shared the
  // failed flight retry the lookup (becoming builders themselves). With
  // a builder that ALWAYS throws, every caller therefore eventually
  // builds-and-throws its own failure — and none blocks forever. (The
  // single-failure case where waiters recover is
  // ChaosTest.SingleFlightBuildFailureDoesNotPoisonCacheOrWaiters.)
  core::PlanCache cache(core::reference_smm(), 8);
  constexpr int kThreads = 4;
  std::atomic<int> throwers{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      try {
        cache.get_or_build({30, 30, 30}, plan::ScalarType::kF32, 1, 0,
                           [&]() -> plan::GemmPlan {
                             std::this_thread::sleep_for(
                                 std::chrono::milliseconds(10));
                             throw std::runtime_error("builder dies");
                           });
      } catch (const std::runtime_error&) {
        throwers.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(throwers.load(), kThreads);
  // The failed build must not leave a poisoned entry behind.
  const auto p = cache.get({30, 30, 30}, plan::ScalarType::kF32, 1);
  EXPECT_NE(p, nullptr);
}

TEST(PlanCacheDispatch, HammerGetClearEvictUnderCapacityTwo) {
  // Tiny capacity + concurrent get/clear across four shapes: every
  // lookup must return a usable plan and the cache must end bounded and
  // consistent. This is the race the TSan job is aimed at.
  core::PlanCache cache(core::reference_smm(), 2);
  constexpr int kThreads = 6;
  constexpr int kIters = 120;
  const GemmShape shapes[] = {{8, 8, 8}, {9, 9, 9}, {10, 10, 10},
                              {11, 11, 11}};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        if (t == 0 && i % 16 == 15) {
          cache.clear();
          continue;
        }
        const auto& shape = shapes[(t + i) % 4];
        const auto p =
            cache.get(shape, plan::ScalarType::kF32, 1,
                      /*fingerprint=*/static_cast<std::uint64_t>(i % 2));
        ASSERT_NE(p, nullptr);
        ASSERT_EQ(p->shape.m, shape.m);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_LE(cache.size(), 2u);
}

// ---- smm_gemm fast path ----------------------------------------------------

TEST(SmmDispatch, WarmCallsBuildNoPlans) {
  test::GemmProblem<float> prob(16, 16, 16, /*seed=*/11);
  prob.reference(1.5f, 0.5f);
  core::smm_gemm(1.5f, prob.a.cview(), prob.b.cview(), 0.5f,
                 prob.c.view());  // cold: may build
  const auto builds = core::smm_plan_cache().builds();
  const auto hits = core::smm_plan_cache().hits();
  for (int i = 0; i < 10; ++i) {
    test::GemmProblem<float> p2(16, 16, 16, /*seed=*/11);
    p2.reference(1.5f, 0.5f);
    core::smm_gemm(1.5f, p2.a.cview(), p2.b.cview(), 0.5f, p2.c.view());
    EXPECT_TRUE(p2.check(16));
  }
  EXPECT_EQ(core::smm_plan_cache().builds(), builds);  // zero warm builds
  EXPECT_EQ(core::smm_plan_cache().hits(), hits + 10);
}

TEST(SmmDispatch, HealthCountersMirrorCacheTraffic) {
  robust::health().reset();
  test::GemmProblem<double> prob(12, 12, 12, /*seed=*/5);
  prob.reference(1.0, 0.0);
  core::smm_gemm(1.0, prob.a.cview(), prob.b.cview(), 0.0, prob.c.view());
  core::smm_gemm(1.0, prob.a.cview(), prob.b.cview(), 0.0, prob.c.view());
  const auto snap = robust::health().snapshot();
  EXPECT_GE(snap.plan_cache_hits, 1u);  // second call at minimum
  EXPECT_GE(snap.plan_cache_hits + snap.plan_cache_misses, 2u);
}

TEST(SmmDispatch, OptionSetsDoNotAliasCachedPlans) {
  // Same shape through the same process-wide cache under opposite
  // packing options: the fingerprint must keep the plans apart (without
  // it the second call would replay the first call's plan).
  const GemmShape shape{20, 20, 20};
  core::SmmOptions never;
  never.pack_b = core::SmmOptions::Packing::kNever;
  never.edge_pack = false;
  core::SmmOptions always;
  always.pack_b = core::SmmOptions::Packing::kAlways;
  test::GemmProblem<float> p1(shape.m, shape.n, shape.k, /*seed=*/7);
  p1.reference(1.0f, 0.0f);
  core::smm_gemm(1.0f, p1.a.cview(), p1.b.cview(), 0.0f, p1.c.view(), 1,
                 never);
  EXPECT_TRUE(p1.check(shape.k));
  test::GemmProblem<float> p2(shape.m, shape.n, shape.k, /*seed=*/7);
  p2.reference(1.0f, 0.0f);
  core::smm_gemm(1.0f, p2.a.cview(), p2.b.cview(), 0.0f, p2.c.view(), 1,
                 always);
  EXPECT_TRUE(p2.check(shape.k));
}

TEST(SmmDispatch, ParallelWarmCallsStayCorrect) {
  for (int round = 0; round < 5; ++round) {
    test::GemmProblem<float> prob(64, 48, 32, /*seed=*/21);
    prob.reference(2.0f, 1.0f);
    core::smm_gemm(2.0f, prob.a.cview(), prob.b.cview(), 1.0f,
                   prob.c.view(), /*nthreads=*/4);
    EXPECT_TRUE(prob.check(32));
  }
}

// ---- ExecScratch arena -----------------------------------------------------

TEST(ExecScratchArena, HighWaterStabilizesAfterWarmup) {
  core::SmmOptions opts;
  opts.pack_b = core::SmmOptions::Packing::kAlways;  // forces scratch use
  test::GemmProblem<float> warm(32, 32, 32, /*seed=*/3);
  warm.reference(1.0f, 0.0f);
  core::smm_gemm(1.0f, warm.a.cview(), warm.b.cview(), 0.0f,
                 warm.c.view(), 1, opts);
  auto& arena = plan::ExecScratch::local();
  const auto grows = arena.grow_count();
  const auto high_water = arena.high_water_bytes();
  const auto leases = arena.lease_count();
  for (int i = 0; i < 10; ++i) {
    test::GemmProblem<float> prob(32, 32, 32, /*seed=*/3);
    prob.reference(1.0f, 0.0f);
    core::smm_gemm(1.0f, prob.a.cview(), prob.b.cview(), 0.0f,
                   prob.c.view(), 1, opts);
    EXPECT_TRUE(prob.check(32));
  }
  // Warm same-shape calls: zero slab growth (= zero heap allocations on
  // the scratch path), while every call leased the arena.
  EXPECT_EQ(arena.grow_count(), grows);
  EXPECT_EQ(arena.high_water_bytes(), high_water);
  EXPECT_GE(arena.lease_count(), leases + 10);
}

TEST(ExecScratchArena, LeaseCarvesZeroedAlignedSlices) {
  plan::ExecScratch arena;
  const std::vector<index_t> sizes{5, 0, 33};
  plan::ExecScratch::Lease<double> lease(arena, sizes);
  ASSERT_NE(lease.ptr(0), nullptr);
  EXPECT_EQ(lease.ptr(1), nullptr);
  ASSERT_NE(lease.ptr(2), nullptr);
  EXPECT_TRUE(lease.used_arena());
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(lease.ptr(0)) %
                kBufferAlignment,
            0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(lease.ptr(2)) %
                kBufferAlignment,
            0u);
  for (index_t i = 0; i < 5; ++i) EXPECT_EQ(lease.ptr(0)[i], 0.0);
  for (index_t i = 0; i < 33; ++i) EXPECT_EQ(lease.ptr(2)[i], 0.0);
}

TEST(ExecScratchArena, NestedLeaseFallsBackToPrivateBuffers) {
  plan::ExecScratch arena;
  plan::ExecScratch::Lease<float> outer(arena, {16});
  EXPECT_TRUE(outer.used_arena());
  plan::ExecScratch::Lease<float> inner(arena, {16});
  EXPECT_FALSE(inner.used_arena());  // arena busy: private allocation
  ASSERT_NE(inner.ptr(0), nullptr);
  EXPECT_NE(inner.ptr(0), outer.ptr(0));
}

TEST(ExecScratchArena, ZeroesAreFreshPerLease) {
  plan::ExecScratch arena;
  {
    plan::ExecScratch::Lease<float> lease(arena, {8});
    for (index_t i = 0; i < 8; ++i) lease.ptr(0)[i] = 7.0f;
  }
  plan::ExecScratch::Lease<float> again(arena, {8});
  for (index_t i = 0; i < 8; ++i) EXPECT_EQ(again.ptr(0)[i], 0.0f);
}

// ---- PrepackedB ------------------------------------------------------------

TEST(PrepackedBTest, MaterializedReplayMatchesReference) {
  core::SmmOptions opts;
  opts.pack_b = core::SmmOptions::Packing::kAlways;
  // Single-block shape: B packs into one buffer region, so the handle
  // materializes it.
  auto handle_problem = test::GemmProblem<float>(24, 16, 12, /*seed=*/9);
  const auto handle = core::smm_prepack_b<float>(
      handle_problem.b.cview(), /*m=*/24, 1, opts);
  EXPECT_TRUE(handle.materialized());
  for (int round = 0; round < 3; ++round) {
    test::GemmProblem<float> prob(24, 16, 12,
                                  /*seed=*/static_cast<unsigned>(round));
    prob.b = handle_problem.b.clone();  // same B the handle packed
    prob.reference(1.0f, 2.0f);
    handle.run(1.0f, prob.a.cview(), 2.0f, prob.c.view());
    EXPECT_TRUE(prob.check(12));
  }
}

TEST(PrepackedBTest, EdgeShapesStayCorrect) {
  core::SmmOptions opts;
  opts.pack_b = core::SmmOptions::Packing::kAlways;
  // Awkward extents: partial tiles in every dimension.
  test::GemmProblem<double> prob(7, 9, 5, /*seed=*/13);
  prob.reference(1.0, 0.5);
  const auto handle =
      core::smm_prepack_b<double>(prob.b.cview(), /*m=*/7, 1, opts);
  handle.run(1.0, prob.a.cview(), 0.5, prob.c.view());
  EXPECT_TRUE(prob.check(5));
}

TEST(PrepackedBTest, UnpackedPlanFallsBackGracefully) {
  core::SmmOptions opts;
  opts.pack_b = core::SmmOptions::Packing::kNever;
  opts.edge_pack = false;
  // Direct-B plan: nothing to materialize; run() must equal execute.
  test::GemmProblem<float> prob(16, 16, 16, /*seed=*/17);
  prob.reference(1.0f, 0.0f);
  const auto handle =
      core::smm_prepack_b<float>(prob.b.cview(), /*m=*/16, 1, opts);
  EXPECT_FALSE(handle.materialized());
  handle.run(1.0f, prob.a.cview(), 0.0f, prob.c.view());
  EXPECT_TRUE(prob.check(16));
}

TEST(PrepackedBTest, MultiBlockPlansReplayCorrectly) {
  // N spans two nc blocks: the plan builder reuses one pack buffer
  // across (jj, kk) blocks, so materialization must be refused (overlap)
  // and the handle must fall back to per-call packing — never a wrong
  // result.
  core::SmmOptions opts;
  opts.pack_b = core::SmmOptions::Packing::kAlways;
  test::GemmProblem<float> prob(8, 500, 8, /*seed=*/23);
  prob.reference(1.0f, 0.0f);
  const auto handle =
      core::smm_prepack_b<float>(prob.b.cview(), /*m=*/8, 1, opts);
  handle.run(1.0f, prob.a.cview(), 0.0f, prob.c.view());
  EXPECT_TRUE(prob.check(8));
}

TEST(PrepackedBTest, RejectsMismatchedB) {
  const auto plan = core::smm_plan_cache().get({8, 8, 8},
                                               plan::ScalarType::kF32, 1);
  test::GemmProblem<float> wrong(8, 9, 8, /*seed=*/2);
  EXPECT_THROW(plan::PrepackedB<float>(plan, wrong.b.cview()), Error);
}

TEST(PrepackedBTest, ParallelPlanReplayMatchesReference) {
  core::SmmOptions opts;
  opts.pack_b = core::SmmOptions::Packing::kAlways;
  test::GemmProblem<double> prob(64, 48, 32, /*seed=*/31);
  prob.reference(1.0, 1.0);
  const auto handle =
      core::smm_prepack_b<double>(prob.b.cview(), /*m=*/64, 4, opts);
  handle.run(1.0, prob.a.cview(), 1.0, prob.c.view());
  EXPECT_TRUE(prob.check(32));
}

}  // namespace
}  // namespace smm
