// The robustness layer under fire: every injection point is driven in
// turn and the guarded executor must serve a bit-correct C — by retry, by
// plan rebuild, or by degrading to libs::naive — with the fault, the
// retry count, and the serving fallback recorded in the RunReport.
// Everything is deterministic by seed.
#include <gtest/gtest.h>

#include <stdexcept>

#include "src/common/str.h"
#include "src/core/autotune.h"
#include "src/core/batched.h"
#include "src/core/smm.h"
#include "src/libs/naive.h"
#include "src/robust/abft.h"
#include "src/robust/fault_injection.h"
#include "src/robust/guarded_executor.h"
#include "src/robust/health.h"
#include "src/threading/thread_pool.h"
#include "src/threading/worker_pool.h"
#include "tests/test_helpers.h"

namespace smm {
namespace {

using robust::FaultInjector;
using robust::FaultSite;
using robust::FaultSpec;
using robust::GuardedExecutor;
using robust::GuardOptions;
using robust::Outcome;
using robust::RunReport;
using robust::ScopedFault;

// Shape chosen so the default tiles divide evenly: every packed element
// is a real matrix element (a bit flip can never hide in panel padding).
constexpr index_t kM = 64, kN = 48, kK = 64;

core::SmmOptions always_pack() {
  core::SmmOptions o;
  o.pack_a = core::SmmOptions::Packing::kAlways;
  o.pack_b = core::SmmOptions::Packing::kAlways;
  return o;
}

template <typename T>
::testing::AssertionResult bit_equal(ConstMatrixView<T> actual,
                                     ConstMatrixView<T> expected) {
  for (index_t j = 0; j < actual.cols(); ++j)
    for (index_t i = 0; i < actual.rows(); ++i)
      if (actual(i, j) != expected(i, j))
        return ::testing::AssertionFailure()
               << "mismatch at (" << i << "," << j << "): " << actual(i, j)
               << " != " << expected(i, j);
  return ::testing::AssertionSuccess();
}

class RobustTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::instance().disarm_all();
    strategy_ = core::make_reference_smm(always_pack());
  }
  void TearDown() override { FaultInjector::instance().disarm_all(); }

  /// A fresh problem plus the clean guarded result (the bit-exactness
  /// oracle for recovered runs: identical plans re-run bit-identically).
  struct Scenario {
    test::GemmProblem<float> prob{kM, kN, kK, 0xC0FFEE};
    Matrix<float> c_clean{kM, kN};
  };

  Scenario make_scenario(GuardedExecutor& guard, float alpha, float beta,
                         int nthreads = 1) {
    Scenario s;
    s.c_clean = s.prob.c.clone();
    const RunReport clean = guard.run(alpha, s.prob.a.cview(),
                                      s.prob.b.cview(), beta,
                                      s.c_clean.view(), nthreads);
    EXPECT_EQ(clean.outcome, Outcome::kOk);
    return s;
  }

  std::unique_ptr<libs::GemmStrategy> strategy_;
};

TEST_F(RobustTest, InjectionDisabledByDefault) {
  for (int i = 0; i < robust::kFaultSiteCount; ++i) {
    const auto site = static_cast<FaultSite>(i);
    EXPECT_FALSE(FaultInjector::instance().armed(site));
    EXPECT_FALSE(robust::should_fire(site));
    EXPECT_STRNE(robust::to_string(site), "?");
  }
}

TEST_F(RobustTest, FireCountingIsDeterministic) {
  FaultInjector::instance().arm(FaultSite::kWorkerThrow,
                                {/*fire_after=*/2, /*max_fires=*/1});
  EXPECT_FALSE(robust::should_fire(FaultSite::kWorkerThrow));  // hit 0
  EXPECT_FALSE(robust::should_fire(FaultSite::kWorkerThrow));  // hit 1
  EXPECT_TRUE(robust::should_fire(FaultSite::kWorkerThrow));   // hit 2
  EXPECT_FALSE(robust::should_fire(FaultSite::kWorkerThrow));  // spent
  EXPECT_EQ(FaultInjector::instance().fired_count(FaultSite::kWorkerThrow),
            1u);
  EXPECT_EQ(FaultInjector::instance().hit_count(FaultSite::kWorkerThrow),
            4u);
  FaultInjector::instance().disarm(FaultSite::kWorkerThrow);
  EXPECT_FALSE(robust::should_fire(FaultSite::kWorkerThrow));
}

TEST_F(RobustTest, ErrorCodesHaveNames) {
  for (const ErrorCode code :
       {ErrorCode::kUnknown, ErrorCode::kPrecondition, ErrorCode::kBadShape,
        ErrorCode::kAlias, ErrorCode::kAlloc, ErrorCode::kKernelFault,
        ErrorCode::kChecksumMismatch, ErrorCode::kWorkerPanic})
    EXPECT_STRNE(to_string(code), "?");
  const Error e(ErrorCode::kAlias, "boom");
  EXPECT_EQ(e.code(), ErrorCode::kAlias);
}

TEST_F(RobustTest, ChecksumAcceptsCleanRejectsCorrupt) {
  test::GemmProblem<float> prob(kM, kN, kK, 77);
  prob.reference(1.5f, 0.0f);
  Matrix<float> c = prob.c_expected.clone();
  const auto clean = robust::verify_gemm_checksum<float>(
      1.5f, prob.a.cview(), prob.b.cview(), 0.0f, nullptr, kM, c.cview());
  EXPECT_TRUE(clean.ok) << "residual " << clean.residual << " > tol "
                        << clean.tolerance;
  c(11, 17) += 1.0f;  // simulated soft error
  const auto bad = robust::verify_gemm_checksum<float>(
      1.5f, prob.a.cview(), prob.b.cview(), 0.0f, nullptr, kM, c.cview());
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.worst_col, 17);  // ramp row localizes the column
}

TEST_F(RobustTest, PackBitFlipDetectedAndRetried) {
  GuardedExecutor guard(*strategy_, GuardOptions{});
  for (const std::uint64_t seed : {1ull, 42ull, 0xDEADull}) {
    Scenario s = make_scenario(guard, 1.0f, 0.0f);
    ScopedFault fault(FaultSite::kPackBitFlip, {0, 1, seed});
    const RunReport report =
        guard.run(1.0f, s.prob.a.cview(), s.prob.b.cview(), 0.0f,
                  s.prob.c.view());
    EXPECT_EQ(FaultInjector::instance().fired_count(FaultSite::kPackBitFlip),
              1u);
    EXPECT_EQ(report.outcome, Outcome::kRecovered) << report.summary();
    EXPECT_EQ(report.first_error, ErrorCode::kChecksumMismatch);
    EXPECT_GE(report.retries, 1);
    EXPECT_STREQ(report.fallback, "none");
    EXPECT_TRUE(bit_equal(s.prob.c.cview(), s.c_clean.cview()));
  }
}

TEST_F(RobustTest, KernelMiscomputeDetectedAndRetried) {
  GuardedExecutor guard(*strategy_, GuardOptions{});
  Scenario s = make_scenario(guard, 2.0f, 0.0f);
  ScopedFault fault(FaultSite::kKernelMiscompute, {0, 1, 99});
  const RunReport report = guard.run(
      2.0f, s.prob.a.cview(), s.prob.b.cview(), 0.0f, s.prob.c.view());
  EXPECT_EQ(report.outcome, Outcome::kRecovered) << report.summary();
  EXPECT_EQ(report.first_error, ErrorCode::kChecksumMismatch);
  EXPECT_TRUE(bit_equal(s.prob.c.cview(), s.c_clean.cview()));
}

TEST_F(RobustTest, AllocFailureRecovered) {
  GuardedExecutor guard(*strategy_, GuardOptions{});
  Scenario s = make_scenario(guard, 1.0f, 0.0f);
  ScopedFault fault(FaultSite::kAllocFail, {0, 1});
  const RunReport report = guard.run(
      1.0f, s.prob.a.cview(), s.prob.b.cview(), 0.0f, s.prob.c.view());
  EXPECT_EQ(report.outcome, Outcome::kRecovered) << report.summary();
  EXPECT_EQ(report.first_error, ErrorCode::kAlloc);
  EXPECT_TRUE(bit_equal(s.prob.c.cview(), s.c_clean.cview()));
}

TEST_F(RobustTest, WorkerPanicRecovered) {
  GuardedExecutor guard(*strategy_, GuardOptions{});
  Scenario s = make_scenario(guard, 1.0f, 0.0f, /*nthreads=*/2);
  ScopedFault fault(FaultSite::kWorkerThrow, {0, 1});
  const RunReport report =
      guard.run(1.0f, s.prob.a.cview(), s.prob.b.cview(), 0.0f,
                s.prob.c.view(), /*nthreads=*/2);
  EXPECT_EQ(report.outcome, Outcome::kRecovered) << report.summary();
  EXPECT_EQ(report.first_error, ErrorCode::kWorkerPanic);
  EXPECT_TRUE(bit_equal(s.prob.c.cview(), s.c_clean.cview()));
}

TEST_F(RobustTest, BetaSemanticsSurviveRetry) {
  GuardedExecutor guard(*strategy_, GuardOptions{});
  Scenario s = make_scenario(guard, 1.0f, 0.5f);
  ScopedFault fault(FaultSite::kKernelMiscompute, {0, 1, 7});
  const RunReport report = guard.run(
      1.0f, s.prob.a.cview(), s.prob.b.cview(), 0.5f, s.prob.c.view());
  EXPECT_EQ(report.outcome, Outcome::kRecovered) << report.summary();
  // The retry re-applied beta to the *original* C (snapshot restore), so
  // the result matches the clean run bit-for-bit.
  EXPECT_TRUE(bit_equal(s.prob.c.cview(), s.c_clean.cview()));
  s.prob.reference(1.0f, 0.5f);
  EXPECT_TRUE(s.prob.check(kK));
}

TEST_F(RobustTest, PersistentFaultDegradesToNaive) {
  GuardedExecutor guard(*strategy_, GuardOptions{});
  test::GemmProblem<float> prob(kM, kN, kK, 0xBEEF);
  prob.reference(1.0f, 0.25f);  // naive oracle into c_expected
  ScopedFault fault(FaultSite::kKernelMiscompute,
                    {0, /*max_fires=*/1u << 30, 5});
  const RunReport report = guard.run(
      1.0f, prob.a.cview(), prob.b.cview(), 0.25f, prob.c.view());
  EXPECT_EQ(report.outcome, Outcome::kDegraded) << report.summary();
  EXPECT_STREQ(report.fallback, "naive");
  EXPECT_EQ(report.first_error, ErrorCode::kChecksumMismatch);
  // cached + retry + rebuilt all fault; naive serves.
  EXPECT_EQ(report.attempts, 4);
  EXPECT_EQ(report.retries, 3);
  // The naive fallback IS the oracle: bit-correct by definition.
  EXPECT_TRUE(bit_equal(prob.c.cview(), prob.c_expected.cview()));
}

TEST_F(RobustTest, PersistentPackFaultDegradesToNaive) {
  GuardedExecutor guard(*strategy_, GuardOptions{});
  test::GemmProblem<float> prob(kM, kN, kK, 0xF00D);
  prob.reference(1.0f, 0.0f);
  ScopedFault fault(FaultSite::kPackBitFlip, {0, 1u << 30, 11});
  const RunReport report = guard.run(
      1.0f, prob.a.cview(), prob.b.cview(), 0.0f, prob.c.view());
  EXPECT_EQ(report.outcome, Outcome::kDegraded) << report.summary();
  EXPECT_STREQ(report.fallback, "naive");
  EXPECT_TRUE(bit_equal(prob.c.cview(), prob.c_expected.cview()));
}

TEST_F(RobustTest, ExhaustedChainRestoresOriginalC) {
  GuardOptions opts;
  opts.retries = 0;
  opts.allow_rebuild = false;
  opts.allow_naive = false;
  GuardedExecutor guard(*strategy_, opts);
  test::GemmProblem<float> prob(kM, kN, kK, 5);
  const Matrix<float> c_before = prob.c.clone();
  ScopedFault fault(FaultSite::kKernelMiscompute, {0, 1u << 30, 3});
  const RunReport report = guard.run(
      1.0f, prob.a.cview(), prob.b.cview(), 0.5f, prob.c.view());
  EXPECT_EQ(report.outcome, Outcome::kFailed);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.attempts, 1);
  // A failed request must not leave a half-written C behind.
  EXPECT_TRUE(bit_equal(prob.c.cview(), c_before.cview()));
}

TEST_F(RobustTest, FaultsAreDeterministicBySeed) {
  GuardedExecutor guard(*strategy_, GuardOptions{});
  RunReport reports[2];
  Matrix<float> results[2];
  for (int round = 0; round < 2; ++round) {
    Scenario s = make_scenario(guard, 1.0f, 0.0f);
    ScopedFault fault(FaultSite::kPackBitFlip, {0, 1, 0xABCD});
    reports[round] = guard.run(1.0f, s.prob.a.cview(), s.prob.b.cview(),
                               0.0f, s.prob.c.view());
    results[round] = s.prob.c.clone();
  }
  EXPECT_EQ(reports[0].outcome, reports[1].outcome);
  EXPECT_EQ(reports[0].attempts, reports[1].attempts);
  EXPECT_EQ(reports[0].checksum_residual, reports[1].checksum_residual);
  EXPECT_TRUE(bit_equal(results[0].cview(), results[1].cview()));
}

TEST_F(RobustTest, ArmedButNeverFiringChangesNothing) {
  GuardedExecutor guard(*strategy_, GuardOptions{});
  Scenario s = make_scenario(guard, 1.0f, 0.0f);
  ScopedFault fault(FaultSite::kPackBitFlip,
                    {/*fire_after=*/1u << 30, 1});
  const RunReport report = guard.run(
      1.0f, s.prob.a.cview(), s.prob.b.cview(), 0.0f, s.prob.c.view());
  EXPECT_EQ(report.outcome, Outcome::kOk);
  // The injection point was reached (the hook is wired) but never fired.
  EXPECT_GT(FaultInjector::instance().hit_count(FaultSite::kPackBitFlip),
            0u);
  EXPECT_EQ(FaultInjector::instance().fired_count(FaultSite::kPackBitFlip),
            0u);
  EXPECT_TRUE(bit_equal(s.prob.c.cview(), s.c_clean.cview()));
}

TEST_F(RobustTest, GuardedPreconditionsThrowTypedErrors) {
  GuardedExecutor guard(*strategy_, GuardOptions{});
  Matrix<float> a(4, 8), b(8, 5), c(4, 5);
  try {
    Matrix<float> wrong(3, 5);
    guard.run(1.0f, a.cview(), b.cview(), 0.0f, wrong.view());
    FAIL() << "dimension mismatch not rejected";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBadShape);
  }
  try {
    // C aliasing A must be rejected, not silently miscomputed.
    MatrixView<float> c_alias(a.data(), 4, 5, 4);
    guard.run(1.0f, a.cview(), ConstMatrixView<float>(a.data(), 8, 5, 8),
              0.0f, c_alias);
    FAIL() << "aliasing not rejected";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kAlias);
  }
  try {
    ConstMatrixView<float> null_a(nullptr, 4, 8, 4);
    guard.run(1.0f, null_a, b.cview(), 0.0f, c.view());
    FAIL() << "null data not rejected";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBadShape);
  }
  EXPECT_THROW(guard.run(1.0f, a.cview(), b.cview(), 0.0f, c.view(), 0),
               Error);
}

TEST_F(RobustTest, EntryPointValidation) {
  Matrix<float> a(4, 8), b(8, 5), c(4, 5);
  EXPECT_THROW(
      core::smm_gemm(1.0f, a.cview(), b.cview(), 0.0f, c.view(), 0),
      Error);
  ConstMatrixView<float> null_b(nullptr, 8, 5, 8);
  EXPECT_THROW(core::smm_gemm(1.0f, a.cview(), null_b, 0.0f, c.view()),
               Error);
  EXPECT_THROW(
      libs::run(core::reference_smm(), 1.0f, a.cview(), b.cview(), 0.0f,
                c.view(), 0),
      Error);
  EXPECT_THROW(core::autotune({8, 8, 8}, plan::ScalarType::kF32, 0,
                              sim::phytium2000p()),
               Error);
}

TEST_F(RobustTest, RunParallelAggregatesAllWorkerFailures) {
  try {
    par::run_parallel(4, [](int tid) {
      if (tid == 1) throw Error(ErrorCode::kKernelFault, "worker one died");
      if (tid == 3) throw std::runtime_error("worker three died");
    });
    FAIL() << "expected aggregate error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kWorkerPanic);
    const std::string what = e.what();
    EXPECT_NE(what.find("thread 1"), std::string::npos) << what;
    EXPECT_NE(what.find("thread 3"), std::string::npos) << what;
    EXPECT_NE(what.find("worker one died"), std::string::npos) << what;
    EXPECT_NE(what.find("worker three died"), std::string::npos) << what;
  }
  // A single failure keeps its original type (no wrapping).
  EXPECT_THROW(par::run_parallel(4,
                                 [](int tid) {
                                   if (tid == 2)
                                     throw std::invalid_argument("just me");
                                 }),
               std::invalid_argument);
}

TEST_F(RobustTest, PlanCacheCountersRaceFree) {
  core::PlanCache cache(core::reference_smm());
  const GemmShape shapes[] = {{8, 8, 8}, {16, 16, 16}, {24, 24, 24}};
  par::run_parallel(8, [&](int) {
    for (int r = 0; r < 50; ++r)
      for (const auto& s : shapes)
        cache.get(s, plan::ScalarType::kF32, 1);
  });
  // Readers are lock-free; totals must still balance exactly.
  EXPECT_EQ(cache.hits() + cache.misses(), 8u * 50u * 3u);
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_GE(cache.builds(), 3u);
}

TEST_F(RobustTest, BatchedRejectsBadItemsUpFront) {
  core::PlanCache cache(core::reference_smm());
  Matrix<float> a(8, 8), b(8, 8), c(8, 8), c2(8, 8);
  using Item = core::GemmBatchItem<float>;
  // Zero dimension, with the item index in the message.
  {
    Matrix<float> a0(8, 0), b0(0, 8);
    std::vector<Item> items{{a.cview(), b.cview(), c.view()},
                            {a0.cview(), b0.cview(), c2.view()}};
    try {
      core::batched_smm(1.0f, items, 0.0f, cache);
      FAIL() << "zero-dim item not rejected";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kBadShape);
      EXPECT_NE(std::string(e.what()).find("item 1"), std::string::npos)
          << e.what();
    }
  }
  // C aliasing across items.
  {
    std::vector<Item> items{{a.cview(), b.cview(), c.view()},
                            {a.cview(), b.cview(), c.view()}};
    try {
      core::batched_smm(1.0f, items, 0.0f, cache);
      FAIL() << "aliased outputs not rejected";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kAlias);
      EXPECT_NE(std::string(e.what()).find("aliases"), std::string::npos)
          << e.what();
    }
  }
  // No work was started for rejected batches.
  EXPECT_EQ(cache.hits() + cache.misses(), 0u);
}

TEST_F(RobustTest, BatchedReportsPerItemFailuresWithIndex) {
  core::PlanCache cache(*strategy_);  // packing plans allocate scratch
  Matrix<float> a(kM, kK), b(kK, kN);
  Rng rng(3);
  a.fill_random(rng);
  b.fill_random(rng);
  std::vector<Matrix<float>> cs;
  for (int i = 0; i < 4; ++i) cs.emplace_back(kM, kN);
  std::vector<core::GemmBatchItem<float>> items;
  for (int i = 0; i < 4; ++i)
    items.push_back({a.cview(), b.cview(), cs[static_cast<std::size_t>(i)]
                                               .view()});
  const auto failures_before =
      robust::health().batched_item_failures.load();
  ScopedFault fault(FaultSite::kAllocFail, {0, 1u << 30});
  try {
    core::batched_smm(1.0f, items, 0.0f, cache, /*nworkers=*/2);
    FAIL() << "expected per-item failures";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kAlloc);
    const std::string what = e.what();
    EXPECT_NE(what.find("4 of 4 items failed"), std::string::npos) << what;
    for (int i = 0; i < 4; ++i)
      EXPECT_NE(what.find(strprintf("item %d", i)), std::string::npos)
          << what;
  }
  EXPECT_EQ(robust::health().batched_item_failures.load(),
            failures_before + 4);
}

TEST_F(RobustTest, HealthCountersAccumulate) {
  robust::health().reset();
  GuardedExecutor guard(*strategy_, GuardOptions{});
  Scenario s = make_scenario(guard, 1.0f, 0.0f);  // one clean run
  {
    ScopedFault fault(FaultSite::kKernelMiscompute, {0, 1, 21});
    guard.run(1.0f, s.prob.a.cview(), s.prob.b.cview(), 0.0f,
              s.prob.c.view());
  }
  const robust::HealthSnapshot snap = robust::health().snapshot();
  EXPECT_EQ(snap.guarded_runs, 2u);
  EXPECT_EQ(snap.clean_runs, 1u);
  EXPECT_GE(snap.retries, 1u);
  EXPECT_GE(snap.checksum_rejections, 1u);
  EXPECT_FALSE(snap.to_string().empty());
}

TEST_F(RobustTest, ReportSummaryIsReadable) {
  GuardedExecutor guard(*strategy_, GuardOptions{});
  Scenario s = make_scenario(guard, 1.0f, 0.0f);
  const RunReport report = guard.run(
      1.0f, s.prob.a.cview(), s.prob.b.cview(), 0.0f, s.prob.c.view());
  const std::string text = report.summary();
  EXPECT_NE(text.find("outcome=ok"), std::string::npos) << text;
  EXPECT_NE(text.find("fallback=none"), std::string::npos) << text;
}

TEST_F(RobustTest, VerificationOffStillCatchesThrownFaults) {
  GuardOptions opts;
  opts.verify = false;
  GuardedExecutor guard(*strategy_, opts);
  Scenario s = make_scenario(guard, 1.0f, 0.0f);
  ScopedFault fault(FaultSite::kAllocFail, {0, 1});
  const RunReport report = guard.run(
      1.0f, s.prob.a.cview(), s.prob.b.cview(), 0.0f, s.prob.c.view());
  EXPECT_EQ(report.outcome, Outcome::kRecovered);
  EXPECT_EQ(report.first_error, ErrorCode::kAlloc);
  EXPECT_EQ(report.checksum_residual, 0.0);
  EXPECT_TRUE(bit_equal(s.prob.c.cview(), s.c_clean.cview()));
}

// ---- guarded executor x warm path ------------------------------------------
// The fast paths of PRs 2-3 (plan cache, worker pool, prepack, barrier
// elision) each meet the guarded chain under fire: recovery must neither
// evict the cached plan nor poison the pool.

TEST_F(RobustTest, WarmCachedPlanSurvivesRecoveryAndStaysCached) {
  GuardedExecutor guard(*strategy_, GuardOptions{});
  Scenario s = make_scenario(guard, 1.0f, 0.0f);  // builds + caches
  EXPECT_EQ(guard.cache().builds(), 1u);
  {
    ScopedFault fault(FaultSite::kKernelMiscompute, {0, 1, 21});
    const RunReport report = guard.run(
        1.0f, s.prob.a.cview(), s.prob.b.cview(), 0.0f, s.prob.c.view());
    EXPECT_EQ(report.outcome, Outcome::kRecovered) << report.summary();
    EXPECT_TRUE(bit_equal(s.prob.c.cview(), s.c_clean.cview()));
  }
  // The transient fault cost retries, never the cache entry: the next
  // warm call is clean and nothing was rebuilt into the cache.
  const RunReport warm = guard.run(
      1.0f, s.prob.a.cview(), s.prob.b.cview(), 0.0f, s.prob.c.view());
  EXPECT_EQ(warm.outcome, Outcome::kOk) << warm.summary();
  EXPECT_EQ(guard.cache().builds(), 1u);
  EXPECT_TRUE(bit_equal(s.prob.c.cview(), s.c_clean.cview()));
}

TEST_F(RobustTest, PooledParallelRecoveryLeavesPoolHealthy) {
  // Warm the pool so the guarded region below is pool-served, then make
  // one pooled worker throw: the guard must recover and the pool must
  // keep serving regions (no quarantine — a thrown body is a normal
  // captured failure, not a hang).
  par::run_parallel(2, [](int) {});
  auto& pool = par::WorkerPool::instance();
  const auto stats_before = pool.stats();

  GuardedExecutor guard(*strategy_, GuardOptions{});
  Scenario s = make_scenario(guard, 1.0f, 0.0f, /*nthreads=*/2);
  ScopedFault fault(FaultSite::kWorkerThrow, {0, 1});
  const RunReport report =
      guard.run(1.0f, s.prob.a.cview(), s.prob.b.cview(), 0.0f,
                s.prob.c.view(), /*nthreads=*/2);
  EXPECT_EQ(report.outcome, Outcome::kRecovered) << report.summary();
  EXPECT_TRUE(bit_equal(s.prob.c.cview(), s.c_clean.cview()));

  const auto stats_after = pool.stats();
  EXPECT_GT(stats_after.regions, stats_before.regions);
  EXPECT_EQ(stats_after.quarantines, stats_before.quarantines);
  EXPECT_FALSE(pool.quarantined());
}

TEST_F(RobustTest, BarrierElidedParallelPlanRecovers) {
  // Direct-operand decomposition of this shape runs 4 ways with zero
  // barriers (probed below): worker failure recovery must not depend on
  // barrier poisoning existing in the plan.
  core::SmmOptions opts;
  opts.pack_a = opts.pack_b = core::SmmOptions::Packing::kNever;
  opts.edge_pack = false;
  const auto strategy = core::make_reference_smm(opts);
  ASSERT_TRUE(strategy
                  ->make_plan({48, 512, 32}, plan::ScalarType::kF32, 4)
                  .barriers.empty());

  GuardedExecutor guard(*strategy, GuardOptions{});
  test::GemmProblem<float> prob(48, 512, 32, 0xE11D);
  prob.reference(1.0f, 0.0f);
  ScopedFault fault(FaultSite::kWorkerThrow, {0, 1});
  const RunReport report =
      guard.run(1.0f, prob.a.cview(), prob.b.cview(), 0.0f, prob.c.view(),
                /*nthreads=*/4);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.first_error, ErrorCode::kWorkerPanic);
  EXPECT_TRUE(prob.check(32));
}

TEST_F(RobustTest, CorruptedPrepackIsCaughtByChecksumVerification) {
  // A bit flip during PrepackedB materialization poisons every replay —
  // the worst case for the amortized path. ABFT is the detection story:
  // the same row-checksum verify the guard runs rejects the replayed C.
  core::SmmOptions opts;
  opts.pack_b = core::SmmOptions::Packing::kAlways;
  test::GemmProblem<float> prob(24, 16, 12, 0x5EED);
  // Warm the process-wide plan cache first: a cold call runs
  // calibration/warm-up packs, and the single fire must land in the
  // handle's materialized storage, not in a throwaway buffer.
  { const auto warm = core::smm_prepack_b<float>(prob.b.cview(), 24, 1, opts); }
  {
    ScopedFault fault(FaultSite::kPackBitFlip, {0, 1, 0xBAD});
    const auto handle =
        core::smm_prepack_b<float>(prob.b.cview(), /*m=*/24, 1, opts);
    ASSERT_TRUE(handle.materialized());
    handle.run(1.0f, prob.a.cview(), 0.0f, prob.c.view());
    const robust::ChecksumReport cr = robust::verify_gemm_checksum<float>(
        1.0f, prob.a.cview(), prob.b.cview(), 0.0f, nullptr, 24,
        prob.c.cview(), /*tolerance_scale=*/64.0);
    EXPECT_FALSE(cr.ok) << "corrupted prepack passed verification";
  }
  // A clean handle over the same B verifies.
  const auto handle =
      core::smm_prepack_b<float>(prob.b.cview(), /*m=*/24, 1, opts);
  handle.run(1.0f, prob.a.cview(), 0.0f, prob.c.view());
  const robust::ChecksumReport cr = robust::verify_gemm_checksum<float>(
      1.0f, prob.a.cview(), prob.b.cview(), 0.0f, nullptr, 24,
      prob.c.cview(), /*tolerance_scale=*/64.0);
  EXPECT_TRUE(cr.ok);
  prob.reference(1.0f, 0.0f);
  EXPECT_TRUE(prob.check(12));
}

}  // namespace
}  // namespace smm
