// Shared helpers for the smmkit test suite.
#pragma once

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/libs/naive.h"
#include "src/matrix/compare.h"
#include "src/matrix/matrix.h"

namespace smm::test {

/// Random matrices for a GEMM problem, deterministic per seed.
template <typename T>
struct GemmProblem {
  Matrix<T> a;
  Matrix<T> b;
  Matrix<T> c;
  Matrix<T> c_expected;

  GemmProblem(index_t m, index_t n, index_t k, std::uint64_t seed,
              Layout a_layout = Layout::kColMajor,
              Layout b_layout = Layout::kColMajor)
      : a(m, k, a_layout), b(k, n, b_layout), c(m, n), c_expected(m, n) {
    Rng rng(seed);
    a.fill_random(rng);
    b.fill_random(rng);
    c.fill_random(rng);
    c_expected = c.clone();
  }

  /// Compute the oracle into c_expected.
  void reference(T alpha, T beta) {
    libs::naive_gemm(alpha, a.cview(), b.cview(), beta,
                     c_expected.view());
  }

  /// Verify c against c_expected.
  [[nodiscard]] ::testing::AssertionResult check(index_t k) const {
    const double diff = max_abs_diff(c.cview(), c_expected.cview());
    const double tol = gemm_tolerance<T>(k) * 4.0;
    if (diff <= tol) return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << "max |diff| = " << diff << " > tol " << tol;
  }
};

}  // namespace smm::test
