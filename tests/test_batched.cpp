// PlanCache and batched SMM.
#include <gtest/gtest.h>

#include <atomic>

#include "src/core/batched.h"
#include "src/core/plan_cache.h"
#include "src/core/smm.h"
#include "src/plan/native_executor.h"
#include "src/threading/thread_pool.h"
#include "tests/test_helpers.h"

namespace smm::core {
namespace {

TEST(PlanCache, HitsAfterFirstBuild) {
  PlanCache cache(reference_smm(), 8);
  const auto p1 = cache.get({16, 16, 16}, plan::ScalarType::kF32, 1);
  const auto p2 = cache.get({16, 16, 16}, plan::ScalarType::kF32, 1);
  EXPECT_EQ(p1.get(), p2.get());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(PlanCache, DistinguishesShapeScalarThreads) {
  PlanCache cache(reference_smm(), 16);
  cache.get({16, 16, 16}, plan::ScalarType::kF32, 1);
  cache.get({16, 16, 17}, plan::ScalarType::kF32, 1);
  cache.get({16, 16, 16}, plan::ScalarType::kF64, 1);
  cache.get({16, 16, 16}, plan::ScalarType::kF32, 4);
  EXPECT_EQ(cache.misses(), 4u);
  EXPECT_EQ(cache.size(), 4u);
}

TEST(PlanCache, LruEviction) {
  PlanCache cache(reference_smm(), 2);
  cache.get({8, 8, 8}, plan::ScalarType::kF32, 1);
  cache.get({9, 9, 9}, plan::ScalarType::kF32, 1);
  cache.get({8, 8, 8}, plan::ScalarType::kF32, 1);   // bump 8^3
  cache.get({10, 10, 10}, plan::ScalarType::kF32, 1);  // evicts 9^3
  EXPECT_EQ(cache.size(), 2u);
  const auto before = cache.misses();
  cache.get({9, 9, 9}, plan::ScalarType::kF32, 1);  // rebuilt
  EXPECT_EQ(cache.misses(), before + 1);
  const auto hits_before = cache.hits();
  cache.get({8, 8, 8}, plan::ScalarType::kF32, 1);  // 8^3 survived? evicted by 9^3 rebuild
  // Either way the cache stays consistent and bounded.
  EXPECT_LE(cache.size(), 2u);
  EXPECT_GE(cache.hits() + cache.misses(), hits_before + 1);
}

TEST(PlanCache, EvictedPlanStaysUsable) {
  PlanCache cache(reference_smm(), 1);
  const auto plan = cache.get({12, 12, 12}, plan::ScalarType::kF32, 1);
  cache.get({13, 13, 13}, plan::ScalarType::kF32, 1);  // evicts 12^3
  // The shared_ptr keeps the evicted plan alive and runnable.
  test::GemmProblem<float> prob(12, 12, 12, /*seed=*/3);
  prob.reference(1.0f, 0.0f);
  plan::execute_plan(*plan, 1.0f, prob.a.cview(), prob.b.cview(), 0.0f,
                     prob.c.view());
  EXPECT_TRUE(prob.check(12));
}

TEST(PlanCache, ConcurrentGetIsSafe) {
  PlanCache cache(reference_smm(), 32);
  std::atomic<int> errors{0};
  par::run_parallel(8, [&](int t) {
    for (int i = 0; i < 20; ++i) {
      const index_t n = 8 + (t + i) % 4;
      const auto p = cache.get({n, n, n}, plan::ScalarType::kF32, 1);
      if (!p || p->shape.m != n) ++errors;
    }
  });
  EXPECT_EQ(errors.load(), 0);
  EXPECT_LE(cache.misses(), 8u);  // only 4 distinct shapes (racy builds ok)
}

TEST(PlanCache, ClearResets) {
  PlanCache cache(reference_smm());
  cache.get({8, 8, 8}, plan::ScalarType::kF32, 1);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(Batched, UniformShapesCorrect) {
  PlanCache cache(reference_smm());
  const index_t m = 16, n = 24, k = 20, batch = 12;
  std::vector<test::GemmProblem<float>> probs;
  probs.reserve(batch);
  for (index_t i = 0; i < batch; ++i) probs.emplace_back(m, n, k, 100 + i);
  std::vector<GemmBatchItem<float>> items;
  for (auto& p : probs) {
    p.reference(2.0f, 1.0f);
    items.push_back({p.a.cview(), p.b.cview(), p.c.view()});
  }
  batched_smm(2.0f, items, 1.0f, cache, /*nworkers=*/1);
  for (auto& p : probs) EXPECT_TRUE(p.check(k));
  EXPECT_EQ(cache.misses(), 1u);  // one shape, one plan
  EXPECT_EQ(cache.hits(), batch - 1);
}

TEST(Batched, MixedShapesAndWorkers) {
  PlanCache cache(reference_smm());
  std::vector<test::GemmProblem<float>> probs;
  const index_t shapes[][3] = {{8, 8, 8}, {16, 12, 20}, {8, 8, 8},
                               {32, 8, 8}, {16, 12, 20}, {8, 8, 8}};
  for (const auto& s : shapes) probs.emplace_back(s[0], s[1], s[2], s[0]);
  std::vector<GemmBatchItem<float>> items;
  for (auto& p : probs) {
    p.reference(1.0f, 0.0f);
    items.push_back({p.a.cview(), p.b.cview(), p.c.view()});
  }
  batched_smm(1.0f, items, 0.0f, cache, /*nworkers=*/4);
  for (std::size_t i = 0; i < probs.size(); ++i)
    EXPECT_TRUE(probs[i].check(probs[i].a.cols())) << i;
  EXPECT_EQ(cache.misses(), 3u);  // three distinct shapes
}

TEST(Batched, EmptyBatchIsNoop) {
  PlanCache cache(reference_smm());
  std::vector<GemmBatchItem<float>> items;
  EXPECT_NO_THROW(batched_smm(1.0f, items, 0.0f, cache, 4));
}

TEST(Batched, MismatchedItemThrows) {
  PlanCache cache(reference_smm());
  test::GemmProblem<float> good(8, 8, 8, 1);
  Matrix<float> bad_c(9, 8);
  std::vector<GemmBatchItem<float>> items{
      {good.a.cview(), good.b.cview(), bad_c.view()}};
  EXPECT_THROW(batched_smm(1.0f, items, 0.0f, cache, 1), Error);
}

TEST(Batched, DefaultCacheSingleton) {
  PlanCache& a = default_plan_cache();
  PlanCache& b = default_plan_cache();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace smm::core
