// PlanCache and batched SMM.
#include <gtest/gtest.h>

#include <atomic>

#include "src/common/cancel.h"
#include "src/core/batched.h"
#include "src/core/plan_cache.h"
#include "src/core/smm.h"
#include "src/plan/native_executor.h"
#include "src/robust/health.h"
#include "src/threading/thread_pool.h"
#include "tests/test_helpers.h"

namespace smm::core {
namespace {

TEST(PlanCache, HitsAfterFirstBuild) {
  PlanCache cache(reference_smm(), 8);
  const auto p1 = cache.get({16, 16, 16}, plan::ScalarType::kF32, 1);
  const auto p2 = cache.get({16, 16, 16}, plan::ScalarType::kF32, 1);
  EXPECT_EQ(p1.get(), p2.get());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(PlanCache, DistinguishesShapeScalarThreads) {
  PlanCache cache(reference_smm(), 16);
  cache.get({16, 16, 16}, plan::ScalarType::kF32, 1);
  cache.get({16, 16, 17}, plan::ScalarType::kF32, 1);
  cache.get({16, 16, 16}, plan::ScalarType::kF64, 1);
  cache.get({16, 16, 16}, plan::ScalarType::kF32, 4);
  EXPECT_EQ(cache.misses(), 4u);
  EXPECT_EQ(cache.size(), 4u);
}

TEST(PlanCache, LruEviction) {
  PlanCache cache(reference_smm(), 2);
  cache.get({8, 8, 8}, plan::ScalarType::kF32, 1);
  cache.get({9, 9, 9}, plan::ScalarType::kF32, 1);
  cache.get({8, 8, 8}, plan::ScalarType::kF32, 1);   // bump 8^3
  cache.get({10, 10, 10}, plan::ScalarType::kF32, 1);  // evicts 9^3
  EXPECT_EQ(cache.size(), 2u);
  const auto before = cache.misses();
  cache.get({9, 9, 9}, plan::ScalarType::kF32, 1);  // rebuilt
  EXPECT_EQ(cache.misses(), before + 1);
  const auto hits_before = cache.hits();
  cache.get({8, 8, 8}, plan::ScalarType::kF32, 1);  // 8^3 survived? evicted by 9^3 rebuild
  // Either way the cache stays consistent and bounded.
  EXPECT_LE(cache.size(), 2u);
  EXPECT_GE(cache.hits() + cache.misses(), hits_before + 1);
}

TEST(PlanCache, EvictedPlanStaysUsable) {
  PlanCache cache(reference_smm(), 1);
  const auto plan = cache.get({12, 12, 12}, plan::ScalarType::kF32, 1);
  cache.get({13, 13, 13}, plan::ScalarType::kF32, 1);  // evicts 12^3
  // The shared_ptr keeps the evicted plan alive and runnable.
  test::GemmProblem<float> prob(12, 12, 12, /*seed=*/3);
  prob.reference(1.0f, 0.0f);
  plan::execute_plan(*plan, 1.0f, prob.a.cview(), prob.b.cview(), 0.0f,
                     prob.c.view());
  EXPECT_TRUE(prob.check(12));
}

TEST(PlanCache, ConcurrentGetIsSafe) {
  PlanCache cache(reference_smm(), 32);
  std::atomic<int> errors{0};
  par::run_parallel(8, [&](int t) {
    for (int i = 0; i < 20; ++i) {
      const index_t n = 8 + (t + i) % 4;
      const auto p = cache.get({n, n, n}, plan::ScalarType::kF32, 1);
      if (!p || p->shape.m != n) ++errors;
    }
  });
  EXPECT_EQ(errors.load(), 0);
  EXPECT_LE(cache.misses(), 8u);  // only 4 distinct shapes (racy builds ok)
}

TEST(PlanCache, ClearResets) {
  PlanCache cache(reference_smm());
  cache.get({8, 8, 8}, plan::ScalarType::kF32, 1);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(Batched, UniformShapesCorrect) {
  PlanCache cache(reference_smm());
  const index_t m = 16, n = 24, k = 20, batch = 12;
  std::vector<test::GemmProblem<float>> probs;
  probs.reserve(batch);
  for (index_t i = 0; i < batch; ++i) probs.emplace_back(m, n, k, 100 + i);
  std::vector<GemmBatchItem<float>> items;
  for (auto& p : probs) {
    p.reference(2.0f, 1.0f);
    items.push_back({p.a.cview(), p.b.cview(), p.c.view()});
  }
  batched_smm(2.0f, items, 1.0f, cache, /*nworkers=*/1);
  for (auto& p : probs) EXPECT_TRUE(p.check(k));
  EXPECT_EQ(cache.misses(), 1u);  // one shape, one plan
  EXPECT_EQ(cache.hits(), batch - 1);
}

TEST(Batched, MixedShapesAndWorkers) {
  PlanCache cache(reference_smm());
  std::vector<test::GemmProblem<float>> probs;
  const index_t shapes[][3] = {{8, 8, 8}, {16, 12, 20}, {8, 8, 8},
                               {32, 8, 8}, {16, 12, 20}, {8, 8, 8}};
  for (const auto& s : shapes) probs.emplace_back(s[0], s[1], s[2], s[0]);
  std::vector<GemmBatchItem<float>> items;
  for (auto& p : probs) {
    p.reference(1.0f, 0.0f);
    items.push_back({p.a.cview(), p.b.cview(), p.c.view()});
  }
  batched_smm(1.0f, items, 0.0f, cache, /*nworkers=*/4);
  for (std::size_t i = 0; i < probs.size(); ++i)
    EXPECT_TRUE(probs[i].check(probs[i].a.cols())) << i;
  EXPECT_EQ(cache.misses(), 3u);  // three distinct shapes
}

TEST(Batched, EmptyBatchIsNoop) {
  PlanCache cache(reference_smm());
  std::vector<GemmBatchItem<float>> items;
  EXPECT_NO_THROW(batched_smm(1.0f, items, 0.0f, cache, 4));
}

TEST(Batched, MismatchedItemThrows) {
  PlanCache cache(reference_smm());
  test::GemmProblem<float> good(8, 8, 8, 1);
  Matrix<float> bad_c(9, 8);
  std::vector<GemmBatchItem<float>> items{
      {good.a.cview(), good.b.cview(), bad_c.view()}};
  EXPECT_THROW(batched_smm(1.0f, items, 0.0f, cache, 1), Error);
}

TEST(Batched, DefaultCacheSingleton) {
  PlanCache& a = default_plan_cache();
  PlanCache& b = default_plan_cache();
  EXPECT_EQ(&a, &b);
}

TEST(Batched, SharedBPacksOnceAcrossItems) {
  // 30 % nr != 0, so the default-built plan edge-packs B and the handle
  // materializes — the precondition for replaying one packed B across
  // the batch (DESIGN.md §13 satellite of the coalescer).
  PlanCache cache(reference_smm());
  const index_t m = 32, n = 30, k = 32;
  constexpr std::size_t kBatch = 8;
  std::vector<test::GemmProblem<double>> probs;
  probs.reserve(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i)
    probs.emplace_back(m, n, k, 200 + static_cast<unsigned>(i));
  // Every item must present *literally the same* B view (same pointer,
  // same leading dimension) for the pack-once path to engage; copy item
  // 0's B into the others so their c_expected stays truthful.
  for (std::size_t i = 1; i < kBatch; ++i)
    probs[i].b = probs[0].b.clone();
  std::vector<GemmBatchItem<double>> items;
  for (auto& p : probs) {
    p.reference(1.0, 0.0);
    items.push_back({p.a.cview(), probs[0].b.cview(), p.c.view()});
  }
  const std::size_t reuse_before =
      robust::health().snapshot().batched_prepack_reuse;
  batched_smm(1.0, items, 0.0, cache, /*nworkers=*/1);
  for (auto& p : probs) EXPECT_TRUE(p.check(k));
  EXPECT_EQ(cache.misses(), 1u);  // one shape, one plan build
  // The pack-once hit: all kBatch items were served off one packed B.
  EXPECT_EQ(robust::health().snapshot().batched_prepack_reuse,
            reuse_before + kBatch);
}

TEST(Batched, EachIsolatesNeighborFailures) {
  // batched_smm_each is the coalescer's engine: one member's bad shape
  // or cancellation must land in its own status slot while the healthy
  // neighbors run to completion (and still share the packed B).
  PlanCache cache(reference_smm());
  const index_t m = 32, n = 30, k = 32;
  std::vector<test::GemmProblem<double>> probs;
  for (unsigned i = 0; i < 4; ++i) probs.emplace_back(m, n, k, 300 + i);
  for (std::size_t i = 1; i < probs.size(); ++i)
    probs[i].b = probs[0].b.clone();
  Matrix<double> bad_c(m + 1, n);  // dimension mismatch for item 2

  std::vector<GemmBatchItem<double>> items;
  for (std::size_t i = 0; i < 3; ++i) {
    probs[i].reference(1.0, 0.0);
    items.push_back(
        {probs[i].a.cview(), probs[0].b.cview(), probs[i].c.view()});
  }
  items.push_back({probs[3].a.cview(), probs[0].b.cview(), bad_c.view()});

  CancelSource cancelled;
  cancelled.request_cancel();
  const CancelToken stop = cancelled.token();
  std::vector<const CancelToken*> tokens{nullptr, &stop, nullptr, nullptr};
  const Matrix<double> c1_before = probs[1].c.clone();

  const std::size_t reuse_before =
      robust::health().snapshot().batched_prepack_reuse;
  const auto statuses =
      batched_smm_each(1.0, items, 0.0, cache, /*nworkers=*/1,
                       /*options=*/nullptr, &tokens);
  ASSERT_EQ(statuses.size(), items.size());
  EXPECT_TRUE(statuses[0].ok) << statuses[0].message;
  ASSERT_FALSE(statuses[1].ok);
  EXPECT_EQ(statuses[1].code, ErrorCode::kCancelled);
  EXPECT_TRUE(statuses[2].ok) << statuses[2].message;
  ASSERT_FALSE(statuses[3].ok);
  EXPECT_EQ(statuses[3].code, ErrorCode::kBadShape);
  // Healthy members produced the right numbers; the cancelled member's C
  // is untouched.
  EXPECT_TRUE(probs[0].check(k));
  EXPECT_TRUE(probs[2].check(k));
  EXPECT_EQ(max_abs_diff(probs[1].c.cview(), c1_before.cview()), 0.0);
  // The three runnable members (the cancelled one is excluded at the
  // token pre-check, after the uniform scan) still shared one packed B.
  EXPECT_EQ(robust::health().snapshot().batched_prepack_reuse,
            reuse_before + 3);
}

}  // namespace
}  // namespace smm::core
