// Micro-kernel numerical correctness (against a scalar oracle computed on
// the same packed operands) and registry / schedule structural checks.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/common/rng.h"
#include "src/kernels/microkernel.h"
#include "src/kernels/registry.h"
#include "src/kernels/schedule.h"
#include "src/kernels/schedules_armv8.h"
#include "src/matrix/matrix.h"
#include "src/pack/pack.h"

namespace smm::kern {
namespace {

// Oracle for one micro-kernel invocation on arbitrary operand addressing.
template <typename T>
void oracle(index_t kc, T alpha, T beta, const KernelOperands<T>& ops,
            index_t mr, index_t nr, std::vector<T>& c_ref,
            index_t c_rs, index_t c_cs) {
  for (index_t j = 0; j < nr; ++j) {
    for (index_t i = 0; i < mr; ++i) {
      double acc = 0;
      for (index_t k = 0; k < kc; ++k)
        acc += static_cast<double>(ops.a[a_offset(ops, i, k)]) *
               static_cast<double>(ops.b[b_offset(ops, k, j)]);
      const auto idx = static_cast<std::size_t>(i * c_rs + j * c_cs);
      const double base = beta == T(0)
                              ? 0.0
                              : static_cast<double>(beta) *
                                    static_cast<double>(c_ref[idx]);
      c_ref[idx] =
          static_cast<T>(static_cast<double>(alpha) * acc + base);
    }
  }
}

template <typename T>
void run_tile_test(int mr, int nr, index_t kc, T alpha, T beta) {
  Rng rng(static_cast<std::uint64_t>(mr * 1000 + nr * 10 + kc));
  // Packed operands.
  std::vector<T> a(static_cast<std::size_t>(mr * kc));
  std::vector<T> b(static_cast<std::size_t>(nr * kc));
  for (auto& v : a) v = static_cast<T>(rng.uniform(-1, 1));
  for (auto& v : b) v = static_cast<T>(rng.uniform(-1, 1));
  std::vector<T> c(static_cast<std::size_t>(mr * nr));
  for (auto& v : c) v = static_cast<T>(rng.uniform(-1, 1));
  std::vector<T> c_ref = c;

  KernelOperands<T> ops;
  set_packed_a(ops, a.data(), mr);
  set_packed_b(ops, b.data(), nr);
  ops.c = c.data();
  ops.c_rs = 1;
  ops.c_cs = mr;

  oracle<T>(kc, alpha, beta, ops, mr, nr, c_ref, 1, mr);
  const MicroKernelFn<T> fn = native_tile_fn<T>(mr, nr);
  fn(kc, alpha, beta, ops, mr, nr);

  double worst = 0;
  for (std::size_t i = 0; i < c.size(); ++i)
    worst = std::max(worst, std::abs(static_cast<double>(c[i]) -
                                     static_cast<double>(c_ref[i])));
  EXPECT_LE(worst, 1e-4 * kc) << mr << "x" << nr << " kc=" << kc;
}

class TileKernel : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(TileKernel, PackedOperandsF32) {
  const auto [mr, nr] = GetParam();
  for (index_t kc : {1, 2, 7, 64}) run_tile_test<float>(mr, nr, kc, 1.5f, 0.5f);
}

TEST_P(TileKernel, PackedOperandsF64) {
  const auto [mr, nr] = GetParam();
  for (index_t kc : {1, 3, 32}) run_tile_test<double>(mr, nr, kc, -2.0, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Tiles, TileKernel,
    ::testing::Values(std::pair{16, 4}, std::pair{16, 2}, std::pair{16, 1},
                      std::pair{12, 4}, std::pair{8, 12}, std::pair{8, 8},
                      std::pair{8, 4}, std::pair{8, 2}, std::pair{8, 1},
                      std::pair{4, 4}, std::pair{4, 2}, std::pair{4, 1},
                      std::pair{2, 4}, std::pair{1, 4}, std::pair{3, 5}),
    [](const auto& info) {
      return std::to_string(info.param.first) + "x" +
             std::to_string(info.param.second);
    });

TEST(GenericKernel, StridedDirectB) {
  // Direct col-major B: b(k, j) = b[k + j*ldb].
  const index_t mr = 8, nr = 4, kc = 16, ldb = 32;
  Rng rng(5);
  std::vector<float> a(static_cast<std::size_t>(mr * kc));
  std::vector<float> b(static_cast<std::size_t>(ldb * nr));
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));
  std::vector<float> c(static_cast<std::size_t>(mr * nr), 0.0f);
  std::vector<float> c_ref = c;

  KernelOperands<float> ops;
  set_packed_a(ops, a.data(), mr);
  set_direct_b_colmajor(ops, b.data(), ldb);
  ops.c = c.data();
  ops.c_rs = 1;
  ops.c_cs = mr;
  oracle<float>(kc, 1.0f, 0.0f, ops, mr, nr, c_ref, 1, mr);
  // The specialized tile kernel must agree on strided B too.
  tile_microkernel<float, 8, 4>(kc, 1.0f, 0.0f, ops, mr, nr);
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_NEAR(c[i], c_ref[i], 1e-4f);
}

TEST(GenericKernel, MaskedEdgeUpdate) {
  // useful 3x2 inside an 8x4 tile: untouched C elements must not change.
  const index_t kc = 8;
  std::vector<float> a(8 * kc, 1.0f);
  std::vector<float> b(4 * kc, 2.0f);
  std::vector<float> c(8 * 4, 7.0f);
  KernelOperands<float> ops;
  set_packed_a(ops, a.data(), 8);
  set_packed_b(ops, b.data(), 4);
  ops.c = c.data();
  ops.c_rs = 1;
  ops.c_cs = 8;
  generic_microkernel<float>(kc, 1.0f, 0.0f, ops, 3, 2);
  EXPECT_FLOAT_EQ(c[0], 16.0f);       // updated
  EXPECT_FLOAT_EQ(c[2], 16.0f);       // row 2, col 0
  EXPECT_FLOAT_EQ(c[3], 7.0f);        // row 3 untouched
  EXPECT_FLOAT_EQ(c[2 * 8 + 0], 7.0f);  // col 2 untouched
}

TEST(PanelAddressing, BlasfeoStyle) {
  // A panel-major sliver: ps=4, 8 rows across 2 panels.
  const index_t cols = 6, ps = 4;
  std::vector<float> panel(static_cast<std::size_t>(2 * ps * cols));
  for (std::size_t i = 0; i < panel.size(); ++i)
    panel[i] = static_cast<float>(i);
  KernelOperands<float> ops;
  set_panel_a(ops, panel.data(), ps, cols);
  // (i, k) = (i%4) + (i/4)*4*cols + k*4
  EXPECT_EQ(a_offset(ops, 0, 0), 0);
  EXPECT_EQ(a_offset(ops, 3, 2), 3 + 8);
  EXPECT_EQ(a_offset(ops, 5, 1), 1 + ps * cols + 4);
}

// ---- Registry --------------------------------------------------------------

TEST(Registry, FamiliesPresent) {
  const auto& reg = KernelRegistry::instance();
  for (const char* fam : {"openblas", "blis", "blasfeo", "eigen", "smm",
                          "smm-direct"}) {
    EXPECT_FALSE(reg.family(fam).empty()) << fam;
  }
}

TEST(Registry, TableOneTiles) {
  const auto& reg = KernelRegistry::instance();
  // Table I: OpenBLAS 16x4/8x8/4x4, BLIS 8x12, BLASFEO 16x4/8x8, Eigen 12x4.
  EXPECT_TRUE(reg.has_tile("openblas", 16, 4));
  EXPECT_TRUE(reg.has_tile("openblas", 8, 8));
  EXPECT_TRUE(reg.has_tile("openblas", 4, 4));
  EXPECT_TRUE(reg.has_tile("blis", 8, 12));
  EXPECT_TRUE(reg.has_tile("blasfeo", 16, 4));
  EXPECT_TRUE(reg.has_tile("blasfeo", 8, 8));
  EXPECT_TRUE(reg.has_tile("eigen", 12, 4));
}

TEST(Registry, OpenblasEdgeLattice) {
  const auto& reg = KernelRegistry::instance();
  for (int mr : {16, 8, 4, 2, 1})
    for (int nr : {4, 2, 1}) EXPECT_TRUE(reg.has_tile("openblas", mr, nr));
}

TEST(Registry, UnknownLookupsThrow) {
  const auto& reg = KernelRegistry::instance();
  EXPECT_THROW(reg.find("no/such"), Error);
  EXPECT_THROW(reg.find_tile("openblas", 7, 3), Error);
  EXPECT_THROW(reg.info(-1), Error);
}

TEST(Registry, FindByName) {
  const auto& reg = KernelRegistry::instance();
  const KernelId id = reg.find("blis/8x12");
  EXPECT_EQ(reg.info(id).mr, 8);
  EXPECT_EQ(reg.info(id).nr, 12);
  EXPECT_EQ(reg.info(id).family, "blis");
}

TEST(Registry, SpecLanesRescaleForF64) {
  const auto& reg = KernelRegistry::instance();
  const KernelId id = reg.find_tile("openblas", 16, 4);
  EXPECT_EQ(kernel_spec<float>(id).lanes, 4);
  EXPECT_EQ(kernel_spec<double>(id).lanes, 2);
}

TEST(Registry, DecomposeEdge) {
  const std::vector<index_t> sizes{16, 8, 4, 2, 1};
  EXPECT_EQ(decompose_edge(11, sizes), (std::vector<index_t>{8, 2, 1}));
  EXPECT_EQ(decompose_edge(16, sizes), (std::vector<index_t>{16}));
  EXPECT_EQ(decompose_edge(3, sizes), (std::vector<index_t>{2, 1}));
  EXPECT_TRUE(decompose_edge(0, sizes).empty());
}

// ---- Schedules --------------------------------------------------------------

TEST(Schedule, Fig7LayoutMatchesPaper) {
  const KernelSchedule s = fig7_openblas_8x4_schedule();
  EXPECT_EQ(s.mr, 8);
  EXPECT_EQ(s.nr, 4);
  EXPECT_EQ(s.unroll, 2);
  // Per k-iteration: 2 ldp (B), 2 ldr q (A), then 8 fmla — clustered.
  ASSERT_GE(s.body.size(), 12u);
  EXPECT_EQ(s.body[0].kind, UopKind::kLoadPair);
  EXPECT_EQ(s.body[1].kind, UopKind::kLoadPair);
  EXPECT_EQ(s.body[2].kind, UopKind::kLoadVec);
  EXPECT_EQ(s.body[3].kind, UopKind::kLoadVec);
  for (int i = 4; i < 12; ++i) EXPECT_EQ(s.body[i].kind, UopKind::kFma);
  // The first fmla depends on the A load two instructions earlier.
  EXPECT_EQ(s.body[4].src1, s.body[2].dst);
}

TEST(Schedule, FmaCountMatchesTile) {
  for (const auto& [mr, nr, unroll] :
       {std::tuple{16, 4, 8}, std::tuple{8, 12, 4}, std::tuple{12, 4, 1}}) {
    ScheduleSpec spec;
    spec.mr = mr;
    spec.nr = nr;
    spec.unroll = unroll;
    spec.style = unroll == 1 ? ScheduleStyle::kSimple
                             : ScheduleStyle::kPipelined;
    const KernelSchedule s = build_schedule(spec);
    const int avec = (mr + 3) / 4;
    EXPECT_EQ(s.fma_per_body, avec * nr * s.unroll) << spec.describe();
    int fma = 0;
    for (const auto& u : s.body)
      if (u.kind == UopKind::kFma) ++fma;
    EXPECT_EQ(fma, s.fma_per_body);
  }
}

TEST(Schedule, PipelinedPreloadsBankZero) {
  const KernelSchedule s = build_schedule(openblas_main_spec(16, 4));
  int prologue_loads = 0;
  for (const auto& u : s.prologue)
    if (u.kind == UopKind::kLoadVec) ++prologue_loads;
  EXPECT_EQ(prologue_loads, 4 + 1);  // 4 A vectors + 1 B vector
}

TEST(Schedule, SimpleStyleHasPerIterationOverhead) {
  const KernelSchedule s = build_schedule(eigen_spec(12, 4));
  EXPECT_EQ(s.unroll, 1);
  int branches = 0, dups = 0;
  for (const auto& u : s.body) {
    if (u.kind == UopKind::kBranch) ++branches;
    if (u.kind == UopKind::kDup) ++dups;
  }
  EXPECT_EQ(branches, 1);
  EXPECT_EQ(dups, 4);  // one per B element
}

TEST(Schedule, StridedBUsesScalarLoads) {
  const KernelSchedule s = build_schedule(smm_direct_b_spec(8, 4));
  int scalar_loads = 0;
  for (const auto& u : s.body)
    if (u.kind == UopKind::kLoadScalar && u.stream == Stream::kB)
      ++scalar_loads;
  EXPECT_EQ(scalar_loads, 4 * s.unroll);
}

TEST(Schedule, OddPipelinedUnrollRejected) {
  ScheduleSpec spec;
  spec.style = ScheduleStyle::kPipelined;
  spec.unroll = 3;
  EXPECT_THROW(build_schedule(spec), Error);
}

TEST(Schedule, EpilogueTouchesEveryAccumulator) {
  const KernelSchedule s = build_schedule(blis_spec(8, 12));
  int stores = 0;
  for (const auto& u : s.epilogue)
    if (u.kind == UopKind::kStoreVec) ++stores;
  EXPECT_EQ(stores, 2 * 12);  // (8/4 vectors) x 12 columns
}

}  // namespace
}  // namespace smm::kern
