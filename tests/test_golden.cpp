// Golden-number regression tests: simulated efficiencies for a spread of
// representative configurations, pinned to the calibrated model within a
// relative tolerance. Any change to schedules, the pipeline model, the
// residency rules or the cost constants that moves a headline result
// shows up here first (the calibration tests check *orderings*; these
// check *values*).
//
// If a deliberate model improvement moves these numbers, re-run
// `bench/sim_explore` for the affected rows and update the table together
// with EXPERIMENTS.md.
#include <gtest/gtest.h>

#include "src/core/smm.h"
#include "src/libs/blasfeo_like/gemm_blasfeo_like.h"
#include "src/libs/blis_like/gemm_blis_like.h"
#include "src/libs/eigen_like/gemm_eigen_like.h"
#include "src/libs/openblas_like/gemm_openblas_like.h"
#include "src/sim/exec/pricer.h"

namespace smm::sim {
namespace {

struct Golden {
  const char* strategy;
  index_t m, n, k;
  int threads;
  double efficiency;  // expected, +-5% relative
};

// Captured from the calibrated model (see EXPERIMENTS.md for the paper
// values these reproduce in shape).
const Golden kGolden[] = {
    {"blasfeo", 100, 100, 100, 1, 0.946},
    {"blasfeo", 200, 200, 200, 1, 0.966},
    {"openblas", 100, 100, 100, 1, 0.878},
    {"openblas", 200, 200, 200, 1, 0.902},
    {"blis", 100, 100, 100, 1, 0.828},
    {"eigen", 200, 200, 200, 1, 0.481},
    {"smm-ref", 100, 100, 100, 1, 0.899},
    {"openblas", 8, 200, 200, 1, 0.499},
    {"smm-ref", 8, 200, 200, 1, 0.751},
    {"blis", 16, 2048, 2048, 64, 0.289},
    {"blis", 128, 2048, 2048, 64, 0.607},
    {"blis", 256, 2048, 2048, 64, 0.689},
    {"openblas", 128, 2048, 2048, 64, 0.056},
    {"eigen", 128, 2048, 2048, 64, 0.260},
};

const libs::GemmStrategy* by_name(const std::string& name) {
  if (name == "openblas") return &libs::openblas_like();
  if (name == "blis") return &libs::blis_like();
  if (name == "blasfeo") return &libs::blasfeo_like();
  if (name == "eigen") return &libs::eigen_like();
  return &core::reference_smm();
}

class GoldenEfficiency : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenEfficiency, WithinTolerance) {
  const Golden& g = GetParam();
  static PlanPricer pricer(phytium2000p());
  const auto r = simulate_strategy(*by_name(g.strategy),
                                   {g.m, g.n, g.k}, plan::ScalarType::kF32,
                                   g.threads, pricer);
  const double eff = r.efficiency(pricer.machine());
  EXPECT_NEAR(eff, g.efficiency, 0.05 * g.efficiency + 0.005)
      << g.strategy << " " << g.m << "x" << g.n << "x" << g.k << " t"
      << g.threads;
}

INSTANTIATE_TEST_SUITE_P(
    Model, GoldenEfficiency, ::testing::ValuesIn(kGolden),
    [](const auto& info) {
      const Golden& g = info.param;
      std::string name = g.strategy;
      for (auto& ch : name)
        if (ch == '-') ch = '_';
      return name + "_" + std::to_string(g.m) + "x" + std::to_string(g.n) +
             "x" + std::to_string(g.k) + "_t" + std::to_string(g.threads);
    });

}  // namespace
}  // namespace smm::sim
