// The parallel runtime decision stack: the cost model's predictions
// (model/parallel_runtime), golden choose_parallel decisions for the
// paper's shape classes under the deterministic reference model, barrier
// elision in the plan builders, the ThreadScaling option wiring, the
// per-thread stats/timed-execution instrumentation, and the
// SMMKIT_MAX_THREADS policy.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "src/common/rng.h"
#include "src/core/parallel_cost.h"
#include "src/core/parallel_select.h"
#include "src/core/plan_builder.h"
#include "src/core/smm.h"
#include "src/libs/naive.h"
#include "src/matrix/compare.h"
#include "src/matrix/matrix.h"
#include "src/plan/native_executor.h"
#include "src/plan/plan_stats.h"
#include "src/threading/thread_pool.h"

namespace smm {
namespace {

constexpr index_t kMr = 16, kNr = 4, kMc = 240, kKc = 512, kNc = 480;

core::ParallelChoice ref_choice(GemmShape shape, int max_threads) {
  static const model::ParallelCostModel ref = model::reference_cost_model();
  return core::choose_parallel(shape, max_threads, kMr, kNr, kMc, kNc, 4,
                               &ref, kKc);
}

// ---- cost model ------------------------------------------------------------

TEST(ParallelCostModel, ReferenceModelIsDeterministic) {
  const auto a = model::reference_cost_model();
  const auto b = model::reference_cost_model();
  EXPECT_EQ(a.flop_ns, b.flop_ns);
  EXPECT_EQ(a.barrier_ns, b.barrier_ns);
  EXPECT_EQ(a.dispatch_ns, b.dispatch_ns);
  EXPECT_EQ(a.hw_threads, 64);
  EXPECT_FALSE(a.measured);
}

TEST(ParallelCostModel, BarrierCrossingCosts) {
  const auto m = model::reference_cost_model();
  EXPECT_EQ(model::barrier_crossing_ns(m, 1), 0.0);
  const double two = model::barrier_crossing_ns(m, 2);
  const double sixteen = model::barrier_crossing_ns(m, 16);
  EXPECT_GT(two, 0.0);
  EXPECT_GT(sixteen, two);
  // Wider than the machine: crossings pay context switches, not spins.
  const double oversub = model::barrier_crossing_ns(m, 256);
  EXPECT_GT(oversub, model::barrier_crossing_ns(m, 64) * 2);
}

TEST(ParallelCostModel, SerialPredictionIsPureFlops) {
  const auto m = model::reference_cost_model();
  const GemmShape shape{32, 32, 32};
  const double ns = model::predict_parallel_ns(m, shape, 1, 1, par::Ways{},
                                               kMr, kNr, kMc, kKc, kNc);
  EXPECT_DOUBLE_EQ(ns, shape.flops() * m.flop_ns);
}

TEST(ParallelCostModel, ParallelPredictionChargesFixedCosts) {
  const auto m = model::reference_cost_model();
  const GemmShape shape{32, 32, 32};
  par::Ways ways;
  ways.jr = 4;
  const double serial = model::predict_parallel_ns(
      m, shape, 1, 1, par::Ways{}, kMr, kNr, kMc, kKc, kNc);
  const double wide = model::predict_parallel_ns(m, shape, 4, 1, ways, kMr,
                                                 kNr, kMc, kKc, kNc);
  // A 2 us dispatch + barrier rounds dwarf a ~2 us multiply: the model
  // must see through the "more threads = faster" assumption.
  EXPECT_GT(wide, serial);
}

TEST(ParallelCostModel, CalibratedModelIsSaneAndCached) {
  const auto& a = core::calibrated_cost_model();
  const auto& b = core::calibrated_cost_model();
  EXPECT_EQ(&a, &b);  // one calibration per process
  EXPECT_TRUE(a.measured);
  EXPECT_EQ(a.hw_threads, par::native_threads_available());
  EXPECT_GT(a.flop_ns, 0.0);
  EXPECT_GT(a.pack_ns_per_elem, 0.0);
  EXPECT_GT(a.barrier_ns, 0.0);
  EXPECT_GT(a.dispatch_ns, 0.0);
}

// ---- golden decisions (reference model, paper shape classes) ---------------

TEST(ChooseParallelGolden, AllSmallStaysSerial) {
  for (const GemmShape shape :
       {GemmShape{8, 8, 8}, GemmShape{16, 16, 16}, GemmShape{32, 32, 32}}) {
    for (const int mt : {1, 4, 16, 64}) {
      const auto c = ref_choice(shape, mt);
      EXPECT_EQ(c.nthreads, 1) << shape.m << " mt=" << mt;
      EXPECT_EQ(c.k_parts, 1);
    }
  }
}

TEST(ChooseParallelGolden, MediumSquareUsesFewThreads) {
  const GemmShape shape{64, 64, 64};
  EXPECT_EQ(ref_choice(shape, 1).nthreads, 1);
  for (const int mt : {4, 16, 64}) {
    const auto c = ref_choice(shape, mt);
    // Worth 4 threads on the model machine, but never more: the static
    // tile cap and the barrier term both push back.
    EXPECT_EQ(c.nthreads, 4) << "mt=" << mt;
    EXPECT_EQ(c.k_parts, 1);
  }
}

TEST(ChooseParallelGolden, SmallMClass) {
  const GemmShape shape{16, 2048, 2048};  // the paper's SMM regime
  EXPECT_EQ(ref_choice(shape, 1).nthreads, 1);
  // Modest budget: K is deep enough that splitting it beats a ways
  // decomposition of the single 16-row panel.
  const auto c4 = ref_choice(shape, 4);
  EXPECT_EQ(c4.k_parts, 4);
  // Bigger budgets: pure column ways — disjoint C, barrier-free plans.
  const auto c16 = ref_choice(shape, 16);
  EXPECT_EQ(c16.nthreads, 16);
  EXPECT_EQ(c16.k_parts, 1);
  EXPECT_EQ(c16.ways.jc, 16);
  EXPECT_EQ(c16.ways.ic * c16.ways.jr * c16.ways.ir, 1);
  const auto c64 = ref_choice(shape, 64);
  EXPECT_EQ(c64.nthreads, 64);
  EXPECT_EQ(c64.ways.jc, 32);
}

TEST(ChooseParallelGolden, SmallNClass) {
  const GemmShape shape{2048, 16, 2048};
  const auto c16 = ref_choice(shape, 16);
  EXPECT_EQ(c16.nthreads, 16);
  EXPECT_EQ(c16.ways.jc, 1);  // 16 columns cannot be split further
  // The model refuses the full budget: 64 threads over a 4-tile-wide N
  // would be all synchronization.
  const auto c64 = ref_choice(shape, 64);
  EXPECT_EQ(c64.nthreads, 16);
}

TEST(ChooseParallelGolden, SmallKClass) {
  const GemmShape shape{2048, 2048, 16};
  const auto c16 = ref_choice(shape, 16);
  EXPECT_EQ(c16.nthreads, 16);
  EXPECT_EQ(c16.k_parts, 1);  // nothing to split in K
  EXPECT_EQ(c16.ways.jc, 16);
  const auto c64 = ref_choice(shape, 64);
  EXPECT_EQ(c64.nthreads, 64);
}

TEST(ChooseParallelGolden, DeepKClassSplitsK) {
  const GemmShape shape{8, 8, 4096};
  EXPECT_EQ(ref_choice(shape, 1).nthreads, 1);
  for (const int mt : {4, 16, 64}) {
    const auto c = ref_choice(shape, mt);
    // The tile grid holds 2 tiles — ways parallelism is impossible — and
    // the reduction + barrier cost caps the worthwhile split at 4 parts
    // regardless of budget.
    EXPECT_EQ(c.k_parts, 4) << "mt=" << mt;
    EXPECT_EQ(c.nthreads, 4);
  }
}

TEST(ChooseParallelGolden, StaticPathUnchangedByCostModelCode) {
  // cost == nullptr must reproduce the pre-cost-model heuristic exactly
  // (simulation goldens depend on it).
  const auto a = core::choose_parallel({16, 16, 64}, 64, 16, 4, 240, 480);
  EXPECT_EQ(a.nthreads, 1);
  const auto b =
      core::choose_parallel({1024, 1024, 256}, 64, 16, 4, 240, 480);
  EXPECT_EQ(b.nthreads, 64);
  const auto c = core::choose_parallel({8, 8, 4096}, 64, 16, 4, 240, 480);
  EXPECT_GT(c.k_parts, 1);
}

// ---- property test ---------------------------------------------------------

TEST(ChooseParallelProperty, ChoicesBuildValidPlansWithinTheTileCap) {
  Rng rng(7);
  static const model::ParallelCostModel ref = model::reference_cost_model();
  for (int trial = 0; trial < 60; ++trial) {
    const GemmShape shape{1 + static_cast<index_t>(rng.next_u64() % 300),
                          1 + static_cast<index_t>(rng.next_u64() % 300),
                          1 + static_cast<index_t>(rng.next_u64() % 600)};
    const int mt = 1 << (rng.next_u64() % 7);  // 1..64
    for (const model::ParallelCostModel* cost :
         {static_cast<const model::ParallelCostModel*>(nullptr), &ref}) {
      const auto c = core::choose_parallel(shape, mt, kMr, kNr, kMc, kNc, 4,
                                           cost, kKc);
      ASSERT_GE(c.nthreads, 1);
      ASSERT_LE(c.nthreads, mt);
      if (c.k_parts > 1) {
        ASSERT_EQ(c.nthreads, c.k_parts);
      } else {
        // The static tile cap is a hard ceiling on both paths: at least
        // min_tiles_per_thread micro-tiles per thread.
        const index_t tiles =
            ((shape.m + kMr - 1) / kMr) * ((shape.n + kNr - 1) / kNr);
        ASSERT_LE(c.nthreads, std::max<index_t>(1, tiles / 4))
            << shape.m << "x" << shape.n << "x" << shape.k;
        ASSERT_EQ(c.ways.total(), c.nthreads);
      }
      core::BuildSpec spec;
      spec.mr = kMr;
      spec.nr = kNr;
      spec.mc = kMc;
      spec.kc = kKc;
      spec.nc = kNc;
      spec.nthreads = c.nthreads;
      spec.ways = c.ways;
      spec.k_parts = c.k_parts;
      if (c.nthreads > 1) {
        spec.pack_a = true;
        spec.pack_b = true;
      }
      plan::GemmPlan plan;
      plan.strategy = "test";
      plan.shape = shape;
      plan.scalar = plan::ScalarType::kF32;
      core::build_smm_plan(plan, spec);
      ASSERT_NO_THROW(plan.validate());
    }
  }
}

// ---- barrier elision -------------------------------------------------------

plan::GemmPlan build_ways_plan(GemmShape shape, par::Ways ways) {
  core::BuildSpec spec;
  spec.mr = kMr;
  spec.nr = kNr;
  spec.mc = kMc;
  spec.kc = kKc;
  spec.nc = kNc;
  spec.nthreads = ways.total();
  spec.ways = ways;
  spec.pack_a = true;
  spec.pack_b = true;
  plan::GemmPlan plan;
  plan.strategy = "test";
  plan.shape = shape;
  plan.scalar = plan::ScalarType::kF32;
  core::build_smm_plan(plan, spec);
  plan.validate();
  return plan;
}

index_t count_barrier_ops(const plan::GemmPlan& plan) {
  index_t n = 0;
  for (const auto& stats : plan::analyze_threads(plan))
    n += stats.barrier_ops;
  return n;
}

TEST(BarrierElision, PureColumnWaysIsBarrierFree) {
  par::Ways ways;
  ways.jc = 4;
  const auto plan = build_ways_plan({64, 256, 64}, ways);
  EXPECT_EQ(plan.nthreads, 4);
  EXPECT_TRUE(plan.barriers.empty());
  EXPECT_EQ(count_barrier_ops(plan), 0);
}

TEST(BarrierElision, OnlySharingGroupsDeclareBarriers) {
  par::Ways ways;
  ways.jc = 2;
  ways.ic = 2;
  const auto plan = build_ways_plan({256, 256, 64}, ways);
  // B~ is shared by the ic pair of each jc group (2 barriers of 2); the
  // A~ groups are singletons and must declare nothing.
  ASSERT_EQ(plan.barriers.size(), 2u);
  for (const auto& decl : plan.barriers)
    EXPECT_EQ(decl.participants, 2);
}

TEST(BarrierElision, BarrierFreePlanComputesCorrectly) {
  const GemmShape shape{48, 260, 32};  // edge columns included
  par::Ways ways;
  ways.jc = 4;
  const auto plan = build_ways_plan(shape, ways);
  ASSERT_TRUE(plan.barriers.empty());
  Rng rng(11);
  Matrix<float> a(shape.m, shape.k), b(shape.k, shape.n),
      c(shape.m, shape.n), c_ref(shape.m, shape.n);
  a.fill_random(rng);
  b.fill_random(rng);
  c.fill_random(rng);
  for (index_t j = 0; j < shape.n; ++j)
    for (index_t i = 0; i < shape.m; ++i) c_ref(i, j) = c(i, j);
  libs::naive_gemm(1.5f, a.cview(), b.cview(), 0.5f, c_ref.view());
  plan::execute_plan(plan, 1.5f, a.cview(), b.cview(), 0.5f, c.view());
  EXPECT_TRUE(gemm_allclose(c.cview(), c_ref.cview(), shape.k));
}

TEST(BarrierElision, SharedGroupPlanComputesCorrectly) {
  const GemmShape shape{240, 480, 128};
  par::Ways ways;  // 8 threads, both barrier kinds exercised
  ways.jc = 2;
  ways.ic = 2;
  ways.jr = 2;
  const auto plan = build_ways_plan(shape, ways);
  EXPECT_FALSE(plan.barriers.empty());
  Rng rng(13);
  Matrix<float> a(shape.m, shape.k), b(shape.k, shape.n),
      c(shape.m, shape.n), c_ref(shape.m, shape.n);
  a.fill_random(rng);
  b.fill_random(rng);
  c.fill(0.0f);
  c_ref.fill(0.0f);
  libs::naive_gemm(1.0f, a.cview(), b.cview(), 0.0f, c_ref.view());
  // Several rounds through the same plan: reusable barriers must reverse
  // sense cleanly call after call.
  for (int round = 0; round < 3; ++round)
    plan::execute_plan(plan, 1.0f, a.cview(), b.cview(), 0.0f, c.view());
  EXPECT_TRUE(gemm_allclose(c.cview(), c_ref.cview(), shape.k));
}

// ---- ThreadScaling wiring --------------------------------------------------

TEST(ThreadScaling, FingerprintSeparatesTheModes) {
  core::SmmOptions a, b, c;
  a.thread_scaling = core::SmmOptions::ThreadScaling::kAuto;
  b.thread_scaling = core::SmmOptions::ThreadScaling::kStatic;
  c.thread_scaling = core::SmmOptions::ThreadScaling::kMeasured;
  EXPECT_NE(core::options_fingerprint(a), core::options_fingerprint(b));
  EXPECT_NE(core::options_fingerprint(a), core::options_fingerprint(c));
  EXPECT_NE(core::options_fingerprint(b), core::options_fingerprint(c));
}

TEST(ThreadScaling, MakePlanAutoMatchesStatic) {
  // Directly built plans must not depend on the build host: kAuto
  // resolves to the static heuristic in make_plan.
  core::SmmOptions auto_opts;  // default kAuto
  core::SmmOptions static_opts;
  static_opts.thread_scaling = core::SmmOptions::ThreadScaling::kStatic;
  for (const GemmShape shape :
       {GemmShape{16, 16, 16}, GemmShape{256, 256, 64},
        GemmShape{1024, 1024, 256}}) {
    const auto pa = core::make_reference_smm(auto_opts)
                        ->make_plan(shape, plan::ScalarType::kF32, 64);
    const auto ps = core::make_reference_smm(static_opts)
                        ->make_plan(shape, plan::ScalarType::kF32, 64);
    EXPECT_EQ(pa.nthreads, ps.nthreads) << shape.m;
  }
}

TEST(ThreadScaling, MeasuredGemmStaysCorrectUnderThreadBudgets) {
  // The full production path (kAuto -> measured, calibration included).
  Rng rng(5);
  for (const GemmShape shape :
       {GemmShape{16, 16, 16}, GemmShape{64, 64, 64},
        GemmShape{96, 200, 48}}) {
    Matrix<float> a(shape.m, shape.k), b(shape.k, shape.n),
        c(shape.m, shape.n), c_ref(shape.m, shape.n);
    a.fill_random(rng);
    b.fill_random(rng);
    c.fill(0.0f);
    c_ref.fill(0.0f);
    libs::naive_gemm(1.0f, a.cview(), b.cview(), 0.0f, c_ref.view());
    for (const int threads : {1, 4}) {
      c.fill(0.0f);
      core::smm_gemm(1.0f, a.cview(), b.cview(), 0.0f, c.view(), threads);
      EXPECT_TRUE(gemm_allclose(c.cview(), c_ref.cview(), shape.k))
          << shape.m << " threads=" << threads;
    }
  }
}

// ---- per-thread stats + timed execution ------------------------------------

TEST(ThreadStats, PerThreadCountsSumToWholePlan) {
  par::Ways ways;
  ways.jc = 2;
  ways.ic = 2;
  const auto plan = build_ways_plan({256, 256, 64}, ways);
  const auto whole = plan::analyze(plan);
  const auto per_thread = plan::analyze_threads(plan);
  ASSERT_EQ(per_thread.size(), 4u);
  index_t kernels = 0, barriers = 0, packs = 0;
  double flops = 0;
  for (const auto& t : per_thread) {
    kernels += t.kernel_ops;
    barriers += t.barrier_ops;
    packs += t.pack_a_ops + t.pack_b_ops;
    flops += t.computed_flops;
  }
  EXPECT_EQ(kernels, whole.kernel_ops);
  EXPECT_EQ(barriers, whole.barrier_ops);
  EXPECT_EQ(packs, whole.pack_a_ops + whole.pack_b_ops);
  EXPECT_DOUBLE_EQ(flops, whole.computed_flops);
  EXPECT_GT(barriers, 0);
}

TEST(TimedExecutor, BreakdownCoversTheRunAndStaysCorrect) {
  const GemmShape shape{128, 256, 64};
  par::Ways ways;
  ways.jc = 2;
  ways.ic = 2;
  const auto plan = build_ways_plan(shape, ways);
  Rng rng(3);
  Matrix<float> a(shape.m, shape.k), b(shape.k, shape.n),
      c(shape.m, shape.n), c_ref(shape.m, shape.n);
  a.fill_random(rng);
  b.fill_random(rng);
  c.fill(0.0f);
  c_ref.fill(0.0f);
  libs::naive_gemm(1.0f, a.cview(), b.cview(), 0.0f, c_ref.view());
  std::vector<plan::ThreadTiming> timings;
  plan::execute_plan_timed(plan, 1.0f, a.cview(), b.cview(), 0.0f, c.view(),
                           timings);
  EXPECT_TRUE(gemm_allclose(c.cview(), c_ref.cview(), shape.k));
  ASSERT_EQ(timings.size(), 4u);
  for (const auto& t : timings) {
    EXPECT_GT(t.total_ns, 0.0);
    EXPECT_GT(t.kernel_ns, 0.0);
    EXPECT_GE(t.pack_ns, 0.0);
    EXPECT_GE(t.barrier_ns, 0.0);
    // The categories partition the op sequence; the sum can only trail
    // total (loop/visit overhead), never exceed it meaningfully.
    EXPECT_LE(t.pack_ns + t.kernel_ns + t.barrier_ns + t.other_ns,
              t.total_ns * 1.05 + 1000.0);
  }
}

// ---- thread availability policy --------------------------------------------

TEST(ThreadsAvailable, EnvCapPolicy) {
  using par::detail::compute_threads_available;
  EXPECT_EQ(compute_threads_available(8, nullptr), 8);
  EXPECT_EQ(compute_threads_available(8, ""), 8);
  EXPECT_EQ(compute_threads_available(8, "4"), 4);
  EXPECT_EQ(compute_threads_available(8, "999"), 8);  // cap, not raise
  EXPECT_EQ(compute_threads_available(8, "abc"), 8);  // garbage ignored
  EXPECT_EQ(compute_threads_available(8, "4x"), 8);   // trailing junk
  EXPECT_EQ(compute_threads_available(8, "-2"), 8);   // non-positive
  EXPECT_EQ(compute_threads_available(8, "0"), 8);
  EXPECT_EQ(compute_threads_available(0, nullptr), 1);   // unknown hw
  EXPECT_EQ(compute_threads_available(1024, nullptr), 256);  // clamp
  EXPECT_EQ(compute_threads_available(1, "64"), 1);
}

TEST(ThreadsAvailable, CachedValueIsStable) {
  const int a = par::native_threads_available();
  const int b = par::native_threads_available();
  EXPECT_EQ(a, b);
  EXPECT_GE(a, 1);
  EXPECT_LE(a, 256);
}

}  // namespace
}  // namespace smm
