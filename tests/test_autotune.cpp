// Simulator-guided autotuning.
#include <gtest/gtest.h>

#include "src/core/autotune.h"
#include "src/plan/native_executor.h"
#include "src/sim/exec/pricer.h"
#include "tests/test_helpers.h"

namespace smm::core {
namespace {

TEST(Autotune, NeverWorseThanWorstCandidateAndRunsClean) {
  const auto machine = sim::phytium2000p();
  const TuneResult r =
      autotune({48, 48, 48}, plan::ScalarType::kF32, 1, machine);
  EXPECT_GT(r.evaluated, 5);
  EXPECT_GT(r.best_cycles, 0.0);
  // The tuned plan must execute correctly natively.
  const plan::GemmPlan p =
      build_tuned_plan({48, 48, 48}, plan::ScalarType::kF32, r.best);
  test::GemmProblem<float> prob(48, 48, 48, /*seed=*/6);
  prob.reference(1.0f, 0.0f);
  plan::execute_plan(p, 1.0f, prob.a.cview(), prob.b.cview(), 0.0f,
                     prob.c.view());
  EXPECT_TRUE(prob.check(48));
}

TEST(Autotune, BestBeatsEveryOtherCandidateItEvaluated) {
  // Re-price the returned best and a deliberately bad candidate; the
  // tuner's choice must be at least as good.
  const auto machine = sim::phytium2000p();
  const GemmShape shape{16, 200, 200};
  const TuneResult r = autotune(shape, plan::ScalarType::kF32, 1, machine);
  sim::PlanPricer pricer(machine);
  const double best = pricer
                          .price(build_tuned_plan(shape,
                                                  plan::ScalarType::kF32,
                                                  r.best))
                          .makespan_cycles;
  EXPECT_NEAR(best, r.best_cycles, 1e-6);
  BuildSpec bad = r.best;
  bad.mr = 4;
  bad.nr = 4;
  bad.kc = 128;
  const double bad_cycles =
      pricer.price(build_tuned_plan(shape, plan::ScalarType::kF32, bad))
          .makespan_cycles;
  EXPECT_LE(r.best_cycles, bad_cycles + 1e-6);
}

TEST(Autotune, TunedAtLeastMatchesHeuristicWithinSpace) {
  // When the heuristic's configuration is inside the search space, the
  // tuner can only match or beat it.
  const auto machine = sim::phytium2000p();
  for (const auto& shape :
       {GemmShape{100, 100, 100}, GemmShape{8, 200, 200}}) {
    const TuneResult r =
        autotune(shape, plan::ScalarType::kF32, 1, machine);
    EXPECT_GE(r.speedup(), 0.90) << shape.m;  // heuristic kc=512 not always in space
  }
}

TEST(Autotune, DeepKUsesKSplit) {
  const auto machine = sim::phytium2000p();
  const TuneResult r =
      autotune({8, 8, 4096}, plan::ScalarType::kF32, 8, machine);
  EXPECT_GT(r.best.k_parts, 1);
}

TEST(Autotune, DegenerateShapeThrows) {
  const auto machine = sim::phytium2000p();
  EXPECT_THROW(autotune({0, 8, 8}, plan::ScalarType::kF32, 1, machine),
               Error);
}

TEST(Autotune, Deterministic) {
  const auto machine = sim::phytium2000p();
  const TuneResult a =
      autotune({33, 45, 29}, plan::ScalarType::kF32, 1, machine);
  const TuneResult b =
      autotune({33, 45, 29}, plan::ScalarType::kF32, 1, machine);
  EXPECT_EQ(a.best.mr, b.best.mr);
  EXPECT_EQ(a.best.kc, b.best.kc);
  EXPECT_DOUBLE_EQ(a.best_cycles, b.best_cycles);
}

}  // namespace
}  // namespace smm::core
