#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/matrix/compare.h"
#include "src/matrix/matrix.h"
#include "src/matrix/panel_matrix.h"
#include "src/matrix/view.h"

namespace smm {
namespace {

TEST(MatrixView, ColMajorAddressing) {
  float data[12];
  for (int i = 0; i < 12; ++i) data[i] = static_cast<float>(i);
  MatrixView<float> v(data, 3, 4, 3, Layout::kColMajor);
  EXPECT_EQ(v(0, 0), 0.0f);
  EXPECT_EQ(v(2, 0), 2.0f);
  EXPECT_EQ(v(0, 1), 3.0f);
  EXPECT_EQ(v(2, 3), 11.0f);
  EXPECT_EQ(v.row_stride(), 1);
  EXPECT_EQ(v.col_stride(), 3);
}

TEST(MatrixView, RowMajorAddressing) {
  float data[12];
  for (int i = 0; i < 12; ++i) data[i] = static_cast<float>(i);
  MatrixView<float> v(data, 3, 4, 4, Layout::kRowMajor);
  EXPECT_EQ(v(0, 0), 0.0f);
  EXPECT_EQ(v(0, 3), 3.0f);
  EXPECT_EQ(v(1, 0), 4.0f);
  EXPECT_EQ(v.row_stride(), 4);
  EXPECT_EQ(v.col_stride(), 1);
}

TEST(MatrixView, BlockIsView) {
  Matrix<float> m(6, 6);
  m.fill_iota();
  auto blk = m.view().block(2, 3, 3, 2);
  EXPECT_EQ(blk(0, 0), m(2, 3));
  blk(1, 1) = -1.0f;
  EXPECT_EQ(m(3, 4), -1.0f);
}

TEST(MatrixView, BlockOutOfRangeThrows) {
  Matrix<float> m(4, 4);
  EXPECT_THROW(m.view().block(2, 2, 3, 1), Error);
  EXPECT_THROW(m.view().block(0, 0, 1, 5), Error);
}

TEST(MatrixView, TooSmallLeadingDimensionThrows) {
  float data[4];
  EXPECT_THROW(MatrixView<float>(data, 4, 1, 2, Layout::kColMajor), Error);
}

TEST(Matrix, RowMajorLd) {
  Matrix<double> m(3, 5, Layout::kRowMajor);
  EXPECT_EQ(m.ld(), 5);
  EXPECT_EQ(m.view().layout(), Layout::kRowMajor);
}

TEST(Matrix, CloneIsDeep) {
  Matrix<float> m(3, 3);
  m.fill_iota();
  Matrix<float> n = m.clone();
  n(0, 0) = 42.0f;
  EXPECT_EQ(m(0, 0), 0.0f);
}

TEST(PanelMatrix, OffsetFormula) {
  PanelMatrix<float> p(10, 3, 4);
  // Panel 0 holds rows 0..3, panel 1 rows 4..7, panel 2 rows 8..9 (padded).
  EXPECT_EQ(p.num_panels(), 3);
  EXPECT_EQ(p.offset(0, 0), 0);
  EXPECT_EQ(p.offset(3, 0), 3);
  EXPECT_EQ(p.offset(0, 1), 4);   // next column within panel 0
  EXPECT_EQ(p.offset(4, 0), 12);  // panel 1 starts after ps*cols
  EXPECT_EQ(p.offset(9, 2), 2 * 12 + 2 * 4 + 1);
}

TEST(PanelMatrix, RoundTrip) {
  Rng rng(3);
  Matrix<float> src(11, 7);
  src.fill_random(rng);
  PanelMatrix<float> panel = to_panel_major(src.cview(), 4);
  Matrix<float> back(11, 7);
  from_panel_major(panel, back.view());
  EXPECT_EQ(max_abs_diff(src.cview(), back.cview()), 0.0);
}

TEST(PanelMatrix, PaddingRowsAreZero) {
  Matrix<float> src(5, 2);
  src.fill(1.0f);
  PanelMatrix<float> panel = to_panel_major(src.cview(), 4);
  // Rows 5..7 are padding.
  for (index_t j = 0; j < 2; ++j) {
    for (index_t i = 5; i < 8; ++i) {
      EXPECT_EQ(panel.data()[panel.offset(i, j)], 0.0f);
    }
  }
}

TEST(PanelMatrix, PanelPtr) {
  PanelMatrix<double> p(8, 5, 4);
  EXPECT_EQ(p.panel_ptr(1), p.data() + 4 * 5);
}

TEST(Compare, MaxAbsDiff) {
  Matrix<float> a(2, 2), b(2, 2);
  a.fill(1.0f);
  b.fill(1.0f);
  b(1, 0) = 1.5f;
  EXPECT_FLOAT_EQ(static_cast<float>(max_abs_diff(a.cview(), b.cview())),
                  0.5f);
}

TEST(Compare, ShapeMismatchThrows) {
  Matrix<float> a(2, 2), b(2, 3);
  EXPECT_THROW(max_abs_diff(a.cview(), b.cview()), Error);
}

TEST(Compare, ToleranceGrowsWithK) {
  EXPECT_LT(gemm_tolerance<float>(8), gemm_tolerance<float>(800));
  EXPECT_LT(gemm_tolerance<double>(100), gemm_tolerance<float>(100));
}

TEST(Compare, AllcloseBoundary) {
  Matrix<float> a(1, 1), b(1, 1);
  a(0, 0) = 1.0f;
  b(0, 0) = 1.0f + 1e-3f;
  EXPECT_FALSE(gemm_allclose(a.cview(), b.cview(), 4));
  b(0, 0) = 1.0f + 1e-7f;
  EXPECT_TRUE(gemm_allclose(a.cview(), b.cview(), 4));
}

}  // namespace
}  // namespace smm
