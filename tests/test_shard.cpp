// smm::shard + the sharded/coalescing service (DESIGN.md §13): router
// determinism and spread, SMMKIT_SHARDS resolution, lane auto-sizing,
// bounded work stealing under one-hot load, coalesce grouping (window
// off and deadline-bounded window flush), per-member failure isolation
// inside a coalesced group, and a TSan-targeted concurrent
// submit/steal/coalesce stress.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <limits>
#include <set>
#include <thread>
#include <vector>

#include "src/common/cancel.h"
#include "src/common/error.h"
#include "src/core/smm.h"
#include "src/shard/shard.h"
#include "src/service/smm_service.h"
#include "src/threading/thread_pool.h"
#include "src/threading/worker_pool.h"
#include "tests/test_helpers.h"

namespace smm {
namespace {

using service::Priority;
using service::Result;
using service::ServiceOptions;
using service::SmmService;
using service::Ticket;

// ---- router ----------------------------------------------------------------

TEST(ShardRouter, HashAndRouteAreDeterministic) {
  const shard::ShapeClass cls{32, 32, 32, 1};
  const std::uint64_t h = shard::shape_class_hash(cls);
  EXPECT_EQ(h, shard::shape_class_hash(cls));
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(shard::route(h, 1e4, 8), shard::route(h, 1e4, 8));
  // Distinct scalar types of one shape are distinct classes.
  EXPECT_NE(h, shard::shape_class_hash({32, 32, 32, 0}));
  // One shard: everything routes to 0, whatever the hash or cost.
  EXPECT_EQ(shard::route(h, 1e4, 1), 0);
  EXPECT_EQ(shard::route(h, 1e9, 0), 0);
}

TEST(ShardRouter, SpreadsShapeClassesAcrossShards) {
  // The router must not collapse a varied small-shape mix onto one
  // shard; over the paper's SMM range we expect most of 8 shards hit.
  std::set<int> hit;
  for (index_t m = 4; m <= 64; m += 4)
    for (index_t n = 4; n <= 64; n += 12) {
      const double cost = 2.0 * m * n * 32;
      hit.insert(
          shard::route(shard::shape_class_hash({m, n, 32, 1}), cost, 8));
    }
  EXPECT_GE(hit.size(), 4u);
  for (const int s : hit) {
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 8);
  }
}

TEST(ShardRouter, DefaultShardCountReadsEnv) {
  ASSERT_EQ(setenv("SMMKIT_SHARDS", "3", 1), 0);
  EXPECT_EQ(shard::default_shard_count(), 3);
  ASSERT_EQ(setenv("SMMKIT_SHARDS", "1000", 1), 0);
  EXPECT_EQ(shard::default_shard_count(), shard::kMaxShards);
  ASSERT_EQ(setenv("SMMKIT_SHARDS", "not-a-number", 1), 0);
  EXPECT_EQ(shard::default_shard_count(), 8);  // unparsable → panel count
  ASSERT_EQ(unsetenv("SMMKIT_SHARDS"), 0);
  EXPECT_EQ(shard::default_shard_count(), 8);
}

// ---- service integration ---------------------------------------------------

TEST(ShardService, SameShapeRoutesToSameShard) {
  ServiceOptions options;
  options.shards = 4;
  options.lanes = 1;
  SmmService svc(options);
  const int home = svc.route_shard(24, 24, 24, /*scalar_id=*/1);
  std::vector<test::GemmProblem<double>> probs;
  for (unsigned i = 0; i < 6; ++i) probs.emplace_back(24, 24, 24, 400 + i);
  std::vector<Ticket> tickets;
  for (auto& p : probs) {
    p.reference(1.0, 0.0);
    tickets.push_back(
        svc.submit(1.0, p.a.cview(), p.b.cview(), 0.0, p.c.view()));
  }
  for (auto& t : tickets) EXPECT_TRUE(t.wait().ok) << t.wait().message;
  for (auto& p : probs) EXPECT_TRUE(p.check(24));
  const auto s = svc.stats();
  ASSERT_EQ(s.routed_per_shard.size(), 4u);
  // Routing is a pure function of the shape class: all six landed home.
  EXPECT_EQ(s.routed_per_shard[static_cast<std::size_t>(home)], 6u);
  EXPECT_EQ(s.routed, s.submitted);
  std::size_t sum = 0;
  for (const auto r : s.routed_per_shard) sum += r;
  EXPECT_EQ(sum, s.routed);
  svc.shutdown();
}

TEST(ShardService, LanesDefaultDerivesFromNativeThreads) {
  ServiceOptions options;
  options.shards = 2;
  options.lanes = 0;  // auto
  SmmService svc(options);
  const int expected = std::max(1, par::native_threads_available() / 2);
  EXPECT_EQ(svc.options().lanes, expected);
  EXPECT_EQ(svc.options().shards, 2);
  svc.shutdown();
}

TEST(ShardService, StealsUnderOneHotLoad) {
  ServiceOptions options;
  options.shards = 3;
  options.lanes = 1;
  options.coalesce_depth = 1;  // isolate stealing from coalescing
  options.queue_depth = 256;
  SmmService svc(options);
  // One-hot: every request is the same shape class, so the router pins
  // the entire load to one shard; its two idle peers must pick it up.
  const index_t m = 64, n = 64, k = 64;
  constexpr std::size_t kLoad = 100;
  std::vector<test::GemmProblem<double>> probs;
  probs.reserve(kLoad);
  for (unsigned i = 0; i < kLoad; ++i) probs.emplace_back(m, n, k, 500 + i);
  // Reference results are computed BEFORE the submit burst: the naive
  // reference gemm is slow (especially under TSan), and interleaving it
  // with submissions would pace arrivals so far apart that the home
  // lane drains each one before the next lands — no backlog, nothing
  // for the peers to steal.
  for (auto& p : probs) p.reference(1.0, 0.0);
  std::vector<Ticket> tickets;
  tickets.reserve(kLoad);
  for (auto& p : probs)
    tickets.push_back(
        svc.submit(1.0, p.a.cview(), p.b.cview(), 0.0, p.c.view()));
  for (auto& t : tickets) EXPECT_TRUE(t.wait().ok) << t.wait().message;
  for (auto& p : probs) EXPECT_TRUE(p.check(k));
  const auto s = svc.stats();
  const int home = svc.route_shard(m, n, k, 1);
  EXPECT_EQ(s.routed_per_shard[static_cast<std::size_t>(home)], kLoad);
  // A stolen request is correct work done elsewhere — the counters prove
  // the peers participated.
  EXPECT_GE(s.steals, 1u);
  EXPECT_EQ(s.completed, kLoad);
  svc.shutdown();
}

TEST(ShardService, CoalescesQueuedSameShapeIntoOneGroup) {
  ServiceOptions options;
  options.shards = 1;
  options.lanes = 1;
  options.coalesce_depth = 8;
  options.coalesce_window_us = 0;  // opportunistic sweep only
  options.queue_depth = 64;
  SmmService svc(options);
  // Occupy the single lane so the same-shape submissions pile up queued.
  Matrix<double> ba(96, 96), bb(96, 96);
  Rng rng(9);
  ba.fill_random(rng);
  bb.fill_random(rng);
  std::vector<Matrix<double>> bcs;
  std::vector<service::BatchItem<double>> blocker;
  for (int i = 0; i < 60; ++i) {
    bcs.emplace_back(96, 96);
    blocker.push_back({ba.cview(), bb.cview(), bcs.back().view()});
  }
  Ticket busy = svc.submit_batch(1.0, blocker, 0.0);
  while (svc.stats().in_flight == 0 && !busy.done())
    std::this_thread::yield();

  constexpr std::size_t kGroup = 6;
  std::vector<test::GemmProblem<double>> probs;
  for (unsigned i = 0; i < kGroup; ++i) probs.emplace_back(32, 30, 32, 600 + i);
  std::vector<Ticket> tickets;
  for (auto& p : probs) {
    p.reference(1.0, 0.0);
    tickets.push_back(
        svc.submit(1.0, p.a.cview(), p.b.cview(), 0.0, p.c.view()));
  }
  for (auto& t : tickets) EXPECT_TRUE(t.wait().ok) << t.wait().message;
  EXPECT_TRUE(busy.wait().ok);
  for (auto& p : probs) EXPECT_TRUE(p.check(32));
  const auto s = svc.stats();
  // All six were queued behind the blocker, so the lane's pop swept them
  // into one batched dispatch.
  EXPECT_EQ(s.coalesced_groups, 1u);
  EXPECT_EQ(s.coalesced_items, kGroup);
  svc.shutdown();
}

TEST(ShardService, CoalesceWindowFlushesOnDeadline) {
  ServiceOptions options;
  options.shards = 1;
  options.lanes = 1;
  options.coalesce_depth = 8;
  options.coalesce_window_us = 500000;  // 500 ms — far past the deadline
  SmmService svc(options);
  // Warm the shape through the process-wide cache (shards=1 shares it)
  // so the flushed run is not a cold plan build racing the deadline.
  test::GemmProblem<double> warm(32, 32, 32, 610);
  core::smm_gemm(1.0, warm.a.cview(), warm.b.cview(), 0.0, warm.c.view(), 1);

  test::GemmProblem<double> p(32, 32, 32, 611);
  p.reference(1.0, 0.0);
  const auto t0 = std::chrono::steady_clock::now();
  Ticket t = svc.submit(1.0, p.a.cview(), p.b.cview(), 0.0, p.c.view(),
                        Priority::kNormal, /*deadline_ms=*/100);
  const Result& r = t.wait();
  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - t0)
          .count();
  // The group deadline bound flushed the window with margin to run: the
  // request went terminal near its 100 ms deadline, nowhere near the
  // 500 ms window. A successful flush completes it; on a badly
  // overloaded host the margin itself may lapse — but never the window.
  EXPECT_LT(elapsed_ms, 400);
  if (r.ok) {
    EXPECT_GE(elapsed_ms, 40);  // the window really held it open
    EXPECT_TRUE(p.check(32));
  } else {
    EXPECT_EQ(r.code, ErrorCode::kDeadlineExceeded) << r.message;
  }
  svc.shutdown();
}

TEST(ShardService, CoalescedNeighborFailureDoesNotPoisonSiblings) {
  ServiceOptions options;
  options.shards = 1;
  options.lanes = 1;
  options.coalesce_depth = 8;
  options.coalesce_window_us = 0;
  options.gemm.check_finite = true;
  SmmService svc(options);
  Matrix<double> ba(96, 96), bb(96, 96);
  Rng rng(11);
  ba.fill_random(rng);
  bb.fill_random(rng);
  std::vector<Matrix<double>> bcs;
  std::vector<service::BatchItem<double>> blocker;
  for (int i = 0; i < 60; ++i) {
    bcs.emplace_back(96, 96);
    blocker.push_back({ba.cview(), bb.cview(), bcs.back().view()});
  }
  Ticket busy = svc.submit_batch(1.0, blocker, 0.0);
  while (svc.stats().in_flight == 0 && !busy.done())
    std::this_thread::yield();

  std::vector<test::GemmProblem<double>> probs;
  for (unsigned i = 0; i < 4; ++i) probs.emplace_back(32, 30, 32, 620 + i);
  for (auto& p : probs) p.reference(1.0, 0.0);
  // Member 1 carries a NaN (fails the finite screen inside the group);
  // member 2 is cancelled while queued.
  probs[1].a.view()(3, 4) = std::numeric_limits<double>::quiet_NaN();
  const Matrix<double> c2_before = probs[2].c.clone();
  std::vector<Ticket> tickets;
  for (auto& p : probs)
    tickets.push_back(
        svc.submit(1.0, p.a.cview(), p.b.cview(), 0.0, p.c.view()));
  tickets[2].cancel();
  EXPECT_TRUE(busy.wait().ok);

  EXPECT_TRUE(tickets[0].wait().ok) << tickets[0].wait().message;
  ASSERT_FALSE(tickets[1].wait().ok);
  EXPECT_EQ(tickets[1].wait().code, ErrorCode::kNonFinite);
  ASSERT_FALSE(tickets[2].wait().ok);
  EXPECT_EQ(tickets[2].wait().code, ErrorCode::kCancelled);
  EXPECT_TRUE(tickets[3].wait().ok) << tickets[3].wait().message;
  // The healthy siblings computed the right numbers; the failed and the
  // cancelled members left their C untouched.
  EXPECT_TRUE(probs[0].check(32));
  EXPECT_TRUE(probs[3].check(32));
  EXPECT_EQ(max_abs_diff(probs[2].c.cview(), c2_before.cview()), 0.0);
  // A neighbor's NaN is the caller's fault: the breaker stays closed.
  EXPECT_EQ(svc.breaker_state(), service::BreakerState::kClosed);
  svc.shutdown();
}

// ---- concurrency stress (run under TSan in CI) -----------------------------

TEST(ShardService, ConcurrentSubmitStealCoalesceStress) {
  ServiceOptions options;
  options.shards = 4;
  options.lanes = 1;
  options.queue_depth = 32;
  options.coalesce_depth = 4;
  options.coalesce_window_us = 200;
  options.default_deadline_ms = 250;
  SmmService svc(options);
  constexpr int kProducers = 4;
  constexpr int kIters = 60;
  std::atomic<std::size_t> ok{0}, stopped{0}, refused{0}, failed{0};
  std::vector<std::thread> producers;
  for (int w = 0; w < kProducers; ++w) {
    producers.emplace_back([&, w] {
      // Three shape classes per producer: traffic lands on several
      // shards, with enough same-shape pressure to coalesce and enough
      // imbalance to steal.
      std::vector<test::GemmProblem<double>> probs;
      for (unsigned s = 0; s < 3; ++s)
        probs.emplace_back(16 + 8 * s, 24, 16 + 8 * s,
                           700 + 10 * static_cast<unsigned>(w) + s);
      for (int i = 0; i < kIters; ++i) {
        auto& p = probs[static_cast<std::size_t>(i) % 3];
        Ticket t = svc.submit(1.0, p.a.cview(), p.b.cview(), 0.0,
                              p.c.view(), static_cast<Priority>(i % 3));
        if (i % 5 == 0) t.cancel();
        const Result& r = t.wait();
        if (r.ok) {
          ok.fetch_add(1);
        } else if (r.code == ErrorCode::kCancelled ||
                   r.code == ErrorCode::kDeadlineExceeded) {
          stopped.fetch_add(1);
        } else if (r.code == ErrorCode::kOverloaded) {
          refused.fetch_add(1);
        } else {
          failed.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  svc.shutdown();
  EXPECT_EQ(failed.load(), 0u);
  EXPECT_GT(ok.load(), 0u);
  const auto s = svc.stats();
  EXPECT_EQ(s.submitted,
            static_cast<std::size_t>(kProducers) * kIters);
  EXPECT_EQ(s.submitted, s.routed);
  EXPECT_EQ(s.submitted, s.admitted + s.rejected);
  std::size_t routed_sum = 0, admitted_sum = 0;
  for (const auto r : s.routed_per_shard) routed_sum += r;
  for (const auto a : s.admitted_per_shard) admitted_sum += a;
  EXPECT_EQ(routed_sum, s.routed);
  EXPECT_EQ(admitted_sum, s.admitted);
  EXPECT_EQ(s.queued, 0u);
  EXPECT_EQ(s.in_flight, 0u);
}

}  // namespace
}  // namespace smm
