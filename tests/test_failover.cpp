// smm::failover tests (DESIGN.md §15): the ShardHealth lifecycle state
// machine, the deterministic fallback ring and latency window, admission
// diversion off a quarantined home, quarantine drain with zero stranded
// tickets, hedged execution with exactly-once outcome accounting, the
// routed == Σ routed_per_shard + rerouted invariant, steal gating by
// shard state, brownout (kLow shed, tune sampling paused, ABFT repair
// suppressed), per-shard breaker isolation, fork safety with shards > 1,
// and a TSan-facing concurrent quarantine/revive/hedge stress. The
// sustained fault-schedule version lives in bench/failover_soak.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "src/common/error.h"
#include "src/core/smm.h"
#include "src/failover/failover.h"
#include "src/robust/fault_injection.h"
#include "src/robust/health.h"
#include "src/robust/integrity.h"
#include "src/service/smm_service.h"
#include "src/shard/shard.h"
#include "src/threading/thread_pool.h"
#include "src/threading/worker_pool.h"
#include "src/tune/tune.h"
#include "tests/test_helpers.h"

namespace smm {
namespace {

using failover::FailoverOptions;
using failover::LatencyWindow;
using failover::ShardHealth;
using failover::ShardState;
using robust::FaultInjector;
using robust::FaultSite;
using robust::FaultSpec;
using robust::ScopedFault;
using service::BreakerState;
using service::CircuitBreaker;
using service::Priority;
using service::Result;
using service::ServiceOptions;
using service::SmmService;
using service::Ticket;

class FailoverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::instance().disarm_all();
    clear_suppressions();
    integrity::set_mode_override(integrity::AbftMode::kAuto);
    heal_pool();
  }
  void TearDown() override {
    FaultInjector::instance().disarm_all();
    clear_suppressions();
    integrity::set_mode_override(integrity::AbftMode::kAuto);
    heal_pool();
  }
  /// Drain any suppression holds a failed test may have leaked (the
  /// holds are counted, so release until the gates read clear).
  static void clear_suppressions() {
    for (int i = 0; i < 64 && tune::sampling_suppressed(); ++i)
      tune::release_sampling_suppression();
    for (int i = 0; i < 64 && integrity::repair_suppressed(); ++i)
      integrity::release_repair_suppression();
  }
  static void heal_pool() {
    for (int i = 0; i < 2; ++i) par::run_parallel(2, [](int) {});
  }
};

/// A ServiceOptions base every multi-shard test starts from: explicit
/// shard/lane counts (independent of SMMKIT_SHARDS), single-threaded
/// requests, no coalesce window.
ServiceOptions failover_options(int shards, int lanes = 1) {
  ServiceOptions options;
  options.shards = shards;
  options.lanes = lanes;
  options.threads_per_request = 1;
  options.coalesce_window_us = 0;
  return options;
}

/// A k (near `k0`) whose m×n×k f64 problem the service homes on shard
/// `want`. Varying k walks the shape-class hash through every shard.
index_t k_homed_on(const SmmService& svc, int want, index_t m, index_t n,
                   index_t k0 = 16) {
  for (index_t k = k0; k < k0 + 512; ++k)
    if (svc.route_shard(m, n, k, /*scalar_id=*/1) == want) return k;
  ADD_FAILURE() << "no k in [" << k0 << ", " << k0 + 512
                << ") homes on shard " << want;
  return k0;
}

void check_accounting(const SmmService& svc) {
  const SmmService::Stats s = svc.stats();
  EXPECT_EQ(s.submitted, s.admitted + s.rejected);
  EXPECT_EQ(s.submitted, s.routed);
  const std::size_t per_shard =
      std::accumulate(s.routed_per_shard.begin(), s.routed_per_shard.end(),
                      std::size_t{0});
  EXPECT_EQ(s.routed, per_shard + s.rerouted)
      << "routed=" << s.routed << " Σrouted_per_shard=" << per_shard
      << " rerouted=" << s.rerouted;
  const std::size_t admitted_per_shard = std::accumulate(
      s.admitted_per_shard.begin(), s.admitted_per_shard.end(),
      std::size_t{0});
  EXPECT_EQ(s.admitted, admitted_per_shard);
}

// ---- ShardHealth unit ------------------------------------------------------

TEST_F(FailoverTest, LedgerWalksTheLifecycle) {
  FailoverOptions fo;
  fo.degrade_after = 2;
  fo.quarantine_after = 4;
  fo.quarantine_ms = 5;
  ShardHealth h(fo, CircuitBreaker::Options{});
  EXPECT_EQ(h.state(), ShardState::kHealthy);
  EXPECT_TRUE(h.admissible());

  EXPECT_FALSE(h.on_failure());
  EXPECT_EQ(h.state(), ShardState::kHealthy);
  EXPECT_FALSE(h.on_failure());
  EXPECT_EQ(h.state(), ShardState::kDegraded);
  EXPECT_TRUE(h.admissible());  // degraded still serves

  // A success heals a degraded shard and clears the streak.
  h.on_success();
  EXPECT_EQ(h.state(), ShardState::kHealthy);

  // Four straight failures: degraded at 2, quarantined at 4 — and the
  // transition is reported exactly once, on entry.
  EXPECT_FALSE(h.on_failure());
  EXPECT_FALSE(h.on_failure());
  EXPECT_FALSE(h.on_failure());
  EXPECT_TRUE(h.on_failure());
  EXPECT_EQ(h.state(), ShardState::kQuarantined);
  EXPECT_FALSE(h.admissible());
  EXPECT_EQ(h.quarantines(), 1u);
  EXPECT_FALSE(h.on_failure());  // already quarantined: no re-entry

  // Traffic cannot heal a quarantined shard; only the rebuild can.
  h.on_success();
  EXPECT_EQ(h.state(), ShardState::kQuarantined);

  // The hold has not elapsed yet.
  EXPECT_FALSE(h.maybe_begin_rebuild(std::chrono::steady_clock::now()));
  std::this_thread::sleep_for(std::chrono::milliseconds(6));
  EXPECT_TRUE(h.maybe_begin_rebuild(std::chrono::steady_clock::now()));
  EXPECT_EQ(h.state(), ShardState::kRebuilding);
  EXPECT_EQ(h.rebuilds(), 1u);
  EXPECT_TRUE(h.admissible());  // the probe readmits traffic

  // A failure during the rebuild probe re-quarantines immediately.
  EXPECT_TRUE(h.on_failure());
  EXPECT_EQ(h.state(), ShardState::kQuarantined);
  EXPECT_EQ(h.quarantines(), 2u);
  std::this_thread::sleep_for(std::chrono::milliseconds(6));
  EXPECT_TRUE(h.maybe_begin_rebuild(std::chrono::steady_clock::now()));
  h.on_success();
  EXPECT_EQ(h.state(), ShardState::kHealthy);
}

TEST_F(FailoverTest, AdministrativeHoldOutlivesTheClock) {
  FailoverOptions fo;
  fo.quarantine_ms = 1;
  ShardHealth h(fo, CircuitBreaker::Options{});
  EXPECT_TRUE(h.force_quarantine());
  EXPECT_FALSE(h.force_quarantine());  // already held: not an entry
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  // An admin hold never auto-expires into the rebuild probe.
  EXPECT_FALSE(h.maybe_begin_rebuild(std::chrono::steady_clock::now()));
  EXPECT_EQ(h.state(), ShardState::kQuarantined);
  EXPECT_TRUE(h.revive());
  EXPECT_EQ(h.state(), ShardState::kRebuilding);
  EXPECT_FALSE(h.revive());  // only a quarantined shard revives
  h.on_success();
  EXPECT_EQ(h.state(), ShardState::kHealthy);
}

TEST_F(FailoverTest, FallbackRingIsDeterministic) {
  const auto all_but = [](std::vector<int> down) {
    return [down](int idx) {
      for (const int d : down)
        if (d == idx) return false;
      return true;
    };
  };
  EXPECT_EQ(failover::next_on_ring(1, 4, all_but({1})), 2);
  EXPECT_EQ(failover::next_on_ring(1, 4, all_but({1, 2})), 3);
  EXPECT_EQ(failover::next_on_ring(3, 4, all_but({3})), 0);  // wraps
  EXPECT_EQ(failover::next_on_ring(3, 4, all_but({3, 0, 1})), 2);
  // Nobody admissible: the ring hands home back and the caller decides.
  EXPECT_EQ(failover::next_on_ring(2, 4, all_but({0, 1, 2, 3})), 2);
  EXPECT_EQ(failover::next_on_ring(0, 1, all_but({})), 0);
  // Same health vector, same answer — run it twice.
  EXPECT_EQ(failover::next_on_ring(1, 8, all_but({2, 3})),
            failover::next_on_ring(1, 8, all_but({2, 3})));
}

TEST_F(FailoverTest, LatencyWindowQuantiles) {
  LatencyWindow w(8);
  EXPECT_EQ(w.size(), 0u);
  EXPECT_DOUBLE_EQ(w.quantile(0.95, 123.0), 123.0);  // empty: fallback
  for (int i = 1; i <= 8; ++i) w.record(static_cast<double>(i) * 100.0);
  EXPECT_EQ(w.size(), 8u);
  EXPECT_DOUBLE_EQ(w.quantile(0.0, 0.0), 100.0);
  EXPECT_DOUBLE_EQ(w.quantile(1.0, 0.0), 800.0);
  EXPECT_GE(w.quantile(0.95, 0.0), 700.0);
  // The ring forgets: overwrite everything with a new regime.
  for (int i = 0; i < 8; ++i) w.record(50.0);
  EXPECT_DOUBLE_EQ(w.quantile(0.95, 0.0), 50.0);
}

TEST_F(FailoverTest, OptionsReadTheEnvironment) {
  setenv("SMMKIT_SHARD_QUARANTINE", "75", 1);
  setenv("SMMKIT_HEDGE_MS", "3", 1);
  FailoverOptions fo = failover::failover_options_from_env();
  EXPECT_EQ(fo.quarantine_ms, 75);
  EXPECT_EQ(fo.hedge_ms, 3);
  setenv("SMMKIT_SHARD_QUARANTINE", "garbage", 1);
  setenv("SMMKIT_HEDGE_MS", "-4", 1);
  FailoverOptions defaults;
  fo = failover::failover_options_from_env();
  EXPECT_EQ(fo.quarantine_ms, defaults.quarantine_ms);  // unparsable: kept
  EXPECT_EQ(fo.hedge_ms, defaults.hedge_ms);
  unsetenv("SMMKIT_SHARD_QUARANTINE");
  unsetenv("SMMKIT_HEDGE_MS");
}

// ---- tune sampling gate (satellite: failover noise vs the posterior) -------

TEST_F(FailoverTest, SampleTokensStopWhileSuppressed) {
  tune::set_mode_override(tune::Mode::kObserve);
  const tune::ShapeClass sc{40, 40, 40, 0, 1};
  tune::hold_sampling_suppression();
  EXPECT_TRUE(tune::sampling_suppressed());
  for (int i = 0; i < 512; ++i)
    EXPECT_FALSE(tune::tuner().sample_token(sc).sample)
        << "token issued while suppressed (i=" << i << ")";
  tune::release_sampling_suppression();
  int sampled = 0;
  for (int i = 0; i < 512; ++i)
    if (tune::tuner().sample_token(sc).sample) ++sampled;
  EXPECT_GT(sampled, 0) << "suppression failed to lift";
  tune::set_mode_override(tune::Mode::kAuto);
}

TEST_F(FailoverTest, ScopedSuppressionNestsPerThread) {
  tune::set_mode_override(tune::Mode::kObserve);
  const tune::ShapeClass sc{41, 41, 41, 0, 1};
  {
    tune::ScopedSampleSuppression outer;
    {
      tune::ScopedSampleSuppression inner;
      EXPECT_TRUE(tune::sampling_suppressed());
    }
    // Still suppressed: the outer scope holds.
    EXPECT_TRUE(tune::sampling_suppressed());
    for (int i = 0; i < 128; ++i)
      EXPECT_FALSE(tune::tuner().sample_token(sc).sample);
  }
  EXPECT_FALSE(tune::sampling_suppressed());
  tune::set_mode_override(tune::Mode::kAuto);
}

// ---- ABFT repair suppression (brownout satellite) --------------------------

TEST_F(FailoverTest, RepairSuppressionCapsCorrectToDetect) {
  integrity::set_mode_override(integrity::AbftMode::kCorrect);
  EXPECT_EQ(integrity::mode(), integrity::AbftMode::kCorrect);
  integrity::hold_repair_suppression();
  EXPECT_EQ(integrity::mode(), integrity::AbftMode::kDetect);
  // Detection stays armed — only the repair tier is shed.
  integrity::set_mode_override(integrity::AbftMode::kDetect);
  EXPECT_EQ(integrity::mode(), integrity::AbftMode::kDetect);
  // An explicit per-call kCorrect is a caller decision, not policy.
  EXPECT_EQ(integrity::resolve(integrity::AbftMode::kCorrect),
            integrity::AbftMode::kCorrect);
  integrity::release_repair_suppression();
  integrity::set_mode_override(integrity::AbftMode::kCorrect);
  EXPECT_EQ(integrity::mode(), integrity::AbftMode::kCorrect);
}

TEST_F(FailoverTest, SuppressionHoldsComposeAcrossHolders) {
  // Two independent holders (two browned-out service instances): one
  // releasing — or shutting down — must not lift the other's hold.
  tune::hold_sampling_suppression();
  tune::hold_sampling_suppression();
  tune::release_sampling_suppression();
  EXPECT_TRUE(tune::sampling_suppressed())
      << "one holder's release lifted another's suppression";
  tune::release_sampling_suppression();
  EXPECT_FALSE(tune::sampling_suppressed());
  // Clamped at zero: a stray extra release is a no-op, not a debt the
  // next holder's hold would silently pay off.
  tune::release_sampling_suppression();
  tune::hold_sampling_suppression();
  EXPECT_TRUE(tune::sampling_suppressed());
  tune::release_sampling_suppression();

  integrity::set_mode_override(integrity::AbftMode::kCorrect);
  integrity::hold_repair_suppression();
  integrity::hold_repair_suppression();
  integrity::release_repair_suppression();
  EXPECT_TRUE(integrity::repair_suppressed());
  EXPECT_EQ(integrity::mode(), integrity::AbftMode::kDetect);
  integrity::release_repair_suppression();
  EXPECT_FALSE(integrity::repair_suppressed());
  EXPECT_EQ(integrity::mode(), integrity::AbftMode::kCorrect);
  integrity::release_repair_suppression();
  integrity::hold_repair_suppression();
  EXPECT_TRUE(integrity::repair_suppressed());
  integrity::release_repair_suppression();
  integrity::set_mode_override(integrity::AbftMode::kAuto);
}

// ---- admission diversion + drain -------------------------------------------

TEST_F(FailoverTest, QuarantinedHomeDivertsAlongTheRing) {
  SmmService svc(failover_options(4));
  const index_t k = k_homed_on(svc, 2, 24, 24);
  test::GemmProblem<double> p(24, 24, k, 91);
  p.reference(1.0, 0.0);

  svc.quarantine_shard(2);
  EXPECT_EQ(svc.shard_state(2), ShardState::kQuarantined);
  const Result& r =
      svc.submit(1.0, p.a.cview(), p.b.cview(), 0.0, p.c.view()).wait();
  ASSERT_TRUE(r.ok) << r.message;
  EXPECT_TRUE(p.check(k));

  SmmService::Stats s = svc.stats();
  EXPECT_GE(s.rerouted, 1u);
  EXPECT_GE(s.shard_quarantines, 1u);
  check_accounting(svc);

  // Revive: the shard rebuilds and its first clean completion heals it.
  svc.revive_shard(2);
  EXPECT_EQ(svc.shard_state(2), ShardState::kRebuilding);
  const Result& probe =
      svc.submit(1.0, p.a.cview(), p.b.cview(), 0.0, p.c.view()).wait();
  ASSERT_TRUE(probe.ok) << probe.message;
  EXPECT_EQ(svc.shard_state(2), ShardState::kHealthy);
  EXPECT_GE(svc.stats().shard_rebuilds, 1u);
  check_accounting(svc);
  svc.shutdown();
}

TEST_F(FailoverTest, QuarantineDrainStrandsNothing) {
  ServiceOptions options = failover_options(2);
  options.queue_depth = 64;
  SmmService svc(options);
  const int home = 0;
  const index_t k = k_homed_on(svc, home, 24, 24);
  test::GemmProblem<double> p(24, 24, k, 92);
  p.reference(1.0, 0.0);

  // Park the home shard's only lane on a long batch homed there, then
  // stack requests behind it.
  const index_t kb = k_homed_on(svc, home, 96, 96, 80);
  test::GemmProblem<double> big(96, 96, kb, 93);
  std::vector<service::BatchItem<double>> blocker_items;
  std::vector<Matrix<double>> blocker_cs;
  blocker_cs.reserve(40);
  for (int i = 0; i < 40; ++i) {
    blocker_cs.emplace_back(96, 96);
    blocker_items.push_back(
        {big.a.cview(), big.b.cview(), blocker_cs.back().view()});
  }
  // The batch's own route hash need not land on `home`; what matters is
  // the queued singles below, which provably do.
  Ticket busy = svc.submit_batch(1.0, blocker_items, 0.0);
  std::vector<Matrix<double>> cs;
  std::vector<Ticket> queued;
  cs.reserve(8);
  for (int i = 0; i < 8; ++i) {
    cs.emplace_back(24, 24);
    Matrix<double>& c = cs.back();
    for (index_t jj = 0; jj < 24; ++jj)
      for (index_t ii = 0; ii < 24; ++ii) c(ii, jj) = p.c_expected(ii, jj) * 0;
    queued.push_back(
        svc.submit(1.0, p.a.cview(), p.b.cview(), 0.0, c.view()));
  }

  svc.quarantine_shard(home);
  // Every ticket reaches a terminal state: the queued ones re-route to
  // shard 1 and complete there (or, if they were already running,
  // finish where they were) — nothing waits on a quarantined queue.
  for (auto& t : queued) {
    const Result& r = t.wait();
    EXPECT_TRUE(r.ok) << r.message;
  }
  EXPECT_TRUE(busy.wait().ok);
  for (auto& c : cs)
    EXPECT_LE(max_abs_diff(c.cview(), p.c_expected.cview()),
              gemm_tolerance<double>(k) * 4.0);
  check_accounting(svc);
  svc.drain();
  const SmmService::Stats s = svc.stats();
  EXPECT_EQ(s.queued, 0u);
  EXPECT_EQ(s.in_flight, 0u);
  svc.shutdown();
}

// ---- steal gating ----------------------------------------------------------

TEST_F(FailoverTest, QuarantinedShardDoesNotSteal) {
  ServiceOptions options = failover_options(2);
  SmmService svc(options);
  // Shard 1 is quarantined and idle; shard 0 gets a deep backlog. The
  // only possible thief is shard 1 — gated, so steals must stay zero.
  svc.quarantine_shard(1);
  const index_t k = k_homed_on(svc, 0, 32, 32);
  test::GemmProblem<double> p(32, 32, k, 94);
  std::vector<Ticket> tickets;
  for (int i = 0; i < 24; ++i)
    tickets.push_back(
        svc.submit(1.0, p.a.cview(), p.b.cview(), 0.0, p.c.view()));
  for (auto& t : tickets) EXPECT_TRUE(t.wait().ok);
  EXPECT_EQ(svc.stats().steals, 0u);
  check_accounting(svc);
  svc.shutdown();
}

// ---- hedged execution ------------------------------------------------------

TEST_F(FailoverTest, HedgedBackupWinsWhilePrimaryIsStuck) {
  ServiceOptions options = failover_options(2);
  options.failover.hedge_ms = 1;  // fire fast and deterministically
  SmmService svc(options);
  const int home = 0;
  // A blocker batch that provably routes to `home`: replicate
  // submit_batch's combined-hash routing (FNV fold of the item shape
  // classes, cost-bucketed by the summed estimate) and pick a k for
  // which it lands there. The batch must park the home lane so the
  // hedged primary below stays queued past the 1 ms hedge delay.
  constexpr int kBlockerItems = 60;
  index_t kb = 0;
  for (index_t k = 80; k < 300; ++k) {
    std::uint64_t h = 1469598103934665603ull;
    double est = 0.0;
    for (int i = 0; i < kBlockerItems; ++i) {
      h ^= shard::shape_class_hash({96, 96, k, /*scalar=*/1});
      h *= 1099511628211ull;
      est += svc.estimate_cost_ns(96, 96, k);
    }
    if (shard::route(h, est, 2) == home) {
      kb = k;
      break;
    }
  }
  ASSERT_GT(kb, 0) << "no blocker batch shape routes to shard " << home;
  test::GemmProblem<double> big(96, 96, kb, 95);
  std::vector<service::BatchItem<double>> blocker_items;
  std::vector<Matrix<double>> blocker_cs;
  for (int i = 0; i < kBlockerItems; ++i) {
    blocker_cs.emplace_back(96, 96);
    blocker_items.push_back(
        {big.a.cview(), big.b.cview(), blocker_cs.back().view()});
  }
  const index_t k = k_homed_on(svc, home, 32, 32);
  test::GemmProblem<double> p(32, 32, k, 96);
  p.reference(1.0, 0.5);

  Ticket busy = svc.submit_batch(1.0, blocker_items, 0.0);
  // Wait for the home lane to pop the blocker before submitting the
  // hedged primary: while the blocker is still *queued*, the peer
  // shard's idle lane may steal it (home would hold 2 queued entries),
  // the primary would then run immediately, and the hedge would be
  // GC'd unfired — a flaky hedged==0.
  for (int spin = 0; spin < 200000 && svc.stats().queued > 0; ++spin)
    std::this_thread::yield();
  ASSERT_EQ(svc.stats().queued, 0u) << "blocker batch never started";
  // kHigh + a deadline far beyond 2× the predicted cost: hedge-eligible.
  Ticket hedged = svc.submit(1.0, p.a.cview(), p.b.cview(), 0.5,
                             p.c.view(), Priority::kHigh,
                             /*deadline_ms=*/2000);
  const Result& r = hedged.wait();
  ASSERT_TRUE(r.ok) << r.message;
  EXPECT_TRUE(p.check(k));  // beta=0.5 read the pre-image exactly once

  EXPECT_TRUE(busy.wait().ok);
  svc.drain();
  const SmmService::Stats s = svc.stats();
  // The primary was parked behind a ~60-item batch while the hedge
  // delay was 1 ms: the backup fired and won.
  EXPECT_GE(s.hedged, 1u);
  EXPECT_GE(s.hedge_wins, 1u);
  EXPECT_LE(s.hedge_wins, s.hedged);
  // Exactly-once: the ticket completed once — completed counts the
  // batch and the hedged single, with no double-counted terminal.
  EXPECT_EQ(s.completed + s.rejected + s.evicted + s.cancellations +
                s.deadline_misses,
            s.submitted);
  check_accounting(svc);
  svc.shutdown();
}

TEST_F(FailoverTest, HedgeDoesNotFireWhenThePrimaryIsFast) {
  ServiceOptions options = failover_options(2);
  options.failover.hedge_ms = 50;  // far beyond the request's runtime
  SmmService svc(options);
  test::GemmProblem<double> p(24, 24, 24, 97);
  p.reference(1.0, 0.0);
  const Result& r = svc.submit(1.0, p.a.cview(), p.b.cview(), 0.0,
                               p.c.view(), Priority::kHigh,
                               /*deadline_ms=*/2000)
                        .wait();
  ASSERT_TRUE(r.ok) << r.message;
  EXPECT_TRUE(p.check(24));
  // Give the supervisor a tick to GC the registered hedge.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(svc.stats().hedged, 0u);
  EXPECT_EQ(svc.stats().hedge_wins, 0u);
  svc.shutdown();
}

TEST_F(FailoverTest, HedgedLoserSurvivesCallerFreeingOperands) {
  // The submit() contract lets the caller free A and B the moment
  // wait() returns — but the ticket reaches terminal when the WINNING
  // arm claims, while the losing arm may still be mid-gemm (its
  // cancellation is cooperative). Both arms must therefore read only
  // the service-owned submit-time snapshots. Regression: the hedged
  // closure used to capture the borrowed A/B views directly, so this
  // sequence was a use-after-free in the loser (ASan-visible in the
  // sanitized CI runs of this suite).
  ServiceOptions options = failover_options(2);
  options.failover.hedge_ms = 1;  // fire while the primary is mid-gemm
  SmmService svc(options);
  // Big enough that one arm is still executing when the other claims:
  // the backup fires 1 ms in, several ms before either gemm finishes.
  constexpr index_t kDim = 256;
  test::GemmProblem<double> p(kDim, kDim, kDim, 99);
  p.reference(1.0, 0.5);
  auto a_heap = std::make_unique<Matrix<double>>(p.a.clone());
  auto b_heap = std::make_unique<Matrix<double>>(p.b.clone());

  Ticket hedged = svc.submit(1.0, a_heap->cview(), b_heap->cview(), 0.5,
                             p.c.view(), Priority::kHigh,
                             /*deadline_ms=*/20000);
  const Result r = hedged.wait();
  // Terminal reached: the contract says these may die now, whichever
  // arm is still running.
  a_heap.reset();
  b_heap.reset();
  ASSERT_TRUE(r.ok) << r.message;
  EXPECT_TRUE(p.check(kDim));
  svc.drain();  // the loser runs to terminal against its snapshots
  EXPECT_TRUE(p.check(kDim));  // and never re-publishes into C
  check_accounting(svc);
  svc.shutdown();
}

// ---- brownout --------------------------------------------------------------

TEST_F(FailoverTest, MajorityQuarantineEntersAndExitsBrownout) {
  SmmService svc(failover_options(3));
  EXPECT_FALSE(svc.in_brownout());
  svc.quarantine_shard(0);
  EXPECT_FALSE(svc.in_brownout());  // 2 of 3 still admissible
  svc.quarantine_shard(1);
  EXPECT_TRUE(svc.in_brownout());  // 1 of 3: minority service
  EXPECT_TRUE(tune::sampling_suppressed());
  integrity::set_mode_override(integrity::AbftMode::kCorrect);
  EXPECT_EQ(integrity::mode(), integrity::AbftMode::kDetect);

  // kLow is shed at the door regardless of queue fill; kNormal and
  // kHigh still get the surviving capacity.
  test::GemmProblem<double> p(24, 24, 24, 98);
  p.reference(1.0, 0.0);
  const Result& low = svc.submit(1.0, p.a.cview(), p.b.cview(), 0.0,
                                 p.c.view(), Priority::kLow)
                          .wait();
  ASSERT_FALSE(low.ok);
  EXPECT_EQ(low.code, ErrorCode::kOverloaded);
  const Result& normal =
      svc.submit(1.0, p.a.cview(), p.b.cview(), 0.0, p.c.view()).wait();
  ASSERT_TRUE(normal.ok) << normal.message;
  EXPECT_TRUE(p.check(24));
  EXPECT_GE(svc.stats().brownouts, 1u);
  EXPECT_GE(svc.stats().shed, 1u);

  // Reviving one shard restores the majority and lifts the brownout.
  svc.revive_shard(0);
  EXPECT_FALSE(svc.in_brownout());
  EXPECT_FALSE(tune::sampling_suppressed());
  EXPECT_EQ(integrity::mode(), integrity::AbftMode::kCorrect);
  const Result& low2 = svc.submit(1.0, p.a.cview(), p.b.cview(), 0.0,
                                  p.c.view(), Priority::kLow)
                           .wait();
  EXPECT_TRUE(low2.ok) << low2.message;
  check_accounting(svc);
  svc.shutdown();
  integrity::set_mode_override(integrity::AbftMode::kAuto);
}

// ---- per-shard breaker isolation -------------------------------------------

TEST_F(FailoverTest, OneSickShardTripsOnlyItsOwnBreaker) {
  ServiceOptions options = failover_options(2);
  options.threads_per_request = 2;  // route through the worker pool
  options.breaker.failure_threshold = 2;
  options.breaker.open_for = std::chrono::milliseconds(40);
  options.failover.degrade_after = 1;
  options.failover.quarantine_after = 2;
  options.failover.quarantine_ms = 30;
  SmmService svc(options);
  const int sick = 0;
  const index_t ks = k_homed_on(svc, sick, 64, 64);
  const index_t kh = k_homed_on(svc, 1, 64, 64);
  test::GemmProblem<double> ps(64, 64, ks, 99);
  test::GemmProblem<double> ph(64, 64, kh, 100);
  ph.reference(1.0, 0.0);

  // Warm both shapes so the failing runs fail in execution, not build.
  ASSERT_TRUE(
      svc.submit(1.0, ps.a.cview(), ps.b.cview(), 0.0, ps.c.view())
          .wait()
          .ok);
  ASSERT_TRUE(
      svc.submit(1.0, ph.a.cview(), ph.b.cview(), 0.0, ph.c.view())
          .wait()
          .ok);

  {
    ScopedFault fault(FaultSite::kWorkerThrow,
                      FaultSpec{/*fire_after=*/0, /*max_fires=*/4});
    for (int i = 0; i < 2; ++i) {
      const Result& r =
          svc.submit(1.0, ps.a.cview(), ps.b.cview(), 0.0, ps.c.view())
              .wait();
      ASSERT_FALSE(r.ok);
    }
  }
  // Two infra failures on shard 0's own traffic: its ledger quarantines
  // and its breaker trips — the sibling's breaker and the legacy global
  // breaker never hear about it.
  EXPECT_EQ(svc.shard_state(sick), ShardState::kQuarantined);
  EXPECT_EQ(svc.shard_breaker_state(sick), BreakerState::kOpen);
  EXPECT_EQ(svc.shard_breaker_state(1), BreakerState::kClosed);
  EXPECT_EQ(svc.breaker_state(), BreakerState::kClosed);
  EXPECT_GE(svc.stats().shard_quarantines, 1u);

  // Healthy-shard traffic flows; sick-homed traffic diverts and flows.
  const Result& healthy =
      svc.submit(1.0, ph.a.cview(), ph.b.cview(), 0.0, ph.c.view()).wait();
  EXPECT_TRUE(healthy.ok) << healthy.message;
  const Result& diverted =
      svc.submit(1.0, ps.a.cview(), ps.b.cview(), 0.0, ps.c.view()).wait();
  EXPECT_TRUE(diverted.ok) << diverted.message;
  EXPECT_GE(svc.stats().rerouted, 1u);

  // The quarantine expires into the rebuild probe, and clean traffic
  // heals the shard end to end.
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  const auto wait_until = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(500);
  while (svc.shard_state(sick) == ShardState::kQuarantined &&
         std::chrono::steady_clock::now() < wait_until)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_NE(svc.shard_state(sick), ShardState::kQuarantined);
  const Result& probe =
      svc.submit(1.0, ps.a.cview(), ps.b.cview(), 0.0, ps.c.view()).wait();
  EXPECT_TRUE(probe.ok) << probe.message;
  EXPECT_EQ(svc.shard_state(sick), ShardState::kHealthy);
  EXPECT_GE(svc.stats().shard_rebuilds, 1u);
  check_accounting(svc);
  svc.shutdown();
}

// ---- single-shard / disabled: legacy paths ---------------------------------

TEST_F(FailoverTest, SingleShardKeepsTheLegacyBreakerPath) {
  SmmService svc(failover_options(1));
  EXPECT_EQ(svc.shard_state(0), ShardState::kHealthy);
  EXPECT_EQ(svc.shard_breaker_state(0), svc.breaker_state());
  svc.quarantine_shard(0);  // no-op without the failover layer
  EXPECT_EQ(svc.shard_state(0), ShardState::kHealthy);
  EXPECT_FALSE(svc.in_brownout());
  test::GemmProblem<double> p(24, 24, 24, 101);
  p.reference(1.0, 0.0);
  ASSERT_TRUE(svc.submit(1.0, p.a.cview(), p.b.cview(), 0.0, p.c.view(),
                         Priority::kHigh, /*deadline_ms=*/2000)
                  .wait()
                  .ok);
  EXPECT_TRUE(p.check(24));
  const SmmService::Stats s = svc.stats();
  EXPECT_EQ(s.rerouted, 0u);
  EXPECT_EQ(s.hedged, 0u);
  EXPECT_EQ(s.shard_quarantines, 0u);
  check_accounting(svc);
  svc.shutdown();
}

TEST_F(FailoverTest, DisabledFailoverOnMultiShardKeepsPr7Paths) {
  ServiceOptions options = failover_options(2);
  options.failover.enabled = false;
  SmmService svc(options);
  EXPECT_EQ(svc.shard_state(0), ShardState::kHealthy);
  svc.quarantine_shard(0);
  EXPECT_EQ(svc.shard_state(0), ShardState::kHealthy);
  test::GemmProblem<double> p(24, 24, 24, 102);
  p.reference(1.0, 0.0);
  ASSERT_TRUE(
      svc.submit(1.0, p.a.cview(), p.b.cview(), 0.0, p.c.view()).wait().ok);
  EXPECT_TRUE(p.check(24));
  EXPECT_EQ(svc.stats().rerouted, 0u);
  check_accounting(svc);
  svc.shutdown();
}

// ---- fork safety with shards > 1 (satellite) -------------------------------

TEST_F(FailoverTest, ForkedChildRunsGemmAndMultiShardService) {
  // Warm everything fork() endangers in the parent: the process pool,
  // per-shard private pools, the supervisor thread.
  test::GemmProblem<double> p(32, 32, 32, 103);
  p.reference(1.0, 0.0);
  core::smm_gemm(1.0, p.a.cview(), p.b.cview(), 0.0, p.c.view(), 2);
  ASSERT_TRUE(p.check(32));
  {
    SmmService warm(failover_options(2));
    ASSERT_TRUE(
        warm.submit(1.0, p.a.cview(), p.b.cview(), 0.0, p.c.view())
            .wait()
            .ok);
    warm.shutdown();
  }

  const pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // Child: the atfork handlers reset the inherited pool state; both a
    // parallel smm_gemm and a fresh multi-shard service (private pools,
    // supervisor, hedging armed) must work. _exit keeps gtest/atexit
    // machinery out.
    int status = 0;
    try {
      test::GemmProblem<double> q(32, 32, 32, 103);
      q.reference(1.0, 0.0);
      core::smm_gemm(1.0, q.a.cview(), q.b.cview(), 0.0, q.c.view(), 2);
      if (!q.check(32)) status |= 1;
      ServiceOptions options;
      options.shards = 2;
      options.lanes = 1;
      options.threads_per_request = 1;
      SmmService svc(options);
      test::GemmProblem<double> r(24, 24, 24, 104);
      r.reference(1.0, 0.0);
      if (!svc.submit(1.0, r.a.cview(), r.b.cview(), 0.0, r.c.view(),
                      Priority::kHigh, /*deadline_ms=*/2000)
               .wait()
               .ok)
        status |= 2;
      if (!r.check(24)) status |= 4;
      svc.shutdown();
    } catch (...) {
      status |= 8;
    }
    _exit(status);
  }
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), 0);
  // Parent unaffected.
  core::smm_gemm(1.0, p.a.cview(), p.b.cview(), 0.0, p.c.view(), 2);
}

// ---- concurrent stress (TSan) ----------------------------------------------

TEST_F(FailoverTest, ConcurrentQuarantineReviveHedgeStress) {
  ServiceOptions options = failover_options(3, /*lanes=*/2);
  options.queue_depth = 128;
  options.failover.hedge_ms = 1;
  options.failover.quarantine_ms = 5;
  SmmService svc(options);

  std::atomic<bool> stop{false};
  std::atomic<int> ok{0};
  std::atomic<int> refused{0};
  const auto worker = [&](int seed) {
    test::GemmProblem<double> p(24, 24, 24, 200 + seed);
    for (int i = 0; !stop.load(std::memory_order_relaxed); ++i) {
      const Priority prio = i % 3 == 0   ? Priority::kHigh
                            : i % 3 == 1 ? Priority::kNormal
                                         : Priority::kLow;
      const long deadline = prio == Priority::kHigh ? 2000 : 0;
      const Result& r = svc.submit(1.0, p.a.cview(), p.b.cview(), 0.0,
                                   p.c.view(), prio, deadline)
                            .wait();
      if (r.ok)
        ok.fetch_add(1, std::memory_order_relaxed);
      else
        refused.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) workers.emplace_back(worker, t);

  // Fault driver: rolling quarantines (sometimes two at once — a
  // brownout window), then revives, against live traffic.
  for (int round = 0; round < 12; ++round) {
    const int a = round % 3;
    svc.quarantine_shard(a);
    if (round % 4 == 0) svc.quarantine_shard((a + 1) % 3);
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
    svc.revive_shard(a);
    svc.revive_shard((a + 1) % 3);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true);
  for (auto& w : workers) w.join();
  svc.drain();

  EXPECT_GT(ok.load(), 0);
  const SmmService::Stats s = svc.stats();
  EXPECT_EQ(s.queued, 0u);
  EXPECT_EQ(s.in_flight, 0u);
  EXPECT_GE(s.shard_quarantines, 12u);
  check_accounting(svc);
  // Every submission reached exactly one terminal.
  EXPECT_EQ(static_cast<std::size_t>(ok.load() + refused.load()),
            s.submitted);
  svc.shutdown();
}

}  // namespace
}  // namespace smm
