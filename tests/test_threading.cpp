#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "src/common/error.h"
#include "src/threading/barrier.h"
#include "src/threading/partition.h"
#include "src/threading/thread_pool.h"

namespace smm::par {
namespace {

TEST(Barrier, SingleParticipantNeverBlocks) {
  Barrier b(1);
  b.arrive_and_wait();
  b.arrive_and_wait();
}

TEST(Barrier, AllThreadsSeePhaseWrites) {
  constexpr int kThreads = 4;
  constexpr int kPhases = 20;
  Barrier barrier(kThreads);
  std::vector<int> counters(kPhases, 0);
  std::atomic<bool> torn{false};
  run_parallel(kThreads, [&](int tid) {
    for (int p = 0; p < kPhases; ++p) {
      // Everyone checks the previous phase completed fully.
      if (p > 0 && counters[p - 1] != kThreads) torn = true;
      barrier.arrive_and_wait();
      if (tid == p % kThreads) counters[p] = kThreads;  // one writer
      barrier.arrive_and_wait();
      if (counters[p] != kThreads) torn = true;
      barrier.arrive_and_wait();
    }
  });
  EXPECT_FALSE(torn.load());
}

TEST(Barrier, InvalidParticipantsThrows) {
  EXPECT_THROW(Barrier(0), smm::Error);
}

TEST(RunParallel, AllIdsRunOnce) {
  std::vector<std::atomic<int>> hits(16);
  run_parallel(16, [&](int tid) { hits[static_cast<std::size_t>(tid)]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(RunParallel, PropagatesException) {
  EXPECT_THROW(
      run_parallel(4,
                   [&](int tid) {
                     if (tid == 2) throw Error("boom");
                   }),
      smm::Error);
}

TEST(SplitRange, CoversWithoutOverlap) {
  for (index_t n : {0, 1, 7, 64, 100}) {
    for (int parts : {1, 3, 8}) {
      index_t covered = 0;
      index_t prev_end = 0;
      for (int p = 0; p < parts; ++p) {
        const Range r = split_range(n, parts, p);
        EXPECT_EQ(r.begin, prev_end);
        prev_end = r.end;
        covered += r.size();
      }
      EXPECT_EQ(covered, n);
      EXPECT_EQ(prev_end, n);
    }
  }
}

TEST(SplitRange, BalancedWithinOne) {
  for (int p = 0; p < 8; ++p) {
    const Range r = split_range(100, 8, p);
    EXPECT_GE(r.size(), 12);
    EXPECT_LE(r.size(), 13);
  }
}

TEST(SplitRangeAligned, QuantumBoundaries) {
  index_t covered = 0;
  for (int p = 0; p < 4; ++p) {
    const Range r = split_range_aligned(100, 4, p, 16);
    EXPECT_EQ(r.begin % 16, 0);
    covered += r.size();
  }
  EXPECT_EQ(covered, 100);
}

TEST(SplitRangeAligned, SmallExtentLeavesEmptyParts) {
  // 8 rows across 4 parts with quantum 8: one part gets all, rest empty.
  index_t total = 0;
  for (int p = 0; p < 4; ++p)
    total += split_range_aligned(8, 4, p, 8).size();
  EXPECT_EQ(total, 8);
}

TEST(Grid, SquareishWithMoreRows) {
  EXPECT_EQ(choose_grid(64).pr, 8);
  EXPECT_EQ(choose_grid(64).pc, 8);
  EXPECT_EQ(choose_grid(8).pr, 4);
  EXPECT_EQ(choose_grid(8).pc, 2);
  EXPECT_EQ(choose_grid(1).pr, 1);
  EXPECT_EQ(choose_grid(7).pr, 7);  // prime: 7x1
}

TEST(FactorPairs, Complete) {
  const auto pairs = factor_pairs(12);
  EXPECT_EQ(pairs.size(), 6u);  // 1,2,3,4,6,12
  for (const auto& [a, b] : pairs) EXPECT_EQ(a * b, 12);
}

TEST(Ways, ProductEqualsThreads) {
  for (int t : {1, 2, 8, 64}) {
    const Ways w =
        choose_ways(GemmShape{128, 2048, 2048}, t, 8, 12, 120, 1020);
    EXPECT_EQ(w.total(), t);
  }
}

TEST(Ways, PaperExampleM128) {
  // Section III-D: "Taking M = 128 as an example, BLIS can use 8 threads
  // to parallelize the jj loop and 8 threads to parallelize the j loop."
  const Ways w = choose_ways(GemmShape{128, 2048, 2048}, 64, 8, 12, 120, 1020);
  EXPECT_EQ(w.jc, 8);
  EXPECT_EQ(w.jr, 8);
  EXPECT_EQ(w.ic * w.ir, 1);
}

TEST(Ways, SmallMNotParallelizedOverM) {
  // Section III-D: when a dimension is particularly small, BLIS does not
  // parallelize it (M=64 with 64 threads must not use ic*ir = 64).
  const Ways w = choose_ways(GemmShape{64, 2048, 2048}, 64, 8, 12, 120, 1020);
  EXPECT_LE(w.ic * w.ir, 8);
  EXPECT_GE(w.jc * w.jr, 8);
}

TEST(Ways, TinyProblemStaysNearSequential) {
  const Ways w = choose_ways(GemmShape{8, 8, 8}, 64, 8, 12, 120, 1020);
  // Utilization collapses for every loop; the best the search can do is
  // keep oversubscription minimal — it must not spread M or N by 64.
  EXPECT_LE(w.ic * w.ir, 2);
}

}  // namespace
}  // namespace smm::par
