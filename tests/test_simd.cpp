#include <gtest/gtest.h>

#include "src/simd/vec.h"

namespace smm::simd {
namespace {

TEST(Vec, BroadcastAndLanes) {
  const Vec4f v = Vec4f::broadcast(2.5f);
  for (index_t i = 0; i < 4; ++i) EXPECT_EQ(v.lane(i), 2.5f);
  const Vec2d d = Vec2d::broadcast(-1.0);
  for (index_t i = 0; i < 2; ++i) EXPECT_EQ(d.lane(i), -1.0);
}

TEST(Vec, LoadStoreRoundTrip) {
  float src[4] = {1, 2, 3, 4};
  float dst[4] = {};
  Vec4f::load(src).store(dst);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(src[i], dst[i]);
}

TEST(Vec, UnalignedLoad) {
  float data[8] = {0, 1, 2, 3, 4, 5, 6, 7};
  const Vec4f v = Vec4f::load(data + 1);  // deliberately unaligned
  EXPECT_EQ(v.lane(0), 1.0f);
  EXPECT_EQ(v.lane(3), 4.0f);
}

TEST(Vec, PartialLoadZeroFills) {
  float src[2] = {5, 6};
  const Vec4f v = Vec4f::load_partial(src, 2);
  EXPECT_EQ(v.lane(0), 5.0f);
  EXPECT_EQ(v.lane(1), 6.0f);
  EXPECT_EQ(v.lane(2), 0.0f);
  EXPECT_EQ(v.lane(3), 0.0f);
}

TEST(Vec, PartialStoreLeavesTail) {
  float dst[4] = {9, 9, 9, 9};
  Vec4f::broadcast(1.0f).store_partial(dst, 2);
  EXPECT_EQ(dst[0], 1.0f);
  EXPECT_EQ(dst[1], 1.0f);
  EXPECT_EQ(dst[2], 9.0f);
}

TEST(Vec, StridedLoad) {
  float data[12];
  for (int i = 0; i < 12; ++i) data[i] = static_cast<float>(i);
  const Vec4f v = Vec4f::load_strided(data, 3, 4);
  EXPECT_EQ(v.lane(0), 0.0f);
  EXPECT_EQ(v.lane(1), 3.0f);
  EXPECT_EQ(v.lane(2), 6.0f);
  EXPECT_EQ(v.lane(3), 9.0f);
}

TEST(Vec, FmaMatchesScalar) {
  Vec4f acc = Vec4f::broadcast(1.0f);
  const float av[4] = {1, 2, 3, 4};
  const float bv[4] = {5, 6, 7, 8};
  const Vec4f a = Vec4f::load(av);
  const Vec4f b = Vec4f::load(bv);
  fma(acc, a, b);
  EXPECT_EQ(acc.lane(0), 6.0f);
  EXPECT_EQ(acc.lane(3), 33.0f);
}

TEST(Vec, FmaLaneBroadcastsOneElement) {
  Vec4f acc = Vec4f::zero();
  const float av[4] = {1, 2, 3, 4};
  const float bv[4] = {10, 20, 30, 40};
  const Vec4f a = Vec4f::load(av);
  const Vec4f b = Vec4f::load(bv);
  fma_lane<float, 2>(acc, a, b);  // acc += a * b[2]
  EXPECT_EQ(acc.lane(0), 30.0f);
  EXPECT_EQ(acc.lane(3), 120.0f);
}

TEST(Vec, FmaLaneRuntime) {
  Vec2d acc = Vec2d::zero();
  const double av[2] = {2, 3};
  const double bv[2] = {5, 7};
  const Vec2d a = Vec2d::load(av);
  const Vec2d b = Vec2d::load(bv);
  fma_lane_rt(acc, a, b, 1);
  EXPECT_EQ(acc.lane(0), 14.0);
  EXPECT_EQ(acc.lane(1), 21.0);
}

TEST(Vec, FmaScalar) {
  Vec4f acc = Vec4f::broadcast(1.0f);
  fma_scalar(acc, Vec4f::broadcast(2.0f), 3.0f);
  for (index_t i = 0; i < 4; ++i) EXPECT_EQ(acc.lane(i), 7.0f);
}

TEST(Vec, HorizontalSum) {
  const float vv[4] = {1, 2, 3, 4};
  const Vec4f v = Vec4f::load(vv);
  EXPECT_EQ(hsum(v), 10.0f);
  EXPECT_EQ(hsum(Vec2d::broadcast(2.5)), 5.0);
}

TEST(Vec, ArithmeticOperators) {
  const Vec4f a = Vec4f::broadcast(4.0f);
  const Vec4f b = Vec4f::broadcast(2.0f);
  EXPECT_EQ((a + b).lane(0), 6.0f);
  EXPECT_EQ((a - b).lane(1), 2.0f);
  EXPECT_EQ((a * b).lane(2), 8.0f);
}

}  // namespace
}  // namespace smm::simd
