// Exhaustive sweep over every registered kernel: native correctness
// against the scalar oracle (full tile and masked edge, f32 and f64), and
// schedule-construction invariants for both precisions. Parameterized
// over the whole registry so newly registered kernels are covered
// automatically.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/common/rng.h"
#include "src/kernels/registry.h"
#include "src/kernels/schedule.h"

namespace smm::kern {
namespace {

std::vector<KernelId> all_kernel_ids() {
  std::vector<KernelId> out;
  const auto& reg = KernelRegistry::instance();
  for (KernelId id = 0; id < reg.size(); ++id) out.push_back(id);
  return out;
}

template <typename T>
void oracle(index_t kc, T alpha, T beta, const KernelOperands<T>& ops,
            index_t mr, index_t nr, std::vector<T>& c_ref, index_t c_cs) {
  for (index_t j = 0; j < nr; ++j) {
    for (index_t i = 0; i < mr; ++i) {
      double acc = 0;
      for (index_t k = 0; k < kc; ++k)
        acc += static_cast<double>(ops.a[a_offset(ops, i, k)]) *
               static_cast<double>(ops.b[b_offset(ops, k, j)]);
      const auto idx = static_cast<std::size_t>(i + j * c_cs);
      const double base =
          beta == T(0) ? 0.0
                       : static_cast<double>(beta) *
                             static_cast<double>(c_ref[idx]);
      c_ref[idx] = static_cast<T>(static_cast<double>(alpha) * acc + base);
    }
  }
}

template <typename T>
void check_kernel(KernelId id, bool edge_invocation) {
  const auto& info = KernelRegistry::instance().info(id);
  const index_t mr = info.mr;
  const index_t nr = info.nr;
  const index_t kc = 13;
  Rng rng(static_cast<std::uint64_t>(id) * 7919 + (edge_invocation ? 1 : 0));
  std::vector<T> a(static_cast<std::size_t>(mr * kc));
  std::vector<T> b(static_cast<std::size_t>(nr * kc));
  std::vector<T> c(static_cast<std::size_t>(mr * nr));
  for (auto& v : a) v = static_cast<T>(rng.uniform(-1, 1));
  for (auto& v : b) v = static_cast<T>(rng.uniform(-1, 1));
  for (auto& v : c) v = static_cast<T>(rng.uniform(-1, 1));
  std::vector<T> c_ref = c;

  KernelOperands<T> ops;
  set_packed_a(ops, a.data(), mr);
  set_packed_b(ops, b.data(), nr);
  ops.c = c.data();
  ops.c_rs = 1;
  ops.c_cs = mr;

  const index_t um = edge_invocation ? std::max<index_t>(1, mr - 1) : mr;
  const index_t un = edge_invocation ? std::max<index_t>(1, nr - 1) : nr;
  oracle<T>(kc, T(1.5), T(-0.5), ops, um, un, c_ref, mr);
  // Edge invocations go through the generic kernel exactly like the
  // native executor routes them.
  if (um == mr && un == nr) {
    kernel_fn<T>(id)(kc, T(1.5), T(-0.5), ops, um, un);
  } else {
    generic_microkernel<T>(kc, T(1.5), T(-0.5), ops, um, un);
  }
  double worst = 0;
  for (std::size_t i = 0; i < c.size(); ++i)
    worst = std::max(worst, std::abs(static_cast<double>(c[i]) -
                                     static_cast<double>(c_ref[i])));
  EXPECT_LE(worst, 1e-4) << info.name << (edge_invocation ? " edge" : "");
}

class EveryKernel : public ::testing::TestWithParam<KernelId> {};

TEST_P(EveryKernel, FullTileF32) { check_kernel<float>(GetParam(), false); }
TEST_P(EveryKernel, FullTileF64) { check_kernel<double>(GetParam(), false); }
TEST_P(EveryKernel, MaskedEdgeF32) { check_kernel<float>(GetParam(), true); }

TEST_P(EveryKernel, SchedulesBuildForBothPrecisions) {
  const KernelId id = GetParam();
  const auto& info = KernelRegistry::instance().info(id);
  for (const bool f64 : {false, true}) {
    const ScheduleSpec spec =
        f64 ? kernel_spec<double>(id) : kernel_spec<float>(id);
    const KernelSchedule sched = build_schedule(spec);
    EXPECT_EQ(sched.mr, info.mr);
    EXPECT_EQ(sched.nr, info.nr);
    EXPECT_GT(sched.body.size(), 0u);
    EXPECT_GT(sched.epilogue.size(), 0u);
    // Useful-FMA accounting: ceil(mr/lanes) * nr per unrolled iteration.
    const int avec = (info.mr + spec.lanes - 1) / spec.lanes;
    EXPECT_EQ(sched.fma_per_body, avec * info.nr * sched.unroll)
        << info.name << (f64 ? " f64" : " f32");
    // Every register index must fit the renaming table.
    for (const auto& u : sched.body) {
      EXPECT_LT(u.dst, 160);
      EXPECT_LT(u.src1, 160);
      EXPECT_LT(u.src2, 160);
    }
  }
}

TEST_P(EveryKernel, InfoConsistent) {
  const auto& info = KernelRegistry::instance().info(GetParam());
  EXPECT_GT(info.mr, 0);
  EXPECT_GT(info.nr, 0);
  EXPECT_NE(info.f32, nullptr);
  EXPECT_NE(info.f64, nullptr);
  EXPECT_EQ(info.sched.mr, info.mr);
  EXPECT_EQ(info.sched.nr, info.nr);
  // Eq. 4: every registered kernel must fit the register file (f32).
  EXPECT_LE(info.mr * info.nr, 30 * 4) << info.name;
}

INSTANTIATE_TEST_SUITE_P(Registry, EveryKernel,
                         ::testing::ValuesIn(all_kernel_ids()),
                         [](const auto& info) {
                           std::string name =
                               KernelRegistry::instance()
                                   .info(info.param)
                                   .name;
                           for (auto& ch : name)
                             if (ch == '/' || ch == '-') ch = '_';
                           return name;
                         });

}  // namespace
}  // namespace smm::kern
