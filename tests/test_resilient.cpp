// smm::resilient tests (DESIGN.md §16): the exhaustive ErrorCode ->
// RetryClass table, token-bucket retry-budget accounting, the AIMD
// limiter's decrease/probe cycle, retries that recover injected transient
// faults (idempotent with beta != 0 — C is restored from the submit-time
// snapshot before every resubmission), the O(µs) dry-budget fast-fail, the
// deadline pricing that refuses to resubmit doomed work, env-knob
// parsing, and a TSan-clean concurrent execute/retry/cancel stress.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "src/common/error.h"
#include "src/resilient/resilient.h"
#include "src/resilient/retry_class.h"
#include "src/robust/fault_injection.h"
#include "src/robust/health.h"
#include "src/service/smm_service.h"
#include "src/threading/thread_pool.h"
#include "tests/test_helpers.h"

namespace smm {
namespace {

using resilient::AdaptiveLimiter;
using resilient::classify;
using resilient::ResilientClient;
using resilient::ResilientOptions;
using resilient::RetryBudget;
using resilient::RetryClass;
using robust::FaultInjector;
using robust::FaultSite;
using robust::FaultSpec;
using robust::ScopedFault;
using service::Priority;
using service::Result;
using service::ServiceOptions;
using service::SmmService;

class ResilientTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::instance().disarm_all();
    heal_pool();
  }
  void TearDown() override {
    FaultInjector::instance().disarm_all();
    heal_pool();
  }
  static void heal_pool() {
    for (int i = 0; i < 2; ++i) par::run_parallel(2, [](int) {});
  }
};

// ---- classification table --------------------------------------------------

// The compile-time guarantee the table exists for: classify is constexpr
// and total over the enum (retry_class.h static_asserts exhaustiveness
// against kErrorCodeCount, so an unclassified new code fails the build).
static_assert(classify(ErrorCode::kOverloaded) ==
              RetryClass::kRetryableAfterBackoff);
static_assert(classify(ErrorCode::kWorkerPanic) == RetryClass::kRetryable);
static_assert(classify(ErrorCode::kBadShape) == RetryClass::kFatal);

TEST(RetryClassTest, EveryCodeHasAClass) {
  for (int i = 0; i < kErrorCodeCount; ++i) {
    const RetryClass c = classify(static_cast<ErrorCode>(i));
    EXPECT_TRUE(c == RetryClass::kRetryable ||
                c == RetryClass::kRetryableAfterBackoff ||
                c == RetryClass::kFatal)
        << "code " << to_string(static_cast<ErrorCode>(i));
  }
}

TEST(RetryClassTest, SemanticsSpotChecks) {
  // Transient one-offs: retry immediately.
  EXPECT_EQ(classify(ErrorCode::kWorkerPanic), RetryClass::kRetryable);
  EXPECT_EQ(classify(ErrorCode::kPoolTimeout), RetryClass::kRetryable);
  EXPECT_EQ(classify(ErrorCode::kChecksumMismatch), RetryClass::kRetryable);
  // Capacity signals: back off first or the retry amplifies the spike.
  EXPECT_EQ(classify(ErrorCode::kOverloaded),
            RetryClass::kRetryableAfterBackoff);
  EXPECT_EQ(classify(ErrorCode::kAlloc), RetryClass::kRetryableAfterBackoff);
  EXPECT_EQ(classify(ErrorCode::kArenaExhausted),
            RetryClass::kRetryableAfterBackoff);
  // Deterministic/terminal: never retry.
  EXPECT_EQ(classify(ErrorCode::kPrecondition), RetryClass::kFatal);
  EXPECT_EQ(classify(ErrorCode::kAlias), RetryClass::kFatal);
  EXPECT_EQ(classify(ErrorCode::kNonFinite), RetryClass::kFatal);
  EXPECT_EQ(classify(ErrorCode::kCancelled), RetryClass::kFatal);
  EXPECT_EQ(classify(ErrorCode::kDeadlineExceeded), RetryClass::kFatal);
  EXPECT_EQ(classify(ErrorCode::kShuttingDown), RetryClass::kFatal);
  // The budget refusal must not re-enter the retry loop it guards.
  EXPECT_EQ(classify(ErrorCode::kRetryBudgetExhausted), RetryClass::kFatal);
}

// ---- retry budget ----------------------------------------------------------

TEST(RetryBudgetTest, TokensEarnSpendAndClamp) {
  RetryBudget bucket(/*initial_tokens=*/0.0);
  EXPECT_FALSE(bucket.try_acquire());  // dry from the start
  // Four first attempts at a 25% fraction mint exactly one retry token
  // (0.25 is exactly representable; 10 x 0.1 would land at 0.999...).
  for (int i = 0; i < 3; ++i) bucket.earn(0.25, 8.0);
  EXPECT_FALSE(bucket.try_acquire());
  bucket.earn(0.25, 8.0);
  EXPECT_TRUE(bucket.try_acquire());
  EXPECT_FALSE(bucket.try_acquire());  // spent
  // The cap bounds the burst no matter how much traffic minted.
  for (int i = 0; i < 10000; ++i) bucket.earn(0.25, 8.0);
  EXPECT_NEAR(bucket.tokens(), 8.0, 1e-9);
  int spends = 0;
  while (bucket.try_acquire()) ++spends;
  EXPECT_EQ(spends, 8);
}

TEST(RetryBudgetTest, StartsWithItsInitialAllowance) {
  RetryBudget bucket(2.0);
  EXPECT_TRUE(bucket.try_acquire());
  EXPECT_TRUE(bucket.try_acquire());
  EXPECT_FALSE(bucket.try_acquire());
  bucket.reset(1.0);
  EXPECT_TRUE(bucket.try_acquire());
  EXPECT_FALSE(bucket.try_acquire());
}

// ---- AIMD limiter ----------------------------------------------------------

TEST(AdaptiveLimiterTest, MultiplicativeDecreaseAndAdditiveProbe) {
  robust::health().reset();
  AdaptiveLimiter::Options options;
  options.min_limit = 2;
  options.max_limit = 32;
  options.decrease_factor = 0.5;
  options.dip_cooldown_us = 0;  // every overload dips (no episode merge)
  AdaptiveLimiter limiter(options);
  EXPECT_EQ(limiter.limit(), 32);

  limiter.on_overload();
  EXPECT_EQ(limiter.limit(), 16);
  limiter.on_overload();
  limiter.on_overload();
  limiter.on_overload();
  EXPECT_EQ(limiter.limit(), 2);
  limiter.on_overload();  // clamped at min_limit
  EXPECT_EQ(limiter.limit(), 2);
  EXPECT_EQ(limiter.dips(), 5u);
  EXPECT_EQ(robust::health().snapshot().limiter_dips, 5u);

  // Additive increase: ~limit successes buy one slot.
  for (int i = 0; i < 3; ++i) limiter.on_success();
  EXPECT_EQ(limiter.limit(), 3);
  robust::health().reset();
}

TEST(AdaptiveLimiterTest, CooldownMergesOneCongestionEpisode) {
  AdaptiveLimiter::Options options;
  options.max_limit = 32;
  options.dip_cooldown_us = 60'000'000;  // one dip per test run, at most
  AdaptiveLimiter limiter(options);
  limiter.on_overload();
  limiter.on_overload();
  limiter.on_overload();
  EXPECT_EQ(limiter.limit(), 16);  // the burst dipped once
  EXPECT_EQ(limiter.dips(), 1u);
}

TEST(AdaptiveLimiterTest, AcquireBlocksAtTheWindowAndTimesOut) {
  AdaptiveLimiter::Options options;
  options.min_limit = 1;
  options.max_limit = 1;
  AdaptiveLimiter limiter(options);
  const auto now = std::chrono::steady_clock::now();
  ASSERT_TRUE(limiter.acquire(now, /*has_deadline=*/false));
  EXPECT_EQ(limiter.in_flight(), 1);
  // Window full: a deadlined acquire gives up (and takes no slot).
  EXPECT_FALSE(limiter.acquire(
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5),
      /*has_deadline=*/true));
  EXPECT_EQ(limiter.in_flight(), 1);
  // A release hands the slot to a blocked acquirer.
  std::thread waiter([&] {
    ASSERT_TRUE(limiter.acquire(std::chrono::steady_clock::now() +
                                    std::chrono::seconds(10),
                                /*has_deadline=*/true));
    limiter.release();
  });
  limiter.release();
  waiter.join();
  EXPECT_EQ(limiter.in_flight(), 0);
}

TEST(AdaptiveLimiterTest, NonAdaptivePinsTheLimit) {
  AdaptiveLimiter::Options options;
  options.max_limit = 8;
  options.adaptive = false;
  AdaptiveLimiter limiter(options);
  limiter.on_overload();
  limiter.on_overload();
  EXPECT_EQ(limiter.limit(), 8);
  EXPECT_EQ(limiter.dips(), 0u);
}

// ---- env knobs -------------------------------------------------------------

TEST(ResilientEnvTest, KnobsApplyAndMalformedValuesAreIgnored) {
  ::setenv("SMMKIT_RETRY_MAX_ATTEMPTS", "7", 1);
  ::setenv("SMMKIT_BACKOFF_BASE_US", "750", 1);
  ::setenv("SMMKIT_RETRY_BUDGET", "0.25", 1);
  ::setenv("SMMKIT_CLIENT_LIMIT", "12", 1);
  ResilientOptions opts = resilient::resilient_options_from_env();
  EXPECT_EQ(opts.max_attempts, 7);
  EXPECT_EQ(opts.backoff_base_us, 750);
  EXPECT_NEAR(opts.retry_budget_fraction, 0.25, 1e-12);
  EXPECT_EQ(opts.max_concurrency, 12);

  // Malformed values are ignored (uniform common/env policy): the
  // previous value survives, nothing throws at startup.
  ::setenv("SMMKIT_RETRY_MAX_ATTEMPTS", "seven", 1);
  ::setenv("SMMKIT_BACKOFF_BASE_US", "-5", 1);
  ::setenv("SMMKIT_RETRY_BUDGET", "1.5", 1);  // out of [0,1]
  ::setenv("SMMKIT_CLIENT_LIMIT", "12x", 1);  // trailing garbage
  opts = resilient::resilient_options_from_env();
  EXPECT_EQ(opts.max_attempts, 4);
  EXPECT_EQ(opts.backoff_base_us, 200);
  EXPECT_NEAR(opts.retry_budget_fraction, 0.1, 1e-12);
  EXPECT_EQ(opts.max_concurrency, 0);

  ::unsetenv("SMMKIT_RETRY_MAX_ATTEMPTS");
  ::unsetenv("SMMKIT_BACKOFF_BASE_US");
  ::unsetenv("SMMKIT_RETRY_BUDGET");
  ::unsetenv("SMMKIT_CLIENT_LIMIT");
}

// ---- end-to-end retries ----------------------------------------------------

TEST_F(ResilientTest, RetryRecoversATransientWorkerPanic) {
  robust::health().reset();
  ServiceOptions options;
  options.shards = 1;
  options.lanes = 1;
  options.threads_per_request = 2;  // route through the worker pool
  SmmService svc(options);
  // Warm the shape with a throwaway problem so the injected failure
  // lands in execution, not plan build.
  {
    test::GemmProblem<double> warm(64, 64, 64, 44);
    ASSERT_TRUE(svc.submit(1.0, warm.a.cview(), warm.b.cview(), 0.0,
                           warm.c.view())
                    .wait()
                    .ok);
  }
  test::GemmProblem<double> fresh(64, 64, 64, 301);
  fresh.reference(1.0, 0.0);

  RetryBudget bucket(4.0);
  ResilientOptions ropts;
  ropts.backoff_base_us = 50;
  ResilientClient client(svc, ropts, &bucket);
  ScopedFault fault(FaultSite::kWorkerThrow,
                    FaultSpec{/*fire_after=*/0, /*max_fires=*/1});
  const Result r = client.execute(1.0, fresh.a.cview(), fresh.b.cview(), 0.0,
                                  fresh.c.view());
  ASSERT_TRUE(r.ok) << r.message;
  EXPECT_TRUE(fresh.check(64));
  const auto stats = client.stats();
  EXPECT_GE(stats.retries, 1u);
  EXPECT_GE(stats.retry_successes, 1u);
  const auto h = robust::health().snapshot();
  EXPECT_GE(h.retry_attempts, 1u);
  EXPECT_GE(h.retry_successes, 1u);
  EXPECT_LE(h.retry_successes, h.retry_attempts);
  svc.shutdown();
  robust::health().reset();
}

TEST_F(ResilientTest, RetryIsIdempotentWithNonZeroBeta) {
  ServiceOptions options;
  options.shards = 1;
  options.lanes = 1;
  options.threads_per_request = 2;
  SmmService svc(options);
  // Warm the shape with a throwaway problem so the fault cannot land in
  // plan build (where it would fail both attempts the same way).
  {
    test::GemmProblem<double> warm(48, 48, 48, 55);
    ASSERT_TRUE(svc.submit(1.0, warm.a.cview(), warm.b.cview(), 0.0,
                           warm.c.view())
                    .wait()
                    .ok);
  }
  test::GemmProblem<double> p(48, 48, 48, 302);
  p.reference(1.25, 0.5);  // oracle reads the entry-time C exactly once

  RetryBudget bucket(4.0);
  ResilientOptions ropts;
  ropts.backoff_base_us = 50;
  ResilientClient client(svc, ropts, &bucket);
  ScopedFault fault(FaultSite::kWorkerThrow,
                    FaultSpec{/*fire_after=*/0, /*max_fires=*/1});
  const Result r =
      client.execute(1.25, p.a.cview(), p.b.cview(), 0.5, p.c.view());
  ASSERT_TRUE(r.ok) << r.message;
  EXPECT_GE(client.stats().retries, 1u);
  // One application of alpha*A*B + beta*C0, not two: the client restored
  // the snapshot before resubmitting, so beta read the original C.
  EXPECT_TRUE(p.check(48));
  svc.shutdown();
}

TEST_F(ResilientTest, DryBudgetFailsFastWithoutBackoffSleep) {
  robust::health().reset();
  ServiceOptions options;
  options.shards = 1;
  options.lanes = 1;
  options.threads_per_request = 2;
  SmmService svc(options);
  test::GemmProblem<double> p(48, 48, 48, 303);
  ASSERT_TRUE(
      svc.submit(1.0, p.a.cview(), p.b.cview(), 0.0, p.c.view()).wait().ok);

  RetryBudget dry(0.0);
  ResilientOptions ropts;
  ropts.retry_budget_fraction = 0.0;  // nothing mints; the bucket stays dry
  ropts.backoff_base_us = 200'000;    // 200ms — a sleep would be visible
  ropts.backoff_cap_us = 400'000;
  ResilientClient client(svc, ropts, &dry);
  ScopedFault fault(FaultSite::kWorkerThrow,
                    FaultSpec{/*fire_after=*/0, /*max_fires=*/64});
  const auto t0 = std::chrono::steady_clock::now();
  const Result r =
      client.execute(1.0, p.a.cview(), p.b.cview(), 0.0, p.c.view());
  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.code, ErrorCode::kRetryBudgetExhausted) << r.message;
  // The refusal is typed and O(µs) past the failed attempt itself: the
  // budget gate runs before any backoff sleep (200ms here would fail
  // this bound on its own).
  EXPECT_LT(elapsed_ms, 100);
  EXPECT_GE(client.stats().budget_exhausted, 1u);
  EXPECT_EQ(client.stats().retries, 0u);
  EXPECT_GE(robust::health().snapshot().retry_budget_exhausted, 1u);
  svc.shutdown();
  robust::health().reset();
}

TEST_F(ResilientTest, DeadlinePricingRefusesDoomedResubmission) {
  ServiceOptions options;
  options.shards = 1;
  options.lanes = 1;
  options.queue_depth = 1;
  SmmService svc(options);
  // Saturate the single lane and its one queue slot with high-priority
  // blockers so a kNormal arrival is shed with kOverloaded — the
  // kRetryableAfterBackoff class whose planned sleep the pricing gate
  // weighs against the remaining deadline.
  test::GemmProblem<double> big1(256, 256, 256, 310);
  test::GemmProblem<double> big2(256, 256, 256, 311);
  service::Ticket b1 = svc.submit(1.0, big1.a.cview(), big1.b.cview(), 0.0,
                                  big1.c.view(), Priority::kHigh);
  service::Ticket b2 = svc.submit(1.0, big2.a.cview(), big2.b.cview(), 0.0,
                                  big2.c.view(), Priority::kHigh);

  RetryBudget bucket(16.0);
  ResilientOptions ropts;
  ropts.max_attempts = 10;
  // Every retry would sleep exactly 40ms (cap pins the jitter), so a
  // 25ms deadline can afford none of them once the first attempt has
  // been refused: the pricing gate must return the last error instead
  // of sleeping into certain lateness.
  ropts.backoff_base_us = 40'000;
  ropts.backoff_cap_us = 40'000;
  ResilientClient client(svc, ropts, &bucket);
  test::GemmProblem<double> p(48, 48, 48, 304);
  const auto t0 = std::chrono::steady_clock::now();
  const Result r = client.execute(1.0, p.a.cview(), p.b.cview(), 0.0,
                                  p.c.view(), Priority::kNormal,
                                  /*deadline_ms=*/25);
  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.code, ErrorCode::kOverloaded) << r.message;
  EXPECT_GE(client.stats().deadline_gated, 1u);
  EXPECT_EQ(client.stats().retries, 0u);  // never resubmitted doomed work
  EXPECT_LT(elapsed_ms, 200) << "retry loop overran the deadline budget";
  b1.wait();
  b2.wait();
  svc.shutdown();
}

// ---- health invariant + concurrent stress ----------------------------------

TEST_F(ResilientTest, ConcurrentExecuteRetryCancelStress) {
  robust::health().reset();
  ServiceOptions options;
  options.shards = 1;
  options.lanes = 2;
  options.queue_depth = 16;
  options.threads_per_request = 2;
  SmmService svc(options);
  // Warm up.
  {
    test::GemmProblem<double> warm(32, 32, 32, 77);
    ASSERT_TRUE(svc.submit(1.0, warm.a.cview(), warm.b.cview(), 0.0,
                           warm.c.view())
                    .wait()
                    .ok);
  }
  RetryBudget bucket(8.0);
  ResilientOptions ropts;
  ropts.max_attempts = 3;
  ropts.backoff_base_us = 100;
  ropts.backoff_cap_us = 500;
  ResilientClient client(svc, ropts, &bucket);

  constexpr int kClients = 3;
  constexpr int kIters = 40;
  std::atomic<std::size_t> ok{0}, failed_unexpected{0};
  {
    // Intermittent worker faults while resilient executes race raw
    // submit+cancel traffic on the same service. Every failure must
    // carry one of the expected typed codes — never a torn result.
    ScopedFault fault(FaultSite::kWorkerThrow,
                      FaultSpec{/*fire_after=*/5, /*max_fires=*/40});
    std::vector<std::thread> threads;
    for (int w = 0; w < kClients; ++w) {
      threads.emplace_back([&, w] {
        test::GemmProblem<double> p(32, 32, 32,
                                    500 + static_cast<std::uint64_t>(w));
        for (int i = 0; i < kIters; ++i) {
          const Result r = client.execute(1.0, p.a.cview(), p.b.cview(),
                                          0.0, p.c.view(),
                                          static_cast<Priority>(i % 3),
                                          /*deadline_ms=*/200);
          if (r.ok) {
            ok.fetch_add(1);
          } else if (r.code != ErrorCode::kWorkerPanic &&
                     r.code != ErrorCode::kOverloaded &&
                     r.code != ErrorCode::kDeadlineExceeded &&
                     r.code != ErrorCode::kCancelled &&
                     r.code != ErrorCode::kRetryBudgetExhausted) {
            failed_unexpected.fetch_add(1);
          }
        }
      });
    }
    // Raw ticket traffic with cancels, sharing the service.
    std::thread canceller([&] {
      test::GemmProblem<double> p(32, 32, 32, 999);
      for (int i = 0; i < 2 * kIters; ++i) {
        service::Ticket t = svc.submit(1.0, p.a.cview(), p.b.cview(), 0.0,
                                       p.c.view(), Priority::kLow,
                                       /*deadline_ms=*/100);
        if (i % 2 == 0) t.cancel();
        t.wait();
      }
    });
    for (auto& t : threads) t.join();
    canceller.join();
  }
  EXPECT_EQ(failed_unexpected.load(), 0u);
  // With the fault disarmed the client must recover — the breaker may
  // still be open for a while (kOverloaded refusals), but a fresh
  // execute eventually succeeds. A dead-ended client here would mean
  // the storm left the stack wedged.
  heal_pool();
  bucket.reset(8.0);
  bool recovered = false;
  test::GemmProblem<double> p(32, 32, 32, 1234);
  p.reference(1.0, 0.0);
  const auto recover_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < recover_deadline) {
    const Result r =
        client.execute(1.0, p.a.cview(), p.b.cview(), 0.0, p.c.view());
    if (r.ok) {
      recovered = true;
      EXPECT_TRUE(p.check(32));
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(recovered) << "client never recovered after the fault window";
  svc.shutdown();
  const auto h = robust::health().snapshot();
  EXPECT_LE(h.retry_successes, h.retry_attempts);
  robust::health().reset();
  (void)ok;
}

}  // namespace
}  // namespace smm
