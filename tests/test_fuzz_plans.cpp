// Plan-level fuzzing: random strategies x random shapes x random
// alpha/beta/layout/thread combinations, each plan validated, priced and
// executed against the oracle. The broad net behind the targeted suites.
#include <gtest/gtest.h>

#include "src/smmkit.h"
#include "tests/test_helpers.h"

namespace smm {
namespace {

const libs::GemmStrategy* pick_strategy(index_t i) {
  switch (i % 5) {
    case 0: return &libs::openblas_like();
    case 1: return &libs::blis_like();
    case 2: return &libs::blasfeo_like();
    case 3: return &libs::eigen_like();
    default: return &core::reference_smm();
  }
}

TEST(FuzzPlans, HundredRandomConfigurations) {
  Rng rng(0xF00DF00D);
  sim::PlanPricer pricer(sim::phytium2000p());
  const auto& machine = pricer.machine();
  for (int trial = 0; trial < 100; ++trial) {
    const libs::GemmStrategy* s = pick_strategy(rng.next_index(5));
    const index_t m = 1 + rng.next_index(80);
    const index_t n = 1 + rng.next_index(80);
    const index_t k = 1 + rng.next_index(80);
    const float alpha = static_cast<float>(rng.uniform(-2, 2));
    const float beta =
        trial % 4 == 0 ? 0.0f : static_cast<float>(rng.uniform(-1, 1));
    const int threads =
        s->traits().max_threads == 1 ? 1 : 1 + static_cast<int>(rng.next_index(4));
    const Trans ta = rng.next_index(2) == 0 ? Trans::kNoTrans : Trans::kTrans;
    const Trans tb = rng.next_index(2) == 0 ? Trans::kNoTrans : Trans::kTrans;

    // Plan structure: validates, prices within physical bounds.
    const plan::GemmPlan p =
        s->make_plan({m, n, k}, plan::ScalarType::kF32, threads);
    ASSERT_NO_THROW(p.validate());
    const sim::SimReport r = pricer.price(p);
    ASSERT_GT(r.makespan_cycles, 0.0);
    ASSERT_LE(r.efficiency(machine), 1.0);
    const plan::PlanStats stats = plan::analyze(p);
    ASSERT_DOUBLE_EQ(stats.useful_flops, (GemmShape{m, n, k}).flops());

    // Native execution with op() views matches the oracle.
    Matrix<float> a(ta == Trans::kTrans ? k : m, ta == Trans::kTrans ? m : k);
    Matrix<float> b(tb == Trans::kTrans ? n : k, tb == Trans::kTrans ? k : n);
    Matrix<float> c(m, n), c_ref(m, n);
    a.fill_random(rng);
    b.fill_random(rng);
    c.fill_random(rng);
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < m; ++i) c_ref(i, j) = c(i, j);
    libs::naive_gemm(alpha, apply_trans(ta, a.cview()),
                     apply_trans(tb, b.cview()), beta, c_ref.view());
    libs::run(*s, ta, tb, alpha, a.cview(), b.cview(), beta, c.view(),
              threads);
    ASSERT_LE(max_abs_diff(c.cview(), c_ref.cview()),
              gemm_tolerance<float>(k) * 8)
        << "trial " << trial << ": " << s->traits().name << " " << m << "x"
        << n << "x" << k << " " << to_string(ta) << to_string(tb)
        << " alpha=" << alpha << " beta=" << beta << " t=" << threads;
  }
}

TEST(FuzzPlans, DegenerateDimensionLattice) {
  // Every strategy over the {0,1} x {0,1} x {0,1} dimension lattice.
  for (index_t m : {0, 1})
    for (index_t n : {0, 1})
      for (index_t k : {0, 1})
        for (index_t si = 0; si < 5; ++si) {
          const libs::GemmStrategy* s = pick_strategy(si);
          Matrix<float> a(m, k), b(k, n), c(m, n), c_ref(m, n);
          a.fill(2.0f);
          b.fill(3.0f);
          c.fill(1.0f);
          c_ref.fill(1.0f);
          libs::naive_gemm(1.0f, a.cview(), b.cview(), 0.5f, c_ref.view());
          ASSERT_NO_THROW(libs::run(*s, 1.0f, a.cview(), b.cview(), 0.5f,
                                    c.view()))
              << s->traits().name << " " << m << n << k;
          ASSERT_LE(max_abs_diff(c.cview(), c_ref.cview()), 1e-6)
              << s->traits().name << " " << m << n << k;
        }
}

}  // namespace
}  // namespace smm
