// The paper's closed-form models: Eqs. 1-5 and the machine peak.
#include <gtest/gtest.h>

#include "src/model/equations.h"
#include "src/model/kernel_space.h"
#include "src/model/prediction.h"
#include "src/model/peak.h"
#include "src/sim/machine.h"

namespace smm::model {
namespace {

TEST(Equations, WidthsMatchPaper) {
  const auto machine = sim::phytium2000p();
  // "Load_width is 16/sizeof(float) = 4"; "FMA_width ... = 8".
  EXPECT_EQ(load_width(machine, 4), 4);
  EXPECT_EQ(fma_width(machine, 4), 8);
  EXPECT_EQ(load_width(machine, 8), 2);
  EXPECT_EQ(fma_width(machine, 8), 4);
}

TEST(Equations, P2CClosedForm) {
  // Eq. 3: P2C = (M+N)/(2MN).
  EXPECT_DOUBLE_EQ(p2c(10, 10), 20.0 / 200.0);
  EXPECT_DOUBLE_EQ(p2c(2, 200), 202.0 / 800.0);
}

TEST(Equations, P2CIdentityWithCounts) {
  // Eq. 1 / Eq. 2 tracks Eq. 3's closed form up to the constant factor 4
  // the paper's printed form absorbs (see equations.h); the shape — every
  // conclusion of Section III-A — is identical.
  const auto machine = sim::phytium2000p();
  const index_t lw = load_width(machine, 4);
  const index_t fw = fma_width(machine, 4);
  for (const auto& s :
       {GemmShape{5, 7, 9}, GemmShape{40, 2, 100}, GemmShape{128, 128, 8}}) {
    EXPECT_NEAR(p2c_from_counts(s, lw, fw), 4.0 * p2c(s.m, s.n), 1e-12);
  }
}

TEST(Equations, P2CIndependentOfK) {
  // Section III-A: "P2C is independent of K" — small-K packing is free.
  const auto machine = sim::phytium2000p();
  const index_t lw = load_width(machine, 4);
  const index_t fw = fma_width(machine, 4);
  const double a = p2c_from_counts({64, 64, 4}, lw, fw);
  const double b = p2c_from_counts({64, 64, 512}, lw, fw);
  EXPECT_NEAR(a, b, 1e-12);
}

TEST(Equations, P2CGrowsAsMShrinks) {
  EXPECT_GT(p2c(2, 100), p2c(16, 100));
  EXPECT_GT(p2c(16, 100), p2c(100, 100));
}

TEST(Equations, RegisterConstraint) {
  // Eq. 4: mr*nr/4 <= 30 for f32.
  EXPECT_TRUE(kernel_fits_registers(16, 4, 4));   // 16 registers
  EXPECT_TRUE(kernel_fits_registers(8, 12, 4));   // 24
  EXPECT_TRUE(kernel_fits_registers(12, 10, 4));  // 30: exactly the bound
  EXPECT_FALSE(kernel_fits_registers(16, 8, 4));  // 32 > 30
  EXPECT_EQ(c_tile_registers(12, 10, 4), 30);
}

TEST(Equations, CmrMatchesPaperExamples) {
  // Eq. 5: CMR = 2*mr*nr/(mr+nr).
  EXPECT_DOUBLE_EQ(cmr(8, 12), 2.0 * 96 / 20);
  EXPECT_DOUBLE_EQ(cmr(16, 4), 2.0 * 64 / 20);
  // Squarer tiles have better CMR at equal area.
  EXPECT_GT(cmr(8, 8), cmr(16, 4));
}

TEST(Peak, PhytiumNumbers) {
  const auto machine = sim::phytium2000p();
  // 64 cores x 2.2 GHz x 4 dp flops/cycle = 563.2 dp Gflops (Section II-A).
  EXPECT_NEAR(machine.peak_gflops(8, 64), 563.2, 1e-9);
  // Single precision doubles the lanes.
  EXPECT_NEAR(machine.peak_gflops(4, 64), 1126.4, 1e-9);
  EXPECT_NEAR(machine.peak_gflops(4, 1), 17.6, 1e-9);
}

TEST(Peak, EfficiencyAndIdealCycles) {
  const auto machine = sim::phytium2000p();
  const double flops = 1e6;
  const double ideal = ideal_cycles(machine, 4, 1, flops);
  EXPECT_NEAR(efficiency(machine, 4, 1, flops, ideal), 1.0, 1e-12);
  EXPECT_NEAR(efficiency(machine, 4, 1, flops, 2 * ideal), 0.5, 1e-12);
  EXPECT_NEAR(gflops_from_cycles(flops, ideal, machine.core.freq_ghz),
              machine.peak_gflops(4, 1), 1e-9);
}

TEST(KernelSpace, AllCandidatesFeasible) {
  for (const auto& c : enumerate_kernels(4)) {
    EXPECT_TRUE(kernel_fits_registers(c.mr, c.nr, 4));
    EXPECT_EQ(c.mr % 4, 0);
  }
}

TEST(KernelSpace, SortedByCmr) {
  const auto all = enumerate_kernels(4);
  ASSERT_GT(all.size(), 10u);
  for (std::size_t i = 1; i < all.size(); ++i)
    EXPECT_GE(all[i - 1].cmr, all[i].cmr);
}

TEST(KernelSpace, PaperTilesPresent) {
  const auto all = enumerate_kernels(4);
  auto has = [&](index_t mr, index_t nr) {
    for (const auto& c : all)
      if (c.mr == mr && c.nr == nr) return true;
    return false;
  };
  EXPECT_TRUE(has(16, 4));
  EXPECT_TRUE(has(8, 12));
  EXPECT_TRUE(has(12, 4));
  EXPECT_TRUE(has(8, 8));
  EXPECT_FALSE(has(16, 8));  // violates Eq. 4
}

TEST(Prediction, DegenerateShapesAreZero) {
  const auto machine = sim::phytium2000p();
  const auto p = predict(openblas_like_model(), machine, {0, 8, 8}, 4);
  EXPECT_EQ(p.total_cycles, 0.0);
  EXPECT_EQ(p.efficiency, 0.0);
}

TEST(Prediction, PackShareFollowsP2CShape) {
  const auto machine = sim::phytium2000p();
  const auto model = openblas_like_model();
  // Smaller M -> larger predicted packing share (Eq. 3's conclusion).
  const double m4 = predict(model, machine, {4, 200, 200}, 4).pack_share;
  const double m40 = predict(model, machine, {40, 200, 200}, 4).pack_share;
  const double m200 =
      predict(model, machine, {200, 200, 200}, 4).pack_share;
  EXPECT_GT(m4, m40);
  EXPECT_GT(m40, m200);
  // And independent of K once M, N are fixed (shares converge).
  const double k8 = predict(model, machine, {200, 200, 8}, 4).pack_share;
  EXPECT_LT(k8, 0.15);
}

TEST(Prediction, EfficiencyBoundedAndMonotoneInSize) {
  const auto machine = sim::phytium2000p();
  const auto model = openblas_like_model();
  double prev = 0;
  for (index_t v : {16, 32, 64, 128}) {
    const auto p = predict(model, machine, {v, v, v}, 4);
    EXPECT_GT(p.efficiency, 0.0);
    EXPECT_LE(p.efficiency, 1.0);
    EXPECT_GE(p.efficiency, prev);  // multiples of 16/4: no edge noise
    prev = p.efficiency;
  }
}

TEST(Prediction, EdgeShapesPredictLower) {
  const auto machine = sim::phytium2000p();
  const auto model = openblas_like_model();
  const double aligned = predict(model, machine, {80, 80, 80}, 4).efficiency;
  const double off = predict(model, machine, {81, 81, 80}, 4).efficiency;
  EXPECT_GT(aligned, off);
}

TEST(KernelSpace, BestKernelIsNearSquareHighCmr) {
  const auto best = best_kernel(4);
  // The CMR-optimal feasible tile: 12x10 or 10x12-like (30 registers).
  EXPECT_GE(best.cmr, cmr(8, 12));
  EXPECT_LE(best.c_registers, 30);
}

}  // namespace
}  // namespace smm::model
