# Empty dependencies file for test_fuzz_plans.
# This may be replaced when dependencies are built.
