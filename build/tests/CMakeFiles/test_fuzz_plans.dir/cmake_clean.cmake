file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_plans.dir/test_fuzz_plans.cpp.o"
  "CMakeFiles/test_fuzz_plans.dir/test_fuzz_plans.cpp.o.d"
  "test_fuzz_plans"
  "test_fuzz_plans.pdb"
  "test_fuzz_plans[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_plans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
