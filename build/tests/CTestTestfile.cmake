# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_simd[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_pack[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_threading[1]_include.cmake")
include("/root/repo/build/tests/test_plan[1]_include.cmake")
include("/root/repo/build/tests/test_strategies[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_batched[1]_include.cmake")
include("/root/repo/build/tests/test_autotune[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_pricer[1]_include.cmake")
include("/root/repo/build/tests/test_calibration[1]_include.cmake")
include("/root/repo/build/tests/test_registry_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_golden[1]_include.cmake")
include("/root/repo/build/tests/test_drivers[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz_plans[1]_include.cmake")
