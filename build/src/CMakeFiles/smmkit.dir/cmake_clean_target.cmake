file(REMOVE_RECURSE
  "libsmmkit.a"
)
