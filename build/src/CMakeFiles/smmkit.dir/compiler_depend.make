# Empty compiler generated dependencies file for smmkit.
# This may be replaced when dependencies are built.
