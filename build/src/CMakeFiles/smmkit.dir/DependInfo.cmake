
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/error.cpp" "src/CMakeFiles/smmkit.dir/common/error.cpp.o" "gcc" "src/CMakeFiles/smmkit.dir/common/error.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/smmkit.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/smmkit.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/str.cpp" "src/CMakeFiles/smmkit.dir/common/str.cpp.o" "gcc" "src/CMakeFiles/smmkit.dir/common/str.cpp.o.d"
  "/root/repo/src/core/autotune.cpp" "src/CMakeFiles/smmkit.dir/core/autotune.cpp.o" "gcc" "src/CMakeFiles/smmkit.dir/core/autotune.cpp.o.d"
  "/root/repo/src/core/batched.cpp" "src/CMakeFiles/smmkit.dir/core/batched.cpp.o" "gcc" "src/CMakeFiles/smmkit.dir/core/batched.cpp.o.d"
  "/root/repo/src/core/kernel_select.cpp" "src/CMakeFiles/smmkit.dir/core/kernel_select.cpp.o" "gcc" "src/CMakeFiles/smmkit.dir/core/kernel_select.cpp.o.d"
  "/root/repo/src/core/parallel_select.cpp" "src/CMakeFiles/smmkit.dir/core/parallel_select.cpp.o" "gcc" "src/CMakeFiles/smmkit.dir/core/parallel_select.cpp.o.d"
  "/root/repo/src/core/plan_builder.cpp" "src/CMakeFiles/smmkit.dir/core/plan_builder.cpp.o" "gcc" "src/CMakeFiles/smmkit.dir/core/plan_builder.cpp.o.d"
  "/root/repo/src/core/plan_cache.cpp" "src/CMakeFiles/smmkit.dir/core/plan_cache.cpp.o" "gcc" "src/CMakeFiles/smmkit.dir/core/plan_cache.cpp.o.d"
  "/root/repo/src/core/smm.cpp" "src/CMakeFiles/smmkit.dir/core/smm.cpp.o" "gcc" "src/CMakeFiles/smmkit.dir/core/smm.cpp.o.d"
  "/root/repo/src/kernels/microkernel.cpp" "src/CMakeFiles/smmkit.dir/kernels/microkernel.cpp.o" "gcc" "src/CMakeFiles/smmkit.dir/kernels/microkernel.cpp.o.d"
  "/root/repo/src/kernels/registry.cpp" "src/CMakeFiles/smmkit.dir/kernels/registry.cpp.o" "gcc" "src/CMakeFiles/smmkit.dir/kernels/registry.cpp.o.d"
  "/root/repo/src/kernels/schedule.cpp" "src/CMakeFiles/smmkit.dir/kernels/schedule.cpp.o" "gcc" "src/CMakeFiles/smmkit.dir/kernels/schedule.cpp.o.d"
  "/root/repo/src/kernels/schedules_armv8.cpp" "src/CMakeFiles/smmkit.dir/kernels/schedules_armv8.cpp.o" "gcc" "src/CMakeFiles/smmkit.dir/kernels/schedules_armv8.cpp.o.d"
  "/root/repo/src/libs/blasfeo_like/gemm_blasfeo_like.cpp" "src/CMakeFiles/smmkit.dir/libs/blasfeo_like/gemm_blasfeo_like.cpp.o" "gcc" "src/CMakeFiles/smmkit.dir/libs/blasfeo_like/gemm_blasfeo_like.cpp.o.d"
  "/root/repo/src/libs/blis_like/gemm_blis_like.cpp" "src/CMakeFiles/smmkit.dir/libs/blis_like/gemm_blis_like.cpp.o" "gcc" "src/CMakeFiles/smmkit.dir/libs/blis_like/gemm_blis_like.cpp.o.d"
  "/root/repo/src/libs/eigen_like/gemm_eigen_like.cpp" "src/CMakeFiles/smmkit.dir/libs/eigen_like/gemm_eigen_like.cpp.o" "gcc" "src/CMakeFiles/smmkit.dir/libs/eigen_like/gemm_eigen_like.cpp.o.d"
  "/root/repo/src/libs/gemm_interface.cpp" "src/CMakeFiles/smmkit.dir/libs/gemm_interface.cpp.o" "gcc" "src/CMakeFiles/smmkit.dir/libs/gemm_interface.cpp.o.d"
  "/root/repo/src/libs/goto_common.cpp" "src/CMakeFiles/smmkit.dir/libs/goto_common.cpp.o" "gcc" "src/CMakeFiles/smmkit.dir/libs/goto_common.cpp.o.d"
  "/root/repo/src/libs/naive.cpp" "src/CMakeFiles/smmkit.dir/libs/naive.cpp.o" "gcc" "src/CMakeFiles/smmkit.dir/libs/naive.cpp.o.d"
  "/root/repo/src/libs/openblas_like/gemm_openblas_like.cpp" "src/CMakeFiles/smmkit.dir/libs/openblas_like/gemm_openblas_like.cpp.o" "gcc" "src/CMakeFiles/smmkit.dir/libs/openblas_like/gemm_openblas_like.cpp.o.d"
  "/root/repo/src/matrix/compare.cpp" "src/CMakeFiles/smmkit.dir/matrix/compare.cpp.o" "gcc" "src/CMakeFiles/smmkit.dir/matrix/compare.cpp.o.d"
  "/root/repo/src/matrix/panel_matrix.cpp" "src/CMakeFiles/smmkit.dir/matrix/panel_matrix.cpp.o" "gcc" "src/CMakeFiles/smmkit.dir/matrix/panel_matrix.cpp.o.d"
  "/root/repo/src/model/equations.cpp" "src/CMakeFiles/smmkit.dir/model/equations.cpp.o" "gcc" "src/CMakeFiles/smmkit.dir/model/equations.cpp.o.d"
  "/root/repo/src/model/kernel_space.cpp" "src/CMakeFiles/smmkit.dir/model/kernel_space.cpp.o" "gcc" "src/CMakeFiles/smmkit.dir/model/kernel_space.cpp.o.d"
  "/root/repo/src/model/peak.cpp" "src/CMakeFiles/smmkit.dir/model/peak.cpp.o" "gcc" "src/CMakeFiles/smmkit.dir/model/peak.cpp.o.d"
  "/root/repo/src/model/prediction.cpp" "src/CMakeFiles/smmkit.dir/model/prediction.cpp.o" "gcc" "src/CMakeFiles/smmkit.dir/model/prediction.cpp.o.d"
  "/root/repo/src/pack/edge_pack.cpp" "src/CMakeFiles/smmkit.dir/pack/edge_pack.cpp.o" "gcc" "src/CMakeFiles/smmkit.dir/pack/edge_pack.cpp.o.d"
  "/root/repo/src/pack/pack.cpp" "src/CMakeFiles/smmkit.dir/pack/pack.cpp.o" "gcc" "src/CMakeFiles/smmkit.dir/pack/pack.cpp.o.d"
  "/root/repo/src/plan/native_executor.cpp" "src/CMakeFiles/smmkit.dir/plan/native_executor.cpp.o" "gcc" "src/CMakeFiles/smmkit.dir/plan/native_executor.cpp.o.d"
  "/root/repo/src/plan/plan.cpp" "src/CMakeFiles/smmkit.dir/plan/plan.cpp.o" "gcc" "src/CMakeFiles/smmkit.dir/plan/plan.cpp.o.d"
  "/root/repo/src/plan/plan_stats.cpp" "src/CMakeFiles/smmkit.dir/plan/plan_stats.cpp.o" "gcc" "src/CMakeFiles/smmkit.dir/plan/plan_stats.cpp.o.d"
  "/root/repo/src/sim/cache/cache_sim.cpp" "src/CMakeFiles/smmkit.dir/sim/cache/cache_sim.cpp.o" "gcc" "src/CMakeFiles/smmkit.dir/sim/cache/cache_sim.cpp.o.d"
  "/root/repo/src/sim/cache/residency.cpp" "src/CMakeFiles/smmkit.dir/sim/cache/residency.cpp.o" "gcc" "src/CMakeFiles/smmkit.dir/sim/cache/residency.cpp.o.d"
  "/root/repo/src/sim/exec/pricer.cpp" "src/CMakeFiles/smmkit.dir/sim/exec/pricer.cpp.o" "gcc" "src/CMakeFiles/smmkit.dir/sim/exec/pricer.cpp.o.d"
  "/root/repo/src/sim/exec/report.cpp" "src/CMakeFiles/smmkit.dir/sim/exec/report.cpp.o" "gcc" "src/CMakeFiles/smmkit.dir/sim/exec/report.cpp.o.d"
  "/root/repo/src/sim/exec/trace_export.cpp" "src/CMakeFiles/smmkit.dir/sim/exec/trace_export.cpp.o" "gcc" "src/CMakeFiles/smmkit.dir/sim/exec/trace_export.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/CMakeFiles/smmkit.dir/sim/machine.cpp.o" "gcc" "src/CMakeFiles/smmkit.dir/sim/machine.cpp.o.d"
  "/root/repo/src/sim/memory/numa.cpp" "src/CMakeFiles/smmkit.dir/sim/memory/numa.cpp.o" "gcc" "src/CMakeFiles/smmkit.dir/sim/memory/numa.cpp.o.d"
  "/root/repo/src/sim/pipeline/kernel_timing.cpp" "src/CMakeFiles/smmkit.dir/sim/pipeline/kernel_timing.cpp.o" "gcc" "src/CMakeFiles/smmkit.dir/sim/pipeline/kernel_timing.cpp.o.d"
  "/root/repo/src/sim/pipeline/pipeline_sim.cpp" "src/CMakeFiles/smmkit.dir/sim/pipeline/pipeline_sim.cpp.o" "gcc" "src/CMakeFiles/smmkit.dir/sim/pipeline/pipeline_sim.cpp.o.d"
  "/root/repo/src/sim/pipeline/uop.cpp" "src/CMakeFiles/smmkit.dir/sim/pipeline/uop.cpp.o" "gcc" "src/CMakeFiles/smmkit.dir/sim/pipeline/uop.cpp.o.d"
  "/root/repo/src/simd/vec.cpp" "src/CMakeFiles/smmkit.dir/simd/vec.cpp.o" "gcc" "src/CMakeFiles/smmkit.dir/simd/vec.cpp.o.d"
  "/root/repo/src/threading/barrier.cpp" "src/CMakeFiles/smmkit.dir/threading/barrier.cpp.o" "gcc" "src/CMakeFiles/smmkit.dir/threading/barrier.cpp.o.d"
  "/root/repo/src/threading/partition.cpp" "src/CMakeFiles/smmkit.dir/threading/partition.cpp.o" "gcc" "src/CMakeFiles/smmkit.dir/threading/partition.cpp.o.d"
  "/root/repo/src/threading/thread_pool.cpp" "src/CMakeFiles/smmkit.dir/threading/thread_pool.cpp.o" "gcc" "src/CMakeFiles/smmkit.dir/threading/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
