file(REMOVE_RECURSE
  "CMakeFiles/abft_checksum.dir/abft_checksum.cpp.o"
  "CMakeFiles/abft_checksum.dir/abft_checksum.cpp.o.d"
  "abft_checksum"
  "abft_checksum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abft_checksum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
