# Empty compiler generated dependencies file for abft_checksum.
# This may be replaced when dependencies are built.
