file(REMOVE_RECURSE
  "CMakeFiles/block_sparse_bcsr.dir/block_sparse_bcsr.cpp.o"
  "CMakeFiles/block_sparse_bcsr.dir/block_sparse_bcsr.cpp.o.d"
  "block_sparse_bcsr"
  "block_sparse_bcsr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_sparse_bcsr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
