# Empty compiler generated dependencies file for block_sparse_bcsr.
# This may be replaced when dependencies are built.
