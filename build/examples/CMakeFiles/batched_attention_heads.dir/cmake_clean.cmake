file(REMOVE_RECURSE
  "CMakeFiles/batched_attention_heads.dir/batched_attention_heads.cpp.o"
  "CMakeFiles/batched_attention_heads.dir/batched_attention_heads.cpp.o.d"
  "batched_attention_heads"
  "batched_attention_heads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batched_attention_heads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
