# Empty compiler generated dependencies file for batched_attention_heads.
# This may be replaced when dependencies are built.
