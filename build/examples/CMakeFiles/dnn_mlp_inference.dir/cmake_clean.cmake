file(REMOVE_RECURSE
  "CMakeFiles/dnn_mlp_inference.dir/dnn_mlp_inference.cpp.o"
  "CMakeFiles/dnn_mlp_inference.dir/dnn_mlp_inference.cpp.o.d"
  "dnn_mlp_inference"
  "dnn_mlp_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnn_mlp_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
