# Empty dependencies file for ablate_parallel.
# This may be replaced when dependencies are built.
