file(REMOVE_RECURSE
  "CMakeFiles/ablate_parallel.dir/ablate_parallel.cpp.o"
  "CMakeFiles/ablate_parallel.dir/ablate_parallel.cpp.o.d"
  "ablate_parallel"
  "ablate_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
