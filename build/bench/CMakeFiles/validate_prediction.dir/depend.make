# Empty dependencies file for validate_prediction.
# This may be replaced when dependencies are built.
