file(REMOVE_RECURSE
  "CMakeFiles/validate_prediction.dir/validate_prediction.cpp.o"
  "CMakeFiles/validate_prediction.dir/validate_prediction.cpp.o.d"
  "validate_prediction"
  "validate_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validate_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
