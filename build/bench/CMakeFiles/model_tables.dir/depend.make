# Empty dependencies file for model_tables.
# This may be replaced when dependencies are built.
