# Empty compiler generated dependencies file for model_tables.
# This may be replaced when dependencies are built.
