file(REMOVE_RECURSE
  "CMakeFiles/model_tables.dir/model_tables.cpp.o"
  "CMakeFiles/model_tables.dir/model_tables.cpp.o.d"
  "model_tables"
  "model_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
