file(REMOVE_RECURSE
  "CMakeFiles/ablate_machine.dir/ablate_machine.cpp.o"
  "CMakeFiles/ablate_machine.dir/ablate_machine.cpp.o.d"
  "ablate_machine"
  "ablate_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
