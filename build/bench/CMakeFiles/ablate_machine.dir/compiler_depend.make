# Empty compiler generated dependencies file for ablate_machine.
# This may be replaced when dependencies are built.
