# Empty dependencies file for ablate_batch_parallel.
# This may be replaced when dependencies are built.
