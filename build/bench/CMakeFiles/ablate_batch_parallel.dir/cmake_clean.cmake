file(REMOVE_RECURSE
  "CMakeFiles/ablate_batch_parallel.dir/ablate_batch_parallel.cpp.o"
  "CMakeFiles/ablate_batch_parallel.dir/ablate_batch_parallel.cpp.o.d"
  "ablate_batch_parallel"
  "ablate_batch_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_batch_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
