file(REMOVE_RECURSE
  "CMakeFiles/ablate_packing_optional.dir/ablate_packing_optional.cpp.o"
  "CMakeFiles/ablate_packing_optional.dir/ablate_packing_optional.cpp.o.d"
  "ablate_packing_optional"
  "ablate_packing_optional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_packing_optional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
