# Empty compiler generated dependencies file for ablate_packing_optional.
# This may be replaced when dependencies are built.
