file(REMOVE_RECURSE
  "CMakeFiles/ablate_autotune.dir/ablate_autotune.cpp.o"
  "CMakeFiles/ablate_autotune.dir/ablate_autotune.cpp.o.d"
  "ablate_autotune"
  "ablate_autotune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_autotune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
