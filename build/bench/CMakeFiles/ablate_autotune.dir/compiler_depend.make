# Empty compiler generated dependencies file for ablate_autotune.
# This may be replaced when dependencies are built.
