file(REMOVE_RECURSE
  "CMakeFiles/fig9_kernel_efficiency.dir/fig9_kernel_efficiency.cpp.o"
  "CMakeFiles/fig9_kernel_efficiency.dir/fig9_kernel_efficiency.cpp.o.d"
  "fig9_kernel_efficiency"
  "fig9_kernel_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_kernel_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
