file(REMOVE_RECURSE
  "CMakeFiles/fig8_edge_packing.dir/fig8_edge_packing.cpp.o"
  "CMakeFiles/fig8_edge_packing.dir/fig8_edge_packing.cpp.o.d"
  "fig8_edge_packing"
  "fig8_edge_packing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_edge_packing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
