file(REMOVE_RECURSE
  "CMakeFiles/native_gemm.dir/native_gemm.cpp.o"
  "CMakeFiles/native_gemm.dir/native_gemm.cpp.o.d"
  "native_gemm"
  "native_gemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/native_gemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
