# Empty dependencies file for native_gemm.
# This may be replaced when dependencies are built.
