file(REMOVE_RECURSE
  "CMakeFiles/table2_breakdown.dir/table2_breakdown.cpp.o"
  "CMakeFiles/table2_breakdown.dir/table2_breakdown.cpp.o.d"
  "table2_breakdown"
  "table2_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
