file(REMOVE_RECURSE
  "CMakeFiles/fig5_single_thread.dir/fig5_single_thread.cpp.o"
  "CMakeFiles/fig5_single_thread.dir/fig5_single_thread.cpp.o.d"
  "fig5_single_thread"
  "fig5_single_thread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_single_thread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
