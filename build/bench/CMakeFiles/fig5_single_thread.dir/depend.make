# Empty dependencies file for fig5_single_thread.
# This may be replaced when dependencies are built.
