# Empty dependencies file for fig7_schedule_quality.
# This may be replaced when dependencies are built.
