# Empty dependencies file for fig10_parallel.
# This may be replaced when dependencies are built.
