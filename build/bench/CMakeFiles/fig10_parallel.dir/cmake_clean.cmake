file(REMOVE_RECURSE
  "CMakeFiles/fig10_parallel.dir/fig10_parallel.cpp.o"
  "CMakeFiles/fig10_parallel.dir/fig10_parallel.cpp.o.d"
  "fig10_parallel"
  "fig10_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
