# Empty dependencies file for machine_report.
# This may be replaced when dependencies are built.
