file(REMOVE_RECURSE
  "CMakeFiles/machine_report.dir/machine_report.cpp.o"
  "CMakeFiles/machine_report.dir/machine_report.cpp.o.d"
  "machine_report"
  "machine_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
