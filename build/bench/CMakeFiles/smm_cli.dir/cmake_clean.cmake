file(REMOVE_RECURSE
  "CMakeFiles/smm_cli.dir/smm_cli.cpp.o"
  "CMakeFiles/smm_cli.dir/smm_cli.cpp.o.d"
  "smm_cli"
  "smm_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smm_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
