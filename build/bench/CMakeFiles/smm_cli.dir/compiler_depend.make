# Empty compiler generated dependencies file for smm_cli.
# This may be replaced when dependencies are built.
