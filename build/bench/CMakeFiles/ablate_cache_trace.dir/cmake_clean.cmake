file(REMOVE_RECURSE
  "CMakeFiles/ablate_cache_trace.dir/ablate_cache_trace.cpp.o"
  "CMakeFiles/ablate_cache_trace.dir/ablate_cache_trace.cpp.o.d"
  "ablate_cache_trace"
  "ablate_cache_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_cache_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
