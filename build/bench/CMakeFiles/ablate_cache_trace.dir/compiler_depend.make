# Empty compiler generated dependencies file for ablate_cache_trace.
# This may be replaced when dependencies are built.
