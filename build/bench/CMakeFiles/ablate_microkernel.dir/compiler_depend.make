# Empty compiler generated dependencies file for ablate_microkernel.
# This may be replaced when dependencies are built.
