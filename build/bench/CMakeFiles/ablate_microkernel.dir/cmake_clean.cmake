file(REMOVE_RECURSE
  "CMakeFiles/ablate_microkernel.dir/ablate_microkernel.cpp.o"
  "CMakeFiles/ablate_microkernel.dir/ablate_microkernel.cpp.o.d"
  "ablate_microkernel"
  "ablate_microkernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_microkernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
