# Empty dependencies file for fig6_packing_overhead.
# This may be replaced when dependencies are built.
