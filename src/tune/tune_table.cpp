#include "src/tune/tune_table.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <thread>

#include "src/common/str.h"
#include "src/robust/integrity.h"

namespace smm::tune {

namespace {

constexpr char kMagic[8] = {'S', 'M', 'M', 'T', 'U', 'N', 'E', '1'};
constexpr std::uint32_t kVersion = 1;

/// First "model name" line of /proc/cpuinfo (x86) or the whole first
/// block's identifying lines (ARM exposes "CPU part"/"CPU implementer").
/// Falls back to a constant when the pseudo-file is unavailable — the
/// core count still differentiates most foreign machines.
std::string cpu_model_string() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  std::string out;
  while (std::getline(in, line)) {
    if (line.rfind("model name", 0) == 0 ||
        line.rfind("CPU implementer", 0) == 0 ||
        line.rfind("CPU part", 0) == 0 || line.rfind("Hardware", 0) == 0) {
      out += line;
      out += '\n';
      if (line.rfind("model name", 0) == 0) break;  // one core is enough
    }
  }
  return out.empty() ? std::string("unknown-cpu") : out;
}

// Little serialization helpers: everything goes through fixed-width
// types memcpy'd into a string buffer, so the format does not depend on
// struct layout.
void put_bytes(std::string& buf, const void* p, std::size_t n) {
  buf.append(static_cast<const char*>(p), n);
}
template <typename T>
void put(std::string& buf, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  put_bytes(buf, &v, sizeof(v));
}

struct Reader {
  const char* p;
  const char* end;
  bool ok = true;

  template <typename T>
  T get() {
    T v{};
    if (!ok || end - p < static_cast<std::ptrdiff_t>(sizeof(v))) {
      ok = false;
      return v;
    }
    std::memcpy(&v, p, sizeof(v));
    p += sizeof(v);
    return v;
  }
};

void put_spec(std::string& buf, const core::BuildSpec& s) {
  put<std::int64_t>(buf, s.mr);
  put<std::int64_t>(buf, s.nr);
  put<std::int64_t>(buf, s.mc);
  put<std::int64_t>(buf, s.kc);
  put<std::int64_t>(buf, s.nc);
  put<std::uint8_t>(buf, s.pack_a ? 1 : 0);
  put<std::uint8_t>(buf, s.pack_b ? 1 : 0);
  put<std::uint8_t>(buf, s.edge_pack_b ? 1 : 0);
  put<std::int32_t>(buf, s.nthreads);
  put<std::int32_t>(buf, s.ways.jc);
  put<std::int32_t>(buf, s.ways.ic);
  put<std::int32_t>(buf, s.ways.jr);
  put<std::int32_t>(buf, s.ways.ir);
  put<std::int32_t>(buf, s.k_parts);
}

core::BuildSpec get_spec(Reader& r) {
  core::BuildSpec s;
  s.mr = r.get<std::int64_t>();
  s.nr = r.get<std::int64_t>();
  s.mc = r.get<std::int64_t>();
  s.kc = r.get<std::int64_t>();
  s.nc = r.get<std::int64_t>();
  s.pack_a = r.get<std::uint8_t>() != 0;
  s.pack_b = r.get<std::uint8_t>() != 0;
  s.edge_pack_b = r.get<std::uint8_t>() != 0;
  s.nthreads = r.get<std::int32_t>();
  s.ways.jc = r.get<std::int32_t>();
  s.ways.ic = r.get<std::int32_t>();
  s.ways.jr = r.get<std::int32_t>();
  s.ways.ir = r.get<std::int32_t>();
  s.k_parts = r.get<std::int32_t>();
  return s;
}

void put_model(std::string& buf, const model::ParallelCostModel& m) {
  put<double>(buf, m.flop_ns);
  put<double>(buf, m.pack_ns_per_elem);
  put<double>(buf, m.barrier_ns);
  put<double>(buf, m.dispatch_ns);
  put<std::int32_t>(buf, m.hw_threads);
  put<std::uint8_t>(buf, m.measured ? 1 : 0);
}

model::ParallelCostModel get_model(Reader& r) {
  model::ParallelCostModel m;
  m.flop_ns = r.get<double>();
  m.pack_ns_per_elem = r.get<double>();
  m.barrier_ns = r.get<double>();
  m.dispatch_ns = r.get<double>();
  m.hw_threads = r.get<std::int32_t>();
  m.measured = r.get<std::uint8_t>() != 0;
  return m;
}

}  // namespace

const char* to_string(TableStatus status) {
  switch (status) {
    case TableStatus::kOk:
      return "ok";
    case TableStatus::kMissing:
      return "missing";
    case TableStatus::kCorrupt:
      return "corrupt";
    case TableStatus::kForeign:
      return "foreign";
  }
  return "?";
}

MachineFingerprint machine_fingerprint() {
  static const MachineFingerprint cached = [] {
    MachineFingerprint fp;
    const std::string model = cpu_model_string();
    fp.cpu_hash = integrity::content_checksum(model.data(), model.size());
    fp.cores = std::max(1u, std::thread::hardware_concurrency());
    return fp;
  }();
  return cached;
}

std::string fingerprint_token(const MachineFingerprint& fp) {
  return strprintf("%016llx-%u",
                   static_cast<unsigned long long>(fp.cpu_hash), fp.cores);
}

bool write_table(const std::string& path, const MachineFingerprint& fp,
                 const model::ParallelCostModel& model,
                 const std::vector<TableEntry>& entries) {
  std::string buf;
  put_bytes(buf, kMagic, sizeof(kMagic));
  put<std::uint32_t>(buf, kVersion);
  put<std::uint64_t>(buf, fp.cpu_hash);
  put<std::uint32_t>(buf, fp.cores);
  // The calibrated-constant digest binds the header to the payload: a
  // table whose constants were edited (or rotted) after sealing fails
  // here even if the seal itself were regenerated naively.
  put<std::uint64_t>(buf, model::cost_model_digest(model));
  put_model(buf, model);
  put<std::uint32_t>(buf, static_cast<std::uint32_t>(entries.size()));
  for (const TableEntry& e : entries) {
    put<std::int64_t>(buf, e.key.m);
    put<std::int64_t>(buf, e.key.n);
    put<std::int64_t>(buf, e.key.k);
    put<std::int32_t>(buf, e.key.scalar);
    put<std::int32_t>(buf, e.key.nthreads);
    put<std::uint32_t>(buf, e.epoch);
    put<std::uint8_t>(buf, e.has_override ? 1 : 0);
    put_spec(buf, e.spec);
    put<double>(buf, e.mean_ns);
    put<double>(buf, e.var_ns2);
    put<std::uint64_t>(buf, e.samples);
  }
  const std::uint64_t seal =
      integrity::content_checksum(buf.data(), buf.size());
  put<std::uint64_t>(buf, seal);

  // Temp + rename: a crash mid-write must leave the previous table (or
  // no table) behind, never a torn one — the reader would reject a torn
  // file anyway, but then a good table would have been lost.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) return false;
    out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

TableStatus read_table(const std::string& path,
                       const MachineFingerprint& expect,
                       model::ParallelCostModel* model,
                       std::vector<TableEntry>* entries) {
  model->measured = false;
  entries->clear();
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return TableStatus::kMissing;
  std::string buf((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  if (buf.size() < sizeof(kMagic) + sizeof(std::uint64_t))
    return TableStatus::kCorrupt;

  // Seal first: nothing inside an unsealed payload is worth parsing.
  const std::size_t body = buf.size() - sizeof(std::uint64_t);
  std::uint64_t seal = 0;
  std::memcpy(&seal, buf.data() + body, sizeof(seal));
  if (integrity::content_checksum(buf.data(), body) != seal)
    return TableStatus::kCorrupt;

  Reader r{buf.data(), buf.data() + body};
  char magic[sizeof(kMagic)];
  for (char& c : magic) c = r.get<char>();
  if (!r.ok || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    return TableStatus::kCorrupt;
  if (r.get<std::uint32_t>() != kVersion) return TableStatus::kCorrupt;

  MachineFingerprint fp;
  fp.cpu_hash = r.get<std::uint64_t>();
  fp.cores = r.get<std::uint32_t>();
  if (!r.ok) return TableStatus::kCorrupt;
  if (!(fp == expect)) return TableStatus::kForeign;

  const std::uint64_t digest = r.get<std::uint64_t>();
  const model::ParallelCostModel m = get_model(r);
  if (!r.ok || model::cost_model_digest(m) != digest)
    return TableStatus::kCorrupt;

  const std::uint32_t count = r.get<std::uint32_t>();
  std::vector<TableEntry> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    TableEntry e;
    e.key.m = r.get<std::int64_t>();
    e.key.n = r.get<std::int64_t>();
    e.key.k = r.get<std::int64_t>();
    e.key.scalar = r.get<std::int32_t>();
    e.key.nthreads = r.get<std::int32_t>();
    e.epoch = r.get<std::uint32_t>();
    e.has_override = r.get<std::uint8_t>() != 0;
    e.spec = get_spec(r);
    e.mean_ns = r.get<double>();
    e.var_ns2 = r.get<double>();
    e.samples = r.get<std::uint64_t>();
    if (!r.ok) return TableStatus::kCorrupt;
    out.push_back(e);
  }
  // Trailing garbage between the last entry and the seal means the
  // count lied; the seal can't catch that (it covers the garbage too).
  if (r.p != r.end) return TableStatus::kCorrupt;

  *model = m;
  *entries = std::move(out);
  return TableStatus::kOk;
}

}  // namespace smm::tune
