// smm::tune — online input-aware autotuning (DESIGN.md §14).
//
// The paper's Section IV asks for JIT-like adaptive plan generation; IAAT
// (PAPERS.md) shows that for small GEMM the *input distribution at run
// time* beats any one-shot selection. The runtime already produces the
// ground truth — execute_plan_timed's per-op wall clock — so this module
// closes the loop:
//
//   sample ──► per-shape-class EWMA/variance ──► divergence trigger
//     ▲                                               │
//     │                                               ▼
//   PlanCache ◄── epoch-bumped fingerprint ◄── explore TuneSpace
//     (per shard)                                candidates (posterior)
//                                                     │
//                      SMMKIT_TUNE_DIR ◄── persist ◄──┘ commit winner
//
// Sampling: 1-in-N warm calls run through the timed executor (a global
// relaxed counter — no allocation, one extra branch on the unsampled hot
// path). The EWMA+variance per shape class is the tuner's posterior over
// the *installed* plan; exploration installs each candidate BuildSpec
// from core::TuneSpace in turn (ranked by the analytic cost model — the
// model is the prior, observation refines it) and commits the winner.
//
// Every install bumps the class's tuning epoch, which is folded into the
// PlanCache fingerprint: a re-plan is an ordinary cache miss under a new
// key, so stale plans age out of the (per-shard) LRU without a flush and
// concurrent executors keep their shared_ptr to the old plan safely.
//
// Modes (SMMKIT_AUTOTUNE, default observe):
//   off      zero-overhead: one relaxed load per call, nothing recorded.
//   observe  sample + maintain the table, feed SmmService's admission
//            budgets — but never change a plan decision.
//   adapt    observe + explore/commit plan overrides.
//
// Persistence: the tuned table (plus the calibrated cost model that
// produced it) is written to SMMKIT_TUNE_DIR keyed by a machine
// fingerprint; a warm-started process loads committed winners (zero
// exploration) and the calibrated constants (zero calibration). Foreign,
// truncated, or corrupted tables are rejected and rebuilt, never trusted
// (the smm::integrity seal idiom, tune_table.h).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/core/plan_builder.h"
#include "src/model/parallel_runtime.h"
#include "src/plan/plan_stats.h"

namespace smm::tune {

/// The autotuning policy. kAuto defers to the process-wide mode
/// (SMMKIT_AUTOTUNE env knob); the other three are explicit overrides.
enum class Mode : std::uint8_t { kAuto = 0, kOff, kObserve, kAdapt };

const char* to_string(Mode mode);

/// Parse SMMKIT_AUTOTUNE ("off" / "observe" / "adapt") afresh; unset or
/// unparsable values yield the default, kObserve.
Mode mode_from_env();

/// The resolved process-wide mode: the test override if one is set,
/// otherwise the env knob read once per process. Never returns kAuto.
Mode mode();

/// Test hook: pin the process-wide mode (kAuto clears the override and
/// returns to the env-derived value). Takes effect immediately.
void set_mode_override(Mode mode);

/// Process-wide sampling gate (smm::failover's brownout): while any
/// hold is outstanding, sample_token issues no tokens — the posterior
/// is frozen rather than fed wall times from a runtime in degraded
/// service. Counted, not boolean, so independent holders (two browned-
/// out SmmService instances) compose: one holder releasing never lifts
/// another's suppression. release is clamped at zero (a stray extra
/// release is a no-op, not a latent un-suppression debt).
void hold_sampling_suppression();
void release_sampling_suppression();

/// True when sampling is currently gated off, either process-wide (see
/// above) or by a ScopedSampleSuppression on this thread.
bool sampling_suppressed();

/// Thread-scoped sampling gate: the serving layer wraps executions that
/// land on a non-healthy shard (failover re-routes, rebuild probes,
/// guarded retries on a degraded domain) so their wall times — inflated
/// by spawn fallbacks and retry ladders — can never poison the EWMA
/// posterior or trigger a spurious re-plan. Nestable; cheap (one
/// thread-local increment).
class ScopedSampleSuppression {
 public:
  ScopedSampleSuppression();
  ~ScopedSampleSuppression();
  ScopedSampleSuppression(const ScopedSampleSuppression&) = delete;
  ScopedSampleSuppression& operator=(const ScopedSampleSuppression&) =
      delete;
};

/// What the tuner keys on — the service router's shape class plus the
/// caller's thread budget (the same shape tuned under different budgets
/// is a different decision).
struct ShapeClass {
  index_t m = 0;
  index_t n = 0;
  index_t k = 0;
  int scalar = 0;  ///< plan::ScalarType as an int
  int nthreads = 1;
  auto operator<=>(const ShapeClass&) const = default;
};

/// The tuner's say in one plan lookup. fingerprint is XOR-folded into
/// the PlanCache key; 0 (with !has_spec) is the untouched default path.
struct PlanChoice {
  std::uint64_t fingerprint = 0;
  bool has_spec = false;
  core::BuildSpec spec;
};

/// Token pairing a sampling decision with the tuning epoch it was made
/// under; record() discards samples whose epoch has moved on (the timing
/// belongs to a plan the tuner already replaced).
struct SampleToken {
  bool sample = false;
  std::uint32_t epoch = 0;
};

/// Point-in-time view of one shape class (tests, table export).
struct ClassSnapshot {
  ShapeClass key;
  double ewma_ns = 0.0;
  double ewvar_ns2 = 0.0;
  std::uint64_t samples = 0;
  std::uint32_t epoch = 0;
  bool committed = false;    ///< a tuned winner is installed
  bool exploring = false;    ///< mid-trial
  bool from_table = false;   ///< winner came from the persisted table
  core::BuildSpec spec;      ///< meaningful when committed
};

class Tuner {
 public:
  struct Options {
    /// Steady-state sampling period: one timed call in `sample_period`
    /// (exploration trials force-sample their class). <= 1 samples every
    /// call.
    int sample_period = 64;
    /// Re-plan trigger: |observed - predicted| / predicted beyond this
    /// enters exploration; a committed class whose EWMA drifts past
    /// (1 + hysteresis) x committed cost re-opens it. The band is wide
    /// on purpose — re-planning has a cost, flapping has a bigger one.
    double hysteresis = 0.35;
    /// Samples before the divergence trigger may fire (variance needs a
    /// floor under it).
    int min_samples = 6;
    /// Timed samples each exploration trial collects per candidate.
    int trial_samples = 3;
    /// Candidates drawn from core::TuneSpace per exploration round,
    /// ranked by predicted cost (the analytic prior prunes the grid so
    /// a round stays a bounded burst, not an exhaustive sweep).
    int max_candidates = 6;
    /// Also explore a class that stays hot (>= hot_samples timed
    /// samples) even when prediction tracks observation — divergence
    /// finds mispredicted classes, this finds mispriced ones.
    bool explore_hot = true;
    std::uint64_t hot_samples = 24;
    /// EWMA weight of one new sample.
    double ewma_alpha = 0.25;
    /// Directory for the persisted table ("" = in-memory only). The
    /// process-wide tuner() takes this from SMMKIT_TUNE_DIR.
    std::string table_dir;
  };

  Tuner();
  explicit Tuner(Options options);

  /// The plan the tuner wants for this class under the current mode.
  /// kOff/kObserve (and unknown classes): the zero PlanChoice — default
  /// fingerprint, default builder. kAdapt: the installed winner or the
  /// active exploration candidate. O(map lookup) under a shared lock.
  PlanChoice plan_choice(const ShapeClass& sc);

  /// Should this call run through the timed executor? Steady state is a
  /// global 1-in-N counter; classes mid-exploration always sample (the
  /// trial needs its observations now, not in N calls).
  SampleToken sample_token(const ShapeClass& sc);

  /// Feed one observed call: wall-clock ns end-to-end plus the per-thread
  /// Table II breakdown the timed executor produced. Updates the class
  /// EWMA/variance, advances exploration trials, commits winners, and
  /// persists on commit. Samples from a stale epoch are dropped.
  void record(const ShapeClass& sc, SampleToken token, double wall_ns,
              const std::vector<plan::ThreadTiming>& timings);

  /// Observed steady-state cost for admission budgets: the EWMA of the
  /// class once it has min_samples. scalar < 0 matches either scalar
  /// type (the service estimates before it knows T). nullopt = no data,
  /// caller falls back to its static constants.
  [[nodiscard]] std::optional<double> observed_cost_ns(index_t m, index_t n,
                                                       index_t k, int scalar,
                                                       int nthreads) const;

  /// Write the committed table (winners + calibrated cost model) to
  /// `path`. Returns false (and leaves any previous file alone) on I/O
  /// trouble.
  bool save_table(const std::string& path) const;

  /// Load a persisted table: committed winners enter the class map as
  /// installed plans (no exploration — the warm start), and the stored
  /// calibrated cost model seeds core::set_calibrated_model. A file that
  /// is unreadable, truncated, sealed wrong, or fingerprinted for
  /// another machine is rejected (tune_table_stale) and the tuner
  /// rebuilds from scratch. Returns whether the table was accepted.
  bool load_table(const std::string& path);

  /// Default table path for `dir` on this machine.
  [[nodiscard]] static std::string table_path(const std::string& dir);

  /// Drop every class, epoch, and counter (benches/tests; plans already
  /// in a PlanCache are unaffected — they age out by fingerprint).
  void reset();

  /// Replace the knobs (benches/tests: shrink sample_period and the
  /// trial counts so an A/B soak converges in seconds). Existing class
  /// state is kept. Not safe against concurrent warm calls — quiesce
  /// the tuner's callers first.
  void set_options(Options options);

  // Event counters, also mirrored into robust::health() (tune_*).
  [[nodiscard]] std::uint64_t samples() const;
  [[nodiscard]] std::uint64_t replans() const;
  [[nodiscard]] std::uint64_t table_hits() const;
  [[nodiscard]] std::uint64_t table_stale() const;

  [[nodiscard]] std::vector<ClassSnapshot> snapshot_classes() const;
  [[nodiscard]] const Options& options() const { return options_; }

 private:
  struct Candidate {
    core::BuildSpec spec;
    double predicted_ns = 0.0;  ///< analytic prior
    double mean_ns = 0.0;       ///< posterior mean (prior + samples)
    int samples = 0;
  };

  struct ClassState {
    enum class Phase : std::uint8_t { kBaseline, kExplore, kCommitted };
    Phase phase = Phase::kBaseline;
    double ewma_ns = 0.0;
    double ewvar_ns2 = 0.0;
    std::uint64_t samples = 0;
    std::uint32_t epoch = 0;
    /// Exploration state: candidate list and the index under trial.
    std::vector<Candidate> candidates;
    int active = -1;
    /// Posterior mean of the default plan (baseline EWMA at explore
    /// entry; candidate -1).
    double default_mean_ns = 0.0;
    /// Committed winner (has_override => not the default spec).
    bool has_override = false;
    core::BuildSpec installed;
    double committed_ns = 0.0;  ///< EWMA at commit, the drift baseline
    bool explored_once = false;
    bool from_table = false;
  };

  void begin_explore_locked(const ShapeClass& sc, ClassState& st);
  void install_locked(const ShapeClass& sc, ClassState& st,
                      bool has_override, const core::BuildSpec& spec);
  void commit_locked(const ShapeClass& sc, ClassState& st);
  [[nodiscard]] double predict_ns(const ShapeClass& sc,
                                  const core::BuildSpec& spec) const;

  Options options_;
  mutable std::shared_mutex mu_;
  std::map<ShapeClass, ClassState> classes_;
  /// Classes currently mid-exploration: lets sample_token skip the map
  /// lookup entirely in the (steady-state) zero case.
  std::atomic<int> exploring_{0};
  std::atomic<std::uint64_t> call_counter_{0};
  std::atomic<std::uint64_t> samples_{0};
  std::atomic<std::uint64_t> replans_{0};
  std::atomic<std::uint64_t> table_hits_{0};
  std::atomic<std::uint64_t> table_stale_{0};
};

/// The process-wide tuner behind smm_gemm and SmmService. First use
/// reads SMMKIT_TUNE_DIR and, when set, loads the persisted table —
/// which also seeds the calibrated cost model, so a warm start skips
/// both calibration and exploration. Immortal (like smm_plan_cache).
Tuner& tuner();

}  // namespace smm::tune
