// On-disk persistence of the tuned plan table (DESIGN.md §14).
//
// The file is a sealed snapshot of everything a warm start needs to skip
// the cold-start work: the calibrated ParallelCostModel (so
// calibrated_cost_model() is seeded instead of measured) and every
// committed per-shape-class winner (so exploration never runs). It is
// only trustworthy on the machine that wrote it, so the header carries a
// machine fingerprint — CPU model hash + core count + a digest of the
// stored calibrated constants — and the whole payload is sealed with
// integrity::content_checksum (the smm::integrity idiom: cached state is
// validated before it is believed, never trusted because it parses).
//
// A reader rejects, and the tuner rebuilds from scratch, on: short or
// truncated files, unknown magic/version, a seal mismatch (bit rot or a
// torn write), a foreign fingerprint (the table came from another
// machine or another core count), or a cost-model digest that does not
// match the stored constants. Rejection is never an error — cold start
// is always correct, just slower.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/plan_builder.h"
#include "src/model/parallel_runtime.h"
#include "src/tune/tune.h"

namespace smm::tune {

/// What identifies "this machine" for table reuse. Deliberately coarse:
/// CPU model string and core count — the calibrated constants themselves
/// travel *in* the table (digest-bound to the header), so they are data,
/// not a match criterion.
struct MachineFingerprint {
  std::uint64_t cpu_hash = 0;  ///< FNV of the CPU model string
  std::uint32_t cores = 0;     ///< std::thread::hardware_concurrency()

  friend bool operator==(const MachineFingerprint&,
                         const MachineFingerprint&) = default;
};

/// This host's fingerprint (cached after the first /proc/cpuinfo read).
MachineFingerprint machine_fingerprint();

/// Short hex token of the fingerprint, used in the default table
/// filename so tables from different machines can share one directory.
std::string fingerprint_token(const MachineFingerprint& fp);

/// One committed shape class in the table.
struct TableEntry {
  ShapeClass key;
  std::uint32_t epoch = 0;
  bool has_override = false;  ///< false: the default plan won
  core::BuildSpec spec;       ///< meaningful when has_override
  double mean_ns = 0.0;
  double var_ns2 = 0.0;
  std::uint64_t samples = 0;
};

enum class TableStatus : std::uint8_t {
  kOk = 0,
  kMissing,   ///< no file / unreadable — cold start, not an anomaly
  kCorrupt,   ///< truncated, bad magic/version, seal or digest mismatch
  kForeign,   ///< another machine's table
};

const char* to_string(TableStatus status);

/// Serialize and atomically replace `path` (write temp + rename, so a
/// crash mid-write leaves the previous table intact). Returns false on
/// any I/O failure.
bool write_table(const std::string& path, const MachineFingerprint& fp,
                 const model::ParallelCostModel& model,
                 const std::vector<TableEntry>& entries);

/// Parse and validate `path` against `expect`. On kOk, `model` and
/// `entries` are filled; on anything else both are left empty and the
/// caller must rebuild.
TableStatus read_table(const std::string& path,
                       const MachineFingerprint& expect,
                       model::ParallelCostModel* model,
                       std::vector<TableEntry>* entries);

}  // namespace smm::tune
