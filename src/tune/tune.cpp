#include "src/tune/tune.h"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "src/common/env.h"
#include "src/core/autotune.h"
#include "src/core/parallel_cost.h"
#include "src/core/parallel_select.h"
#include "src/core/smm.h"
#include "src/robust/health.h"
#include "src/tune/tune_table.h"

namespace smm::tune {

const char* to_string(Mode mode) {
  switch (mode) {
    case Mode::kAuto:
      return "auto";
    case Mode::kOff:
      return "off";
    case Mode::kObserve:
      return "observe";
    case Mode::kAdapt:
      return "adapt";
  }
  return "?";
}

Mode mode_from_env() {
  const std::string v = env::read_string("SMMKIT_AUTOTUNE", "observe");
  if (v == "off") return Mode::kOff;
  if (v == "observe") return Mode::kObserve;
  if (v == "adapt") return Mode::kAdapt;
  return Mode::kObserve;  // unparsable: keep the safe default
}

namespace {
// kAuto (0) doubles as "no override".
std::atomic<std::uint8_t> g_override{static_cast<std::uint8_t>(Mode::kAuto)};
}  // namespace

Mode mode() {
  const auto ov =
      static_cast<Mode>(g_override.load(std::memory_order_relaxed));
  if (ov != Mode::kAuto) return ov;
  // The env knob is read once: getenv on every warm call would put a
  // linear environ scan on the hot path (the SMMKIT_ABFT precedent).
  static const Mode env = mode_from_env();
  return env;
}

void set_mode_override(Mode mode) {
  g_override.store(static_cast<std::uint8_t>(mode),
                   std::memory_order_relaxed);
}

namespace {
std::atomic<int> g_sampling_suppression_holds{0};
thread_local int t_sample_suppress_depth = 0;
}  // namespace

void hold_sampling_suppression() {
  g_sampling_suppression_holds.fetch_add(1, std::memory_order_relaxed);
}

void release_sampling_suppression() {
  // CAS loop instead of fetch_sub: clamped at zero so an unbalanced
  // release can never park the counter negative and swallow the next
  // holder's suppression.
  int held = g_sampling_suppression_holds.load(std::memory_order_relaxed);
  while (held > 0 && !g_sampling_suppression_holds.compare_exchange_weak(
                         held, held - 1, std::memory_order_relaxed)) {
  }
}

bool sampling_suppressed() {
  return t_sample_suppress_depth > 0 ||
         g_sampling_suppression_holds.load(std::memory_order_relaxed) > 0;
}

ScopedSampleSuppression::ScopedSampleSuppression() {
  ++t_sample_suppress_depth;
}

ScopedSampleSuppression::~ScopedSampleSuppression() {
  --t_sample_suppress_depth;
}

namespace {

/// The PlanCache key contribution of one tuning epoch: epoch 0 (never
/// re-planned, and any class the tuner reverted to the default spec)
/// contributes nothing, so those lookups alias the untouched default
/// entry instead of duplicating it.
std::uint64_t epoch_fingerprint(std::uint32_t epoch) {
  if (epoch == 0) return 0;
  std::uint64_t h = 1469598103934665603ull ^ (0x746e65ull << 8);  // "tne"
  h ^= epoch;
  h *= 1099511628211ull;
  return h;
}

GemmShape class_shape(const ShapeClass& sc) {
  return GemmShape{sc.m, sc.n, sc.k};
}

plan::ScalarType class_scalar(const ShapeClass& sc) {
  return sc.scalar == static_cast<int>(plan::ScalarType::kF64)
             ? plan::ScalarType::kF64
             : plan::ScalarType::kF32;
}

/// The spec the un-tuned runtime path would build for this class (the
/// runtime entry points resolve kAuto scaling to kMeasured before the
/// builder runs, so mirror that here).
core::BuildSpec class_default_spec(const ShapeClass& sc) {
  core::SmmOptions options;
  options.thread_scaling = core::SmmOptions::ThreadScaling::kMeasured;
  return core::default_build_spec(class_shape(sc), class_scalar(sc),
                                  sc.nthreads, options);
}

bool same_spec(const core::BuildSpec& a, const core::BuildSpec& b) {
  return a.mr == b.mr && a.nr == b.nr && a.mc == b.mc && a.kc == b.kc &&
         a.nc == b.nc && a.pack_a == b.pack_a && a.pack_b == b.pack_b &&
         a.edge_pack_b == b.edge_pack_b && a.nthreads == b.nthreads &&
         a.ways.jc == b.ways.jc && a.ways.ic == b.ways.ic &&
         a.ways.jr == b.ways.jr && a.ways.ir == b.ways.ir &&
         a.k_parts == b.k_parts;
}

}  // namespace

Tuner::Tuner() : Tuner(Options{}) {}

Tuner::Tuner(Options options) : options_(std::move(options)) {}

double Tuner::predict_ns(const ShapeClass& sc,
                         const core::BuildSpec& spec) const {
  const model::ParallelCostModel& m = core::calibrated_cost_model();
  return model::predict_parallel_ns(m, class_shape(sc), spec.nthreads,
                                    spec.k_parts, spec.ways, spec.mr,
                                    spec.nr, spec.mc, spec.kc, spec.nc);
}

PlanChoice Tuner::plan_choice(const ShapeClass& sc) {
  if (mode() != Mode::kAdapt) return {};
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = classes_.find(sc);
  if (it == classes_.end()) return {};
  const ClassState& st = it->second;
  if (!st.has_override) return {};  // default plan, default cache key
  PlanChoice choice;
  choice.fingerprint = epoch_fingerprint(st.epoch);
  choice.has_spec = true;
  choice.spec = st.installed;
  return choice;
}

SampleToken Tuner::sample_token(const ShapeClass& sc) {
  if (mode() == Mode::kOff) return {};
  // Failover gate (DESIGN.md §15): a suppressed context (brownout, or a
  // lane executing on a non-healthy shard) produces wall times that
  // describe the failure, not the plan — issue no token at all so even
  // an exploration trial never ingests them.
  if (sampling_suppressed()) return {};
  // Mid-exploration classes sample every call — a trial that waited for
  // the 1-in-N counter would take N x trial_samples calls to converge.
  // The atomic count keeps this a single relaxed load when (as almost
  // always) nothing is exploring.
  if (exploring_.load(std::memory_order_relaxed) > 0) {
    std::shared_lock<std::shared_mutex> lock(mu_);
    const auto it = classes_.find(sc);
    if (it != classes_.end() &&
        it->second.phase == ClassState::Phase::kExplore)
      return {true, it->second.epoch};
  }
  const std::uint64_t n =
      call_counter_.fetch_add(1, std::memory_order_relaxed);
  const int period = std::max(1, options_.sample_period);
  if (n % static_cast<std::uint64_t>(period) != 0) return {};
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = classes_.find(sc);
  return {true, it == classes_.end() ? 0u : it->second.epoch};
}

void Tuner::begin_explore_locked(const ShapeClass& sc, ClassState& st) {
  // The observed default cost is the posterior the candidates must beat;
  // st.installed still holds the default spec at this point (kBaseline)
  // or the previously committed winner (drift re-entry) — either way the
  // incumbent the winner is compared against.
  st.default_mean_ns = st.ewma_ns;
  st.explored_once = true;

  // Candidate generation: diversity-first, prior-ranked. On hosts where
  // the analytic model separates candidates (multi-thread shapes) the
  // stable sort puts the cheapest first; where it cannot (serial plans
  // price identically — the model carries no pack or tile term for
  // them), the construction order guarantees the single-knob variations
  // of the incumbent (pack_b flip, kc steps, alternate tiles) all make
  // the truncated list instead of one corner of the grid.
  const core::BuildSpec base = class_default_spec(sc);
  std::vector<Candidate> cands;
  const auto push = [&](core::BuildSpec spec) {
    if (same_spec(spec, base)) return;
    // Cooperative multi-thread plans require packing (shared buffers);
    // skip inconsistent candidates rather than build them (autotune.h).
    if (spec.nthreads > 1 && spec.k_parts == 1 && !spec.pack_b) return;
    for (const Candidate& c : cands)
      if (same_spec(c.spec, spec)) return;
    Candidate cand;
    cand.spec = spec;
    cand.predicted_ns = predict_ns(sc, spec);
    cands.push_back(cand);
  };

  // 1. The incumbent with packing flipped (the paper's Section III-A
  //    heuristic is exactly the decision most worth second-guessing).
  {
    core::BuildSpec flip = base;
    flip.pack_b = !base.pack_b;
    flip.edge_pack_b = !flip.pack_b;
    push(flip);
  }
  const core::TuneSpace space;
  // 2. kc steps at the incumbent tile.
  for (const index_t kc : space.kc_values) {
    core::BuildSpec alt = base;
    alt.kc = kc;
    push(alt);
  }
  // 3. Alternate tiles (autotune's construction: static parallel choice,
  //    both packing modes).
  for (const auto& [mr, nr] : space.tiles) {
    for (const bool pack_b : space.pack_b_choices) {
      core::BuildSpec alt;
      alt.mr = mr;
      alt.nr = nr;
      alt.kc = base.kc;
      alt.mc = 240;
      alt.nc = 480;
      alt.pack_a = base.pack_a;
      alt.pack_b = pack_b;
      alt.edge_pack_b = !pack_b;
      const core::ParallelChoice pc = core::choose_parallel(
          class_shape(sc), std::max(1, sc.nthreads), mr, nr, alt.mc,
          alt.nc);
      alt.nthreads = pc.nthreads;
      alt.ways = pc.ways;
      alt.k_parts = pc.k_parts;
      push(alt);
    }
  }

  std::stable_sort(cands.begin(), cands.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.predicted_ns < b.predicted_ns;
                   });
  const auto limit = static_cast<std::size_t>(
      std::max(1, options_.max_candidates));
  if (cands.size() > limit) cands.resize(limit);
  if (cands.empty()) {
    // Nothing to try (degenerate space): stay committed to the default.
    st.phase = ClassState::Phase::kCommitted;
    st.committed_ns = st.ewma_ns;
    return;
  }

  st.candidates = std::move(cands);
  st.active = 0;
  if (st.phase != ClassState::Phase::kExplore)
    exploring_.fetch_add(1, std::memory_order_relaxed);
  st.phase = ClassState::Phase::kExplore;
  install_locked(sc, st, /*has_override=*/true, st.candidates[0].spec);
}

void Tuner::install_locked(const ShapeClass& /*sc*/, ClassState& st,
                           bool has_override,
                           const core::BuildSpec& spec) {
  st.has_override = has_override;
  st.installed = spec;
  ++st.epoch;
  replans_.fetch_add(1, std::memory_order_relaxed);
  // A re-plan is driven by a sample recorded just before it in the same
  // call; the transaction groups the bump so a scraper never reads
  // tune_replans ahead of the samples that caused them.
  robust::Health::Transaction tx;
  robust::health().tune_replans.fetch_add(1, std::memory_order_relaxed);
}

void Tuner::commit_locked(const ShapeClass& sc, ClassState& st) {
  // Posterior winner: the best observed candidate mean vs the observed
  // default. Unobserved candidates (cancelled trials) can't win.
  int best = -1;
  for (std::size_t i = 0; i < st.candidates.size(); ++i) {
    const Candidate& c = st.candidates[i];
    if (c.samples == 0) continue;
    if (best < 0 || c.mean_ns < st.candidates[static_cast<std::size_t>(
                                    best)].mean_ns)
      best = static_cast<int>(i);
  }
  const bool candidate_wins =
      best >= 0 && st.default_mean_ns > 0.0 &&
      st.candidates[static_cast<std::size_t>(best)].mean_ns <
          st.default_mean_ns;
  if (candidate_wins) {
    const Candidate& win = st.candidates[static_cast<std::size_t>(best)];
    install_locked(sc, st, /*has_override=*/true, win.spec);
    st.committed_ns = win.mean_ns;
    st.ewma_ns = win.mean_ns;
  } else {
    // The default held: revert. Epoch still bumps (the trial plans must
    // age out) but the zero fingerprint re-aliases the default entry.
    install_locked(sc, st, /*has_override=*/false, class_default_spec(sc));
    st.committed_ns =
        st.default_mean_ns > 0.0 ? st.default_mean_ns : st.ewma_ns;
    st.ewma_ns = st.committed_ns;
  }
  st.ewvar_ns2 = 0.0;
  st.candidates.clear();
  st.candidates.shrink_to_fit();
  st.active = -1;
  st.phase = ClassState::Phase::kCommitted;
  exploring_.fetch_sub(1, std::memory_order_relaxed);
}

void Tuner::record(const ShapeClass& sc, SampleToken token, double wall_ns,
                   const std::vector<plan::ThreadTiming>& /*timings*/) {
  if (!token.sample || !(wall_ns > 0.0) || !std::isfinite(wall_ns)) return;
  const Mode m = mode();
  if (m == Mode::kOff) return;

  bool committed = false;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto [it, inserted] = classes_.try_emplace(sc);
    ClassState& st = it->second;
    if (inserted) st.installed = class_default_spec(sc);
    if (token.epoch != st.epoch) return;  // a plan the tuner replaced

    samples_.fetch_add(1, std::memory_order_relaxed);
    robust::health().tune_samples.fetch_add(1, std::memory_order_relaxed);

    // EWMA + exponentially weighted variance of the installed plan.
    const double a = std::clamp(options_.ewma_alpha, 0.01, 1.0);
    if (st.samples == 0) {
      st.ewma_ns = wall_ns;
      st.ewvar_ns2 = 0.0;
    } else {
      const double d = wall_ns - st.ewma_ns;
      st.ewma_ns += a * d;
      st.ewvar_ns2 = (1.0 - a) * (st.ewvar_ns2 + a * d * d);
    }
    ++st.samples;

    if (m != Mode::kAdapt) return;  // observe: the posterior is the product

    switch (st.phase) {
      case ClassState::Phase::kBaseline: {
        if (st.samples < static_cast<std::uint64_t>(
                             std::max(1, options_.min_samples)))
          break;
        const double predicted = predict_ns(sc, st.installed);
        const bool diverged =
            predicted > 0.0 &&
            std::abs(st.ewma_ns - predicted) >
                options_.hysteresis * predicted;
        const bool hot = options_.explore_hot && !st.explored_once &&
                         st.samples >= options_.hot_samples;
        if (diverged || hot) begin_explore_locked(sc, st);
        break;
      }
      case ClassState::Phase::kExplore: {
        if (st.active < 0 ||
            st.active >= static_cast<int>(st.candidates.size())) {
          commit_locked(sc, st);
          committed = true;
          break;
        }
        Candidate& cand =
            st.candidates[static_cast<std::size_t>(st.active)];
        cand.mean_ns = (cand.mean_ns * cand.samples + wall_ns) /
                       (cand.samples + 1);
        ++cand.samples;
        if (cand.samples >= std::max(1, options_.trial_samples)) {
          ++st.active;
          if (st.active < static_cast<int>(st.candidates.size())) {
            install_locked(
                sc, st, /*has_override=*/true,
                st.candidates[static_cast<std::size_t>(st.active)].spec);
          } else {
            commit_locked(sc, st);
            committed = true;
          }
        }
        break;
      }
      case ClassState::Phase::kCommitted: {
        // Drift: the workload (or the machine) moved out from under the
        // committed winner; re-open the class. The hysteresis band keeps
        // ordinary variance from flapping plans.
        if (st.committed_ns > 0.0 &&
            st.ewma_ns > (1.0 + options_.hysteresis) * st.committed_ns)
          begin_explore_locked(sc, st);
        break;
      }
    }
  }
  // Persist outside the unique lock (save_table takes a shared lock).
  if (committed && !options_.table_dir.empty())
    save_table(table_path(options_.table_dir));
}

std::optional<double> Tuner::observed_cost_ns(index_t m, index_t n,
                                              index_t k, int scalar,
                                              int nthreads) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto min_n =
      static_cast<std::uint64_t>(std::max(1, options_.min_samples));
  if (scalar >= 0) {
    const auto it = classes_.find(ShapeClass{m, n, k, scalar, nthreads});
    if (it == classes_.end() || it->second.samples < min_n)
      return std::nullopt;
    return it->second.ewma_ns;
  }
  // scalar < 0: the service estimates before it knows T — serve the
  // best-observed class of either scalar type for this (m, n, k, nt).
  std::optional<double> out;
  for (int s = 0; s < 2; ++s) {
    const auto it = classes_.find(ShapeClass{m, n, k, s, nthreads});
    if (it == classes_.end() || it->second.samples < min_n) continue;
    if (!out || it->second.samples > min_n) out = it->second.ewma_ns;
  }
  return out;
}

std::string Tuner::table_path(const std::string& dir) {
  std::string path = dir;
  if (!path.empty() && path.back() != '/') path += '/';
  path += "smmtune-" + fingerprint_token(machine_fingerprint()) + ".tbl";
  return path;
}

bool Tuner::save_table(const std::string& path) const {
  std::vector<TableEntry> entries;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    for (const auto& [key, st] : classes_) {
      if (st.phase != ClassState::Phase::kCommitted) continue;
      TableEntry e;
      e.key = key;
      e.epoch = st.epoch;
      e.has_override = st.has_override;
      e.spec = st.installed;
      e.mean_ns = st.ewma_ns;
      e.var_ns2 = st.ewvar_ns2;
      e.samples = st.samples;
      entries.push_back(e);
    }
  }
  return write_table(path, machine_fingerprint(),
                     core::calibrated_cost_model(), entries);
}

bool Tuner::load_table(const std::string& path) {
  model::ParallelCostModel stored;
  std::vector<TableEntry> entries;
  const TableStatus status =
      read_table(path, machine_fingerprint(), &stored, &entries);
  if (status == TableStatus::kMissing) return false;  // cold start
  if (status != TableStatus::kOk) {
    table_stale_.fetch_add(1, std::memory_order_relaxed);
    robust::health().tune_table_stale.fetch_add(1,
                                                std::memory_order_relaxed);
    return false;
  }
  // Seed the process cost model before anything calibrates: the warm
  // start skips the measurement burst too. A process that already
  // calibrated keeps its own constants (set_calibrated_model no-ops) —
  // the table's committed winners are still valid observations.
  core::set_calibrated_model(stored);

  std::unique_lock<std::shared_mutex> lock(mu_);
  for (const TableEntry& e : entries) {
    ClassState st;
    st.phase = ClassState::Phase::kCommitted;
    st.ewma_ns = e.mean_ns;
    st.ewvar_ns2 = e.var_ns2;
    st.samples = e.samples;
    st.epoch = e.epoch;
    st.has_override = e.has_override;
    st.installed = e.has_override ? e.spec : class_default_spec(e.key);
    st.committed_ns = e.mean_ns;
    st.explored_once = true;
    st.from_table = true;
    classes_[e.key] = std::move(st);
    table_hits_.fetch_add(1, std::memory_order_relaxed);
    robust::health().tune_table_hits.fetch_add(1,
                                               std::memory_order_relaxed);
  }
  return true;
}

void Tuner::reset() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  classes_.clear();
  exploring_.store(0, std::memory_order_relaxed);
  call_counter_.store(0, std::memory_order_relaxed);
  samples_.store(0, std::memory_order_relaxed);
  replans_.store(0, std::memory_order_relaxed);
  table_hits_.store(0, std::memory_order_relaxed);
  table_stale_.store(0, std::memory_order_relaxed);
}

void Tuner::set_options(Options options) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  options_ = std::move(options);
}

std::uint64_t Tuner::samples() const {
  return samples_.load(std::memory_order_relaxed);
}
std::uint64_t Tuner::replans() const {
  return replans_.load(std::memory_order_relaxed);
}
std::uint64_t Tuner::table_hits() const {
  return table_hits_.load(std::memory_order_relaxed);
}
std::uint64_t Tuner::table_stale() const {
  return table_stale_.load(std::memory_order_relaxed);
}

std::vector<ClassSnapshot> Tuner::snapshot_classes() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<ClassSnapshot> out;
  out.reserve(classes_.size());
  for (const auto& [key, st] : classes_) {
    ClassSnapshot s;
    s.key = key;
    s.ewma_ns = st.ewma_ns;
    s.ewvar_ns2 = st.ewvar_ns2;
    s.samples = st.samples;
    s.epoch = st.epoch;
    s.committed = st.phase == ClassState::Phase::kCommitted;
    s.exploring = st.phase == ClassState::Phase::kExplore;
    s.from_table = st.from_table;
    s.spec = st.installed;
    out.push_back(s);
  }
  return out;
}

Tuner& tuner() {
  // Immortal (leaked) like smm_plan_cache: warm-path callers touch it
  // from worker threads whose lifetime static destruction does not
  // respect. First use reads SMMKIT_TUNE_DIR and loads the persisted
  // table, so the seed happens before the first plan build that would
  // otherwise trigger calibration.
  static Tuner* instance = [] {
    Tuner::Options options;
    options.table_dir = env::read_string("SMMKIT_TUNE_DIR", "");
    auto* t = new Tuner{options};
    if (!options.table_dir.empty())
      t->load_table(Tuner::table_path(options.table_dir));
    return t;
  }();
  return *instance;
}

}  // namespace smm::tune
