#include "src/failover/failover.h"

#include <algorithm>

#include "src/common/env.h"

namespace smm::failover {

const char* to_string(ShardState state) {
  switch (state) {
    case ShardState::kHealthy:
      return "healthy";
    case ShardState::kDegraded:
      return "degraded";
    case ShardState::kQuarantined:
      return "quarantined";
    case ShardState::kRebuilding:
      return "rebuilding";
  }
  return "?";
}

FailoverOptions failover_options_from_env(FailoverOptions base) {
  base.quarantine_ms =
      env::read_long("SMMKIT_SHARD_QUARANTINE", base.quarantine_ms);
  base.hedge_ms = env::read_long("SMMKIT_HEDGE_MS", base.hedge_ms);
  return base;
}

ShardHealth::ShardHealth(FailoverOptions options,
                         service::CircuitBreaker::Options breaker)
    : options_(options), breaker_(breaker) {}

void ShardHealth::on_success() {
  std::lock_guard<std::mutex> lock(mu_);
  consecutive_failures_ = 0;
  const ShardState s = state_.load(std::memory_order_relaxed);
  // A quarantined shard cannot heal through traffic it no longer owns
  // (stolen leftovers, in-flight stragglers): recovery goes through the
  // rebuild probe so the state machine has one re-entry path.
  if (s == ShardState::kDegraded || s == ShardState::kRebuilding)
    state_.store(ShardState::kHealthy, std::memory_order_release);
}

bool ShardHealth::on_failure() {
  std::lock_guard<std::mutex> lock(mu_);
  const ShardState s = state_.load(std::memory_order_relaxed);
  if (s == ShardState::kQuarantined) return false;
  if (s == ShardState::kRebuilding) {
    // The probe failed: recovery was premature, straight back out.
    return enter_quarantine_locked(/*admin_hold=*/false);
  }
  ++consecutive_failures_;
  if (s == ShardState::kHealthy &&
      consecutive_failures_ >= options_.degrade_after)
    state_.store(ShardState::kDegraded, std::memory_order_release);
  if (consecutive_failures_ >= options_.quarantine_after)
    return enter_quarantine_locked(/*admin_hold=*/false);
  return false;
}

bool ShardHealth::on_pool_quarantine() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_.load(std::memory_order_relaxed) == ShardState::kQuarantined)
    return false;
  return enter_quarantine_locked(/*admin_hold=*/false);
}

bool ShardHealth::force_quarantine() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_.load(std::memory_order_relaxed) == ShardState::kQuarantined) {
    admin_hold_ = true;  // upgrade an organic quarantine to a held one
    return false;
  }
  return enter_quarantine_locked(/*admin_hold=*/true);
}

bool ShardHealth::maybe_begin_rebuild(
    std::chrono::steady_clock::time_point now) {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_.load(std::memory_order_relaxed) != ShardState::kQuarantined)
    return false;
  if (admin_hold_ || now < quarantined_until_) return false;
  return begin_rebuild_locked();
}

bool ShardHealth::revive() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_.load(std::memory_order_relaxed) != ShardState::kQuarantined)
    return false;
  return begin_rebuild_locked();
}

bool ShardHealth::enter_quarantine_locked(bool admin_hold) {
  state_.store(ShardState::kQuarantined, std::memory_order_release);
  consecutive_failures_ = 0;
  admin_hold_ = admin_hold;
  quarantined_until_ = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(options_.quarantine_ms);
  quarantines_.fetch_add(1, std::memory_order_relaxed);
  // The shard stops taking placements; keep its breaker open too so a
  // racing admission that read the old state still gets refused.
  breaker_.trip();
  return true;
}

bool ShardHealth::begin_rebuild_locked() {
  state_.store(ShardState::kRebuilding, std::memory_order_release);
  consecutive_failures_ = 0;
  admin_hold_ = false;
  rebuilds_.fetch_add(1, std::memory_order_relaxed);
  // Fresh streak for the probe: the breaker restarts closed so the
  // first probe request is actually admitted.
  breaker_.on_success();
  return true;
}

LatencyWindow::LatencyWindow(std::size_t capacity)
    : ring_(std::max<std::size_t>(capacity, 8)) {}

void LatencyWindow::record(double ns) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_[next_] = ns;
  next_ = (next_ + 1) % ring_.size();
  size_ = std::min(size_ + 1, ring_.size());
}

double LatencyWindow::quantile(double q, double fallback_ns) const {
  std::vector<double> copy;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (size_ == 0) return fallback_ns;
    copy.assign(ring_.begin(),
                ring_.begin() + static_cast<std::ptrdiff_t>(size_));
  }
  q = std::clamp(q, 0.0, 1.0);
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(copy.size() - 1) + 0.5);
  std::nth_element(copy.begin(),
                   copy.begin() + static_cast<std::ptrdiff_t>(idx),
                   copy.end());
  return copy[idx];
}

std::size_t LatencyWindow::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

}  // namespace smm::failover
