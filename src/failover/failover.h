// smm::failover — per-shard failure domains (DESIGN.md §15).
//
// PR 7 sharded the runtime into per-panel execution domains, but failure
// handling stayed process-wide: one CircuitBreaker and one quarantine
// signal meant a single sick shard (hung pool, corrupted private cache)
// either tripped refusals for *all* traffic or silently kept receiving
// its deterministic share of the route hash. This module gives every
// shard its own health ledger so the service can treat shards the way
// the asymmetric-capacity literature treats cores: unequal, time-varying
// capacity that routing and admission must track.
//
// Per shard:
//   - a lifecycle state machine
//       healthy ──failures──► degraded ──more──► quarantined
//          ▲                                        │ hold
//          └────── success ◄── rebuilding ◄─────────┘ (quarantine_ms)
//     driven by that shard's own outcome stream (infra-class failures,
//     pool quarantines) — never by a neighbour's;
//   - a private CircuitBreaker consulted only for traffic placed on that
//     shard, so one sick domain can no longer refuse everyone.
//
// The service layers three mechanisms on top (smm_service.h):
//   - re-routing: a quarantined shard is drained and its traffic follows
//     a deterministic fallback ring to the next admissible shard (the
//     route hash is untouched, so coalescing keys stay stable);
//   - hedged execution: a kHigh request with deadline slack gets a
//     backup submission on a different shard after a percentile-based
//     delay (LatencyWindow), first terminal wins;
//   - brownout: when a majority of shards are quarantined, kLow is shed
//     at the door, tune sampling pauses, and ABFT-correct serves
//     detect-only — explicit degraded service instead of collapsing
//     into a global breaker.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "src/service/circuit_breaker.h"

namespace smm::failover {

/// Shard lifecycle (DESIGN.md §15). kQuarantined is the only state that
/// refuses placements; kDegraded and kRebuilding still serve traffic
/// (rebuilding is the probe that proves recovery).
enum class ShardState : std::uint8_t {
  kHealthy = 0,
  kDegraded,
  kQuarantined,
  kRebuilding,
};

const char* to_string(ShardState state);

struct FailoverOptions {
  /// Master switch for the per-shard failure domains; single-shard
  /// services ignore it (with one domain there is nowhere to fail over,
  /// so the legacy global breaker path is kept verbatim).
  bool enabled = true;
  /// Consecutive infra-class failures before healthy -> degraded.
  int degrade_after = 2;
  /// Consecutive infra-class failures before degraded -> quarantined.
  int quarantine_after = 4;
  /// How long a quarantined shard is held before the rebuild probe
  /// (kRebuilding) readmits traffic. Env: SMMKIT_SHARD_QUARANTINE (ms).
  long quarantine_ms = 25;
  /// Fixed hedge delay in ms; 0 = derive it from the observed completion
  /// latency percentile below. Env: SMMKIT_HEDGE_MS.
  long hedge_ms = 0;
  /// A kHigh request is hedge-eligible when its deadline budget exceeds
  /// this multiple of its predicted cost.
  double hedge_budget_factor = 2.0;
  /// Completion-latency percentile used for the auto hedge delay.
  double hedge_percentile = 0.95;
};

/// FailoverOptions with the SMMKIT_* environment overrides applied on
/// top of `base` (unparsable or negative values are ignored).
FailoverOptions failover_options_from_env(FailoverOptions base = {});

/// Health ledger for one shard: the lifecycle state machine plus the
/// shard-private circuit breaker. Outcome feeds come from the shard's
/// own traffic only. The `on_*` transitions return true exactly when the
/// event moved the shard *into* kQuarantined — the caller owns the drain
/// that must follow.
class ShardHealth {
 public:
  ShardHealth(FailoverOptions options,
              service::CircuitBreaker::Options breaker);

  [[nodiscard]] ShardState state() const {
    return state_.load(std::memory_order_acquire);
  }
  /// May the router/ring place new work here? Everything but
  /// kQuarantined: degraded still serves, rebuilding is the probe.
  [[nodiscard]] bool admissible() const {
    return state() != ShardState::kQuarantined;
  }
  [[nodiscard]] service::CircuitBreaker& breaker() { return breaker_; }

  /// A request this shard executed reached a clean terminal: clears the
  /// failure streak; a rebuilding or degraded shard heals to kHealthy.
  void on_success();
  /// Infra-class failure (dead worker, pool timeout, data corruption —
  /// the same set that feeds CircuitBreaker::on_failure). Returns true
  /// on entry into kQuarantined.
  bool on_failure();
  /// The shard's private pool quarantined itself (watchdog): the hard
  /// signal — straight to kQuarantined. Returns true on entry.
  bool on_pool_quarantine();
  /// Administrative quarantine (fault drills, operational tooling).
  /// Held until revive() — it never auto-expires into rebuilding.
  bool force_quarantine();
  /// kQuarantined -> kRebuilding once quarantine_ms has elapsed (no-op
  /// for administrative holds). Returns true on the transition.
  bool maybe_begin_rebuild(std::chrono::steady_clock::time_point now);
  /// Administrative revive: kQuarantined -> kRebuilding immediately.
  bool revive();

  [[nodiscard]] std::size_t quarantines() const {
    return quarantines_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t rebuilds() const {
    return rebuilds_.load(std::memory_order_relaxed);
  }

 private:
  /// Returns true when this call moved the shard into kQuarantined.
  bool enter_quarantine_locked(bool admin_hold);
  bool begin_rebuild_locked();

  FailoverOptions options_;
  service::CircuitBreaker breaker_;
  mutable std::mutex mu_;
  std::atomic<ShardState> state_{ShardState::kHealthy};
  int consecutive_failures_ = 0;  // guarded by mu_
  bool admin_hold_ = false;       // guarded by mu_
  std::chrono::steady_clock::time_point quarantined_until_{};  // mu_
  std::atomic<std::size_t> quarantines_{0};
  std::atomic<std::size_t> rebuilds_{0};
};

/// Deterministic fallback ring: the first shard after `home` (scanning
/// (home+1) % n, (home+2) % n, ...) for which `admissible` holds.
/// Returns `home` when no other shard qualifies — the caller decides
/// whether home itself can take the work. Pure scan, no state: the same
/// health vector always yields the same fallback (tests assert it).
template <typename Pred>
int next_on_ring(int home, int nshards, Pred admissible) {
  for (int d = 1; d < nshards; ++d) {
    const int candidate = (home + d) % nshards;
    if (admissible(candidate)) return candidate;
  }
  return home;
}

/// Sliding window of completion latencies feeding the hedge delay: the
/// p-th percentile of recent wall times is the point where a still-
/// outstanding request has statistically stalled and a backup is worth
/// its cost. Fixed-capacity ring, mutex-guarded (recorded once per
/// completed request — far off the per-op hot path).
class LatencyWindow {
 public:
  explicit LatencyWindow(std::size_t capacity = 256);

  void record(double ns);
  /// Percentile (q in [0,1]) of the window; `fallback_ns` when empty.
  [[nodiscard]] double quantile(double q, double fallback_ns) const;
  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::vector<double> ring_;
  std::size_t size_ = 0;
  std::size_t next_ = 0;
};

}  // namespace smm::failover
