#include "src/shard/shard.h"

#include <algorithm>

#include "src/common/env.h"
#include "src/model/parallel_runtime.h"

namespace smm::shard {

int default_shard_count() {
  // Default: the sim's Phytium 2000+ panel count.
  const long shards = env::read_positive_long("SMMKIT_SHARDS", 8);
  return std::clamp(static_cast<int>(shards), 1, kMaxShards);
}

namespace {

inline void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v;
  h *= 1099511628211ull;
}

}  // namespace

std::uint64_t shape_class_hash(const ShapeClass& sc) {
  std::uint64_t h = 1469598103934665603ull;
  fnv_mix(h, static_cast<std::uint64_t>(sc.m));
  fnv_mix(h, static_cast<std::uint64_t>(sc.n));
  fnv_mix(h, static_cast<std::uint64_t>(sc.k));
  fnv_mix(h, static_cast<std::uint64_t>(sc.scalar));
  return h;
}

int route(std::uint64_t shape_hash, double est_cost_ns, int nshards) {
  if (nshards <= 1) return 0;
  // Bucketize the predicted cost on a log2 scale in units of one
  // dispatch quantum (the reference model's fixed per-call cost — the
  // Table II overhead the whole runtime exists to amortize). The bucket
  // is a pure function of the estimate, so equal shape classes always
  // share it; folding it in re-mixes traffic classes whose costs differ
  // by powers of two so the expensive tail does not ride the raw shape
  // hash onto one shard.
  const double quantum =
      std::max(1.0, model::reference_cost_model().dispatch_ns);
  std::uint64_t bucket = 0;
  double units = est_cost_ns / quantum;
  while (units >= 2.0 && bucket < 63) {
    units *= 0.5;
    ++bucket;
  }
  std::uint64_t h = shape_hash;
  fnv_mix(h, bucket);
  // xor-fold before the modulo: FNV's low bits are its weakest.
  h ^= h >> 32;
  return static_cast<int>(h % static_cast<std::uint64_t>(nshards));
}

}  // namespace smm::shard
