// smm::shard — shape-and-cost-aware placement of SMM requests across
// execution domains (DESIGN.md §13).
//
// The simulated Phytium 2000+ has eight panels, each with its own memory
// controller (sim/memory/numa.h); a runtime that funnels every request
// through one WorkerPool, one PlanCache, and one service queue turns
// those panels into a single contended domain. The shard router is the
// placement half of the fix: each request is assigned a shard by a hash
// of its *shape class* (m, n, k, scalar) folded with a bucketized
// predicted cost, so
//   - one hot shape always lands on one shard (its plan stays
//     cache-local, its packed buffers stay in one panel's LLC slice),
//   - shapes of similar cost spread across shards instead of piling the
//     expensive tail onto whichever shard hashes unlucky.
// Placement is a pure function — no state, no RNG — so tests can assert
// determinism and the router can run on the submit path in O(ns).
//
// Skew tolerance is the service's job (bounded work stealing between
// shards, smm_service.h); the router only has to be deterministic and
// roughly uniform.
#pragma once

#include <cstdint>

#include "src/common/types.h"

namespace smm::shard {

/// Shards a service resolves when ServiceOptions::shards == 0 (auto):
/// SMMKIT_SHARDS when set to a positive integer, else 8 — the sim's
/// panel count. Clamped to [1, kMaxShards].
int default_shard_count();

/// Hard cap on shard domains (each owns lanes, a pool, a plan cache).
inline constexpr int kMaxShards = 64;

/// What the router keys on: two requests with equal shape class are the
/// same traffic class and must land on the same shard (coalescing and
/// plan-cache locality both depend on it).
struct ShapeClass {
  index_t m = 0;
  index_t n = 0;
  index_t k = 0;
  /// plan::ScalarType as an int (f32 and f64 plans never coalesce).
  int scalar = 0;
};

/// Stable FNV-1a hash of a shape class. Pure function of the fields.
std::uint64_t shape_class_hash(const ShapeClass& sc);

/// Shard for (shape-class hash, predicted cost) among `nshards`.
/// `est_cost_ns` is bucketized on a log2 scale in units of the reference
/// cost model's dispatch quantum (model::ParallelCostModel::dispatch_ns)
/// before being folded into the hash: same shape class => same bucket =>
/// same shard, while shapes an order of magnitude apart in predicted
/// cost get re-mixed instead of riding the raw hash alone. Deterministic
/// and in [0, nshards).
///
/// Stability contract (DESIGN.md §14): callers must feed a cost estimate
/// that is constant for a shape's lifetime — the service passes its
/// *static* model estimate, never the autotuner's revised one. A tuned
/// cost that crossed a log2 bucket boundary would silently re-home the
/// shape, abandoning its shard-local plan cache and warm pool.
int route(std::uint64_t shape_hash, double est_cost_ns, int nshards);

}  // namespace smm::shard
