// Umbrella header: the whole public surface of smmkit.
//
//   #include "src/smmkit.h"
//
// pulls in the reference SMM (smm::core), the four library strategy
// models (smm::libs), the plan machinery (smm::plan), the analytical
// models (smm::model), the Phytium 2000+ machine model (smm::sim), the
// robustness layer (smm::robust) and the serving front-end
// (smm::service). Fine-grained headers remain available for faster
// builds.
#pragma once

#include "src/core/autotune.h"
#include "src/core/batched.h"
#include "src/core/plan_cache.h"
#include "src/core/smm.h"
#include "src/libs/blasfeo_like/gemm_blasfeo_like.h"
#include "src/libs/blis_like/gemm_blis_like.h"
#include "src/libs/eigen_like/gemm_eigen_like.h"
#include "src/libs/gemm_interface.h"
#include "src/libs/naive.h"
#include "src/libs/openblas_like/gemm_openblas_like.h"
#include "src/matrix/compare.h"
#include "src/matrix/matrix.h"
#include "src/matrix/panel_matrix.h"
#include "src/model/equations.h"
#include "src/model/kernel_space.h"
#include "src/model/peak.h"
#include "src/model/prediction.h"
#include "src/plan/exec_scratch.h"
#include "src/plan/native_executor.h"
#include "src/plan/plan_stats.h"
#include "src/robust/abft.h"
#include "src/robust/fault_injection.h"
#include "src/robust/guarded_executor.h"
#include "src/robust/health.h"
#include "src/robust/integrity.h"
#include "src/service/smm_service.h"
#include "src/sim/exec/pricer.h"
#include "src/sim/exec/trace_export.h"
#include "src/sim/machine.h"
