// Fundamental scalar and index types used across smmkit.
#pragma once

#include <cstddef>
#include <cstdint>

namespace smm {

/// Signed index type for all matrix dimensions and loop bounds.
/// Signed (not size_t) so that backwards loops and differences are safe.
using index_t = std::int64_t;

/// Cycle counts produced by the machine model. Fractional cycles are kept
/// because plan pricing averages amortized per-iteration costs.
using cycles_t = double;

/// Cache-line-sized alignment used for all packed buffers.
inline constexpr std::size_t kBufferAlignment = 64;

/// Dimensions of one GEMM problem C(MxN) = alpha*A(MxK)*B(KxN) + beta*C.
struct GemmShape {
  index_t m = 0;
  index_t n = 0;
  index_t k = 0;

  /// Number of useful floating-point operations (multiply+add counted
  /// separately, the convention used for "Gflops" throughout the paper).
  [[nodiscard]] double flops() const {
    return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
           static_cast<double>(k);
  }

  [[nodiscard]] bool valid() const { return m >= 0 && n >= 0 && k >= 0; }

  friend bool operator==(const GemmShape&, const GemmShape&) = default;
};

}  // namespace smm
