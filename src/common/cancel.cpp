#include "src/common/cancel.h"

namespace smm {

void CancelToken::throw_if_stopped() const {
  if (state_ == nullptr) return;
  if (state_->cancelled.load(std::memory_order_relaxed))
    throw Error(ErrorCode::kCancelled, "smmkit: request cancelled");
  if (state_->has_deadline &&
      std::chrono::steady_clock::now() >= state_->deadline)
    throw Error(ErrorCode::kDeadlineExceeded,
                "smmkit: request deadline exceeded");
}

}  // namespace smm
