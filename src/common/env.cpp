#include "src/common/env.h"

#include <cerrno>
#include <cstdlib>
#include <limits>

namespace smm::env {

long parse_long(const char* raw, long fallback, long min_value) {
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(raw, &end, 10);
  // An overflowed value clamps to LONG_MIN/LONG_MAX with ERANGE — that is
  // out-of-range, so it falls back like any other malformed knob.
  return (end != raw && *end == '\0' && errno != ERANGE && v >= min_value)
             ? v
             : fallback;
}

double parse_double(const char* raw, double fallback, double min_value,
                    double max_value) {
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(raw, &end);
  return (end != raw && *end == '\0' && errno != ERANGE && v >= min_value &&
          v <= max_value)
             ? v
             : fallback;
}

long read_long(const char* name, long fallback) {
  return parse_long(std::getenv(name), fallback, 0);
}

long read_positive_long(const char* name, long fallback) {
  return parse_long(std::getenv(name), fallback, 1);
}

double read_fraction(const char* name, double fallback) {
  return parse_double(std::getenv(name), fallback, 0.0, 1.0);
}

double read_double(const char* name, double fallback) {
  return parse_double(std::getenv(name), fallback, 0.0,
                      std::numeric_limits<double>::infinity());
}

std::string read_string(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  return raw;
}

}  // namespace smm::env
