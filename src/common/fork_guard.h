// Fork safety (DESIGN.md §11): fork() in a multi-threaded process copies
// exactly one thread — the caller. Every pool worker, watchdog, and
// in-flight plan build simply does not exist in the child, yet the
// child's copied WorkerPool/PlanCache state still claims they do; the
// first post-fork smm_gemm would then wait forever on threads that were
// never born. Process-wide singletons register a ForkHandlers triple
// here; one pthread_atfork registration (installed on first use) runs
// them around every fork:
//
//  - prepare (parent, before fork): take the singleton's locks so the
//    child's memory snapshot is internally consistent — no mutex copied
//    mid-critical-section, no half-updated roster.
//  - parent (parent, after fork): release the locks; nothing changed.
//  - child (child, after fork): still holding the copied locks, reset
//    the state that referenced parent-only threads (quarantine/clear the
//    roster, drop in-flight builds), then release.
//
// prepare handlers run in registration order; parent/child run in
// reverse, so lock acquisition nests correctly across singletons.
//
// Registration is append-only (pthread_atfork handlers cannot be
// removed), so only immortal process-wide singletons may register —
// never objects with a shorter lifetime.
#pragma once

#include <functional>

namespace smm::common {

struct ForkHandlers {
  std::function<void()> prepare;  ///< parent, immediately before fork()
  std::function<void()> parent;   ///< parent, immediately after fork()
  std::function<void()> child;    ///< child, immediately after fork()
};

/// Append `handlers` to the process-wide registry. The first call
/// installs the single pthread_atfork hook. Thread-safe.
void register_fork_handlers(ForkHandlers handlers);

/// Number of registered handler triples (tests).
std::size_t fork_handler_count();

}  // namespace smm::common
