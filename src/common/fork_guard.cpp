#include "src/common/fork_guard.h"

#include <pthread.h>

#include <mutex>
#include <utility>
#include <vector>

namespace smm::common {

namespace {

/// Leaked on purpose: atfork handlers can fire during static destruction
/// (a destructor that forks) — the registry must outlive everything.
std::mutex& registry_mu() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

std::vector<ForkHandlers>& registry() {
  static std::vector<ForkHandlers>* v = new std::vector<ForkHandlers>;
  return *v;
}

void on_prepare() {
  // Held across the fork: a concurrent register_fork_handlers must not
  // reallocate the vector between prepare and parent/child.
  registry_mu().lock();
  for (auto& h : registry())
    if (h.prepare) h.prepare();
}

void on_parent() {
  auto& r = registry();
  for (auto it = r.rbegin(); it != r.rend(); ++it)
    if (it->parent) it->parent();
  registry_mu().unlock();
}

void on_child() {
  auto& r = registry();
  for (auto it = r.rbegin(); it != r.rend(); ++it)
    if (it->child) it->child();
  // The child inherits the lock from prepare — the forking thread is the
  // one that took it, and it is the thread running this handler.
  registry_mu().unlock();
}

}  // namespace

void register_fork_handlers(ForkHandlers handlers) {
  static std::once_flag once;
  std::call_once(once, [] {
    pthread_atfork(&on_prepare, &on_parent, &on_child);
  });
  std::lock_guard<std::mutex> lock(registry_mu());
  registry().push_back(std::move(handlers));
}

std::size_t fork_handler_count() {
  std::lock_guard<std::mutex> lock(registry_mu());
  return registry().size();
}

}  // namespace smm::common
