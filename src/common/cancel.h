// Cooperative cancellation and deadlines for the execution stack.
//
// The paper's motivating workload is serving-style (floods of small GEMMs
// from DNN inference), and a serving system must be able to stop work
// that nobody is waiting for any more: a request whose deadline passed,
// or one the client cancelled. A small GEMM cannot be preempted, but its
// plan is a sequence of coarse ops (pack a block, run a kernel sweep,
// cross a barrier), so the executor checks a token at op boundaries and
// unwinds with a typed error — kCancelled for an explicit cancel,
// kDeadlineExceeded for an expired deadline.
//
// The token is deliberately cheap: the cancelled flag is one relaxed
// atomic load per check, and the clock (the expensive part) is only read
// every few ops via CancelChecker's stride. A default-constructed token
// is inert — checking it is a null test — so non-serving callers pay
// nothing.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>

#include "src/common/error.h"

namespace smm {

namespace detail {
struct CancelState {
  std::atomic<bool> cancelled{false};
  /// Immutable after construction (concurrent reads need no ordering).
  std::chrono::steady_clock::time_point deadline{};
  bool has_deadline = false;
};
}  // namespace detail

/// Read side: cheap to copy, safe to share across threads. An empty
/// (default-constructed) token can never report cancellation.
class CancelToken {
 public:
  CancelToken() = default;

  /// True when this token is attached to a CancelSource.
  [[nodiscard]] bool valid() const { return state_ != nullptr; }

  /// The flag alone — no clock read. Relaxed: cancellation is a hint the
  /// executor acts on at the next op boundary, not a synchronization.
  [[nodiscard]] bool cancel_requested() const {
    return state_ != nullptr &&
           state_->cancelled.load(std::memory_order_relaxed);
  }

  [[nodiscard]] bool has_deadline() const {
    return state_ != nullptr && state_->has_deadline;
  }
  [[nodiscard]] std::chrono::steady_clock::time_point deadline() const {
    return state_ != nullptr ? state_->deadline
                             : std::chrono::steady_clock::time_point{};
  }

  /// Clock check (one steady_clock read when a deadline is set).
  [[nodiscard]] bool expired() const {
    return has_deadline() &&
           std::chrono::steady_clock::now() >= state_->deadline;
  }

  /// True when the work this token guards should stop, for any reason.
  [[nodiscard]] bool stop_requested() const {
    return cancel_requested() || expired();
  }

  /// Throws Error(kCancelled) on an explicit cancel, then
  /// Error(kDeadlineExceeded) on an expired deadline. The ordering means
  /// an explicitly cancelled request reports kCancelled even when its
  /// deadline also lapsed.
  void throw_if_stopped() const;

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<const detail::CancelState> state)
      : state_(std::move(state)) {}
  std::shared_ptr<const detail::CancelState> state_;
};

/// Write side: owns the shared state, hands out tokens.
class CancelSource {
 public:
  /// No deadline; cancellable only explicitly.
  CancelSource() : state_(std::make_shared<detail::CancelState>()) {}
  /// Cancels itself at `deadline`.
  explicit CancelSource(std::chrono::steady_clock::time_point deadline)
      : CancelSource() {
    state_->deadline = deadline;
    state_->has_deadline = true;
  }

  void request_cancel() {
    state_->cancelled.store(true, std::memory_order_relaxed);
  }
  [[nodiscard]] bool cancel_requested() const {
    return state_->cancelled.load(std::memory_order_relaxed);
  }
  [[nodiscard]] CancelToken token() const { return CancelToken(state_); }

 private:
  std::shared_ptr<detail::CancelState> state_;
};

/// Op-boundary checker: the cancelled flag is consulted on every check()
/// (one relaxed load), the clock only every `clock_stride` checks — a
/// KernelOp on an SMM-sized tile runs for tens of nanoseconds, so a
/// steady_clock read per op would be measurable overhead where a strided
/// one is not. A null/invalid token makes check() a branch on nullptr.
class CancelChecker {
 public:
  explicit CancelChecker(const CancelToken* token, int clock_stride = 16)
      : token_(token != nullptr && token->valid() ? token : nullptr),
        stride_(clock_stride < 1 ? 1 : clock_stride) {}

  void check() {
    if (token_ == nullptr) return;
    if (token_->cancel_requested())
      token_->throw_if_stopped();  // throws kCancelled
    if (--countdown_ <= 0) {
      countdown_ = stride_;
      if (token_->expired()) token_->throw_if_stopped();
    }
  }

 private:
  const CancelToken* token_;
  int stride_;
  int countdown_ = 0;
};

}  // namespace smm
