// RAII buffer with cache-line alignment; backing store for all matrices and
// packed panels. Alignment matters natively (vector loads) and is assumed by
// the machine model (packed panels start on a line boundary).
#pragma once

#include <cstdlib>
#include <memory>
#include <new>
#include <type_traits>

#include "src/common/error.h"
#include "src/common/types.h"
#include "src/robust/fault_injection.h"

namespace smm {

/// Owning, aligned, non-copyable array of trivially-destructible T.
template <typename T>
class AlignedBuffer {
  static_assert(std::is_trivially_destructible_v<T>,
                "AlignedBuffer only stores trivial scalar types");

 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(index_t count) { reset(count); }

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::move(other.data_)), size_(other.size_) {
    other.size_ = 0;
  }
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    data_ = std::move(other.data_);
    size_ = other.size_;
    other.size_ = 0;
    return *this;
  }
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  /// Reallocate to hold `count` elements; contents are value-initialized.
  void reset(index_t count) {
    if (count > 0 && robust::should_fire(robust::FaultSite::kAllocFail))
      throw Error(ErrorCode::kAlloc,
                  "smmkit: injected scratch allocation failure");
    reset_unchecked(count);
  }

  /// reset() without consulting the kAllocFail injection site — for
  /// callers (the ExecScratch arena) that account the injection point
  /// per logical buffer themselves.
  void reset_unchecked(index_t count) {
    SMM_EXPECT(count >= 0, "buffer size must be non-negative");
    size_ = count;
    if (count == 0) {
      data_.reset();
      return;
    }
    const std::size_t bytes =
        round_up(static_cast<std::size_t>(count) * sizeof(T));
    void* raw = std::aligned_alloc(kBufferAlignment, bytes);
    if (raw == nullptr) throw std::bad_alloc();
    data_.reset(static_cast<T*>(raw));
    for (index_t i = 0; i < count; ++i) data_.get()[i] = T{};
  }

  [[nodiscard]] T* data() { return data_.get(); }
  [[nodiscard]] const T* data() const { return data_.get(); }
  [[nodiscard]] index_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  T& operator[](index_t i) { return data_.get()[i]; }
  const T& operator[](index_t i) const { return data_.get()[i]; }

 private:
  static std::size_t round_up(std::size_t bytes) {
    return (bytes + kBufferAlignment - 1) / kBufferAlignment *
           kBufferAlignment;
  }

  struct FreeDeleter {
    void operator()(T* p) const { std::free(p); }
  };
  std::unique_ptr<T, FreeDeleter> data_;
  index_t size_ = 0;
};

}  // namespace smm
