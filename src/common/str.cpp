#include "src/common/str.h"

#include <cstdarg>
#include <cstdio>

namespace smm {

std::string strprintf(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int len = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (len > 0) {
    out.resize(static_cast<std::size_t>(len));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace smm
