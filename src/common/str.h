// Small string/format helpers (gcc 12 lacks std::format).
#pragma once

#include <string>
#include <vector>

namespace smm {

/// printf-style formatting into a std::string.
std::string strprintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Join elements with a separator: join({"a","b"}, ",") == "a,b".
std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);

}  // namespace smm
