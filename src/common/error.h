// Error reporting: SMM_EXPECT for recoverable precondition checks (throws),
// used at public API boundaries; internal invariants use assert-style checks.
// Errors carry an ErrorCode so callers (notably robust::GuardedExecutor) can
// classify failures and choose a recovery strategy instead of string-matching.
#pragma once

#include <stdexcept>
#include <string>

namespace smm {

/// Failure taxonomy. Every smm::Error carries one of these; the guarded
/// executor keys its retry/degrade decisions off them and the health
/// counters aggregate by code.
enum class ErrorCode {
  kUnknown = 0,        ///< legacy/uncategorized failure
  kPrecondition,       ///< generic SMM_EXPECT violation at an API boundary
  kBadShape,           ///< negative/zero/mismatched dimensions or strides
  kAlias,              ///< output aliases an input (or another output)
  kAlloc,              ///< scratch/packed buffer allocation failed
  kKernelFault,        ///< a micro-kernel produced (or hit) a fault
  kChecksumMismatch,   ///< ABFT verification rejected the result
  kWorkerPanic,        ///< exception escaped a parallel worker body
  kPoolTimeout,        ///< watchdog: a pool worker missed its deadline
  kPoolSpawnFail,      ///< worker-thread creation failed (pool or spawn path)
  kArenaExhausted,     ///< ExecScratch slab growth failed under pressure
  kCacheInsertFail,    ///< PlanCache could not insert a freshly built plan
  kPrepackFallback,    ///< PrepackedB could not materialize its buffers
  // Silent-data-corruption defense (DESIGN.md §12).
  kDataCorrupted,      ///< ABFT found corruption the repair path could not fix
  kCacheCorrupted,     ///< sealed cached state (plan / prepacked B) failed its
                       ///< content checksum and could not be restored
  // Serving layer (DESIGN.md §11): admission, deadlines, lifecycle.
  kCancelled,          ///< the caller cancelled the request
  kDeadlineExceeded,   ///< the request's deadline passed before completion
  kOverloaded,         ///< admission control rejected the request (queue
                       ///< full, cost budget spent, shed, or breaker open)
  kShuttingDown,       ///< the service is draining; no new work admitted
  kNonFinite,          ///< an input operand contains NaN/Inf
  // Caller-side resilience (DESIGN.md §16).
  kRetryBudgetExhausted,  ///< the process-wide retry budget is dry; the
                          ///< resilient client fails fast instead of
                          ///< resubmitting and amplifying the outage
};

/// Number of ErrorCode values. Keep in sync with the last enumerator; the
/// resilient layer's classification table static_asserts exhaustiveness
/// against this so an unclassified new code fails to compile.
inline constexpr int kErrorCodeCount =
    static_cast<int>(ErrorCode::kRetryBudgetExhausted) + 1;

const char* to_string(ErrorCode code);

/// Exception type thrown on precondition violations at API boundaries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what)
      : std::runtime_error(what), code_(ErrorCode::kUnknown) {}
  Error(ErrorCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}

  [[nodiscard]] ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

namespace detail {
[[noreturn]] void raise_error(const char* cond, const char* file, int line,
                              const std::string& msg);
[[noreturn]] void raise_error(ErrorCode code, const char* cond,
                              const char* file, int line,
                              const std::string& msg);
}  // namespace detail

}  // namespace smm

/// Precondition check that survives NDEBUG builds: public entry points
/// validate caller-supplied dimensions/pointers with this.
#define SMM_EXPECT(cond, msg)                                          \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::smm::detail::raise_error(#cond, __FILE__, __LINE__, (msg));    \
    }                                                                  \
  } while (false)

/// SMM_EXPECT with an explicit ErrorCode (taxonomy-aware boundaries).
#define SMM_EXPECT_CODE(cond, code, msg)                               \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::smm::detail::raise_error((code), #cond, __FILE__, __LINE__,    \
                                 (msg));                               \
    }                                                                  \
  } while (false)
