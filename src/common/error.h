// Error reporting: SMM_EXPECT for recoverable precondition checks (throws),
// used at public API boundaries; internal invariants use assert-style checks.
#pragma once

#include <stdexcept>
#include <string>

namespace smm {

/// Exception type thrown on precondition violations at API boundaries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void raise_error(const char* cond, const char* file, int line,
                              const std::string& msg);
}  // namespace detail

}  // namespace smm

/// Precondition check that survives NDEBUG builds: public entry points
/// validate caller-supplied dimensions/pointers with this.
#define SMM_EXPECT(cond, msg)                                          \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::smm::detail::raise_error(#cond, __FILE__, __LINE__, (msg));    \
    }                                                                  \
  } while (false)
