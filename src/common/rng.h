// Deterministic random number generation (splitmix64 + xoshiro256**).
// Every randomized test/bench seeds explicitly so runs are reproducible.
#pragma once

#include <cstdint>

#include "src/common/types.h"

namespace smm {

/// Small, fast, deterministic PRNG (xoshiro256**). Not for cryptography.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, bound). bound must be > 0.
  index_t next_index(index_t bound);

 private:
  std::uint64_t s_[4];
};

}  // namespace smm
