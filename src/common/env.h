// Consolidated environment-knob parsing. Before this header existed the
// service, shard, tune, and failover layers each carried a private copy of
// the same strtol wrapper; the copies agreed by luck, not by construction.
// Every reader here shares one malformed-value policy: an unset, empty,
// unparsable, trailing-garbage, or out-of-range value is IGNORED and the
// fallback wins. Parsers never throw — a misconfigured knob must not turn
// into a startup abort on a fleet-wide rollout (DESIGN.md §11).
#pragma once

#include <string>

namespace smm::env {

/// Read a non-negative integer knob (v >= 0), else `fallback`.
long read_long(const char* name, long fallback);

/// Read a strictly positive integer knob (v > 0), else `fallback`.
long read_positive_long(const char* name, long fallback);

/// Read a fraction knob in [0, 1], else `fallback`.
double read_fraction(const char* name, double fallback);

/// Read a non-negative floating-point knob (v >= 0), else `fallback`.
double read_double(const char* name, double fallback);

/// Read a string knob verbatim; unset or empty yields `fallback`.
std::string read_string(const char* name, const std::string& fallback);

/// Parsing seams behind the readers, exposed so tests can exercise the
/// malformed-value policy without mutating the process environment.
/// `raw == nullptr` models an unset variable.
long parse_long(const char* raw, long fallback, long min_value);
double parse_double(const char* raw, double fallback, double min_value,
                    double max_value);

}  // namespace smm::env
