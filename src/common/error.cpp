#include "src/common/error.h"

#include <sstream>

namespace smm {

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kUnknown:
      return "unknown";
    case ErrorCode::kPrecondition:
      return "precondition";
    case ErrorCode::kBadShape:
      return "bad-shape";
    case ErrorCode::kAlias:
      return "alias";
    case ErrorCode::kAlloc:
      return "alloc";
    case ErrorCode::kKernelFault:
      return "kernel-fault";
    case ErrorCode::kChecksumMismatch:
      return "checksum-mismatch";
    case ErrorCode::kWorkerPanic:
      return "worker-panic";
    case ErrorCode::kPoolTimeout:
      return "pool-timeout";
    case ErrorCode::kPoolSpawnFail:
      return "pool-spawn-fail";
    case ErrorCode::kArenaExhausted:
      return "arena-exhausted";
    case ErrorCode::kCacheInsertFail:
      return "cache-insert-fail";
    case ErrorCode::kPrepackFallback:
      return "prepack-fallback";
    case ErrorCode::kDataCorrupted:
      return "data-corrupted";
    case ErrorCode::kCacheCorrupted:
      return "cache-corrupted";
    case ErrorCode::kCancelled:
      return "cancelled";
    case ErrorCode::kDeadlineExceeded:
      return "deadline-exceeded";
    case ErrorCode::kOverloaded:
      return "overloaded";
    case ErrorCode::kShuttingDown:
      return "shutting-down";
    case ErrorCode::kNonFinite:
      return "non-finite";
    case ErrorCode::kRetryBudgetExhausted:
      return "retry-budget-exhausted";
  }
  return "?";
}

namespace detail {

void raise_error(const char* cond, const char* file, int line,
                 const std::string& msg) {
  raise_error(ErrorCode::kPrecondition, cond, file, line, msg);
}

void raise_error(ErrorCode code, const char* cond, const char* file,
                 int line, const std::string& msg) {
  std::ostringstream os;
  os << "smmkit: " << msg << " [" << to_string(code)
     << ", failed: " << cond << " at " << file << ':' << line << ']';
  throw Error(code, os.str());
}

}  // namespace detail
}  // namespace smm
