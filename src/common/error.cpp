#include "src/common/error.h"

#include <sstream>

namespace smm::detail {

void raise_error(const char* cond, const char* file, int line,
                 const std::string& msg) {
  std::ostringstream os;
  os << "smmkit: " << msg << " [failed: " << cond << " at " << file << ':'
     << line << ']';
  throw Error(os.str());
}

}  // namespace smm::detail
