// Persistent worker pool behind par::run_parallel.
//
// The paper's Table II shows fixed per-call costs (Sync dominating
// multi-threaded SMM); spawning and joining OS threads per fork-join
// region is exactly such a cost — microseconds of kernel work to execute
// microseconds of FMAs. The pool parks a set of workers on a condvar and
// hands them fork-join regions by epoch: dispatching a region is one
// mutex acquisition plus a notify_all, and completion is a counter, so
// the steady-state per-call price is two wakeups instead of N clones.
//
// Plans may contain inter-thread barriers, so all nthreads bodies of a
// region must run concurrently; the pool therefore dedicates one parked
// worker per body (growing on demand, master runs body 0 in place) and
// never multiplexes two bodies of one region onto a thread. Regions are
// exclusive: a caller that cannot take the pool (it is busy, or the
// caller is itself a pool worker mid-region) falls back to
// spawn-per-call, so nesting and concurrent independent regions keep the
// exact pre-pool semantics.
//
// Watchdog + quarantine (DESIGN.md §10): a persistent pool turns one
// hung/parked/killed worker into a process-wide hang — every later
// region waits on the dead thread forever. A dedicated watchdog thread
// therefore puts a deadline on each in-flight region: on expiry it
// poisons the region (the caller's on_worker_failure hook, which cancels
// plan barriers), releases injected hangs, and — if workers still have
// not reported in after a grace period — abandons the region (survivors
// skip the caller's body, which may no longer exist) and quarantines the
// pool. The timed-out call fails with ErrorCode::kPoolTimeout instead of
// hanging. A quarantined pool rebuilds its roster (fresh generation,
// old threads detached) on the next try_run, which is declined once so
// the caller serves that region via spawn-per-call while the new roster
// comes up.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <chrono>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace smm::par {

class WorkerPool {
 public:
  /// Hard cap on parked workers; regions wider than this fall back to
  /// spawn-per-call (native_threads_available() is clamped to the same
  /// bound, so only explicit oversubscription ever exceeds it).
  static constexpr int kMaxWorkers = 256;

  /// The process-wide pool used by run_parallel.
  static WorkerPool& instance();

  /// A privately owned pool (the sharded service gives each shard one so
  /// panels stop contending on a single region lock). Unlike instance(),
  /// a private pool registers no atfork handlers — fork handlers are
  /// permanent and capture `this`, which only an immortal object may do
  /// (fork_guard.h). A forked child must therefore not reuse inherited
  /// private pools; the service rebuilds its shards instead.
  static std::unique_ptr<WorkerPool> create_private();

  /// The pool run_parallel dispatches to on this thread: the pool bound
  /// by the innermost live CurrentPoolBinding, else instance().
  static WorkerPool& current();

  /// Binds `pool` as this thread's current() for the binding's lifetime
  /// (restores the previous binding on destruction). Shard lanes hold one
  /// across each request so nested run_parallel calls land on the
  /// shard-local pool.
  class CurrentPoolBinding {
   public:
    explicit CurrentPoolBinding(WorkerPool& pool);
    ~CurrentPoolBinding();
    CurrentPoolBinding(const CurrentPoolBinding&) = delete;
    CurrentPoolBinding& operator=(const CurrentPoolBinding&) = delete;

   private:
    WorkerPool* previous_;
  };

  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Try to run body(0..nthreads-1) as one pool region: workers execute
  /// tids 1..nthreads-1, the calling thread executes tid 0, and the call
  /// returns after every body finished. Exceptions are captured into
  /// `errors[tid]` (never rethrown here); a capturing body invokes
  /// on_worker_failure immediately, while peers still run. Returns false
  /// without running anything when the pool cannot take the region (busy
  /// with another region, called from inside a region, nthreads exceeds
  /// kMaxWorkers + 1, the pool is quarantined and rebuilding, or growing
  /// the roster failed) — the caller then spawns threads instead.
  ///
  /// If the watchdog deadline expires mid-region, tids that never
  /// reported in get Error(kPoolTimeout) in their error slot and the
  /// call still returns true (the caller's aggregation raises it).
  bool try_run(int nthreads, const std::function<void(int)>& body,
               const std::function<void()>& on_worker_failure,
               std::vector<std::exception_ptr>& errors);

  /// Observability (relaxed counters; see robust::health() for the
  /// process-wide mirror).
  struct Stats {
    int workers = 0;             ///< threads currently parked/spawned
    std::size_t regions = 0;     ///< regions served by the pool
    std::size_t dispatches = 0;  ///< worker wakeups summed over regions
    std::size_t watchdog_timeouts = 0;  ///< regions past their deadline
    std::size_t quarantines = 0;        ///< pool taken out of service
    std::size_t rebuilds = 0;           ///< fresh rosters after quarantine
  };
  [[nodiscard]] Stats stats() const;

  /// True on a thread currently executing a pool-region body (used by
  /// run_parallel to route nested regions to the spawn path; taking the
  /// non-recursive region lock from such a thread would be UB).
  [[nodiscard]] static bool on_pool_thread();

  /// Per-region watchdog deadline in milliseconds; 0 disables the
  /// watchdog. Defaults to SMMKIT_POOL_TIMEOUT_MS (or 30000 — generous:
  /// a false positive poisons a healthy slow region). Tests shrink it.
  void set_watchdog_timeout_ms(long ms);
  [[nodiscard]] long watchdog_timeout_ms() const;

  /// True while the pool is out of service awaiting its rebuild.
  [[nodiscard]] bool quarantined() const;

  /// Retire the roster and the watchdog, joining every thread: when this
  /// returns, the pool owns zero live threads (service shutdown promises
  /// exactly that). The pool stays usable — the next try_run lazily
  /// respawns workers and watchdog. A quarantined roster may contain a
  /// genuinely hung thread; those are detached (as rebuild() does)
  /// instead of inheriting the hang into this call.
  void release_threads();

  /// Threads currently owned by the pool (workers + watchdog) — the
  /// quantity release_threads drives to zero. Tests assert on it.
  [[nodiscard]] int live_threads() const;

 private:
  /// `fork_guard` registers the permanent atfork handlers — true only for
  /// the immortal instance(); private pools must pass false.
  explicit WorkerPool(bool fork_guard);

  /// One fork-join region's shared state. Heap-held behind shared_ptr:
  /// an abandoned worker may outlive the try_run call that created the
  /// region, so nothing it touches may live on the caller's stack.
  struct Region {
    const std::function<void(int)>* body = nullptr;
    const std::function<void()>* on_failure = nullptr;
    int nthreads = 0;

    std::mutex mu;
    std::condition_variable done_cv;
    int pending = 0;       ///< workers (not the master) still running
    bool timed_out = false;
    /// Watchdog gave up waiting: the caller will return, so body /
    /// on_failure / the error slots must no longer be touched by late
    /// workers (except the master's own slot 0 — the master IS the
    /// caller).
    bool abandoned = false;
    std::vector<std::exception_ptr> errors;
    std::vector<unsigned char> finished;
  };

  /// `start_epoch` is the epoch at spawn registration (captured under
  /// mu_), so a late-starting thread still treats the spawning region's
  /// epoch bump as new work. `generation` pins the thread to one roster:
  /// a rebuild bumps the generation and the old roster exits.
  void worker_main(int wid, std::uint64_t start_epoch,
                   std::uint64_t generation);
  void watchdog_main();
  /// Execute body `tid` of `region` with capture/poison/accounting.
  void serve(const std::shared_ptr<Region>& region, int tid);
  /// Grow the roster to `count` workers. Returns false when thread
  /// creation failed (injected kPoolSpawnFail or std::system_error);
  /// callers then decline the region. Callers hold region_mu_.
  bool ensure_workers(int count);
  /// Start a fresh roster after quarantine. Callers hold region_mu_.
  void rebuild();

  // Serializes regions; try_run holds it for the whole region.
  std::mutex region_mu_;

  // Protects the epoch/region handoff and the worker roster.
  mutable std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable watchdog_cv_;
  std::vector<std::thread> workers_;
  std::thread watchdog_;
  std::shared_ptr<Region> region_;  ///< in-flight region (null when idle)
  std::chrono::steady_clock::time_point region_deadline_{};
  bool deadline_armed_ = false;  ///< region_deadline_ applies to region_
  std::uint64_t epoch_ = 0;
  std::uint64_t generation_ = 0;
  int task_nthreads_ = 0;
  bool stop_ = false;
  /// release_threads() asks the current watchdog thread (only it) to
  /// exit; unlike stop_, the pool keeps serving and respawns one later.
  bool watchdog_exit_ = false;
  bool quarantined_ = false;
  std::size_t regions_ = 0;
  std::size_t dispatches_ = 0;
  std::size_t watchdog_timeouts_ = 0;
  std::size_t quarantines_ = 0;
  std::size_t rebuilds_ = 0;
  std::atomic<long> timeout_ms_;

  /// Reused across regions (regions are serialized, so between regions
  /// the master owns it exclusively); replaced after an abandonment —
  /// the hung worker still holds a reference to the old one.
  std::shared_ptr<Region> spare_region_;
};

}  // namespace smm::par
