// Persistent worker pool behind par::run_parallel.
//
// The paper's Table II shows fixed per-call costs (Sync dominating
// multi-threaded SMM); spawning and joining OS threads per fork-join
// region is exactly such a cost — microseconds of kernel work to execute
// microseconds of FMAs. The pool parks a set of workers on a condvar and
// hands them fork-join regions by epoch: dispatching a region is one
// mutex acquisition plus a notify_all, and completion is a counter, so
// the steady-state per-call price is two wakeups instead of N clones.
//
// Plans may contain inter-thread barriers, so all nthreads bodies of a
// region must run concurrently; the pool therefore dedicates one parked
// worker per body (growing on demand, master runs body 0 in place) and
// never multiplexes two bodies of one region onto a thread. Regions are
// exclusive: a caller that cannot take the pool (it is busy, or the
// caller is itself a pool worker mid-region) falls back to
// spawn-per-call, so nesting and concurrent independent regions keep the
// exact pre-pool semantics.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace smm::par {

class WorkerPool {
 public:
  /// Hard cap on parked workers; regions wider than this fall back to
  /// spawn-per-call (native_threads_available() is clamped to the same
  /// bound, so only explicit oversubscription ever exceeds it).
  static constexpr int kMaxWorkers = 256;

  /// The process-wide pool used by run_parallel.
  static WorkerPool& instance();

  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Try to run body(0..nthreads-1) as one pool region: workers execute
  /// tids 1..nthreads-1, the calling thread executes tid 0, and the call
  /// returns after every body finished. Exceptions are captured into
  /// `errors[tid]` (never rethrown here); a capturing body invokes
  /// on_worker_failure immediately, while peers still run. Returns false
  /// without running anything when the pool cannot take the region (busy
  /// with another region, called from inside a region, or nthreads
  /// exceeds kMaxWorkers + 1) — the caller then spawns threads instead.
  bool try_run(int nthreads, const std::function<void(int)>& body,
               const std::function<void()>& on_worker_failure,
               std::vector<std::exception_ptr>& errors);

  /// Observability (relaxed counters; see robust::health() for the
  /// process-wide mirror).
  struct Stats {
    int workers = 0;             ///< threads currently parked/spawned
    std::size_t regions = 0;     ///< regions served by the pool
    std::size_t dispatches = 0;  ///< worker wakeups summed over regions
  };
  [[nodiscard]] Stats stats() const;

  /// True on a thread currently executing a pool-region body (used by
  /// run_parallel to route nested regions to the spawn path; taking the
  /// non-recursive region lock from such a thread would be UB).
  [[nodiscard]] static bool on_pool_thread();

 private:
  WorkerPool() = default;

  struct Task {
    const std::function<void(int)>* body = nullptr;
    const std::function<void()>* on_failure = nullptr;
    std::vector<std::exception_ptr>* errors = nullptr;
  };

  /// `start_epoch` is the epoch at spawn registration (captured under
  /// mu_), so a late-starting thread still treats the spawning region's
  /// epoch bump as new work.
  void worker_main(int wid, std::uint64_t start_epoch);
  void ensure_workers(int count);  // callers hold region_mu_
  static void run_body(const Task& task, int tid);

  // Serializes regions; try_run holds it for the whole region.
  std::mutex region_mu_;

  // Protects the epoch/task handoff and the worker roster.
  mutable std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::vector<std::thread> workers_;
  std::uint64_t epoch_ = 0;
  Task task_;
  int task_nthreads_ = 0;
  int pending_ = 0;
  bool stop_ = false;
  std::size_t regions_ = 0;
  std::size_t dispatches_ = 0;
};

}  // namespace smm::par
