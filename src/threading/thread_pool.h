// Fork-join execution of per-thread programs.
//
// Plans may contain inter-thread barriers, so all `nthreads` bodies must
// run concurrently — run_parallel spawns real threads per region (plans in
// tests use small counts; the 64-thread results in the paper come from the
// simulator, not native execution). A persistent pool is not worth the
// complexity for fork-join regions whose bodies block on barriers.
#pragma once

#include <functional>

#include "src/common/types.h"

namespace smm::par {

/// Run body(tid) for tid in [0, nthreads) on concurrent threads and join.
/// body must be thread-safe across tids. Exceptions in bodies are captured
/// and the first one rethrown after the join.
void run_parallel(int nthreads, const std::function<void(int)>& body);

/// Hardware concurrency clamped to [1, 256].
int native_threads_available();

}  // namespace smm::par
