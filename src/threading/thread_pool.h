// Fork-join execution of per-thread programs.
//
// Plans may contain inter-thread barriers, so all `nthreads` bodies must
// run concurrently. Regions are served by the persistent WorkerPool
// (worker_pool.h): workers are parked on a condvar and woken per region,
// so the steady-state per-call cost is a dispatch handshake instead of
// nthreads thread clones — the paper's Table II point that fixed
// per-call costs dominate small-matrix work applies to thread spawns
// more than to anything else on this path. Nested regions and callers
// that find the pool busy fall back to spawn-per-call, which keeps the
// old semantics available under arbitrary composition; nthreads == 1
// bypasses both paths and runs the body in place.
#pragma once

#include <functional>

#include "src/common/types.h"

namespace smm::par {

/// Run body(tid) for tid in [0, nthreads) on concurrent threads and join.
/// body must be thread-safe across tids. Exceptions in bodies are
/// captured; after the join a single failure is rethrown as-is, while
/// multiple failures are aggregated into one smm::Error whose message
/// names every failing thread — the aggregate keeps the failures' common
/// ErrorCode when they all share one (pool timeout, spawn failure), and
/// is kWorkerPanic otherwise. Never hangs: pool regions are bounded by
/// the WorkerPool watchdog, and a thread-spawn failure on the fallback
/// path fails the unspawned tids instead of leaking joinable threads.
///
/// on_worker_failure, if set, is invoked on the failing worker's thread
/// the moment its exception is captured — before the join, while peers
/// are still running. Bodies that synchronize through blocking primitives
/// (plan barriers) use it to cancel those primitives so surviving peers
/// fail instead of waiting forever for a worker that will never arrive.
/// It must be thread-safe and idempotent, and must not throw.
void run_parallel(int nthreads, const std::function<void(int)>& body,
                  const std::function<void()>& on_worker_failure = {});

/// Threads worth offering to callers: hardware concurrency clamped to
/// [1, 256], further capped by the SMMKIT_MAX_THREADS environment
/// variable when set (container deployments that cgroup-limit a process
/// below what hardware_concurrency() reports). Computed once on first
/// call and cached — this sits on the per-call dispatch path.
int native_threads_available();

namespace detail {
/// The uncached policy behind native_threads_available(), exposed so
/// tests can probe env handling without mutating process-wide state:
/// clamp hw to [1, 256], then apply `env` (SMMKIT_MAX_THREADS value;
/// null/empty/garbage/non-positive values are ignored).
int compute_threads_available(unsigned hw, const char* env);
}  // namespace detail

}  // namespace smm::par
