// Fork-join execution of per-thread programs.
//
// Plans may contain inter-thread barriers, so all `nthreads` bodies must
// run concurrently — run_parallel spawns real threads per region (plans in
// tests use small counts; the 64-thread results in the paper come from the
// simulator, not native execution). A persistent pool is not worth the
// complexity for fork-join regions whose bodies block on barriers.
#pragma once

#include <functional>

#include "src/common/types.h"

namespace smm::par {

/// Run body(tid) for tid in [0, nthreads) on concurrent threads and join.
/// body must be thread-safe across tids. Exceptions in bodies are
/// captured; after the join a single failure is rethrown as-is, while
/// multiple failures are aggregated into one smm::Error (kWorkerPanic)
/// whose message names every failing thread.
///
/// on_worker_failure, if set, is invoked on the failing worker's thread
/// the moment its exception is captured — before the join, while peers
/// are still running. Bodies that synchronize through blocking primitives
/// (plan barriers) use it to cancel those primitives so surviving peers
/// fail instead of waiting forever for a worker that will never arrive.
/// It must be thread-safe and idempotent, and must not throw.
void run_parallel(int nthreads, const std::function<void(int)>& body,
                  const std::function<void()>& on_worker_failure = {});

/// Hardware concurrency clamped to [1, 256].
int native_threads_available();

}  // namespace smm::par
