#include "src/threading/barrier.h"

#include "src/common/error.h"
#include "src/robust/fault_injection.h"
#include "src/threading/thread_pool.h"

namespace smm::par {

namespace {

/// Spin budget before parking. Sized so a barrier whose peers are a few
/// microseconds behind resolves without a syscall, while a genuinely
/// stalled round parks quickly instead of burning a core.
constexpr int kSpinRounds = 4096;

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

}  // namespace

Barrier::Barrier(int participants)
    : participants_(participants),
      spin_(participants <= native_threads_available()) {
  SMM_EXPECT(participants > 0, "barrier needs at least one participant");
}

void Barrier::throw_poisoned() {
  throw Error(ErrorCode::kWorkerPanic,
              "smmkit: parallel region aborted: a peer worker failed before "
              "reaching the barrier");
}

void Barrier::arrive_and_wait() {
  if (robust::should_fire(robust::FaultSite::kBarrierTrip)) {
    // An arrival that faults can never complete the round: poison first
    // so peers (current waiters and later arrivals) fail instead of
    // waiting for this participant forever, then die like any worker.
    poison();
    throw Error(ErrorCode::kWorkerPanic,
                "smmkit: injected barrier fault at arrival");
  }
  if (poisoned_.load(std::memory_order_acquire)) throw_poisoned();
  if (participants_ == 1) return;

  // Every participant of round r was released from round r-1 after the
  // epoch bump, so the epoch read here is the round's stable sense even
  // though peers may already be arriving for it.
  const std::uint32_t my_epoch = epoch_.load(std::memory_order_acquire);
  const int pos = arrived_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (pos == participants_) {
    // Reset before the release bump: a peer can only re-arrive after it
    // observes the bump, so the counter is quiescent here.
    arrived_.store(0, std::memory_order_relaxed);
    {
      // The bump is published under mu_ so a parking waiter cannot miss
      // it between its predicate check and cv_.wait.
      std::lock_guard<std::mutex> lock(mu_);
      epoch_.store(my_epoch + 1, std::memory_order_release);
    }
    cv_.notify_all();
    return;
  }

  if (spin_) {
    for (int i = 0; i < kSpinRounds; ++i) {
      if (epoch_.load(std::memory_order_acquire) != my_epoch) return;
      if (poisoned_.load(std::memory_order_acquire)) {
        if (epoch_.load(std::memory_order_acquire) != my_epoch) return;
        // This round can never complete; withdraw the arrival so the
        // count stays sane for any arrivals that race the poison.
        arrived_.fetch_sub(1, std::memory_order_acq_rel);
        throw_poisoned();
      }
      cpu_relax();
    }
  }

  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] {
    return epoch_.load(std::memory_order_acquire) != my_epoch ||
           poisoned_.load(std::memory_order_acquire);
  });
  if (epoch_.load(std::memory_order_acquire) == my_epoch) {
    // Woken by poison(), not by a completed round.
    arrived_.fetch_sub(1, std::memory_order_acq_rel);
    throw_poisoned();
  }
}

void Barrier::poison() {
  {
    // Publish under mu_ for the same reason as the epoch bump: a waiter
    // between predicate check and park must not miss the wakeup.
    std::lock_guard<std::mutex> lock(mu_);
    poisoned_.store(true, std::memory_order_release);
  }
  cv_.notify_all();
}

}  // namespace smm::par
