#include "src/threading/barrier.h"

#include "src/common/error.h"

namespace smm::par {

Barrier::Barrier(int participants) : participants_(participants) {
  SMM_EXPECT(participants > 0, "barrier needs at least one participant");
}

void Barrier::arrive_and_wait() {
  std::unique_lock<std::mutex> lock(mu_);
  if (poisoned_) {
    throw Error(ErrorCode::kWorkerPanic,
                "smmkit: parallel region aborted: a peer worker failed before "
                "reaching the barrier");
  }
  const bool my_sense = sense_;
  if (++waiting_ == participants_) {
    waiting_ = 0;
    sense_ = !sense_;
    cv_.notify_all();
    return;
  }
  cv_.wait(lock, [&] { return poisoned_ || sense_ != my_sense; });
  if (poisoned_ && sense_ == my_sense) {
    // Woken by poison(), not by a completed round: this round can never
    // finish, so leave the barrier in a sane state and fail.
    --waiting_;
    throw Error(ErrorCode::kWorkerPanic,
                "smmkit: parallel region aborted: a peer worker failed before "
                "reaching the barrier");
  }
}

void Barrier::poison() {
  std::lock_guard<std::mutex> lock(mu_);
  poisoned_ = true;
  cv_.notify_all();
}

bool Barrier::poisoned() const {
  std::lock_guard<std::mutex> lock(mu_);
  return poisoned_;
}

}  // namespace smm::par
