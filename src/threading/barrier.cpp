#include "src/threading/barrier.h"

#include "src/common/error.h"

namespace smm::par {

Barrier::Barrier(int participants) : participants_(participants) {
  SMM_EXPECT(participants > 0, "barrier needs at least one participant");
}

void Barrier::arrive_and_wait() {
  std::unique_lock<std::mutex> lock(mu_);
  const bool my_sense = sense_;
  if (++waiting_ == participants_) {
    waiting_ = 0;
    sense_ = !sense_;
    cv_.notify_all();
    return;
  }
  cv_.wait(lock, [&] { return sense_ != my_sense; });
}

}  // namespace smm::par
