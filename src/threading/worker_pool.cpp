#include "src/threading/worker_pool.h"

#include "src/common/error.h"
#include "src/common/str.h"
#include "src/robust/fault_injection.h"
#include "src/robust/health.h"

namespace smm::par {

namespace {

// Set while a thread executes a region body — on parked workers and on
// the master for the body it runs in place. A nested run_parallel from
// such a thread must not touch the pool (region_mu_ is non-recursive).
thread_local bool tls_in_pool_region = false;

}  // namespace

WorkerPool& WorkerPool::instance() {
  static WorkerPool pool;
  return pool;
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

bool WorkerPool::on_pool_thread() { return tls_in_pool_region; }

void WorkerPool::run_body(const Task& task, int tid) {
  tls_in_pool_region = true;
  try {
    if (robust::should_fire(robust::FaultSite::kWorkerThrow))
      throw Error(ErrorCode::kWorkerPanic,
                  strprintf("smmkit: injected worker fault on thread %d",
                            tid));
    (*task.body)(tid);
  } catch (...) {
    (*task.errors)[static_cast<std::size_t>(tid)] =
        std::current_exception();
    // Unblock peers immediately: a dead body can never reach the
    // synchronization points the surviving bodies wait on.
    if (*task.on_failure) (*task.on_failure)();
  }
  tls_in_pool_region = false;
}

void WorkerPool::worker_main(int wid, std::uint64_t seen) {
  // `seen` was captured under mu_ at spawn registration, NOT read here:
  // the spawning region bumps epoch_ right after ensure_workers returns,
  // and a worker whose thread starts late must still see that bump as
  // new work, or the region waits forever for it.
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_work_.wait(lock, [&] { return stop_ || epoch_ != seen; });
    if (stop_) return;
    seen = epoch_;
    if (wid >= task_nthreads_ - 1) continue;  // not part of this region
    const Task task = task_;
    lock.unlock();
    run_body(task, /*tid=*/wid + 1);
    lock.lock();
    if (--pending_ == 0) cv_done_.notify_all();
  }
}

void WorkerPool::ensure_workers(int count) {
  std::lock_guard<std::mutex> lock(mu_);
  while (static_cast<int>(workers_.size()) < count) {
    const int wid = static_cast<int>(workers_.size());
    const std::uint64_t spawn_epoch = epoch_;
    workers_.emplace_back(
        [this, wid, spawn_epoch] { worker_main(wid, spawn_epoch); });
  }
}

bool WorkerPool::try_run(int nthreads,
                         const std::function<void(int)>& body,
                         const std::function<void()>& on_worker_failure,
                         std::vector<std::exception_ptr>& errors) {
  if (nthreads - 1 > kMaxWorkers) return false;
  if (tls_in_pool_region) return false;
  std::unique_lock<std::mutex> region(region_mu_, std::try_to_lock);
  if (!region.owns_lock()) return false;

  ensure_workers(nthreads - 1);
  const Task task{&body, &on_worker_failure, &errors};
  {
    std::lock_guard<std::mutex> lock(mu_);
    task_ = task;
    task_nthreads_ = nthreads;
    pending_ = nthreads - 1;
    ++epoch_;
    ++regions_;
    dispatches_ += static_cast<std::size_t>(nthreads - 1);
  }
  cv_work_.notify_all();
  robust::health().pool_regions.fetch_add(1, std::memory_order_relaxed);

  run_body(task, /*tid=*/0);  // master participates instead of blocking

  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [&] { return pending_ == 0; });
  return true;
}

WorkerPool::Stats WorkerPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return Stats{static_cast<int>(workers_.size()), regions_, dispatches_};
}

}  // namespace smm::par
