#include "src/threading/worker_pool.h"

#include <algorithm>
#include <cstdlib>
#include <system_error>

#include "src/common/env.h"
#include "src/common/error.h"
#include "src/common/fork_guard.h"
#include "src/common/str.h"
#include "src/robust/fault_injection.h"
#include "src/robust/health.h"

namespace smm::par {

namespace {

// Set while a thread executes a region body — on parked workers and on
// the master for the body it runs in place. A nested run_parallel from
// such a thread must not touch the pool (region_mu_ is non-recursive).
thread_local bool tls_in_pool_region = false;

// The innermost CurrentPoolBinding on this thread; null means "use the
// process-wide instance()". A raw pointer is safe because a binding's
// lifetime brackets every use (shard lanes bind for the whole request).
thread_local WorkerPool* tls_current_pool = nullptr;

}  // namespace

WorkerPool& WorkerPool::instance() {
  // Immortal (leaked) singleton: the ctor registers pthread_atfork
  // handlers that capture `this` and can never be unregistered, so the
  // pool must outlive any possible fork() — including one during or
  // after static destruction (fork_guard.h: only immortal process-wide
  // singletons may register). Threads are retired explicitly through
  // release_threads(); whatever is still parked dies with the process.
  static WorkerPool* pool = new WorkerPool(/*fork_guard=*/true);
  return *pool;
}

std::unique_ptr<WorkerPool> WorkerPool::create_private() {
  return std::unique_ptr<WorkerPool>(new WorkerPool(/*fork_guard=*/false));
}

WorkerPool& WorkerPool::current() {
  WorkerPool* bound = tls_current_pool;
  return bound != nullptr ? *bound : instance();
}

WorkerPool::CurrentPoolBinding::CurrentPoolBinding(WorkerPool& pool)
    : previous_(tls_current_pool) {
  tls_current_pool = &pool;
}

WorkerPool::CurrentPoolBinding::~CurrentPoolBinding() {
  tls_current_pool = previous_;
}

WorkerPool::WorkerPool(bool fork_guard) {
  // Generous default: the watchdog exists to catch dead workers, not slow
  // ones — a false positive poisons a healthy region mid-computation.
  timeout_ms_.store(env::read_long("SMMKIT_POOL_TIMEOUT_MS", 30000),
                    std::memory_order_relaxed);

  if (!fork_guard) return;

  // Fork safety (DESIGN.md §11): the child inherits the roster's state
  // but none of its threads — fork() copies only the calling thread. The
  // prepare handler holds both locks across the fork so the snapshot is
  // consistent (no region in flight, no half-grown roster); the child
  // handler then discards every thread handle and resets the pool to
  // empty, so the first post-fork region lazily spawns a fresh roster.
  common::register_fork_handlers(common::ForkHandlers{
      /*prepare=*/[this] {
        region_mu_.lock();
        mu_.lock();
      },
      /*parent=*/
      [this] {
        mu_.unlock();
        region_mu_.unlock();
      },
      /*child=*/
      [this] {
        // The std::thread handles refer to threads that do not exist in
        // this process; joining would hang, detaching passes a stale
        // descriptor to pthread_detach, and destruction would terminate().
        // Leak the handles — they are a few bytes, and fork-heavy callers
        // fork from a warmed parent rarely.
        new std::vector<std::thread>(std::move(workers_));
        workers_.clear();
        if (watchdog_.joinable()) new std::thread(std::move(watchdog_));
        ++generation_;
        region_.reset();
        spare_region_.reset();
        task_nthreads_ = 0;
        deadline_armed_ = false;
        quarantined_ = false;
        watchdog_exit_ = false;
        // One increment per fork for the whole runtime (the plan caches
        // reset under the same atfork pass).
        robust::health().fork_resets.fetch_add(1,
                                               std::memory_order_relaxed);
        mu_.unlock();
        region_mu_.unlock();
      }});
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  watchdog_cv_.notify_all();
  for (auto& w : workers_) w.join();
  if (watchdog_.joinable()) watchdog_.join();
}

bool WorkerPool::on_pool_thread() { return tls_in_pool_region; }

void WorkerPool::set_watchdog_timeout_ms(long ms) {
  timeout_ms_.store(ms < 0 ? 0 : ms, std::memory_order_relaxed);
}

long WorkerPool::watchdog_timeout_ms() const {
  return timeout_ms_.load(std::memory_order_relaxed);
}

bool WorkerPool::quarantined() const {
  std::lock_guard<std::mutex> lock(mu_);
  return quarantined_;
}

void WorkerPool::serve(const std::shared_ptr<Region>& r, int tid) {
  tls_in_pool_region = true;
  std::exception_ptr err;
  try {
    if (tid != 0 && robust::should_fire(robust::FaultSite::kWorkerHang)) {
      // Models a stalled/descheduled/killed worker: park off the caller's
      // stack until the watchdog (or a test) cancels the hang, then fail
      // like any dead worker would.
      robust::HangController::instance().block_here();
      throw Error(ErrorCode::kPoolTimeout,
                  strprintf("smmkit: injected worker hang on thread %d "
                            "(released after cancel)",
                            tid));
    }
    if (robust::should_fire(robust::FaultSite::kWorkerThrow))
      throw Error(ErrorCode::kWorkerPanic,
                  strprintf("smmkit: injected worker fault on thread %d",
                            tid));
    bool run = true;
    if (tid != 0) {
      std::lock_guard<std::mutex> g(r->mu);
      run = !r->abandoned;  // caller gone: its body may dangle
    }
    if (run) (*r->body)(tid);
  } catch (...) {
    err = std::current_exception();
  }
  tls_in_pool_region = false;
  {
    std::lock_guard<std::mutex> g(r->mu);
    // While !abandoned (the flag is only flipped under r->mu) the caller
    // is still blocked inside try_run, so body/on_failure/errors are
    // alive. tid 0 is the caller's own thread: its slot is always safe.
    if (tid == 0 || !r->abandoned) {
      if (err) {
        r->errors[static_cast<std::size_t>(tid)] = err;
        // Unblock peers immediately: a dead body can never reach the
        // synchronization points the surviving bodies wait on.
        if (r->on_failure != nullptr && *r->on_failure) (*r->on_failure)();
      }
      r->finished[static_cast<std::size_t>(tid)] = 1;
    }
    // Drop the local reference while still holding r->mu. The caller
    // both reads the exception and releases the region's reference under
    // this mutex, so every release is mutex-ordered and the final delete
    // can never race a reader (exception_ptr's refcount lives in
    // uninstrumented libstdc++, invisible to TSan).
    err = nullptr;
    if (tid != 0 && --r->pending == 0) r->done_cv.notify_all();
  }
}

void WorkerPool::worker_main(int wid, std::uint64_t seen,
                             std::uint64_t generation) {
  // `seen` was captured under mu_ at spawn registration, NOT read here:
  // the spawning region bumps epoch_ right after ensure_workers returns,
  // and a worker whose thread starts late must still see that bump as
  // new work, or the region waits forever for it. A generation mismatch
  // means the roster was rebuilt after a quarantine: this thread is no
  // longer part of the pool and exits.
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_work_.wait(lock, [&] {
      return stop_ || generation_ != generation || epoch_ != seen;
    });
    if (stop_ || generation_ != generation) return;
    seen = epoch_;
    if (wid >= task_nthreads_ - 1) continue;  // not part of this region
    const std::shared_ptr<Region> region = region_;
    lock.unlock();
    serve(region, /*tid=*/wid + 1);
    lock.lock();
  }
}

void WorkerPool::watchdog_main() {
  std::unique_lock<std::mutex> lock(mu_);
  std::uint64_t last_epoch = 0;
  while (!stop_ && !watchdog_exit_) {
    watchdog_cv_.wait(lock, [&] {
      return stop_ || watchdog_exit_ ||
             (region_ != nullptr && deadline_armed_ && epoch_ != last_epoch);
    });
    if (stop_ || watchdog_exit_) return;
    const std::shared_ptr<Region> region = region_;
    const auto deadline = region_deadline_;
    const long timeout = timeout_ms_.load(std::memory_order_relaxed);
    last_epoch = epoch_;
    lock.unlock();

    {
      std::unique_lock<std::mutex> g(region->mu);
      const bool done = region->done_cv.wait_until(
          g, deadline, [&] { return region->pending == 0; });
      if (!done) {
        region->timed_out = true;
        // Cancel the region: the caller's failure hook poisons the plan
        // barriers, so every body that is still alive fails out of its
        // next synchronization point instead of waiting forever for the
        // dead worker.
        if (region->on_failure != nullptr && *region->on_failure)
          (*region->on_failure)();
        g.unlock();
        robust::cancel_injected_hangs();
        g.lock();
        // Grace period: poisoned bodies need a moment to unwind. A
        // worker that still has not reported in is treated as lost —
        // the region is abandoned (survivors skip the caller's body,
        // which is about to go out of scope) and the master is released.
        const auto grace = std::chrono::milliseconds(
            std::clamp(timeout / 4, 10L, 1000L));
        if (!region->done_cv.wait_for(
                g, grace, [&] { return region->pending == 0; }))
          region->abandoned = true;
        region->done_cv.notify_all();
      }
    }
    lock.lock();
  }
}

bool WorkerPool::ensure_workers(int count) {
  std::lock_guard<std::mutex> lock(mu_);
  if (static_cast<int>(workers_.size()) < count &&
      robust::should_fire(robust::FaultSite::kPoolSpawnFail)) {
    robust::health().pool_spawn_failures.fetch_add(
        1, std::memory_order_relaxed);
    return false;
  }
  while (static_cast<int>(workers_.size()) < count) {
    const int wid = static_cast<int>(workers_.size());
    const std::uint64_t spawn_epoch = epoch_;
    const std::uint64_t generation = generation_;
    try {
      workers_.emplace_back([this, wid, spawn_epoch, generation] {
        worker_main(wid, spawn_epoch, generation);
      });
    } catch (const std::system_error&) {
      // Resource exhaustion. The partial roster stays parked (it is
      // still valid); this region is declined and served by the spawn
      // fallback — which may itself fail, but per-call threads release
      // their resources, persistent ones would hold them forever.
      robust::health().pool_spawn_failures.fetch_add(
          1, std::memory_order_relaxed);
      return false;
    }
  }
  return true;
}

void WorkerPool::rebuild() {
  std::lock_guard<std::mutex> lock(mu_);
  // Retire the old roster: healthy parked workers wake on the generation
  // bump and exit; a hung worker exits whenever its hang resolves. They
  // are detached — joining would inherit the very hang the quarantine is
  // escaping.
  ++generation_;
  for (auto& w : workers_) w.detach();
  workers_.clear();
  quarantined_ = false;
  ++rebuilds_;
  robust::health().pool_rebuilds.fetch_add(1, std::memory_order_relaxed);
  cv_work_.notify_all();
}

bool WorkerPool::try_run(int nthreads,
                         const std::function<void(int)>& body,
                         const std::function<void()>& on_worker_failure,
                         std::vector<std::exception_ptr>& errors) {
  if (nthreads - 1 > kMaxWorkers) return false;
  if (tls_in_pool_region) return false;
  std::unique_lock<std::mutex> region_lock(region_mu_, std::try_to_lock);
  if (!region_lock.owns_lock()) return false;

  bool need_rebuild = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    need_rebuild = quarantined_;
  }
  if (need_rebuild) {
    // Declining this one region lets the spawn fallback serve it while
    // the fresh roster spins up lazily on the next dispatch.
    rebuild();
    return false;
  }

  if (!ensure_workers(nthreads - 1)) return false;

  const long timeout = timeout_ms_.load(std::memory_order_relaxed);
  std::shared_ptr<Region> region;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!spare_region_) spare_region_ = std::make_shared<Region>();
    region = spare_region_;
    {
      std::lock_guard<std::mutex> g(region->mu);
      region->body = &body;
      region->on_failure = &on_worker_failure;
      region->nthreads = nthreads;
      region->pending = nthreads - 1;
      region->timed_out = false;
      region->abandoned = false;
      region->errors.assign(static_cast<std::size_t>(nthreads), nullptr);
      region->finished.assign(static_cast<std::size_t>(nthreads), 0);
    }
    region_ = region;
    task_nthreads_ = nthreads;
    ++epoch_;
    ++regions_;
    dispatches_ += static_cast<std::size_t>(nthreads - 1);
    deadline_armed_ = timeout > 0;
    if (timeout > 0) {
      region_deadline_ = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(timeout);
      if (!watchdog_.joinable()) {
        try {
          watchdog_ = std::thread([this] { watchdog_main(); });
        } catch (const std::system_error&) {
          // No watchdog thread available: the pool still works, it just
          // cannot detect hangs. Deliberate best-effort.
        }
      }
    }
  }
  cv_work_.notify_all();
  if (timeout > 0) watchdog_cv_.notify_one();
  robust::health().pool_regions.fetch_add(1, std::memory_order_relaxed);

  serve(region, /*tid=*/0);  // master participates instead of blocking

  bool timed_out = false;
  bool abandoned = false;
  {
    std::unique_lock<std::mutex> g(region->mu);
    region->done_cv.wait(
        g, [&] { return region->pending == 0 || region->abandoned; });
    timed_out = region->timed_out;
    abandoned = region->abandoned;
    for (int t = 0; t < nthreads; ++t)
      errors[static_cast<std::size_t>(t)] =
          region->errors[static_cast<std::size_t>(t)];
    if (timed_out) {
      for (int t = 1; t < nthreads; ++t) {
        auto& slot = errors[static_cast<std::size_t>(t)];
        if (!region->finished[static_cast<std::size_t>(t)] && !slot)
          slot = std::make_exception_ptr(Error(
              ErrorCode::kPoolTimeout,
              strprintf("smmkit: pool worker (thread %d) missed the "
                        "%ld ms watchdog deadline",
                        t, timeout)));
      }
    }
    // Release the region's exception references here, on the caller's
    // thread and under the region mutex — not when the next (possibly
    // unrelated) caller recycles the region. The exception object must
    // not be deleted on a thread that never synchronized with its
    // readers: exception_ptr's refcount lives in uninstrumented
    // libstdc++, so TSan cannot prove a cross-thread last release safe.
    region->errors.assign(region->errors.size(), nullptr);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    region_.reset();
    if (abandoned) spare_region_.reset();  // the lost worker still owns it
    if (timed_out) {
      ++watchdog_timeouts_;
      robust::health().pool_watchdog_timeouts.fetch_add(
          1, std::memory_order_relaxed);
      // Quarantine before releasing region_mu_: the next try_run must
      // see it and rebuild, never dispatch onto a roster with a lost
      // worker.
      if (!quarantined_) {
        quarantined_ = true;
        ++quarantines_;
        robust::health().pool_quarantines.fetch_add(
            1, std::memory_order_relaxed);
      }
    }
  }
  return true;
}

void WorkerPool::release_threads() {
  // Exclusive with regions: holding region_mu_ guarantees nothing is in
  // flight while the roster is retired, so every healthy worker is
  // parked on cv_work_ and exits promptly on the generation bump.
  std::lock_guard<std::mutex> region_lock(region_mu_);
  std::vector<std::thread> retired;
  std::thread dog;
  bool join_workers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++generation_;
    // A quarantined roster may hold a thread that is genuinely hung:
    // joining it would inherit the hang. Detach those (rebuild() does
    // the same); a healthy roster is joined so the no-live-threads
    // promise is real.
    join_workers = !quarantined_;
    quarantined_ = false;
    retired.swap(workers_);
    dog = std::move(watchdog_);
    watchdog_exit_ = dog.joinable();
  }
  cv_work_.notify_all();
  watchdog_cv_.notify_all();
  for (auto& w : retired) {
    if (join_workers)
      w.join();
    else
      w.detach();
  }
  if (dog.joinable()) dog.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    watchdog_exit_ = false;  // the next timed region respawns a watchdog
  }
}

int WorkerPool::live_threads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(workers_.size()) + (watchdog_.joinable() ? 1 : 0);
}

WorkerPool::Stats WorkerPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return Stats{static_cast<int>(workers_.size()),
               regions_,
               dispatches_,
               watchdog_timeouts_,
               quarantines_,
               rebuilds_};
}

}  // namespace smm::par
