// Work partitioning for the two parallelization methods the paper
// contrasts (Section III-D):
//
//  - 2-D grid (Marker et al. / OpenBLAS): C is split into a pr x pc grid
//    of thread blocks; each thread runs a full GEPP on its block. The grid
//    shape is fixed by a heuristic, which is exactly what hurts when M (or
//    N) is small: pr stays large, per-thread mc collapses, and every
//    thread ends up in edge kernels.
//
//  - Multi-dimensional ways (BLIS): the jj/ii/j/i loops each get a "ways"
//    count whose product is nthreads; dimensions that are too small are
//    not parallelized at all.
#pragma once

#include <vector>

#include "src/common/types.h"

namespace smm::par {

/// Half-open range [begin, end).
struct Range {
  index_t begin = 0;
  index_t end = 0;
  [[nodiscard]] index_t size() const { return end - begin; }
};

/// The `part`-th of `parts` near-equal chunks of [0, n), remainder spread
/// over the leading chunks.
Range split_range(index_t n, int parts, int part);

/// Like split_range but chunk boundaries are aligned to `quantum`
/// (e.g. mr or nr) so no thread starts mid-tile; the tail keeps any
/// remainder. parts that receive nothing get an empty range.
Range split_range_aligned(index_t n, int parts, int part, index_t quantum);

/// 2-D grid shape for the OpenBLAS-style method: pr * pc == nthreads,
/// pr as close to sqrt as divisibility allows, preferring more rows
/// (OpenBLAS splits M first).
struct Grid2D {
  int pr = 1;
  int pc = 1;
};
Grid2D choose_grid(int nthreads);

/// BLIS-style ways assignment over the jj (nc), ii (mc), j (nr) and
/// i (mr) loops.
struct Ways {
  int jc = 1;  ///< jj loop (Layer 1)
  int ic = 1;  ///< ii loop (Layer 3)
  int jr = 1;  ///< j loop (Layer 4)
  int ir = 1;  ///< i loop (Layer 5)
  [[nodiscard]] int total() const { return jc * ic * jr * ir; }
};

/// Choose ways for a GEMM of the given shape following the paper's
/// description of BLIS's policy: never parallelize a dimension with too
/// few tiles for the candidate ways (a small dimension stays sequential),
/// prefer the jr/ir inner loops only after jc/ic saturate, and keep
/// synchronization groups small.
Ways choose_ways(GemmShape shape, int nthreads, index_t mr, index_t nr,
                 index_t mc, index_t nc);

/// Factorizations (a, b) with a*b == n, a <= n, used by the ways search.
std::vector<std::pair<int, int>> factor_pairs(int n);

}  // namespace smm::par
