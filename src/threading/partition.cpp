#include "src/threading/partition.h"

#include <algorithm>
#include <cmath>

#include "src/common/error.h"

namespace smm::par {

Range split_range(index_t n, int parts, int part) {
  SMM_EXPECT(parts > 0 && part >= 0 && part < parts, "bad range split");
  const index_t base = n / parts;
  const index_t extra = n % parts;
  const index_t begin = part * base + std::min<index_t>(part, extra);
  const index_t len = base + (part < extra ? 1 : 0);
  return {begin, begin + len};
}

Range split_range_aligned(index_t n, int parts, int part, index_t quantum) {
  SMM_EXPECT(parts > 0 && part >= 0 && part < parts && quantum > 0,
             "bad aligned range split");
  const index_t tiles = (n + quantum - 1) / quantum;
  const Range tile_range = split_range(tiles, parts, part);
  Range out{tile_range.begin * quantum, tile_range.end * quantum};
  out.end = std::min(out.end, n);
  out.begin = std::min(out.begin, n);
  return out;
}

Grid2D choose_grid(int nthreads) {
  SMM_EXPECT(nthreads > 0, "need at least one thread");
  // Most-square factorization with pr >= pc: OpenBLAS splits M at least
  // as finely as N.
  Grid2D best{nthreads, 1};
  for (int pc = 1; pc * pc <= nthreads; ++pc) {
    if (nthreads % pc != 0) continue;
    best = {nthreads / pc, pc};
  }
  return best;
}

std::vector<std::pair<int, int>> factor_pairs(int n) {
  std::vector<std::pair<int, int>> out;
  for (int a = 1; a <= n; ++a)
    if (n % a == 0) out.emplace_back(a, n / a);
  return out;
}

Ways choose_ways(GemmShape shape, int nthreads, index_t mr, index_t nr,
                 index_t mc, index_t nc) {
  SMM_EXPECT(nthreads > 0 && mr > 0 && nr > 0 && mc > 0 && nc > 0,
             "bad ways query");
  // Parallelism capacity of each loop. jc splits the whole N range (each
  // group should keep a healthy number of column tiles); the inner caps
  // depend on the strip the outer ways leave behind.
  const index_t n_tiles = std::max<index_t>(1, shape.n / nr);
  const index_t cap_jc = std::max<index_t>(1, n_tiles / 16);
  const index_t cap_ic = std::max<index_t>(1, (shape.m + mc - 1) / mc);

  // Work granularity utilization: capacity coverage discounted by the
  // round-up imbalance (cap tiles over `ways` threads, each taking
  // ceil(cap/ways); the round-up becomes idle time at the next barrier).
  auto util = [](index_t cap, int ways) {
    const double cover = std::min(1.0, static_cast<double>(cap) / ways);
    const index_t per = (cap + ways - 1) / ways;
    const double imbalance =
        1.0 - static_cast<double>(cap) /
                  static_cast<double>(static_cast<index_t>(ways) * per);
    return cover * (1.0 - 0.3 * imbalance);
  };

  Ways best;
  double best_score = -1e9;
  for (const auto& [jc, rest1] : factor_pairs(nthreads)) {
    for (const auto& [ic, rest2] : factor_pairs(rest1)) {
      for (const auto& [jr, ir] : factor_pairs(rest2)) {
        Ways w{jc, ic, jr, ir};
        const index_t strip_n = std::max<index_t>(1, shape.n / jc);
        const index_t strip_m = std::max<index_t>(1, shape.m / ic);
        const index_t cap_jr =
            std::max<index_t>(1, std::min(strip_n, nc) / nr);
        const index_t cap_ir =
            std::max<index_t>(1, std::min(strip_m, mc) / mr);
        // A dimension that is "particularly small" is not parallelized:
        // its utilization collapses and the candidate loses.
        double score = std::min(1.0, static_cast<double>(cap_jc) / jc) *
                       util(cap_ic, ic) * util(cap_jr, jr) *
                       util(cap_ir, ir);
        // Multiplicative discounts so a mediocre-but-busy configuration
        // always beats a degenerate one that idles most threads:
        //  - barrier groups (only the ic*jr*ir threads of one jc slice
        //    share packing barriers, Section III-D): depth-log cost;
        //  - ir fragments the i loop that gives B slivers their L1 reuse;
        //  - ic multiplies the packed-A buffers. BLIS reaches for the
        //    jj/j loops first (the paper's M = 128 example: 8 x 8).
        score /= 1.0 + 0.03 * std::log2(static_cast<double>(ic * jr * ir));
        score /= 1.0 + 0.25 * std::log2(static_cast<double>(ir));
        score /= 1.0 + 0.20 * std::log2(static_cast<double>(ic));
        // Mild preference for the outer loops (bigger per-chunk work).
        score += 1e-6 * (4 * jc + 2 * jr + ic);
        if (score > best_score) {
          best_score = score;
          best = w;
        }
      }
    }
  }
  return best;
}

}  // namespace smm::par
