// Reusable sense-reversing central barrier. Used by the native plan
// executor to realize the BarrierOps that plans emit at the points the
// paper identifies (after packing A, after packing B, at the end of the
// kk loop — Section III-D).
//
// The barrier is poisonable: a worker that dies mid-plan can never
// arrive, so without poisoning its peers would block forever and the
// fork-join join() would deadlock. poison() wakes every waiter and makes
// all subsequent arrivals throw instead of waiting.
#pragma once

#include <condition_variable>
#include <mutex>

#include "src/common/types.h"

namespace smm::par {

class Barrier {
 public:
  explicit Barrier(int participants);

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Block until all participants have arrived; reusable across phases.
  /// Throws Error(kWorkerPanic) if the barrier has been poisoned.
  void arrive_and_wait();

  /// Mark the barrier failed: wake all current waiters and make every
  /// later arrival throw. Called by a worker that is dying with an
  /// exception and therefore can never arrive. Idempotent.
  void poison();

  [[nodiscard]] int participants() const { return participants_; }
  [[nodiscard]] bool poisoned() const;

 private:
  const int participants_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int waiting_ = 0;
  bool sense_ = false;  // flips each full round
  bool poisoned_ = false;
};

}  // namespace smm::par
