// Reusable sense-reversing central barrier. Used by the native plan
// executor to realize the BarrierOps that plans emit at the points the
// paper identifies (after packing A, after packing B, at the end of the
// kk loop — Section III-D).
#pragma once

#include <condition_variable>
#include <mutex>

#include "src/common/types.h"

namespace smm::par {

class Barrier {
 public:
  explicit Barrier(int participants);

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Block until all participants have arrived; reusable across phases.
  void arrive_and_wait();

  [[nodiscard]] int participants() const { return participants_; }

 private:
  const int participants_;
  std::mutex mu_;
  std::condition_variable cv_;
  int waiting_ = 0;
  bool sense_ = false;  // flips each full round
};

}  // namespace smm::par
