// Reusable sense-reversing central barrier. Used by the native plan
// executor to realize the BarrierOps that plans emit at the points the
// paper identifies (after packing A, after packing B, at the end of the
// kk loop — Section III-D).
//
// Synchronization is the cost Table II says dominates multi-threaded SMM,
// so arrival is tiered: the hot path is one fetch_add plus a bounded spin
// on an atomic epoch (the "sense" that reverses each round) and touches
// no mutex at all; only a waiter that exhausts its spin budget — or a
// barrier wider than the machine's concurrency, where spinning would
// steal cycles from the very peer being waited for — parks on a condvar.
//
// The barrier is poisonable: a worker that dies mid-plan can never
// arrive, so without poisoning its peers would block forever and the
// fork-join join() would deadlock. poison() wakes every waiter (spinners
// observe the flag, parkers are notified) and makes all subsequent
// arrivals throw instead of waiting.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "src/common/types.h"

namespace smm::par {

class Barrier {
 public:
  explicit Barrier(int participants);

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Block until all participants have arrived; reusable across phases.
  /// Throws Error(kWorkerPanic) if the barrier has been poisoned.
  void arrive_and_wait();

  /// Mark the barrier failed: wake all current waiters and make every
  /// later arrival throw. Called by a worker that is dying with an
  /// exception and therefore can never arrive. Idempotent.
  void poison();

  [[nodiscard]] int participants() const { return participants_; }
  [[nodiscard]] bool poisoned() const {
    return poisoned_.load(std::memory_order_acquire);
  }

 private:
  [[noreturn]] static void throw_poisoned();

  const int participants_;
  /// Spinning only pays when the host can actually run every participant
  /// concurrently; an oversubscribed barrier parks immediately so the
  /// waiter's timeslice goes to the peers it is waiting for.
  const bool spin_;
  /// Completed-round counter — the reversing sense. A waiter is released
  /// the moment the epoch it arrived under changes.
  std::atomic<std::uint32_t> epoch_{0};
  std::atomic<int> arrived_{0};
  std::atomic<bool> poisoned_{false};
  // Parking lot only (spin-exhausted waiters and poison wakeups); never
  // taken on the fast path except by the releasing arrival.
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace smm::par
