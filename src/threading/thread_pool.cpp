#include "src/threading/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <string>
#include <thread>
#include <vector>

#include "src/common/error.h"
#include "src/common/str.h"
#include "src/robust/fault_injection.h"
#include "src/robust/health.h"
#include "src/threading/worker_pool.h"

namespace smm::par {

namespace {

[[noreturn]] void throw_injected_worker_fault(int tid) {
  throw Error(ErrorCode::kWorkerPanic,
              strprintf("smmkit: injected worker fault on thread %d", tid));
}

/// Aggregate every worker failure: one failing worker rethrows its
/// original exception (type preserved); several failing workers are
/// combined into one error naming each thread, so no failure is
/// silently dropped behind the first. When every failure is an
/// smm::Error with the same code (e.g. all workers timed out or all
/// spawns failed), the aggregate keeps that code so callers like the
/// guarded executor can still classify the fault; mixed failures
/// aggregate as kWorkerPanic.
void rethrow_failures(const std::vector<std::exception_ptr>& errors,
                      int nthreads) {
  std::vector<std::pair<int, std::exception_ptr>> failed;
  for (int t = 0; t < nthreads; ++t)
    if (errors[static_cast<std::size_t>(t)])
      failed.emplace_back(t, errors[static_cast<std::size_t>(t)]);
  if (failed.empty()) return;
  if (failed.size() == 1) std::rethrow_exception(failed.front().second);
  std::string combined =
      strprintf("smmkit: %zu of %d workers failed:", failed.size(),
                nthreads);
  bool first = true;
  bool same_code = true;
  ErrorCode common = ErrorCode::kWorkerPanic;
  for (const auto& [tid, err] : failed) {
    combined += strprintf(" [thread %d: ", tid);
    try {
      std::rethrow_exception(err);
    } catch (const Error& e) {
      combined += e.what();
      if (first) common = e.code();
      else if (e.code() != common) same_code = false;
    } catch (const std::exception& e) {
      combined += e.what();
      same_code = false;
    } catch (...) {
      combined += "non-standard exception";
      same_code = false;
    }
    combined += "]";
    first = false;
  }
  throw Error(same_code ? common : ErrorCode::kWorkerPanic, combined);
}

/// Spawn-per-call fallback: used when the pool is busy with another
/// region, when the caller is itself a pool worker (nested region), or
/// when the region is wider than the pool's cap.
void run_spawned(int nthreads, const std::function<void(int)>& body,
                 const std::function<void()>& on_worker_failure,
                 std::vector<std::exception_ptr>& errors) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nthreads));
  for (int t = 0; t < nthreads; ++t) {
    bool spawn_failed = false;
    std::string why;
    try {
      if (robust::should_fire(robust::FaultSite::kPoolSpawnFail))
        throw Error(ErrorCode::kPoolSpawnFail,
                    strprintf("smmkit: injected thread-spawn failure "
                              "(thread %d)",
                              t));
      threads.emplace_back([&, t] {
        try {
          if (robust::should_fire(robust::FaultSite::kWorkerThrow))
            throw_injected_worker_fault(t);
          body(t);
        } catch (...) {
          errors[static_cast<std::size_t>(t)] = std::current_exception();
          // Unblock peers before the join: a dead worker can never reach
          // the synchronization points the surviving bodies wait on.
          if (on_worker_failure) on_worker_failure();
        }
      });
    } catch (const Error& e) {
      spawn_failed = true;
      why = e.what();
    } catch (const std::system_error& e) {
      // Thread creation itself failed (resource exhaustion). Before this
      // path existed, destroying the vector of still-joinable threads
      // here called std::terminate.
      spawn_failed = true;
      why = e.what();
    }
    if (spawn_failed) {
      // The remaining bodies can never run: mark every unspawned tid
      // failed and poison the region so the already-running bodies fail
      // out of their barriers instead of waiting for peers that do not
      // exist.
      for (int miss = t; miss < nthreads; ++miss)
        errors[static_cast<std::size_t>(miss)] =
            std::make_exception_ptr(Error(
                ErrorCode::kPoolSpawnFail,
                strprintf("smmkit: could not spawn worker thread %d: %s",
                          miss, why.c_str())));
      robust::health().pool_spawn_failures.fetch_add(
          1, std::memory_order_relaxed);
      if (on_worker_failure) on_worker_failure();
      break;
    }
  }
  for (auto& th : threads) th.join();
}

}  // namespace

void run_parallel(int nthreads, const std::function<void(int)>& body,
                  const std::function<void()>& on_worker_failure) {
  SMM_EXPECT(nthreads > 0, "run_parallel needs at least one thread");
  if (nthreads == 1) {
    // Single-thread bypass: no pool handshake, no spawn, no error vector.
    if (robust::should_fire(robust::FaultSite::kWorkerThrow))
      throw_injected_worker_fault(0);
    body(0);
    return;
  }
  std::vector<std::exception_ptr> errors(
      static_cast<std::size_t>(nthreads));
  // current(): the thread's bound pool (a shard lane binds its own) or
  // the process-wide instance.
  if (!WorkerPool::current().try_run(nthreads, body, on_worker_failure,
                                     errors)) {
    robust::health().pool_spawn_fallbacks.fetch_add(
        1, std::memory_order_relaxed);
    run_spawned(nthreads, body, on_worker_failure, errors);
  }
  rethrow_failures(errors, nthreads);
}

namespace detail {

int compute_threads_available(unsigned hw, const char* env) {
  int threads = static_cast<int>(std::clamp(hw, 1u, 256u));
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long cap = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && cap > 0)
      threads = std::min<long>(threads, cap);
  }
  return threads;
}

}  // namespace detail

int native_threads_available() {
  // Cached: hardware_concurrency() is a syscall on some libstdc++
  // configurations and this query sits on the per-call dispatch path
  // (parallel selection, barrier construction).
  static const int cached = detail::compute_threads_available(
      std::thread::hardware_concurrency(), std::getenv("SMMKIT_MAX_THREADS"));
  return cached;
}

}  // namespace smm::par
