#include "src/threading/thread_pool.h"

#include <algorithm>
#include <exception>
#include <thread>
#include <vector>

#include "src/common/error.h"

namespace smm::par {

void run_parallel(int nthreads, const std::function<void(int)>& body) {
  SMM_EXPECT(nthreads > 0, "run_parallel needs at least one thread");
  if (nthreads == 1) {
    body(0);
    return;
  }
  std::vector<std::exception_ptr> errors(
      static_cast<std::size_t>(nthreads));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nthreads));
  for (int t = 0; t < nthreads; ++t) {
    threads.emplace_back([&, t] {
      try {
        body(t);
      } catch (...) {
        errors[static_cast<std::size_t>(t)] = std::current_exception();
      }
    });
  }
  for (auto& th : threads) th.join();
  for (auto& err : errors)
    if (err) std::rethrow_exception(err);
}

int native_threads_available() {
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::clamp(hw, 1u, 256u));
}

}  // namespace smm::par
