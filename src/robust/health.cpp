#include "src/robust/health.h"

#include <atomic>

#include "src/common/str.h"

namespace smm::robust {

Health& Health::instance() {
  static Health h;
  return h;
}

Health::Transaction::Transaction() {
  Health& h = health();
  h.tx_mu_.lock();
  // Odd sequence = transaction in progress. A release *fence* after the
  // bump, not a release bump: release on the RMW would only order the
  // ops *before* it, letting the transaction's relaxed counter writes
  // move above the odd store. The fence pairs with the acquire fence in
  // snapshot(): a reader that sees any in-transaction write then also
  // sees the odd sequence on its validating load, and retries.
  h.tx_seq_.fetch_add(1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
}

Health::Transaction::~Transaction() {
  Health& h = health();
  // Release RMW: the transaction's counter writes cannot sink below the
  // even store. Pairs with the acquire load that starts snapshot().
  h.tx_seq_.fetch_add(1, std::memory_order_release);
  h.tx_mu_.unlock();
}

HealthSnapshot Health::read_counters() const {
  HealthSnapshot s;
  s.guarded_runs = guarded_runs.load(std::memory_order_relaxed);
  s.clean_runs = clean_runs.load(std::memory_order_relaxed);
  s.retries = retries.load(std::memory_order_relaxed);
  s.rebuild_fallbacks = rebuild_fallbacks.load(std::memory_order_relaxed);
  s.naive_fallbacks = naive_fallbacks.load(std::memory_order_relaxed);
  s.failures = failures.load(std::memory_order_relaxed);
  s.checksum_rejections =
      checksum_rejections.load(std::memory_order_relaxed);
  s.worker_panics = worker_panics.load(std::memory_order_relaxed);
  s.alloc_failures = alloc_failures.load(std::memory_order_relaxed);
  s.batched_items = batched_items.load(std::memory_order_relaxed);
  s.batched_item_failures =
      batched_item_failures.load(std::memory_order_relaxed);
  s.batched_prepack_reuse =
      batched_prepack_reuse.load(std::memory_order_relaxed);
  s.pool_regions = pool_regions.load(std::memory_order_relaxed);
  s.pool_spawn_fallbacks =
      pool_spawn_fallbacks.load(std::memory_order_relaxed);
  s.plan_cache_hits = plan_cache_hits.load(std::memory_order_relaxed);
  s.plan_cache_misses = plan_cache_misses.load(std::memory_order_relaxed);
  s.pool_watchdog_timeouts =
      pool_watchdog_timeouts.load(std::memory_order_relaxed);
  s.pool_quarantines = pool_quarantines.load(std::memory_order_relaxed);
  s.pool_rebuilds = pool_rebuilds.load(std::memory_order_relaxed);
  s.pool_spawn_failures =
      pool_spawn_failures.load(std::memory_order_relaxed);
  s.arena_fallbacks = arena_fallbacks.load(std::memory_order_relaxed);
  s.plan_cache_insert_failures =
      plan_cache_insert_failures.load(std::memory_order_relaxed);
  s.prepack_fallbacks = prepack_fallbacks.load(std::memory_order_relaxed);
  s.service_submitted = service_submitted.load(std::memory_order_relaxed);
  s.service_admitted = service_admitted.load(std::memory_order_relaxed);
  s.service_completed = service_completed.load(std::memory_order_relaxed);
  s.service_rejected = service_rejected.load(std::memory_order_relaxed);
  s.service_shed = service_shed.load(std::memory_order_relaxed);
  s.service_evictions =
      service_evictions.load(std::memory_order_relaxed);
  s.service_deadline_misses =
      service_deadline_misses.load(std::memory_order_relaxed);
  s.service_cancellations =
      service_cancellations.load(std::memory_order_relaxed);
  s.service_breaker_trips =
      service_breaker_trips.load(std::memory_order_relaxed);
  s.service_breaker_rejections =
      service_breaker_rejections.load(std::memory_order_relaxed);
  s.service_routed = service_routed.load(std::memory_order_relaxed);
  s.service_steals = service_steals.load(std::memory_order_relaxed);
  s.service_coalesced_groups =
      service_coalesced_groups.load(std::memory_order_relaxed);
  s.service_coalesced_items =
      service_coalesced_items.load(std::memory_order_relaxed);
  s.service_rerouted = service_rerouted.load(std::memory_order_relaxed);
  s.service_hedged = service_hedged.load(std::memory_order_relaxed);
  s.service_hedge_wins =
      service_hedge_wins.load(std::memory_order_relaxed);
  s.shard_quarantines =
      shard_quarantines.load(std::memory_order_relaxed);
  s.shard_rebuilds = shard_rebuilds.load(std::memory_order_relaxed);
  s.service_brownouts =
      service_brownouts.load(std::memory_order_relaxed);
  s.nonfinite_rejections =
      nonfinite_rejections.load(std::memory_order_relaxed);
  s.fork_resets = fork_resets.load(std::memory_order_relaxed);
  s.integrity_detected =
      integrity_detected.load(std::memory_order_relaxed);
  s.integrity_corrected =
      integrity_corrected.load(std::memory_order_relaxed);
  s.integrity_recomputed =
      integrity_recomputed.load(std::memory_order_relaxed);
  s.integrity_quarantines =
      integrity_quarantines.load(std::memory_order_relaxed);
  s.prepack_repacks = prepack_repacks.load(std::memory_order_relaxed);
  s.plan_seal_rebuilds =
      plan_seal_rebuilds.load(std::memory_order_relaxed);
  s.corrected_runs = corrected_runs.load(std::memory_order_relaxed);
  s.tune_samples = tune_samples.load(std::memory_order_relaxed);
  s.tune_replans = tune_replans.load(std::memory_order_relaxed);
  s.tune_table_hits = tune_table_hits.load(std::memory_order_relaxed);
  s.tune_table_stale = tune_table_stale.load(std::memory_order_relaxed);
  s.retry_attempts = retry_attempts.load(std::memory_order_relaxed);
  s.retry_successes = retry_successes.load(std::memory_order_relaxed);
  s.retry_budget_exhausted =
      retry_budget_exhausted.load(std::memory_order_relaxed);
  s.limiter_dips = limiter_dips.load(std::memory_order_relaxed);
  return s;
}

HealthSnapshot Health::snapshot() const {
  // Seqlock read: retry while a transaction is in flight or completed
  // mid-read. A bounded number of optimistic attempts, then fall back to
  // excluding writers via the transaction mutex — snapshot() must
  // terminate even under a transaction storm.
  for (int attempt = 0; attempt < 64; ++attempt) {
    const std::uint64_t s0 = tx_seq_.load(std::memory_order_acquire);
    if (s0 & 1) continue;  // transaction in progress
    HealthSnapshot s = read_counters();
    // Acquire *fence* before the validating load: an acquire load would
    // only order the ops *after* it, letting the relaxed counter reads
    // sink below the validation. The fence pairs with the release fence
    // in Transaction's ctor (see there).
    std::atomic_thread_fence(std::memory_order_acquire);
    if (tx_seq_.load(std::memory_order_relaxed) == s0) return s;
  }
  std::lock_guard<std::mutex> lock(tx_mu_);
  return read_counters();
}

void Health::reset() {
  guarded_runs = 0;
  clean_runs = 0;
  retries = 0;
  rebuild_fallbacks = 0;
  naive_fallbacks = 0;
  failures = 0;
  checksum_rejections = 0;
  worker_panics = 0;
  alloc_failures = 0;
  batched_items = 0;
  batched_item_failures = 0;
  batched_prepack_reuse = 0;
  pool_regions = 0;
  pool_spawn_fallbacks = 0;
  plan_cache_hits = 0;
  plan_cache_misses = 0;
  pool_watchdog_timeouts = 0;
  pool_quarantines = 0;
  pool_rebuilds = 0;
  pool_spawn_failures = 0;
  arena_fallbacks = 0;
  plan_cache_insert_failures = 0;
  prepack_fallbacks = 0;
  service_submitted = 0;
  service_admitted = 0;
  service_completed = 0;
  service_rejected = 0;
  service_shed = 0;
  service_evictions = 0;
  service_deadline_misses = 0;
  service_cancellations = 0;
  service_breaker_trips = 0;
  service_breaker_rejections = 0;
  service_routed = 0;
  service_steals = 0;
  service_coalesced_groups = 0;
  service_coalesced_items = 0;
  service_rerouted = 0;
  service_hedged = 0;
  service_hedge_wins = 0;
  shard_quarantines = 0;
  shard_rebuilds = 0;
  service_brownouts = 0;
  nonfinite_rejections = 0;
  fork_resets = 0;
  integrity_detected = 0;
  integrity_corrected = 0;
  integrity_recomputed = 0;
  integrity_quarantines = 0;
  prepack_repacks = 0;
  plan_seal_rebuilds = 0;
  corrected_runs = 0;
  tune_samples = 0;
  tune_replans = 0;
  tune_table_hits = 0;
  tune_table_stale = 0;
  retry_attempts = 0;
  retry_successes = 0;
  retry_budget_exhausted = 0;
  limiter_dips = 0;
}

std::string HealthSnapshot::to_string() const {
  return strprintf(
      "guarded_runs=%zu clean=%zu retries=%zu rebuilds=%zu naive=%zu "
      "failures=%zu checksum_rej=%zu worker_panics=%zu alloc_fail=%zu "
      "batched_items=%zu batched_item_failures=%zu "
      "batched_prepack_reuse=%zu pool_regions=%zu "
      "pool_spawn_fallbacks=%zu plan_cache_hits=%zu plan_cache_misses=%zu "
      "pool_watchdog_timeouts=%zu pool_quarantines=%zu pool_rebuilds=%zu "
      "pool_spawn_failures=%zu arena_fallbacks=%zu "
      "plan_cache_insert_failures=%zu prepack_fallbacks=%zu "
      "service_submitted=%zu service_admitted=%zu service_completed=%zu "
      "service_rejected=%zu service_shed=%zu service_evictions=%zu "
      "service_deadline_misses=%zu "
      "service_cancellations=%zu service_breaker_trips=%zu "
      "service_breaker_rejections=%zu service_routed=%zu "
      "service_steals=%zu service_coalesced_groups=%zu "
      "service_coalesced_items=%zu service_rerouted=%zu "
      "service_hedged=%zu service_hedge_wins=%zu "
      "shard_quarantines=%zu shard_rebuilds=%zu "
      "service_brownouts=%zu nonfinite_rejections=%zu "
      "fork_resets=%zu integrity_detected=%zu integrity_corrected=%zu "
      "integrity_recomputed=%zu integrity_quarantines=%zu "
      "prepack_repacks=%zu plan_seal_rebuilds=%zu corrected_runs=%zu "
      "tune_samples=%zu tune_replans=%zu tune_table_hits=%zu "
      "tune_table_stale=%zu retry_attempts=%zu retry_successes=%zu "
      "retry_budget_exhausted=%zu limiter_dips=%zu",
      guarded_runs, clean_runs, retries, rebuild_fallbacks, naive_fallbacks,
      failures, checksum_rejections, worker_panics, alloc_failures,
      batched_items, batched_item_failures, batched_prepack_reuse,
      pool_regions,
      pool_spawn_fallbacks, plan_cache_hits, plan_cache_misses,
      pool_watchdog_timeouts, pool_quarantines, pool_rebuilds,
      pool_spawn_failures, arena_fallbacks, plan_cache_insert_failures,
      prepack_fallbacks, service_submitted, service_admitted,
      service_completed, service_rejected, service_shed, service_evictions,
      service_deadline_misses, service_cancellations, service_breaker_trips,
      service_breaker_rejections, service_routed, service_steals,
      service_coalesced_groups, service_coalesced_items,
      service_rerouted, service_hedged, service_hedge_wins,
      shard_quarantines, shard_rebuilds, service_brownouts,
      nonfinite_rejections, fork_resets,
      integrity_detected, integrity_corrected, integrity_recomputed,
      integrity_quarantines, prepack_repacks, plan_seal_rebuilds,
      corrected_runs, tune_samples, tune_replans, tune_table_hits,
      tune_table_stale, retry_attempts, retry_successes,
      retry_budget_exhausted, limiter_dips);
}

}  // namespace smm::robust
