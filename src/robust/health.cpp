#include "src/robust/health.h"

#include "src/common/str.h"

namespace smm::robust {

Health& Health::instance() {
  static Health h;
  return h;
}

HealthSnapshot Health::snapshot() const {
  HealthSnapshot s;
  s.guarded_runs = guarded_runs.load(std::memory_order_relaxed);
  s.clean_runs = clean_runs.load(std::memory_order_relaxed);
  s.retries = retries.load(std::memory_order_relaxed);
  s.rebuild_fallbacks = rebuild_fallbacks.load(std::memory_order_relaxed);
  s.naive_fallbacks = naive_fallbacks.load(std::memory_order_relaxed);
  s.failures = failures.load(std::memory_order_relaxed);
  s.checksum_rejections =
      checksum_rejections.load(std::memory_order_relaxed);
  s.worker_panics = worker_panics.load(std::memory_order_relaxed);
  s.alloc_failures = alloc_failures.load(std::memory_order_relaxed);
  s.batched_items = batched_items.load(std::memory_order_relaxed);
  s.batched_item_failures =
      batched_item_failures.load(std::memory_order_relaxed);
  s.pool_regions = pool_regions.load(std::memory_order_relaxed);
  s.pool_spawn_fallbacks =
      pool_spawn_fallbacks.load(std::memory_order_relaxed);
  s.plan_cache_hits = plan_cache_hits.load(std::memory_order_relaxed);
  s.plan_cache_misses = plan_cache_misses.load(std::memory_order_relaxed);
  return s;
}

void Health::reset() {
  guarded_runs = 0;
  clean_runs = 0;
  retries = 0;
  rebuild_fallbacks = 0;
  naive_fallbacks = 0;
  failures = 0;
  checksum_rejections = 0;
  worker_panics = 0;
  alloc_failures = 0;
  batched_items = 0;
  batched_item_failures = 0;
  pool_regions = 0;
  pool_spawn_fallbacks = 0;
  plan_cache_hits = 0;
  plan_cache_misses = 0;
}

std::string HealthSnapshot::to_string() const {
  return strprintf(
      "guarded_runs=%zu clean=%zu retries=%zu rebuilds=%zu naive=%zu "
      "failures=%zu checksum_rej=%zu worker_panics=%zu alloc_fail=%zu "
      "batched_items=%zu batched_item_failures=%zu pool_regions=%zu "
      "pool_spawn_fallbacks=%zu plan_cache_hits=%zu plan_cache_misses=%zu",
      guarded_runs, clean_runs, retries, rebuild_fallbacks, naive_fallbacks,
      failures, checksum_rejections, worker_panics, alloc_failures,
      batched_items, batched_item_failures, pool_regions,
      pool_spawn_fallbacks, plan_cache_hits, plan_cache_misses);
}

}  // namespace smm::robust
