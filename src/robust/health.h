// Process-wide health counters for the robustness layer: how often the
// guarded executor ran, retried, degraded, or failed, and how often the
// batched driver hit per-item trouble. Lock-free (relaxed atomics — these
// are monotonic event counts, not synchronization); a serving system polls
// snapshot() for observability.
//
// Coherent snapshots (DESIGN.md §11): lone increments stay relaxed, but
// sites that update *several correlated* counters (a guarded run landing
// its outcome, the batched driver accounting a failure set, the service
// resolving a request) bracket the group in a Health::Transaction — a
// writer-exclusive seqlock bump. snapshot() retries until it reads a
// quiescent sequence, so a scraper can no longer observe a torn
// cross-counter state such as clean_runs > guarded_runs.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>

namespace smm::robust {

/// Point-in-time copy of the counters (plain values, safe to ship around).
struct HealthSnapshot {
  std::size_t guarded_runs = 0;
  std::size_t clean_runs = 0;
  std::size_t retries = 0;
  std::size_t rebuild_fallbacks = 0;
  std::size_t naive_fallbacks = 0;
  std::size_t failures = 0;
  std::size_t checksum_rejections = 0;
  std::size_t worker_panics = 0;
  std::size_t alloc_failures = 0;
  std::size_t batched_items = 0;
  std::size_t batched_item_failures = 0;
  /// Batch items whose B pack was served from a shared prepacked handle
  /// (the same-shape same-B fast path of batched dispatch).
  std::size_t batched_prepack_reuse = 0;
  // Call-overhead fast path (DESIGN.md §8): how many fork-join regions
  // the persistent pool served vs fell back to spawn-per-call, and how
  // the process-wide plan caches are hitting.
  std::size_t pool_regions = 0;
  std::size_t pool_spawn_fallbacks = 0;
  std::size_t plan_cache_hits = 0;
  std::size_t plan_cache_misses = 0;
  // Runtime hardening (DESIGN.md §10): watchdog detections, pool
  // lifecycle events, and the memory-pressure degradations. Each counter
  // is the observable face of one failure class — survivable faults must
  // still show up here.
  std::size_t pool_watchdog_timeouts = 0;
  std::size_t pool_quarantines = 0;
  std::size_t pool_rebuilds = 0;
  std::size_t pool_spawn_failures = 0;
  std::size_t arena_fallbacks = 0;
  std::size_t plan_cache_insert_failures = 0;
  std::size_t prepack_fallbacks = 0;
  // Serving layer (DESIGN.md §11): admission, shedding, deadlines, the
  // circuit breaker, input hygiene, and fork-lifecycle resets.
  std::size_t service_submitted = 0;
  std::size_t service_admitted = 0;
  std::size_t service_completed = 0;
  std::size_t service_rejected = 0;       ///< all admission-time rejections
  std::size_t service_shed = 0;           ///< watermark refusals (subset of rejected)
  std::size_t service_evictions = 0;      ///< admitted, displaced by a higher class
  std::size_t service_deadline_misses = 0;
  std::size_t service_cancellations = 0;
  std::size_t service_breaker_trips = 0;
  std::size_t service_breaker_rejections = 0;
  // Sharded runtime (DESIGN.md §13): placement, skew repair, and
  // dispatch amortization. Invariant (bracketed in a Transaction at the
  // admission site): service_routed == service_submitted — every
  // submission is routed exactly once, before the admission decision.
  std::size_t service_routed = 0;          ///< submissions placed on a shard
  std::size_t service_steals = 0;          ///< requests run by a non-home shard
  std::size_t service_coalesced_groups = 0;///< >=2-member batched dispatches
  std::size_t service_coalesced_items = 0; ///< requests served inside those groups
  // Failure domains (DESIGN.md §15): the per-shard lifecycle, drain
  // re-routing, hedged deadline requests, and brownout entries.
  // Invariant (enforced in tests): service_routed counts every
  // submission once — a diversion or drain moves the *per-shard*
  // attribution and lands here instead, never double-counts.
  std::size_t service_rerouted = 0;    ///< placements diverted off a quarantined home
  std::size_t service_hedged = 0;      ///< backup submissions fired
  std::size_t service_hedge_wins = 0;  ///< hedged requests whose backup won
  std::size_t shard_quarantines = 0;   ///< shard entries into kQuarantined
  std::size_t shard_rebuilds = 0;      ///< quarantine -> rebuilding probes
  std::size_t service_brownouts = 0;   ///< brownout-mode entries
  std::size_t nonfinite_rejections = 0;
  std::size_t fork_resets = 0;            ///< atfork child-side pool resets
  // Integrity layer (DESIGN.md §12): ABFT detections and how each one was
  // resolved, plus sealed-state (plan cache / prepacked B) lifecycle.
  // Accounting invariant for guarded traffic: every detection is resolved
  // by an in-place element correction, a localized panel recompute, or a
  // full re-execution — detected == corrected + recomputed (the only skew
  // is a run whose every recovery stage was disabled or failed).
  std::size_t integrity_detected = 0;   ///< verifications that found corruption
  std::size_t integrity_corrected = 0;  ///< resolved by single-element repair
  std::size_t integrity_recomputed = 0; ///< resolved by panel or full recompute
  std::size_t integrity_quarantines = 0;///< sealed entries failing their checksum
  std::size_t prepack_repacks = 0;      ///< PrepackedB seal mismatch -> repacked
  std::size_t plan_seal_rebuilds = 0;   ///< PlanCache seal mismatch -> rebuilt
  std::size_t corrected_runs = 0;       ///< guarded runs served via in-place repair
  // Online autotuning (DESIGN.md §14): the observe/adapt feedback loop.
  // Invariant (Transaction-bracketed at the install site): every re-plan
  // was driven by at least one sample — tune_replans <= tune_samples.
  std::size_t tune_samples = 0;      ///< timed warm calls fed to the tuner
  std::size_t tune_replans = 0;      ///< epoch bumps (plan installs/reverts)
  std::size_t tune_table_hits = 0;   ///< classes warm-started from disk
  std::size_t tune_table_stale = 0;  ///< tables rejected (corrupt/foreign)
  // Caller-side resilience (DESIGN.md §16): the retry budget and the
  // adaptive concurrency limiter. Invariant (attempt bumped before its
  // outcome can land): retry_successes <= retry_attempts.
  std::size_t retry_attempts = 0;   ///< resubmissions by the resilient client
  std::size_t retry_successes = 0;  ///< retries that reached ok
  std::size_t retry_budget_exhausted = 0;  ///< dry-bucket fast-fails
  std::size_t limiter_dips = 0;     ///< AIMD multiplicative decreases

  [[nodiscard]] std::string to_string() const;
};

/// The counters themselves. All increments are relaxed.
class Health {
 public:
  static Health& instance();

  std::atomic<std::size_t> guarded_runs{0};
  std::atomic<std::size_t> clean_runs{0};
  std::atomic<std::size_t> retries{0};
  std::atomic<std::size_t> rebuild_fallbacks{0};
  std::atomic<std::size_t> naive_fallbacks{0};
  std::atomic<std::size_t> failures{0};
  std::atomic<std::size_t> checksum_rejections{0};
  std::atomic<std::size_t> worker_panics{0};
  std::atomic<std::size_t> alloc_failures{0};
  std::atomic<std::size_t> batched_items{0};
  std::atomic<std::size_t> batched_item_failures{0};
  std::atomic<std::size_t> batched_prepack_reuse{0};
  std::atomic<std::size_t> pool_regions{0};
  std::atomic<std::size_t> pool_spawn_fallbacks{0};
  std::atomic<std::size_t> plan_cache_hits{0};
  std::atomic<std::size_t> plan_cache_misses{0};
  std::atomic<std::size_t> pool_watchdog_timeouts{0};
  std::atomic<std::size_t> pool_quarantines{0};
  std::atomic<std::size_t> pool_rebuilds{0};
  std::atomic<std::size_t> pool_spawn_failures{0};
  std::atomic<std::size_t> arena_fallbacks{0};
  std::atomic<std::size_t> plan_cache_insert_failures{0};
  std::atomic<std::size_t> prepack_fallbacks{0};
  std::atomic<std::size_t> service_submitted{0};
  std::atomic<std::size_t> service_admitted{0};
  std::atomic<std::size_t> service_completed{0};
  std::atomic<std::size_t> service_rejected{0};
  std::atomic<std::size_t> service_shed{0};
  std::atomic<std::size_t> service_evictions{0};
  std::atomic<std::size_t> service_deadline_misses{0};
  std::atomic<std::size_t> service_cancellations{0};
  std::atomic<std::size_t> service_breaker_trips{0};
  std::atomic<std::size_t> service_breaker_rejections{0};
  std::atomic<std::size_t> service_routed{0};
  std::atomic<std::size_t> service_steals{0};
  std::atomic<std::size_t> service_coalesced_groups{0};
  std::atomic<std::size_t> service_coalesced_items{0};
  std::atomic<std::size_t> service_rerouted{0};
  std::atomic<std::size_t> service_hedged{0};
  std::atomic<std::size_t> service_hedge_wins{0};
  std::atomic<std::size_t> shard_quarantines{0};
  std::atomic<std::size_t> shard_rebuilds{0};
  std::atomic<std::size_t> service_brownouts{0};
  std::atomic<std::size_t> nonfinite_rejections{0};
  std::atomic<std::size_t> fork_resets{0};
  std::atomic<std::size_t> integrity_detected{0};
  std::atomic<std::size_t> integrity_corrected{0};
  std::atomic<std::size_t> integrity_recomputed{0};
  std::atomic<std::size_t> integrity_quarantines{0};
  std::atomic<std::size_t> prepack_repacks{0};
  std::atomic<std::size_t> plan_seal_rebuilds{0};
  std::atomic<std::size_t> corrected_runs{0};
  std::atomic<std::size_t> tune_samples{0};
  std::atomic<std::size_t> tune_replans{0};
  std::atomic<std::size_t> tune_table_hits{0};
  std::atomic<std::size_t> tune_table_stale{0};
  std::atomic<std::size_t> retry_attempts{0};
  std::atomic<std::size_t> retry_successes{0};
  std::atomic<std::size_t> retry_budget_exhausted{0};
  std::atomic<std::size_t> limiter_dips{0};

  /// Brackets a correlated multi-counter update: writer-exclusive (a
  /// mutex serializes transactions) with an odd/even sequence bump so
  /// snapshot() can detect and retry a torn read. Increments inside a
  /// transaction stay relaxed — the sequence provides the grouping, not
  /// the ordering. Single-counter events do not need one.
  class Transaction {
   public:
    Transaction();
    ~Transaction();
    Transaction(const Transaction&) = delete;
    Transaction& operator=(const Transaction&) = delete;
  };

  /// One coherent copy of every counter: no transaction is half-visible
  /// in the result. Lone relaxed increments may land on either side of
  /// the snapshot (they carry no cross-counter invariant). Lock-free on
  /// the happy path; under a writer storm it falls back to taking the
  /// transaction mutex, so it always terminates.
  [[nodiscard]] HealthSnapshot snapshot() const;
  void reset();

 private:
  Health() = default;
  HealthSnapshot read_counters() const;

  mutable std::mutex tx_mu_;
  std::atomic<std::uint64_t> tx_seq_{0};
};

/// Shorthand accessor.
inline Health& health() { return Health::instance(); }

}  // namespace smm::robust
