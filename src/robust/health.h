// Process-wide health counters for the robustness layer: how often the
// guarded executor ran, retried, degraded, or failed, and how often the
// batched driver hit per-item trouble. Lock-free (relaxed atomics — these
// are monotonic event counts, not synchronization); a serving system polls
// snapshot() for observability.
#pragma once

#include <atomic>
#include <cstddef>
#include <string>

namespace smm::robust {

/// Point-in-time copy of the counters (plain values, safe to ship around).
struct HealthSnapshot {
  std::size_t guarded_runs = 0;
  std::size_t clean_runs = 0;
  std::size_t retries = 0;
  std::size_t rebuild_fallbacks = 0;
  std::size_t naive_fallbacks = 0;
  std::size_t failures = 0;
  std::size_t checksum_rejections = 0;
  std::size_t worker_panics = 0;
  std::size_t alloc_failures = 0;
  std::size_t batched_items = 0;
  std::size_t batched_item_failures = 0;
  // Call-overhead fast path (DESIGN.md §8): how many fork-join regions
  // the persistent pool served vs fell back to spawn-per-call, and how
  // the process-wide plan caches are hitting.
  std::size_t pool_regions = 0;
  std::size_t pool_spawn_fallbacks = 0;
  std::size_t plan_cache_hits = 0;
  std::size_t plan_cache_misses = 0;
  // Runtime hardening (DESIGN.md §10): watchdog detections, pool
  // lifecycle events, and the memory-pressure degradations. Each counter
  // is the observable face of one failure class — survivable faults must
  // still show up here.
  std::size_t pool_watchdog_timeouts = 0;
  std::size_t pool_quarantines = 0;
  std::size_t pool_rebuilds = 0;
  std::size_t pool_spawn_failures = 0;
  std::size_t arena_fallbacks = 0;
  std::size_t plan_cache_insert_failures = 0;
  std::size_t prepack_fallbacks = 0;

  [[nodiscard]] std::string to_string() const;
};

/// The counters themselves. All increments are relaxed.
class Health {
 public:
  static Health& instance();

  std::atomic<std::size_t> guarded_runs{0};
  std::atomic<std::size_t> clean_runs{0};
  std::atomic<std::size_t> retries{0};
  std::atomic<std::size_t> rebuild_fallbacks{0};
  std::atomic<std::size_t> naive_fallbacks{0};
  std::atomic<std::size_t> failures{0};
  std::atomic<std::size_t> checksum_rejections{0};
  std::atomic<std::size_t> worker_panics{0};
  std::atomic<std::size_t> alloc_failures{0};
  std::atomic<std::size_t> batched_items{0};
  std::atomic<std::size_t> batched_item_failures{0};
  std::atomic<std::size_t> pool_regions{0};
  std::atomic<std::size_t> pool_spawn_fallbacks{0};
  std::atomic<std::size_t> plan_cache_hits{0};
  std::atomic<std::size_t> plan_cache_misses{0};
  std::atomic<std::size_t> pool_watchdog_timeouts{0};
  std::atomic<std::size_t> pool_quarantines{0};
  std::atomic<std::size_t> pool_rebuilds{0};
  std::atomic<std::size_t> pool_spawn_failures{0};
  std::atomic<std::size_t> arena_fallbacks{0};
  std::atomic<std::size_t> plan_cache_insert_failures{0};
  std::atomic<std::size_t> prepack_fallbacks{0};

  [[nodiscard]] HealthSnapshot snapshot() const;
  void reset();

 private:
  Health() = default;
};

/// Shorthand accessor.
inline Health& health() { return Health::instance(); }

}  // namespace smm::robust
