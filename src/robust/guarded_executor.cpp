#include "src/robust/guarded_executor.h"

#include <algorithm>
#include <new>
#include <vector>

#include "src/common/str.h"
#include "src/core/smm.h"
#include "src/libs/naive.h"
#include "src/plan/native_executor.h"
#include "src/robust/abft.h"
#include "src/robust/health.h"

namespace smm::robust {

const char* to_string(Outcome outcome) {
  switch (outcome) {
    case Outcome::kOk:
      return "ok";
    case Outcome::kRecovered:
      return "recovered";
    case Outcome::kDegraded:
      return "degraded";
    case Outcome::kFailed:
      return "failed";
  }
  return "?";
}

std::string RunReport::summary() const {
  return strprintf(
      "outcome=%s attempts=%d retries=%d fallback=%s first_error=%s "
      "residual=%.3e",
      to_string(outcome), attempts, retries, fallback,
      smm::to_string(first_error), checksum_residual);
}

GuardedExecutor::GuardedExecutor(GuardOptions options)
    : GuardedExecutor(core::reference_smm(), options) {}

GuardedExecutor::GuardedExecutor(const libs::GemmStrategy& strategy,
                                 GuardOptions options,
                                 std::size_t cache_capacity)
    : strategy_(strategy),
      options_(options),
      cache_(strategy, cache_capacity) {}

template <typename T>
RunReport GuardedExecutor::run(T alpha, ConstMatrixView<T> a,
                               ConstMatrixView<T> b, T beta, MatrixView<T> c,
                               int nthreads) {
  SMM_EXPECT_CODE(nthreads >= 1, ErrorCode::kPrecondition,
                  "guarded run needs at least one thread");
  SMM_EXPECT_CODE(a.rows() == c.rows() && b.cols() == c.cols() &&
                      a.cols() == b.rows(),
                  ErrorCode::kBadShape, "guarded run: dimension mismatch");
  SMM_EXPECT_CODE(a.empty() || a.data() != nullptr, ErrorCode::kBadShape,
                  "guarded run: A has null data");
  SMM_EXPECT_CODE(b.empty() || b.data() != nullptr, ErrorCode::kBadShape,
                  "guarded run: B has null data");
  SMM_EXPECT_CODE(c.empty() || c.data() != nullptr, ErrorCode::kBadShape,
                  "guarded run: C has null data");
  SMM_EXPECT_CODE(!views_overlap(ConstMatrixView<T>(c), a) &&
                      !views_overlap(ConstMatrixView<T>(c), b),
                  ErrorCode::kAlias, "guarded run: C aliases an input");

  Health& h = health();
  h.guarded_runs.fetch_add(1, std::memory_order_relaxed);

  RunReport report;
  if (c.empty()) {  // nothing to compute (and nothing to verify)
    report.outcome = Outcome::kOk;
    h.clean_runs.fetch_add(1, std::memory_order_relaxed);
    return report;
  }

  const index_t m = c.rows(), n = c.cols();
  const GemmShape shape{m, n, a.cols()};
  const auto scalar =
      sizeof(T) == 4 ? plan::ScalarType::kF32 : plan::ScalarType::kF64;
  const int threads = std::min(nthreads, strategy_.traits().max_threads);

  // Snapshot C (col-major, plain vector so the snapshot itself sits
  // outside every injection point): retries restore it because beta reads
  // the pre-update C, and a failed request must leave C untouched.
  std::vector<T> c0(static_cast<std::size_t>(m * n));
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i)
      c0[static_cast<std::size_t>(i + j * m)] = c(i, j);
  const auto restore_c = [&] {
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < m; ++i)
        c(i, j) = c0[static_cast<std::size_t>(i + j * m)];
  };

  const auto record_error = [&](ErrorCode code, const char* what) {
    report.last_error = code;
    if (report.first_error == ErrorCode::kUnknown) {
      report.first_error = code;
      report.first_error_message = what;
    }
    switch (code) {
      case ErrorCode::kChecksumMismatch:
        h.checksum_rejections.fetch_add(1, std::memory_order_relaxed);
        break;
      case ErrorCode::kWorkerPanic:
        h.worker_panics.fetch_add(1, std::memory_order_relaxed);
        break;
      case ErrorCode::kAlloc:
      case ErrorCode::kArenaExhausted:
        h.alloc_failures.fetch_add(1, std::memory_order_relaxed);
        break;
      case ErrorCode::kPoolTimeout:
      case ErrorCode::kPoolSpawnFail:
        // Counted at the source (pool_watchdog_timeouts /
        // pool_spawn_failures); classify as a worker-side failure here
        // so the guarded-run view stays complete.
        h.worker_panics.fetch_add(1, std::memory_order_relaxed);
        break;
      default:
        break;
    }
  };

  // Run the checksum over the *result*; a failed check is just another
  // retryable fault.
  const auto verify_result = [&]() -> bool {
    if (!options_.verify) return true;
    const ChecksumReport cr = verify_gemm_checksum<T>(
        alpha, a, b, beta, beta != T(0) ? c0.data() : nullptr, m,
        ConstMatrixView<T>(c), options_.tolerance_scale);
    report.checksum_residual = cr.residual;
    if (!cr.ok) {
      record_error(ErrorCode::kChecksumMismatch,
                   "row checksum rejected the result");
      return false;
    }
    return true;
  };

  // One attempt of a planned execution: true iff it ran and verified.
  const auto attempt = [&](const plan::GemmPlan& p) -> bool {
    ++report.attempts;
    try {
      plan::execute_plan(p, alpha, a, b, beta, c);
    } catch (const Error& e) {
      record_error(e.code(), e.what());
      restore_c();
      return false;
    } catch (const std::bad_alloc&) {
      record_error(ErrorCode::kAlloc, "scratch allocation failed");
      restore_c();
      return false;
    } catch (const std::exception& e) {
      record_error(ErrorCode::kUnknown, e.what());
      restore_c();
      return false;
    }
    if (!verify_result()) {
      restore_c();
      return false;
    }
    return true;
  };

  // Lands the run's outcome: the retry count and the outcome counter are
  // one correlated group, so a health scraper never sees the retries of a
  // run whose outcome has not landed yet (or vice versa).
  const auto finish = [&](Outcome base, const char* fallback,
                          std::atomic<std::size_t>* outcome_counter) {
    report.retries = report.attempts > 0 ? report.attempts - 1 : 0;
    Health::Transaction tx;
    if (report.retries > 0)
      h.retries.fetch_add(static_cast<std::size_t>(report.retries),
                          std::memory_order_relaxed);
    if (outcome_counter != nullptr)
      outcome_counter->fetch_add(1, std::memory_order_relaxed);
    report.fallback = fallback;
    report.outcome = base;
  };

  // Stage 1: the cached plan, with transient-fault retries.
  std::shared_ptr<const plan::GemmPlan> cached;
  try {
    cached = cache_.get(shape, scalar, threads);
  } catch (const Error& e) {
    record_error(e.code(), e.what());
  } catch (const std::exception& e) {
    record_error(ErrorCode::kUnknown, e.what());
  }
  if (cached) {
    for (int t = 0; t < 1 + std::max(0, options_.retries); ++t) {
      if (attempt(*cached)) {
        finish(report.attempts == 1 ? Outcome::kOk : Outcome::kRecovered,
               "none",
               report.attempts == 1 ? &h.clean_runs : nullptr);
        return report;
      }
    }
  }

  // Stage 2: rebuild from the strategy — recovers from a corrupted cache
  // entry or a plan-level fault the retry could not clear. Pool-class
  // faults (a hung/timed-out worker, thread creation failing) indict the
  // parallel runtime itself, not the plan: rebuild serial so the fresh
  // attempt needs no workers at all.
  if (options_.allow_rebuild) {
    const bool pool_fault = report.last_error == ErrorCode::kWorkerPanic ||
                            report.last_error == ErrorCode::kPoolTimeout ||
                            report.last_error == ErrorCode::kPoolSpawnFail;
    try {
      const plan::GemmPlan fresh =
          strategy_.make_plan(shape, scalar, pool_fault ? 1 : threads);
      if (attempt(fresh)) {
        finish(Outcome::kDegraded, "rebuilt-plan", &h.rebuild_fallbacks);
        return report;
      }
    } catch (const Error& e) {
      record_error(e.code(), e.what());
    } catch (const std::exception& e) {
      record_error(ErrorCode::kUnknown, e.what());
    }
  }

  // Stage 3: the trusted triple loop. No packing, no scratch, no worker
  // threads — immune to every injection point by construction.
  if (options_.allow_naive) {
    ++report.attempts;
    libs::naive_gemm(alpha, a, b, beta, c);
    if (verify_result()) {
      finish(Outcome::kDegraded, "naive", &h.naive_fallbacks);
      return report;
    }
    restore_c();
  }

  finish(Outcome::kFailed, "none", &h.failures);
  return report;
}

template RunReport GuardedExecutor::run(float, ConstMatrixView<float>,
                                        ConstMatrixView<float>, float,
                                        MatrixView<float>, int);
template RunReport GuardedExecutor::run(double, ConstMatrixView<double>,
                                        ConstMatrixView<double>, double,
                                        MatrixView<double>, int);

}  // namespace smm::robust
