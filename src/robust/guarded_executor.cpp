#include "src/robust/guarded_executor.h"

#include <algorithm>
#include <cstring>
#include <new>
#include <vector>

#include "src/common/str.h"
#include "src/core/smm.h"
#include "src/libs/naive.h"
#include "src/plan/native_executor.h"
#include "src/resilient/retry_class.h"
#include "src/robust/abft.h"
#include "src/robust/health.h"

namespace smm::robust {

const char* to_string(Outcome outcome) {
  switch (outcome) {
    case Outcome::kOk:
      return "ok";
    case Outcome::kCorrected:
      return "corrected";
    case Outcome::kRecovered:
      return "recovered";
    case Outcome::kDegraded:
      return "degraded";
    case Outcome::kFailed:
      return "failed";
  }
  return "?";
}

std::string RunReport::summary() const {
  return strprintf(
      "outcome=%s attempts=%d retries=%d fallback=%s repair=%s "
      "first_error=%s residual=%.3e",
      to_string(outcome), attempts, retries, fallback, repair,
      smm::to_string(first_error), checksum_residual);
}

GuardedExecutor::GuardedExecutor(GuardOptions options)
    : GuardedExecutor(core::reference_smm(), options) {}

GuardedExecutor::GuardedExecutor(const libs::GemmStrategy& strategy,
                                 GuardOptions options,
                                 std::size_t cache_capacity)
    : strategy_(strategy),
      options_(options),
      cache_(strategy, cache_capacity) {}

template <typename T>
RunReport GuardedExecutor::run(T alpha, ConstMatrixView<T> a,
                               ConstMatrixView<T> b, T beta, MatrixView<T> c,
                               int nthreads) {
  SMM_EXPECT_CODE(nthreads >= 1, ErrorCode::kPrecondition,
                  "guarded run needs at least one thread");
  SMM_EXPECT_CODE(a.rows() == c.rows() && b.cols() == c.cols() &&
                      a.cols() == b.rows(),
                  ErrorCode::kBadShape, "guarded run: dimension mismatch");
  SMM_EXPECT_CODE(a.empty() || a.data() != nullptr, ErrorCode::kBadShape,
                  "guarded run: A has null data");
  SMM_EXPECT_CODE(b.empty() || b.data() != nullptr, ErrorCode::kBadShape,
                  "guarded run: B has null data");
  SMM_EXPECT_CODE(c.empty() || c.data() != nullptr, ErrorCode::kBadShape,
                  "guarded run: C has null data");
  SMM_EXPECT_CODE(!views_overlap(ConstMatrixView<T>(c), a) &&
                      !views_overlap(ConstMatrixView<T>(c), b),
                  ErrorCode::kAlias, "guarded run: C aliases an input");

  Health& h = health();
  h.guarded_runs.fetch_add(1, std::memory_order_relaxed);

  RunReport report;
  if (c.empty()) {  // nothing to compute (and nothing to verify)
    report.outcome = Outcome::kOk;
    h.clean_runs.fetch_add(1, std::memory_order_relaxed);
    return report;
  }

  const index_t m = c.rows(), n = c.cols();
  const GemmShape shape{m, n, a.cols()};
  const auto scalar =
      sizeof(T) == 4 ? plan::ScalarType::kF32 : plan::ScalarType::kF64;
  const int threads = std::min(nthreads, strategy_.traits().max_threads);

  // Snapshot C (col-major, plain vector so the snapshot itself sits
  // outside every injection point): retries restore it because beta reads
  // the pre-update C, and a failed request must leave C untouched.
  std::vector<T> c0(static_cast<std::size_t>(m * n));
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i)
      c0[static_cast<std::size_t>(i + j * m)] = c(i, j);
  const auto restore_c = [&] {
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < m; ++i)
        c(i, j) = c0[static_cast<std::size_t>(i + j * m)];
  };

  const auto record_error = [&](ErrorCode code, const char* what) {
    report.last_error = code;
    if (report.first_error == ErrorCode::kUnknown) {
      report.first_error = code;
      report.first_error_message = what;
    }
    switch (code) {
      case ErrorCode::kChecksumMismatch:
      case ErrorCode::kDataCorrupted:  // correct-mode unrepairable damage
        h.checksum_rejections.fetch_add(1, std::memory_order_relaxed);
        break;
      case ErrorCode::kWorkerPanic:
        h.worker_panics.fetch_add(1, std::memory_order_relaxed);
        break;
      case ErrorCode::kAlloc:
      case ErrorCode::kArenaExhausted:
        h.alloc_failures.fetch_add(1, std::memory_order_relaxed);
        break;
      case ErrorCode::kPoolTimeout:
      case ErrorCode::kPoolSpawnFail:
        // Counted at the source (pool_watchdog_timeouts /
        // pool_spawn_failures); classify as a worker-side failure here
        // so the guarded-run view stays complete.
        h.worker_panics.fetch_add(1, std::memory_order_relaxed);
        break;
      default:
        break;
    }
  };

  // ABFT policy: the option resolves kAuto against the process-wide
  // SMMKIT_ABFT mode; verify=false turns everything off.
  const auto mode = options_.verify ? integrity::resolve(options_.abft)
                                    : integrity::AbftMode::kOff;

  // Pre-update checksum, computed ONCE from the snapshot: every attempt's
  // verification (and any number of retries) reuses it, so beta != 0 runs
  // get the same row+column verification as beta == 0 ones.
  CChecksums c0sums;
  if (mode != integrity::AbftMode::kOff && beta != T(0))
    c0sums = checksum_c<T>(c0.data(), m, m, n);

  // Verify (and in kCorrect mode repair) the *result*; an unrepairable
  // check failure is just another retryable fault. A detection the repair
  // could not clear is resolved by the chain's re-execution — count that
  // as the recompute so detected == corrected + recomputed holds.
  const auto verify_result = [&]() -> bool {
    if (mode == integrity::AbftMode::kOff) return true;
    const IntegrityReport ir = verify_and_repair<T>(
        alpha, a, b, beta, beta != T(0) ? &c0sums : nullptr,
        beta != T(0) ? c0.data() : nullptr, m, c, mode,
        options_.tolerance_scale);
    report.checksum_residual = ir.residual;
    if (ir.ok) {
      if (ir.repair != Repair::kNone) report.repair = to_string(ir.repair);
      return true;
    }
    h.integrity_recomputed.fetch_add(1, std::memory_order_relaxed);
    if (mode == integrity::AbftMode::kCorrect)
      record_error(ErrorCode::kDataCorrupted,
                   "checksums rejected the result and the localized "
                   "repair could not fix it");
    else
      record_error(ErrorCode::kChecksumMismatch,
                   "row checksum rejected the result");
    return false;
  };

  // One attempt of a planned execution: true iff it ran and verified.
  const auto attempt = [&](const plan::GemmPlan& p) -> bool {
    ++report.attempts;
    try {
      plan::execute_plan(p, alpha, a, b, beta, c);
    } catch (const Error& e) {
      record_error(e.code(), e.what());
      restore_c();
      return false;
    } catch (const std::bad_alloc&) {
      record_error(ErrorCode::kAlloc, "scratch allocation failed");
      restore_c();
      return false;
    } catch (const std::exception& e) {
      record_error(ErrorCode::kUnknown, e.what());
      restore_c();
      return false;
    }
    if (!verify_result()) {
      restore_c();
      return false;
    }
    return true;
  };

  // Lands the run's outcome: the retry count and the outcome counter are
  // one correlated group, so a health scraper never sees the retries of a
  // run whose outcome has not landed yet (or vice versa).
  const auto finish = [&](Outcome base, const char* fallback,
                          std::atomic<std::size_t>* outcome_counter) {
    report.retries = report.attempts > 0 ? report.attempts - 1 : 0;
    Health::Transaction tx;
    if (report.retries > 0)
      h.retries.fetch_add(static_cast<std::size_t>(report.retries),
                          std::memory_order_relaxed);
    if (outcome_counter != nullptr)
      outcome_counter->fetch_add(1, std::memory_order_relaxed);
    report.fallback = fallback;
    report.outcome = base;
  };

  // Stage 1: the cached plan, with transient-fault retries.
  std::shared_ptr<const plan::GemmPlan> cached;
  try {
    cached = cache_.get(shape, scalar, threads);
  } catch (const Error& e) {
    record_error(e.code(), e.what());
  } catch (const std::exception& e) {
    record_error(ErrorCode::kUnknown, e.what());
  }
  if (cached) {
    for (int t = 0; t < 1 + std::max(0, options_.retries); ++t) {
      if (attempt(*cached)) {
        const bool repaired = std::strcmp(report.repair, "none") != 0;
        if (report.attempts == 1)
          finish(repaired ? Outcome::kCorrected : Outcome::kOk, "none",
                 repaired ? &h.corrected_runs : &h.clean_runs);
        else
          finish(Outcome::kRecovered, "none", nullptr);
        return report;
      }
      // Shared classification (src/resilient/retry_class.h): a fatal
      // failure is deterministic — re-running the identical plan would
      // fail identically, so spend the remaining retries on the rebuild
      // and naive stages instead of burning them here.
      if (resilient::classify(report.last_error) ==
          resilient::RetryClass::kFatal)
        break;
    }
  }

  // Stage 2: rebuild from the strategy — recovers from a corrupted cache
  // entry or a plan-level fault the retry could not clear. Pool-class
  // faults (a hung/timed-out worker, thread creation failing) indict the
  // parallel runtime itself, not the plan: rebuild serial so the fresh
  // attempt needs no workers at all.
  if (options_.allow_rebuild) {
    const bool pool_fault = report.last_error == ErrorCode::kWorkerPanic ||
                            report.last_error == ErrorCode::kPoolTimeout ||
                            report.last_error == ErrorCode::kPoolSpawnFail;
    try {
      const plan::GemmPlan fresh =
          strategy_.make_plan(shape, scalar, pool_fault ? 1 : threads);
      if (attempt(fresh)) {
        finish(Outcome::kDegraded, "rebuilt-plan", &h.rebuild_fallbacks);
        return report;
      }
    } catch (const Error& e) {
      record_error(e.code(), e.what());
    } catch (const std::exception& e) {
      record_error(ErrorCode::kUnknown, e.what());
    }
  }

  // Stage 3: the trusted triple loop. No packing, no scratch, no worker
  // threads — immune to every injection point by construction.
  if (options_.allow_naive) {
    ++report.attempts;
    libs::naive_gemm(alpha, a, b, beta, c);
    if (verify_result()) {
      finish(Outcome::kDegraded, "naive", &h.naive_fallbacks);
      return report;
    }
    restore_c();
  }

  finish(Outcome::kFailed, "none", &h.failures);
  return report;
}

template RunReport GuardedExecutor::run(float, ConstMatrixView<float>,
                                        ConstMatrixView<float>, float,
                                        MatrixView<float>, int);
template RunReport GuardedExecutor::run(double, ConstMatrixView<double>,
                                        ConstMatrixView<double>, double,
                                        MatrixView<double>, int);

}  // namespace smm::robust
