#include "src/robust/integrity.h"

#include <atomic>
#include <cstring>
#include <string>

#include "src/common/env.h"
#include "src/plan/plan.h"

namespace smm::integrity {

const char* to_string(AbftMode mode) {
  switch (mode) {
    case AbftMode::kAuto:
      return "auto";
    case AbftMode::kOff:
      return "off";
    case AbftMode::kDetect:
      return "detect";
    case AbftMode::kCorrect:
      return "correct";
  }
  return "?";
}

AbftMode mode_from_env() {
  const std::string v = env::read_string("SMMKIT_ABFT", "detect");
  if (v == "off") return AbftMode::kOff;
  if (v == "detect") return AbftMode::kDetect;
  if (v == "correct") return AbftMode::kCorrect;
  return AbftMode::kDetect;  // unparsable: keep the safe default
}

namespace {
// kAuto (0) doubles as "no override".
std::atomic<std::uint8_t> g_override{
    static_cast<std::uint8_t>(AbftMode::kAuto)};
std::atomic<int> g_repair_suppression_holds{0};
}  // namespace

AbftMode mode() {
  const auto cap = [](AbftMode m) {
    // Brownout (DESIGN.md §15): correct-mode's repair work is optional
    // load a degraded runtime sheds; detection is not.
    return m == AbftMode::kCorrect &&
                   g_repair_suppression_holds.load(
                       std::memory_order_relaxed) > 0
               ? AbftMode::kDetect
               : m;
  };
  const auto ov =
      static_cast<AbftMode>(g_override.load(std::memory_order_relaxed));
  if (ov != AbftMode::kAuto) return cap(ov);
  // The env knob is read once: getenv on every plan-cache hit would put a
  // linear environ scan on the warm path.
  static const AbftMode env = mode_from_env();
  return cap(env);
}

void set_mode_override(AbftMode mode) {
  g_override.store(static_cast<std::uint8_t>(mode),
                   std::memory_order_relaxed);
}

void hold_repair_suppression() {
  g_repair_suppression_holds.fetch_add(1, std::memory_order_relaxed);
}

void release_repair_suppression() {
  // Clamped at zero, like tune's sampling holds: a stray extra release
  // must not bank a negative count against the next brownout.
  int held = g_repair_suppression_holds.load(std::memory_order_relaxed);
  while (held > 0 && !g_repair_suppression_holds.compare_exchange_weak(
                         held, held - 1, std::memory_order_relaxed)) {
  }
}

bool repair_suppressed() {
  return g_repair_suppression_holds.load(std::memory_order_relaxed) > 0;
}

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

struct Hasher {
  std::uint64_t h = kFnvOffset;
  void mix(std::uint64_t v) {
    h ^= v;
    h *= kFnvPrime;
  }
  void mix_i(index_t v) { mix(static_cast<std::uint64_t>(v)); }
};

}  // namespace

std::uint64_t content_checksum(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  Hasher hash;
  std::size_t i = 0;
  for (; i + sizeof(std::uint64_t) <= bytes; i += sizeof(std::uint64_t)) {
    std::uint64_t word;
    std::memcpy(&word, p + i, sizeof(word));
    hash.mix(word);
  }
  std::uint64_t tail = 0;
  if (i < bytes) {
    std::memcpy(&tail, p + i, bytes - i);
    hash.mix(tail);
  }
  hash.mix(static_cast<std::uint64_t>(bytes));  // length-extension guard
  return hash.h;
}

std::uint64_t plan_seal(const plan::GemmPlan& plan) {
  using namespace smm::plan;
  Hasher hash;
  hash.mix(content_checksum(plan.strategy.data(), plan.strategy.size()));
  hash.mix_i(plan.shape.m);
  hash.mix_i(plan.shape.n);
  hash.mix_i(plan.shape.k);
  hash.mix(static_cast<std::uint64_t>(plan.scalar));
  hash.mix(static_cast<std::uint64_t>(plan.nthreads));
  hash.mix(plan.conversion_outside_timing ? 1u : 0u);
  hash.mix_i(plan.blocking.mc);
  hash.mix_i(plan.blocking.kc);
  hash.mix_i(plan.blocking.nc);
  hash.mix_i(plan.blocking.mr);
  hash.mix_i(plan.blocking.nr);
  for (const auto& buf : plan.buffers) hash.mix_i(buf.elems);
  for (const auto& bar : plan.barriers)
    hash.mix(static_cast<std::uint64_t>(bar.participants));

  const auto mix_ref = [&hash](const OperandRef& ref) {
    hash.mix(static_cast<std::uint64_t>(ref.kind));
    hash.mix(static_cast<std::uint64_t>(ref.buffer));
    hash.mix_i(ref.offset);
    hash.mix_i(ref.ps);
    hash.mix_i(ref.pstride);
    hash.mix_i(ref.kstride);
    hash.mix_i(ref.row0);
    hash.mix_i(ref.col0);
  };
  const auto mix_chunks = [&hash](const std::vector<index_t>& chunks) {
    hash.mix(chunks.size());
    for (const index_t c : chunks) hash.mix_i(c);
  };

  struct OpSealer {
    Hasher& hash;
    decltype(mix_ref)& ref;
    decltype(mix_chunks)& chunks;
    void operator()(const PackAOp& op) const {
      hash.mix(1);
      hash.mix(static_cast<std::uint64_t>(op.buffer));
      hash.mix_i(op.dst_offset);
      hash.mix_i(op.i0);
      hash.mix_i(op.k0);
      hash.mix_i(op.mc);
      hash.mix_i(op.kc);
      hash.mix_i(op.mr);
      hash.mix(op.pad ? 1u : 0u);
      chunks(op.chunks);
    }
    void operator()(const PackBOp& op) const {
      hash.mix(2);
      hash.mix(static_cast<std::uint64_t>(op.buffer));
      hash.mix_i(op.dst_offset);
      hash.mix_i(op.k0);
      hash.mix_i(op.j0);
      hash.mix_i(op.kc);
      hash.mix_i(op.nc);
      hash.mix_i(op.nr);
      hash.mix(op.pad ? 1u : 0u);
      chunks(op.chunks);
    }
    void operator()(const ConvertOp& op) const {
      hash.mix(3);
      hash.mix(static_cast<std::uint64_t>(op.which));
      hash.mix(static_cast<std::uint64_t>(op.buffer));
      hash.mix_i(op.ps);
      hash.mix(op.transpose ? 1u : 0u);
    }
    void operator()(const KernelOp& op) const {
      hash.mix(4);
      hash.mix(static_cast<std::uint64_t>(op.kernel));
      hash.mix_i(op.kc);
      hash.mix_i(op.i0);
      hash.mix_i(op.j0);
      hash.mix_i(op.useful_m);
      hash.mix_i(op.useful_n);
      ref(op.a);
      ref(op.b);
      hash.mix(op.first_k_block ? 1u : 0u);
      hash.mix(static_cast<std::uint64_t>(op.c_buffer));
      hash.mix_i(op.c_offset);
      hash.mix_i(op.c_ld);
    }
    void operator()(const BarrierOp& op) const {
      hash.mix(5);
      hash.mix(static_cast<std::uint64_t>(op.barrier));
    }
    void operator()(const ScaleCOp& op) const {
      hash.mix(6);
      hash.mix_i(op.i0);
      hash.mix_i(op.j0);
      hash.mix_i(op.rows);
      hash.mix_i(op.cols);
    }
    void operator()(const ReduceCOp& op) const {
      hash.mix(7);
      hash.mix(static_cast<std::uint64_t>(op.buffer));
      hash.mix_i(op.i0);
      hash.mix_i(op.j0);
      hash.mix_i(op.rows);
      hash.mix_i(op.cols);
      hash.mix_i(op.ld);
      hash.mix_i(op.offset);
      hash.mix_i(op.part_stride);
      hash.mix(static_cast<std::uint64_t>(op.parts));
    }
  };

  const OpSealer sealer{hash, mix_ref, mix_chunks};
  for (const auto& ops : plan.thread_ops) {
    hash.mix(ops.size());
    for (const auto& op : ops) std::visit(sealer, op);
  }
  return hash.h;
}

bool corrupt_plan_for_test(plan::GemmPlan& plan) {
  for (auto& ops : plan.thread_ops) {
    for (auto& op : ops) {
      if (auto* k = std::get_if<plan::KernelOp>(&op)) {
        k->first_k_block = !k->first_k_block;
        return true;
      }
    }
  }
  return false;
}

}  // namespace smm::integrity
