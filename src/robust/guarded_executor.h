// Guarded GEMM execution: validated inputs, optional ABFT row-checksum
// verification of every result, and a retry-then-degrade chain —
//
//   cached plan  ->  freshly rebuilt plan  ->  libs::naive
//
// A silent wrong answer is worse than a slow one (the paper's ABFT
// motivation); the guarded path never returns an unverified faulty C.
// Failed attempts restore C from a snapshot before retrying, so beta
// semantics survive any number of faults, and a fully failed request
// leaves C exactly as the caller passed it.
#pragma once

#include <memory>
#include <string>

#include "src/common/error.h"
#include "src/core/plan_cache.h"
#include "src/libs/gemm_interface.h"
#include "src/matrix/view.h"
#include "src/robust/integrity.h"

namespace smm::robust {

/// How a guarded request was ultimately served.
enum class Outcome {
  kOk,         ///< first attempt, verified clean
  kCorrected,  ///< first attempt, corruption repaired in place (ABFT)
  kRecovered,  ///< a retry of the planned path succeeded
  kDegraded,   ///< served by the rebuilt-plan or naive fallback
  kFailed,     ///< every stage failed; C restored to its input state
};

const char* to_string(Outcome outcome);

struct GuardOptions {
  /// ABFT row-checksum verification of every attempt's result. This is
  /// what turns non-throwing faults (bit flips, kernel miscompute) into
  /// retryable errors; without it only thrown faults are caught.
  bool verify = true;
  /// Extra attempts of the cached plan before degrading (transient-fault
  /// absorption: a soft error rarely strikes twice).
  int retries = 1;
  /// Stage 2: rebuild the plan from the strategy, bypassing the cache.
  bool allow_rebuild = true;
  /// Stage 3: the slower-but-trusted triple loop.
  bool allow_naive = true;
  /// Multiplier on the k-dependent rounding bound for the checksum.
  double tolerance_scale = 64.0;
  /// ABFT policy for `verify` (kAuto: the process-wide SMMKIT_ABFT mode).
  /// kDetect rejects and retries; kCorrect first localizes and repairs in
  /// place (element, then panel) and only retries unlocalizable damage.
  integrity::AbftMode abft = integrity::AbftMode::kAuto;
};

/// Structured account of one guarded run.
struct RunReport {
  Outcome outcome = Outcome::kFailed;
  int attempts = 0;  ///< executions tried (including the one that served)
  int retries = 0;   ///< attempts - 1 for a served request
  /// First fault observed (what went wrong), and the last one (why the
  /// final pre-fallback stage gave up). kUnknown when nothing failed.
  ErrorCode first_error = ErrorCode::kUnknown;
  ErrorCode last_error = ErrorCode::kUnknown;
  std::string first_error_message;
  /// Residual of the checksum that accepted the served result (0 when
  /// verification is off).
  double checksum_residual = 0.0;
  /// "none", "rebuilt-plan", or "naive".
  const char* fallback = "none";
  /// In-place repair that salvaged the served attempt: "none", "element",
  /// or "panel" (kCorrect mode only).
  const char* repair = "none";

  [[nodiscard]] bool ok() const { return outcome != Outcome::kFailed; }
  [[nodiscard]] std::string summary() const;
};

/// Wraps one strategy (default: the reference SMM) with a PlanCache and
/// the guarded execution chain. Thread-safe: concurrent run() calls share
/// the cache and the process-wide health counters.
class GuardedExecutor {
 public:
  explicit GuardedExecutor(GuardOptions options = {});
  GuardedExecutor(const libs::GemmStrategy& strategy, GuardOptions options,
                  std::size_t cache_capacity = 256);

  /// C = alpha*A*B + beta*C through the guarded chain. Throws smm::Error
  /// only for caller bugs (shape/alias/null preconditions); execution
  /// faults are absorbed into the report.
  template <typename T>
  RunReport run(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, T beta,
                MatrixView<T> c, int nthreads = 1);

  [[nodiscard]] core::PlanCache& cache() { return cache_; }
  [[nodiscard]] const GuardOptions& options() const { return options_; }

 private:
  const libs::GemmStrategy& strategy_;
  GuardOptions options_;
  core::PlanCache cache_;
};

}  // namespace smm::robust
