#include "src/robust/fault_injection.h"

#include <cstring>
#include <mutex>

namespace smm::robust {

namespace detail {
std::atomic<int> g_armed_sites{0};
}  // namespace detail

namespace {
// splitmix64: cheap stateless mixing for picking elements/bits from the
// armed seed plus the per-site fire ordinal.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

const char* to_string(FaultSite site) {
  switch (site) {
    case FaultSite::kPackBitFlip:
      return "pack-bit-flip";
    case FaultSite::kWorkerThrow:
      return "worker-throw";
    case FaultSite::kAllocFail:
      return "alloc-fail";
    case FaultSite::kKernelMiscompute:
      return "kernel-miscompute";
    case FaultSite::kWorkerHang:
      return "worker-hang";
    case FaultSite::kPoolSpawnFail:
      return "pool-spawn-fail";
    case FaultSite::kArenaExhausted:
      return "arena-exhausted";
    case FaultSite::kCacheInsertFail:
      return "cache-insert-fail";
    case FaultSite::kPrepackAlloc:
      return "prepack-alloc";
    case FaultSite::kBarrierTrip:
      return "barrier-trip";
    case FaultSite::kNonFiniteInput:
      return "non-finite-input";
    case FaultSite::kPrepackedStoreFlip:
      return "prepacked-store-flip";
    case FaultSite::kPlanCacheFlip:
      return "plan-cache-flip";
    case FaultSite::kScratchSlabFlip:
      return "scratch-slab-flip";
  }
  return "?";
}

HangController& HangController::instance() {
  static HangController* controller = new HangController();  // leaked
  return *controller;
}

void HangController::block_here() {
  std::unique_lock<std::mutex> lock(mu_);
  ++waiting_;
  cv_.wait(lock, [&] { return canceled_; });
  --waiting_;
}

void HangController::cancel_all() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    canceled_ = true;
  }
  cv_.notify_all();
}

void HangController::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  canceled_ = false;
}

int HangController::waiting() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiting_;
}

struct FaultInjector::SiteState {
  mutable std::mutex mu;
  bool armed = false;
  FaultSpec spec;
  std::uint64_t hits = 0;
  std::uint64_t fires = 0;
};

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

FaultInjector::SiteState& FaultInjector::state(FaultSite site) const {
  static SiteState states[kFaultSiteCount];
  return states[static_cast<int>(site)];
}

void FaultInjector::arm(FaultSite site, FaultSpec spec) {
  SiteState& s = state(site);
  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.armed) detail::g_armed_sites.fetch_add(1);
  s.armed = true;
  s.spec = spec;
  s.hits = 0;
  s.fires = 0;
}

void FaultInjector::disarm(FaultSite site) {
  SiteState& s = state(site);
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.armed) detail::g_armed_sites.fetch_sub(1);
  s.armed = false;
}

void FaultInjector::disarm_all() {
  for (int i = 0; i < kFaultSiteCount; ++i)
    disarm(static_cast<FaultSite>(i));
}

std::uint64_t FaultInjector::hit_count(FaultSite site) const {
  SiteState& s = state(site);
  std::lock_guard<std::mutex> lock(s.mu);
  return s.hits;
}

std::uint64_t FaultInjector::fired_count(FaultSite site) const {
  SiteState& s = state(site);
  std::lock_guard<std::mutex> lock(s.mu);
  return s.fires;
}

bool FaultInjector::armed(FaultSite site) const {
  SiteState& s = state(site);
  std::lock_guard<std::mutex> lock(s.mu);
  return s.armed;
}

std::uint64_t FaultInjector::seed(FaultSite site) const {
  SiteState& s = state(site);
  std::lock_guard<std::mutex> lock(s.mu);
  return s.spec.seed;
}

bool FaultInjector::fire(FaultSite site) {
  SiteState& s = state(site);
  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.armed) return false;
  const std::uint64_t ordinal = s.hits++;
  if (ordinal < s.spec.fire_after) return false;
  if (s.fires >= s.spec.max_fires) return false;
  ++s.fires;
  return true;
}

namespace {

template <typename T, typename Bits>
void corrupt_impl(FaultSite site, T* buf, index_t count) {
  if (count <= 0 || buf == nullptr) return;
  if (!should_fire(site)) return;
  FaultInjector& inj = FaultInjector::instance();
  const std::uint64_t h =
      mix64(inj.seed(site) ^ (inj.fired_count(site) * 0x9e37ULL) ^
            static_cast<std::uint64_t>(static_cast<int>(site)));
  const index_t idx =
      static_cast<index_t>(h % static_cast<std::uint64_t>(count));
  // Flip the top exponent bit: for any IEEE value (zero padding included)
  // the delta is >= 1.0, so the fault is never numerically invisible —
  // a seeded mantissa flip of a tiny element could hide under the GEMM
  // tolerance and make detection flaky.
  const unsigned bit = sizeof(Bits) * 8 - 2;
  Bits raw;
  std::memcpy(&raw, &buf[idx], sizeof(raw));
  raw ^= Bits{1} << bit;
  std::memcpy(&buf[idx], &raw, sizeof(raw));
}

}  // namespace

void maybe_corrupt_f32(FaultSite site, float* buf, index_t count) {
  corrupt_impl<float, std::uint32_t>(site, buf, count);
}

void maybe_corrupt_f64(FaultSite site, double* buf, index_t count) {
  corrupt_impl<double, std::uint64_t>(site, buf, count);
}

}  // namespace smm::robust
