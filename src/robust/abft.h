// Algorithm-Based Fault Tolerance checks, promoted from
// examples/abft_checksum.cpp into a library feature. Row-checksum
// verification of C = alpha*A*B + beta*C0 through the invariant
//
//   W * C  ==  alpha * (W * A) * B + beta * (W * C0)
//
// with W the 2 x m weight matrix [ones; ramp] from the example (ones
// detects, the ramp localizes the column). The check costs two
// skinny GEMVs per operand — O(mn + mk + kn) — negligible next to the
// m*n*k product exactly when small-M GEMM is fast, which is the paper's
// ABFT motivation.
#pragma once

#include "src/common/types.h"
#include "src/matrix/view.h"

namespace smm::robust {

/// Result of one row-checksum verification.
struct ChecksumReport {
  double residual = 0.0;   ///< max |W*C - expected| over both weight rows
  double tolerance = 0.0;  ///< the bound the residual was tested against
  index_t worst_col = -1;  ///< column of the worst residual (localization)
  bool ok = false;

  /// NaN-safe: a NaN residual is a detected fault, not a pass.
  [[nodiscard]] static bool passes(double residual, double tolerance) {
    return residual <= tolerance;  // false for NaN
  }
};

/// Verify c_after == alpha*a*b + beta*c_before by row checksums.
/// `tolerance_scale` multiplies the k-dependent GEMM rounding bound;
/// the default absorbs the extra m-row summation of the checksum.
template <typename T>
ChecksumReport verify_gemm_checksum(T alpha, ConstMatrixView<T> a,
                                    ConstMatrixView<T> b, T beta,
                                    const T* c_before, index_t c_before_ld,
                                    ConstMatrixView<T> c_after,
                                    double tolerance_scale = 64.0);

}  // namespace smm::robust
