// Algorithm-Based Fault Tolerance checks, promoted from
// examples/abft_checksum.cpp into a library feature. Row-checksum
// verification of C = alpha*A*B + beta*C0 through the invariant
//
//   W * C  ==  alpha * (W * A) * B + beta * (W * C0)
//
// with W the 2 x m weight matrix [ones; ramp] from the example (ones
// detects, the ramp localizes the column). The check costs two
// skinny GEMVs per operand — O(mn + mk + kn) — negligible next to the
// m*n*k product exactly when small-M GEMM is fast, which is the paper's
// ABFT motivation.
// Detect-and-correct extension (DESIGN.md §12): the same invariant
// evaluated per column (row checksums: sum_i C(i,j)) *and* per row
// (column checksums: sum_j C(i,j)) localizes damage to exact (row,
// column) coordinates. A single flipped element is repaired in place by
// an O(k) recompute of that element; damage confined to a few rows or
// columns is repaired by an O(panel * k) localized recompute; only
// unlocalizable damage is left to the caller's full-recompute chain.
#pragma once

#include <vector>

#include "src/common/types.h"
#include "src/matrix/view.h"
#include "src/robust/integrity.h"

namespace smm::robust {

/// Result of one row-checksum verification.
struct ChecksumReport {
  double residual = 0.0;   ///< max |W*C - expected| over both weight rows
  double tolerance = 0.0;  ///< the bound the residual was tested against
  index_t worst_col = -1;  ///< column of the worst residual (localization)
  bool ok = false;

  /// NaN-safe: a NaN residual is a detected fault, not a pass.
  [[nodiscard]] static bool passes(double residual, double tolerance) {
    return residual <= tolerance;  // false for NaN
  }
};

/// Verify c_after == alpha*a*b + beta*c_before by row checksums.
/// `tolerance_scale` multiplies the k-dependent GEMM rounding bound;
/// the default absorbs the extra m-row summation of the checksum.
template <typename T>
ChecksumReport verify_gemm_checksum(T alpha, ConstMatrixView<T> a,
                                    ConstMatrixView<T> b, T beta,
                                    const T* c_before, index_t c_before_ld,
                                    ConstMatrixView<T> c_after,
                                    double tolerance_scale = 64.0);

/// Row and column sums of a C snapshot — the beta != 0 contribution to
/// both verification invariants. GuardedExecutor computes this *once*
/// per run, before the first attempt, so every verification (and every
/// retry's verification) reuses the pre-update checksum instead of
/// re-deriving it from the full snapshot — and a guarded beta != 0 call
/// is verified exactly like a beta == 0 one.
struct CChecksums {
  std::vector<double> col_sums;  ///< per column j: sum_i c(i, j)
  std::vector<double> row_sums;  ///< per row i:    sum_j c(i, j)
};

/// Checksums of a col-major m x n buffer with leading dimension ld.
template <typename T>
CChecksums checksum_c(const T* c, index_t ld, index_t m, index_t n);

template <typename T>
CChecksums checksum_c(ConstMatrixView<T> c);

/// How verify_and_repair resolved the damage it found.
enum class Repair : std::uint8_t {
  kNone,     ///< nothing repaired (clean, detect-only, or unlocalizable)
  kElement,  ///< one element recomputed in place (O(k))
  kPanel,    ///< damaged rows/columns recomputed in place (O(panel * k))
};

const char* to_string(Repair repair);

/// Result of one row+column verification (and repair attempt).
struct IntegrityReport {
  bool ok = false;        ///< final contents verified (possibly post-repair)
  bool detected = false;  ///< corruption was found (even if repaired)
  Repair repair = Repair::kNone;
  index_t bad_row = -1;   ///< row of the worst column-checksum residual
  index_t bad_col = -1;   ///< column of the worst row-checksum residual
  int damaged_rows = 0;   ///< rows over tolerance at the last pass
  int damaged_cols = 0;   ///< columns over tolerance at the last pass
  double residual = 0.0;
  double tolerance = 0.0;
};

/// Verify c == alpha*a*b + beta*c0 by row AND column checksums; in
/// kCorrect mode, localize and repair in place:
///   - exactly one damaged (row, column): recompute that element (O(k));
///   - damage confined to few rows/columns: recompute the cheaper panel
///     set in double precision (beta != 0 needs `c_before`);
///   - anything wider (or a failed repair): report !ok — the caller's
///     recompute chain takes over.
/// Every repair is re-verified before being reported ok. kDetect stops
/// at detection; kOff returns ok without looking. Health accounting:
/// integrity_detected on detection; integrity_corrected /
/// integrity_recomputed when the element/panel repair lands (a detection
/// returned !ok is the caller's to resolve — GuardedExecutor counts its
/// re-execution as integrity_recomputed).
/// `c0_sums` (required when beta != 0) is the pre-update checksum;
/// `c_before`/`c_before_ld` (optional) enable beta != 0 panel repair.
template <typename T>
IntegrityReport verify_and_repair(T alpha, ConstMatrixView<T> a,
                                  ConstMatrixView<T> b, T beta,
                                  const CChecksums* c0_sums,
                                  const T* c_before, index_t c_before_ld,
                                  MatrixView<T> c, integrity::AbftMode mode,
                                  double tolerance_scale = 64.0);

}  // namespace smm::robust
