// Deterministic fault injection — the test harness for every error path in
// the execution stack. Injection points are compiled in permanently and
// threaded through the hot layers (pack routines, worker threads, scratch
// allocation, kernel epilogue); when nothing is armed the only cost is one
// relaxed atomic load of a process-wide flag, so production builds carry
// the hooks for free and tests can exercise any failure on demand.
//
// Faults are deterministic: a FaultSpec arms one site with an invocation
// counter (fire on the Nth hit, up to max_fires times) and a seed that
// picks *what* to corrupt (which element, which bit), so a failing seed
// reproduces exactly.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "src/common/types.h"

namespace smm::robust {

/// Where a fault lands. One enumerator per hooked layer.
enum class FaultSite : int {
  kPackBitFlip = 0,    ///< pack::pack_a/pack_b: flip a bit of one packed elem
  kWorkerThrow,        ///< par::run_parallel: throw from a worker body
  kAllocFail,          ///< AlignedBuffer::reset: scratch allocation fails
  kKernelMiscompute,   ///< native executor: corrupt one C element post-kernel
  kWorkerHang,         ///< WorkerPool: park a worker until the hang is canceled
  kPoolSpawnFail,      ///< worker-thread creation fails (pool grow + spawn path)
  kArenaExhausted,     ///< ExecScratch: the slab cannot serve the lease
  kCacheInsertFail,    ///< PlanCache: inserting a freshly built plan fails
  kPrepackAlloc,       ///< PrepackedB: materialization allocation fails
  kBarrierTrip,        ///< Barrier::arrive_and_wait: the arrival faults
  kNonFiniteInput,     ///< input-hygiene screen: reports a NaN/Inf input
  // Silent-data-corruption sites (DESIGN.md §12): bit rot in long-lived
  // or in-flight state, caught by the integrity layer rather than by a
  // thrown exception.
  kPrepackedStoreFlip, ///< PrepackedB: flip a bit in the sealed packed storage
  kPlanCacheFlip,      ///< PlanCache: rot a cached entry (seal diverges from plan)
  kScratchSlabFlip,    ///< executor: flip a bit in a freshly packed scratch panel
};
inline constexpr int kFaultSiteCount = 14;

const char* to_string(FaultSite site);

/// Arms one site. Deterministic: the site fires on invocation number
/// `fire_after` (0 = the very next hit), at most `max_fires` times; `seed`
/// selects the corrupted element/bit for the value-corrupting sites.
struct FaultSpec {
  std::uint64_t fire_after = 0;
  std::uint64_t max_fires = 1;
  std::uint64_t seed = 0x5eed5eedULL;
};

/// Process-wide injector. All methods are thread-safe; the disarmed fast
/// path is a single relaxed atomic load (see should_fire below).
class FaultInjector {
 public:
  static FaultInjector& instance();

  void arm(FaultSite site, FaultSpec spec);
  void disarm(FaultSite site);
  void disarm_all();

  /// Invocations of the site observed while it was armed.
  [[nodiscard]] std::uint64_t hit_count(FaultSite site) const;
  /// Faults actually delivered at the site since it was last armed.
  [[nodiscard]] std::uint64_t fired_count(FaultSite site) const;
  [[nodiscard]] bool armed(FaultSite site) const;

  /// Slow path of should_fire: counts the hit and decides. Never called
  /// when nothing is armed.
  bool fire(FaultSite site);

  /// Seed the site was armed with (valid while armed; used by the
  /// corruption helpers to pick elements/bits deterministically).
  [[nodiscard]] std::uint64_t seed(FaultSite site) const;

 private:
  FaultInjector() = default;
  struct SiteState;
  SiteState& state(FaultSite site) const;
};

namespace detail {
/// True iff any site is armed. Relaxed is fine: arming happens-before the
/// runs that are meant to observe it (tests arm, then call).
extern std::atomic<int> g_armed_sites;
}  // namespace detail

/// Hot-path hook: zero work unless some site is armed somewhere.
inline bool should_fire(FaultSite site) {
  if (detail::g_armed_sites.load(std::memory_order_relaxed) == 0)
    return false;
  return FaultInjector::instance().fire(site);
}

/// Corrupt buf[i] (i chosen from the site's seed; the top exponent bit is
/// flipped so the delta is never numerically invisible) if the site
/// fires. Call from packing/kernel epilogues.
void maybe_corrupt_f32(FaultSite site, float* buf, index_t count);
void maybe_corrupt_f64(FaultSite site, double* buf, index_t count);

template <typename T>
inline void maybe_corrupt(FaultSite site, T* buf, index_t count) {
  if constexpr (sizeof(T) == 4) {
    maybe_corrupt_f32(site, reinterpret_cast<float*>(buf), count);
  } else {
    maybe_corrupt_f64(site, reinterpret_cast<double*>(buf), count);
  }
}

/// Parking lot for kWorkerHang. A "hung" worker is not abandoned memory —
/// it blocks here, off the caller's stack, until something cancels the
/// hang: the pool watchdog (after poisoning the region) or a test/chaos
/// teardown. A canceled hang returns from block_here(), and the injection
/// site then throws like any other worker fault, so the thread unwinds
/// through the normal failure-aggregation path instead of leaking.
class HangController {
 public:
  /// Leaked singleton: a worker may still be parked here at process exit
  /// (a hang nobody canceled); destroying the condvar under it would be UB.
  static HangController& instance();

  /// Block until cancel_all(); returns immediately if already canceled.
  void block_here();
  /// Release every parked thread and make future block_here() calls
  /// return immediately (until reset()).
  void cancel_all();
  /// Re-arm blocking after a cancel (tests between cases).
  void reset();
  /// Threads currently parked.
  [[nodiscard]] int waiting() const;

 private:
  HangController() = default;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool canceled_ = false;
  int waiting_ = 0;
};

/// Shorthands used by the pool watchdog and test teardown.
inline void cancel_injected_hangs() { HangController::instance().cancel_all(); }
inline void reset_injected_hangs() { HangController::instance().reset(); }

/// RAII: disarms everything on destruction (tests use it so one failing
/// case cannot leak an armed fault into the next).
struct ScopedFault {
  ScopedFault(FaultSite site, FaultSpec spec) {
    FaultInjector::instance().arm(site, spec);
  }
  ~ScopedFault() { FaultInjector::instance().disarm_all(); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;
};

}  // namespace smm::robust
