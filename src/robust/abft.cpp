#include "src/robust/abft.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <vector>

#include "src/common/error.h"
#include "src/matrix/compare.h"
#include "src/robust/health.h"

namespace smm::robust {

namespace {

// Checksum weights from the ABFT example: w0 detects (all-ones), w1
// localizes (ramp). Evaluated on the fly — never materialized.
inline double weight(int row, index_t i, index_t m) {
  return row == 0 ? 1.0
                  : static_cast<double>(i + 1) / static_cast<double>(m);
}

}  // namespace

template <typename T>
ChecksumReport verify_gemm_checksum(T alpha, ConstMatrixView<T> a,
                                    ConstMatrixView<T> b, T beta,
                                    const T* c_before, index_t c_before_ld,
                                    ConstMatrixView<T> c_after,
                                    double tolerance_scale) {
  const index_t m = c_after.rows();
  const index_t n = c_after.cols();
  const index_t k = a.cols();
  SMM_EXPECT_CODE(a.rows() == m && b.rows() == k && b.cols() == n,
                  ErrorCode::kBadShape, "checksum: operand shape mismatch");
  SMM_EXPECT_CODE(beta == T(0) || c_before != nullptr,
                  ErrorCode::kPrecondition,
                  "checksum: beta != 0 needs the pre-update C");

  ChecksumReport report;
  double magnitude = 1.0;  // scale of the checksum values themselves
  for (int r = 0; r < 2; ++r) {
    // wa = w_r * A (1 x k), in double.
    std::vector<double> wa(static_cast<std::size_t>(std::max<index_t>(k, 1)),
                           0.0);
    for (index_t i = 0; i < m; ++i) {
      const double w = weight(r, i, m);
      for (index_t kk = 0; kk < k; ++kk)
        wa[static_cast<std::size_t>(kk)] +=
            w * static_cast<double>(a(i, kk));
    }
    for (index_t j = 0; j < n; ++j) {
      double expect = 0.0;
      for (index_t kk = 0; kk < k; ++kk)
        expect += wa[static_cast<std::size_t>(kk)] *
                  static_cast<double>(b(kk, j));
      expect *= static_cast<double>(alpha);
      if (beta != T(0)) {
        double wc0 = 0.0;
        for (index_t i = 0; i < m; ++i)
          wc0 += weight(r, i, m) *
                 static_cast<double>(c_before[i + j * c_before_ld]);
        expect += static_cast<double>(beta) * wc0;
      }
      double actual = 0.0;
      for (index_t i = 0; i < m; ++i)
        actual += weight(r, i, m) * static_cast<double>(c_after(i, j));
      // Only the *expected* value feeds the tolerance: `actual` comes
      // from the result under test, and a corrupted result must not be
      // allowed to widen its own acceptance band.
      magnitude = std::max(magnitude, std::abs(expect));
      const double d = std::abs(actual - expect);
      // NaN-safe max: a NaN difference is the worst possible residual
      // and must stick — plain `!(d <= residual)` would let every later
      // column overwrite it, hiding the fault behind a clean column.
      if (std::isnan(report.residual)) continue;
      if (std::isnan(d) || d > report.residual) {
        report.residual = d;
        report.worst_col = j;
      }
    }
  }
  // The checksum sums m rows of a k-deep GEMM: bound rounding by the
  // combined accumulation depth, scaled to the checksum magnitude.
  report.tolerance =
      gemm_tolerance<T>(k + m) * tolerance_scale * magnitude;
  report.ok = ChecksumReport::passes(report.residual, report.tolerance);
  return report;
}

template ChecksumReport verify_gemm_checksum(float, ConstMatrixView<float>,
                                             ConstMatrixView<float>, float,
                                             const float*, index_t,
                                             ConstMatrixView<float>, double);
template ChecksumReport verify_gemm_checksum(double, ConstMatrixView<double>,
                                             ConstMatrixView<double>, double,
                                             const double*, index_t,
                                             ConstMatrixView<double>,
                                             double);

// ---- Row+column verification with localization and repair (§12) ------------

const char* to_string(Repair repair) {
  switch (repair) {
    case Repair::kNone:
      return "none";
    case Repair::kElement:
      return "element";
    case Repair::kPanel:
      return "panel";
  }
  return "?";
}

template <typename T>
CChecksums checksum_c(const T* c, index_t ld, index_t m, index_t n) {
  CChecksums sums;
  sums.col_sums.assign(static_cast<std::size_t>(n), 0.0);
  sums.row_sums.assign(static_cast<std::size_t>(m), 0.0);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      const double v = static_cast<double>(c[i + j * ld]);
      sums.col_sums[static_cast<std::size_t>(j)] += v;
      sums.row_sums[static_cast<std::size_t>(i)] += v;
    }
  }
  return sums;
}

template CChecksums checksum_c(const float*, index_t, index_t, index_t);
template CChecksums checksum_c(const double*, index_t, index_t, index_t);

template <typename T>
CChecksums checksum_c(ConstMatrixView<T> c) {
  CChecksums sums;
  sums.col_sums.assign(static_cast<std::size_t>(c.cols()), 0.0);
  sums.row_sums.assign(static_cast<std::size_t>(c.rows()), 0.0);
  for (index_t j = 0; j < c.cols(); ++j) {
    for (index_t i = 0; i < c.rows(); ++i) {
      const double v = static_cast<double>(c(i, j));
      sums.col_sums[static_cast<std::size_t>(j)] += v;
      sums.row_sums[static_cast<std::size_t>(i)] += v;
    }
  }
  return sums;
}

template CChecksums checksum_c(ConstMatrixView<float>);
template CChecksums checksum_c(ConstMatrixView<double>);

namespace {

/// One classification pass: actual row/col sums of C against the
/// expected ones, NaN-safe, collecting the over-tolerance sets.
struct Damage {
  std::vector<index_t> cols;  ///< columns whose row-checksum is off
  std::vector<index_t> rows;  ///< rows whose column-checksum is off
  double residual = 0.0;
  index_t bad_row = -1;
  index_t bad_col = -1;
  [[nodiscard]] bool clean() const { return cols.empty() && rows.empty(); }
};

template <typename T>
Damage classify(MatrixView<T> c, const std::vector<double>& exp_col,
                const std::vector<double>& exp_row, double tol) {
  const index_t m = c.rows(), n = c.cols();
  Damage damage;
  std::vector<double> arow(static_cast<std::size_t>(m), 0.0);
  double worst_col = 0.0, worst_row = 0.0;
  for (index_t j = 0; j < n; ++j) {
    double acol = 0.0;
    for (index_t i = 0; i < m; ++i) {
      const double v = static_cast<double>(c(i, j));
      acol += v;
      arow[static_cast<std::size_t>(i)] += v;
    }
    const double d = std::abs(acol - exp_col[static_cast<std::size_t>(j)]);
    if (!ChecksumReport::passes(d, tol)) damage.cols.push_back(j);
    // NaN-safe worst tracking: a NaN residual sticks.
    if (!std::isnan(worst_col) && (std::isnan(d) || d > worst_col)) {
      worst_col = d;
      damage.bad_col = j;
    }
  }
  for (index_t i = 0; i < m; ++i) {
    const double d = std::abs(arow[static_cast<std::size_t>(i)] -
                              exp_row[static_cast<std::size_t>(i)]);
    if (!ChecksumReport::passes(d, tol)) damage.rows.push_back(i);
    if (!std::isnan(worst_row) && (std::isnan(d) || d > worst_row)) {
      worst_row = d;
      damage.bad_row = i;
    }
  }
  damage.residual = std::isnan(worst_col) || std::isnan(worst_row)
                        ? std::numeric_limits<double>::quiet_NaN()
                        : std::max(worst_col, worst_row);
  return damage;
}

/// Recompute one element of C in double precision: the exact repair
/// (unlike subtracting the checksum delta, which carries the checksum's
/// own O(eps * k * m) rounding noise into the repaired value).
template <typename T>
void recompute_element(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b,
                       T beta, const T* c_before, index_t c_before_ld,
                       MatrixView<T> c, index_t i, index_t j) {
  const index_t k = a.cols();
  double acc = 0.0;
  for (index_t kk = 0; kk < k; ++kk)
    acc += static_cast<double>(a(i, kk)) * static_cast<double>(b(kk, j));
  acc *= static_cast<double>(alpha);
  if (beta != T(0))
    acc += static_cast<double>(beta) *
           static_cast<double>(c_before[i + j * c_before_ld]);
  c(i, j) = static_cast<T>(acc);
}

}  // namespace

template <typename T>
IntegrityReport verify_and_repair(T alpha, ConstMatrixView<T> a,
                                  ConstMatrixView<T> b, T beta,
                                  const CChecksums* c0_sums,
                                  const T* c_before, index_t c_before_ld,
                                  MatrixView<T> c, integrity::AbftMode mode,
                                  double tolerance_scale) {
  const index_t m = c.rows();
  const index_t n = c.cols();
  const index_t k = a.cols();
  SMM_EXPECT_CODE(a.rows() == m && b.rows() == k && b.cols() == n,
                  ErrorCode::kBadShape,
                  "verify_and_repair: operand shape mismatch");

  IntegrityReport report;
  const auto effective = integrity::resolve(mode);
  if (effective == integrity::AbftMode::kOff || c.empty()) {
    report.ok = true;
    return report;
  }
  SMM_EXPECT_CODE(beta == T(0) || c0_sums != nullptr,
                  ErrorCode::kPrecondition,
                  "verify_and_repair: beta != 0 needs the pre-update "
                  "checksum (abft::checksum_c of the original C)");

  // Expected checksums, computed once in double. colsum_a folds A's rows
  // (per k), rowsum_b folds B's columns (per k); one extra k-deep pass
  // per direction turns them into the expected C sums. O(mk + kn + mn)
  // total — two skinny GEMVs per direction, negligible next to m*n*k.
  std::vector<double> colsum_a(static_cast<std::size_t>(std::max<index_t>(k, 1)), 0.0);
  std::vector<double> rowsum_b(static_cast<std::size_t>(std::max<index_t>(k, 1)), 0.0);
  for (index_t kk = 0; kk < k; ++kk) {
    double sa = 0.0;
    for (index_t i = 0; i < m; ++i) sa += static_cast<double>(a(i, kk));
    colsum_a[static_cast<std::size_t>(kk)] = sa;
    double sb = 0.0;
    for (index_t j = 0; j < n; ++j) sb += static_cast<double>(b(kk, j));
    rowsum_b[static_cast<std::size_t>(kk)] = sb;
  }
  double magnitude = 1.0;  // only *expected* values feed the tolerance
  std::vector<double> exp_col(static_cast<std::size_t>(n), 0.0);
  for (index_t j = 0; j < n; ++j) {
    double e = 0.0;
    for (index_t kk = 0; kk < k; ++kk)
      e += colsum_a[static_cast<std::size_t>(kk)] *
           static_cast<double>(b(kk, j));
    e *= static_cast<double>(alpha);
    if (beta != T(0))
      e += static_cast<double>(beta) *
           c0_sums->col_sums[static_cast<std::size_t>(j)];
    exp_col[static_cast<std::size_t>(j)] = e;
    magnitude = std::max(magnitude, std::abs(e));
  }
  std::vector<double> exp_row(static_cast<std::size_t>(m), 0.0);
  for (index_t i = 0; i < m; ++i) {
    double e = 0.0;
    for (index_t kk = 0; kk < k; ++kk)
      e += static_cast<double>(a(i, kk)) *
           rowsum_b[static_cast<std::size_t>(kk)];
    e *= static_cast<double>(alpha);
    if (beta != T(0))
      e += static_cast<double>(beta) *
           c0_sums->row_sums[static_cast<std::size_t>(i)];
    exp_row[static_cast<std::size_t>(i)] = e;
    magnitude = std::max(magnitude, std::abs(e));
  }
  // Each checksum folds a k-deep GEMM through an m- (or n-) deep sum:
  // bound rounding by the combined depth, scaled to checksum magnitude.
  const double tol = gemm_tolerance<T>(k + std::max(m, n)) *
                     tolerance_scale * magnitude;
  report.tolerance = tol;

  const auto note = [&report](const Damage& damage) {
    report.residual = damage.residual;
    report.bad_row = damage.bad_row;
    report.bad_col = damage.bad_col;
    report.damaged_rows = static_cast<int>(damage.rows.size());
    report.damaged_cols = static_cast<int>(damage.cols.size());
  };

  Damage damage = classify(c, exp_col, exp_row, tol);
  note(damage);
  if (damage.clean()) {
    report.ok = true;
    return report;
  }

  report.detected = true;
  Health& h = health();
  h.integrity_detected.fetch_add(1, std::memory_order_relaxed);
  if (effective != integrity::AbftMode::kCorrect) return report;

  // Repairs recompute true values, so beta != 0 needs the pre-update C
  // elements themselves (the guarded executor passes its snapshot).
  const bool can_repair = beta == T(0) || c_before != nullptr;
  for (int attempt = 0; can_repair && attempt < 2; ++attempt) {
    if (attempt == 0 && damage.cols.size() == 1 && damage.rows.size() == 1) {
      // Single-element damage: the intersection of the one off column
      // and the one off row is the corrupted cell.
      recompute_element(alpha, a, b, beta, c_before, c_before_ld, c,
                        damage.rows[0], damage.cols[0]);
      report.repair = Repair::kElement;
    } else {
      // Localized panel recompute: redo the cheaper damaged set (each
      // column costs m*k multiplies, each row n*k). Past half the full
      // product the caller's full recompute is the better answer.
      const std::size_t cost_cols = damage.cols.size() * static_cast<std::size_t>(m);
      const std::size_t cost_rows = damage.rows.size() * static_cast<std::size_t>(n);
      const bool by_cols =
          !damage.cols.empty() && (damage.rows.empty() || cost_cols <= cost_rows);
      const std::size_t cost = by_cols ? cost_cols : cost_rows;
      if (2 * cost > static_cast<std::size_t>(m) * static_cast<std::size_t>(n))
        break;
      if (by_cols) {
        for (const index_t j : damage.cols)
          for (index_t i = 0; i < m; ++i)
            recompute_element(alpha, a, b, beta, c_before, c_before_ld, c,
                              i, j);
      } else {
        for (const index_t i : damage.rows)
          for (index_t j = 0; j < n; ++j)
            recompute_element(alpha, a, b, beta, c_before, c_before_ld, c,
                              i, j);
      }
      report.repair = Repair::kPanel;
    }
    // Never report a repair unverified: re-classify the full matrix (one
    // more O(mn) pass — cheap next to any recompute path).
    damage = classify(c, exp_col, exp_row, tol);
    if (damage.clean()) {
      // Keep the detection's localization and residual in the report —
      // they describe what was repaired, not the clean pass's noise.
      report.damaged_rows = 0;
      report.damaged_cols = 0;
      report.ok = true;
      if (report.repair == Repair::kElement)
        h.integrity_corrected.fetch_add(1, std::memory_order_relaxed);
      else
        h.integrity_recomputed.fetch_add(1, std::memory_order_relaxed);
      return report;
    }
    note(damage);  // repair did not land: report the surviving damage
    if (report.repair == Repair::kPanel) break;  // panel already failed
  }
  return report;  // detected, unrepaired: the caller recomputes
}

template IntegrityReport verify_and_repair(float, ConstMatrixView<float>,
                                           ConstMatrixView<float>, float,
                                           const CChecksums*, const float*,
                                           index_t, MatrixView<float>,
                                           integrity::AbftMode, double);
template IntegrityReport verify_and_repair(double, ConstMatrixView<double>,
                                           ConstMatrixView<double>, double,
                                           const CChecksums*, const double*,
                                           index_t, MatrixView<double>,
                                           integrity::AbftMode, double);

}  // namespace smm::robust
