#include "src/robust/abft.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/common/error.h"
#include "src/matrix/compare.h"

namespace smm::robust {

namespace {

// Checksum weights from the ABFT example: w0 detects (all-ones), w1
// localizes (ramp). Evaluated on the fly — never materialized.
inline double weight(int row, index_t i, index_t m) {
  return row == 0 ? 1.0
                  : static_cast<double>(i + 1) / static_cast<double>(m);
}

}  // namespace

template <typename T>
ChecksumReport verify_gemm_checksum(T alpha, ConstMatrixView<T> a,
                                    ConstMatrixView<T> b, T beta,
                                    const T* c_before, index_t c_before_ld,
                                    ConstMatrixView<T> c_after,
                                    double tolerance_scale) {
  const index_t m = c_after.rows();
  const index_t n = c_after.cols();
  const index_t k = a.cols();
  SMM_EXPECT_CODE(a.rows() == m && b.rows() == k && b.cols() == n,
                  ErrorCode::kBadShape, "checksum: operand shape mismatch");
  SMM_EXPECT_CODE(beta == T(0) || c_before != nullptr,
                  ErrorCode::kPrecondition,
                  "checksum: beta != 0 needs the pre-update C");

  ChecksumReport report;
  double magnitude = 1.0;  // scale of the checksum values themselves
  for (int r = 0; r < 2; ++r) {
    // wa = w_r * A (1 x k), in double.
    std::vector<double> wa(static_cast<std::size_t>(std::max<index_t>(k, 1)),
                           0.0);
    for (index_t i = 0; i < m; ++i) {
      const double w = weight(r, i, m);
      for (index_t kk = 0; kk < k; ++kk)
        wa[static_cast<std::size_t>(kk)] +=
            w * static_cast<double>(a(i, kk));
    }
    for (index_t j = 0; j < n; ++j) {
      double expect = 0.0;
      for (index_t kk = 0; kk < k; ++kk)
        expect += wa[static_cast<std::size_t>(kk)] *
                  static_cast<double>(b(kk, j));
      expect *= static_cast<double>(alpha);
      if (beta != T(0)) {
        double wc0 = 0.0;
        for (index_t i = 0; i < m; ++i)
          wc0 += weight(r, i, m) *
                 static_cast<double>(c_before[i + j * c_before_ld]);
        expect += static_cast<double>(beta) * wc0;
      }
      double actual = 0.0;
      for (index_t i = 0; i < m; ++i)
        actual += weight(r, i, m) * static_cast<double>(c_after(i, j));
      // Only the *expected* value feeds the tolerance: `actual` comes
      // from the result under test, and a corrupted result must not be
      // allowed to widen its own acceptance band.
      magnitude = std::max(magnitude, std::abs(expect));
      const double d = std::abs(actual - expect);
      // NaN-safe max: a NaN difference is the worst possible residual
      // and must stick — plain `!(d <= residual)` would let every later
      // column overwrite it, hiding the fault behind a clean column.
      if (std::isnan(report.residual)) continue;
      if (std::isnan(d) || d > report.residual) {
        report.residual = d;
        report.worst_col = j;
      }
    }
  }
  // The checksum sums m rows of a k-deep GEMM: bound rounding by the
  // combined accumulation depth, scaled to the checksum magnitude.
  report.tolerance =
      gemm_tolerance<T>(k + m) * tolerance_scale * magnitude;
  report.ok = ChecksumReport::passes(report.residual, report.tolerance);
  return report;
}

template ChecksumReport verify_gemm_checksum(float, ConstMatrixView<float>,
                                             ConstMatrixView<float>, float,
                                             const float*, index_t,
                                             ConstMatrixView<float>, double);
template ChecksumReport verify_gemm_checksum(double, ConstMatrixView<double>,
                                             ConstMatrixView<double>, double,
                                             const double*, index_t,
                                             ConstMatrixView<double>,
                                             double);

}  // namespace smm::robust
