// smm::integrity — silent-data-corruption defense (DESIGN.md §12).
//
// Two building blocks:
//
//  1. The ABFT *mode*: one process-wide knob (SMMKIT_ABFT: off / detect /
//     correct, default detect) that every integrity consumer resolves its
//     kAuto against — checksum verification in robust::GuardedExecutor,
//     seal validation in core::PlanCache, and storage sealing in
//     plan::PrepackedB.
//
//  2. Content *seals*: a 64-bit checksum of long-lived cached state,
//     computed once at build/pack time and re-derived on reuse. A seal
//     mismatch means the bytes rotted after they were blessed — the
//     entry is quarantined and rebuilt/repacked instead of served.
//     content_checksum() seals raw buffers (PrepackedB storage);
//     plan_seal() seals the structural fields of an immutable GemmPlan
//     (op lists, buffer sizes, blocking), so a flipped offset or beta
//     flag in a cached plan is caught before the executor obeys it.
//
// The verification/correction math itself lives in robust/abft.h; this
// header owns the configuration and the sealing primitives so core/ and
// plan/ can depend on it without pulling in the checksum kernels.
#pragma once

#include <cstddef>
#include <cstdint>

namespace smm::plan {
struct GemmPlan;
}  // namespace smm::plan

namespace smm::integrity {

/// The ABFT/sealing policy. kAuto defers to the process-wide mode
/// (SMMKIT_ABFT env knob); the other three are explicit overrides.
///  - kOff:     no verification, no seal validation.
///  - kDetect:  verify and reject (the guarded chain recomputes).
///  - kCorrect: verify, localize, and repair in place — single-element
///    damage costs O(k), a damaged panel costs O(panel), and only
///    unlocalizable damage falls back to a full recompute.
enum class AbftMode : std::uint8_t { kAuto = 0, kOff, kDetect, kCorrect };

const char* to_string(AbftMode mode);

/// Parse SMMKIT_ABFT ("off" / "detect" / "correct") afresh; unset or
/// unparsable values yield the default, kDetect.
AbftMode mode_from_env();

/// The resolved process-wide mode: the test override if one is set,
/// otherwise the env knob read once per process. Never returns kAuto.
AbftMode mode();

/// Test hook: pin the process-wide mode (kAuto clears the override and
/// returns to the env-derived value). Takes effect immediately.
void set_mode_override(AbftMode mode);

/// Brownout cap (smm::failover, DESIGN.md §15): while any hold is
/// outstanding, mode() serves kDetect where it would serve kCorrect —
/// detection stays armed, but the repair path (localization, in-place
/// fixes, panel recomputes) is shed along with the rest of the optional
/// work a browned-out runtime drops. An *explicit* per-call kCorrect
/// passes resolve() untouched. Counted, not boolean, so independent
/// holders (two browned-out SmmService instances) compose; release is
/// clamped at zero.
void hold_repair_suppression();
void release_repair_suppression();
bool repair_suppressed();

/// resolve(kAuto) == mode(); any explicit value passes through.
inline AbftMode resolve(AbftMode m) {
  return m == AbftMode::kAuto ? mode() : m;
}

/// 64-bit FNV-1a over raw bytes, word-at-a-time. Not cryptographic —
/// the adversary is bit rot, not an attacker — but any single flipped
/// bit changes the value.
std::uint64_t content_checksum(const void* data, std::size_t bytes);

/// Structural checksum of an immutable plan: every field the executor
/// obeys (op kinds, offsets, extents, beta flags, buffer/barrier decls,
/// blocking). Two plans with identical structure seal identically;
/// flipping any executed field changes the seal.
std::uint64_t plan_seal(const plan::GemmPlan& plan);

/// Test hook: make `plan` numerically wrong but memory-safe by toggling
/// the beta flag of one kernel op (the executor then mis-applies beta —
/// a visible, bounded corruption with no out-of-bounds risk). Returns
/// false when the plan has no kernel op to damage. Mutates shared state:
/// only call on plans no other thread is executing.
bool corrupt_plan_for_test(plan::GemmPlan& plan);

}  // namespace smm::integrity
