// Data packing (paper Fig. 2): copying blocks of A and B into contiguous
// panel buffers so micro-kernels stream them with unit stride. For SMM the
// cost of this step is the paper's first impact factor (Section III-A).
//
// Packed A layout (mr-panels): the mc x kc block is cut into row panels of
// height mr; panel p occupies a contiguous region, column-by-column, each
// column exactly `mr` (padded) or `rows_in_panel` (tight) elements.
// Packed B layout (nr-panels): the kc x nc block is cut into column panels
// of width nr; panel q stores row-by-row, nr elements per row.
#pragma once

#include <vector>

#include "src/common/types.h"
#include "src/matrix/view.h"

namespace smm::pack {

/// Elements required for a packed mc x kc A block.
/// With `pad` every panel is mr tall (zero-filled), matching kernels that
/// always compute a full tile (BLIS/BLASFEO strategy); without it the last
/// panel stores only the remaining rows (OpenBLAS edge-kernel strategy).
index_t packed_a_size(index_t mc, index_t kc, index_t mr, bool pad);

/// Elements required for a packed kc x nc B block (same padding rule on
/// the nc dimension).
index_t packed_b_size(index_t kc, index_t nc, index_t nr, bool pad);

/// Element offset of A panel `p` within the packed block.
index_t packed_a_panel_offset(index_t p, index_t mc, index_t kc, index_t mr,
                              bool pad);

/// Element offset of B panel `q` within the packed block.
index_t packed_b_panel_offset(index_t q, index_t kc, index_t nc, index_t nr,
                              bool pad);

/// Rows stored for A panel `p` (mr, or the tail when not padding).
index_t packed_a_panel_rows(index_t p, index_t mc, index_t mr, bool pad);

/// Columns stored for B panel `q`.
index_t packed_b_panel_cols(index_t q, index_t nc, index_t nr, bool pad);

/// Pack an mc x kc block of A into mr-panels at `dst` (layout above).
/// `dst` must hold packed_a_size() elements.
template <typename T>
void pack_a(ConstMatrixView<T> a_block, index_t mr, bool pad, T* dst);

/// Pack a kc x nc block of B into nr-panels at `dst`.
template <typename T>
void pack_b(ConstMatrixView<T> b_block, index_t nr, bool pad, T* dst);

/// Pack A into panels of explicitly given heights (sum == block rows).
/// This is how OpenBLAS lays out edge regions: full mr panels followed by
/// mini-panels matching its edge-kernel sizes (e.g. 75 -> 16,16,16,16,8,2,1)
/// so each edge kernel still reads a contiguous sliver.
template <typename T>
void pack_a_chunked(ConstMatrixView<T> a_block,
                    const std::vector<index_t>& heights, T* dst);

/// Pack B into panels of explicitly given widths (sum == block cols).
template <typename T>
void pack_b_chunked(ConstMatrixView<T> b_block,
                    const std::vector<index_t>& widths, T* dst);

/// Bytes moved by a pack of `rows x cols` elements of T (read + write),
/// used by the plan pricer.
template <typename T>
index_t pack_traffic_bytes(index_t rows, index_t cols) {
  return 2 * rows * cols * static_cast<index_t>(sizeof(T));
}

}  // namespace smm::pack
