#include "src/pack/edge_pack.h"

#include "src/common/error.h"
#include "src/matrix/view.h"
#include "src/pack/pack.h"

namespace smm::pack {

template <typename T>
void pack_b_edge_columns(ConstMatrixView<T> b, index_t edge_cols, index_t nr,
                         T* dst) {
  SMM_EXPECT(edge_cols > 0 && edge_cols <= nr && edge_cols <= b.cols(),
             "pack_b_edge_columns: bad edge width");
  pack_b(b.block(0, b.cols() - edge_cols, b.rows(), edge_cols), nr,
         /*pad=*/true, dst);
}

template <typename T>
void pack_a_edge_rows(ConstMatrixView<T> a, index_t edge_rows, index_t mr,
                      T* dst) {
  SMM_EXPECT(edge_rows > 0 && edge_rows <= mr && edge_rows <= a.rows(),
             "pack_a_edge_rows: bad edge height");
  pack_a(a.block(a.rows() - edge_rows, 0, edge_rows, a.cols()), mr,
         /*pad=*/true, dst);
}

template void pack_b_edge_columns(ConstMatrixView<float>, index_t, index_t,
                                  float*);
template void pack_b_edge_columns(ConstMatrixView<double>, index_t, index_t,
                                  double*);
template void pack_a_edge_rows(ConstMatrixView<float>, index_t, index_t,
                               float*);
template void pack_a_edge_rows(ConstMatrixView<double>, index_t, index_t,
                               double*);

}  // namespace smm::pack
