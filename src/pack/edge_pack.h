// Edge packing (paper Fig. 8): when N % nr leaves a narrow remainder, the
// unpacked edge columns of B are discontiguous (stride ldb apart), which
// blocks full FMA utilization. Packing just the edge columns into one
// zero-padded nr panel restores contiguous vector access at a cost of only
// O(K * edge) moves — the paper's recommended compromise between
// "avoid packing" (III-A) and "vectorize the edge" (III-B).
#pragma once

#include "src/common/types.h"
#include "src/matrix/view.h"

namespace smm::pack {

/// Pack the trailing `edge_cols` columns of B (all K rows) into a single
/// nr-wide zero-padded panel at dst (size K * nr elements).
template <typename T>
void pack_b_edge_columns(ConstMatrixView<T> b, index_t edge_cols, index_t nr,
                         T* dst);

/// Pack the trailing `edge_rows` rows of A (all K columns) into a single
/// mr-tall zero-padded panel at dst (size K * mr elements).
template <typename T>
void pack_a_edge_rows(ConstMatrixView<T> a, index_t edge_rows, index_t mr,
                      T* dst);

}  // namespace smm::pack
