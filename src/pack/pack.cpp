#include "src/pack/pack.h"

#include <algorithm>

#include "src/common/error.h"
#include "src/robust/fault_injection.h"

namespace smm::pack {

namespace {
index_t ceil_div(index_t a, index_t b) { return (a + b - 1) / b; }
}  // namespace

index_t packed_a_size(index_t mc, index_t kc, index_t mr, bool pad) {
  SMM_EXPECT(mc >= 0 && kc >= 0 && mr > 0, "bad pack_a geometry");
  if (pad) return ceil_div(mc, mr) * mr * kc;
  return mc * kc;
}

index_t packed_b_size(index_t kc, index_t nc, index_t nr, bool pad) {
  SMM_EXPECT(kc >= 0 && nc >= 0 && nr > 0, "bad pack_b geometry");
  if (pad) return ceil_div(nc, nr) * nr * kc;
  return kc * nc;
}

index_t packed_a_panel_offset(index_t p, index_t mc, index_t kc, index_t mr,
                              bool pad) {
  // All panels before p are full (mr rows) in both layouts; only the last
  // panel can be short, so the offset formula is shared.
  (void)mc;
  (void)pad;
  return p * mr * kc;
}

index_t packed_b_panel_offset(index_t q, index_t kc, index_t nc, index_t nr,
                              bool pad) {
  (void)nc;
  (void)pad;
  return q * nr * kc;
}

index_t packed_a_panel_rows(index_t p, index_t mc, index_t mr, bool pad) {
  if (pad) return mr;
  const index_t start = p * mr;
  return start + mr <= mc ? mr : mc - start;
}

index_t packed_b_panel_cols(index_t q, index_t nc, index_t nr, bool pad) {
  if (pad) return nr;
  const index_t start = q * nr;
  return start + nr <= nc ? nr : nc - start;
}

template <typename T>
void pack_a(ConstMatrixView<T> a_block, index_t mr, bool pad, T* dst) {
  const index_t mc = a_block.rows();
  const index_t kc = a_block.cols();
  const index_t panels = ceil_div(mc, mr);
  for (index_t p = 0; p < panels; ++p) {
    const index_t i0 = p * mr;
    const index_t rows_here = std::min(mr, mc - i0);
    const index_t stored = pad ? mr : rows_here;
    T* panel = dst + packed_a_panel_offset(p, mc, kc, mr, pad);
    for (index_t k = 0; k < kc; ++k) {
      T* col = panel + k * stored;
      for (index_t i = 0; i < rows_here; ++i) col[i] = a_block(i0 + i, k);
      for (index_t i = rows_here; i < stored; ++i) col[i] = T(0);
    }
  }
  robust::maybe_corrupt(robust::FaultSite::kPackBitFlip, dst,
                        packed_a_size(mc, kc, mr, pad));
}

template <typename T>
void pack_b(ConstMatrixView<T> b_block, index_t nr, bool pad, T* dst) {
  const index_t kc = b_block.rows();
  const index_t nc = b_block.cols();
  const index_t panels = ceil_div(nc, nr);
  for (index_t q = 0; q < panels; ++q) {
    const index_t j0 = q * nr;
    const index_t cols_here = std::min(nr, nc - j0);
    const index_t stored = pad ? nr : cols_here;
    T* panel = dst + packed_b_panel_offset(q, kc, nc, nr, pad);
    for (index_t k = 0; k < kc; ++k) {
      T* row = panel + k * stored;
      for (index_t j = 0; j < cols_here; ++j) row[j] = b_block(k, j0 + j);
      for (index_t j = cols_here; j < stored; ++j) row[j] = T(0);
    }
  }
  robust::maybe_corrupt(robust::FaultSite::kPackBitFlip, dst,
                        packed_b_size(kc, nc, nr, pad));
}

template <typename T>
void pack_a_chunked(ConstMatrixView<T> a_block,
                    const std::vector<index_t>& heights, T* dst) {
  const index_t kc = a_block.cols();
  index_t i0 = 0;
  T* panel = dst;
  for (const index_t h : heights) {
    SMM_EXPECT(h > 0 && i0 + h <= a_block.rows(),
               "pack_a_chunked: heights exceed the block");
    for (index_t k = 0; k < kc; ++k)
      for (index_t i = 0; i < h; ++i) panel[k * h + i] = a_block(i0 + i, k);
    i0 += h;
    panel += h * kc;
  }
  SMM_EXPECT(i0 == a_block.rows(),
             "pack_a_chunked: heights must cover the block");
  robust::maybe_corrupt(robust::FaultSite::kPackBitFlip, dst,
                        a_block.rows() * kc);
}

template <typename T>
void pack_b_chunked(ConstMatrixView<T> b_block,
                    const std::vector<index_t>& widths, T* dst) {
  const index_t kc = b_block.rows();
  index_t j0 = 0;
  T* panel = dst;
  for (const index_t w : widths) {
    SMM_EXPECT(w > 0 && j0 + w <= b_block.cols(),
               "pack_b_chunked: widths exceed the block");
    for (index_t k = 0; k < kc; ++k)
      for (index_t j = 0; j < w; ++j) panel[k * w + j] = b_block(k, j0 + j);
    j0 += w;
    panel += w * kc;
  }
  SMM_EXPECT(j0 == b_block.cols(),
             "pack_b_chunked: widths must cover the block");
  robust::maybe_corrupt(robust::FaultSite::kPackBitFlip, dst,
                        b_block.cols() * kc);
}

template void pack_a_chunked(ConstMatrixView<float>,
                             const std::vector<index_t>&, float*);
template void pack_a_chunked(ConstMatrixView<double>,
                             const std::vector<index_t>&, double*);
template void pack_b_chunked(ConstMatrixView<float>,
                             const std::vector<index_t>&, float*);
template void pack_b_chunked(ConstMatrixView<double>,
                             const std::vector<index_t>&, double*);

template void pack_a(ConstMatrixView<float>, index_t, bool, float*);
template void pack_a(ConstMatrixView<double>, index_t, bool, double*);
template void pack_b(ConstMatrixView<float>, index_t, bool, float*);
template void pack_b(ConstMatrixView<double>, index_t, bool, double*);

}  // namespace smm::pack
