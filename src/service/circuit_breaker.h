// Circuit breaker for the serving front-end (DESIGN.md §11).
//
// When the execution substrate below the queue is sick — the worker pool
// quarantined, guarded runs failing back-to-back — admitting more
// traffic only converts every queued request into another failure after
// it has burned queue time. The breaker converts that state into fast
// rejections at admission: it *trips* open after `failure_threshold`
// consecutive infrastructure failures (or immediately on an external
// trip, e.g. a pool quarantine observed in robust::health), rejects all
// traffic for `open_for`, then lets exactly one probe request through
// (half-open). The probe's outcome decides: success closes the breaker,
// failure re-opens it for another `open_for`.
#pragma once

#include <chrono>
#include <cstddef>
#include <mutex>

namespace smm::service {

enum class BreakerState {
  kClosed,    ///< healthy: all requests admitted
  kOpen,      ///< tripped: all requests rejected until the probe window
  kHalfOpen,  ///< probe window: one request in flight decides the state
};

const char* to_string(BreakerState state);

class CircuitBreaker {
 public:
  struct Options {
    /// Consecutive on_failure() calls that trip the breaker.
    int failure_threshold = 5;
    /// How long a tripped breaker rejects before probing.
    std::chrono::milliseconds open_for{100};
  };

  CircuitBreaker();
  explicit CircuitBreaker(Options options);

  /// Admission gate. Closed: true. Open: false until `open_for` elapsed,
  /// then the first caller becomes the half-open probe (true). Half-open:
  /// false while the probe is in flight.
  [[nodiscard]] bool allow();

  /// The guarded work succeeded: close (also lands the half-open probe).
  void on_success();

  /// Infrastructure failure (dead worker, pool timeout, allocation
  /// collapse). Counts toward the trip threshold; fails a half-open
  /// probe back to open.
  void on_failure();

  /// The work finished for a reason that says nothing about the
  /// substrate (cancelled, deadline passed, bad input). Releases a
  /// half-open probe slot without deciding the state, so the next
  /// request can probe.
  void on_neutral();

  /// External trip — the caller observed substrate sickness out of band
  /// (pool quarantine delta in robust::health).
  void trip();

  [[nodiscard]] BreakerState state() const;
  [[nodiscard]] std::size_t trips() const;

 private:
  void trip_locked();

  const Options options_;
  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  bool probe_in_flight_ = false;
  std::chrono::steady_clock::time_point reopen_at_{};
  std::size_t trips_ = 0;
};

}  // namespace smm::service
