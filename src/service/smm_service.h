// smm::service — the traffic-safe front door of the runtime
// (DESIGN.md §11).
//
// The paper's motivating workload is serving-style: floods of small
// GEMMs from DNN inference, where the fixed per-call costs (Table II's
// Sync column) dominate. Under overload such a runtime must shed work
// early — a request queued past its deadline burns queue space and sync
// cost to produce a result nobody reads. SmmService therefore puts a
// bounded, deadline-aware admission layer above smm_gemm/batched_smm:
//
//   submit() ── admission ──► queue ──► lanes ──► smm_gemm(+CancelToken)
//                 │                                  │
//                 ├─ depth/cost budget → kOverloaded │
//                 ├─ shed watermarks   → kOverloaded │ (low class first)
//                 └─ circuit breaker   → kOverloaded │
//                                                    └─ outcome drives
//                                                       the breaker
//
// Rejections are O(µs): submit() does shape validation plus a
// mutex-guarded admission decision — plan resolution, packing, and
// execution all happen on the lanes.
//
// Lifecycle: drain() stops admitting and completes every admitted
// request; shutdown() drains, retires the lanes, and releases the
// process-wide WorkerPool's threads (release_threads), so a stopped
// service leaves zero live pool threads behind.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/cancel.h"
#include "src/common/error.h"
#include "src/core/smm.h"
#include "src/matrix/view.h"
#include "src/service/circuit_breaker.h"

namespace smm::service {

/// Shedding order under pressure: kLow is refused first (above the low
/// watermark), then kNormal (above the high watermark); kHigh is only
/// refused when the queue is hard-full of equal-or-higher work.
enum class Priority { kLow = 0, kNormal = 1, kHigh = 2 };

const char* to_string(Priority priority);

struct ServiceOptions {
  /// Bounded queue depth; admissions beyond it are rejected (or evict a
  /// lower-priority entry). Env: SMMKIT_QUEUE_DEPTH.
  std::size_t queue_depth = 64;
  /// Deadline applied to requests submitted without one; 0 = none.
  /// Env: SMMKIT_DEFAULT_DEADLINE_MS.
  long default_deadline_ms = 0;
  /// Estimated-cost budget (ns of predicted single-lane work) the queue
  /// may hold; 0 disables the cost gate. An oversized single request is
  /// still admitted when the queue is empty — the budget bounds queue
  /// *accumulation*, not request size.
  double cost_budget_ns = 0.0;
  /// Queue fill fraction above which kLow arrivals are shed.
  /// Env: SMMKIT_SHED_LOW_WATERMARK.
  double shed_low_watermark = 0.5;
  /// Queue fill fraction above which kNormal arrivals are shed too.
  /// Env: SMMKIT_SHED_HIGH_WATERMARK.
  double shed_high_watermark = 0.8;
  /// Service lanes (worker threads draining the queue).
  int lanes = 1;
  /// nthreads handed to smm_gemm per request.
  int threads_per_request = 1;
  /// Price admissions with the host-calibrated cost model instead of the
  /// deterministic reference constants (tests keep the default).
  bool calibrated_cost = false;
  /// Options for the underlying smm_gemm calls (check_finite lives
  /// here: a serving front-end typically turns it on).
  core::SmmOptions gemm;
  CircuitBreaker::Options breaker;
};

/// ServiceOptions with the SMMKIT_* environment overrides applied on top
/// of `base` (unparsable or negative values are ignored).
ServiceOptions service_options_from_env(ServiceOptions base = {});

/// Terminal state of one request.
struct Result {
  bool ok = false;
  /// Meaningful when !ok. kOverloaded/kShuttingDown were refused at
  /// admission; kCancelled/kDeadlineExceeded stopped cooperatively
  /// (queued-but-unstarted requests leave C untouched); anything else is
  /// an execution failure surfaced as-is.
  ErrorCode code = ErrorCode::kUnknown;
  std::string message;
};

namespace detail {
struct RequestState {
  CancelSource cancel;
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Result result;
};
}  // namespace detail

/// Handle to one submitted request. Cheap to copy; outliving the service
/// is safe (the service completes every admitted request before its
/// lanes retire).
class Ticket {
 public:
  Ticket() = default;

  [[nodiscard]] bool valid() const { return state_ != nullptr; }

  /// Ask the request to stop. Queued: it completes kCancelled, C
  /// untouched. Executing: the token unwinds it at the next op boundary.
  /// Finished: no effect.
  void cancel();

  /// Block until the request reaches a terminal state. On an rvalue
  /// ticket (`svc.submit(...).wait()`) the Result is returned by value —
  /// the temporary ticket may hold the last reference to it.
  const Result& wait() const&;
  Result wait() &&;

  [[nodiscard]] bool done() const;

 private:
  friend class SmmService;
  explicit Ticket(std::shared_ptr<detail::RequestState> state)
      : state_(std::move(state)) {}
  std::shared_ptr<detail::RequestState> state_;
};

/// One item of a batch submission (mirrors core::GemmBatchItem).
template <typename T>
struct BatchItem {
  ConstMatrixView<T> a;
  ConstMatrixView<T> b;
  MatrixView<T> c;
};

class SmmService {
 public:
  explicit SmmService(ServiceOptions options = {});
  /// Implies shutdown(): drains admitted work, retires the lanes,
  /// releases the pool threads.
  ~SmmService();
  SmmService(const SmmService&) = delete;
  SmmService& operator=(const SmmService&) = delete;

  /// Submit C = alpha*A*B + beta*C. The views are borrowed: their
  /// storage must stay alive and unmodified (C unread) until the
  /// ticket's terminal state. Never blocks on execution; a refused
  /// request returns an already-completed ticket (kOverloaded /
  /// kShuttingDown). Shape errors throw (caller bugs, not load).
  /// `deadline_ms` 0 means the service default.
  template <typename T>
  Ticket submit(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, T beta,
                MatrixView<T> c, Priority priority = Priority::kNormal,
                long deadline_ms = 0);

  /// Submit a whole batch as one request (runs through batched_smm with
  /// the request's token; one ticket covers all items).
  template <typename T>
  Ticket submit_batch(T alpha, std::vector<BatchItem<T>> items, T beta,
                      Priority priority = Priority::kNormal,
                      long deadline_ms = 0);

  /// Stop admitting (submits now refuse with kShuttingDown) and block
  /// until every admitted request reached a terminal state. Idempotent;
  /// the lanes stay up (a test can cancel tickets mid-drain).
  void drain();

  /// drain(), then retire the lanes and release the process-wide
  /// WorkerPool threads. After shutdown() the service owns no threads
  /// and the pool has none parked. Idempotent; the destructor calls it.
  void shutdown();

  /// Point-in-time counters (each also mirrored into robust::health()'s
  /// service_* counters).
  struct Stats {
    std::size_t submitted = 0;
    std::size_t admitted = 0;
    std::size_t completed = 0;   ///< finished successfully
    std::size_t rejected = 0;    ///< kOverloaded/kShuttingDown at submit
    std::size_t shed = 0;        ///< subset of rejected: watermark refusals
    std::size_t breaker_rejections = 0;  ///< subset of rejected
    /// Admitted, then displaced by a higher-priority arrival (completes
    /// kOverloaded). Counted here only — submitted == admitted +
    /// rejected, and admitted work ends completed, evicted, cancelled,
    /// deadline-missed, or failed.
    std::size_t evicted = 0;
    std::size_t deadline_misses = 0;
    std::size_t cancellations = 0;
    std::size_t queued = 0;      ///< currently waiting
    std::size_t in_flight = 0;   ///< currently executing
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] BreakerState breaker_state() const {
    return breaker_.state();
  }
  [[nodiscard]] const ServiceOptions& options() const { return options_; }

  /// Predicted single-lane cost (ns) of one m×n×k request under the
  /// service's cost model — the unit of cost_budget_ns (exposed so
  /// benches can size an overload factor).
  [[nodiscard]] double estimate_cost_ns(index_t m, index_t n,
                                        index_t k) const;

 private:
  enum class State { kRunning, kDraining, kStopped };

  struct Request {
    std::shared_ptr<detail::RequestState> state;
    std::function<void(const CancelToken&)> run;
    Priority priority = Priority::kNormal;
    double est_cost_ns = 0.0;
  };

  /// The admission decision plus enqueue. Returns an empty shared_ptr on
  /// admit; otherwise the refusal is already recorded in the ticket.
  Ticket admit(Request request);
  /// Complete-and-remove every queued request whose token is already
  /// stopped (cancelled or past deadline) without executing it. Called
  /// by lanes under mu_ before picking work, so a starved class still
  /// reaches a terminal state at the lanes' pop cadence.
  void reap_stopped_locked();
  void lane_main();
  void execute(Request& request);
  static void complete(const std::shared_ptr<detail::RequestState>& state,
                       Result result);
  void observe_pool_health();

  ServiceOptions options_;
  double flop_ns_ = 0.0;      ///< cost-model constants, resolved once
  double dispatch_ns_ = 0.0;
  CircuitBreaker breaker_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;     ///< lanes wait for work / stop
  std::condition_variable drained_cv_;  ///< drain() waits for empty
  State state_ = State::kRunning;
  /// One deque per priority class; lanes pop the highest non-empty.
  std::deque<Request> queues_[3];
  std::size_t queued_ = 0;
  std::size_t in_flight_ = 0;
  double queued_cost_ns_ = 0.0;
  std::vector<std::thread> lanes_;
  std::size_t seen_pool_quarantines_ = 0;

  std::atomic<std::size_t> submitted_{0};
  std::atomic<std::size_t> admitted_{0};
  std::atomic<std::size_t> completed_{0};
  std::atomic<std::size_t> rejected_{0};
  std::atomic<std::size_t> shed_{0};
  std::atomic<std::size_t> evicted_{0};
  std::atomic<std::size_t> breaker_rejections_{0};
  std::atomic<std::size_t> deadline_misses_{0};
  std::atomic<std::size_t> cancellations_{0};
};

}  // namespace smm::service
