// smm::service — the traffic-safe front door of the runtime
// (DESIGN.md §11, sharded and coalesced in §13).
//
// The paper's motivating workload is serving-style: floods of small
// GEMMs from DNN inference, where the fixed per-call costs (Table II's
// Sync column) dominate. Under overload such a runtime must shed work
// early — a request queued past its deadline burns queue space and sync
// cost to produce a result nobody reads. SmmService therefore puts a
// bounded, deadline-aware admission layer above smm_gemm/batched_smm:
//
//   submit() ─ router ─► shard ── admission ──► queue ─► lanes ─► gemm
//               │          │        │ depth/cost budget → kOverloaded
//               │          │        ├─ shed watermarks  → kOverloaded
//               │          │        └─ circuit breaker  → kOverloaded
//               │          └─ own WorkerPool + PlanCache + lanes
//               └─ hash(shape class) ⊕ cost bucket (smm::shard)
//
// Sharding (DESIGN.md §13): the runtime is partitioned into N execution
// domains mirroring the sim's 8 NUMA panels. Each shard owns its queue,
// its lanes, a private WorkerPool, and a partitioned PlanCache, so hot
// shapes stay plan-cache-local and shards do not contend on one mutex.
// Bounded work stealing (one request at a time, only from shards with
// ≥2 queued) keeps a skewed shape distribution from idling capacity.
//
// Coalescing: lanes group same-shape same-options queued requests into
// one batched_smm_each call (micro-batch window, depth- and
// deadline-bounded), amortizing the per-call dispatch cost Table II
// shows dominating small multi-threaded SMM. Completion fans back out to
// the individual Tickets with per-item error/cancel propagation — a
// coalesced neighbor's failure never poisons siblings.
//
// Failure domains (smm::failover, DESIGN.md §15): on a multi-shard
// service every shard carries its own health ledger and circuit breaker,
// driven by that shard's outcome stream alone. A quarantined shard is
// drained — its queue re-routes along a deterministic fallback ring, in-
// flight work runs to terminal state — and its home traffic diverts at
// admission until the rebuild probe proves recovery. kHigh requests with
// deadline slack are hedged: a backup fires on a different shard after a
// percentile-based delay, the first terminal claims the ticket, the
// loser is cancelled and never double-counts. When a majority of shards
// are quarantined the service browns out (kLow shed at the door, tune
// sampling paused, ABFT-correct serving detect-only) instead of
// collapsing into a global breaker.
//
// Rejections are O(µs): submit() does shape validation, routing, plus a
// mutex-guarded admission decision — plan resolution, packing, and
// execution all happen on the lanes.
//
// Lifecycle: drain() stops admitting and completes every admitted
// request; shutdown() drains, retires every shard's lanes, and releases
// both the per-shard pools' and the process-wide WorkerPool's threads,
// so a stopped service leaves zero live pool threads behind.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/cancel.h"
#include "src/common/error.h"
#include "src/core/plan_cache.h"
#include "src/core/smm.h"
#include "src/failover/failover.h"
#include "src/matrix/view.h"
#include "src/service/circuit_breaker.h"
#include "src/threading/worker_pool.h"

namespace smm::service {

/// Shedding order under pressure: kLow is refused first (above the low
/// watermark), then kNormal (above the high watermark); kHigh is only
/// refused when the queue is hard-full of equal-or-higher work.
enum class Priority { kLow = 0, kNormal = 1, kHigh = 2 };

const char* to_string(Priority priority);

struct ServiceOptions {
  /// Execution domains (DESIGN.md §13). 0 = auto: SMMKIT_SHARDS, else 8
  /// (the sim's panel count). Each shard owns its queue, lanes, a
  /// private WorkerPool, and a partitioned PlanCache; queue_depth,
  /// watermarks, and cost_budget_ns are all per shard. 1 = the legacy
  /// single-domain service (process-wide pool and plan cache).
  int shards = 0;
  /// Bounded queue depth per shard; admissions beyond it are rejected
  /// (or evict a lower-priority entry). Env: SMMKIT_QUEUE_DEPTH.
  std::size_t queue_depth = 64;
  /// Deadline applied to requests submitted without one; 0 = none.
  /// Env: SMMKIT_DEFAULT_DEADLINE_MS.
  long default_deadline_ms = 0;
  /// Estimated-cost budget (ns of predicted single-lane work) each
  /// shard's queue may hold; 0 disables the cost gate. An oversized
  /// single request is still admitted when the queue is empty — the
  /// budget bounds queue *accumulation*, not request size.
  double cost_budget_ns = 0.0;
  /// Queue fill fraction above which kLow arrivals are shed.
  /// Env: SMMKIT_SHED_LOW_WATERMARK.
  double shed_low_watermark = 0.5;
  /// Queue fill fraction above which kNormal arrivals are shed too.
  /// Env: SMMKIT_SHED_HIGH_WATERMARK.
  double shed_high_watermark = 0.8;
  /// Service lanes (worker threads draining the queue) *per shard*.
  /// 0 = auto: max(1, native_threads_available() / shards). Note that
  /// native_threads_available() honors SMMKIT_MAX_THREADS, so capping
  /// the pool also narrows the auto-derived lane count.
  int lanes = 0;
  /// nthreads handed to smm_gemm per request.
  int threads_per_request = 1;
  /// Most same-shape requests one coalesced dispatch may carry; 1
  /// disables coalescing. Env: SMMKIT_COALESCE_DEPTH.
  std::size_t coalesce_depth = 16;
  /// Micro-batch window (µs) a lane may hold an underfull coalesce
  /// group open for late same-shape arrivals. 0 = opportunistic only
  /// (group whatever is already queued, never wait). The window is also
  /// deadline-bounded: it never holds a member near its deadline.
  /// Env: SMMKIT_COALESCE_WINDOW_US.
  long coalesce_window_us = 0;
  /// Price admissions with the host-calibrated cost model instead of the
  /// deterministic reference constants (tests keep the default).
  bool calibrated_cost = false;
  /// Options for the underlying smm_gemm calls (check_finite lives
  /// here: a serving front-end typically turns it on).
  core::SmmOptions gemm;
  CircuitBreaker::Options breaker;
  /// Per-shard failure domains, re-routing, hedging, brownout
  /// (smm::failover, DESIGN.md §15). Active only when shards > 1 — a
  /// single-shard service keeps the legacy global-breaker path verbatim
  /// (there is nowhere to fail over, and the layer must cost nothing
  /// when it cannot help).
  failover::FailoverOptions failover;
};

/// ServiceOptions with the SMMKIT_* environment overrides applied on top
/// of `base` (unparsable or negative values are ignored).
ServiceOptions service_options_from_env(ServiceOptions base = {});

/// Terminal state of one request.
struct Result {
  bool ok = false;
  /// Meaningful when !ok. kOverloaded/kShuttingDown were refused at
  /// admission; kCancelled/kDeadlineExceeded stopped cooperatively
  /// (queued-but-unstarted requests leave C untouched); anything else is
  /// an execution failure surfaced as-is.
  ErrorCode code = ErrorCode::kUnknown;
  std::string message;
};

namespace detail {
struct RequestState {
  CancelSource cancel;
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Result result;
  /// Hedged execution (DESIGN.md §15): primary and backup share this
  /// state, and exactly one of them may record the outcome and publish
  /// the result — whoever wins this exchange. Only consulted when the
  /// failover layer is active.
  std::atomic<bool> claimed{false};
  bool claim() { return !claimed.exchange(true, std::memory_order_acq_rel); }
};

/// The typed operands of a coalescable GEMM submission, type-erased into
/// Request::args so the shard queue stays untyped.
template <typename T>
struct GemmArgs {
  T alpha;
  T beta;
  ConstMatrixView<T> a;
  ConstMatrixView<T> b;
  MatrixView<T> c;
};
}  // namespace detail

/// Handle to one submitted request. Cheap to copy; outliving the service
/// is safe (the service completes every admitted request before its
/// lanes retire).
class Ticket {
 public:
  Ticket() = default;

  [[nodiscard]] bool valid() const { return state_ != nullptr; }

  /// Ask the request to stop. Queued: it completes kCancelled, C
  /// untouched. Executing: the token unwinds it at the next op boundary.
  /// Finished: no effect.
  void cancel();

  /// Block until the request reaches a terminal state. On an rvalue
  /// ticket (`svc.submit(...).wait()`) the Result is returned by value —
  /// the temporary ticket may hold the last reference to it.
  const Result& wait() const&;
  Result wait() &&;

  /// Block until terminal or the timeout passes. Returns true when the
  /// request reached a terminal state within the wait (the result can
  /// then be read with wait(), which no longer blocks); false on
  /// timeout — the request is still in flight and the ticket stays
  /// valid, so the caller may cancel, keep waiting, or race a retry.
  /// An invalid ticket returns true (wait() reports the error).
  template <typename Rep, typename Period>
  bool wait_for(std::chrono::duration<Rep, Period> timeout) const {
    return wait_until(std::chrono::steady_clock::now() + timeout);
  }
  bool wait_until(std::chrono::steady_clock::time_point deadline) const;

  [[nodiscard]] bool done() const;

 private:
  friend class SmmService;
  explicit Ticket(std::shared_ptr<detail::RequestState> state)
      : state_(std::move(state)) {}
  std::shared_ptr<detail::RequestState> state_;
};

/// One item of a batch submission (mirrors core::GemmBatchItem).
template <typename T>
struct BatchItem {
  ConstMatrixView<T> a;
  ConstMatrixView<T> b;
  MatrixView<T> c;
};

class SmmService {
 public:
  explicit SmmService(ServiceOptions options = {});
  /// Implies shutdown(): drains admitted work, retires the lanes,
  /// releases the pool threads.
  ~SmmService();
  SmmService(const SmmService&) = delete;
  SmmService& operator=(const SmmService&) = delete;

  /// Submit C = alpha*A*B + beta*C. The views are borrowed: their
  /// storage must stay alive and unmodified (C unread) until the
  /// ticket's terminal state. Never blocks on execution; a refused
  /// request returns an already-completed ticket (kOverloaded /
  /// kShuttingDown). Shape errors throw (caller bugs, not load).
  /// `deadline_ms` 0 means the service default.
  template <typename T>
  Ticket submit(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, T beta,
                MatrixView<T> c, Priority priority = Priority::kNormal,
                long deadline_ms = 0);

  /// Submit a whole batch as one request (runs through batched_smm with
  /// the request's token; one ticket covers all items). Batch
  /// submissions route by a combined hash of their item shapes and are
  /// never coalesced with other requests.
  template <typename T>
  Ticket submit_batch(T alpha, std::vector<BatchItem<T>> items, T beta,
                      Priority priority = Priority::kNormal,
                      long deadline_ms = 0);

  /// Stop admitting (submits now refuse with kShuttingDown) and block
  /// until every admitted request reached a terminal state. Open
  /// coalesce windows flush immediately. Idempotent; the lanes stay up
  /// (a test can cancel tickets mid-drain).
  void drain();

  /// drain(), then retire every shard's lanes and release both the
  /// per-shard pools' and the process-wide WorkerPool's threads. After
  /// shutdown() the service owns no threads and the pools have none
  /// parked. Idempotent; the destructor calls it.
  void shutdown();

  /// Point-in-time counters (each also mirrored into robust::health()'s
  /// service_* counters). Invariants (DESIGN.md §13/§15): submitted ==
  /// routed == Σ routed_per_shard + rerouted (every submission is routed
  /// exactly once; a placement diverted off its quarantined home — at
  /// admission or by a drain — is attributed to `rerouted` instead of a
  /// shard), admitted == Σ admitted_per_shard, and submitted ==
  /// admitted + rejected.
  struct Stats {
    std::size_t submitted = 0;
    std::size_t admitted = 0;
    std::size_t completed = 0;   ///< finished successfully
    std::size_t rejected = 0;    ///< kOverloaded/kShuttingDown at submit
    std::size_t shed = 0;        ///< subset of rejected: watermark refusals
    std::size_t breaker_rejections = 0;  ///< subset of rejected
    /// Admitted, then displaced by a higher-priority arrival (completes
    /// kOverloaded). Counted here only — submitted == admitted +
    /// rejected, and admitted work ends completed, evicted, cancelled,
    /// deadline-missed, or failed.
    std::size_t evicted = 0;
    std::size_t deadline_misses = 0;
    std::size_t cancellations = 0;
    std::size_t queued = 0;      ///< currently waiting (all shards)
    std::size_t in_flight = 0;   ///< currently executing (all shards)
    // Sharded runtime (DESIGN.md §13).
    std::size_t routed = 0;            ///< placements (== submitted)
    std::size_t steals = 0;            ///< requests run by a non-home shard
    std::size_t coalesced_groups = 0;  ///< >=2-member batched dispatches
    std::size_t coalesced_items = 0;   ///< requests served in those groups
    // Failure domains (DESIGN.md §15).
    std::size_t rerouted = 0;    ///< placements diverted off a quarantined home
    std::size_t hedged = 0;      ///< backup submissions fired
    std::size_t hedge_wins = 0;  ///< hedged requests whose backup won
    std::size_t shard_quarantines = 0;  ///< lifecycle entries into kQuarantined
    std::size_t shard_rebuilds = 0;     ///< quarantine -> rebuilding probes
    std::size_t brownouts = 0;          ///< brownout-mode entries
    std::vector<std::size_t> routed_per_shard;
    std::vector<std::size_t> admitted_per_shard;
  };
  [[nodiscard]] Stats stats() const;

  /// The legacy global breaker (the only one consulted when shards == 1
  /// or the failover layer is disabled; informational otherwise — a
  /// multi-shard service admits through the per-shard breakers).
  [[nodiscard]] BreakerState breaker_state() const {
    return breaker_.state();
  }
  /// Per-shard breaker (multi-shard failover); breaker_state() when the
  /// failover layer is inactive.
  [[nodiscard]] BreakerState shard_breaker_state(int shard_idx) const;

  // Failure-domain surface (DESIGN.md §15). All of these are no-ops /
  // kHealthy on a single-shard or failover-disabled service.
  /// Lifecycle state of one shard.
  [[nodiscard]] failover::ShardState shard_state(int shard_idx) const;
  /// Administratively quarantine a shard (fault drills, operational
  /// tooling): its queue drains onto the fallback ring, its home traffic
  /// diverts at admission, and it is *held* until revive_shard().
  void quarantine_shard(int shard_idx);
  /// Administrative revive: the shard re-enters as kRebuilding and heals
  /// to kHealthy on its first clean completion.
  void revive_shard(int shard_idx);
  /// True while the service is in brownout (majority of shards
  /// quarantined): kLow shed at the door, tune sampling paused,
  /// ABFT-correct serving detect-only.
  [[nodiscard]] bool in_brownout() const {
    return brownout_.load(std::memory_order_relaxed);
  }
  /// Fraction of the service's aggregate queue capacity currently
  /// occupied: queued / (queue_depth × shards). A caller-side limiter
  /// (smm::resilient, DESIGN.md §16) reads this as a congestion signal —
  /// it is a relaxed snapshot, cheap enough for every submit decision.
  [[nodiscard]] double queue_fill() const;
  /// Options with the auto knobs (shards, lanes) resolved.
  [[nodiscard]] const ServiceOptions& options() const { return options_; }

  /// Predicted single-lane cost (ns) of one m×n×k request — the unit of
  /// cost_budget_ns (exposed so benches can size an overload factor).
  /// Serves the autotuner's observed per-shape-class EWMA once a class
  /// has enough samples (smm::tune, DESIGN.md §14), so long-lived
  /// services re-read their admission budgets from reality instead of
  /// trusting the constants snapshotted at construction; falls back to
  /// those constants (2mnk·flop_ns + dispatch_ns) for unseen shapes or
  /// with SMMKIT_AUTOTUNE=off.
  [[nodiscard]] double estimate_cost_ns(index_t m, index_t n,
                                        index_t k) const;

  /// The shard the router would place an m×n×k request of scalar type
  /// `scalar_id` (0 = f32, 1 = f64) on — deterministic (tests assert it).
  [[nodiscard]] int route_shard(index_t m, index_t n, index_t k,
                                int scalar_id) const;

 private:
  enum class State { kRunning, kDraining, kStopped };

  struct Shard;

  /// What coalescing keys on: two requests merge into one batched
  /// dispatch only when shape, scalar type, and scale factors all agree
  /// (options are service-wide, so "same options" holds by construction).
  struct CoalesceKey {
    index_t m = 0;
    index_t n = 0;
    index_t k = 0;
    int scalar = 0;
    double alpha = 0.0;
    double beta = 0.0;
    bool valid = false;  ///< batch submissions never coalesce
    [[nodiscard]] bool matches(const CoalesceKey& o) const {
      return valid && o.valid && m == o.m && n == o.n && k == o.k &&
             scalar == o.scalar && alpha == o.alpha && beta == o.beta;
    }
  };

  using ByteRange = std::pair<const void*, const void*>;

  struct Request {
    std::shared_ptr<detail::RequestState> state;
    /// Single-request execution against the shard's plan cache.
    std::function<void(const CancelToken&, core::PlanCache&)> run;
    /// Hedged variant (set instead of `run`): computes from submit-time
    /// snapshots of ALL operands into a private scratch C, claims the
    /// shared state, and publishes into the user's C only on a won claim.
    /// The arms never race on user memory, and the losing arm — which
    /// may outlive the ticket's terminal state — touches none of the
    /// caller-borrowed views at all (the caller is free to release them
    /// the moment wait() returns). Returns whether this execution won.
    std::function<bool(const CancelToken&, core::PlanCache&)> run_claim;
    Priority priority = Priority::kNormal;
    double est_cost_ns = 0.0;
    int home = 0;  ///< shard the router placed this request on
    std::chrono::steady_clock::time_point deadline{};
    bool has_deadline = false;
    /// Hedge backup: bypasses admission stats, never coalesces, and on a
    /// lost claim (or a drain with no fallback) is dropped silently —
    /// the primary owns the ticket.
    bool backup = false;
    /// Already attributed to rerouted_ instead of a shard's routed
    /// counter (admission diversion or a quarantine drain); a second
    /// move must not count again.
    bool rerouted = false;
    /// Backup executions cancel independently of the shared ticket
    /// source (the loser is cancelled without touching the winner).
    std::shared_ptr<CancelSource> exec_cancel;
    CoalesceKey key;
    /// detail::GemmArgs<T> when key.valid (run_group recovers the type).
    std::shared_ptr<void> args;
    /// Coalesced execution of a whole same-key group; set alongside args.
    void (*run_group)(SmmService&, Shard&, std::vector<Request>&) = nullptr;
    /// Operand storage extents for the coalesce sweep's conflict checks
    /// (type-erased so the sweep never touches args).
    ByteRange a_range{nullptr, nullptr};
    ByteRange b_range{nullptr, nullptr};
    ByteRange c_range{nullptr, nullptr};
  };

  /// One execution domain: queue + lanes + pool + plan cache
  /// (DESIGN.md §13). `pool`/`cache` are null on a single-shard service,
  /// which keeps the legacy process-wide instances.
  struct Shard {
    std::mutex mu;
    std::condition_variable work_cv;
    /// One deque per priority class; lanes pop the highest non-empty.
    std::deque<Request> queues[3];
    std::size_t queued = 0;
    double queued_cost_ns = 0.0;
    std::vector<std::thread> lanes;
    std::unique_ptr<par::WorkerPool> pool;
    std::unique_ptr<core::PlanCache> cache;
    /// Failure-domain ledger + per-shard breaker; null unless the
    /// failover layer is active (DESIGN.md §15).
    std::unique_ptr<failover::ShardHealth> health;
    /// Pool-quarantine count last attributed by the supervisor (only the
    /// supervisor thread touches it).
    std::size_t seen_pool_quarantines = 0;
    std::atomic<std::size_t> routed{0};
    std::atomic<std::size_t> admitted{0};
    std::atomic<std::size_t> steals{0};
  };

  /// One registered hedge: the shared ticket state, the pre-built backup
  /// request, and when to fire it. Guarded by hedge_mu_.
  struct HedgeEntry {
    std::shared_ptr<detail::RequestState> state;
    Request backup;
    std::chrono::steady_clock::time_point fire_at{};
    std::shared_ptr<CancelSource> backup_cancel;  ///< set once fired
    /// Where admission actually placed the primary (it may have been
    /// diverted off a quarantined home): the ring scan for the backup
    /// starts after THIS shard, so a hedge never lands on the very
    /// domain it exists to route around.
    int primary_shard = 0;
    bool fired = false;
  };

  /// The admission decision plus enqueue on the request's home shard.
  /// Returns the ticket; refusals are already recorded in it.
  Ticket admit(Request request);
  /// Complete-and-remove every queued request whose token is already
  /// stopped (cancelled or past deadline) without executing it. Called
  /// by lanes under shard.mu before picking work, so a starved class
  /// still reaches a terminal state at the lanes' pop cadence.
  void reap_stopped_locked(Shard& shard);
  void lane_main(int shard_idx);
  /// Pop a leader and coalesce same-key queued requests behind it, up to
  /// coalesce_depth, optionally holding the micro-batch window open.
  /// Accounts every popped member (in_flight before queued, so drain
  /// never sees a gap). Caller holds `lock` on shard.mu.
  void pop_group_locked(Shard& shard, std::unique_lock<std::mutex>& lock,
                        std::vector<Request>& group);
  /// Move every queued request matching the group leader's key (and not
  /// conflicting with a member's output) into the group. Returns how
  /// many joined. Caller holds shard.mu.
  std::size_t sweep_matches_locked(Shard& shard,
                                   std::vector<Request>& group);
  /// Latest instant the window may hold this group (earliest member
  /// deadline minus a safety margin scaled by the group's predicted
  /// cost).
  [[nodiscard]] std::chrono::steady_clock::time_point group_deadline_bound(
      const std::vector<Request>& group) const;
  /// Steal ONE request from the back of another shard's lowest-priority
  /// queue (only from shards with >= 2 queued — bounded stealing leaves
  /// the victim its plan-cache-local work) and run it on the thief's
  /// domain. Returns true when something was stolen and executed.
  bool try_steal(int thief_idx);
  void execute(Request& request, Shard& shard);
  template <typename T>
  static void run_coalesced(SmmService& svc, Shard& shard,
                            std::vector<Request>& group);
  /// The completed/cancelled/deadline/breaker bookkeeping shared by the
  /// single-request and coalesced completion paths. `shard` is the
  /// domain that *executed* the request — its ledger and breaker take
  /// the outcome when the failover layer is active.
  void record_outcome(const Result& result, Shard& shard);
  static void complete(const std::shared_ptr<detail::RequestState>& state,
                       Result result);
  void observe_pool_health();

  // Failure domains (DESIGN.md §15). All run only when failover_active_.
  /// The breaker admission and outcome recording consult for `shard`.
  [[nodiscard]] CircuitBreaker& effective_breaker(Shard& shard);
  /// May placements land on shards_[idx] right now?
  [[nodiscard]] bool shard_admissible(int idx) const;
  /// Supervisor thread: pool-quarantine attribution, quarantine expiry,
  /// hedge firing/cancellation, brownout evaluation.
  void failover_main();
  void tick_failover();
  /// Entry into kQuarantined: mirror counters, drain the queue onto the
  /// fallback ring, re-evaluate brownout. Never called under a shard mu.
  void handle_quarantine(int idx);
  /// Entry into kRebuilding: blank the shard's plan cache (its cached
  /// state is suspect), mirror counters, wake the lanes.
  void begin_shard_rebuild(Shard& shard);
  /// Move every queued request off shards_[idx] to the next admissible
  /// shard on the ring; requests with no fallback complete kOverloaded
  /// (backups are dropped silently). Nothing is left stranded.
  void drain_shard_queue(int idx);
  /// Re-route one already-extracted request (the caller did the
  /// in_flight/queued handover). Returns false when it had to terminate
  /// the request instead.
  void place_rerouted(Request request, int from_idx);
  void evaluate_brownout();
  /// Register a hedge for a just-admitted eligible request.
  /// `primary_shard` is the shard admission actually placed it on.
  void register_hedge(Request backup_template, int primary_shard);
  /// Fire one backup onto `target`'s kHigh queue (bypasses admission —
  /// hedges are best-effort; a full queue skips the fire).
  bool enqueue_backup(int target, Request backup);
  [[nodiscard]] core::PlanCache& shard_cache(Shard& shard) const;
  /// The construction-time constants alone (no tuner feedback): what
  /// route_shard buckets on, so a shape's home shard never moves when
  /// the tuner revises its cost (plan/pool locality outlives tuning).
  [[nodiscard]] double static_cost_ns(index_t m, index_t n,
                                      index_t k) const;
  [[nodiscard]] State state() const {
    return state_.load(std::memory_order_acquire);
  }
  void maybe_notify_drained();

  ServiceOptions options_;
  double flop_ns_ = 0.0;      ///< cost-model constants, resolved once
  double dispatch_ns_ = 0.0;
  CircuitBreaker breaker_;
  /// shards > 1 && options_.failover.enabled, resolved once: the single
  /// branch every failover hook hides behind — a single-shard service
  /// runs the PR 7 code paths unchanged.
  bool failover_active_ = false;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<State> state_{State::kRunning};
  /// Serializes state transitions (drain/shutdown vs each other).
  std::mutex lifecycle_mu_;
  /// drain() waits here for both totals to reach zero; lanes notify
  /// through maybe_notify_drained().
  mutable std::mutex drain_mu_;
  std::condition_variable drained_cv_;
  std::atomic<std::size_t> total_queued_{0};
  std::atomic<std::size_t> total_in_flight_{0};

  std::mutex pool_health_mu_;
  std::size_t seen_pool_quarantines_ = 0;

  std::atomic<std::size_t> submitted_{0};
  std::atomic<std::size_t> admitted_{0};
  std::atomic<std::size_t> completed_{0};
  std::atomic<std::size_t> rejected_{0};
  std::atomic<std::size_t> shed_{0};
  std::atomic<std::size_t> evicted_{0};
  std::atomic<std::size_t> breaker_rejections_{0};
  std::atomic<std::size_t> deadline_misses_{0};
  std::atomic<std::size_t> cancellations_{0};
  std::atomic<std::size_t> routed_{0};
  std::atomic<std::size_t> steals_{0};
  std::atomic<std::size_t> coalesced_groups_{0};
  std::atomic<std::size_t> coalesced_items_{0};

  // Failure domains (DESIGN.md §15).
  std::atomic<std::size_t> rerouted_{0};
  std::atomic<std::size_t> hedged_{0};
  std::atomic<std::size_t> hedge_wins_{0};
  std::atomic<std::size_t> shard_quarantines_{0};
  std::atomic<std::size_t> shard_rebuilds_{0};
  std::atomic<std::size_t> brownouts_{0};
  std::atomic<bool> brownout_{false};
  failover::LatencyWindow latency_;
  /// Hedge registry and its supervisor thread (started only when
  /// failover_active_).
  std::mutex hedge_mu_;
  std::vector<HedgeEntry> hedges_;
  std::mutex supervisor_mu_;
  std::condition_variable supervisor_cv_;
  bool supervisor_running_ = false;  // guarded by supervisor_mu_
  std::thread supervisor_;
};

}  // namespace smm::service
