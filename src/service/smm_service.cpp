#include "src/service/smm_service.h"

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <utility>

#include "src/common/env.h"
#include "src/common/str.h"
#include "src/core/batched.h"
#include "src/core/parallel_cost.h"
#include "src/matrix/matrix.h"
#include "src/model/parallel_runtime.h"
#include "src/robust/health.h"
#include "src/robust/integrity.h"
#include "src/shard/shard.h"
#include "src/threading/thread_pool.h"
#include "src/tune/tune.h"
#include "src/threading/worker_pool.h"

namespace smm::service {

const char* to_string(Priority priority) {
  switch (priority) {
    case Priority::kLow:
      return "low";
    case Priority::kNormal:
      return "normal";
    case Priority::kHigh:
      return "high";
  }
  return "?";
}

namespace {

bool ranges_overlap(const std::pair<const void*, const void*>& x,
                    const std::pair<const void*, const void*>& y) {
  return x.first < y.second && y.first < x.second;
}

}  // namespace

ServiceOptions service_options_from_env(ServiceOptions base) {
  const long depth =
      env::read_long("SMMKIT_QUEUE_DEPTH",
                     static_cast<long>(base.queue_depth));
  if (depth > 0) base.queue_depth = static_cast<std::size_t>(depth);
  base.default_deadline_ms =
      env::read_long("SMMKIT_DEFAULT_DEADLINE_MS", base.default_deadline_ms);
  // SMMKIT_SHARDS applies through the shards==0 auto path (the ctor
  // resolves it via shard::default_shard_count), so an explicit
  // ServiceOptions::shards always wins over the environment.
  const long coalesce_depth =
      env::read_long("SMMKIT_COALESCE_DEPTH",
                     static_cast<long>(base.coalesce_depth));
  if (coalesce_depth > 0)
    base.coalesce_depth = static_cast<std::size_t>(coalesce_depth);
  base.coalesce_window_us =
      env::read_long("SMMKIT_COALESCE_WINDOW_US", base.coalesce_window_us);
  const double low = env::read_fraction("SMMKIT_SHED_LOW_WATERMARK",
                                        base.shed_low_watermark);
  const double high = env::read_fraction("SMMKIT_SHED_HIGH_WATERMARK",
                                         base.shed_high_watermark);
  // The ctor requires low <= high; an env pair that violates it is
  // ignored as a whole, like any other unparsable value — a
  // misconfigured scrape knob must not turn into a startup throw.
  if (low <= high) {
    base.shed_low_watermark = low;
    base.shed_high_watermark = high;
  }
  base.failover = failover::failover_options_from_env(base.failover);
  return base;
}

void Ticket::cancel() {
  if (state_ != nullptr) state_->cancel.request_cancel();
}

const Result& Ticket::wait() const& {
  static const Result invalid{false, ErrorCode::kPrecondition,
                              "wait() on an invalid ticket"};
  if (state_ == nullptr) return invalid;
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [&] { return state_->done; });
  return state_->result;
}

Result Ticket::wait() && { return static_cast<const Ticket&>(*this).wait(); }

bool Ticket::wait_until(std::chrono::steady_clock::time_point deadline) const {
  // Invalid tickets report "terminal": wait() surfaces the error and a
  // timed-wait loop must not spin on a handle that can never complete.
  if (state_ == nullptr) return true;
  std::unique_lock<std::mutex> lock(state_->mu);
  return state_->cv.wait_until(lock, deadline,
                               [&] { return state_->done; });
}

bool Ticket::done() const {
  if (state_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->done;
}

SmmService::SmmService(ServiceOptions options)
    : options_(options), breaker_(options.breaker) {
  // Resolve the auto knobs into options_ so options() reports what the
  // service actually runs with.
  if (options_.shards <= 0) options_.shards = shard::default_shard_count();
  options_.shards = std::clamp(options_.shards, 1, shard::kMaxShards);
  if (options_.lanes <= 0)
    options_.lanes =
        std::max(1, par::native_threads_available() / options_.shards);
  if (options_.coalesce_depth == 0) options_.coalesce_depth = 1;
  if (options_.coalesce_window_us < 0) options_.coalesce_window_us = 0;
  SMM_EXPECT(options_.queue_depth > 0, "service needs a queue");
  SMM_EXPECT(options_.threads_per_request >= 1,
             "service needs at least one thread per request");
  SMM_EXPECT(options_.shed_low_watermark <= options_.shed_high_watermark,
             "shed watermarks must be ordered low <= high");
  const model::ParallelCostModel model =
      options_.calibrated_cost ? core::calibrated_cost_model()
                               : model::reference_cost_model();
  flop_ns_ = model.flop_ns;
  dispatch_ns_ = model.dispatch_ns;
  seen_pool_quarantines_ =
      robust::health().pool_quarantines.load(std::memory_order_relaxed);

  // A single-shard service keeps the legacy process-wide pool and plan
  // cache; N > 1 gives every shard a private domain (DESIGN.md §13) so
  // panels stop contending on one region lock and one cache mutex.
  const bool isolated = options_.shards > 1;
  failover_active_ = isolated && options_.failover.enabled;
  shards_.reserve(static_cast<std::size_t>(options_.shards));
  for (int s = 0; s < options_.shards; ++s) {
    auto sh = std::make_unique<Shard>();
    if (isolated) {
      sh->pool = par::WorkerPool::create_private();
      sh->cache = std::make_unique<core::PlanCache>(core::reference_smm());
    }
    if (failover_active_)
      sh->health = std::make_unique<failover::ShardHealth>(
          options_.failover, options_.breaker);
    shards_.push_back(std::move(sh));
  }
  for (int s = 0; s < options_.shards; ++s) {
    auto& sh = *shards_[static_cast<std::size_t>(s)];
    sh.lanes.reserve(static_cast<std::size_t>(options_.lanes));
    for (int l = 0; l < options_.lanes; ++l)
      sh.lanes.emplace_back([this, s] { lane_main(s); });
  }
  if (failover_active_) {
    supervisor_running_ = true;
    supervisor_ = std::thread([this] { failover_main(); });
  }
}

SmmService::~SmmService() { shutdown(); }

double SmmService::static_cost_ns(index_t m, index_t n, index_t k) const {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
             static_cast<double>(k) * flop_ns_ +
         dispatch_ns_;
}

double SmmService::estimate_cost_ns(index_t m, index_t n, index_t k) const {
  // Admission budgets track reality: once the autotuner has a steady
  // per-shape-class EWMA (either scalar type — the estimate runs before
  // T is known), it replaces the construction-time constants here, so
  // queued_cost_ns and the coalescing cost bucket price requests at what
  // they actually cost on this host today.
  if (tune::mode() != tune::Mode::kOff) {
    const std::optional<double> observed = tune::tuner().observed_cost_ns(
        m, n, k, /*scalar=*/-1, options_.threads_per_request);
    if (observed.has_value()) return *observed;
  }
  return static_cost_ns(m, n, k);
}

int SmmService::route_shard(index_t m, index_t n, index_t k,
                            int scalar_id) const {
  // Routing stays on the static estimate on purpose: a tuned cost that
  // drifts across a log2 bucket boundary would re-home a hot shape mid-
  // run, abandoning its shard-local plan cache and warm pool (§13/§14).
  return shard::route(shard::shape_class_hash({m, n, k, scalar_id}),
                      static_cost_ns(m, n, k),
                      static_cast<int>(shards_.size()));
}

double SmmService::queue_fill() const {
  const double capacity = static_cast<double>(options_.queue_depth) *
                          static_cast<double>(shards_.size());
  if (capacity <= 0.0) return 0.0;
  const auto queued = total_queued_.load(std::memory_order_relaxed);
  return static_cast<double>(queued) / capacity;
}

core::PlanCache& SmmService::shard_cache(Shard& shard) const {
  return shard.cache != nullptr ? *shard.cache : core::smm_plan_cache();
}

void SmmService::complete(
    const std::shared_ptr<detail::RequestState>& state, Result result) {
  std::lock_guard<std::mutex> lock(state->mu);
  if (state->done) return;
  state->result = std::move(result);
  state->done = true;
  state->cv.notify_all();
}

void SmmService::maybe_notify_drained() {
  if (total_queued_.load(std::memory_order_acquire) == 0 &&
      total_in_flight_.load(std::memory_order_acquire) == 0) {
    // Empty critical section: a drain() that read non-zero totals must
    // reach its wait before this notify, or it would sleep through it.
    { std::lock_guard<std::mutex> g(drain_mu_); }
    drained_cv_.notify_all();
  }
}

Ticket SmmService::admit(Request request) {
  // Failure-domain diversion (DESIGN.md §15): a quarantined home sends
  // its placements to the next admissible shard on the deterministic
  // fallback ring. The route hash itself is untouched — request.home
  // (and with it the coalesce key population) stays stable, only the
  // placement moves.
  int target = request.home;
  if (failover_active_ && !shard_admissible(target)) {
    const int n = static_cast<int>(shards_.size());
    target = failover::next_on_ring(
        target, n, [&](int idx) { return shard_admissible(idx); });
  }
  Shard& shard = *shards_[static_cast<std::size_t>(target)];
  {
    // Correlated pair (DESIGN.md §13): every submission is routed
    // exactly once, before the admission decision — a health snapshot
    // must never observe service_submitted != service_routed.
    robust::Health::Transaction tx;
    robust::health().service_submitted.fetch_add(1,
                                                 std::memory_order_relaxed);
    robust::health().service_routed.fetch_add(1, std::memory_order_relaxed);
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  routed_.fetch_add(1, std::memory_order_relaxed);
  if (target == request.home) {
    shard.routed.fetch_add(1, std::memory_order_relaxed);
  } else {
    // Diverted placements land in rerouted_, not a shard's routed
    // counter: routed == Σ routed_per_shard + rerouted stays exact.
    request.rerouted = true;
    rerouted_.fetch_add(1, std::memory_order_relaxed);
    robust::health().service_rerouted.fetch_add(1,
                                                std::memory_order_relaxed);
  }
  Ticket ticket(request.state);

  // Refusals complete the ticket immediately — the entire decision is one
  // mutex-guarded inspection of the shard's queue counters, O(µs), no
  // plan work.
  const auto refuse = [&](ErrorCode code, std::string msg, bool is_shed,
                          bool is_breaker) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    robust::health().service_rejected.fetch_add(1,
                                                std::memory_order_relaxed);
    if (is_shed) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      robust::health().service_shed.fetch_add(1, std::memory_order_relaxed);
    }
    if (is_breaker) {
      breaker_rejections_.fetch_add(1, std::memory_order_relaxed);
      robust::health().service_breaker_rejections.fetch_add(
          1, std::memory_order_relaxed);
    }
    complete(request.state, Result{false, code, std::move(msg)});
    return ticket;
  };

  std::shared_ptr<detail::RequestState> victim;
  // Hedge-eligible (submit armed run_claim): snapshot the backup before
  // the primary is moved into the queue. The copy shares the ticket
  // state and the submit-time operand snapshot; backup=true makes it
  // silent on a lost claim.
  std::optional<Request> backup_template;
  if (failover_active_ && request.run_claim != nullptr && !request.backup) {
    backup_template = request;
    backup_template->backup = true;
    backup_template->rerouted = false;
  }
  {
    std::unique_lock<std::mutex> lock(shard.mu);
    if (state() != State::kRunning) {
      lock.unlock();
      return refuse(ErrorCode::kShuttingDown,
                    "smm service: draining, no new work admitted", false,
                    false);
    }

    if (failover_active_ && !shard_admissible(target)) {
      // Either every domain is quarantined (the ring fell back to the
      // quarantined home) or the target flipped between selection and
      // lock. Refuse — never enqueue onto a domain the drain owns.
      lock.unlock();
      return refuse(ErrorCode::kOverloaded,
                    "smm service: no healthy shard domain available",
                    false, false);
    }

    // Brownout (DESIGN.md §15): under sustained multi-shard failure the
    // surviving capacity is reserved for the traffic that matters —
    // kLow is shed at the door regardless of queue fill.
    if (failover_active_ && request.priority == Priority::kLow &&
        brownout_.load(std::memory_order_relaxed)) {
      lock.unlock();
      return refuse(ErrorCode::kOverloaded,
                    "smm service: brownout, low-priority traffic shed",
                    true, false);
    }

    // Load shedding: above the watermarks, lower classes are refused
    // outright so the remaining depth is reserved for the traffic that
    // matters (Table II's lesson — queueing into sync-bound collapse
    // serves nobody).
    const double fill = static_cast<double>(shard.queued) /
                        static_cast<double>(options_.queue_depth);
    if ((request.priority == Priority::kLow &&
         fill >= options_.shed_low_watermark) ||
        (request.priority <= Priority::kNormal &&
         fill >= options_.shed_high_watermark)) {
      lock.unlock();
      return refuse(
          ErrorCode::kOverloaded,
          strprintf("smm service: shed %s-priority request at %.0f%% fill",
                    to_string(request.priority), fill * 100.0),
          true, false);
    }

    // Cost budget: bounds queue *accumulation*, not request size — an
    // oversized request still runs when it has the queue to itself.
    if (options_.cost_budget_ns > 0.0 && shard.queued > 0 &&
        shard.queued_cost_ns + request.est_cost_ns >
            options_.cost_budget_ns) {
      lock.unlock();
      return refuse(ErrorCode::kOverloaded,
                    "smm service: queued-cost budget exhausted", false,
                    false);
    }

    // At a hard-full queue a higher class may displace the newest entry
    // of a strictly lower one; identify the victim's class now but pop
    // it only once the arrival is certain to be admitted.
    int victim_class = -1;
    if (shard.queued >= options_.queue_depth) {
      for (int p = 0; p < static_cast<int>(request.priority); ++p) {
        if (shard.queues[p].empty()) continue;
        victim_class = p;
        break;
      }
      if (victim_class < 0) {
        lock.unlock();
        return refuse(ErrorCode::kOverloaded,
                      "smm service: queue full", false, false);
      }
    }

    // The breaker — the *target shard's* when the failover layer is
    // active, the legacy global one otherwise — is consulted after every
    // load-shaped refusal (so a refused request never consumes the
    // half-open probe slot) but before the eviction is performed (so a
    // breaker refusal strands no already-popped victim — it simply
    // stays queued).
    if (!effective_breaker(shard).allow()) {
      lock.unlock();
      return refuse(ErrorCode::kOverloaded,
                    "smm service: circuit breaker open", false, true);
    }

    if (victim_class >= 0) {
      auto& q = shard.queues[victim_class];
      victim = std::move(q.back().state);
      shard.queued_cost_ns -= q.back().est_cost_ns;
      q.pop_back();
      --shard.queued;
      total_queued_.fetch_sub(1, std::memory_order_relaxed);
    }

    shard.queued_cost_ns += request.est_cost_ns;
    shard.queues[static_cast<int>(request.priority)].push_back(
        std::move(request));
    ++shard.queued;
    total_queued_.fetch_add(1, std::memory_order_relaxed);
  }
  shard.work_cv.notify_one();
  // Hedged request admitted (submit armed run_claim): register the
  // backup template with the supervisor, which fires it on a different
  // shard once the hedge delay elapses. Registration is outside the
  // shard lock — the supervisor takes shard locks when it fires. The
  // entry records where the primary actually landed (`target`, not
  // `home`: a rerouted primary already sits on home's ring successor,
  // which is exactly where a home-relative scan would put the backup).
  if (backup_template.has_value())
    register_hedge(std::move(*backup_template), target);
  admitted_.fetch_add(1, std::memory_order_relaxed);
  robust::health().service_admitted.fetch_add(1, std::memory_order_relaxed);
  shard.admitted.fetch_add(1, std::memory_order_relaxed);

  if (victim != nullptr) {
    // The victim was *admitted* (it is counted in admitted_) and is now
    // terminated post-admission, so it lands in its own counter — not in
    // rejected_/shed_, which partition *submissions*: submitted ==
    // admitted + rejected, and admitted work ends completed, evicted,
    // cancelled, deadline-missed, or failed.
    evicted_.fetch_add(1, std::memory_order_relaxed);
    robust::health().service_evictions.fetch_add(1,
                                                 std::memory_order_relaxed);
    complete(victim,
             Result{false, ErrorCode::kOverloaded,
                    "smm service: evicted by a higher-priority arrival"});
  }
  return ticket;
}

void SmmService::observe_pool_health() {
  const std::size_t quarantines =
      robust::health().pool_quarantines.load(std::memory_order_relaxed);
  bool trip = false;
  {
    std::lock_guard<std::mutex> lock(pool_health_mu_);
    if (quarantines > seen_pool_quarantines_) {
      seen_pool_quarantines_ = quarantines;
      trip = true;
    }
  }
  if (trip) breaker_.trip();
}

CircuitBreaker& SmmService::effective_breaker(Shard& shard) {
  return failover_active_ ? shard.health->breaker() : breaker_;
}

bool SmmService::shard_admissible(int idx) const {
  const Shard& shard = *shards_[static_cast<std::size_t>(idx)];
  return shard.health == nullptr || shard.health->admissible();
}

void SmmService::record_outcome(const Result& result, Shard& shard) {
  CircuitBreaker& breaker = effective_breaker(shard);
  // Ledger transitions (multi-shard): the executing shard's own outcome
  // stream drives its lifecycle — a quarantine entry discovered here
  // owns the drain that follows.
  const auto on_shard_failure = [&] {
    if (shard.health == nullptr || !shard.health->on_failure()) return;
    // The ledger just crossed into quarantine: drain the shard. shards_
    // holds unique_ptrs, so recover the index by scan (failure path
    // only, <=64 entries).
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      if (shards_[i].get() == &shard) {
        handle_quarantine(static_cast<int>(i));
        break;
      }
    }
  };
  if (result.ok) {
    completed_.fetch_add(1, std::memory_order_relaxed);
    robust::health().service_completed.fetch_add(1,
                                                 std::memory_order_relaxed);
    breaker.on_success();
    if (shard.health != nullptr) shard.health->on_success();
    return;
  }
  switch (result.code) {
    case ErrorCode::kCancelled:
      cancellations_.fetch_add(1, std::memory_order_relaxed);
      robust::health().service_cancellations.fetch_add(
          1, std::memory_order_relaxed);
      breaker.on_neutral();
      break;
    case ErrorCode::kDeadlineExceeded:
      deadline_misses_.fetch_add(1, std::memory_order_relaxed);
      robust::health().service_deadline_misses.fetch_add(
          1, std::memory_order_relaxed);
      breaker.on_neutral();
      break;
    case ErrorCode::kNonFinite:
    case ErrorCode::kBadShape:
    case ErrorCode::kAlias:
    case ErrorCode::kPrecondition:
      // The request's own fault: says nothing about the substrate.
      breaker.on_neutral();
      break;
    case ErrorCode::kDataCorrupted:
    case ErrorCode::kCacheCorrupted:
      // Silent-data-corruption defenses fired and could not repair:
      // the substrate is actively producing wrong bytes — the
      // strongest possible signal to trip the breaker.
      breaker.on_failure();
      on_shard_failure();
      break;
    default:
      // Infrastructure-class failure (dead worker, pool timeout,
      // allocation collapse): counts toward tripping the breaker.
      breaker.on_failure();
      on_shard_failure();
      break;
  }
}

BreakerState SmmService::shard_breaker_state(int shard_idx) const {
  const Shard& shard = *shards_[static_cast<std::size_t>(shard_idx)];
  return shard.health != nullptr ? shard.health->breaker().state()
                                 : breaker_.state();
}

failover::ShardState SmmService::shard_state(int shard_idx) const {
  const Shard& shard = *shards_[static_cast<std::size_t>(shard_idx)];
  return shard.health != nullptr ? shard.health->state()
                                 : failover::ShardState::kHealthy;
}

void SmmService::quarantine_shard(int shard_idx) {
  if (!failover_active_) return;
  Shard& shard = *shards_[static_cast<std::size_t>(shard_idx)];
  // force_quarantine() is true exactly on *entry*: an upgrade of an
  // existing quarantine to an administrative hold needs no second drain.
  if (shard.health->force_quarantine()) handle_quarantine(shard_idx);
}

void SmmService::revive_shard(int shard_idx) {
  if (!failover_active_) return;
  Shard& shard = *shards_[static_cast<std::size_t>(shard_idx)];
  if (!shard.health->revive()) return;
  begin_shard_rebuild(shard);
}

void SmmService::begin_shard_rebuild(Shard& shard) {
  // The quarantined domain's cached plans are suspect — whatever broke
  // the substrate may have rotted them (that is what the seals catch,
  // but a rebuild starts from a blank slate instead of betting on it).
  if (shard.cache != nullptr) shard.cache->clear();
  shard_rebuilds_.fetch_add(1, std::memory_order_relaxed);
  robust::health().shard_rebuilds.fetch_add(1, std::memory_order_relaxed);
  evaluate_brownout();
  shard.work_cv.notify_all();
}

void SmmService::failover_main() {
  // Supervisor cadence: 200µs keeps quarantine expiry and hedge firing
  // well under any deadline a serving workload would set, while the
  // notify in register_hedge() covers hedges shorter than a tick.
  std::unique_lock<std::mutex> lock(supervisor_mu_);
  while (supervisor_running_) {
    supervisor_cv_.wait_for(lock, std::chrono::microseconds(200));
    if (!supervisor_running_) return;
    lock.unlock();
    tick_failover();
    lock.lock();
  }
}

void SmmService::tick_failover() {
  const auto now = std::chrono::steady_clock::now();
  const int n = static_cast<int>(shards_.size());

  // 1. Pool-quarantine attribution: each shard's private pool watchdog
  //    is that shard's hardest health signal. The process-wide
  //    observe_pool_health() path is bypassed entirely when the failover
  //    layer is active — a panel's hung pool condemns the panel, not
  //    the whole service.
  for (int i = 0; i < n; ++i) {
    Shard& shard = *shards_[static_cast<std::size_t>(i)];
    if (shard.pool == nullptr) continue;
    const std::size_t q = shard.pool->stats().quarantines;
    if (q > shard.seen_pool_quarantines) {
      shard.seen_pool_quarantines = q;
      if (shard.health->on_pool_quarantine()) handle_quarantine(i);
    }
  }

  // 2. Quarantine expiry: kQuarantined -> kRebuilding once the hold
  //    elapses; the first clean completion heals the shard.
  for (int i = 0; i < n; ++i) {
    Shard& shard = *shards_[static_cast<std::size_t>(i)];
    if (shard.health->maybe_begin_rebuild(now)) begin_shard_rebuild(shard);
  }

  // 3. Hedge sweep: cancel losers of decided races, fire backups whose
  //    delay elapsed. Lock order is hedge_mu_ -> shard.mu (enqueue);
  //    no path takes them in the other order.
  const bool browned_out = brownout_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(hedge_mu_);
  for (auto it = hedges_.begin(); it != hedges_.end();) {
    bool done;
    {
      std::lock_guard<std::mutex> g(it->state->mu);
      done = it->state->done;
    }
    const bool stopped = it->state->cancel.token().stop_requested();
    if (done || stopped) {
      // The race is decided (or the caller stopped the ticket): stop
      // the outstanding arms and retire the entry. A cancelled loser
      // reaps out of its queue, loses the claim, and vanishes without
      // a second completion. Stopping the shared source after done is
      // invisible to the caller (the result is already recorded) and
      // spares a still-queued loser its pointless run.
      if (it->backup_cancel != nullptr) it->backup_cancel->request_cancel();
      if (done) it->state->cancel.request_cancel();
      it = hedges_.erase(it);
      continue;
    }
    if (!it->fired && now >= it->fire_at) {
      it->fired = true;
      if (state() == State::kRunning && !browned_out) {
        // Scan relative to the primary's actual placement, not its
        // routed home: an admission-diverted primary already runs on
        // home's ring successor, and a home-relative scan would land
        // the backup on that same shard — doubling its load and
        // forfeiting the different-shard isolation the hedge is for.
        // next_on_ring starts after `primary_shard`, so the primary's
        // own domain is excluded by construction.
        const int target = failover::next_on_ring(
            it->primary_shard, n,
            [&](int idx) { return shard_admissible(idx); });
        if (target != it->primary_shard) {
          Request backup = std::move(it->backup);
          backup.exec_cancel =
              backup.has_deadline
                  ? std::make_shared<CancelSource>(backup.deadline)
                  : std::make_shared<CancelSource>();
          it->backup_cancel = backup.exec_cancel;
          if (enqueue_backup(target, std::move(backup))) {
            hedged_.fetch_add(1, std::memory_order_relaxed);
            robust::health().service_hedged.fetch_add(
                1, std::memory_order_relaxed);
          } else {
            // Queue full or the service stopped running between the
            // check and the enqueue: the hedge is best-effort, the
            // primary still owns the ticket.
            it->backup_cancel = nullptr;
          }
        }
        // No admissible second shard: nothing to hedge onto — the
        // primary runs unhedged (fired stays true; the entry is GC'd
        // when the ticket reaches terminal).
      }
    }
    ++it;
  }
}

void SmmService::handle_quarantine(int idx) {
  shard_quarantines_.fetch_add(1, std::memory_order_relaxed);
  robust::health().shard_quarantines.fetch_add(1,
                                               std::memory_order_relaxed);
  drain_shard_queue(idx);
  evaluate_brownout();
}

void SmmService::drain_shard_queue(int idx) {
  Shard& shard = *shards_[static_cast<std::size_t>(idx)];
  std::vector<Request> orphans;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto& q : shard.queues) {
      for (auto& r : q) {
        // in_flight before queued: drain() watches the pair and must
        // never observe a mid-migration request as "done".
        total_in_flight_.fetch_add(1, std::memory_order_relaxed);
        total_queued_.fetch_sub(1, std::memory_order_relaxed);
        orphans.push_back(std::move(r));
      }
      q.clear();
    }
    shard.queued = 0;
    shard.queued_cost_ns = 0.0;
  }
  for (auto& r : orphans) place_rerouted(std::move(r), idx);
}

void SmmService::place_rerouted(Request request, int from_idx) {
  const int n = static_cast<int>(shards_.size());
  const int target = failover::next_on_ring(
      from_idx, n, [&](int idx) { return shard_admissible(idx); });
  if (target != from_idx) {
    Shard& shard = *shards_[static_cast<std::size_t>(target)];
    const bool attribute = !request.rerouted && !request.backup;
    const int pclass = static_cast<int>(request.priority);
    request.rerouted = true;
    bool placed = false;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      // A re-routed ticket was already admitted once; it only bounces
      // when the fallback has no room at all (hard-full), in which case
      // it terminates below rather than strand.
      if (state() != State::kStopped &&
          shard.queued < options_.queue_depth) {
        shard.queued_cost_ns += request.est_cost_ns;
        shard.queues[pclass].push_back(std::move(request));
        ++shard.queued;
        total_queued_.fetch_add(1, std::memory_order_relaxed);
        total_in_flight_.fetch_sub(1, std::memory_order_relaxed);
        placed = true;
      }
    }
    if (placed) {
      if (attribute) {
        // First migration: the placement leaves its origin's routed
        // count for rerouted_, keeping routed == Σ routed_per_shard +
        // rerouted exact.
        shards_[static_cast<std::size_t>(from_idx)]->routed.fetch_sub(
            1, std::memory_order_relaxed);
        rerouted_.fetch_add(1, std::memory_order_relaxed);
        robust::health().service_rerouted.fetch_add(
            1, std::memory_order_relaxed);
      }
      shard.work_cv.notify_one();
      maybe_notify_drained();
      return;
    }
  }
  // No admissible fallback (or it is hard-full): the ticket terminates
  // here — never stranded in a quarantined queue.
  if (request.backup ||
      (request.run_claim != nullptr && !request.state->claim())) {
    // A backup (or a hedged primary whose sibling already claimed) is
    // dropped silently: the other arm owns the ticket.
    total_in_flight_.fetch_sub(1, std::memory_order_relaxed);
    maybe_notify_drained();
    return;
  }
  evicted_.fetch_add(1, std::memory_order_relaxed);
  robust::health().service_evictions.fetch_add(1,
                                               std::memory_order_relaxed);
  complete(request.state,
           Result{false, ErrorCode::kOverloaded,
                  "smm service: shard quarantined, no healthy fallback"});
  total_in_flight_.fetch_sub(1, std::memory_order_relaxed);
  maybe_notify_drained();
}

void SmmService::evaluate_brownout() {
  const int n = static_cast<int>(shards_.size());
  int admissible = 0;
  for (int i = 0; i < n; ++i)
    if (shard_admissible(i)) ++admissible;
  // Majority rule: fewer than half the domains still admitting is no
  // longer a local failure — the service sheds optional work explicitly
  // instead of letting the survivors collapse under the full load.
  const bool should = 2 * admissible < n;
  const bool was = brownout_.exchange(should, std::memory_order_relaxed);
  if (should && !was) {
    brownouts_.fetch_add(1, std::memory_order_relaxed);
    robust::health().service_brownouts.fetch_add(1,
                                                 std::memory_order_relaxed);
    // Counted holds: a second browned-out service instance keeps the
    // process-wide suppressions up after this one exits or shuts down.
    tune::hold_sampling_suppression();
    integrity::hold_repair_suppression();
  } else if (!should && was) {
    tune::release_sampling_suppression();
    integrity::release_repair_suppression();
  }
}

void SmmService::register_hedge(Request backup_template,
                                int primary_shard) {
  const auto now = std::chrono::steady_clock::now();
  double delay_ns;
  if (options_.failover.hedge_ms > 0) {
    delay_ns = static_cast<double>(options_.failover.hedge_ms) * 1e6;
  } else {
    // Percentile rule: past the p95 of recent completions a still-
    // outstanding request has statistically stalled. Floor keeps
    // microsecond shapes from hedging instantly (pure waste); cap keeps
    // the backup worth firing — launched with at least half the
    // deadline budget left. (Hedge eligibility guarantees a deadline.)
    const double budget_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            backup_template.deadline - now)
            .count();
    delay_ns = latency_.quantile(options_.failover.hedge_percentile,
                                 2.0 * backup_template.est_cost_ns);
    delay_ns = std::clamp(delay_ns, 2.0e4, std::max(2.0e4, 0.5 * budget_ns));
  }
  HedgeEntry entry;
  entry.state = backup_template.state;
  entry.primary_shard = primary_shard;
  entry.fire_at =
      now + std::chrono::nanoseconds(static_cast<long long>(delay_ns));
  entry.backup = std::move(backup_template);
  {
    std::lock_guard<std::mutex> lock(hedge_mu_);
    hedges_.push_back(std::move(entry));
  }
  // A hedge shorter than the supervisor tick still fires on time.
  supervisor_cv_.notify_all();
}

bool SmmService::enqueue_backup(int target, Request backup) {
  Shard& shard = *shards_[static_cast<std::size_t>(target)];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (state() != State::kRunning) return false;
    if (shard.queued >= options_.queue_depth) return false;
    shard.queued_cost_ns += backup.est_cost_ns;
    // kHigh on purpose: the eviction victim scan only considers classes
    // strictly below an arrival, so hedge machinery is never evicted
    // (and never evicts — backups bypass admission entirely).
    shard.queues[2].push_back(std::move(backup));
    ++shard.queued;
    total_queued_.fetch_add(1, std::memory_order_relaxed);
  }
  shard.work_cv.notify_one();
  return true;
}

void SmmService::execute(Request& request, Shard& shard) {
  // A hedged backup runs under its own CancelSource so the supervisor
  // can cancel the loser without disturbing the caller-facing source.
  const CancelToken token = request.exec_cancel != nullptr
                                ? request.exec_cancel->token()
                                : request.state->cancel.token();
  const bool claiming = request.run_claim != nullptr;
  Result result;
  // Queued-but-unstarted stop: complete without touching C (or any plan
  // state) — exactly the "work nobody is waiting for" shedding exists
  // to avoid.
  if (token.cancel_requested()) {
    result = {false, ErrorCode::kCancelled,
              "smm service: cancelled while queued"};
  } else if (token.expired()) {
    result = {false, ErrorCode::kDeadlineExceeded,
              "smm service: deadline passed while queued"};
  } else {
    const auto t0 = std::chrono::steady_clock::now();
    try {
      // A degraded/rebuilding shard produces failover-shaped latencies
      // (cold caches, half-open probes) that must not be ingested as
      // evidence — neither by the tuner (sampling suppressed for the
      // run) nor by the hedge LatencyWindow (recording skipped below):
      // failure-inflated wall times would stretch the p95-derived
      // hedge delay exactly when hedging matters most. Snapshot of the
      // state at run start; a mid-run transition misclassifies at most
      // this one observation.
      const bool shard_healthy =
          !failover_active_ ||
          shard.health->state() == failover::ShardState::kHealthy;
      std::optional<tune::ScopedSampleSuppression> suppress;
      if (!shard_healthy) suppress.emplace();
      if (claiming) {
        // Hedged: compute into private scratch, then race for the
        // claim. Only the winner published into the caller's C; the
        // loser's work is discarded without touching any shared state.
        if (!request.run_claim(token, shard_cache(shard))) {
          if (!request.backup) effective_breaker(shard).on_neutral();
          return;  // the sibling owns the outcome — record nothing
        }
        result.ok = true;
        if (request.backup) {
          hedge_wins_.fetch_add(1, std::memory_order_relaxed);
          robust::health().service_hedge_wins.fetch_add(
              1, std::memory_order_relaxed);
        }
      } else {
        request.run(token, shard_cache(shard));
        result.ok = true;
      }
      if (failover_active_ && shard_healthy)
        latency_.record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()));
    } catch (const Error& e) {
      ErrorCode code = e.code();
      // A stop inside a parallel plan poisons the peers' barriers, so
      // the aggregate can surface as kWorkerPanic/kPoolTimeout; the
      // token knows the real reason.
      if ((code == ErrorCode::kWorkerPanic ||
           code == ErrorCode::kPoolTimeout) &&
          token.stop_requested()) {
        code = token.cancel_requested() ? ErrorCode::kCancelled
                                        : ErrorCode::kDeadlineExceeded;
      }
      result = {false, code, e.what()};
    } catch (const std::bad_alloc&) {
      result = {false, ErrorCode::kAlloc,
                "smm service: allocation failed"};
    } catch (const std::exception& e) {
      result = {false, ErrorCode::kUnknown, e.what()};
    }
  }

  if (claiming && !result.ok) {
    // First terminal wins — success or failure alike. A second arm is
    // still racing (or already terminal); if the claim is lost, this
    // arm's outcome is nobody's business.
    if (!request.state->claim()) {
      if (!request.backup) effective_breaker(shard).on_neutral();
      return;
    }
  }
  record_outcome(result, shard);
  if (!failover_active_) observe_pool_health();
  complete(request.state, std::move(result));
}

template <typename T>
void SmmService::run_coalesced(SmmService& svc, Shard& shard,
                               std::vector<Request>& group) {
  std::vector<core::GemmBatchItem<T>> items;
  std::vector<CancelToken> token_storage;
  std::vector<const CancelToken*> tokens;
  items.reserve(group.size());
  token_storage.reserve(group.size());  // no realloc: tokens points in
  tokens.reserve(group.size());
  const auto* lead =
      static_cast<const detail::GemmArgs<T>*>(group.front().args.get());
  for (auto& r : group) {
    const auto* args =
        static_cast<const detail::GemmArgs<T>*>(r.args.get());
    items.push_back({args->a, args->b, args->c});
    token_storage.push_back(r.state->cancel.token());
    tokens.push_back(&token_storage.back());
  }

  {
    // Correlated pair: a snapshot must never see a group without its
    // items (or vice versa).
    robust::Health::Transaction tx;
    robust::health().service_coalesced_groups.fetch_add(
        1, std::memory_order_relaxed);
    robust::health().service_coalesced_items.fetch_add(
        group.size(), std::memory_order_relaxed);
  }
  svc.coalesced_groups_.fetch_add(1, std::memory_order_relaxed);
  svc.coalesced_items_.fetch_add(group.size(), std::memory_order_relaxed);

  // One batched dispatch for the whole group: one plan lookup, one
  // pack of the shared B (when the items share one), one fork-join —
  // the Table II per-call overhead paid once instead of group-size
  // times. batched_smm_each never lets one member's failure poison a
  // sibling; the catch below only guards its own preconditions.
  std::vector<core::BatchItemStatus> statuses;
  std::optional<tune::ScopedSampleSuppression> suppress;
  if (svc.failover_active_ &&
      shard.health->state() != failover::ShardState::kHealthy)
    suppress.emplace();
  try {
    statuses = core::batched_smm_each(
        lead->alpha, items, lead->beta, svc.shard_cache(shard),
        svc.options_.threads_per_request, &svc.options_.gemm, &tokens);
  } catch (const Error& e) {
    statuses.assign(group.size(),
                    core::BatchItemStatus{false, e.code(), e.what()});
  } catch (const std::exception& e) {
    statuses.assign(
        group.size(),
        core::BatchItemStatus{false, ErrorCode::kUnknown, e.what()});
  }

  // Success accounting is batched: one counter bump and one breaker
  // on_success per group instead of per member (on_success is
  // idempotent — it resets the failure streak — so folding N calls into
  // one is semantically identical and keeps the per-item completion
  // cost flat as groups deepen). Failures stay per-member so the
  // breaker sees every individual infrastructure signal.
  std::size_t ok_members = 0;
  for (std::size_t i = 0; i < group.size(); ++i) {
    Result result;
    if (statuses[i].ok) {
      result.ok = true;
      ++ok_members;
    } else {
      ErrorCode code = statuses[i].code;
      // Same reclassification as execute(): a stop that surfaced as a
      // poisoned parallel region is reported as the stop it was.
      if ((code == ErrorCode::kWorkerPanic ||
           code == ErrorCode::kPoolTimeout) &&
          token_storage[i].stop_requested()) {
        code = token_storage[i].cancel_requested()
                   ? ErrorCode::kCancelled
                   : ErrorCode::kDeadlineExceeded;
      }
      result = Result{false, code, statuses[i].message};
      svc.record_outcome(result, shard);
    }
    complete(group[i].state, std::move(result));
  }
  if (ok_members > 0) {
    svc.completed_.fetch_add(ok_members, std::memory_order_relaxed);
    robust::health().service_completed.fetch_add(ok_members,
                                                 std::memory_order_relaxed);
    svc.effective_breaker(shard).on_success();
    if (shard.health != nullptr) shard.health->on_success();
  }
  if (!svc.failover_active_) svc.observe_pool_health();
}

void SmmService::reap_stopped_locked(Shard& shard) {
  for (auto& q : shard.queues) {
    for (auto it = q.begin(); it != q.end();) {
      // A hedged backup is stopped through its private source (the
      // supervisor cancels the loser once the sibling is terminal).
      const CancelToken token = it->exec_cancel != nullptr
                                    ? it->exec_cancel->token()
                                    : it->state->cancel.token();
      if (!token.stop_requested()) {
        ++it;
        continue;
      }
      const auto unqueue = [&] {
        shard.queued_cost_ns -= it->est_cost_ns;
        --shard.queued;
        total_queued_.fetch_sub(1, std::memory_order_relaxed);
        it = q.erase(it);
      };
      if (it->run_claim != nullptr && !it->state->claim()) {
        // The sibling already owns the terminal outcome: this arm is
        // pure leftovers — drop it without a second completion or any
        // health accounting (no double-counting).
        unqueue();
        continue;
      }
      Result result =
          token.cancel_requested()
              ? Result{false, ErrorCode::kCancelled,
                       "smm service: cancelled while queued"}
              : Result{false, ErrorCode::kDeadlineExceeded,
                       "smm service: deadline passed while queued"};
      if (result.code == ErrorCode::kCancelled) {
        cancellations_.fetch_add(1, std::memory_order_relaxed);
        robust::health().service_cancellations.fetch_add(
            1, std::memory_order_relaxed);
      } else {
        deadline_misses_.fetch_add(1, std::memory_order_relaxed);
        robust::health().service_deadline_misses.fetch_add(
            1, std::memory_order_relaxed);
      }
      // Mirrors execute()'s queued pre-check: a stop is neutral for the
      // breaker, but must still release a half-open probe slot the
      // request may hold from admission. Backups never took that slot.
      if (!it->backup) effective_breaker(shard).on_neutral();
      complete(it->state, std::move(result));
      unqueue();
    }
  }
}

std::size_t SmmService::sweep_matches_locked(Shard& shard,
                                             std::vector<Request>& group) {
  const CoalesceKey key = group.front().key;  // copy: group may realloc
  std::size_t added = 0;
  for (int p = 2; p >= 0 && group.size() < options_.coalesce_depth; --p) {
    auto& q = shard.queues[p];
    for (auto it = q.begin();
         it != q.end() && group.size() < options_.coalesce_depth;) {
      if (!it->key.matches(key)) {
        ++it;
        continue;
      }
      // A candidate whose output overlaps a member's operands (or whose
      // inputs a member writes) stays queued and runs in a later group —
      // batched workers write all Cs concurrently.
      bool conflict = false;
      for (const auto& member : group) {
        if (ranges_overlap(it->c_range, member.c_range) ||
            ranges_overlap(it->c_range, member.a_range) ||
            ranges_overlap(it->c_range, member.b_range) ||
            ranges_overlap(member.c_range, it->a_range) ||
            ranges_overlap(member.c_range, it->b_range)) {
          conflict = true;
          break;
        }
      }
      if (conflict) {
        ++it;
        continue;
      }
      // in_flight before queued: drain() watches the pair and must
      // never observe a popped-but-unaccounted request as "done".
      total_in_flight_.fetch_add(1, std::memory_order_relaxed);
      total_queued_.fetch_sub(1, std::memory_order_relaxed);
      --shard.queued;
      shard.queued_cost_ns -= it->est_cost_ns;
      group.push_back(std::move(*it));
      it = q.erase(it);
      ++added;
    }
  }
  return added;
}

std::chrono::steady_clock::time_point SmmService::group_deadline_bound(
    const std::vector<Request>& group) const {
  auto bound = std::chrono::steady_clock::time_point::max();
  double cost_ns = 0.0;
  for (const auto& r : group) cost_ns += r.est_cost_ns;
  // Safety margin: leave the group at least 4x its predicted cost (and
  // never less than 2 ms) of runway before the earliest deadline — a
  // window must amortize dispatch, not manufacture deadline misses.
  const auto margin = std::chrono::nanoseconds(
      static_cast<long long>(std::max(4.0 * cost_ns, 2e6)));
  for (const auto& r : group)
    if (r.has_deadline) bound = std::min(bound, r.deadline - margin);
  return bound;
}

void SmmService::pop_group_locked(Shard& shard,
                                  std::unique_lock<std::mutex>& lock,
                                  std::vector<Request>& group) {
  for (int p = 2; p >= 0; --p) {
    auto& q = shard.queues[p];
    if (q.empty()) continue;
    total_in_flight_.fetch_add(1, std::memory_order_relaxed);
    total_queued_.fetch_sub(1, std::memory_order_relaxed);
    --shard.queued;
    shard.queued_cost_ns -= q.front().est_cost_ns;
    group.push_back(std::move(q.front()));
    q.pop_front();
    break;
  }
  if (group.empty()) return;
  const std::size_t depth = options_.coalesce_depth;
  if (depth <= 1 || !group.front().key.valid) return;

  // Opportunistic sweep: whatever same-key work is already queued rides
  // along for free (no waiting involved).
  sweep_matches_locked(shard, group);
  if (group.size() >= depth || options_.coalesce_window_us <= 0 ||
      state() != State::kRunning)
    return;

  // Micro-batch window: hold the underfull group open for late same-key
  // arrivals. Depth-, deadline-, and lifecycle-bounded — drain() and
  // shutdown() notify the cv, flushing every open window immediately.
  auto flush_at = std::chrono::steady_clock::now() +
                  std::chrono::microseconds(options_.coalesce_window_us);
  flush_at = std::min(flush_at, group_deadline_bound(group));
  while (group.size() < depth && state() == State::kRunning &&
         std::chrono::steady_clock::now() < flush_at) {
    if (shard.work_cv.wait_until(lock, flush_at) ==
        std::cv_status::timeout)
      break;
    if (state() != State::kRunning) break;
    if (sweep_matches_locked(shard, group) > 0)
      flush_at = std::min(flush_at, group_deadline_bound(group));
  }
}

bool SmmService::try_steal(int thief_idx) {
  if (state() != State::kRunning) return false;
  const int n = static_cast<int>(shards_.size());
  Shard& mine = *shards_[static_cast<std::size_t>(thief_idx)];
  if (failover_active_) {
    // Only a healthy or merely degraded shard may steal: a quarantined
    // or rebuilding domain must not pull fresh work onto the very
    // substrate the ledger just condemned.
    const auto mine_state = mine.health->state();
    if (mine_state != failover::ShardState::kHealthy &&
        mine_state != failover::ShardState::kDegraded)
      return false;
  }
  for (int d = 1; d < n; ++d) {
    const int victim_idx = (thief_idx + d) % n;
    // A quarantined victim's queue belongs to the drain: stealing from
    // it would race the re-route and double-handle tickets.
    if (failover_active_ && !shard_admissible(victim_idx)) continue;
    Shard& victim = *shards_[static_cast<std::size_t>(victim_idx)];
    Request stolen;
    bool got = false;
    {
      std::lock_guard<std::mutex> lock(victim.mu);
      // Bounded stealing: take ONE request, and only from a shard with
      // at least two queued — the victim keeps its plan-cache-local
      // work and the stolen plan is rebuilt at most once per thief.
      if (victim.queued >= 2) {
        for (int p = 0; p <= 2; ++p) {  // lowest class first: it waits
          auto& q = victim.queues[p];   // longest at home anyway
          if (q.empty()) continue;
          total_in_flight_.fetch_add(1, std::memory_order_relaxed);
          total_queued_.fetch_sub(1, std::memory_order_relaxed);
          --victim.queued;
          victim.queued_cost_ns -= q.back().est_cost_ns;
          stolen = std::move(q.back());
          q.pop_back();
          got = true;
          break;
        }
      }
    }
    if (!got) continue;
    mine.steals.fetch_add(1, std::memory_order_relaxed);
    steals_.fetch_add(1, std::memory_order_relaxed);
    robust::health().service_steals.fetch_add(1, std::memory_order_relaxed);
    // Runs on the thief's domain (its pool binding is lane-scoped, its
    // cache passed here) — the whole point is using idle capacity.
    execute(stolen, mine);
    total_in_flight_.fetch_sub(1, std::memory_order_relaxed);
    maybe_notify_drained();
    return true;
  }
  return false;
}

void SmmService::lane_main(int shard_idx) {
  Shard& shard = *shards_[static_cast<std::size_t>(shard_idx)];
  const bool multi = shards_.size() > 1;
  // Bind the shard's private pool as this lane's run_parallel target:
  // every nested fork-join region lands on shard-local workers.
  std::optional<par::WorkerPool::CurrentPoolBinding> binding;
  if (shard.pool != nullptr) binding.emplace(*shard.pool);
  std::unique_lock<std::mutex> lock(shard.mu);
  for (;;) {
    const auto ready = [&] {
      return state() == State::kStopped || shard.queued > 0;
    };
    if (multi) {
      // Timed wait: an idle shard periodically scans peers for steals.
      shard.work_cv.wait_for(lock, std::chrono::microseconds(500), ready);
    } else {
      shard.work_cv.wait(lock, ready);
    }
    // Deadline-aware sweep before picking work: under sustained
    // higher-priority pressure a queued lower-class item may never be
    // popped, yet its caller's deadline keeps running. Reaping stopped
    // items here bounds time-to-terminal by the lane's pop cadence
    // instead of the item's (possibly starved) queue position.
    if (shard.queued > 0) reap_stopped_locked(shard);
    if (shard.queued == 0) {
      maybe_notify_drained();
      if (state() == State::kStopped) return;
      if (multi && state() == State::kRunning) {
        lock.unlock();
        try_steal(shard_idx);
        lock.lock();
      }
      continue;
    }
    std::vector<Request> group;
    pop_group_locked(shard, lock, group);
    if (group.empty()) continue;
    lock.unlock();
    if (group.size() == 1) {
      execute(group.front(), shard);
    } else {
      group.front().run_group(*this, shard, group);
    }
    total_in_flight_.fetch_sub(group.size(), std::memory_order_relaxed);
    maybe_notify_drained();
    lock.lock();
  }
}

void SmmService::drain() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    State expected = State::kRunning;
    state_.compare_exchange_strong(expected, State::kDraining,
                                   std::memory_order_acq_rel);
  }
  // Admission barrier + window flush: an admit that saw kRunning holds
  // its shard mutex until its enqueue is accounted in total_queued_, so
  // taking each mutex once makes every such enqueue visible below; the
  // wakeup flushes any open coalesce window.
  for (auto& shard : shards_) {
    { std::lock_guard<std::mutex> g(shard->mu); }
    shard->work_cv.notify_all();
  }
  std::unique_lock<std::mutex> lock(drain_mu_);
  drained_cv_.wait(lock, [&] {
    return total_queued_.load(std::memory_order_acquire) == 0 &&
           total_in_flight_.load(std::memory_order_acquire) == 0;
  });
}

void SmmService::shutdown() {
  drain();
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    state_.store(State::kStopped, std::memory_order_release);
  }
  // Supervisor first: it re-routes into shard queues and fires backups,
  // so it must be gone before the lanes stop popping.
  {
    std::lock_guard<std::mutex> lock(supervisor_mu_);
    supervisor_running_ = false;
  }
  supervisor_cv_.notify_all();
  if (supervisor_.joinable()) supervisor_.join();
  {
    std::lock_guard<std::mutex> lock(hedge_mu_);
    hedges_.clear();
  }
  // The brownout suppressions are process-global counted holds (tune,
  // integrity): a service that dies browned-out must release its own
  // hold — and only its own; another instance's brownout stays in
  // force (the exchange guarantees exactly one release per entry).
  if (brownout_.exchange(false, std::memory_order_relaxed)) {
    tune::release_sampling_suppression();
    integrity::release_repair_suppression();
  }
  std::vector<std::thread> lanes;
  for (auto& shard : shards_) {
    {
      std::lock_guard<std::mutex> g(shard->mu);
      for (auto& lane : shard->lanes) lanes.push_back(std::move(lane));
      shard->lanes.clear();
    }
    shard->work_cv.notify_all();
  }
  for (auto& lane : lanes) lane.join();
  // The service promised its caller a clean exit: after this, neither
  // the service nor any pool underneath it owns a live thread.
  for (auto& shard : shards_)
    if (shard->pool != nullptr) shard->pool->release_threads();
  par::WorkerPool::instance().release_threads();
}

SmmService::Stats SmmService::stats() const {
  Stats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.evicted = evicted_.load(std::memory_order_relaxed);
  s.breaker_rejections =
      breaker_rejections_.load(std::memory_order_relaxed);
  s.deadline_misses = deadline_misses_.load(std::memory_order_relaxed);
  s.cancellations = cancellations_.load(std::memory_order_relaxed);
  s.routed = routed_.load(std::memory_order_relaxed);
  s.rerouted = rerouted_.load(std::memory_order_relaxed);
  s.hedged = hedged_.load(std::memory_order_relaxed);
  s.hedge_wins = hedge_wins_.load(std::memory_order_relaxed);
  s.shard_quarantines = shard_quarantines_.load(std::memory_order_relaxed);
  s.shard_rebuilds = shard_rebuilds_.load(std::memory_order_relaxed);
  s.brownouts = brownouts_.load(std::memory_order_relaxed);
  s.steals = steals_.load(std::memory_order_relaxed);
  s.coalesced_groups = coalesced_groups_.load(std::memory_order_relaxed);
  s.coalesced_items = coalesced_items_.load(std::memory_order_relaxed);
  s.queued = total_queued_.load(std::memory_order_relaxed);
  s.in_flight = total_in_flight_.load(std::memory_order_relaxed);
  s.routed_per_shard.reserve(shards_.size());
  s.admitted_per_shard.reserve(shards_.size());
  for (const auto& shard : shards_) {
    s.routed_per_shard.push_back(
        shard->routed.load(std::memory_order_relaxed));
    s.admitted_per_shard.push_back(
        shard->admitted.load(std::memory_order_relaxed));
  }
  return s;
}

template <typename T>
Ticket SmmService::submit(T alpha, ConstMatrixView<T> a,
                          ConstMatrixView<T> b, T beta, MatrixView<T> c,
                          Priority priority, long deadline_ms) {
  SMM_EXPECT_CODE(a.rows() == c.rows() && b.cols() == c.cols() &&
                      a.cols() == b.rows(),
                  ErrorCode::kBadShape,
                  "service submit: dimension mismatch");
  SMM_EXPECT_CODE((a.empty() || a.data() != nullptr) &&
                      (b.empty() || b.data() != nullptr) &&
                      (c.empty() || c.data() != nullptr),
                  ErrorCode::kBadShape,
                  "service submit: operand has null data");
  Request request;
  request.priority = priority;
  request.est_cost_ns = estimate_cost_ns(c.rows(), c.cols(), a.cols());
  request.state = std::make_shared<detail::RequestState>();
  const long ms =
      deadline_ms > 0 ? deadline_ms : options_.default_deadline_ms;
  if (ms > 0) {
    request.deadline = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(ms);
    request.has_deadline = true;
    request.state->cancel = CancelSource(request.deadline);
  }
  const int scalar_id = sizeof(T) == 4 ? 0 : 1;
  request.home = route_shard(c.rows(), c.cols(), a.cols(), scalar_id);
  const int threads = options_.threads_per_request;
  const core::SmmOptions gemm = options_.gemm;
  request.run = [alpha, a, b, beta, c, threads, gemm](
                    const CancelToken& token, core::PlanCache& cache) {
    core::smm_gemm(alpha, a, b, beta, c, threads, gemm, token, cache);
  };
  if (c.rows() > 0 && c.cols() > 0 && a.cols() > 0) {
    // Coalescable: record the key, the typed operands, and the
    // type-erased storage extents the sweep's conflict checks read.
    request.key = CoalesceKey{c.rows(),
                              c.cols(),
                              a.cols(),
                              scalar_id,
                              static_cast<double>(alpha),
                              static_cast<double>(beta),
                              true};
    request.args = std::make_shared<detail::GemmArgs<T>>(
        detail::GemmArgs<T>{alpha, beta, a, b, c});
    request.run_group = &SmmService::run_coalesced<T>;
    request.a_range = storage_range(a);
    request.b_range = storage_range(b);
    request.c_range = storage_range(ConstMatrixView<T>(c));
  }
  // Hedged execution (DESIGN.md §15): a kHigh request whose deadline
  // budget exceeds hedge_budget_factor × its predicted cost can afford
  // to run twice — a backup fires on a different shard after the hedge
  // delay, first terminal wins. ALL THREE operands are snapshotted here
  // into service-owned storage: the winner claims and completes while
  // the loser may still be executing (its cancellation is cooperative),
  // and the submit() contract lets the caller free A/B/C the moment
  // wait() returns — a loser still reading the borrowed views would be
  // a use-after-free. Both arms therefore compute from the snapshots
  // into private scratch; only the claim winner publishes into the
  // caller's C (and beta-accumulation reads a stable pre-image). A
  // hedged request never coalesces: its group siblings would write the
  // user's C directly, defeating the claim protocol.
  if (failover_active_ && priority == Priority::kHigh && ms > 0 &&
      c.rows() > 0 && c.cols() > 0 && a.cols() > 0 &&
      static_cast<double>(ms) * 1e6 >
          options_.failover.hedge_budget_factor * request.est_cost_ns) {
    auto a0 = std::make_shared<Matrix<T>>(a.rows(), a.cols(), a.layout());
    for (index_t j = 0; j < a.cols(); ++j)
      for (index_t i = 0; i < a.rows(); ++i) (*a0)(i, j) = a(i, j);
    auto b0 = std::make_shared<Matrix<T>>(b.rows(), b.cols(), b.layout());
    for (index_t j = 0; j < b.cols(); ++j)
      for (index_t i = 0; i < b.rows(); ++i) (*b0)(i, j) = b(i, j);
    auto c0 = std::make_shared<Matrix<T>>(c.rows(), c.cols(), c.layout());
    for (index_t j = 0; j < c.cols(); ++j)
      for (index_t i = 0; i < c.rows(); ++i) (*c0)(i, j) = c(i, j);
    request.run = nullptr;
    request.key = CoalesceKey{};
    request.args = nullptr;
    request.run_group = nullptr;
    request.run_claim = [alpha, a0, b0, beta, c, c0, threads, gemm,
                         state = request.state](
                            const CancelToken& token,
                            core::PlanCache& cache) -> bool {
      Matrix<T> scratch = c0->clone();
      core::smm_gemm(alpha, a0->cview(), b0->cview(), beta,
                     scratch.view(), threads, gemm, token, cache);
      if (!state->claim()) return false;  // the sibling already decided
      // Publish: the caller observes C only after wait() returns, and
      // complete() hands the result over under state->mu — the mutex
      // orders this copy before any caller read.
      MatrixView<T> out = c;
      for (index_t j = 0; j < out.cols(); ++j)
        for (index_t i = 0; i < out.rows(); ++i)
          out(i, j) = scratch(i, j);
      return true;
    };
  }
  return admit(std::move(request));
}

template Ticket SmmService::submit(float, ConstMatrixView<float>,
                                   ConstMatrixView<float>, float,
                                   MatrixView<float>, Priority, long);
template Ticket SmmService::submit(double, ConstMatrixView<double>,
                                   ConstMatrixView<double>, double,
                                   MatrixView<double>, Priority, long);

template <typename T>
Ticket SmmService::submit_batch(T alpha, std::vector<BatchItem<T>> items,
                                T beta, Priority priority,
                                long deadline_ms) {
  auto batch =
      std::make_shared<std::vector<core::GemmBatchItem<T>>>();
  batch->reserve(items.size());
  const int scalar_id = sizeof(T) == 4 ? 0 : 1;
  // Batch submissions route by a combined hash of their item shapes:
  // identical batches stay shard-local; they never coalesce with other
  // requests (the batch is already amortized).
  std::uint64_t h = 1469598103934665603ull;
  double est = 0.0;
  for (const auto& item : items) {
    h ^= shard::shape_class_hash(
        {item.c.rows(), item.c.cols(), item.a.cols(), scalar_id});
    h *= 1099511628211ull;
    batch->push_back({item.a, item.b, item.c});
    est += estimate_cost_ns(item.c.rows(), item.c.cols(), item.a.cols());
  }
  Request request;
  request.priority = priority;
  request.est_cost_ns = est;
  request.home = shard::route(h, est, static_cast<int>(shards_.size()));
  request.state = std::make_shared<detail::RequestState>();
  const long ms =
      deadline_ms > 0 ? deadline_ms : options_.default_deadline_ms;
  if (ms > 0) {
    request.deadline = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(ms);
    request.has_deadline = true;
    request.state->cancel = CancelSource(request.deadline);
  }
  const int threads = options_.threads_per_request;
  request.run = [alpha, beta, batch, threads](const CancelToken& token,
                                              core::PlanCache& cache) {
    core::batched_smm(alpha, *batch, beta, cache, threads, &token);
  };
  return admit(std::move(request));
}

template Ticket SmmService::submit_batch(float,
                                         std::vector<BatchItem<float>>,
                                         float, Priority, long);
template Ticket SmmService::submit_batch(double,
                                         std::vector<BatchItem<double>>,
                                         double, Priority, long);

}  // namespace smm::service
