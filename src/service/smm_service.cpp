#include "src/service/smm_service.h"

#include <cstdlib>
#include <utility>

#include "src/common/str.h"
#include "src/core/batched.h"
#include "src/core/parallel_cost.h"
#include "src/model/parallel_runtime.h"
#include "src/robust/health.h"
#include "src/threading/worker_pool.h"

namespace smm::service {

const char* to_string(Priority priority) {
  switch (priority) {
    case Priority::kLow:
      return "low";
    case Priority::kNormal:
      return "normal";
    case Priority::kHigh:
      return "high";
  }
  return "?";
}

namespace {

long env_long(const char* name, long fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  return (end != env && *end == '\0' && v >= 0) ? v : fallback;
}

double env_fraction(const char* name, double fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const double v = std::strtod(env, &end);
  return (end != env && *end == '\0' && v >= 0.0 && v <= 1.0) ? v
                                                              : fallback;
}

}  // namespace

ServiceOptions service_options_from_env(ServiceOptions base) {
  const long depth =
      env_long("SMMKIT_QUEUE_DEPTH",
               static_cast<long>(base.queue_depth));
  if (depth > 0) base.queue_depth = static_cast<std::size_t>(depth);
  base.default_deadline_ms =
      env_long("SMMKIT_DEFAULT_DEADLINE_MS", base.default_deadline_ms);
  const double low =
      env_fraction("SMMKIT_SHED_LOW_WATERMARK", base.shed_low_watermark);
  const double high =
      env_fraction("SMMKIT_SHED_HIGH_WATERMARK", base.shed_high_watermark);
  // The ctor requires low <= high; an env pair that violates it is
  // ignored as a whole, like any other unparsable value — a
  // misconfigured scrape knob must not turn into a startup throw.
  if (low <= high) {
    base.shed_low_watermark = low;
    base.shed_high_watermark = high;
  }
  return base;
}

void Ticket::cancel() {
  if (state_ != nullptr) state_->cancel.request_cancel();
}

const Result& Ticket::wait() const& {
  static const Result invalid{false, ErrorCode::kPrecondition,
                              "wait() on an invalid ticket"};
  if (state_ == nullptr) return invalid;
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [&] { return state_->done; });
  return state_->result;
}

Result Ticket::wait() && { return static_cast<const Ticket&>(*this).wait(); }

bool Ticket::done() const {
  if (state_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->done;
}

SmmService::SmmService(ServiceOptions options)
    : options_(options), breaker_(options.breaker) {
  SMM_EXPECT(options_.queue_depth > 0, "service needs a queue");
  SMM_EXPECT(options_.lanes >= 1, "service needs at least one lane");
  SMM_EXPECT(options_.threads_per_request >= 1,
             "service needs at least one thread per request");
  SMM_EXPECT(options_.shed_low_watermark <= options_.shed_high_watermark,
             "shed watermarks must be ordered low <= high");
  const model::ParallelCostModel model =
      options_.calibrated_cost ? core::calibrated_cost_model()
                               : model::reference_cost_model();
  flop_ns_ = model.flop_ns;
  dispatch_ns_ = model.dispatch_ns;
  seen_pool_quarantines_ =
      robust::health().pool_quarantines.load(std::memory_order_relaxed);
  lanes_.reserve(static_cast<std::size_t>(options_.lanes));
  for (int i = 0; i < options_.lanes; ++i)
    lanes_.emplace_back([this] { lane_main(); });
}

SmmService::~SmmService() { shutdown(); }

double SmmService::estimate_cost_ns(index_t m, index_t n, index_t k) const {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
             static_cast<double>(k) * flop_ns_ +
         dispatch_ns_;
}

void SmmService::complete(
    const std::shared_ptr<detail::RequestState>& state, Result result) {
  std::lock_guard<std::mutex> lock(state->mu);
  if (state->done) return;
  state->result = std::move(result);
  state->done = true;
  state->cv.notify_all();
}

Ticket SmmService::admit(Request request) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  robust::health().service_submitted.fetch_add(1,
                                               std::memory_order_relaxed);
  Ticket ticket(request.state);

  // Refusals complete the ticket immediately — the entire decision is one
  // mutex-guarded inspection of the queue counters, O(µs), no plan work.
  const auto refuse = [&](ErrorCode code, std::string msg, bool is_shed,
                          bool is_breaker) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    robust::health().service_rejected.fetch_add(1,
                                                std::memory_order_relaxed);
    if (is_shed) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      robust::health().service_shed.fetch_add(1, std::memory_order_relaxed);
    }
    if (is_breaker) {
      breaker_rejections_.fetch_add(1, std::memory_order_relaxed);
      robust::health().service_breaker_rejections.fetch_add(
          1, std::memory_order_relaxed);
    }
    complete(request.state, Result{false, code, std::move(msg)});
    return ticket;
  };

  std::shared_ptr<detail::RequestState> victim;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (state_ != State::kRunning) {
      lock.unlock();
      return refuse(ErrorCode::kShuttingDown,
                    "smm service: draining, no new work admitted", false,
                    false);
    }

    // Load shedding: above the watermarks, lower classes are refused
    // outright so the remaining depth is reserved for the traffic that
    // matters (Table II's lesson — queueing into sync-bound collapse
    // serves nobody).
    const double fill = static_cast<double>(queued_) /
                        static_cast<double>(options_.queue_depth);
    if ((request.priority == Priority::kLow &&
         fill >= options_.shed_low_watermark) ||
        (request.priority <= Priority::kNormal &&
         fill >= options_.shed_high_watermark)) {
      lock.unlock();
      return refuse(
          ErrorCode::kOverloaded,
          strprintf("smm service: shed %s-priority request at %.0f%% fill",
                    to_string(request.priority), fill * 100.0),
          true, false);
    }

    // Cost budget: bounds queue *accumulation*, not request size — an
    // oversized request still runs when it has the queue to itself.
    if (options_.cost_budget_ns > 0.0 && queued_ > 0 &&
        queued_cost_ns_ + request.est_cost_ns > options_.cost_budget_ns) {
      lock.unlock();
      return refuse(ErrorCode::kOverloaded,
                    "smm service: queued-cost budget exhausted", false,
                    false);
    }

    // At a hard-full queue a higher class may displace the newest entry
    // of a strictly lower one; identify the victim's class now but pop
    // it only once the arrival is certain to be admitted.
    int victim_class = -1;
    if (queued_ >= options_.queue_depth) {
      for (int p = 0; p < static_cast<int>(request.priority); ++p) {
        if (queues_[p].empty()) continue;
        victim_class = p;
        break;
      }
      if (victim_class < 0) {
        lock.unlock();
        return refuse(ErrorCode::kOverloaded,
                      "smm service: queue full", false, false);
      }
    }

    // The breaker is consulted after every load-shaped refusal (so a
    // refused request never consumes the half-open probe slot) but
    // before the eviction is performed (so a breaker refusal strands no
    // already-popped victim — it simply stays queued).
    if (!breaker_.allow()) {
      lock.unlock();
      return refuse(ErrorCode::kOverloaded,
                    "smm service: circuit breaker open", false, true);
    }

    if (victim_class >= 0) {
      auto& q = queues_[victim_class];
      victim = std::move(q.back().state);
      queued_cost_ns_ -= q.back().est_cost_ns;
      q.pop_back();
      --queued_;
    }

    queued_cost_ns_ += request.est_cost_ns;
    queues_[static_cast<int>(request.priority)].push_back(
        std::move(request));
    ++queued_;
  }
  work_cv_.notify_one();
  admitted_.fetch_add(1, std::memory_order_relaxed);
  robust::health().service_admitted.fetch_add(1, std::memory_order_relaxed);

  if (victim != nullptr) {
    // The victim was *admitted* (it is counted in admitted_) and is now
    // terminated post-admission, so it lands in its own counter — not in
    // rejected_/shed_, which partition *submissions*: submitted ==
    // admitted + rejected, and admitted work ends completed, evicted,
    // cancelled, deadline-missed, or failed.
    evicted_.fetch_add(1, std::memory_order_relaxed);
    robust::health().service_evictions.fetch_add(1,
                                                 std::memory_order_relaxed);
    complete(victim,
             Result{false, ErrorCode::kOverloaded,
                    "smm service: evicted by a higher-priority arrival"});
  }
  return ticket;
}

void SmmService::observe_pool_health() {
  const std::size_t quarantines =
      robust::health().pool_quarantines.load(std::memory_order_relaxed);
  bool trip = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (quarantines > seen_pool_quarantines_) {
      seen_pool_quarantines_ = quarantines;
      trip = true;
    }
  }
  if (trip) breaker_.trip();
}

void SmmService::execute(Request& request) {
  const CancelToken token = request.state->cancel.token();
  Result result;
  // Queued-but-unstarted stop: complete without touching C (or any plan
  // state) — exactly the "work nobody is waiting for" shedding exists
  // to avoid.
  if (token.cancel_requested()) {
    result = {false, ErrorCode::kCancelled,
              "smm service: cancelled while queued"};
  } else if (token.expired()) {
    result = {false, ErrorCode::kDeadlineExceeded,
              "smm service: deadline passed while queued"};
  } else {
    try {
      request.run(token);
      result.ok = true;
    } catch (const Error& e) {
      ErrorCode code = e.code();
      // A stop inside a parallel plan poisons the peers' barriers, so
      // the aggregate can surface as kWorkerPanic/kPoolTimeout; the
      // token knows the real reason.
      if ((code == ErrorCode::kWorkerPanic ||
           code == ErrorCode::kPoolTimeout) &&
          token.stop_requested()) {
        code = token.cancel_requested() ? ErrorCode::kCancelled
                                        : ErrorCode::kDeadlineExceeded;
      }
      result = {false, code, e.what()};
    } catch (const std::bad_alloc&) {
      result = {false, ErrorCode::kAlloc,
                "smm service: allocation failed"};
    } catch (const std::exception& e) {
      result = {false, ErrorCode::kUnknown, e.what()};
    }
  }

  if (result.ok) {
    completed_.fetch_add(1, std::memory_order_relaxed);
    robust::health().service_completed.fetch_add(1,
                                                 std::memory_order_relaxed);
    breaker_.on_success();
  } else {
    switch (result.code) {
      case ErrorCode::kCancelled:
        cancellations_.fetch_add(1, std::memory_order_relaxed);
        robust::health().service_cancellations.fetch_add(
            1, std::memory_order_relaxed);
        breaker_.on_neutral();
        break;
      case ErrorCode::kDeadlineExceeded:
        deadline_misses_.fetch_add(1, std::memory_order_relaxed);
        robust::health().service_deadline_misses.fetch_add(
            1, std::memory_order_relaxed);
        breaker_.on_neutral();
        break;
      case ErrorCode::kNonFinite:
      case ErrorCode::kBadShape:
      case ErrorCode::kAlias:
      case ErrorCode::kPrecondition:
        // The request's own fault: says nothing about the substrate.
        breaker_.on_neutral();
        break;
      case ErrorCode::kDataCorrupted:
      case ErrorCode::kCacheCorrupted:
        // Silent-data-corruption defenses fired and could not repair:
        // the substrate is actively producing wrong bytes — the
        // strongest possible signal to trip the breaker.
        breaker_.on_failure();
        break;
      default:
        // Infrastructure-class failure (dead worker, pool timeout,
        // allocation collapse): counts toward tripping the breaker.
        breaker_.on_failure();
        break;
    }
  }
  observe_pool_health();
  complete(request.state, std::move(result));
}

void SmmService::reap_stopped_locked() {
  for (auto& q : queues_) {
    for (auto it = q.begin(); it != q.end();) {
      const CancelToken token = it->state->cancel.token();
      if (!token.stop_requested()) {
        ++it;
        continue;
      }
      Result result =
          token.cancel_requested()
              ? Result{false, ErrorCode::kCancelled,
                       "smm service: cancelled while queued"}
              : Result{false, ErrorCode::kDeadlineExceeded,
                       "smm service: deadline passed while queued"};
      if (result.code == ErrorCode::kCancelled) {
        cancellations_.fetch_add(1, std::memory_order_relaxed);
        robust::health().service_cancellations.fetch_add(
            1, std::memory_order_relaxed);
      } else {
        deadline_misses_.fetch_add(1, std::memory_order_relaxed);
        robust::health().service_deadline_misses.fetch_add(
            1, std::memory_order_relaxed);
      }
      // Mirrors execute()'s queued pre-check: a stop is neutral for the
      // breaker, but must still release a half-open probe slot the
      // request may hold from admission.
      breaker_.on_neutral();
      complete(it->state, std::move(result));
      queued_cost_ns_ -= it->est_cost_ns;
      --queued_;
      it = q.erase(it);
    }
  }
}

void SmmService::lane_main() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock,
                  [&] { return state_ == State::kStopped || queued_ > 0; });
    // Deadline-aware sweep before picking work: under sustained
    // higher-priority pressure a queued lower-class item may never be
    // popped, yet its caller's deadline keeps running. Reaping stopped
    // items here bounds time-to-terminal by the lane's pop cadence
    // instead of the item's (possibly starved) queue position.
    if (queued_ > 0) reap_stopped_locked();
    if (queued_ == 0) {
      if (in_flight_ == 0) drained_cv_.notify_all();
      if (state_ == State::kStopped) return;
      continue;
    }
    Request request;
    for (int p = 2; p >= 0; --p) {
      auto& q = queues_[p];
      if (q.empty()) continue;
      request = std::move(q.front());
      q.pop_front();
      break;
    }
    --queued_;
    queued_cost_ns_ -= request.est_cost_ns;
    ++in_flight_;
    lock.unlock();
    execute(request);
    lock.lock();
    --in_flight_;
    if (queued_ == 0 && in_flight_ == 0) drained_cv_.notify_all();
  }
}

void SmmService::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  if (state_ == State::kRunning) state_ = State::kDraining;
  drained_cv_.wait(lock, [&] { return queued_ == 0 && in_flight_ == 0; });
}

void SmmService::shutdown() {
  drain();
  std::vector<std::thread> lanes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    state_ = State::kStopped;
    lanes.swap(lanes_);
  }
  work_cv_.notify_all();
  for (auto& lane : lanes) lane.join();
  // The service promised its caller a clean exit: after this, neither the
  // service nor the pool underneath it owns a live thread.
  par::WorkerPool::instance().release_threads();
}

SmmService::Stats SmmService::stats() const {
  Stats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.evicted = evicted_.load(std::memory_order_relaxed);
  s.breaker_rejections =
      breaker_rejections_.load(std::memory_order_relaxed);
  s.deadline_misses = deadline_misses_.load(std::memory_order_relaxed);
  s.cancellations = cancellations_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  s.queued = queued_;
  s.in_flight = in_flight_;
  return s;
}

template <typename T>
Ticket SmmService::submit(T alpha, ConstMatrixView<T> a,
                          ConstMatrixView<T> b, T beta, MatrixView<T> c,
                          Priority priority, long deadline_ms) {
  SMM_EXPECT_CODE(a.rows() == c.rows() && b.cols() == c.cols() &&
                      a.cols() == b.rows(),
                  ErrorCode::kBadShape,
                  "service submit: dimension mismatch");
  SMM_EXPECT_CODE((a.empty() || a.data() != nullptr) &&
                      (b.empty() || b.data() != nullptr) &&
                      (c.empty() || c.data() != nullptr),
                  ErrorCode::kBadShape,
                  "service submit: operand has null data");
  Request request;
  request.priority = priority;
  request.est_cost_ns = estimate_cost_ns(c.rows(), c.cols(), a.cols());
  request.state = std::make_shared<detail::RequestState>();
  const long ms =
      deadline_ms > 0 ? deadline_ms : options_.default_deadline_ms;
  if (ms > 0)
    request.state->cancel = CancelSource(std::chrono::steady_clock::now() +
                                         std::chrono::milliseconds(ms));
  const int threads = options_.threads_per_request;
  const core::SmmOptions gemm = options_.gemm;
  request.run = [alpha, a, b, beta, c, threads,
                 gemm](const CancelToken& token) {
    core::smm_gemm(alpha, a, b, beta, c, threads, gemm, token);
  };
  return admit(std::move(request));
}

template Ticket SmmService::submit(float, ConstMatrixView<float>,
                                   ConstMatrixView<float>, float,
                                   MatrixView<float>, Priority, long);
template Ticket SmmService::submit(double, ConstMatrixView<double>,
                                   ConstMatrixView<double>, double,
                                   MatrixView<double>, Priority, long);

template <typename T>
Ticket SmmService::submit_batch(T alpha, std::vector<BatchItem<T>> items,
                                T beta, Priority priority,
                                long deadline_ms) {
  auto batch =
      std::make_shared<std::vector<core::GemmBatchItem<T>>>();
  batch->reserve(items.size());
  double est = 0.0;
  for (const auto& item : items) {
    batch->push_back({item.a, item.b, item.c});
    est += estimate_cost_ns(item.c.rows(), item.c.cols(), item.a.cols());
  }
  Request request;
  request.priority = priority;
  request.est_cost_ns = est;
  request.state = std::make_shared<detail::RequestState>();
  const long ms =
      deadline_ms > 0 ? deadline_ms : options_.default_deadline_ms;
  if (ms > 0)
    request.state->cancel = CancelSource(std::chrono::steady_clock::now() +
                                         std::chrono::milliseconds(ms));
  const int threads = options_.threads_per_request;
  request.run = [alpha, beta, batch, threads](const CancelToken& token) {
    core::batched_smm(alpha, *batch, beta, core::default_plan_cache(),
                      threads, &token);
  };
  return admit(std::move(request));
}

template Ticket SmmService::submit_batch(float,
                                         std::vector<BatchItem<float>>,
                                         float, Priority, long);
template Ticket SmmService::submit_batch(double,
                                         std::vector<BatchItem<double>>,
                                         double, Priority, long);

}  // namespace smm::service
