#include "src/service/circuit_breaker.h"

#include "src/robust/health.h"

namespace smm::service {

const char* to_string(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "?";
}

CircuitBreaker::CircuitBreaker() : CircuitBreaker(Options{}) {}

CircuitBreaker::CircuitBreaker(Options options) : options_(options) {}

bool CircuitBreaker::allow() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (std::chrono::steady_clock::now() < reopen_at_) return false;
      state_ = BreakerState::kHalfOpen;
      probe_in_flight_ = true;  // this caller is the probe
      return true;
    case BreakerState::kHalfOpen:
      if (probe_in_flight_) return false;
      probe_in_flight_ = true;
      return true;
  }
  return false;
}

void CircuitBreaker::on_success() {
  std::lock_guard<std::mutex> lock(mu_);
  state_ = BreakerState::kClosed;
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
}

void CircuitBreaker::on_failure() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == BreakerState::kHalfOpen) {
    trip_locked();  // the probe failed: straight back to open
    return;
  }
  if (++consecutive_failures_ >= options_.failure_threshold) trip_locked();
}

void CircuitBreaker::on_neutral() {
  std::lock_guard<std::mutex> lock(mu_);
  probe_in_flight_ = false;
}

void CircuitBreaker::trip() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ != BreakerState::kOpen) trip_locked();
}

void CircuitBreaker::trip_locked() {
  state_ = BreakerState::kOpen;
  reopen_at_ = std::chrono::steady_clock::now() + options_.open_for;
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
  ++trips_;
  robust::health().service_breaker_trips.fetch_add(
      1, std::memory_order_relaxed);
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

std::size_t CircuitBreaker::trips() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trips_;
}

}  // namespace smm::service
