#include "src/kernels/schedule.h"

#include "src/common/error.h"
#include "src/common/str.h"

namespace smm::kern {

namespace {

// Register-id conventions (architectural ids; the pipeline model renames):
//   0..39   C accumulators
//   40..55  A operand registers (two banks of 8 for pipelined schedules)
//   60..75  B operand registers (two banks of 8)
//   80..89  epilogue temporaries
//   90..95  fmul temporaries (non-fused codegen)
//   100..   integer registers (pointers, loop counter)
constexpr std::int16_t kAccBase = 0;
constexpr std::int16_t kARegBase = 40;
constexpr std::int16_t kBRegBase = 60;
constexpr std::int16_t kBankStride = 8;
constexpr std::int16_t kEpiBase = 80;
constexpr std::int16_t kMulTmpBase = 90;
constexpr std::int16_t kIntPA = 100;
constexpr std::int16_t kIntPB = 101;
constexpr std::int16_t kIntCounter = 102;
constexpr std::int16_t kIntPC = 103;

struct Builder {
  const ScheduleSpec& spec;
  int n_avec;    // A registers per k-iteration
  int n_breg;    // B registers per k-iteration
  int n_acc;     // accumulator registers

  explicit Builder(const ScheduleSpec& s)
      : spec(s),
        n_avec((s.mr + s.lanes - 1) / s.lanes),
        n_breg(b_regs_per_iter(s)),
        n_acc(((s.mr + s.lanes - 1) / s.lanes) * s.nr) {}

  static int b_regs_per_iter(const ScheduleSpec& s) {
    switch (s.b_access) {
      case BAccess::kPackedVec:
        return (s.nr + s.lanes - 1) / s.lanes;
      case BAccess::kScalarPairs:
        return (s.nr + 1) / 2;
      case BAccess::kStridedScalar:
        return s.nr;
    }
    return s.nr;
  }

  // Register holding B element j of the current iteration, given the bank.
  [[nodiscard]] std::int16_t b_reg_for(int j, int bank) const {
    int slot = 0;
    switch (spec.b_access) {
      case BAccess::kPackedVec:
        slot = j / spec.lanes;
        break;
      case BAccess::kScalarPairs:
        slot = j / 2;
        break;
      case BAccess::kStridedScalar:
        slot = j;
        break;
    }
    return static_cast<std::int16_t>(kBRegBase + bank * kBankStride + slot);
  }

  [[nodiscard]] std::int16_t a_reg_for(int rv, int bank) const {
    return static_cast<std::int16_t>(kARegBase + bank * kBankStride + rv);
  }

  // Loads for one k-iteration into the given register bank, B first then A
  // (the order the paper's Fig. 7 listing uses).
  [[nodiscard]] std::vector<Uop> iteration_loads(int bank) const {
    std::vector<Uop> out;
    switch (spec.b_access) {
      case BAccess::kPackedVec:
        for (int s = 0; s < n_breg; ++s)
          out.push_back({UopKind::kLoadVec, Stream::kB,
                         static_cast<std::int16_t>(kBRegBase +
                                                   bank * kBankStride + s),
                         kIntPB, -1, -1});
        break;
      case BAccess::kScalarPairs:
        for (int s = 0; s < n_breg; ++s)
          out.push_back({UopKind::kLoadPair, Stream::kB,
                         static_cast<std::int16_t>(kBRegBase +
                                                   bank * kBankStride + s),
                         kIntPB, -1, -1});
        break;
      case BAccess::kStridedScalar:
        for (int s = 0; s < n_breg; ++s)
          out.push_back({UopKind::kLoadScalar, Stream::kB,
                         static_cast<std::int16_t>(kBRegBase +
                                                   bank * kBankStride + s),
                         kIntPB, -1, -1});
        break;
    }
    const bool scalar_a = spec.mr < spec.lanes;
    for (int rv = 0; rv < n_avec; ++rv)
      out.push_back({scalar_a ? UopKind::kLoadScalar : UopKind::kLoadVec,
                     Stream::kA, a_reg_for(rv, bank), kIntPA, -1, -1});
    return out;
  }

  // FMAs for one k-iteration reading the given bank, grouped by B element
  // (Fig. 7 order: all row-vectors for b[0], then b[1], ...). With
  // broadcast_b, each B element is first spread across a register (dup).
  [[nodiscard]] std::vector<Uop> iteration_fmas(int bank) const {
    std::vector<Uop> out;
    int tmp = 0;
    for (int j = 0; j < spec.nr; ++j) {
      std::int16_t breg = b_reg_for(j, bank);
      if (spec.broadcast_b) {
        const auto bcast =
            static_cast<std::int16_t>(kMulTmpBase + 6 + (j % 4));
        out.push_back({UopKind::kDup, Stream::kNone, bcast, breg, -1, -1});
        breg = bcast;
      }
      for (int rv = 0; rv < n_avec; ++rv) {
        const auto acc =
            static_cast<std::int16_t>(kAccBase + j * n_avec + rv);
        const std::int16_t areg = a_reg_for(rv, bank);
        if (spec.fuse_mul_add) {
          out.push_back({UopKind::kFma, Stream::kNone, acc, areg, breg, acc});
        } else {
          const auto t =
              static_cast<std::int16_t>(kMulTmpBase + (tmp++ % 6));
          out.push_back({UopKind::kFmul, Stream::kNone, t, areg, breg, -1});
          out.push_back({UopKind::kFadd, Stream::kNone, acc, acc, t, -1});
        }
      }
    }
    return out;
  }

  [[nodiscard]] std::vector<Uop> loop_overhead() const {
    return {
        {UopKind::kInt, Stream::kNone, kIntPA, kIntPA, -1, -1},
        {UopKind::kInt, Stream::kNone, kIntPB, kIntPB, -1, -1},
        {UopKind::kInt, Stream::kNone, kIntCounter, kIntCounter, -1, -1},
        {UopKind::kBranch, Stream::kNone, -1, kIntCounter, -1, -1},
    };
  }

  [[nodiscard]] std::vector<Uop> make_prologue(bool preload_bank0) const {
    std::vector<Uop> out;
    // Address setup.
    out.push_back({UopKind::kInt, Stream::kNone, kIntPA, -1, -1, -1});
    out.push_back({UopKind::kInt, Stream::kNone, kIntPB, -1, -1, -1});
    out.push_back({UopKind::kInt, Stream::kNone, kIntPC, -1, -1, -1});
    out.push_back({UopKind::kInt, Stream::kNone, kIntCounter, -1, -1, -1});
    for (int i = 0; i < n_acc; ++i)
      out.push_back({UopKind::kVZero, Stream::kNone,
                     static_cast<std::int16_t>(kAccBase + i), -1, -1, -1});
    if (preload_bank0) {
      auto loads = iteration_loads(/*bank=*/0);
      out.insert(out.end(), loads.begin(), loads.end());
    }
    return out;
  }

  // C-tile writeback: load C vector, fold in the accumulator, store
  // (Algorithm 1 lines 11-13), plus the alpha scaling.
  [[nodiscard]] std::vector<Uop> make_epilogue() const {
    std::vector<Uop> out;
    out.push_back({UopKind::kInt, Stream::kNone, kIntPC, kIntPC, -1, -1});
    for (int i = 0; i < n_acc; ++i) {
      const auto acc = static_cast<std::int16_t>(kAccBase + i);
      const auto tmp = static_cast<std::int16_t>(kEpiBase + (i % 8));
      out.push_back({UopKind::kLoadVec, Stream::kC, tmp, kIntPC, -1, -1});
      out.push_back({UopKind::kFma, Stream::kNone, acc, tmp, acc, acc});
      out.push_back({UopKind::kStoreVec, Stream::kC, -1, acc, kIntPC, -1});
    }
    return out;
  }
};

}  // namespace

const char* to_string(ScheduleStyle style) {
  switch (style) {
    case ScheduleStyle::kPipelined:
      return "pipelined";
    case ScheduleStyle::kClustered:
      return "clustered";
    case ScheduleStyle::kSimple:
      return "simple";
  }
  return "?";
}

const char* to_string(BAccess access) {
  switch (access) {
    case BAccess::kPackedVec:
      return "packed-vec";
    case BAccess::kScalarPairs:
      return "scalar-pairs";
    case BAccess::kStridedScalar:
      return "strided-scalar";
  }
  return "?";
}

std::string ScheduleSpec::describe() const {
  return strprintf("%dx%d u%d %s %s%s%s", mr, nr, unroll, to_string(style),
                   to_string(b_access), fuse_mul_add ? "" : " no-fma",
                   broadcast_b ? " dup-b" : "");
}

KernelSchedule build_schedule(const ScheduleSpec& spec) {
  SMM_EXPECT(spec.mr > 0 && spec.nr > 0 && spec.unroll > 0 && spec.lanes > 0,
             "schedule spec dims must be positive");
  SMM_EXPECT(spec.style != ScheduleStyle::kPipelined || spec.unroll % 2 == 0,
             "pipelined schedules need an even unroll (bank rotation)");
  Builder b(spec);
  SMM_EXPECT(b.n_avec <= kBankStride && b.n_breg <= kBankStride,
             "tile too wide for the schedule register banks");

  KernelSchedule sched;
  sched.mr = spec.mr;
  sched.nr = spec.nr;
  sched.name = spec.describe();

  std::vector<Uop> body;
  switch (spec.style) {
    case ScheduleStyle::kPipelined: {
      sched.unroll = spec.unroll;
      // Iteration t computes from bank t%2 while its loads for t+1 fill the
      // other bank, spread between the FMAs. Bank 0 is preloaded in the
      // prologue; after an even unroll the banks line up again.
      for (int t = 0; t < spec.unroll; ++t) {
        const int bank = t % 2;
        auto fmas = b.iteration_fmas(bank);
        auto loads = b.iteration_loads(1 - bank);
        const std::size_t gap =
            loads.empty() ? 1 : (fmas.size() + loads.size() - 1) /
                                     loads.size();
        std::size_t li = 0;
        for (std::size_t fi = 0; fi < fmas.size(); ++fi) {
          // Interleave: a load after every `gap` FMAs, starting early so
          // the last load lands well before the next iteration needs it.
          if (li < loads.size() && fi % gap == 0) body.push_back(loads[li++]);
          body.push_back(fmas[fi]);
        }
        while (li < loads.size()) body.push_back(loads[li++]);
      }
      auto tail = b.loop_overhead();
      body.insert(body.end(), tail.begin(), tail.end());
      sched.prologue = b.make_prologue(/*preload_bank0=*/true);
      break;
    }
    case ScheduleStyle::kClustered: {
      sched.unroll = spec.unroll;
      // Fig. 7 layout: every iteration reloads the same single bank right
      // before its FMAs — minimal load-to-use distance.
      for (int t = 0; t < spec.unroll; ++t) {
        auto loads = b.iteration_loads(/*bank=*/0);
        auto fmas = b.iteration_fmas(/*bank=*/0);
        body.insert(body.end(), loads.begin(), loads.end());
        body.insert(body.end(), fmas.begin(), fmas.end());
      }
      auto tail = b.loop_overhead();
      body.insert(body.end(), tail.begin(), tail.end());
      sched.prologue = b.make_prologue(/*preload_bank0=*/false);
      break;
    }
    case ScheduleStyle::kSimple: {
      sched.unroll = 1;
      // Compiler-style: one k per loop trip, full loop control each trip.
      auto loads = b.iteration_loads(/*bank=*/0);
      auto fmas = b.iteration_fmas(/*bank=*/0);
      body.insert(body.end(), loads.begin(), loads.end());
      body.insert(body.end(), fmas.begin(), fmas.end());
      auto tail = b.loop_overhead();
      body.insert(body.end(), tail.begin(), tail.end());
      sched.prologue = b.make_prologue(/*preload_bank0=*/false);
      break;
    }
  }
  sched.body = std::move(body);
  sched.epilogue = b.make_epilogue();
  sched.fma_per_body = b.n_avec * spec.nr * sched.unroll;
  return sched;
}

KernelSchedule fig7_openblas_8x4_schedule() {
  // ldp s12,s13,[pB]; ldp s14,s15,[pB]; ldr q4,[pA]; ldr q5,[pA];
  // fmla v16,v4,v12[0]; fmla v17,v5,v12[0]; ... fmla v29,v5,v15[0]
  // == clustered 8x4 with scalar-pair B loads.
  ScheduleSpec spec;
  spec.style = ScheduleStyle::kClustered;
  spec.mr = 8;
  spec.nr = 4;
  spec.unroll = 2;
  spec.lanes = 4;
  spec.b_access = BAccess::kScalarPairs;
  KernelSchedule sched = build_schedule(spec);
  sched.name = "openblas-fig7-8x4";
  return sched;
}

}  // namespace smm::kern
