#include "src/kernels/microkernel.h"

#include "src/common/error.h"
#include "src/simd/vec.h"

namespace smm::kern {

template <typename T>
void generic_microkernel(index_t kc, T alpha, T beta,
                         const KernelOperands<T>& ops, index_t mr_eff,
                         index_t nr_eff) {
  // Accumulate in a local tile so C is read/written exactly once
  // (Algorithm 1, lines 3 and 11-13).
  constexpr index_t kMaxTile = 32;
  SMM_EXPECT(mr_eff >= 0 && mr_eff <= kMaxTile && nr_eff >= 0 &&
                 nr_eff <= kMaxTile,
             "generic_microkernel: tile too large");
  T acc[kMaxTile][kMaxTile];
  for (index_t i = 0; i < mr_eff; ++i)
    for (index_t j = 0; j < nr_eff; ++j) acc[i][j] = T(0);

  for (index_t k = 0; k < kc; ++k) {
    for (index_t j = 0; j < nr_eff; ++j) {
      const T bkj = ops.b[b_offset(ops, k, j)];
      for (index_t i = 0; i < mr_eff; ++i) {
        acc[i][j] += ops.a[a_offset(ops, i, k)] * bkj;
      }
    }
  }

  for (index_t j = 0; j < nr_eff; ++j) {
    for (index_t i = 0; i < mr_eff; ++i) {
      T* c = ops.c + i * ops.c_rs + j * ops.c_cs;
      // beta == 0 must not read C (it may hold uninitialized data).
      *c = (beta == T(0)) ? alpha * acc[i][j] : alpha * acc[i][j] + beta * *c;
    }
  }
}

namespace {

// A sliver pointer for the 4-wide row group starting at row r (r % lanes
// == 0), column k. Contiguity is guaranteed by the tile_microkernel
// addressing contract.
template <typename T>
const T* a_group_ptr(const KernelOperands<T>& ops, index_t r, index_t k) {
  return ops.a + a_offset(ops, r, k);
}

}  // namespace

template <typename T, int MR, int NR>
void tile_microkernel(index_t kc, T alpha, T beta,
                      const KernelOperands<T>& ops, index_t mr_eff,
                      index_t nr_eff) {
  using V = simd::Vec<T>;
  constexpr index_t kLanes = V::lanes;
  static_assert(MR % kLanes == 0, "MR must be a multiple of vector width");
  constexpr index_t kRowVecs = MR / kLanes;
  SMM_EXPECT(mr_eff == MR && nr_eff == NR,
             "tile_microkernel handles only full tiles");
  SMM_EXPECT(ops.a_ps % kLanes == 0 && ops.a_istride == 1,
             "tile_microkernel requires contiguous vector-aligned A panels");

  // The register block: kRowVecs x NR accumulators, mirroring how the
  // ARMv8 kernels hold the C tile in v-registers.
  V acc[kRowVecs][NR];
  for (index_t rv = 0; rv < kRowVecs; ++rv)
    for (index_t j = 0; j < NR; ++j) acc[rv][j] = V::zero();

  for (index_t k = 0; k < kc; ++k) {
    V av[kRowVecs];
    for (index_t rv = 0; rv < kRowVecs; ++rv)
      av[rv] = V::load(a_group_ptr(ops, rv * kLanes, k));
    for (index_t j = 0; j < NR; ++j) {
      const T bkj = ops.b[b_offset(ops, k, j)];
      for (index_t rv = 0; rv < kRowVecs; ++rv)
        simd::fma_scalar(acc[rv][j], av[rv], bkj);
    }
  }

  const bool c_col_contig = (ops.c_rs == 1);
  for (index_t j = 0; j < NR; ++j) {
    if (c_col_contig) {
      for (index_t rv = 0; rv < kRowVecs; ++rv) {
        T* c = ops.c + (rv * kLanes) * ops.c_rs + j * ops.c_cs;
        V old = (beta == T(0)) ? V::zero() : V::load(c);
        V out = V::broadcast(alpha) * acc[rv][j] + V::broadcast(beta) * old;
        out.store(c);
      }
    } else {
      for (index_t i = 0; i < MR; ++i) {
        T* c = ops.c + i * ops.c_rs + j * ops.c_cs;
        const T val = alpha * acc[i / kLanes][j].lane(i % kLanes);
        *c = (beta == T(0)) ? val : val + beta * *c;
      }
    }
  }
}

// ---- Explicit instantiations ---------------------------------------------

template void generic_microkernel<float>(index_t, float, float,
                                         const KernelOperands<float>&,
                                         index_t, index_t);
template void generic_microkernel<double>(index_t, double, double,
                                          const KernelOperands<double>&,
                                          index_t, index_t);

#define SMM_INSTANTIATE_TILE(MR, NR)                                     \
  template void tile_microkernel<float, MR, NR>(                         \
      index_t, float, float, const KernelOperands<float>&, index_t,      \
      index_t);                                                          \
  template void tile_microkernel<double, MR, NR>(                        \
      index_t, double, double, const KernelOperands<double>&, index_t,   \
      index_t)

SMM_INSTANTIATE_TILE(16, 4);
SMM_INSTANTIATE_TILE(16, 2);
SMM_INSTANTIATE_TILE(16, 1);
SMM_INSTANTIATE_TILE(12, 4);
SMM_INSTANTIATE_TILE(8, 12);
SMM_INSTANTIATE_TILE(8, 8);
SMM_INSTANTIATE_TILE(8, 4);
SMM_INSTANTIATE_TILE(8, 2);
SMM_INSTANTIATE_TILE(8, 1);
SMM_INSTANTIATE_TILE(4, 4);
SMM_INSTANTIATE_TILE(4, 2);
SMM_INSTANTIATE_TILE(4, 1);

#undef SMM_INSTANTIATE_TILE

}  // namespace smm::kern
