// Kernel instruction schedules.
//
// A KernelSchedule is an abstract uop stream describing the *instruction
// layout* of a micro-kernel the way its ARMv8 assembly would be written:
// which loads/FMAs appear in what order, with which register dependencies.
// The native micro-kernels (microkernel.cpp) define what a kernel computes;
// the schedule defines how the paper's assembly would behave on the modelled
// pipeline. bench/fig7_schedule_quality prices the literal OpenBLAS 8x4
// edge-kernel layout from the paper's Fig. 7 against a software-pipelined
// layout of the same tile.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace smm::kern {

/// Micro-operation kinds. Mapped to issue-port classes by the pipeline
/// model: loads/stores -> LS ports, FMA/FMUL/FADD/VZERO -> FP ports,
/// INT/BRANCH -> integer ports.
enum class UopKind : std::uint8_t {
  kLoadVec,     ///< 128-bit vector load (ldr q)
  kLoadPair,    ///< scalar pair load (ldp s/d) — one LS slot, two results
  kLoadScalar,  ///< scalar load (ldr s/d)
  kStoreVec,    ///< 128-bit vector store (str q)
  kFma,         ///< vector fused multiply-add (fmla, incl. by-lane form)
  kFmul,        ///< vector multiply (fmul)
  kFadd,        ///< vector add (fadd)
  kVZero,       ///< register zeroing (movi)
  kDup,         ///< broadcast an element across lanes (dup v, v.s[i])
  kInt,         ///< scalar integer op (address/index arithmetic)
  kBranch       ///< conditional branch (loop back-edge)
};

/// Which GEMM operand a memory uop touches; the plan pricer assigns each
/// stream its own latency from the cache-residency analysis.
enum class Stream : std::uint8_t { kNone, kA, kB, kC };

/// One micro-op. Registers are architectural ids (any small ints; the
/// pipeline model renames, so only read-after-write ordering matters).
/// `src3` carries the accumulator input of an FMA.
struct Uop {
  UopKind kind = UopKind::kInt;
  Stream stream = Stream::kNone;
  std::int16_t dst = -1;
  std::int16_t src1 = -1;
  std::int16_t src2 = -1;
  std::int16_t src3 = -1;
};

/// Complete schedule: prologue (address setup, accumulator zeroing), a
/// steady-state body covering `unroll` k-iterations, and an epilogue
/// (C tile load/update/store, Algorithm 1 lines 11-13).
struct KernelSchedule {
  std::string name;
  int mr = 0;
  int nr = 0;
  int unroll = 1;
  std::vector<Uop> prologue;
  std::vector<Uop> body;
  std::vector<Uop> epilogue;
  /// Useful FMA uops per body (for efficiency accounting).
  int fma_per_body = 0;

  [[nodiscard]] index_t total_uops(index_t bodies) const {
    return static_cast<index_t>(prologue.size()) +
           bodies * static_cast<index_t>(body.size()) +
           static_cast<index_t>(epilogue.size());
  }
};

/// Instruction-layout families observed across the four libraries.
enum class ScheduleStyle : std::uint8_t {
  /// Software-pipelined, interleaved loads/FMAs, double-buffered operand
  /// registers — well-tuned assembly (OpenBLAS main kernel, BLIS, BLASFEO,
  /// and the reference SMM kernels).
  kPipelined,
  /// All loads clustered at the top of each k-iteration, short load-to-use
  /// distance, single-buffered registers — the paper's Fig. 7 layout used
  /// by OpenBLAS edge kernels.
  kClustered,
  /// Compiler-style scalar loop: unroll 1, loads immediately before use,
  /// loop-control overhead every iteration, no pipelining (Eigen).
  kSimple
};

const char* to_string(ScheduleStyle style);

/// How the schedule fetches B elements.
enum class BAccess : std::uint8_t {
  kPackedVec,      ///< contiguous nr values per k: vector loads
  kScalarPairs,    ///< ldp of scalar pairs (OpenBLAS Fig. 7)
  kStridedScalar,  ///< unpacked col-major B: one scalar load per element
};

const char* to_string(BAccess access);

/// Parameters from which build_schedule() synthesizes a KernelSchedule.
struct ScheduleSpec {
  ScheduleStyle style = ScheduleStyle::kPipelined;
  int mr = 8;
  int nr = 4;
  int unroll = 4;
  int lanes = 4;  ///< vector width in elements (4 = f32, 2 = f64)
  BAccess b_access = BAccess::kPackedVec;
  /// false models pre-FMA code generation (separate fmul+fadd).
  bool fuse_mul_add = true;
  /// true models codegen that broadcasts each B element into a full
  /// register (dup) before the FMA instead of using the by-lane fmla form —
  /// extra FP-port pressure (Eigen's generic lane handling).
  bool broadcast_b = false;

  [[nodiscard]] std::string describe() const;
};

/// Synthesize the uop stream for a spec. Register allocation, load
/// placement and FMA ordering follow the style (see ScheduleStyle).
KernelSchedule build_schedule(const ScheduleSpec& spec);

/// The literal OpenBLAS 8x4 single-precision edge micro-kernel body from
/// the paper's Fig. 7 (ldp/ldp/ldr/ldr then eight fmla-by-lane), unroll 2.
/// build_schedule({kClustered, 8, 4, 2, 4, kScalarPairs}) produces the
/// same layout; this function pins the exact figure for tests and benches.
KernelSchedule fig7_openblas_8x4_schedule();

}  // namespace smm::kern
