#include "src/kernels/registry.h"

#include <algorithm>

#include "src/common/error.h"
#include "src/common/str.h"
#include "src/kernels/schedules_armv8.h"

namespace smm::kern {

namespace {

// Dispatch table over the explicitly instantiated register-blocked tiles
// (microkernel.cpp). Any other tile falls back to the generic kernel.
template <typename T>
MicroKernelFn<T> specialized_fn(int mr, int nr) {
  const auto key = mr * 100 + nr;
  switch (key) {
    case 1604: return &tile_microkernel<T, 16, 4>;
    case 1602: return &tile_microkernel<T, 16, 2>;
    case 1601: return &tile_microkernel<T, 16, 1>;
    case 1204: return &tile_microkernel<T, 12, 4>;
    case 812:  return &tile_microkernel<T, 8, 12>;
    case 808:  return &tile_microkernel<T, 8, 8>;
    case 804:  return &tile_microkernel<T, 8, 4>;
    case 802:  return &tile_microkernel<T, 8, 2>;
    case 801:  return &tile_microkernel<T, 8, 1>;
    case 404:  return &tile_microkernel<T, 4, 4>;
    case 402:  return &tile_microkernel<T, 4, 2>;
    case 401:  return &tile_microkernel<T, 4, 1>;
    default:   return &generic_microkernel<T>;
  }
}

}  // namespace

template <typename T>
MicroKernelFn<T> native_tile_fn(int mr, int nr) {
  return specialized_fn<T>(mr, nr);
}
template MicroKernelFn<float> native_tile_fn<float>(int, int);
template MicroKernelFn<double> native_tile_fn<double>(int, int);

KernelId KernelRegistry::add(KernelInfo info) {
  info.id = static_cast<KernelId>(kernels_.size());
  info.f32 = specialized_fn<float>(info.mr, info.nr);
  info.f64 = specialized_fn<double>(info.mr, info.nr);
  kernels_.push_back(std::move(info));
  return kernels_.back().id;
}

KernelRegistry::KernelRegistry() {
  auto make = [](std::string family, int mr, int nr, bool edge,
                 ScheduleSpec sched) {
    KernelInfo k;
    k.name = strprintf("%s/%dx%d", family.c_str(), mr, nr);
    k.family = std::move(family);
    k.mr = mr;
    k.nr = nr;
    k.edge = edge;
    k.sched = sched;
    return k;
  };

  // --- OpenBLAS family (Table I: 16x4, 8x8, 4x4; unroll 8; edge kernels).
  add(make("openblas", 16, 4, false, openblas_main_spec(16, 4)));
  add(make("openblas", 8, 8, false, openblas_main_spec(8, 8)));
  add(make("openblas", 4, 4, false, openblas_main_spec(4, 4)));
  for (int mr : {16, 8, 4, 2, 1}) {
    for (int nr : {4, 2, 1}) {
      if ((mr == 16 || mr == 8 || mr == 4) && nr == 4 && mr != 8) continue;
      // 8x4 is the literal Fig. 7 edge kernel; other main tiles already
      // cover their exact size, so only remainder combinations register.
      if (mr == 4 && nr == 4) continue;
      if (mr == 16 && nr == 4) continue;
      add(make("openblas", mr, nr, true, openblas_edge_spec(mr, nr)));
    }
  }

  // --- BLIS family (Table I: 8x12, unroll 4; edges via zero padding, so
  // the single kernel serves every tile).
  add(make("blis", 8, 12, false, blis_spec(8, 12)));

  // --- BLASFEO family (Table I: 16x4 and 8x8, unroll 4; panel-major
  // operands, row edges absorbed by panel zero padding).
  add(make("blasfeo", 16, 4, false, blasfeo_spec(16, 4)));
  add(make("blasfeo", 8, 8, false, blasfeo_spec(8, 8)));
  add(make("blasfeo", 8, 4, true, blasfeo_spec(8, 4)));
  add(make("blasfeo", 4, 4, true, blasfeo_spec(4, 4)));

  // --- Eigen family (Table I: 12x4, unroll 1, no assembly; edge fallbacks
  // are the same compiler-generated style at smaller tiles).
  add(make("eigen", 12, 4, false, eigen_spec(12, 4)));
  for (int mr : {8, 4, 2, 1}) {
    for (int nr : {4, 2, 1}) {
      if (mr == 8 && nr == 4) {
        add(make("eigen", mr, nr, true, eigen_spec(mr, nr)));
        continue;
      }
      add(make("eigen", mr, nr, nr != 4, eigen_spec(mr, nr)));
    }
  }
  add(make("eigen", 12, 2, true, eigen_spec(12, 2)));
  add(make("eigen", 12, 1, true, eigen_spec(12, 1)));

  // --- Reference SMM family (Section IV): pipelined main kernels plus a
  // full lattice of pipelined edge kernels (the paper's guidance: edge
  // kernels must use aligned vector loads and FMAs too), and direct-B
  // variants for the packing-optional path.
  add(make("smm", 16, 4, false, smm_spec(16, 4)));
  add(make("smm", 8, 8, false, smm_spec(8, 8)));
  add(make("smm", 12, 4, false, smm_spec(12, 4)));
  for (int mr : {16, 12, 8, 4, 2, 1}) {
    for (int nr : {8, 4, 2, 1}) {
      if (nr == 4 && (mr == 16 || mr == 12)) continue;
      if (nr == 8 && mr == 8) continue;
      if (nr == 8 && mr * nr / 4 > 30) continue;  // Eq. 4 register bound
      ScheduleSpec spec = smm_spec(mr, nr);
      if (mr * nr <= 8) spec.unroll = 4;  // tiny tiles: shorter ramp
      add(make("smm", mr, nr, /*edge=*/mr * nr < 32, spec));
    }
  }
  for (int mr : {16, 12, 8, 4, 2, 1}) {
    for (int nr : {8, 4, 2, 1}) {
      if (nr == 8 && mr * nr / 4 > 30) continue;
      add(make("smm-direct", mr, nr, mr * nr < 32,
               smm_direct_b_spec(mr, nr)));
    }
  }
}

const KernelRegistry& KernelRegistry::instance() {
  static const KernelRegistry registry;
  return registry;
}

const KernelInfo& KernelRegistry::info(KernelId id) const {
  SMM_EXPECT(id >= 0 && id < static_cast<KernelId>(kernels_.size()),
             "unknown kernel id");
  return kernels_[static_cast<std::size_t>(id)];
}

KernelId KernelRegistry::find(std::string_view name) const {
  for (const auto& k : kernels_)
    if (k.name == name) return k.id;
  SMM_EXPECT(false, strprintf("kernel '%.*s' not registered",
                              static_cast<int>(name.size()), name.data()));
  return -1;
}

KernelId KernelRegistry::find_tile(std::string_view family, int mr,
                                   int nr) const {
  for (const auto& k : kernels_)
    if (k.family == family && k.mr == mr && k.nr == nr) return k.id;
  SMM_EXPECT(false, strprintf("no %dx%d kernel in family '%.*s'", mr, nr,
                              static_cast<int>(family.size()),
                              family.data()));
  return -1;
}

bool KernelRegistry::has_tile(std::string_view family, int mr,
                              int nr) const {
  for (const auto& k : kernels_)
    if (k.family == family && k.mr == mr && k.nr == nr) return true;
  return false;
}

std::vector<KernelId> KernelRegistry::family(std::string_view family) const {
  std::vector<KernelId> out;
  for (const auto& k : kernels_)
    if (k.family == family) out.push_back(k.id);
  std::stable_sort(out.begin(), out.end(), [this](KernelId a, KernelId b) {
    return !kernels_[static_cast<std::size_t>(a)].edge &&
           kernels_[static_cast<std::size_t>(b)].edge;
  });
  return out;
}

template <typename T>
MicroKernelFn<T> kernel_fn(KernelId id) {
  const KernelInfo& k = KernelRegistry::instance().info(id);
  if constexpr (std::is_same_v<T, float>) {
    return k.f32;
  } else {
    return k.f64;
  }
}
template MicroKernelFn<float> kernel_fn<float>(KernelId);
template MicroKernelFn<double> kernel_fn<double>(KernelId);

template <typename T>
ScheduleSpec kernel_spec(KernelId id) {
  ScheduleSpec spec = KernelRegistry::instance().info(id).sched;
  spec.lanes = static_cast<int>(16 / sizeof(T));
  return spec;
}
template ScheduleSpec kernel_spec<float>(KernelId);
template ScheduleSpec kernel_spec<double>(KernelId);

std::vector<index_t> decompose_edge(index_t extent,
                                    const std::vector<index_t>& sizes) {
  SMM_EXPECT(!sizes.empty() && sizes.back() == 1,
             "edge decomposition needs a size-1 fallback");
  std::vector<index_t> chunks;
  index_t left = extent;
  std::size_t s = 0;
  while (left > 0) {
    while (s < sizes.size() && sizes[s] > left) ++s;
    chunks.push_back(sizes[s]);
    left -= sizes[s];
  }
  return chunks;
}

}  // namespace smm::kern
