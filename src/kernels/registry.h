// Kernel registry: every micro-kernel any strategy may invoke, with its
// native implementation (for plan execution) and its schedule spec (for
// pipeline-model pricing). Kernels are grouped into families matching the
// paper's libraries ("openblas", "blis", "blasfeo", "eigen") plus "smm"
// (the Section-IV reference implementation's kernel set).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/common/types.h"
#include "src/kernels/microkernel.h"
#include "src/kernels/schedule.h"

namespace smm::kern {

/// Opaque kernel handle; stable for the process lifetime.
using KernelId = int;

struct KernelInfo {
  KernelId id = -1;
  std::string name;        ///< e.g. "openblas/16x4"
  std::string family;      ///< "openblas", "blis", "blasfeo", "eigen", "smm"
  int mr = 0;
  int nr = 0;
  bool edge = false;       ///< true for dedicated edge-case kernels
  /// Schedule parameters with lanes for f32; kernel_spec<T>() rescales.
  ScheduleSpec sched;
  MicroKernelFn<float> f32 = nullptr;
  MicroKernelFn<double> f64 = nullptr;
};

class KernelRegistry {
 public:
  /// The process-wide registry (built on first use; immutable after).
  static const KernelRegistry& instance();

  [[nodiscard]] const KernelInfo& info(KernelId id) const;
  /// Throws smm::Error if the name is unknown.
  [[nodiscard]] KernelId find(std::string_view name) const;
  /// Kernel of the family with exactly this tile; throws if absent.
  [[nodiscard]] KernelId find_tile(std::string_view family, int mr,
                                   int nr) const;
  [[nodiscard]] bool has_tile(std::string_view family, int mr, int nr) const;
  /// All kernels of a family, main kernels first.
  [[nodiscard]] std::vector<KernelId> family(std::string_view family) const;
  [[nodiscard]] index_t size() const {
    return static_cast<index_t>(kernels_.size());
  }

 private:
  KernelRegistry();
  KernelId add(KernelInfo info);

  std::vector<KernelInfo> kernels_;
};

/// Native function for a kernel, selected by scalar type.
template <typename T>
MicroKernelFn<T> kernel_fn(KernelId id);

/// Schedule spec with the lane count adjusted for T (4 for f32, 2 for f64).
template <typename T>
ScheduleSpec kernel_spec(KernelId id);

/// Decompose an edge extent into chunks available in `family` for the given
/// dimension. E.g. OpenBLAS computes an 11-row M edge as 8 + 2 + 1
/// (Section III-B). `sizes` must be the family's available chunk sizes in
/// decreasing order; greedy decomposition matches how the libraries chain
/// their edge kernels.
std::vector<index_t> decompose_edge(index_t extent,
                                    const std::vector<index_t>& sizes);

/// Pick the native micro-kernel function for a tile: a specialized
/// register-blocked instantiation when one exists, else the generic kernel.
template <typename T>
MicroKernelFn<T> native_tile_fn(int mr, int nr);

}  // namespace smm::kern
