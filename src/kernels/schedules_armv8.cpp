#include "src/kernels/schedules_armv8.h"

namespace smm::kern {

namespace {
ScheduleSpec base(ScheduleStyle style, int mr, int nr, int unroll,
                  BAccess b_access) {
  ScheduleSpec s;
  s.style = style;
  s.mr = mr;
  s.nr = nr;
  s.unroll = unroll;
  s.lanes = 4;  // f32 reference; kernel_spec<T>() rescales for f64
  s.b_access = b_access;
  return s;
}
}  // namespace

ScheduleSpec openblas_main_spec(int mr, int nr) {
  // Table I: OpenBLAS unrolls by 8 and pipelines its main sgemm kernels.
  return base(ScheduleStyle::kPipelined, mr, nr, 8, BAccess::kPackedVec);
}

ScheduleSpec openblas_edge_spec(int mr, int nr) {
  // Fig. 7: clustered ldp/ldr bursts feeding back-to-back fmla — "the
  // distance between the two dependent instructions is too close".
  return base(ScheduleStyle::kClustered, mr, nr, 2, BAccess::kScalarPairs);
}

ScheduleSpec blis_spec(int mr, int nr) {
  return base(ScheduleStyle::kPipelined, mr, nr, 4, BAccess::kPackedVec);
}

ScheduleSpec blasfeo_spec(int mr, int nr) {
  return base(ScheduleStyle::kPipelined, mr, nr, 4, BAccess::kPackedVec);
}

ScheduleSpec eigen_spec(int mr, int nr) {
  // Table I: no assembly layers, unroll factor 1. Eigen still packs, so B
  // is contiguous, but the compiler-scheduled loop reloads operands right
  // before use, pays loop control every iteration, and broadcasts B
  // elements through a dup instead of the by-lane fmla form.
  ScheduleSpec s =
      base(ScheduleStyle::kSimple, mr, nr, 1, BAccess::kPackedVec);
  s.broadcast_b = true;
  return s;
}

ScheduleSpec smm_spec(int mr, int nr) {
  // Section IV: hand-scheduled for the modelled pipeline; unroll 8 keeps
  // the loop overhead negligible while fitting the 32 KB L1I comfortably.
  return base(ScheduleStyle::kPipelined, mr, nr, 8, BAccess::kPackedVec);
}

ScheduleSpec smm_direct_b_spec(int mr, int nr) {
  return base(ScheduleStyle::kPipelined, mr, nr, 4,
              BAccess::kStridedScalar);
}

}  // namespace smm::kern
