// Schedule presets for the ARMv8 kernel families evaluated in the paper
// (Table I): instruction-layout style, unroll factor and B-access pattern
// for each library's assembly (or, for Eigen, compiler-generated) kernels.
#pragma once

#include "src/kernels/schedule.h"

namespace smm::kern {

/// OpenBLAS main kernels: assembly Layers 4-7, unroll 8, software-pipelined.
ScheduleSpec openblas_main_spec(int mr, int nr);

/// OpenBLAS edge kernels: the Fig. 7 layout — clustered loads, scalar-pair
/// B access, short unroll, no software pipelining.
ScheduleSpec openblas_edge_spec(int mr, int nr);

/// BLIS micro-kernel: assembly Layers 6-7, unroll 4, pipelined.
ScheduleSpec blis_spec(int mr, int nr);

/// BLASFEO micro-kernel: assembly Layers 6-7, unroll 4, pipelined; operands
/// arrive panel-major so all loads are full aligned vectors.
ScheduleSpec blasfeo_spec(int mr, int nr);

/// Eigen: no assembly, unroll 1, compiler-style layout.
ScheduleSpec eigen_spec(int mr, int nr);

/// Reference SMM kernels (Section IV): pipelined, unroll tuned per tile.
ScheduleSpec smm_spec(int mr, int nr);

/// Reference SMM packing-free variant: B read directly from col-major
/// storage (strided scalar loads) — used when the packing-optional
/// heuristic decides packing would cost more than it saves.
ScheduleSpec smm_direct_b_spec(int mr, int nr);

}  // namespace smm::kern
