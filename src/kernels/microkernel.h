// Micro-kernel ABI.
//
// A micro-kernel performs the Layer-6/7 GESS operation of the paper's
// Fig. 4: C(mr x nr) = alpha * A_sliver(mr x kc) * B_sliver(kc x nr)
//                      + beta * C(mr x nr)
// as kc rank-1 updates held entirely in vector registers.
//
// One ABI serves every storage scheme in the paper through generalized
// panel addressing:
//   A element (i, k) = a[(i % a_ps) * a_istride + (i / a_ps) * a_pstride
//                        + k * a_kstride]
//   B element (k, j) = b[(j % b_ps) * b_jstride + (j / b_ps) * b_pstride
//                        + k * b_kstride]
// which covers
//   - packed mr/nr panels (GotoBLAS Fig. 2): a_ps = mr, a_kstride = mr,
//                                            a_istride = 1
//   - BLASFEO panel-major ps=4 (Fig. 3):     a_ps = 4,  a_kstride = 4,
//                                            a_pstride = 4 * total_cols
//   - direct, unpacked col-major A:          a_ps = mr, a_kstride = lda
//   - direct, unpacked row-major A (= op(A) of a transposed input):
//                                            a_ps = mr, a_istride = lda,
//                                            a_kstride = 1
//   - direct, unpacked col-major B:          b_ps = 1,  b_pstride = ldb,
//                                            b_kstride = 1
// so the packing-optional reference SMM, transposition, and all four
// library models share kernels.
#pragma once

#include "src/common/types.h"

namespace smm::kern {

/// Operand descriptors for one micro-kernel invocation (see file comment
/// for the addressing formulas).
template <typename T>
struct KernelOperands {
  const T* a = nullptr;
  index_t a_ps = 0;       ///< panel height of the A sliver
  index_t a_pstride = 0;  ///< distance between consecutive A panels
  index_t a_kstride = 0;  ///< distance between k and k+1 within a panel
  index_t a_istride = 1;  ///< distance between rows within a panel

  const T* b = nullptr;
  index_t b_ps = 0;
  index_t b_pstride = 0;
  index_t b_kstride = 0;
  index_t b_jstride = 1;  ///< distance between columns within a panel

  T* c = nullptr;
  index_t c_rs = 0;  ///< C row stride
  index_t c_cs = 0;  ///< C column stride
};

/// Kernel entry point. `mr_eff`/`nr_eff` <= the kernel's native tile let a
/// kernel mask its C update for edge tiles (zero-padding strategies compute
/// the full tile but store only the useful part).
template <typename T>
using MicroKernelFn = void (*)(index_t kc, T alpha, T beta,
                               const KernelOperands<T>& ops, index_t mr_eff,
                               index_t nr_eff);

/// Offset of A element (i, k) under the generalized panel addressing.
template <typename T>
inline index_t a_offset(const KernelOperands<T>& ops, index_t i, index_t k) {
  return (i % ops.a_ps) * ops.a_istride + (i / ops.a_ps) * ops.a_pstride +
         k * ops.a_kstride;
}

/// Offset of B element (k, j).
template <typename T>
inline index_t b_offset(const KernelOperands<T>& ops, index_t k, index_t j) {
  return (j % ops.b_ps) * ops.b_jstride + (j / ops.b_ps) * ops.b_pstride +
         k * ops.b_kstride;
}

// ---- Operand factory helpers -------------------------------------------

/// A sliver packed in mr-panel format (contiguous kc columns of mr rows).
template <typename T>
void set_packed_a(KernelOperands<T>& ops, const T* a, index_t mr) {
  ops.a = a;
  ops.a_ps = mr;
  ops.a_pstride = 0;  // single panel: i < mr always
  ops.a_kstride = mr;
}

/// B sliver packed in nr-panel format (contiguous kc rows of nr columns).
template <typename T>
void set_packed_b(KernelOperands<T>& ops, const T* b, index_t nr) {
  ops.b = b;
  ops.b_ps = nr;
  ops.b_pstride = 0;
  ops.b_kstride = nr;
}

/// A sliver read directly from an unpacked col-major matrix.
template <typename T>
void set_direct_a_colmajor(KernelOperands<T>& ops, const T* a, index_t lda,
                           index_t mr) {
  ops.a = a;
  ops.a_ps = mr;
  ops.a_pstride = 0;
  ops.a_kstride = lda;
  ops.a_istride = 1;
}

/// A sliver read directly from an unpacked row-major matrix — the op(A)
/// of a transposed col-major input. Rows are strided; only the generic
/// kernel can consume this (the vector kernels need a_istride == 1), so
/// packing strategies are preferred for transposed A.
template <typename T>
void set_direct_a_rowmajor(KernelOperands<T>& ops, const T* a, index_t lda,
                           index_t mr) {
  ops.a = a;
  ops.a_ps = mr;
  ops.a_pstride = 0;
  ops.a_kstride = 1;
  ops.a_istride = lda;
}

/// B sliver read directly from an unpacked col-major matrix (the
/// discontiguous access of paper Fig. 8).
template <typename T>
void set_direct_b_colmajor(KernelOperands<T>& ops, const T* b, index_t ldb) {
  ops.b = b;
  ops.b_ps = 1;
  ops.b_pstride = ldb;
  ops.b_kstride = 1;
}

/// B sliver read directly from an unpacked row-major matrix (contiguous
/// nr elements per k; Eigen's natural layout).
template <typename T>
void set_direct_b_rowmajor(KernelOperands<T>& ops, const T* b, index_t ldb,
                           index_t nr) {
  ops.b = b;
  ops.b_ps = nr;
  ops.b_pstride = 0;
  ops.b_kstride = ldb;
}

/// A sliver inside a BLASFEO panel-major matrix with panel height ps.
/// `a` must point at element (i0, 0) of the sliver with i0 % ps == 0;
/// total_cols is the full matrix column count.
template <typename T>
void set_panel_a(KernelOperands<T>& ops, const T* a, index_t ps,
                 index_t total_cols) {
  ops.a = a;
  ops.a_ps = ps;
  ops.a_pstride = ps * total_cols;
  ops.a_kstride = ps;
}

/// B sliver inside a panel-major matrix storing B^T (BLASFEO "nt" kernels):
/// B(k, j) = Bt(j, k); `b` points at Bt element (j0, 0), j0 % ps == 0.
template <typename T>
void set_panel_bt(KernelOperands<T>& ops, const T* b, index_t ps,
                  index_t total_cols_bt) {
  ops.b = b;
  ops.b_ps = ps;
  ops.b_pstride = ps * total_cols_bt;
  ops.b_kstride = ps;
}

// ---- Kernels -------------------------------------------------------------

/// Fully general scalar micro-kernel: any tile, any addressing, masked C
/// update. The fallback for edge tiles and the numerical reference for
/// every specialized kernel.
template <typename T>
void generic_microkernel(index_t kc, T alpha, T beta,
                         const KernelOperands<T>& ops, index_t mr_eff,
                         index_t nr_eff);

/// Register-blocked vector kernel for a full MR x NR tile.
///
/// Requirements (checked with SMM_EXPECT):
///  - mr_eff == MR and nr_eff == NR,
///  - MR is a multiple of the vector width for T,
///  - the A addressing yields contiguous vectors: a_ps % lanes == 0 and
///    a panel never splits a 4-row group (a_ps is 4, 8, 12, 16 or MR).
/// B may be addressed arbitrarily (scalars are broadcast, which is exactly
/// how fmla-by-lane consumes packed B on ARMv8).
template <typename T, int MR, int NR>
void tile_microkernel(index_t kc, T alpha, T beta,
                      const KernelOperands<T>& ops, index_t mr_eff,
                      index_t nr_eff);

}  // namespace smm::kern
