// Plan assembly for the reference SMM: the packing-optional single-thread
// path (with Fig. 8 edge packing) and the multi-dimensional parallel path.
#pragma once

#include "src/core/smm.h"
#include "src/plan/plan.h"
#include "src/threading/partition.h"

namespace smm::core {

struct BuildSpec {
  index_t mr = 16;
  index_t nr = 4;
  index_t mc = 256;
  index_t kc = 512;
  index_t nc = 512;
  bool pack_a = false;
  bool pack_b = true;
  bool edge_pack_b = false;  ///< only meaningful when !pack_b
  int nthreads = 1;
  par::Ways ways;
  /// K-split parallelism (> 1): the K range is divided among k_parts
  /// threads computing partial products into private slabs, folded into C
  /// by a reduction — the only way to use many cores on deep-K SMM shapes
  /// (M, N small, K large) where the tile grid cannot feed them.
  int k_parts = 1;
};

/// Build the plan (thread_ops, buffers, barriers) into `plan`, whose
/// shape/scalar/strategy must already be set.
void build_smm_plan(plan::GemmPlan& plan, const BuildSpec& spec);

/// The spec ReferenceSmm::make_plan would build for this call — the
/// default plan as a value, exposed so smm::tune can use it as the
/// analytic prior (candidate "keep the default") and price TuneSpace
/// alternatives against it. Deterministic for a fixed options set except
/// through the kMeasured thread-scaling path, exactly like make_plan.
BuildSpec default_build_spec(GemmShape shape, plan::ScalarType scalar,
                             int nthreads, const SmmOptions& options);

}  // namespace smm::core
