#include "src/core/batched.h"

#include <algorithm>

#include "src/common/error.h"
#include "src/core/smm.h"
#include "src/plan/native_executor.h"
#include "src/threading/partition.h"
#include "src/threading/thread_pool.h"

namespace smm::core {

template <typename T>
void batched_smm(T alpha, const std::vector<GemmBatchItem<T>>& items,
                 T beta, PlanCache& cache, int nworkers) {
  SMM_EXPECT(nworkers >= 1, "batched_smm needs at least one worker");
  const auto scalar =
      sizeof(T) == 4 ? plan::ScalarType::kF32 : plan::ScalarType::kF64;

  // Resolve plans up front (single pass warms the cache; repeated shapes
  // share one plan object).
  std::vector<std::shared_ptr<const plan::GemmPlan>> plans;
  plans.reserve(items.size());
  for (const auto& item : items) {
    SMM_EXPECT(item.a.rows() == item.c.rows() &&
                   item.b.cols() == item.c.cols() &&
                   item.a.cols() == item.b.rows(),
               "batched_smm: item dimension mismatch");
    plans.push_back(cache.get(
        {item.c.rows(), item.c.cols(), item.a.cols()}, scalar,
        /*nthreads=*/1));
  }

  const int workers =
      std::min<int>(nworkers, std::max<std::size_t>(items.size(), 1));
  par::run_parallel(workers, [&](int w) {
    const par::Range range = par::split_range(
        static_cast<index_t>(items.size()), workers, w);
    for (index_t i = range.begin; i < range.end; ++i) {
      const auto& item = items[static_cast<std::size_t>(i)];
      plan::execute_plan(*plans[static_cast<std::size_t>(i)], alpha, item.a,
                         item.b, beta, item.c);
    }
  });
}

template void batched_smm(float, const std::vector<GemmBatchItem<float>>&,
                          float, PlanCache&, int);
template void batched_smm(double, const std::vector<GemmBatchItem<double>>&,
                          double, PlanCache&, int);

PlanCache& default_plan_cache() {
  static PlanCache cache(reference_smm());
  return cache;
}

}  // namespace smm::core
