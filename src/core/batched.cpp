#include "src/core/batched.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "src/common/error.h"
#include "src/common/str.h"
#include "src/core/smm.h"
#include "src/plan/native_executor.h"
#include "src/robust/health.h"
#include "src/threading/partition.h"
#include "src/threading/thread_pool.h"

namespace smm::core {

namespace {

/// Up-front validation: bad items are caller bugs and rejected before any
/// work starts, with the item index in the message so a million-item batch
/// is debuggable.
template <typename T>
void validate_batch(const std::vector<GemmBatchItem<T>>& items) {
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto& item = items[i];
    SMM_EXPECT_CODE(item.a.rows() == item.c.rows() &&
                        item.b.cols() == item.c.cols() &&
                        item.a.cols() == item.b.rows(),
                    ErrorCode::kBadShape,
                    strprintf("batched_smm: item %zu dimension mismatch "
                              "(A %ldx%ld, B %ldx%ld, C %ldx%ld)",
                              i, static_cast<long>(item.a.rows()),
                              static_cast<long>(item.a.cols()),
                              static_cast<long>(item.b.rows()),
                              static_cast<long>(item.b.cols()),
                              static_cast<long>(item.c.rows()),
                              static_cast<long>(item.c.cols())));
    SMM_EXPECT_CODE(
        item.c.rows() > 0 && item.c.cols() > 0 && item.a.cols() > 0,
        ErrorCode::kBadShape,
        strprintf("batched_smm: item %zu has a zero dimension", i));
    SMM_EXPECT_CODE(item.a.data() != nullptr && item.b.data() != nullptr &&
                        item.c.data() != nullptr,
                    ErrorCode::kBadShape,
                    strprintf("batched_smm: item %zu has null data", i));
  }
  // A single-item batch has nothing to alias against: skip the extent
  // vector + sort entirely (this path is hit per-call by adapters that
  // funnel single GEMMs through the batch API, where the allocation and
  // sort would be pure overhead).
  if (items.size() < 2) return;
  // Outputs must not alias across items (workers write them
  // concurrently). Sort C ranges by start; any overlap shows up between
  // neighbours, so the check is O(n log n), not O(n^2).
  struct Extent {
    const void* begin;
    const void* end;
    std::size_t item;
  };
  std::vector<Extent> extents;
  extents.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto r = storage_range(ConstMatrixView<T>(items[i].c));
    extents.push_back({r.first, r.second, i});
  }
  std::sort(extents.begin(), extents.end(),
            [](const Extent& x, const Extent& y) {
              return x.begin < y.begin;
            });
  for (std::size_t i = 1; i < extents.size(); ++i) {
    SMM_EXPECT_CODE(
        extents[i].begin >= extents[i - 1].end, ErrorCode::kAlias,
        strprintf("batched_smm: C of item %zu aliases C of item %zu",
                  extents[i].item, extents[i - 1].item));
  }
}

}  // namespace

template <typename T>
void batched_smm(T alpha, const std::vector<GemmBatchItem<T>>& items,
                 T beta, PlanCache& cache, int nworkers,
                 const CancelToken* cancel) {
  SMM_EXPECT(nworkers >= 1, "batched_smm needs at least one worker");
  validate_batch(items);
  // A token already stopped at entry fails the whole batch before any
  // plan is resolved or any C is written.
  if (cancel != nullptr) cancel->throw_if_stopped();
  robust::health().batched_items.fetch_add(items.size(),
                                           std::memory_order_relaxed);
  const auto scalar =
      sizeof(T) == 4 ? plan::ScalarType::kF32 : plan::ScalarType::kF64;

  // Resolve plans up front (single pass warms the cache; repeated shapes
  // share one plan object).
  std::vector<std::shared_ptr<const plan::GemmPlan>> plans;
  plans.reserve(items.size());
  for (const auto& item : items) {
    plans.push_back(cache.get(
        {item.c.rows(), item.c.cols(), item.a.cols()}, scalar,
        /*nthreads=*/1));
  }

  // Per-item failures are collected (with the item index) instead of
  // tearing down the whole batch at the first worker exception: every
  // healthy item still completes, then one aggregate error reports all
  // the casualties.
  std::mutex failures_mu;
  std::vector<std::pair<index_t, std::string>> failures;
  ErrorCode first_code = ErrorCode::kUnknown;

  // run_parallel dispatches on the shared persistent WorkerPool: batch
  // after batch reuses the same parked workers (and a one-item batch
  // takes the single-thread bypass, touching no pool state at all).
  const int workers =
      std::min<int>(nworkers, std::max<std::size_t>(items.size(), 1));
  par::run_parallel(workers, [&](int w) {
    const par::Range range = par::split_range(
        static_cast<index_t>(items.size()), workers, w);
    for (index_t i = range.begin; i < range.end; ++i) {
      const auto& item = items[static_cast<std::size_t>(i)];
      try {
        // Checked before each item: once the token stops, every remaining
        // item in this worker's range fails with the stop code, its C
        // untouched.
        if (cancel != nullptr) cancel->throw_if_stopped();
        if (cancel != nullptr && cancel->valid()) {
          plan::execute_plan(*plans[static_cast<std::size_t>(i)], alpha,
                             item.a, item.b, beta, item.c, *cancel);
        } else {
          plan::execute_plan(*plans[static_cast<std::size_t>(i)], alpha,
                             item.a, item.b, beta, item.c);
        }
      } catch (const Error& e) {
        std::lock_guard<std::mutex> lock(failures_mu);
        if (failures.empty()) first_code = e.code();
        failures.emplace_back(i, e.what());
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lock(failures_mu);
        if (failures.empty()) first_code = ErrorCode::kUnknown;
        failures.emplace_back(i, e.what());
      }
    }
  });

  if (!failures.empty()) {
    std::sort(failures.begin(), failures.end());
    robust::health().batched_item_failures.fetch_add(
        failures.size(), std::memory_order_relaxed);
    std::string msg = strprintf("batched_smm: %zu of %zu items failed:",
                                failures.size(), items.size());
    for (const auto& [idx, what] : failures)
      msg += strprintf(" [item %ld: %s]", static_cast<long>(idx),
                       what.c_str());
    throw Error(first_code, msg);
  }
}

template void batched_smm(float, const std::vector<GemmBatchItem<float>>&,
                          float, PlanCache&, int, const CancelToken*);
template void batched_smm(double, const std::vector<GemmBatchItem<double>>&,
                          double, PlanCache&, int, const CancelToken*);

PlanCache& default_plan_cache() {
  // Immortal (leaked): protect_across_fork registers atfork handlers
  // capturing the cache that can never be unregistered, so the cache
  // must survive static destruction (fork_guard.h).
  static PlanCache* cache = new PlanCache(reference_smm());
  static const bool fork_guarded = (cache->protect_across_fork(), true);
  (void)fork_guarded;
  return *cache;
}

}  // namespace smm::core
