#include "src/core/batched.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "src/common/error.h"
#include "src/common/str.h"
#include "src/core/smm.h"
#include "src/plan/native_executor.h"
#include "src/robust/health.h"
#include "src/robust/integrity.h"
#include "src/threading/partition.h"
#include "src/threading/thread_pool.h"

namespace smm::core {

namespace {

/// The per-item shape/data checks batched entry points agree on. Empty
/// string = well-formed; otherwise the kBadShape message (with the item
/// index, so a million-item batch is debuggable).
template <typename T>
std::string item_shape_error(const GemmBatchItem<T>& item, std::size_t i) {
  if (!(item.a.rows() == item.c.rows() && item.b.cols() == item.c.cols() &&
        item.a.cols() == item.b.rows()))
    return strprintf("batched_smm: item %zu dimension mismatch "
                     "(A %ldx%ld, B %ldx%ld, C %ldx%ld)",
                     i, static_cast<long>(item.a.rows()),
                     static_cast<long>(item.a.cols()),
                     static_cast<long>(item.b.rows()),
                     static_cast<long>(item.b.cols()),
                     static_cast<long>(item.c.rows()),
                     static_cast<long>(item.c.cols()));
  if (!(item.c.rows() > 0 && item.c.cols() > 0 && item.a.cols() > 0))
    return strprintf("batched_smm: item %zu has a zero dimension", i);
  if (item.a.data() == nullptr || item.b.data() == nullptr ||
      item.c.data() == nullptr)
    return strprintf("batched_smm: item %zu has null data", i);
  return {};
}

/// Literally the same view — one B object, not merely equal contents.
template <typename T>
bool identical_view(ConstMatrixView<T> x, ConstMatrixView<T> y) {
  return x.data() == y.data() && x.rows() == y.rows() &&
         x.cols() == y.cols() && x.ld() == y.ld();
}

/// Pack-once gate: the per-handle integrity lock serializes run() while
/// ABFT is on, so replaying one handle from several workers would
/// serialize the batch — worse than per-item packing, not better.
bool prepack_reuse_allowed(int nworkers) {
  return nworkers == 1 || integrity::mode() == integrity::AbftMode::kOff;
}

/// Up-front validation: bad items are caller bugs and rejected before any
/// work starts.
template <typename T>
void validate_batch(const std::vector<GemmBatchItem<T>>& items) {
  for (std::size_t i = 0; i < items.size(); ++i) {
    const std::string err = item_shape_error(items[i], i);
    SMM_EXPECT_CODE(err.empty(), ErrorCode::kBadShape, err);
  }
  // A single-item batch has nothing to alias against: skip the extent
  // vector + sort entirely (this path is hit per-call by adapters that
  // funnel single GEMMs through the batch API, where the allocation and
  // sort would be pure overhead).
  if (items.size() < 2) return;
  // Outputs must not alias across items (workers write them
  // concurrently). Sort C ranges by start; any overlap shows up between
  // neighbours, so the check is O(n log n), not O(n^2).
  struct Extent {
    const void* begin;
    const void* end;
    std::size_t item;
  };
  std::vector<Extent> extents;
  extents.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto r = storage_range(ConstMatrixView<T>(items[i].c));
    extents.push_back({r.first, r.second, i});
  }
  std::sort(extents.begin(), extents.end(),
            [](const Extent& x, const Extent& y) {
              return x.begin < y.begin;
            });
  for (std::size_t i = 1; i < extents.size(); ++i) {
    SMM_EXPECT_CODE(
        extents[i].begin >= extents[i - 1].end, ErrorCode::kAlias,
        strprintf("batched_smm: C of item %zu aliases C of item %zu",
                  extents[i].item, extents[i - 1].item));
  }
}

}  // namespace

template <typename T>
void batched_smm(T alpha, const std::vector<GemmBatchItem<T>>& items,
                 T beta, PlanCache& cache, int nworkers,
                 const CancelToken* cancel) {
  SMM_EXPECT(nworkers >= 1, "batched_smm needs at least one worker");
  validate_batch(items);
  // A token already stopped at entry fails the whole batch before any
  // plan is resolved or any C is written.
  if (cancel != nullptr) cancel->throw_if_stopped();
  robust::health().batched_items.fetch_add(items.size(),
                                           std::memory_order_relaxed);
  const auto scalar =
      sizeof(T) == 4 ? plan::ScalarType::kF32 : plan::ScalarType::kF64;

  // Resolve plans up front (single pass warms the cache; repeated shapes
  // share one plan object).
  std::vector<std::shared_ptr<const plan::GemmPlan>> plans;
  plans.reserve(items.size());
  for (const auto& item : items) {
    plans.push_back(cache.get(
        {item.c.rows(), item.c.cols(), item.a.cols()}, scalar,
        /*nthreads=*/1));
  }

  // Same-shape shared-B fast path (DESIGN.md §13): coalesced traffic is
  // many As against one B. When every item replays one plan against
  // literally the same B view, pack B once into a PrepackedB handle and
  // skip the per-item pack. Mid-item cancellation needs execute_plan, so
  // a live token keeps the per-item path.
  std::shared_ptr<plan::PrepackedB<T>> packed;
  if (items.size() >= 2 && (cancel == nullptr || !cancel->valid()) &&
      prepack_reuse_allowed(nworkers)) {
    bool uniform = true;
    for (std::size_t i = 1; i < items.size() && uniform; ++i)
      uniform =
          plans[i] == plans[0] && identical_view(items[i].b, items[0].b);
    if (uniform) {
      try {
        auto candidate =
            std::make_shared<plan::PrepackedB<T>>(plans[0], items[0].b);
        if (candidate->materialized()) {
          packed = std::move(candidate);
          robust::health().batched_prepack_reuse.fetch_add(
              items.size(), std::memory_order_relaxed);
        }
      } catch (...) {
        // Pack-once is an optimization; execute_plan is always correct.
      }
    }
  }

  // Per-item failures are collected (with the item index) instead of
  // tearing down the whole batch at the first worker exception: every
  // healthy item still completes, then one aggregate error reports all
  // the casualties.
  std::mutex failures_mu;
  std::vector<std::pair<index_t, std::string>> failures;
  ErrorCode first_code = ErrorCode::kUnknown;

  // run_parallel dispatches on the shared persistent WorkerPool: batch
  // after batch reuses the same parked workers (and a one-item batch
  // takes the single-thread bypass, touching no pool state at all).
  const int workers =
      std::min<int>(nworkers, std::max<std::size_t>(items.size(), 1));
  par::run_parallel(workers, [&](int w) {
    const par::Range range = par::split_range(
        static_cast<index_t>(items.size()), workers, w);
    for (index_t i = range.begin; i < range.end; ++i) {
      const auto& item = items[static_cast<std::size_t>(i)];
      try {
        // Checked before each item: once the token stops, every remaining
        // item in this worker's range fails with the stop code, its C
        // untouched.
        if (cancel != nullptr) cancel->throw_if_stopped();
        if (packed) {
          packed->run(alpha, item.a, beta, item.c);
        } else if (cancel != nullptr && cancel->valid()) {
          plan::execute_plan(*plans[static_cast<std::size_t>(i)], alpha,
                             item.a, item.b, beta, item.c, *cancel);
        } else {
          plan::execute_plan(*plans[static_cast<std::size_t>(i)], alpha,
                             item.a, item.b, beta, item.c);
        }
      } catch (const Error& e) {
        std::lock_guard<std::mutex> lock(failures_mu);
        if (failures.empty()) first_code = e.code();
        failures.emplace_back(i, e.what());
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lock(failures_mu);
        if (failures.empty()) first_code = ErrorCode::kUnknown;
        failures.emplace_back(i, e.what());
      }
    }
  });

  if (!failures.empty()) {
    std::sort(failures.begin(), failures.end());
    robust::health().batched_item_failures.fetch_add(
        failures.size(), std::memory_order_relaxed);
    std::string msg = strprintf("batched_smm: %zu of %zu items failed:",
                                failures.size(), items.size());
    for (const auto& [idx, what] : failures)
      msg += strprintf(" [item %ld: %s]", static_cast<long>(idx),
                       what.c_str());
    throw Error(first_code, msg);
  }
}

template void batched_smm(float, const std::vector<GemmBatchItem<float>>&,
                          float, PlanCache&, int, const CancelToken*);
template void batched_smm(double, const std::vector<GemmBatchItem<double>>&,
                          double, PlanCache&, int, const CancelToken*);

template <typename T>
std::vector<BatchItemStatus> batched_smm_each(
    T alpha, const std::vector<GemmBatchItem<T>>& items, T beta,
    PlanCache& cache, int nworkers, const SmmOptions* options,
    const std::vector<const CancelToken*>* tokens) {
  SMM_EXPECT(nworkers >= 1, "batched_smm_each needs at least one worker");
  SMM_EXPECT(tokens == nullptr || tokens->size() == items.size(),
             "batched_smm_each: tokens must be one per item");
  std::vector<BatchItemStatus> statuses(items.size());
  if (items.empty()) return statuses;
  robust::health().batched_items.fetch_add(items.size(),
                                           std::memory_order_relaxed);
  const auto scalar =
      sizeof(T) == 4 ? plan::ScalarType::kF32 : plan::ScalarType::kF64;

  // Statuses are written at disjoint indices (including from workers),
  // so no lock is needed anywhere below.
  const auto fail = [&statuses](std::size_t i, ErrorCode code,
                                std::string message) {
    statuses[i].ok = false;
    statuses[i].code = code;
    statuses[i].message = std::move(message);
  };

  // Item-local validation: a malformed item fails alone; its siblings
  // are unaffected (the whole point of the per-item API).
  std::vector<unsigned char> runnable(items.size(), 1);
  for (std::size_t i = 0; i < items.size(); ++i) {
    std::string err = item_shape_error(items[i], i);
    if (!err.empty()) {
      runnable[i] = 0;
      fail(i, ErrorCode::kBadShape, std::move(err));
    }
  }

  // Output aliasing among the runnable set: the later item of an
  // overlapping pair is excluded (workers write C concurrently).
  // O(n^2) over a depth-bounded coalesce group, not a streamed batch.
  for (std::size_t i = 1; i < items.size(); ++i) {
    if (!runnable[i]) continue;
    for (std::size_t j = 0; j < i; ++j) {
      if (!runnable[j]) continue;
      if (views_overlap(ConstMatrixView<T>(items[i].c),
                        ConstMatrixView<T>(items[j].c))) {
        runnable[i] = 0;
        fail(i, ErrorCode::kAlias,
             strprintf("batched_smm: C of item %zu aliases C of item %zu",
                       i, j));
        break;
      }
    }
  }

  // Input hygiene per item (DESIGN.md §11): a poisoned neighbor is
  // rejected alone instead of poisoning the group.
  if (options != nullptr && options->check_finite) {
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (!runnable[i]) continue;
      try {
        screen_finite(items[i].a, items[i].b, beta,
                      ConstMatrixView<T>(items[i].c));
      } catch (const Error& e) {
        runnable[i] = 0;
        fail(i, e.code(), e.what());
      }
    }
  }

  // One plan per distinct shape — a coalesced group is normally a single
  // shape, so this is one cache lookup for the whole call.
  std::vector<std::shared_ptr<const plan::GemmPlan>> plans(items.size());
  struct Resolved {
    GemmShape shape;
    std::shared_ptr<const plan::GemmPlan> plan;
  };
  std::vector<Resolved> resolved;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (!runnable[i]) continue;
    const GemmShape shape{items[i].c.rows(), items[i].c.cols(),
                          items[i].a.cols()};
    const auto it = std::find_if(
        resolved.begin(), resolved.end(), [&](const Resolved& r) {
          return r.shape.m == shape.m && r.shape.n == shape.n &&
                 r.shape.k == shape.k;
        });
    if (it != resolved.end()) {
      plans[i] = it->plan;
      continue;
    }
    try {
      // Null options = the cache's default-built plans (the legacy
      // batched_smm keys); explicit options go through the same
      // fingerprinted resolution smm_gemm uses.
      auto plan = options != nullptr
                      ? cached_smm_plan(cache, shape, scalar,
                                        /*nthreads=*/1, *options)
                      : cache.get(shape, scalar, /*nthreads=*/1);
      plans[i] = plan;
      resolved.push_back({shape, std::move(plan)});
    } catch (const Error& e) {
      runnable[i] = 0;
      fail(i, e.code(), e.what());
    } catch (const std::exception& e) {
      runnable[i] = 0;
      fail(i, ErrorCode::kUnknown, e.what());
    }
  }

  // Pack-once fast path: every runnable item replaying one plan against
  // literally the same B view shares one PrepackedB handle.
  std::shared_ptr<plan::PrepackedB<T>> packed;
  if (prepack_reuse_allowed(nworkers)) {
    std::size_t first = items.size();
    std::size_t nrun = 0;
    bool uniform = true;
    for (std::size_t i = 0; i < items.size() && uniform; ++i) {
      if (!runnable[i]) continue;
      ++nrun;
      if (first == items.size()) {
        first = i;
        continue;
      }
      uniform = plans[i] == plans[first] &&
                identical_view(items[i].b, items[first].b);
    }
    if (uniform && nrun >= 2) {
      try {
        auto candidate = std::make_shared<plan::PrepackedB<T>>(
            plans[first], items[first].b);
        if (candidate->materialized()) {
          packed = std::move(candidate);
          robust::health().batched_prepack_reuse.fetch_add(
              nrun, std::memory_order_relaxed);
        }
      } catch (...) {
        // Pack-once is an optimization; execute_plan is always correct.
      }
    }
  }

  const int workers =
      std::min<int>(nworkers, std::max<std::size_t>(items.size(), 1));
  par::run_parallel(workers, [&](int w) {
    const par::Range range =
        par::split_range(static_cast<index_t>(items.size()), workers, w);
    for (index_t ii = range.begin; ii < range.end; ++ii) {
      const auto i = static_cast<std::size_t>(ii);
      if (!runnable[i]) continue;
      const auto& item = items[i];
      const CancelToken* token = tokens != nullptr ? (*tokens)[i] : nullptr;
      try {
        // A stopped token fails only its own item, C untouched. The
        // prepack path checks only here (PrepackedB::run has no token);
        // coalesced items are small enough that per-item granularity is
        // the deadline resolution anyway.
        if (token != nullptr) token->throw_if_stopped();
        if (packed) {
          packed->run(alpha, item.a, beta, item.c);
        } else if (token != nullptr && token->valid()) {
          plan::execute_plan(*plans[i], alpha, item.a, item.b, beta,
                             item.c, *token);
        } else {
          plan::execute_plan(*plans[i], alpha, item.a, item.b, beta,
                             item.c);
        }
        statuses[i].ok = true;
      } catch (const Error& e) {
        fail(i, e.code(), e.what());
      } catch (const std::exception& e) {
        fail(i, ErrorCode::kUnknown, e.what());
      }
    }
  });

  std::size_t failures = 0;
  for (const auto& s : statuses)
    if (!s.ok) ++failures;
  if (failures > 0)
    robust::health().batched_item_failures.fetch_add(
        failures, std::memory_order_relaxed);
  return statuses;
}

template std::vector<BatchItemStatus> batched_smm_each(
    float, const std::vector<GemmBatchItem<float>>&, float, PlanCache&,
    int, const SmmOptions*, const std::vector<const CancelToken*>*);
template std::vector<BatchItemStatus> batched_smm_each(
    double, const std::vector<GemmBatchItem<double>>&, double, PlanCache&,
    int, const SmmOptions*, const std::vector<const CancelToken*>*);

PlanCache& default_plan_cache() {
  // Immortal (leaked): protect_across_fork registers atfork handlers
  // capturing the cache that can never be unregistered, so the cache
  // must survive static destruction (fork_guard.h).
  static PlanCache* cache = new PlanCache(reference_smm());
  static const bool fork_guarded = (cache->protect_across_fork(), true);
  (void)fork_guarded;
  return *cache;
}

}  // namespace smm::core
