#include "src/core/plan_builder.h"

#include <algorithm>

#include "src/common/error.h"
#include "src/libs/goto_common.h"

namespace smm::core {

namespace {

using libs::Chunk;
using libs::EdgeStrategy;
using libs::GotoConfig;
using libs::PackedBlockRef;
using libs::TileConfig;

std::vector<index_t> chunk_sizes_below(index_t tile) {
  std::vector<index_t> sizes;
  for (const index_t s : {index_t{16}, index_t{12}, index_t{8}, index_t{4},
                          index_t{2}, index_t{1}})
    if (s <= tile) sizes.push_back(s);
  return sizes;
}

TileConfig smm_tiles(const BuildSpec& spec, bool packed_b) {
  TileConfig tiles;
  tiles.family = packed_b ? "smm" : "smm-direct";
  tiles.mr = spec.mr;
  tiles.nr = spec.nr;
  tiles.m_chunks = chunk_sizes_below(spec.mr);
  tiles.n_chunks = chunk_sizes_below(std::min<index_t>(spec.nr, 4));
  tiles.edge = EdgeStrategy::kEdgeKernels;
  return tiles;
}

// Packing-optional single-thread path. B (and A) stay in place; with
// edge_pack_b the sub-nr tail columns of each nc block are packed into a
// small buffer so their kernels keep contiguous access (Fig. 8).
void build_packing_optional(plan::GemmPlan& plan, const BuildSpec& spec) {
  const GemmShape shape = plan.shape;
  plan.nthreads = 1;
  plan.thread_ops.assign(1, {});
  plan.blocking = {spec.mc, spec.kc, spec.nc, spec.mr, spec.nr};
  if (shape.m == 0 || shape.n == 0) return;
  if (shape.k == 0) {
    libs::emit_scale_c(plan);
    return;
  }
  auto& ops = plan.thread_ops[0];
  const index_t kc_max = std::min(spec.kc, shape.k);

  const TileConfig direct_tiles = smm_tiles(spec, /*packed_b=*/false);
  const TileConfig packed_tiles = smm_tiles(spec, /*packed_b=*/true);

  int buf_a = -1;
  if (spec.pack_a) {
    const index_t height = std::min(spec.mc, shape.m);
    buf_a = plan::add_buffer(
        plan, (height + spec.mr - 1) / spec.mr * spec.mr * kc_max);
  }
  int buf_b = -1;
  if (spec.pack_b) {
    const index_t width = std::min(spec.nc, shape.n);
    buf_b = plan::add_buffer(
        plan, (width + spec.nr - 1) / spec.nr * spec.nr * kc_max);
  }
  int buf_edge = -1;
  if (!spec.pack_b && spec.edge_pack_b) {
    // Worst case: the full edge tail of one nc block (< nr columns).
    buf_edge = plan::add_buffer(plan, spec.nr * kc_max);
  }

  for (index_t jj = 0; jj < shape.n; jj += spec.nc) {
    const index_t nc_eff = std::min(spec.nc, shape.n - jj);
    const auto n_list = chunk_dim(nc_eff, spec.nr, EdgeStrategy::kEdgeKernels,
                                  direct_tiles.n_chunks);
    // Index of the first sub-nr chunk (the Fig. 8 edge region).
    std::size_t edge_begin = n_list.size();
    while (edge_begin > 0 && n_list[edge_begin - 1].tile < spec.nr)
      --edge_begin;

    for (index_t kk = 0; kk < shape.k; kk += spec.kc) {
      const index_t kc_eff = std::min(spec.kc, shape.k - kk);
      const bool first_k = kk == 0;

      PackedBlockRef b_blk;
      const PackedBlockRef* b_ref = nullptr;
      if (spec.pack_b) {
        b_blk.buffer = buf_b;
        b_blk.chunk_offsets = libs::chunk_elem_offsets(n_list, kc_eff);
        ops.push_back(libs::make_pack_b_op(packed_tiles, n_list,
                                           b_blk.chunk_offsets, 0,
                                           n_list.size(), buf_b, kk, jj,
                                           kc_eff));
        b_ref = &b_blk;
      }
      PackedBlockRef edge_blk;
      const bool have_edge_pack = !spec.pack_b && spec.edge_pack_b &&
                                  edge_begin < n_list.size();
      if (have_edge_pack) {
        edge_blk.buffer = buf_edge;
        edge_blk.chunk_offsets.assign(n_list.size(), 0);
        index_t off = 0;
        for (std::size_t c = edge_begin; c < n_list.size(); ++c) {
          edge_blk.chunk_offsets[c] = off;
          off += n_list[c].tile * kc_eff;
        }
        ops.push_back(libs::make_pack_b_op(packed_tiles, n_list,
                                           edge_blk.chunk_offsets,
                                           edge_begin, n_list.size(),
                                           buf_edge, kk, jj, kc_eff));
      }

      for (index_t ii = 0; ii < shape.m; ii += spec.mc) {
        const index_t mc_eff = std::min(spec.mc, shape.m - ii);
        const auto m_list = chunk_dim(mc_eff, spec.mr,
                                      EdgeStrategy::kEdgeKernels,
                                      direct_tiles.m_chunks);
        PackedBlockRef a_blk;
        const PackedBlockRef* a_ref = nullptr;
        if (spec.pack_a) {
          a_blk.buffer = buf_a;
          a_blk.chunk_offsets = libs::chunk_elem_offsets(m_list, kc_eff);
          ops.push_back(libs::make_pack_a_op(direct_tiles, m_list,
                                             a_blk.chunk_offsets, 0,
                                             m_list.size(), buf_a, ii, kk,
                                             kc_eff));
          a_ref = &a_blk;
        }
        if (spec.pack_b) {
          libs::emit_gebp_tiles(ops, packed_tiles, kc_eff, first_k, a_ref,
                                b_ref, ii, jj, kk, m_list, n_list, 0,
                                n_list.size(), 0, m_list.size());
          continue;
        }
        // Bulk tiles: direct B.
        const std::size_t bulk_end =
            have_edge_pack ? edge_begin : n_list.size();
        libs::emit_gebp_tiles(ops, direct_tiles, kc_eff, first_k, a_ref,
                              nullptr, ii, jj, kk, m_list, n_list, 0,
                              bulk_end, 0, m_list.size());
        // Edge tiles: packed edge buffer, contiguous access.
        if (have_edge_pack) {
          libs::emit_gebp_tiles(ops, packed_tiles, kc_eff, first_k, a_ref,
                                &edge_blk, ii, jj, kk, m_list, n_list,
                                edge_begin, n_list.size(), 0,
                                m_list.size());
        }
      }
    }
  }
}

// K-split parallelism: k_parts threads each compute alpha * A(:, K_t) *
// B(K_t, :) into a private M x N slab (direct operands — these shapes are
// tiny in M/N), then the slabs are reduced into C row-block-parallel.
void build_k_split(plan::GemmPlan& plan, const BuildSpec& spec) {
  const GemmShape shape = plan.shape;
  const int parts = spec.k_parts;
  plan.nthreads = parts;
  plan.thread_ops.assign(static_cast<std::size_t>(parts), {});
  plan.blocking = {shape.m, spec.kc, shape.n, spec.mr, spec.nr};
  if (shape.m == 0 || shape.n == 0) return;
  if (shape.k == 0) {
    libs::emit_scale_c(plan);
    return;
  }
  const index_t slab = shape.m * shape.n;
  const int buf = plan::add_buffer(plan, slab * parts);
  const int bar = plan::add_barrier(plan, parts);
  const TileConfig tiles = smm_tiles(spec, /*packed_b=*/false);
  const auto m_list = chunk_dim(shape.m, spec.mr,
                                EdgeStrategy::kEdgeKernels, tiles.m_chunks);
  const auto n_list = chunk_dim(shape.n, spec.nr,
                                EdgeStrategy::kEdgeKernels, tiles.n_chunks);

  for (int t = 0; t < parts; ++t) {
    auto& ops = plan.thread_ops[static_cast<std::size_t>(t)];
    const par::Range krange = par::split_range(shape.k, parts, t);
    const index_t slab_off = static_cast<index_t>(t) * slab;
    for (index_t kk = krange.begin; kk < krange.end; kk += spec.kc) {
      const index_t kc_eff = std::min(spec.kc, krange.end - kk);
      const std::size_t before = ops.size();
      libs::emit_gebp_tiles(ops, tiles, kc_eff,
                            /*first_k=*/kk == krange.begin, nullptr,
                            nullptr, 0, 0, kk, m_list, n_list, 0,
                            n_list.size(), 0, m_list.size());
      // Redirect the C updates into this thread's slab.
      for (std::size_t o = before; o < ops.size(); ++o) {
        auto& k = std::get<plan::KernelOp>(ops[o]);
        k.c_buffer = buf;
        k.c_ld = shape.m;
        k.c_offset = slab_off + k.i0 + k.j0 * shape.m;
      }
    }
    ops.push_back(plan::BarrierOp{bar});
    const par::Range rows = par::split_range(shape.m, parts, t);
    if (rows.size() > 0) {
      plan::ReduceCOp red;
      red.buffer = buf;
      red.i0 = rows.begin;
      red.j0 = 0;
      red.rows = rows.size();
      red.cols = shape.n;
      red.ld = shape.m;
      red.offset = rows.begin;
      red.part_stride = slab;
      red.parts = parts;
      ops.push_back(red);
    }
  }
}

}  // namespace

void build_smm_plan(plan::GemmPlan& plan, const BuildSpec& spec) {
  SMM_EXPECT(spec.nthreads >= 1, "bad thread count");
  if (spec.k_parts > 1) {
    build_k_split(plan, spec);
    return;
  }
  if (spec.nthreads > 1) {
    // Cooperative multi-thread path always packs (shared buffers are the
    // point of the barriers); the thread cap has already trimmed cases
    // where packing would not amortize.
    GotoConfig cfg;
    cfg.tiles = smm_tiles(spec, /*packed_b=*/true);
    cfg.mc = spec.mc;
    cfg.kc = spec.kc;
    cfg.nc = spec.nc;
    libs::build_ways_parallel(plan, cfg, spec.ways);
    return;
  }
  if (spec.pack_a && spec.pack_b) {
    GotoConfig cfg;
    cfg.tiles = smm_tiles(spec, /*packed_b=*/true);
    cfg.mc = spec.mc;
    cfg.kc = spec.kc;
    cfg.nc = spec.nc;
    libs::build_singlethread(plan, cfg);
    return;
  }
  build_packing_optional(plan, spec);
}

}  // namespace smm::core
