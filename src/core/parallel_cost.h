// Host calibration of the parallel runtime cost model.
//
// The static min_tiles_per_thread heuristic cannot see what a dispatch
// or a barrier actually costs on the machine it runs on — which is the
// whole reason the paper's Table II breakdown exists. This module
// measures the four ParallelCostModel constants once per process (a few
// hundred microseconds: a warm single-thread plan for flop_ns, a pack_b
// sweep for pack_ns_per_elem, empty fork-join regions for dispatch_ns,
// a 2-thread barrier ping for barrier_ns) so choose_parallel can price
// candidates in predicted wall-clock on *this* host.
#pragma once

#include "src/model/parallel_runtime.h"

namespace smm::core {

/// This host's cost model, measured on first call and cached for the
/// process lifetime (thread-safe). Any individual measurement that
/// fails (e.g. an injected fault fires mid-calibration) falls back to
/// the corresponding reference_cost_model() constant; hw_threads always
/// reflects native_threads_available() and `measured` is always true.
const model::ParallelCostModel& calibrated_cost_model();

/// Seed the process cost model from a persisted table (smm::tune warm
/// start) instead of measuring. Only effective before the first
/// calibrated_cost_model() call — returns false (and changes nothing)
/// once the model is pinned, measured or seeded. Thread-safe.
bool set_calibrated_model(const model::ParallelCostModel& m);

}  // namespace smm::core
