// Simulator-guided autotuning: search the reference SMM's plan space
// (tile, blocking, packing) for one shape using the machine model as the
// objective — the empirical complement to the paper's closed-form
// selection rules (Eqs. 4-5 bound the space; the pricer ranks inside it).
// The same loop on real hardware would time plans instead; everything
// else is identical, which is the point of the plan/price split.
#pragma once

#include <vector>

#include "src/core/plan_builder.h"
#include "src/sim/machine.h"

namespace smm::core {

/// The search space. Defaults cover the register-feasible main tiles and
/// the cache-plausible blockings; all candidates are validated plans.
struct TuneSpace {
  std::vector<std::pair<index_t, index_t>> tiles{
      {16, 4}, {12, 4}, {8, 8}, {8, 4}, {4, 4}};
  std::vector<index_t> kc_values{128, 256, 512};
  /// Packing-B choices to try (A follows the footprint heuristic).
  std::vector<bool> pack_b_choices{false, true};
};

struct TuneResult {
  BuildSpec best;
  double best_cycles = 0.0;
  double default_cycles = 0.0;  ///< the un-tuned reference SMM plan
  int evaluated = 0;

  [[nodiscard]] double speedup() const {
    return best_cycles > 0.0 ? default_cycles / best_cycles : 1.0;
  }
};

/// Exhaustively price the space for one (shape, scalar, nthreads) and
/// return the best spec. Deterministic; cost is |space| plan builds +
/// pricings (memoized kernel timings keep repeats cheap).
TuneResult autotune(GemmShape shape, plan::ScalarType scalar, int nthreads,
                    const sim::MachineConfig& machine,
                    const TuneSpace& space = {});

/// Build + validate the plan for a tuned spec (convenience for executing
/// a TuneResult natively).
plan::GemmPlan build_tuned_plan(GemmShape shape, plan::ScalarType scalar,
                                const BuildSpec& spec);

}  // namespace smm::core
