// Run-time parallelization decision for the reference SMM (Section IV,
// "multi-dimensional parallelization ... make a run-time decision based on
// the input matrices").
#pragma once

#include "src/common/types.h"
#include "src/model/parallel_runtime.h"
#include "src/threading/partition.h"

namespace smm::core {

struct ParallelChoice {
  int nthreads = 1;
  par::Ways ways;
  /// > 1: split K instead (deep-K shapes whose M x N tile grid cannot
  /// feed the cores); nthreads == k_parts in that case.
  int k_parts = 1;
};

/// Decide how many threads are worth using and how to spread them.
/// The thread count is capped so every thread keeps at least
/// `min_tiles_per_thread` micro-tiles (synchronizing 64 threads over a
/// 4-tile problem is exactly the pathology Table II exposes).
///
/// With `cost == nullptr` the decision is the static heuristic above —
/// deterministic, host-independent, what simulation goldens rely on.
/// With a cost model, every thread count the static cap admits (plus the
/// deep-K split candidates) is priced via model::predict_parallel_ns and
/// the cheapest predicted wall-clock wins; serial keeps a 10% hysteresis
/// edge so parallelism must clearly pay before it is chosen. The static
/// tile cap stays a hard ceiling either way, so the cost model can only
/// choose fewer threads than the heuristic, never more. `kc` is only
/// read on the cost path (barrier crossings per kk step).
ParallelChoice choose_parallel(GemmShape shape, int max_threads, index_t mr,
                               index_t nr, index_t mc, index_t nc,
                               index_t min_tiles_per_thread = 4,
                               const model::ParallelCostModel* cost = nullptr,
                               index_t kc = 512);

}  // namespace smm::core
