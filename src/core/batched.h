// Batched SMM — the deployment shape of the paper's DNN motivation: many
// small multiplications of a few distinct shapes. Plans come from a
// PlanCache; parallelism goes *across* the batch (each item runs its
// single-thread plan on one worker) because within-GEMM parallelism has
// nothing to win on small matrices (Sections III-D / IV; quantified by
// bench/ablate_batch_parallel).
#pragma once

#include <vector>

#include "src/common/cancel.h"
#include "src/core/plan_cache.h"
#include "src/matrix/view.h"

namespace smm::core {

template <typename T>
struct GemmBatchItem {
  ConstMatrixView<T> a;
  ConstMatrixView<T> b;
  MatrixView<T> c;
};

/// C_i = alpha * A_i * B_i + beta * C_i for every item. Shapes may differ
/// per item (each hits the cache separately). `nworkers` > 1 spreads
/// items across threads. Items are validated up front (dimension
/// mismatches, zero dimensions, null data, and C views aliasing across
/// items are rejected with the item index, ErrorCode kBadShape/kAlias);
/// runtime failures of individual items do not stop the rest of the
/// batch — they are aggregated into one smm::Error naming every failed
/// item.
///
/// `cancel` (may be null) is consulted before each item and at op
/// boundaries inside each item: a stop request fails the not-yet-started
/// items with kCancelled / kDeadlineExceeded, their C untouched, and the
/// aggregate error carries the stop code.
template <typename T>
void batched_smm(T alpha, const std::vector<GemmBatchItem<T>>& items,
                 T beta, PlanCache& cache, int nworkers = 1,
                 const CancelToken* cancel = nullptr);

/// Convenience: one shared PlanCache over the default reference SMM.
PlanCache& default_plan_cache();

}  // namespace smm::core
