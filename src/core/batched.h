// Batched SMM — the deployment shape of the paper's DNN motivation: many
// small multiplications of a few distinct shapes. Plans come from a
// PlanCache; parallelism goes *across* the batch (each item runs its
// single-thread plan on one worker) because within-GEMM parallelism has
// nothing to win on small matrices (Sections III-D / IV; quantified by
// bench/ablate_batch_parallel).
#pragma once

#include <string>
#include <vector>

#include "src/common/cancel.h"
#include "src/common/error.h"
#include "src/core/plan_cache.h"
#include "src/matrix/view.h"

namespace smm::core {

struct SmmOptions;

template <typename T>
struct GemmBatchItem {
  ConstMatrixView<T> a;
  ConstMatrixView<T> b;
  MatrixView<T> c;
};

/// Per-item outcome of batched_smm_each. `ok` items ran to completion;
/// failed items carry the code and message of their own failure — a
/// neighbor's NaN, cancellation, or bad shape never shows up here.
struct BatchItemStatus {
  bool ok = false;
  ErrorCode code = ErrorCode::kUnknown;
  std::string message;
};

/// C_i = alpha * A_i * B_i + beta * C_i for every item. Shapes may differ
/// per item (each hits the cache separately). `nworkers` > 1 spreads
/// items across threads. Items are validated up front (dimension
/// mismatches, zero dimensions, null data, and C views aliasing across
/// items are rejected with the item index, ErrorCode kBadShape/kAlias);
/// runtime failures of individual items do not stop the rest of the
/// batch — they are aggregated into one smm::Error naming every failed
/// item.
///
/// `cancel` (may be null) is consulted before each item and at op
/// boundaries inside each item: a stop request fails the not-yet-started
/// items with kCancelled / kDeadlineExceeded, their C untouched, and the
/// aggregate error carries the stop code.
template <typename T>
void batched_smm(T alpha, const std::vector<GemmBatchItem<T>>& items,
                 T beta, PlanCache& cache, int nworkers = 1,
                 const CancelToken* cancel = nullptr);

/// Per-item variant for coalesced dispatch (DESIGN.md §13): never throws
/// for item-level trouble — every item gets its own BatchItemStatus, so
/// a coalesced neighbor's failure or cancellation cannot poison its
/// siblings. Item i's validation failure (kBadShape), C aliasing an
/// earlier runnable item's C (kAlias), non-finite input when
/// `options->check_finite` (kNonFinite), per-item stop via `tokens`
/// (kCancelled/kDeadlineExceeded), and runtime faults all land in
/// statuses[i]; healthy items still run.
///
/// `options` selects the plan family (null = the cache's default-built
/// plans, the legacy batched_smm keys); `tokens`, when non-null, must be
/// items.size() long (null entries = not cancellable) and each token is
/// consulted before its item starts.
///
/// Fast path: when every runnable item shares one shape AND literally
/// the same B view, the plan is resolved once and B is packed once into
/// a PrepackedB handle replayed across the group (health counter
/// batched_prepack_reuse counts the items served this way).
template <typename T>
std::vector<BatchItemStatus> batched_smm_each(
    T alpha, const std::vector<GemmBatchItem<T>>& items, T beta,
    PlanCache& cache, int nworkers = 1, const SmmOptions* options = nullptr,
    const std::vector<const CancelToken*>* tokens = nullptr);

/// Convenience: one shared PlanCache over the default reference SMM.
PlanCache& default_plan_cache();

}  // namespace smm::core
