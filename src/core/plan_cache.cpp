#include "src/core/plan_cache.h"

#include <utility>

#include "src/common/error.h"
#include "src/common/fork_guard.h"
#include "src/robust/fault_injection.h"
#include "src/robust/health.h"
#include "src/robust/integrity.h"

namespace smm::core {

PlanCache::PlanCache(const libs::GemmStrategy& strategy,
                     std::size_t capacity)
    : strategy_(strategy), capacity_(capacity) {
  SMM_EXPECT(capacity > 0, "plan cache needs capacity");
}

std::shared_ptr<const plan::GemmPlan> PlanCache::get(
    GemmShape shape, plan::ScalarType scalar, int nthreads,
    std::uint64_t fingerprint) {
  return get_or_build(shape, scalar, nthreads, fingerprint, [&] {
    return strategy_.make_plan(shape, scalar, nthreads);
  });
}

std::shared_ptr<const plan::GemmPlan> PlanCache::get_or_build(
    GemmShape shape, plan::ScalarType scalar, int nthreads,
    std::uint64_t fingerprint, const PlanBuilder& build) {
  const Key key{shape.m, shape.n, shape.k, static_cast<int>(scalar),
                nthreads, fingerprint};
  for (;;) {
    std::promise<PlanPtr> promise;
    std::shared_future<PlanPtr> inflight;
    {
      std::unique_lock<std::mutex> lock(mu_);
      auto it = index_.find(key);
      if (it != index_.end()) {
        Entry& entry = *it->second;
        // Rot injection hits the stored seal, not the plan: the plan is
        // shared immutable state that concurrent executors may be
        // reading right now. Corrupting the seal exercises exactly the
        // same defense (mismatch -> quarantine -> rebuild).
        if (robust::should_fire(robust::FaultSite::kPlanCacheFlip))
          entry.seal ^= std::uint64_t{1} << 17;
        if (integrity::mode() != integrity::AbftMode::kOff &&
            integrity::plan_seal(*entry.plan) != entry.seal) {
          // The entry rotted after it was blessed. Quarantine it and fall
          // through to the miss path — a poisoned plan is never served.
          lru_.erase(it->second);
          index_.erase(it);
          seal_rejections_.fetch_add(1, std::memory_order_relaxed);
          robust::Health& h = robust::health();
          h.integrity_quarantines.fetch_add(1, std::memory_order_relaxed);
          h.plan_seal_rebuilds.fetch_add(1, std::memory_order_relaxed);
        } else {
          ++hits_;
          lru_.splice(lru_.begin(), lru_, it->second);  // bump to front
          robust::health().plan_cache_hits.fetch_add(
              1, std::memory_order_relaxed);
          return it->second->plan;
        }
      }
      const auto flight = inflight_.find(key);
      if (flight != inflight_.end()) {
        // Same key already building: share that build instead of doing a
        // redundant one. Counted as a hit — this caller built nothing.
        inflight = flight->second;
        ++hits_;
        robust::health().plan_cache_hits.fetch_add(
            1, std::memory_order_relaxed);
      } else {
        ++misses_;
        robust::health().plan_cache_misses.fetch_add(
            1, std::memory_order_relaxed);
        inflight_.emplace(key, promise.get_future().share());
      }
    }

    if (inflight.valid()) {
      try {
        return inflight.get();
      } catch (...) {
        // The build this caller piggybacked on failed. That failure is
        // the builder's own to report; swallowing it here and retrying
        // the full lookup keeps one transient fault from fanning out to
        // every concurrent caller of the key (and the failed in-flight
        // entry is already erased, so the retry starts clean).
        continue;
      }
    }

    // This caller builds. Outside the lock: plan construction is the
    // expensive part and must not serialize hits on other keys behind it.
    PlanPtr plan;
    std::uint64_t seal = 0;
    try {
      plan = std::make_shared<const plan::GemmPlan>(build());
      builds_.fetch_add(1, std::memory_order_relaxed);
      // Seal at build time, unconditionally (outside the lock — it walks
      // the whole op list): entries inserted while integrity was off must
      // still validate correctly if the mode is turned on later.
      seal = integrity::plan_seal(*plan);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        inflight_.erase(key);
      }
      promise.set_exception(std::current_exception());
      throw;
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      inflight_.erase(key);
      // clear() may have raced the build; insert into whatever state the
      // cache is in now (a pre-existing entry is impossible — inflight_
      // excluded every other builder of this key). An insert failure
      // (injected, or an allocation failing under real memory pressure)
      // degrades to serving the plan uncached: the caller paid for the
      // build and must get its plan; only future calls repay the miss.
      try {
        if (robust::should_fire(robust::FaultSite::kCacheInsertFail))
          throw Error(ErrorCode::kCacheInsertFail,
                      "smmkit: injected plan-cache insert failure");
        lru_.emplace_front(Entry{key, plan, seal});
        try {
          index_[key] = lru_.begin();
        } catch (...) {
          lru_.pop_front();  // keep lru_/index_ consistent
          throw;
        }
        if (lru_.size() > capacity_) {
          index_.erase(lru_.back().key);
          lru_.pop_back();
        }
      } catch (...) {
        insert_failures_.fetch_add(1, std::memory_order_relaxed);
        robust::health().plan_cache_insert_failures.fetch_add(
            1, std::memory_order_relaxed);
      }
    }
    promise.set_value(plan);
    return plan;
  }
}

void PlanCache::protect_across_fork() {
  common::register_fork_handlers(common::ForkHandlers{
      /*prepare=*/[this] { mu_.lock(); },
      /*parent=*/[this] { mu_.unlock(); },
      /*child=*/
      [this] {
        // Completed entries stay valid (plans are immutable data); only
        // builds whose builder thread existed in the parent are gone.
        // The next miss on those keys rebuilds cleanly.
        inflight_.clear();
        mu_.unlock();
      }});
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  // In-flight builds are left to finish: their waiters still get a plan,
  // and the completed build re-inserts into the emptied cache.
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  builds_.store(0, std::memory_order_relaxed);
}

}  // namespace smm::core
