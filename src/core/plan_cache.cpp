#include "src/core/plan_cache.h"

#include <utility>

#include "src/common/error.h"
#include "src/robust/health.h"

namespace smm::core {

PlanCache::PlanCache(const libs::GemmStrategy& strategy,
                     std::size_t capacity)
    : strategy_(strategy), capacity_(capacity) {
  SMM_EXPECT(capacity > 0, "plan cache needs capacity");
}

std::shared_ptr<const plan::GemmPlan> PlanCache::get(
    GemmShape shape, plan::ScalarType scalar, int nthreads,
    std::uint64_t fingerprint) {
  return get_or_build(shape, scalar, nthreads, fingerprint, [&] {
    return strategy_.make_plan(shape, scalar, nthreads);
  });
}

std::shared_ptr<const plan::GemmPlan> PlanCache::get_or_build(
    GemmShape shape, plan::ScalarType scalar, int nthreads,
    std::uint64_t fingerprint, const PlanBuilder& build) {
  const Key key{shape.m, shape.n, shape.k, static_cast<int>(scalar),
                nthreads, fingerprint};
  std::promise<PlanPtr> promise;
  {
    std::unique_lock<std::mutex> lock(mu_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second);  // bump to front
      robust::health().plan_cache_hits.fetch_add(
          1, std::memory_order_relaxed);
      return it->second->second;
    }
    const auto flight = inflight_.find(key);
    if (flight != inflight_.end()) {
      // Same key already building: share that build instead of doing a
      // redundant one. Counted as a hit — this caller built nothing.
      // (get() on the future rethrows the builder's exception, if any.)
      auto future = flight->second;
      ++hits_;
      robust::health().plan_cache_hits.fetch_add(
          1, std::memory_order_relaxed);
      lock.unlock();
      return future.get();
    }
    ++misses_;
    robust::health().plan_cache_misses.fetch_add(
        1, std::memory_order_relaxed);
    inflight_.emplace(key, promise.get_future().share());
  }

  // Build outside the lock: plan construction is the expensive part and
  // must not serialize hits on other keys behind it.
  PlanPtr plan;
  try {
    plan = std::make_shared<const plan::GemmPlan>(build());
    builds_.fetch_add(1, std::memory_order_relaxed);
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      inflight_.erase(key);
    }
    promise.set_exception(std::current_exception());
    throw;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_.erase(key);
    // clear() may have raced the build; insert into whatever state the
    // cache is in now (a pre-existing entry is impossible — inflight_
    // excluded every other builder of this key).
    lru_.emplace_front(key, plan);
    index_[key] = lru_.begin();
    if (lru_.size() > capacity_) {
      index_.erase(lru_.back().first);
      lru_.pop_back();
    }
  }
  promise.set_value(plan);
  return plan;
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  // In-flight builds are left to finish: their waiters still get a plan,
  // and the completed build re-inserts into the emptied cache.
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  builds_.store(0, std::memory_order_relaxed);
}

}  // namespace smm::core
