#include "src/core/plan_cache.h"

#include "src/common/error.h"

namespace smm::core {

PlanCache::PlanCache(const libs::GemmStrategy& strategy,
                     std::size_t capacity)
    : strategy_(strategy), capacity_(capacity) {
  SMM_EXPECT(capacity > 0, "plan cache needs capacity");
}

std::shared_ptr<const plan::GemmPlan> PlanCache::get(
    GemmShape shape, plan::ScalarType scalar, int nthreads) {
  const Key key{shape.m, shape.n, shape.k, static_cast<int>(scalar),
                nthreads};
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second);  // bump to front
      return it->second->second;
    }
  }
  // Build outside the lock: plan construction can be expensive and two
  // threads racing on the same shape just do redundant work once.
  auto plan = std::make_shared<const plan::GemmPlan>(
      strategy_.make_plan(shape, scalar, nthreads));
  builds_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
  }
  ++misses_;
  lru_.emplace_front(key, std::move(plan));
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
  return lru_.front().second;
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  builds_.store(0, std::memory_order_relaxed);
}

}  // namespace smm::core
