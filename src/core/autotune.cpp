#include "src/core/autotune.h"

#include "src/common/error.h"
#include "src/core/parallel_select.h"
#include "src/core/smm.h"
#include "src/sim/exec/pricer.h"

namespace smm::core {

plan::GemmPlan build_tuned_plan(GemmShape shape, plan::ScalarType scalar,
                                const BuildSpec& spec) {
  plan::GemmPlan plan;
  plan.strategy = "smm-tuned";
  plan.shape = shape;
  plan.scalar = scalar;
  build_smm_plan(plan, spec);
  plan.validate();
  return plan;
}

TuneResult autotune(GemmShape shape, plan::ScalarType scalar, int nthreads,
                    const sim::MachineConfig& machine,
                    const TuneSpace& space) {
  SMM_EXPECT_CODE(shape.valid() && shape.m > 0 && shape.n > 0 &&
                      shape.k > 0,
                  ErrorCode::kBadShape,
                  "autotune needs a non-degenerate shape");
  SMM_EXPECT(nthreads >= 1, "autotune needs at least one thread");
  SMM_EXPECT(!space.tiles.empty() && !space.kc_values.empty() &&
                 !space.pack_b_choices.empty(),
             "autotune space must not be empty");
  sim::PlanPricer pricer(machine);
  TuneResult result;

  // Baseline: whatever the heuristic reference SMM would do.
  result.default_cycles =
      pricer.price(reference_smm().make_plan(shape, scalar, nthreads))
          .makespan_cycles;

  result.best_cycles = -1.0;
  for (const auto& [mr, nr] : space.tiles) {
    for (const index_t kc : space.kc_values) {
      for (const bool pack_b : space.pack_b_choices) {
        BuildSpec spec;
        spec.mr = mr;
        spec.nr = nr;
        spec.kc = kc;
        spec.mc = 240;
        spec.nc = 480;
        spec.pack_b = pack_b;
        spec.edge_pack_b = !pack_b;
        spec.pack_a = decide_packing(shape, plan::elem_bytes(scalar), {})
                          .pack_a;
        const ParallelChoice par_choice = choose_parallel(
            shape, std::max(1, nthreads), mr, nr, spec.mc, spec.nc);
        spec.nthreads = par_choice.nthreads;
        spec.ways = par_choice.ways;
        spec.k_parts = par_choice.k_parts;
        // Cooperative multi-thread plans require packing (shared
        // buffers); skip inconsistent candidates rather than build them.
        if (spec.nthreads > 1 && spec.k_parts == 1 && !pack_b) continue;

        const plan::GemmPlan plan = build_tuned_plan(shape, scalar, spec);
        const double cycles = pricer.price(plan).makespan_cycles;
        ++result.evaluated;
        if (result.best_cycles < 0.0 || cycles < result.best_cycles) {
          result.best_cycles = cycles;
          result.best = spec;
        }
      }
    }
  }
  SMM_EXPECT(result.evaluated > 0, "autotune space was empty");
  return result;
}

}  // namespace smm::core
