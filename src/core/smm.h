// Reference SMM implementation (paper Section IV).
//
// The paper's four recommendations, realized:
//  1. *Packing-optional SMM*: an auto heuristic driven by the P2C analysis
//     (Section III-A) decides per shape whether packing A/B pays off; when
//     it does not, kernels read the operands in place.
//  2. *A set of optimal micro-kernels*: the "smm" kernel family —
//     register-feasible tiles (Eq. 4) with pipelined schedules, plus a full
//     lattice of vectorized edge kernels (the Fig. 7 pitfalls avoided).
//  3. *Adaptive code generation*: the plan builder selects the main tile
//     and the kernel mix per input shape at plan time (the JIT stand-in:
//     instead of emitting instructions, it composes the kernel plan and
//     precomputes every operand offset).
//  4. *Multi-dimensional parallelization*: run-time ways selection that
//     refuses to parallelize small dimensions and caps the thread count
//     when the tile grid cannot feed more threads.
#pragma once

#include <cstdint>
#include <memory>

#include "src/common/cancel.h"
#include "src/libs/gemm_interface.h"
#include "src/matrix/view.h"
#include "src/plan/native_executor.h"
#include "src/robust/integrity.h"

namespace smm::core {

class PlanCache;

struct SmmOptions {
  enum class Packing { kAuto, kAlways, kNever };
  Packing pack_a = Packing::kAuto;
  Packing pack_b = Packing::kAuto;
  /// Fig. 8: when B stays unpacked and N % nr != 0, pack just the edge
  /// columns so the edge kernels keep contiguous vector access.
  bool edge_pack = true;
  /// Choose the main tile per shape (false pins 16x4).
  bool adaptive_kernel = true;
  /// Hard thread cap; 0 derives the cap from the tile grid.
  int thread_cap = 0;
  /// How the thread count/ways are decided within the caller's budget.
  ///  - kStatic: the deterministic tile-grid heuristic alone.
  ///  - kMeasured: candidates priced in predicted wall-clock with the
  ///    host-calibrated cost model (core/parallel_cost.h) — may use
  ///    fewer threads than requested when dispatch/sync would eat the
  ///    speedup, never more than the static cap.
  ///  - kAuto: kMeasured on the runtime entry points (smm_gemm,
  ///    smm_prepack_b), kStatic for directly built strategies
  ///    (make_plan), so plans fed to the simulator and golden tests
  ///    never depend on the build host.
  enum class ThreadScaling { kAuto, kStatic, kMeasured };
  ThreadScaling thread_scaling = ThreadScaling::kAuto;
  /// Input hygiene (DESIGN.md §11): scan A, B (and C when beta != 0) for
  /// NaN/Inf before executing and reject with kNonFinite. Off by default —
  /// the scan is O(input) per call; serving front-ends turn it on so a
  /// poisoned request is rejected at admission instead of tripping ABFT
  /// checksums (or silently corrupting C) downstream.
  bool check_finite = false;
  /// Integrity policy (DESIGN.md §12) carried by this option set — kAuto
  /// defers to the process-wide SMMKIT_ABFT knob. smm_gemm itself never
  /// verifies (robust::GuardedExecutor is the verification wrapper), but
  /// the field participates in options_fingerprint, so option sets that
  /// differ only in integrity policy never alias a cache entry.
  integrity::AbftMode abft = integrity::AbftMode::kAuto;
};

/// Process-wide instance with default options.
const libs::GemmStrategy& reference_smm();

/// A strategy with explicit options (ablation benches).
std::unique_ptr<libs::GemmStrategy> make_reference_smm(SmmOptions options);

/// Convenience one-call API: C = alpha*A*B + beta*C with the reference SMM.
///
/// Failure semantics (DESIGN.md §10): memory-pressure trouble on the warm
/// path degrades instead of throwing — a full scratch arena falls back to
/// per-call buffers, a plan-cache insert failure serves the plan
/// uncached, and prepack handles fall back to pack-on-the-fly — so only
/// genuine faults surface. Those are fail-stop: a dead/hung pool worker
/// fails the call with kWorkerPanic/kPoolTimeout (the watchdog bounds the
/// wait; the pool quarantines and rebuilds itself), and callers that need
/// retry/verify semantics on top wrap calls in robust::GuardedExecutor.
template <typename T>
void smm_gemm(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, T beta,
              MatrixView<T> c, int nthreads = 1,
              const SmmOptions& options = {});

/// Cancellable smm_gemm (DESIGN.md §11): `cancel` is consulted at op
/// boundaries inside the plan — a stop observed before the first op
/// leaves C untouched; a mid-plan stop unwinds with kCancelled /
/// kDeadlineExceeded and may leave C partial. The serving layer threads
/// each request's token through here.
template <typename T>
void smm_gemm(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, T beta,
              MatrixView<T> c, int nthreads, const SmmOptions& options,
              const CancelToken& cancel);

/// Same, against an explicit plan cache instead of the process-wide
/// smm_plan_cache() — each shard of the sharded service (DESIGN.md §13)
/// owns a partitioned cache so hot shapes stay cache-local without
/// cross-shard lock traffic.
template <typename T>
void smm_gemm(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, T beta,
              MatrixView<T> c, int nthreads, const SmmOptions& options,
              const CancelToken& cancel, PlanCache& cache);

/// BLAS-style: C = alpha * op(A) * op(B) + beta * C. Transposition is a
/// view; a transposed A makes the packing-optional heuristic prefer
/// packing (strided rows defeat the vector kernels otherwise).
template <typename T>
void smm_gemm(Trans trans_a, Trans trans_b, T alpha, ConstMatrixView<T> a,
              ConstMatrixView<T> b, T beta, MatrixView<T> c,
              int nthreads = 1, const SmmOptions& options = {});

/// Stable hash of every SmmOptions field. This is the PlanCache
/// fingerprint smm_gemm dispatches under: two option sets that would
/// build different plans must never share a cache entry.
std::uint64_t options_fingerprint(const SmmOptions& options);

/// The process-wide plan cache behind smm_gemm. Warm calls (same shape,
/// scalar, nthreads, options) look their plan up here and build nothing —
/// the libxsmm-style dispatch the paper recommends for small shapes,
/// where plan construction would otherwise dominate the call. Exposed so
/// tests and benches can read the hit/miss/build counters and clear().
PlanCache& smm_plan_cache();

/// Pack B once against the cached plan for C(m x b.cols()) = A * B, then
/// replay with handle.run(alpha, a, beta, c) — the batch/inference idiom
/// where one B meets a stream of As. The handle borrows `b`.
template <typename T>
plan::PrepackedB<T> smm_prepack_b(ConstMatrixView<T> b, index_t m,
                                  int nthreads = 1,
                                  const SmmOptions& options = {});

/// The plan smm_gemm would execute, resolved against an explicit cache
/// (get_or_build under the options fingerprint; kAuto thread scaling
/// resolves to kMeasured — runtime-entry semantics). Building block for
/// batched/coalesced dispatch over per-shard caches.
std::shared_ptr<const plan::GemmPlan> cached_smm_plan(
    PlanCache& cache, GemmShape shape, plan::ScalarType scalar,
    int nthreads, const SmmOptions& options);

/// The check_finite screen smm_gemm applies: one pass over A, B (and C
/// when beta != 0), throwing kNonFinite and bumping the health counter on
/// the first non-finite value. Exposed so batched dispatch can screen
/// per item — a poisoned coalesced neighbor must fail alone, not via an
/// aggregate throw.
template <typename T>
void screen_finite(ConstMatrixView<T> a, ConstMatrixView<T> b, T beta,
                   ConstMatrixView<T> c);

/// The packing decisions the auto heuristic would take (tests/benches).
struct PackingDecision {
  bool pack_a = false;
  bool pack_b = false;
  bool edge_pack_b = false;
};
PackingDecision decide_packing(GemmShape shape, index_t elem_bytes,
                               const SmmOptions& options);

}  // namespace smm::core
