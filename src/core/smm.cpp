#include "src/core/smm.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "src/common/error.h"
#include "src/common/str.h"
#include "src/core/autotune.h"
#include "src/core/kernel_select.h"
#include "src/core/parallel_cost.h"
#include "src/core/parallel_select.h"
#include "src/core/plan_builder.h"
#include "src/core/plan_cache.h"
#include "src/plan/native_executor.h"
#include "src/robust/fault_injection.h"
#include "src/robust/health.h"
#include "src/tune/tune.h"

namespace smm::core {

namespace {

// Blocking of the reference SMM: mc/nc divisible by every main tile,
// kc large enough that SMM-sized K never splits.
constexpr index_t kMc = 240;
constexpr index_t kKc = 512;
constexpr index_t kNc = 480;

/// A block bigger than this (bytes) no longer fits comfortably next to the
/// other operands in the 2 MB shared L2 — only then is packing A worth it.
constexpr index_t kPackAThresholdBytes = 1024 * 1024;

/// B reuse count (M / mr) below which packing B cannot amortize: the P2C
/// ratio (M+N)/(2MN) says small M makes the packed elements too rarely
/// reused (Section III-A).
constexpr index_t kPackBMinReuseRows = 48;

/// B footprint below which packing buys nothing even with reuse: the
/// whole matrix already sits in the shared L2, so direct access is as
/// fast as a packed buffer and strictly cheaper (no copy) — the "small"
/// regime where the paper says to avoid packing altogether.
constexpr index_t kPackBFootprintBytes = 1024 * 1024;

class ReferenceSmm final : public libs::GemmStrategy {
 public:
  explicit ReferenceSmm(SmmOptions options) : options_(options) {
    traits_.name = "smm-ref";
    traits_.assembly_layers = "Layer 4-7";
    traits_.unroll = 8;
    traits_.kernel_tiles = "adaptive(16x4,12x4,8x8,...)";
    traits_.packs_a = false;
    traits_.packs_b = true;  // when it pays off
    traits_.edge = libs::EdgeStrategy::kEdgeKernels;
    traits_.parallel = libs::ParallelMethod::kMultiDim;
  }

  [[nodiscard]] const libs::LibraryTraits& traits() const override {
    return traits_;
  }

  [[nodiscard]] plan::GemmPlan make_plan(GemmShape shape,
                                         plan::ScalarType scalar,
                                         int nthreads) const override {
    plan::GemmPlan plan;
    plan.strategy = traits_.name;
    plan.shape = shape;
    plan.scalar = scalar;
    build_smm_plan(plan,
                   default_build_spec(shape, scalar, nthreads, options_));
    plan.validate();
    return plan;
  }

 private:
  SmmOptions options_;
  libs::LibraryTraits traits_;
};

}  // namespace

BuildSpec default_build_spec(GemmShape shape, plan::ScalarType scalar,
                             int nthreads, const SmmOptions& options) {
  BuildSpec spec;
  if (options.adaptive_kernel) {
    const KernelChoice choice = choose_main_tile(shape);
    spec.mr = choice.mr;
    spec.nr = choice.nr;
  } else {
    spec.mr = 16;
    spec.nr = 4;
  }
  spec.mc = kMc;
  spec.kc = kKc;
  spec.nc = kNc;

  int max_threads = nthreads;
  if (options.thread_cap > 0)
    max_threads = std::min(max_threads, options.thread_cap);
  // kAuto resolves to the static heuristic here: a directly built plan
  // must be a pure function of (shape, scalar, nthreads, options), or
  // simulated goldens would vary with the machine running the tests.
  // The runtime entry points opt into kMeasured before reaching this.
  const model::ParallelCostModel* cost =
      options.thread_scaling == SmmOptions::ThreadScaling::kMeasured
          ? &calibrated_cost_model()
          : nullptr;
  const ParallelChoice par_choice =
      choose_parallel(shape, std::max(1, max_threads), spec.mr, spec.nr,
                      spec.mc, spec.nc, 4, cost, spec.kc);
  spec.nthreads = par_choice.nthreads;
  spec.ways = par_choice.ways;
  spec.k_parts = par_choice.k_parts;

  const PackingDecision pd =
      decide_packing(shape, plan::elem_bytes(scalar), options);
  spec.pack_a = pd.pack_a;
  spec.pack_b = pd.pack_b;
  spec.edge_pack_b = pd.edge_pack_b;
  return spec;
}

PackingDecision decide_packing(GemmShape shape, index_t elem_bytes,
                               const SmmOptions& options) {
  PackingDecision out;
  switch (options.pack_a) {
    case SmmOptions::Packing::kAlways:
      out.pack_a = true;
      break;
    case SmmOptions::Packing::kNever:
      out.pack_a = false;
      break;
    case SmmOptions::Packing::kAuto:
      out.pack_a = shape.m * shape.k * elem_bytes > kPackAThresholdBytes;
      break;
  }
  switch (options.pack_b) {
    case SmmOptions::Packing::kAlways:
      out.pack_b = true;
      break;
    case SmmOptions::Packing::kNever:
      out.pack_b = false;
      break;
    case SmmOptions::Packing::kAuto:
      out.pack_b = shape.m >= kPackBMinReuseRows &&
                   shape.k * shape.n * elem_bytes > kPackBFootprintBytes;
      break;
  }
  out.edge_pack_b = !out.pack_b && options.edge_pack;
  return out;
}

const libs::GemmStrategy& reference_smm() {
  static const ReferenceSmm instance{SmmOptions{}};
  return instance;
}

std::uint64_t options_fingerprint(const SmmOptions& options) {
  // FNV-1a over every field: any option that changes the plan the builder
  // would emit must change the cache key, or two option sets alias.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(options.pack_a));
  mix(static_cast<std::uint64_t>(options.pack_b));
  mix(options.edge_pack ? 1u : 0u);
  mix(options.adaptive_kernel ? 1u : 0u);
  mix(static_cast<std::uint64_t>(
      static_cast<std::int64_t>(options.thread_cap)));
  mix(static_cast<std::uint64_t>(options.thread_scaling));
  mix(options.check_finite ? 1u : 0u);
  mix(static_cast<std::uint64_t>(options.abft));
  return h;
}

PlanCache& smm_plan_cache() {
  // Immortal (leaked): protect_across_fork registers atfork handlers
  // capturing the cache that can never be unregistered, so the cache
  // must survive static destruction (fork_guard.h).
  static PlanCache* cache = new PlanCache{reference_smm()};
  static const bool fork_guarded = (cache->protect_across_fork(), true);
  (void)fork_guarded;
  return *cache;
}

namespace {

/// The runtime entry points resolve kAuto to the measured cost model:
/// the decision (and the one-time calibration behind it) runs at most
/// once per (shape, scalar, nthreads, options) because it happens inside
/// the cached plan build.
SmmOptions resolve_runtime_scaling(const SmmOptions& options) {
  SmmOptions resolved = options;
  if (resolved.thread_scaling == SmmOptions::ThreadScaling::kAuto)
    resolved.thread_scaling = SmmOptions::ThreadScaling::kMeasured;
  return resolved;
}

/// Whether the tuner may speak for this (already resolved) option set:
/// only when every plan-shaping field is at its runtime default. An
/// explicit pack/tile/thread option is the caller overruling the
/// heuristics, and a tuned spec overruling the caller back would break
/// it; and a sample taken under exotic options would pollute the class
/// posterior the default-options traffic is keyed on. check_finite and
/// abft ride along freely — they never change the built plan.
bool tuner_applies(const SmmOptions& resolved) {
  static const SmmOptions defaults =
      resolve_runtime_scaling(SmmOptions{});
  return resolved.pack_a == defaults.pack_a &&
         resolved.pack_b == defaults.pack_b &&
         resolved.edge_pack == defaults.edge_pack &&
         resolved.adaptive_kernel == defaults.adaptive_kernel &&
         resolved.thread_cap == defaults.thread_cap &&
         resolved.thread_scaling == defaults.thread_scaling;
}

}  // namespace

std::shared_ptr<const plan::GemmPlan> cached_smm_plan(
    PlanCache& cache, GemmShape shape, plan::ScalarType scalar,
    int nthreads, const SmmOptions& options) {
  const SmmOptions resolved = resolve_runtime_scaling(options);
  std::uint64_t fingerprint = options_fingerprint(resolved);
  // The tuner's say (DESIGN.md §14): in adapt mode an installed winner
  // (or exploration candidate) overrides the default spec, keyed by an
  // epoch-bumped fingerprint — a re-plan is an ordinary cache miss under
  // a new key, so stale plans age out of the LRU without a flush. kOff
  // skips even the lookup; the zero PlanChoice leaves the key unchanged.
  tune::PlanChoice choice;
  if (tune::mode() != tune::Mode::kOff && tuner_applies(resolved)) {
    choice = tune::tuner().plan_choice(tune::ShapeClass{
        shape.m, shape.n, shape.k, static_cast<int>(scalar), nthreads});
    fingerprint ^= choice.fingerprint;
  }
  return cache.get_or_build(shape, scalar, nthreads, fingerprint, [&] {
    if (choice.has_spec)
      return build_tuned_plan(shape, scalar, choice.spec);
    return ReferenceSmm{resolved}.make_plan(shape, scalar, nthreads);
  });
}

/// check_finite screen: one pass over each operand before any plan work.
/// C only participates when beta != 0 (a beta of zero overwrites C, so a
/// stale NaN there is harmless). The injection site models a poisoned
/// request without having to corrupt a real buffer.
template <typename T>
void screen_finite(ConstMatrixView<T> a, ConstMatrixView<T> b, T beta,
                   ConstMatrixView<T> c) {
  const auto reject = [](const char* operand, index_t i, index_t j) {
    robust::health().nonfinite_rejections.fetch_add(
        1, std::memory_order_relaxed);
    throw Error(ErrorCode::kNonFinite,
                strprintf("smm_gemm: non-finite value in %s at (%ld, %ld)",
                          operand, static_cast<long>(i),
                          static_cast<long>(j)));
  };
  if (robust::should_fire(robust::FaultSite::kNonFiniteInput))
    reject("A (injected)", 0, 0);
  const auto scan = [&](ConstMatrixView<T> v, const char* operand) {
    for (index_t j = 0; j < v.cols(); ++j)
      for (index_t i = 0; i < v.rows(); ++i)
        if (!std::isfinite(v(i, j))) reject(operand, i, j);
  };
  scan(a, "A");
  scan(b, "B");
  if (beta != T(0)) scan(c, "C");
}

template void screen_finite(ConstMatrixView<float>, ConstMatrixView<float>,
                            float, ConstMatrixView<float>);
template void screen_finite(ConstMatrixView<double>,
                            ConstMatrixView<double>, double,
                            ConstMatrixView<double>);

namespace {

template <typename T>
void smm_gemm_impl(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b,
                   T beta, MatrixView<T> c, int nthreads,
                   const SmmOptions& options, const CancelToken* cancel,
                   PlanCache* cache = nullptr) {
  SMM_EXPECT_CODE(a.rows() == c.rows() && b.cols() == c.cols() &&
                      a.cols() == b.rows(),
                  ErrorCode::kBadShape, "smm_gemm dimension mismatch");
  SMM_EXPECT_CODE((a.empty() || a.data() != nullptr) &&
                      (b.empty() || b.data() != nullptr) &&
                      (c.empty() || c.data() != nullptr),
                  ErrorCode::kBadShape, "smm_gemm operand has null data");
  SMM_EXPECT(nthreads >= 1, "smm_gemm needs at least one thread");
  if (options.check_finite)
    screen_finite(a, b, beta, ConstMatrixView<T>(c));
  // A token already stopped at entry rejects the call before the plan is
  // even looked up — C untouched.
  if (cancel != nullptr) cancel->throw_if_stopped();
  const GemmShape shape{c.rows(), c.cols(), a.cols()};
  const auto scalar = sizeof(T) == 4 ? plan::ScalarType::kF32
                                     : plan::ScalarType::kF64;
  // Warm path: the plan is a cache lookup, not a rebuild — on SMM-sized
  // shapes the build costs more than the multiply it describes.
  PlanCache& plans = cache != nullptr ? *cache : smm_plan_cache();
  const auto p = cached_smm_plan(plans, shape, scalar, nthreads, options);
  // 1-in-N sampling for the autotuner: two clock reads bracket the plain
  // executor. Deliberately NOT execute_plan_timed here — its per-op
  // instrumentation costs roughly a clock read per op, which both
  // inflates small-shape observations and biases candidate trials toward
  // plans with fewer, larger ops (a small-tile plan would look slower
  // than it is). The per-op Table II breakdown stays a diagnosis path
  // (table2_breakdown, execute_plan_timed); the posterior needs only the
  // end-to-end wall. The unsampled path pays one relaxed load + branch.
  if (tune::mode() != tune::Mode::kOff &&
      tuner_applies(resolve_runtime_scaling(options))) {
    const tune::ShapeClass sc{shape.m, shape.n, shape.k,
                              static_cast<int>(scalar), nthreads};
    const tune::SampleToken token = tune::tuner().sample_token(sc);
    if (token.sample) {
      const auto t0 = std::chrono::steady_clock::now();
      if (cancel != nullptr && cancel->valid())
        plan::execute_plan(*p, alpha, a, b, beta, c, *cancel);
      else
        plan::execute_plan(*p, alpha, a, b, beta, c);
      // Reached only on a clean run: a cancel unwind throws past the
      // record, so a truncated call never pollutes the posterior.
      const double wall_ns =
          static_cast<double>(std::chrono::duration_cast<
                                  std::chrono::nanoseconds>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count());
      tune::tuner().record(sc, token, wall_ns, {});
      return;
    }
  }
  if (cancel != nullptr && cancel->valid())
    plan::execute_plan(*p, alpha, a, b, beta, c, *cancel);
  else
    plan::execute_plan(*p, alpha, a, b, beta, c);
}

}  // namespace

std::unique_ptr<libs::GemmStrategy> make_reference_smm(SmmOptions options) {
  return std::make_unique<ReferenceSmm>(options);
}

template <typename T>
void smm_gemm(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, T beta,
              MatrixView<T> c, int nthreads, const SmmOptions& options) {
  smm_gemm_impl(alpha, a, b, beta, c, nthreads, options, nullptr);
}

template void smm_gemm(float, ConstMatrixView<float>, ConstMatrixView<float>,
                       float, MatrixView<float>, int, const SmmOptions&);
template void smm_gemm(double, ConstMatrixView<double>,
                       ConstMatrixView<double>, double, MatrixView<double>,
                       int, const SmmOptions&);

template <typename T>
void smm_gemm(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, T beta,
              MatrixView<T> c, int nthreads, const SmmOptions& options,
              const CancelToken& cancel) {
  smm_gemm_impl(alpha, a, b, beta, c, nthreads, options, &cancel);
}

template void smm_gemm(float, ConstMatrixView<float>, ConstMatrixView<float>,
                       float, MatrixView<float>, int, const SmmOptions&,
                       const CancelToken&);
template void smm_gemm(double, ConstMatrixView<double>,
                       ConstMatrixView<double>, double, MatrixView<double>,
                       int, const SmmOptions&, const CancelToken&);

template <typename T>
void smm_gemm(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, T beta,
              MatrixView<T> c, int nthreads, const SmmOptions& options,
              const CancelToken& cancel, PlanCache& cache) {
  smm_gemm_impl(alpha, a, b, beta, c, nthreads, options, &cancel, &cache);
}

template void smm_gemm(float, ConstMatrixView<float>, ConstMatrixView<float>,
                       float, MatrixView<float>, int, const SmmOptions&,
                       const CancelToken&, PlanCache&);
template void smm_gemm(double, ConstMatrixView<double>,
                       ConstMatrixView<double>, double, MatrixView<double>,
                       int, const SmmOptions&, const CancelToken&,
                       PlanCache&);

template <typename T>
void smm_gemm(Trans trans_a, Trans trans_b, T alpha, ConstMatrixView<T> a,
              ConstMatrixView<T> b, T beta, MatrixView<T> c, int nthreads,
              const SmmOptions& options) {
  SmmOptions adjusted = options;
  // A transposed col-major input reads op(A) with strided rows, which
  // only the scalar generic kernel can consume in place: pack it instead
  // (the pack absorbs the transpose at copy cost).
  if (trans_a == Trans::kTrans &&
      adjusted.pack_a == SmmOptions::Packing::kAuto) {
    adjusted.pack_a = SmmOptions::Packing::kAlways;
  }
  smm_gemm(alpha, apply_trans(trans_a, a), apply_trans(trans_b, b), beta, c,
           nthreads, adjusted);
}

template void smm_gemm(Trans, Trans, float, ConstMatrixView<float>,
                       ConstMatrixView<float>, float, MatrixView<float>,
                       int, const SmmOptions&);
template void smm_gemm(Trans, Trans, double, ConstMatrixView<double>,
                       ConstMatrixView<double>, double, MatrixView<double>,
                       int, const SmmOptions&);

template <typename T>
plan::PrepackedB<T> smm_prepack_b(ConstMatrixView<T> b, index_t m,
                                  int nthreads, const SmmOptions& options) {
  SMM_EXPECT(m >= 0, "smm_prepack_b needs a non-negative M");
  SMM_EXPECT(nthreads >= 1, "smm_prepack_b needs at least one thread");
  const GemmShape shape{m, b.cols(), b.rows()};
  const auto scalar = sizeof(T) == 4 ? plan::ScalarType::kF32
                                     : plan::ScalarType::kF64;
  return plan::PrepackedB<T>(
      cached_smm_plan(smm_plan_cache(), shape, scalar, nthreads, options),
      b);
}

template plan::PrepackedB<float> smm_prepack_b(ConstMatrixView<float>,
                                               index_t, int,
                                               const SmmOptions&);
template plan::PrepackedB<double> smm_prepack_b(ConstMatrixView<double>,
                                                index_t, int,
                                                const SmmOptions&);

}  // namespace smm::core
