// Adaptive main-tile selection for the reference SMM (Section IV,
// "having a set of optimal micro-kernels" + "adaptive code generation").
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "src/common/types.h"

namespace smm::core {

struct KernelChoice {
  index_t mr = 16;
  index_t nr = 4;
  double score = 0.0;
  std::string reason;
};

/// Main tiles the smm family provides.
const std::vector<std::pair<index_t, index_t>>& smm_main_tiles();

/// Score a candidate tile for a shape: CMR (Eq. 5) discounted by edge
/// coverage losses on M and N.
double tile_score(GemmShape shape, index_t mr, index_t nr);

/// Pick the best main tile for the shape.
KernelChoice choose_main_tile(GemmShape shape);

}  // namespace smm::core
