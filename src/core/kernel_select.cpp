#include "src/core/kernel_select.h"

#include "src/common/error.h"
#include "src/common/str.h"
#include "src/model/equations.h"

namespace smm::core {

const std::vector<std::pair<index_t, index_t>>& smm_main_tiles() {
  static const std::vector<std::pair<index_t, index_t>> tiles{
      {16, 4}, {12, 4}, {8, 8}, {8, 4}, {4, 4}};
  return tiles;
}

double tile_score(GemmShape shape, index_t mr, index_t nr) {
  SMM_EXPECT(mr > 0 && nr > 0, "bad tile");
  if (shape.m == 0 || shape.n == 0) return 0.0;
  // CMR has diminishing returns once the tile hides the load latency; a
  // saturating transform keeps edge coverage the deciding factor between
  // two already-good tiles (raw CMR would pick 8x8 even for M = 12).
  const double c = model::cmr(mr, nr);
  const double base = c / (c + 2.0);
  // Under-filled tiles: a tile taller/wider than the matrix wastes its CMR.
  const double fill_m =
      std::min(1.0, static_cast<double>(shape.m) / static_cast<double>(mr));
  const double fill_n =
      std::min(1.0, static_cast<double>(shape.n) / static_cast<double>(nr));
  // Edge fraction: the share of rows/cols handled by smaller edge kernels,
  // each roughly `edge_penalty` as efficient as the main kernel (small
  // tiles waste vector lanes and are load-port bound, Section III-B).
  constexpr double kEdgePenalty = 0.45;
  const double em = shape.m >= mr
                        ? static_cast<double>(shape.m % mr) /
                              static_cast<double>(shape.m)
                        : 0.0;
  const double en = shape.n >= nr
                        ? static_cast<double>(shape.n % nr) /
                              static_cast<double>(shape.n)
                        : 0.0;
  const double edge_factor =
      (1.0 - em * (1.0 - kEdgePenalty)) * (1.0 - en * (1.0 - kEdgePenalty));
  return base * fill_m * fill_n * edge_factor;
}

KernelChoice choose_main_tile(GemmShape shape) {
  KernelChoice best;
  best.score = -1.0;
  for (const auto& [mr, nr] : smm_main_tiles()) {
    const double s = tile_score(shape, mr, nr);
    if (s > best.score) {
      best = {mr, nr, s, ""};
    }
  }
  best.reason = strprintf("%ldx%ld: score %.2f (CMR %.2f) for %ldx%ldx%ld",
                          static_cast<long>(best.mr),
                          static_cast<long>(best.nr), best.score,
                          model::cmr(best.mr, best.nr),
                          static_cast<long>(shape.m),
                          static_cast<long>(shape.n),
                          static_cast<long>(shape.k));
  return best;
}

}  // namespace smm::core
