#include "src/core/parallel_cost.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <vector>

#include "src/core/kernel_select.h"
#include "src/core/plan_builder.h"
#include "src/matrix/matrix.h"
#include "src/pack/pack.h"
#include "src/plan/native_executor.h"
#include "src/plan/plan.h"
#include "src/threading/barrier.h"
#include "src/threading/thread_pool.h"

namespace smm::core {

namespace {

double now_ns() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Best-of-reps mean: run `fn` once to warm, then `reps` batches of
/// `iters` calls and return the fastest batch's per-call ns. The min
/// discards scheduler preemptions, which on a timeshared host dwarf the
/// quantities being measured.
template <typename Fn>
double min_of_reps_ns(int reps, int iters, Fn&& fn) {
  fn();
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_ns();
    for (int i = 0; i < iters; ++i) fn();
    const double per_call = (now_ns() - t0) / iters;
    if (r == 0 || per_call < best) best = per_call;
  }
  return best;
}

/// One measurement, guarded: calibration runs lazily on the first
/// measured-path call, possibly with fault injection armed or under a
/// sanitizer; any throw falls back to the reference constant instead of
/// leaking out of what callers see as a pure query.
template <typename Fn>
double measure_or(double fallback, Fn&& fn) {
  try {
    return fn();
  } catch (...) {
    return fallback;
  }
}

double measure_flop_ns() {
  // Warm single-thread 48^3 run through the same plan machinery the
  // serial path uses; end-to-end so the constant absorbs per-call fixed
  // costs the way the paper's effective-performance curves do.
  const GemmShape shape{48, 48, 48};
  const KernelChoice tile = choose_main_tile(shape);
  BuildSpec spec;
  spec.mr = tile.mr;
  spec.nr = tile.nr;
  spec.pack_a = false;
  spec.pack_b = false;
  plan::GemmPlan plan;
  plan.strategy = "smm-calibrate";
  plan.shape = shape;
  plan.scalar = plan::ScalarType::kF32;
  build_smm_plan(plan, spec);
  Matrix<float> a(shape.m, shape.k);
  Matrix<float> b(shape.k, shape.n);
  Matrix<float> c(shape.m, shape.n);
  a.fill(1.0f);
  b.fill(0.5f);
  c.fill(0.0f);
  const double flops = 2.0 * shape.m * shape.n * shape.k;
  const double ns = min_of_reps_ns(5, 8, [&] {
    plan::execute_plan<float>(plan, 1.0f, a.view(), b.view(), 0.0f, c.view());
  });
  return std::max(1e-4, ns / flops);
}

double measure_pack_ns_per_elem() {
  Matrix<float> b(256, 128);
  b.fill(1.0f);
  std::vector<float> dst(
      static_cast<std::size_t>(pack::packed_b_size(256, 128, 4, true)));
  const double elems = 256.0 * 128.0;
  const double ns = min_of_reps_ns(
      5, 8, [&] { pack::pack_b<float>(b.view(), 4, true, dst.data()); });
  return std::max(1e-3, ns / elems);
}

double measure_dispatch_ns(int hw) {
  // Empty 2-wide region: pure fork-join handshake. Oversubscribed hosts
  // get fewer iterations — each region already costs context switches.
  const int iters = hw >= 2 ? 32 : 8;
  const double ns =
      min_of_reps_ns(4, iters, [] { par::run_parallel(2, [](int) {}); });
  return std::max(50.0, ns);
}

double measure_barrier_ns(int hw, double dispatch_ns) {
  const int rounds = hw >= 2 ? 256 : 32;
  const double region_ns = min_of_reps_ns(3, 1, [&] {
    par::Barrier bar(2);
    par::run_parallel(2, [&](int) {
      for (int r = 0; r < rounds; ++r) bar.arrive_and_wait();
    });
  });
  return std::max(1.0, (region_ns - dispatch_ns) / rounds);
}

model::ParallelCostModel calibrate() {
  const model::ParallelCostModel ref = model::reference_cost_model();
  model::ParallelCostModel m;
  m.hw_threads = par::native_threads_available();
  m.flop_ns = measure_or(ref.flop_ns, measure_flop_ns);
  m.pack_ns_per_elem =
      measure_or(ref.pack_ns_per_elem, measure_pack_ns_per_elem);
  m.dispatch_ns = measure_or(
      ref.dispatch_ns, [&] { return measure_dispatch_ns(m.hw_threads); });
  m.barrier_ns = measure_or(ref.barrier_ns, [&] {
    return measure_barrier_ns(m.hw_threads, m.dispatch_ns);
  });
  m.measured = true;
  return m;
}

/// Once-per-process slot the model is resolved into, either by measuring
/// (calibrated_cost_model) or by seeding from a persisted tune table
/// (set_calibrated_model) — whichever happens first pins it for the
/// process lifetime, so every consumer prices against one set of
/// constants.
struct ModelSlot {
  std::mutex mu;
  std::atomic<bool> ready{false};
  model::ParallelCostModel model;
};

ModelSlot& model_slot() {
  static ModelSlot* slot = new ModelSlot;  // immortal: fork/exit safe
  return *slot;
}

}  // namespace

const model::ParallelCostModel& calibrated_cost_model() {
  ModelSlot& slot = model_slot();
  if (!slot.ready.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(slot.mu);
    if (!slot.ready.load(std::memory_order_relaxed)) {
      slot.model = calibrate();
      slot.ready.store(true, std::memory_order_release);
    }
  }
  return slot.model;
}

bool set_calibrated_model(const model::ParallelCostModel& m) {
  ModelSlot& slot = model_slot();
  std::lock_guard<std::mutex> lock(slot.mu);
  if (slot.ready.load(std::memory_order_relaxed)) return false;
  slot.model = m;
  slot.model.measured = true;
  slot.ready.store(true, std::memory_order_release);
  return true;
}

}  // namespace smm::core
