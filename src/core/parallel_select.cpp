#include "src/core/parallel_select.h"

#include <algorithm>

#include "src/common/error.h"

namespace smm::core {

namespace {

/// Margin a parallel candidate must beat serial (and a wider candidate
/// must beat a narrower one) by before it is preferred: mispredicting
/// toward too many threads costs real barrier/dispatch time, while
/// mispredicting toward too few costs only modelled speedup.
constexpr double kHysteresis = 0.90;

/// Static decision: power-of-two thread count capped by the tile grid,
/// with the deep-K escape hatch. This is the deterministic baseline the
/// cost model refines.
ParallelChoice choose_static(GemmShape shape, int max_threads, index_t mr,
                             index_t nr, index_t mc, index_t nc,
                             index_t min_tiles_per_thread) {
  ParallelChoice choice;
  const index_t tiles_m = (shape.m + mr - 1) / mr;
  const index_t tiles_n = (shape.n + nr - 1) / nr;
  const index_t tiles = tiles_m * tiles_n;
  index_t cap = std::max<index_t>(1, tiles / min_tiles_per_thread);
  cap = std::min<index_t>(cap, max_threads);
  // Prefer power-of-two counts: they factor cleanly into ways and map onto
  // the machine's panel structure (8 panels x 8 cores).
  int threads = 1;
  while (threads * 2 <= cap) threads *= 2;

  // Deep-K escape hatch: if the tile grid cannot feed the budget but K
  // can be split into substantial slices (>= 256 each), parallelize K
  // with a reduction instead.
  constexpr index_t kMinKSlice = 256;
  if (threads < max_threads / 2 && shape.k >= 2 * kMinKSlice) {
    index_t k_cap = std::min<index_t>(max_threads, shape.k / kMinKSlice);
    int k_parts = 1;
    while (k_parts * 2 <= k_cap) k_parts *= 2;
    if (k_parts > threads) {
      choice.nthreads = k_parts;
      choice.k_parts = k_parts;
      return choice;
    }
  }
  choice.nthreads = threads;
  choice.ways = par::choose_ways(shape, threads, mr, nr, mc, nc);
  return choice;
}

/// Cost-model decision: price every power-of-two thread count up to the
/// static cap (and the deep-K candidates) in predicted wall-clock and
/// keep the cheapest, with hysteresis toward fewer threads.
ParallelChoice choose_measured(GemmShape shape, int max_threads, index_t mr,
                               index_t nr, index_t mc, index_t kc, index_t nc,
                               index_t min_tiles_per_thread,
                               const model::ParallelCostModel& cost) {
  const index_t tiles_m = (shape.m + mr - 1) / mr;
  const index_t tiles_n = (shape.n + nr - 1) / nr;
  const index_t tiles = tiles_m * tiles_n;
  index_t cap = std::max<index_t>(1, tiles / min_tiles_per_thread);
  cap = std::min<index_t>(cap, max_threads);

  ParallelChoice best;  // serial
  double best_ns = model::predict_parallel_ns(cost, shape, 1, 1, par::Ways{},
                                              mr, nr, mc, kc, nc);
  for (int threads = 2; threads <= cap; threads *= 2) {
    ParallelChoice cand;
    cand.nthreads = threads;
    cand.ways = par::choose_ways(shape, threads, mr, nr, mc, nc);
    const double ns = model::predict_parallel_ns(
        cost, shape, threads, 1, cand.ways, mr, nr, mc, kc, nc);
    if (ns < kHysteresis * best_ns) {
      best = cand;
      best_ns = ns;
    }
  }

  // Deep-K candidates are priced like everything else (slab reduction
  // included) instead of being gated on a thread-count heuristic.
  constexpr index_t kMinKSlice = 256;
  if (shape.k >= 2 * kMinKSlice) {
    const index_t k_cap =
        std::min<index_t>(max_threads, shape.k / kMinKSlice);
    for (int parts = 2; parts <= k_cap; parts *= 2) {
      const double ns = model::predict_parallel_ns(
          cost, shape, parts, parts, par::Ways{}, mr, nr, mc, kc, nc);
      if (ns < kHysteresis * best_ns) {
        best = ParallelChoice{};
        best.nthreads = parts;
        best.k_parts = parts;
        best_ns = ns;
      }
    }
  }
  return best;
}

}  // namespace

ParallelChoice choose_parallel(GemmShape shape, int max_threads, index_t mr,
                               index_t nr, index_t mc, index_t nc,
                               index_t min_tiles_per_thread,
                               const model::ParallelCostModel* cost,
                               index_t kc) {
  SMM_EXPECT(max_threads >= 1, "need at least one thread");
  if (shape.m == 0 || shape.n == 0 || shape.k == 0) return ParallelChoice{};
  if (cost != nullptr)
    return choose_measured(shape, max_threads, mr, nr, mc, kc, nc,
                           min_tiles_per_thread, *cost);
  return choose_static(shape, max_threads, mr, nr, mc, nc,
                       min_tiles_per_thread);
}

}  // namespace smm::core
