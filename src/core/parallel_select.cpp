#include "src/core/parallel_select.h"

#include <algorithm>

#include "src/common/error.h"

namespace smm::core {

ParallelChoice choose_parallel(GemmShape shape, int max_threads, index_t mr,
                               index_t nr, index_t mc, index_t nc,
                               index_t min_tiles_per_thread) {
  SMM_EXPECT(max_threads >= 1, "need at least one thread");
  ParallelChoice choice;
  if (shape.m == 0 || shape.n == 0 || shape.k == 0) {
    choice.nthreads = 1;
    return choice;
  }
  const index_t tiles_m = (shape.m + mr - 1) / mr;
  const index_t tiles_n = (shape.n + nr - 1) / nr;
  const index_t tiles = tiles_m * tiles_n;
  index_t cap = std::max<index_t>(1, tiles / min_tiles_per_thread);
  cap = std::min<index_t>(cap, max_threads);
  // Prefer power-of-two counts: they factor cleanly into ways and map onto
  // the machine's panel structure (8 panels x 8 cores).
  int threads = 1;
  while (threads * 2 <= cap) threads *= 2;

  // Deep-K escape hatch: if the tile grid cannot feed the budget but K
  // can be split into substantial slices (>= 256 each), parallelize K
  // with a reduction instead.
  constexpr index_t kMinKSlice = 256;
  if (threads < max_threads / 2 && shape.k >= 2 * kMinKSlice) {
    index_t k_cap = std::min<index_t>(max_threads, shape.k / kMinKSlice);
    int k_parts = 1;
    while (k_parts * 2 <= k_cap) k_parts *= 2;
    if (k_parts > threads) {
      choice.nthreads = k_parts;
      choice.k_parts = k_parts;
      return choice;
    }
  }
  choice.nthreads = threads;
  choice.ways = par::choose_ways(shape, threads, mr, nr, mc, nc);
  return choice;
}

}  // namespace smm::core
