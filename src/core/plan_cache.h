// Plan dispatch cache — the practical form of the paper's "adaptive code
// generation" recommendation (Section IV): like LIBXSMM's JIT dispatch,
// the expensive shape-specific artifact (here a GemmPlan instead of
// machine code) is built once per shape and looked up on every call.
// Thread-safe; LRU-bounded.
#pragma once

#include <atomic>
#include <list>
#include <map>
#include <memory>
#include <mutex>

#include "src/libs/gemm_interface.h"
#include "src/plan/plan.h"

namespace smm::core {

class PlanCache {
 public:
  /// Caches plans produced by `strategy` (which must outlive the cache).
  explicit PlanCache(const libs::GemmStrategy& strategy,
                     std::size_t capacity = 256);

  /// The plan for (shape, scalar, nthreads): cached, or built and
  /// inserted. Returned as shared_ptr so an entry may be evicted while
  /// callers still execute it.
  std::shared_ptr<const plan::GemmPlan> get(GemmShape shape,
                                            plan::ScalarType scalar,
                                            int nthreads);

  [[nodiscard]] std::size_t size() const;
  // Counters are read lock-free while writers hold the mutex, so they
  // must be atomic (relaxed: they are statistics, not synchronization).
  [[nodiscard]] std::size_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  /// Plans built by callers bypassing or racing the cache (observability:
  /// every miss implies one build; concurrent same-shape misses build
  /// redundantly and the loser's build is counted here too).
  [[nodiscard]] std::size_t builds() const {
    return builds_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  void clear();

 private:
  struct Key {
    index_t m, n, k;
    int scalar;
    int nthreads;
    auto operator<=>(const Key&) const = default;
  };

  const libs::GemmStrategy& strategy_;
  const std::size_t capacity_;
  mutable std::mutex mu_;
  // LRU: most recent at front; map points into the list.
  std::list<std::pair<Key, std::shared_ptr<const plan::GemmPlan>>> lru_;
  std::map<Key, decltype(lru_)::iterator> index_;
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
  std::atomic<std::size_t> builds_{0};
};

}  // namespace smm::core
