// Plan dispatch cache — the practical form of the paper's "adaptive code
// generation" recommendation (Section IV): like LIBXSMM's JIT dispatch,
// the expensive shape-specific artifact (here a GemmPlan instead of
// machine code) is built once per shape and looked up on every call.
// Thread-safe; LRU-bounded; concurrent misses on the same key are
// single-flighted (one build, every racer gets the same plan).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>

#include "src/libs/gemm_interface.h"
#include "src/plan/plan.h"

namespace smm::core {

class PlanCache {
 public:
  /// Builds the plan for a key on a miss; runs outside the cache lock.
  using PlanBuilder = std::function<plan::GemmPlan()>;

  /// Caches plans produced by `strategy` (which must outlive the cache).
  explicit PlanCache(const libs::GemmStrategy& strategy,
                     std::size_t capacity = 256);

  /// The plan for (shape, scalar, nthreads, fingerprint): cached, or
  /// built by the constructor strategy and inserted. `fingerprint`
  /// disambiguates plans that share a shape but were built under
  /// different options (e.g. core::options_fingerprint) — without it a
  /// cache serving several option sets would alias their plans. Returned
  /// as shared_ptr so an entry may be evicted while callers still
  /// execute it.
  std::shared_ptr<const plan::GemmPlan> get(GemmShape shape,
                                            plan::ScalarType scalar,
                                            int nthreads,
                                            std::uint64_t fingerprint = 0);

  /// Like get(), but a miss builds through `build` instead of the
  /// constructor strategy — the hook that lets one process-wide cache
  /// serve every option set. Concurrent misses on one key are
  /// single-flighted: the first caller builds, the racers block on the
  /// in-flight build and share its plan (counted as hits — they did not
  /// build). A build that throws propagates to its own caller only;
  /// waiters that shared the failed build retry the lookup (becoming
  /// builders themselves if needed), so one transient fault cannot fan
  /// out across every concurrent call, and a failed build is never
  /// cached. If inserting the freshly built plan fails (memory
  /// pressure), the plan is served uncached instead of throwing.
  std::shared_ptr<const plan::GemmPlan> get_or_build(
      GemmShape shape, plan::ScalarType scalar, int nthreads,
      std::uint64_t fingerprint, const PlanBuilder& build);

  [[nodiscard]] std::size_t size() const;
  // Counters are read lock-free while writers hold the mutex, so they
  // must be atomic (relaxed: they are statistics, not synchronization).
  [[nodiscard]] std::size_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  /// Plans actually constructed on behalf of this cache. Single-flight
  /// makes builds() == misses() in steady state; the counter stays
  /// separate so tests can assert "warm calls build nothing".
  [[nodiscard]] std::size_t builds() const {
    return builds_.load(std::memory_order_relaxed);
  }
  /// Freshly built plans the cache could not insert (served uncached).
  [[nodiscard]] std::size_t insert_failures() const {
    return insert_failures_.load(std::memory_order_relaxed);
  }
  /// Sealed entries rejected on a hit (structural checksum mismatch —
  /// the cached plan rotted after insert). Each rejection quarantines
  /// the entry and falls through to a fresh build.
  [[nodiscard]] std::size_t seal_rejections() const {
    return seal_rejections_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  void clear();

  /// Fork safety (DESIGN.md §11): hold mu_ across fork() so the child's
  /// snapshot is consistent, and drop in-flight builds in the child —
  /// their builder threads died with the parent, so a child waiter on
  /// one of those futures would block forever. Registration is
  /// permanent: only immortal process-wide caches (smm_plan_cache,
  /// default_plan_cache) may call this, never per-instance caches.
  void protect_across_fork();

 private:
  struct Key {
    index_t m, n, k;
    int scalar;
    int nthreads;
    std::uint64_t fingerprint;
    auto operator<=>(const Key&) const = default;
  };
  using PlanPtr = std::shared_ptr<const plan::GemmPlan>;

  /// A cached plan plus the structural seal computed when it was built
  /// (integrity::plan_seal). Validated on every hit while the process
  /// integrity mode is on; a mismatch means the entry rotted in cache —
  /// it is quarantined (dropped) and the lookup falls through to a
  /// fresh build instead of serving the poisoned plan. The kPlanCacheFlip
  /// injection site corrupts the *stored seal* (under mu_), never the
  /// shared immutable plan — concurrent executors may be reading it.
  struct Entry {
    Key key;
    PlanPtr plan;
    std::uint64_t seal = 0;
  };

  const libs::GemmStrategy& strategy_;
  const std::size_t capacity_;
  mutable std::mutex mu_;
  // LRU: most recent at front; map points into the list.
  std::list<Entry> lru_;
  std::map<Key, decltype(lru_)::iterator> index_;
  // Builds in flight: racers on the same key wait on the shared future
  // instead of building redundantly. Entries are removed (under mu_)
  // when the build completes or throws.
  std::map<Key, std::shared_future<PlanPtr>> inflight_;
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
  std::atomic<std::size_t> builds_{0};
  std::atomic<std::size_t> insert_failures_{0};
  std::atomic<std::size_t> seal_rejections_{0};
};

}  // namespace smm::core
