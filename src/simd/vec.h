// Portable 128-bit SIMD vector abstraction.
//
// Micro-kernels in smmkit are written against this type instead of NEON
// intrinsics: Vec<float> models one ARMv8 "Vn.4S" register (4 floats),
// Vec<double> models "Vn.2D" (2 doubles). The operations mirror the
// instructions the paper's assembly uses — full-width load/store (ldr/str
// q-form), broadcast (dup), and lane-broadcast fused multiply-add
// (fmla vD.4s, vA.4s, vB.s[lane]).
//
// Implementation uses GCC/Clang vector extensions so -O2 lowers each op to
// one SSE/NEON instruction on the host while the code stays ISA-portable.
#pragma once

#include <cstring>

#include "src/common/types.h"

namespace smm::simd {

/// Number of scalars of type T in one 128-bit vector register.
template <typename T>
inline constexpr index_t kLanes = static_cast<index_t>(16 / sizeof(T));

namespace detail {
// The vector_size attribute is ignored on dependent types, so the raw
// vector type is provided through explicit specializations.
template <typename T>
struct RawVec;
template <>
struct RawVec<float> {
  using type = float __attribute__((vector_size(16)));
};
template <>
struct RawVec<double> {
  using type = double __attribute__((vector_size(16)));
};
}  // namespace detail

template <typename T>
struct Vec {
  static constexpr index_t lanes = kLanes<T>;
  using Raw = typename detail::RawVec<T>::type;

  Raw v;

  Vec() : v{} {}
  explicit Vec(Raw raw) : v(raw) {}

  /// Broadcast a scalar into all lanes (NEON `dup`).
  static Vec broadcast(T value) {
    Vec out;
    for (index_t i = 0; i < lanes; ++i) out.v[i] = value;
    return out;
  }

  /// All-zero register (`movi v, #0`).
  static Vec zero() { return Vec{}; }

  /// Full-width load from (possibly unaligned) memory (`ldr q, [x]`).
  static Vec load(const T* p) {
    Vec out;
    std::memcpy(&out.v, p, sizeof(Raw));
    return out;
  }

  /// Full-width store (`str q, [x]`).
  void store(T* p) const { std::memcpy(p, &v, sizeof(Raw)); }

  /// Load `count` (< lanes) scalars, zero the rest. Models the masked /
  /// element-wise loads an edge kernel must fall back to.
  static Vec load_partial(const T* p, index_t count) {
    Vec out;
    for (index_t i = 0; i < count && i < lanes; ++i) out.v[i] = p[i];
    return out;
  }

  /// Store only the first `count` lanes.
  void store_partial(T* p, index_t count) const {
    for (index_t i = 0; i < count && i < lanes; ++i) p[i] = v[i];
  }

  /// Gather `count` scalars with stride (edge-case access without packing —
  /// the discontiguous pattern of paper Fig. 8).
  static Vec load_strided(const T* p, index_t stride, index_t count) {
    Vec out;
    for (index_t i = 0; i < count && i < lanes; ++i) out.v[i] = p[i * stride];
    return out;
  }

  [[nodiscard]] T lane(index_t i) const { return v[i]; }

  Vec operator+(Vec o) const { return Vec(v + o.v); }
  Vec operator-(Vec o) const { return Vec(v - o.v); }
  Vec operator*(Vec o) const { return Vec(v * o.v); }
};

/// d += a * b element-wise (`fmla vd, va, vb`).
template <typename T>
inline void fma(Vec<T>& d, Vec<T> a, Vec<T> b) {
  d.v += a.v * b.v;
}

/// d += a * b[lane]  (`fmla vd.4s, va.4s, vb.s[lane]`) — the core
/// rank-1-update instruction of every GEMM micro-kernel in the paper.
template <typename T, int kLane>
inline void fma_lane(Vec<T>& d, Vec<T> a, Vec<T> b) {
  static_assert(kLane >= 0 && kLane < kLanes<T>);
  d.v += a.v * b.v[kLane];
}

/// Runtime-lane variant for generic (non-unrolled) kernels.
template <typename T>
inline void fma_lane_rt(Vec<T>& d, Vec<T> a, Vec<T> b, index_t lane) {
  d.v += a.v * Vec<T>::broadcast(b.v[lane]).v;
}

/// d += a * s with a scalar s already in a register.
template <typename T>
inline void fma_scalar(Vec<T>& d, Vec<T> a, T s) {
  d.v += a.v * Vec<T>::broadcast(s).v;
}

/// Horizontal sum of all lanes (`faddp` reductions in dot-style kernels).
template <typename T>
inline T hsum(Vec<T> a) {
  T total = T(0);
  for (index_t i = 0; i < Vec<T>::lanes; ++i) total += a.v[i];
  return total;
}

using Vec4f = Vec<float>;
using Vec2d = Vec<double>;

}  // namespace smm::simd
