#include "src/simd/vec.h"

namespace smm::simd {

// Header-only module; this TU pins the static_asserts below so a bad
// configuration fails at library build time, not first use.
static_assert(Vec4f::lanes == 4);
static_assert(Vec2d::lanes == 2);
static_assert(sizeof(Vec4f) == 16);
static_assert(sizeof(Vec2d) == 16);

}  // namespace smm::simd
