#include "src/libs/goto_common.h"

#include <algorithm>

#include "src/common/error.h"
#include "src/kernels/registry.h"
#include "src/threading/partition.h"

namespace smm::libs {

using plan::GemmPlan;
using plan::KernelOp;
using plan::Op;
using plan::OperandRef;
using plan::PackAOp;
using plan::PackBOp;
using plan::ScaleCOp;

std::vector<Chunk> chunk_dim(index_t extent, index_t tile,
                             EdgeStrategy edge,
                             const std::vector<index_t>& sizes) {
  SMM_EXPECT(extent >= 0 && tile > 0, "bad chunk_dim arguments");
  std::vector<Chunk> out;
  if (extent == 0) return out;
  if (edge == EdgeStrategy::kPadding) {
    for (index_t off = 0; off < extent; off += tile)
      out.push_back({off, tile, std::min(tile, extent - off)});
    return out;
  }
  index_t off = 0;
  while (off + tile <= extent) {
    out.push_back({off, tile, tile});
    off += tile;
  }
  if (off < extent) {
    for (const index_t c : kern::decompose_edge(extent - off, sizes)) {
      out.push_back({off, c, c});
      off += c;
    }
  }
  return out;
}

std::vector<index_t> chunk_elem_offsets(const std::vector<Chunk>& chunks,
                                        index_t kc) {
  std::vector<index_t> out(chunks.size());
  index_t acc = 0;
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    out[i] = acc;
    acc += chunks[i].tile * kc;
  }
  return out;
}

namespace {

OperandRef packed_ref(const PackedBlockRef& block, std::size_t chunk,
                      index_t tile) {
  OperandRef ref;
  ref.kind = OperandRef::Kind::kBuffer;
  ref.buffer = block.buffer;
  ref.offset = block.chunk_offsets[chunk];
  ref.ps = tile;
  ref.pstride = 0;
  ref.kstride = tile;
  return ref;
}

}  // namespace

void emit_gebp_tiles(std::vector<Op>& ops, const TileConfig& tiles,
                     index_t kc_eff, bool first_k,
                     const PackedBlockRef* a_ref,
                     const PackedBlockRef* b_ref, index_t ii, index_t jj,
                     index_t kk, const std::vector<Chunk>& m_list,
                     const std::vector<Chunk>& n_list, std::size_t j_begin,
                     std::size_t j_end, std::size_t i_begin,
                     std::size_t i_end) {
  const auto& registry = kern::KernelRegistry::instance();
  for (std::size_t jc = j_begin; jc < j_end; ++jc) {
    const Chunk& nch = n_list[jc];
    for (std::size_t ic = i_begin; ic < i_end; ++ic) {
      const Chunk& mch = m_list[ic];
      KernelOp op;
      op.kernel = registry.find_tile(tiles.family, static_cast<int>(mch.tile),
                                     static_cast<int>(nch.tile));
      op.kc = kc_eff;
      op.i0 = ii + mch.offset;
      op.j0 = jj + nch.offset;
      op.useful_m = mch.useful;
      op.useful_n = nch.useful;
      op.first_k_block = first_k;
      if (a_ref != nullptr) {
        op.a = packed_ref(*a_ref, ic, mch.tile);
      } else {
        op.a.kind = OperandRef::Kind::kDirectA;
        op.a.row0 = op.i0;
        op.a.col0 = kk;
      }
      if (b_ref != nullptr) {
        op.b = packed_ref(*b_ref, jc, nch.tile);
      } else {
        op.b.kind = OperandRef::Kind::kDirectB;
        op.b.row0 = kk;
        op.b.col0 = op.j0;
      }
      ops.push_back(op);
    }
  }
}

plan::PackAOp make_pack_a_op(const TileConfig& tiles,
                             const std::vector<Chunk>& m_list,
                             const std::vector<index_t>& offsets,
                             std::size_t c0, std::size_t c1, int buffer,
                             index_t ii, index_t kk, index_t kc_eff) {
  SMM_EXPECT(c0 < c1 && c1 <= m_list.size(), "bad pack A chunk range");
  PackAOp op;
  op.buffer = buffer;
  op.dst_offset = offsets[c0];
  op.i0 = ii + m_list[c0].offset;
  op.k0 = kk;
  op.kc = kc_eff;
  op.mr = tiles.mr;
  if (tiles.edge == EdgeStrategy::kPadding) {
    op.pad = true;
    // Padding mode: uniform mr panels; the covered extent is the useful
    // rows only (the packer zero-fills the rest of the last panel).
    const Chunk& last = m_list[c1 - 1];
    op.mc = last.offset + last.useful - m_list[c0].offset;
  } else {
    op.pad = false;
    op.mc = 0;
    for (std::size_t c = c0; c < c1; ++c) {
      op.chunks.push_back(m_list[c].tile);
      op.mc += m_list[c].tile;
    }
  }
  return op;
}

plan::PackBOp make_pack_b_op(const TileConfig& tiles,
                             const std::vector<Chunk>& n_list,
                             const std::vector<index_t>& offsets,
                             std::size_t c0, std::size_t c1, int buffer,
                             index_t kk, index_t jj, index_t kc_eff) {
  SMM_EXPECT(c0 < c1 && c1 <= n_list.size(), "bad pack B chunk range");
  PackBOp op;
  op.buffer = buffer;
  op.dst_offset = offsets[c0];
  op.k0 = kk;
  op.j0 = jj + n_list[c0].offset;
  op.kc = kc_eff;
  op.nr = tiles.nr;
  if (tiles.edge == EdgeStrategy::kPadding) {
    op.pad = true;
    const Chunk& last = n_list[c1 - 1];
    op.nc = last.offset + last.useful - n_list[c0].offset;
  } else {
    op.pad = false;
    op.nc = 0;
    for (std::size_t c = c0; c < c1; ++c) {
      op.chunks.push_back(n_list[c].tile);
      op.nc += n_list[c].tile;
    }
  }
  return op;
}

void emit_scale_c(plan::GemmPlan& plan) {
  // k == 0: C = beta * C, rows split across the plan's threads.
  for (int t = 0; t < plan.nthreads; ++t) {
    const par::Range rows = par::split_range(plan.shape.m, plan.nthreads, t);
    if (rows.size() == 0) continue;
    ScaleCOp op;
    op.i0 = rows.begin;
    op.j0 = 0;
    op.rows = rows.size();
    op.cols = plan.shape.n;
    plan.thread_ops[static_cast<std::size_t>(t)].push_back(op);
  }
}

namespace {

index_t padded_extent(index_t extent, index_t tile) {
  return (extent + tile - 1) / tile * tile;
}

}  // namespace

void build_singlethread(GemmPlan& plan, const GotoConfig& cfg) {
  const GemmShape shape = plan.shape;
  plan.nthreads = 1;
  plan.thread_ops.assign(1, {});
  plan.blocking = {cfg.mc, cfg.kc, cfg.nc, cfg.tiles.mr, cfg.tiles.nr};
  if (shape.m == 0 || shape.n == 0) return;
  if (shape.k == 0) {
    emit_scale_c(plan);
    return;
  }

  const int buf_a = cfg.pack_a
                        ? plan::add_buffer(
                              plan, padded_extent(std::min(cfg.mc, shape.m),
                                                  cfg.tiles.mr) *
                                        std::min(cfg.kc, shape.k))
                        : -1;
  const int buf_b = cfg.pack_b
                        ? plan::add_buffer(
                              plan, padded_extent(std::min(cfg.nc, shape.n),
                                                  cfg.tiles.nr) *
                                        std::min(cfg.kc, shape.k))
                        : -1;
  auto& ops = plan.thread_ops[0];

  auto pack_b_block = [&](PackedBlockRef& b_blk,
                          const std::vector<Chunk>& n_list, index_t jj,
                          index_t kk, index_t kc_eff) {
    b_blk.buffer = buf_b;
    b_blk.chunk_offsets = chunk_elem_offsets(n_list, kc_eff);
    ops.push_back(make_pack_b_op(cfg.tiles, n_list, b_blk.chunk_offsets, 0,
                                 n_list.size(), buf_b, kk, jj, kc_eff));
  };
  auto pack_a_block = [&](PackedBlockRef& a_blk,
                          const std::vector<Chunk>& m_list, index_t ii,
                          index_t kk, index_t kc_eff) {
    a_blk.buffer = buf_a;
    a_blk.chunk_offsets = chunk_elem_offsets(m_list, kc_eff);
    ops.push_back(make_pack_a_op(cfg.tiles, m_list, a_blk.chunk_offsets, 0,
                                 m_list.size(), buf_a, ii, kk, kc_eff));
  };

  if (!cfg.block_from_m) {
    // Col-major order (OpenBLAS/BLIS): jj -> kk -> ii (Fig. 4 Layers 1-3).
    // B~ is packed once per (jj, kk); A~ once per ii inside it.
    for (index_t jj = 0; jj < shape.n; jj += cfg.nc) {
      const index_t nc_eff = std::min(cfg.nc, shape.n - jj);
      const auto n_list = chunk_dim(nc_eff, cfg.tiles.nr, cfg.tiles.edge,
                                    cfg.tiles.n_chunks);
      for (index_t kk = 0; kk < shape.k; kk += cfg.kc) {
        const index_t kc_eff = std::min(cfg.kc, shape.k - kk);
        PackedBlockRef b_blk;
        if (cfg.pack_b) pack_b_block(b_blk, n_list, jj, kk, kc_eff);
        for (index_t ii = 0; ii < shape.m; ii += cfg.mc) {
          const index_t mc_eff = std::min(cfg.mc, shape.m - ii);
          const auto m_list = chunk_dim(mc_eff, cfg.tiles.mr,
                                        cfg.tiles.edge, cfg.tiles.m_chunks);
          PackedBlockRef a_blk;
          if (cfg.pack_a) pack_a_block(a_blk, m_list, ii, kk, kc_eff);
          emit_gebp_tiles(ops, cfg.tiles, kc_eff, kk == 0,
                          cfg.pack_a ? &a_blk : nullptr,
                          cfg.pack_b ? &b_blk : nullptr, ii, jj, kk, m_list,
                          n_list, 0, n_list.size(), 0, m_list.size());
        }
      }
    }
  } else {
    // Row-major mindset (Eigen): ii -> kk -> jj. A~ is packed once per
    // (ii, kk); B~ once per jj inside it.
    for (index_t ii = 0; ii < shape.m; ii += cfg.mc) {
      const index_t mc_eff = std::min(cfg.mc, shape.m - ii);
      const auto m_list = chunk_dim(mc_eff, cfg.tiles.mr, cfg.tiles.edge,
                                    cfg.tiles.m_chunks);
      for (index_t kk = 0; kk < shape.k; kk += cfg.kc) {
        const index_t kc_eff = std::min(cfg.kc, shape.k - kk);
        PackedBlockRef a_blk;
        if (cfg.pack_a) pack_a_block(a_blk, m_list, ii, kk, kc_eff);
        for (index_t jj = 0; jj < shape.n; jj += cfg.nc) {
          const index_t nc_eff = std::min(cfg.nc, shape.n - jj);
          const auto n_list = chunk_dim(nc_eff, cfg.tiles.nr,
                                        cfg.tiles.edge, cfg.tiles.n_chunks);
          PackedBlockRef b_blk;
          if (cfg.pack_b) pack_b_block(b_blk, n_list, jj, kk, kc_eff);
          emit_gebp_tiles(ops, cfg.tiles, kc_eff, kk == 0,
                          cfg.pack_a ? &a_blk : nullptr,
                          cfg.pack_b ? &b_blk : nullptr, ii, jj, kk, m_list,
                          n_list, 0, n_list.size(), 0, m_list.size());
        }
      }
    }
  }
}

void build_grid_parallel(GemmPlan& plan, const GotoConfig& cfg,
                         int nthreads, par::Grid2D grid) {
  if (nthreads <= 1) {
    build_singlethread(plan, cfg);
    return;
  }
  if (grid.pr <= 0) grid = par::choose_grid(nthreads);
  SMM_EXPECT(grid.pr * grid.pc == nthreads, "grid must cover the threads");
  const GemmShape shape = plan.shape;
  plan.nthreads = nthreads;
  plan.thread_ops.assign(static_cast<std::size_t>(nthreads), {});
  plan.blocking = {cfg.mc, cfg.kc, cfg.nc, cfg.tiles.mr, cfg.tiles.nr};
  if (shape.m == 0 || shape.n == 0) return;
  if (shape.k == 0) {
    emit_scale_c(plan);
    return;
  }

  const index_t kc_max = std::min(cfg.kc, shape.k);

  // One shared, cooperatively packed B buffer and one barrier per column
  // group; a private A buffer per thread. A 1-row grid has nothing to
  // synchronize: each column thread packs and consumes its own B~, so no
  // barrier is declared or crossed (barrier-free disjoint-C plan).
  const bool sync_b = grid.pr > 1;
  std::vector<int> buf_b(static_cast<std::size_t>(grid.pc), -1);
  std::vector<int> group_barrier(static_cast<std::size_t>(grid.pc), -1);
  for (int c = 0; c < grid.pc; ++c) {
    const par::Range cols =
        par::split_range_aligned(shape.n, grid.pc, c, cfg.tiles.nr);
    const index_t width = std::min(cfg.nc, std::max<index_t>(cols.size(), 1));
    buf_b[static_cast<std::size_t>(c)] = plan::add_buffer(
        plan, padded_extent(width, cfg.tiles.nr) * kc_max);
    if (sync_b)
      group_barrier[static_cast<std::size_t>(c)] =
          plan::add_barrier(plan, grid.pr);
  }
  std::vector<int> buf_a(static_cast<std::size_t>(nthreads), -1);
  for (int t = 0; t < nthreads; ++t) {
    const int r = t / grid.pc;
    const par::Range rows =
        par::split_range_aligned(shape.m, grid.pr, r, cfg.tiles.mr);
    const index_t height =
        std::min(cfg.mc, std::max<index_t>(rows.size(), 1));
    buf_a[static_cast<std::size_t>(t)] = plan::add_buffer(
        plan, padded_extent(height, cfg.tiles.mr) * kc_max);
  }

  for (int t = 0; t < nthreads; ++t) {
    const int r = t / grid.pc;
    const int c = t % grid.pc;
    auto& ops = plan.thread_ops[static_cast<std::size_t>(t)];
    const par::Range rows =
        par::split_range_aligned(shape.m, grid.pr, r, cfg.tiles.mr);
    const par::Range cols =
        par::split_range_aligned(shape.n, grid.pc, c, cfg.tiles.nr);
    const int bb = buf_b[static_cast<std::size_t>(c)];
    const int bar = group_barrier[static_cast<std::size_t>(c)];

    for (index_t jj = cols.begin; jj < cols.end; jj += cfg.nc) {
      const index_t nc_eff = std::min(cfg.nc, cols.end - jj);
      const auto n_list = chunk_dim(nc_eff, cfg.tiles.nr, cfg.tiles.edge,
                                    cfg.tiles.n_chunks);
      for (index_t kk = 0; kk < shape.k; kk += cfg.kc) {
        const index_t kc_eff = std::min(cfg.kc, shape.k - kk);
        const bool first_k = kk == 0;
        PackedBlockRef b_blk;
        b_blk.buffer = bb;
        b_blk.chunk_offsets = chunk_elem_offsets(n_list, kc_eff);
        // Cooperative B pack: the pr threads of this column group split
        // the chunk list.
        const par::Range my_chunks = par::split_range(
            static_cast<index_t>(n_list.size()), grid.pr, r);
        if (my_chunks.size() > 0) {
          ops.push_back(make_pack_b_op(
              cfg.tiles, n_list, b_blk.chunk_offsets,
              static_cast<std::size_t>(my_chunks.begin),
              static_cast<std::size_t>(my_chunks.end), bb, kk, jj, kc_eff));
        }
        if (sync_b) ops.push_back(plan::BarrierOp{bar});

        for (index_t ii = rows.begin; ii < rows.end; ii += cfg.mc) {
          const index_t mc_eff = std::min(cfg.mc, rows.end - ii);
          const auto m_list = chunk_dim(mc_eff, cfg.tiles.mr, cfg.tiles.edge,
                                        cfg.tiles.m_chunks);
          PackedBlockRef a_blk;
          a_blk.buffer = buf_a[static_cast<std::size_t>(t)];
          a_blk.chunk_offsets = chunk_elem_offsets(m_list, kc_eff);
          ops.push_back(make_pack_a_op(cfg.tiles, m_list,
                                       a_blk.chunk_offsets, 0, m_list.size(),
                                       a_blk.buffer, ii, kk, kc_eff));
          emit_gebp_tiles(ops, cfg.tiles, kc_eff, first_k, &a_blk, &b_blk,
                          ii, jj, kk, m_list, n_list, 0, n_list.size(), 0,
                          m_list.size());
        }
        // B buffer is reused next kk step: everyone must be done reading.
        if (sync_b) ops.push_back(plan::BarrierOp{bar});
      }
    }
  }
}

void build_ways_parallel(GemmPlan& plan, const GotoConfig& cfg,
                         par::Ways ways) {
  SMM_EXPECT(cfg.pack_a && cfg.pack_b,
             "ways driver assumes cooperative packing of both operands");
  const GemmShape shape = plan.shape;
  const int nthreads = ways.total();
  plan.nthreads = nthreads;
  plan.thread_ops.assign(static_cast<std::size_t>(nthreads), {});
  plan.blocking = {cfg.mc, cfg.kc, cfg.nc, cfg.tiles.mr, cfg.tiles.nr};
  if (shape.m == 0 || shape.n == 0) return;
  if (shape.k == 0) {
    emit_scale_c(plan);
    return;
  }

  const index_t kc_max = std::min(cfg.kc, shape.k);
  const int group_b_threads = ways.ic * ways.jr * ways.ir;  // share B~
  const int group_a_threads = ways.jr * ways.ir;            // share A~
  // A 1-thread packing group owns its buffer outright: nobody else ever
  // reads or overwrites it, so its barriers are elided entirely (a pure
  // jc decomposition synchronizes only at the fork-join edges). Table II
  // charges every crossing to Sync, so the builder emits none it can
  // prove unnecessary.
  const bool sync_b = group_b_threads > 1;
  const bool sync_a = group_a_threads > 1;

  // Buffers/barriers: one B per jc group, one A per (jc, ic) subgroup.
  std::vector<int> buf_b(static_cast<std::size_t>(ways.jc));
  std::vector<int> bar_b(static_cast<std::size_t>(ways.jc), -1);
  for (int jc = 0; jc < ways.jc; ++jc) {
    const par::Range cols =
        par::split_range_aligned(shape.n, ways.jc, jc, cfg.tiles.nr);
    const index_t width =
        std::min(cfg.nc, std::max<index_t>(cols.size(), 1));
    buf_b[static_cast<std::size_t>(jc)] = plan::add_buffer(
        plan, padded_extent(width, cfg.tiles.nr) * kc_max);
    if (sync_b)
      bar_b[static_cast<std::size_t>(jc)] =
          plan::add_barrier(plan, group_b_threads);
  }
  std::vector<int> buf_a(static_cast<std::size_t>(ways.jc * ways.ic));
  std::vector<int> bar_a(static_cast<std::size_t>(ways.jc * ways.ic), -1);
  for (int jc = 0; jc < ways.jc; ++jc) {
    for (int ic = 0; ic < ways.ic; ++ic) {
      const par::Range rows =
          par::split_range_aligned(shape.m, ways.ic, ic, cfg.tiles.mr);
      const index_t height =
          std::min(cfg.mc, std::max<index_t>(rows.size(), 1));
      const auto slot = static_cast<std::size_t>(jc * ways.ic + ic);
      buf_a[slot] = plan::add_buffer(
          plan, padded_extent(height, cfg.tiles.mr) * kc_max);
      if (sync_a) bar_a[slot] = plan::add_barrier(plan, group_a_threads);
    }
  }

  for (int t = 0; t < nthreads; ++t) {
    // Thread decomposition: t = ((wjc*ic + wic) * jr + wjr) * ir + wir.
    int rest = t;
    const int wir = rest % ways.ir;
    rest /= ways.ir;
    const int wjr = rest % ways.jr;
    rest /= ways.jr;
    const int wic = rest % ways.ic;
    rest /= ways.ic;
    const int wjc = rest;

    auto& ops = plan.thread_ops[static_cast<std::size_t>(t)];
    const par::Range cols =
        par::split_range_aligned(shape.n, ways.jc, wjc, cfg.tiles.nr);
    const par::Range rows =
        par::split_range_aligned(shape.m, ways.ic, wic, cfg.tiles.mr);
    const auto a_slot = static_cast<std::size_t>(wjc * ways.ic + wic);
    const int my_buf_b = buf_b[static_cast<std::size_t>(wjc)];
    const int my_bar_b = bar_b[static_cast<std::size_t>(wjc)];
    const int my_buf_a = buf_a[a_slot];
    const int my_bar_a = bar_a[a_slot];
    // Rank within the packing groups.
    const int rank_in_b = (wic * ways.jr + wjr) * ways.ir + wir;
    const int rank_in_a = wjr * ways.ir + wir;

    for (index_t jj = cols.begin; jj < cols.end; jj += cfg.nc) {
      const index_t nc_eff = std::min(cfg.nc, cols.end - jj);
      const auto n_list = chunk_dim(nc_eff, cfg.tiles.nr, cfg.tiles.edge,
                                    cfg.tiles.n_chunks);
      for (index_t kk = 0; kk < shape.k; kk += cfg.kc) {
        const index_t kc_eff = std::min(cfg.kc, shape.k - kk);
        const bool first_k = kk == 0;
        PackedBlockRef b_blk;
        b_blk.buffer = my_buf_b;
        b_blk.chunk_offsets = chunk_elem_offsets(n_list, kc_eff);
        const par::Range bchunks =
            par::split_range(static_cast<index_t>(n_list.size()),
                             group_b_threads, rank_in_b);
        if (bchunks.size() > 0) {
          ops.push_back(make_pack_b_op(
              cfg.tiles, n_list, b_blk.chunk_offsets,
              static_cast<std::size_t>(bchunks.begin),
              static_cast<std::size_t>(bchunks.end), my_buf_b, kk, jj,
              kc_eff));
        }
        if (sync_b) ops.push_back(plan::BarrierOp{my_bar_b});

        for (index_t ii = rows.begin; ii < rows.end; ii += cfg.mc) {
          const index_t mc_eff = std::min(cfg.mc, rows.end - ii);
          const auto m_list = chunk_dim(mc_eff, cfg.tiles.mr,
                                        cfg.tiles.edge, cfg.tiles.m_chunks);
          PackedBlockRef a_blk;
          a_blk.buffer = my_buf_a;
          a_blk.chunk_offsets = chunk_elem_offsets(m_list, kc_eff);
          const par::Range achunks =
              par::split_range(static_cast<index_t>(m_list.size()),
                               group_a_threads, rank_in_a);
          if (achunks.size() > 0) {
            ops.push_back(make_pack_a_op(
                cfg.tiles, m_list, a_blk.chunk_offsets,
                static_cast<std::size_t>(achunks.begin),
                static_cast<std::size_t>(achunks.end), my_buf_a, ii, kk,
                kc_eff));
          }
          if (sync_a) ops.push_back(plan::BarrierOp{my_bar_a});

          // jr/ir ways split the micro-tile grid of this block.
          const par::Range jtiles = par::split_range(
              static_cast<index_t>(n_list.size()), ways.jr, wjr);
          const par::Range itiles = par::split_range(
              static_cast<index_t>(m_list.size()), ways.ir, wir);
          emit_gebp_tiles(ops, cfg.tiles, kc_eff, first_k, &a_blk, &b_blk,
                          ii, jj, kk, m_list, n_list,
                          static_cast<std::size_t>(jtiles.begin),
                          static_cast<std::size_t>(jtiles.end),
                          static_cast<std::size_t>(itiles.begin),
                          static_cast<std::size_t>(itiles.end));
          // A~ is overwritten next ii step; everyone must be done with it.
          if (sync_a) ops.push_back(plan::BarrierOp{my_bar_a});
        }
        // End of the kk step (B~ about to be overwritten).
        if (sync_b) ops.push_back(plan::BarrierOp{my_bar_b});
      }
    }
  }
}

}  // namespace smm::libs
