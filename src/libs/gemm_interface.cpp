#include "src/libs/gemm_interface.h"

#include "src/common/error.h"
#include "src/common/str.h"
#include "src/plan/native_executor.h"

namespace smm::libs {

const char* to_string(EdgeStrategy e) {
  return e == EdgeStrategy::kEdgeKernels ? "edge-kernels" : "zero-padding";
}

const char* to_string(ParallelMethod p) {
  switch (p) {
    case ParallelMethod::kSingleThread:
      return "single-thread";
    case ParallelMethod::kGrid2D:
      return "2d-grid";
    case ParallelMethod::kMultiDim:
      return "multi-dimensional";
  }
  return "?";
}

template <typename T>
void run(const GemmStrategy& strategy, T alpha, ConstMatrixView<T> a,
         ConstMatrixView<T> b, T beta, MatrixView<T> c, int nthreads) {
  SMM_EXPECT_CODE(a.rows() == c.rows() && b.cols() == c.cols() &&
                      a.cols() == b.rows(),
                  ErrorCode::kBadShape, "gemm dimension mismatch");
  SMM_EXPECT_CODE((a.empty() || a.data() != nullptr) &&
                      (b.empty() || b.data() != nullptr) &&
                      (c.empty() || c.data() != nullptr),
                  ErrorCode::kBadShape, "gemm operand has null data");
  SMM_EXPECT(nthreads >= 1, "run needs at least one thread");
  const GemmShape shape{c.rows(), c.cols(), a.cols()};
  const auto scalar = sizeof(T) == 4 ? plan::ScalarType::kF32
                                     : plan::ScalarType::kF64;
  const int threads = std::min(nthreads, strategy.traits().max_threads);
  plan::GemmPlan p = strategy.make_plan(shape, scalar, threads);
  plan::execute_plan(p, alpha, a, b, beta, c);
}

template void run(const GemmStrategy&, float, ConstMatrixView<float>,
                  ConstMatrixView<float>, float, MatrixView<float>, int);
template void run(const GemmStrategy&, double, ConstMatrixView<double>,
                  ConstMatrixView<double>, double, MatrixView<double>, int);

template <typename T>
void run(const GemmStrategy& strategy, Trans trans_a, Trans trans_b, T alpha,
         ConstMatrixView<T> a, ConstMatrixView<T> b, T beta,
         MatrixView<T> c, int nthreads) {
  run(strategy, alpha, apply_trans(trans_a, a), apply_trans(trans_b, b),
      beta, c, nthreads);
}

template void run(const GemmStrategy&, Trans, Trans, float,
                  ConstMatrixView<float>, ConstMatrixView<float>, float,
                  MatrixView<float>, int);
template void run(const GemmStrategy&, Trans, Trans, double,
                  ConstMatrixView<double>, ConstMatrixView<double>, double,
                  MatrixView<double>, int);

std::string traits_table_row(const LibraryTraits& traits) {
  return strprintf("%-10s | %-10s | %6d | %-16s | %-5s%-5s | %-12s | %s",
                   traits.name.c_str(), traits.assembly_layers.c_str(),
                   traits.unroll, traits.kernel_tiles.c_str(),
                   traits.packs_a ? "packA" : "-",
                   traits.packs_b ? " packB" : " -",
                   to_string(traits.edge), to_string(traits.parallel));
}

}  // namespace smm::libs
