#include "src/libs/openblas_like/gemm_openblas_like.h"

#include "src/libs/goto_common.h"
#include "src/threading/partition.h"

namespace smm::libs {

namespace {

class OpenblasLike final : public GemmStrategy {
 public:
  OpenblasLike() {
    traits_.name = "openblas";
    traits_.assembly_layers = "Layer 4-7";
    traits_.unroll = 8;
    traits_.kernel_tiles = "16x4,8x8,4x4";
    traits_.packs_a = true;
    traits_.packs_b = true;
    traits_.edge = EdgeStrategy::kEdgeKernels;
    traits_.parallel = ParallelMethod::kGrid2D;

    // Blocking modelled after OpenBLAS's ARMV8 sgemm parameters; kc sized
    // so a 16 x kc sliver of A plus a kc x 4 sliver of B stay in L1.
    cfg_.tiles.family = "openblas";
    cfg_.tiles.mr = 16;
    cfg_.tiles.nr = 4;
    cfg_.tiles.m_chunks = {16, 8, 4, 2, 1};
    cfg_.tiles.n_chunks = {4, 2, 1};
    cfg_.tiles.edge = EdgeStrategy::kEdgeKernels;
    cfg_.mc = 128;
    cfg_.kc = 240;
    cfg_.nc = 4096;
  }

  [[nodiscard]] const LibraryTraits& traits() const override {
    return traits_;
  }

  [[nodiscard]] plan::GemmPlan make_plan(GemmShape shape,
                                         plan::ScalarType scalar,
                                         int nthreads) const override {
    plan::GemmPlan plan;
    plan.strategy = traits_.name;
    plan.shape = shape;
    plan.scalar = scalar;
    GotoConfig cfg = cfg_;
    if (scalar == plan::ScalarType::kF64) {
      // Same register budget, half the lanes: halve mr (OpenBLAS dgemm
      // uses 8x4 on ARMv8).
      cfg.tiles.mr = 8;
      cfg.tiles.m_chunks = {8, 4, 2, 1};
    }
    // The paper (Section III-D): OpenBLAS uses all threads on the M
    // dimension — per-thread workload mc/64 x nc x kc.
    build_grid_parallel(plan, cfg, nthreads, par::Grid2D{nthreads, 1});
    plan.validate();
    return plan;
  }

 private:
  LibraryTraits traits_;
  GotoConfig cfg_;
};

}  // namespace

const GemmStrategy& openblas_like() {
  static const OpenblasLike instance;
  return instance;
}

}  // namespace smm::libs
