// OpenBLAS-style GEMM strategy (paper Table I column 1):
//  - Goto blocking, col-major, jj -> kk -> ii loop order;
//  - packs A and B (A chunked at edge-kernel sizes);
//  - assembly Layers 4-7, main kernel 16x4 unroll 8 (software-pipelined);
//  - dedicated edge micro-kernels with the weak Fig. 7 instruction layout;
//  - fixed 2-D grid parallelization (Marker et al.).
#pragma once

#include "src/libs/gemm_interface.h"

namespace smm::libs {

/// Process-wide instance.
const GemmStrategy& openblas_like();

}  // namespace smm::libs
