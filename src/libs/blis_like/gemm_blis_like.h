// BLIS-style GEMM strategy (paper Table I column 2):
//  - Goto blocking, col-major loop order;
//  - packs A and B with zero padding to full tiles (edge cases computed
//    as padded full tiles, store masked);
//  - single assembly micro-kernel 8x12, unroll 4 (Layers 6-7);
//  - multi-dimensional parallelization: ways chosen per loop (jc/ic/jr/ir)
//    at plan time from the matrix shape — small dimensions are simply not
//    parallelized, and packing barriers involve only the threads sharing
//    the buffer (Section III-D).
#pragma once

#include "src/libs/gemm_interface.h"
#include "src/threading/partition.h"

namespace smm::libs {

const GemmStrategy& blis_like();

/// The ways the strategy would pick (exposed for tests and the A2 bench).
par::Ways blis_ways_for(GemmShape shape, int nthreads,
                        plan::ScalarType scalar);

}  // namespace smm::libs
