#include "src/libs/blis_like/gemm_blis_like.h"

#include "src/common/error.h"
#include "src/libs/goto_common.h"
#include "src/threading/partition.h"

namespace smm::libs {

namespace {

GotoConfig blis_config(plan::ScalarType scalar) {
  GotoConfig cfg;
  cfg.tiles.family = "blis";
  cfg.tiles.mr = 8;
  cfg.tiles.nr = 12;
  cfg.tiles.edge = EdgeStrategy::kPadding;
  cfg.mc = 120;  // multiple of mr, sized for a slice of the shared 2 MB L2
  cfg.kc = 256;
  cfg.nc = 1020;  // multiple of nr; jc ways split N before nc blocking
  (void)scalar;  // the 8x12 tile serves both precisions in this model
  return cfg;
}

class BlisLike final : public GemmStrategy {
 public:
  BlisLike() {
    traits_.name = "blis";
    traits_.assembly_layers = "Layer 6-7";
    traits_.unroll = 4;
    traits_.kernel_tiles = "8x12";
    traits_.packs_a = true;
    traits_.packs_b = true;
    traits_.edge = EdgeStrategy::kPadding;
    traits_.parallel = ParallelMethod::kMultiDim;
  }

  [[nodiscard]] const LibraryTraits& traits() const override {
    return traits_;
  }

  [[nodiscard]] plan::GemmPlan make_plan(GemmShape shape,
                                         plan::ScalarType scalar,
                                         int nthreads) const override {
    plan::GemmPlan plan;
    plan.strategy = traits_.name;
    plan.shape = shape;
    plan.scalar = scalar;
    const GotoConfig cfg = blis_config(scalar);
    if (nthreads <= 1) {
      build_singlethread(plan, cfg);
    } else {
      const par::Ways ways = par::choose_ways(
          shape, nthreads, cfg.tiles.mr, cfg.tiles.nr, cfg.mc, cfg.nc);
      SMM_EXPECT(ways.total() == nthreads, "ways must use every thread");
      build_ways_parallel(plan, cfg, ways);
    }
    plan.validate();
    return plan;
  }

 private:
  LibraryTraits traits_;
};

}  // namespace

const GemmStrategy& blis_like() {
  static const BlisLike instance;
  return instance;
}

par::Ways blis_ways_for(GemmShape shape, int nthreads,
                        plan::ScalarType scalar) {
  const GotoConfig cfg = blis_config(scalar);
  return par::choose_ways(shape, nthreads, cfg.tiles.mr, cfg.tiles.nr,
                          cfg.mc, cfg.nc);
}

}  // namespace smm::libs
