// Reference triple-loop GEMM — the numerical oracle for the test suite.
#pragma once

#include "src/common/types.h"
#include "src/matrix/view.h"

namespace smm::libs {

/// C = alpha * A * B + beta * C, straightforward i/j/k loops, accumulation
/// in double regardless of T for a tighter oracle.
template <typename T>
void naive_gemm(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, T beta,
                MatrixView<T> c);

}  // namespace smm::libs
