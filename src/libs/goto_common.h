// Shared plan-construction machinery for Goto-style blocked GEMM
// (paper Fig. 4). The four library models and the reference SMM all build
// their plans from these pieces; what differs between them is the
// TileConfig (kernel family, edge strategy), the blocking sizes, whether
// they pack, the loop order, and the parallelization driver.
#pragma once

#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/libs/gemm_interface.h"
#include "src/plan/plan.h"
#include "src/threading/partition.h"

namespace smm::libs {

/// Kernel-tile configuration of one strategy.
struct TileConfig {
  std::string family;  ///< kernel registry family
  index_t mr = 8;      ///< main kernel tile
  index_t nr = 4;
  /// Chunk heights available for M edges (descending, ending in 1);
  /// only used with EdgeStrategy::kEdgeKernels.
  std::vector<index_t> m_chunks{8, 4, 2, 1};
  std::vector<index_t> n_chunks{4, 2, 1};
  EdgeStrategy edge = EdgeStrategy::kEdgeKernels;
};

/// One tile slot along a dimension after chunking.
struct Chunk {
  index_t offset = 0;  ///< start within the blocked extent
  index_t tile = 0;    ///< kernel extent == stored extent in the buffer
  index_t useful = 0;  ///< useful extent (< tile only when padding)
};

/// Cut `extent` into kernel-sized chunks.
///  - kEdgeKernels: full `tile`s, remainder decomposed greedily over
///    `sizes` (e.g. 75 with tile 16 -> 16,16,16,16,8,2,1), useful == tile.
///  - kPadding: ceil(extent/tile) chunks of `tile`, last useful short.
std::vector<Chunk> chunk_dim(index_t extent, index_t tile,
                             EdgeStrategy edge,
                             const std::vector<index_t>& sizes);

/// Element offset of each chunk in a packed buffer with kc columns/rows.
std::vector<index_t> chunk_elem_offsets(const std::vector<Chunk>& chunks,
                                        index_t kc);

/// A packed block in a buffer: per-chunk element offsets aligned with the
/// chunk list used to emit kernels.
struct PackedBlockRef {
  int buffer = -1;
  std::vector<index_t> chunk_offsets;
};

/// Strategy-level configuration for the generic drivers.
struct GotoConfig {
  TileConfig tiles;
  index_t mc = 128;
  index_t kc = 256;
  index_t nc = 512;
  bool pack_a = true;
  bool pack_b = true;
  /// Eigen: row-major mindset, outermost blocking over M.
  bool block_from_m = false;
};

/// Emit kernel ops for the GEBP tile loops (Algorithm 1: j outer, i inner)
/// over chunk index ranges [j_begin, j_end) x [i_begin, i_end).
/// a_ref/b_ref null means the operand is read directly from the unpacked
/// matrix (packing-optional path); kk anchors direct references.
void emit_gebp_tiles(std::vector<plan::Op>& ops, const TileConfig& tiles,
                     index_t kc_eff, bool first_k,
                     const PackedBlockRef* a_ref,
                     const PackedBlockRef* b_ref, index_t ii, index_t jj,
                     index_t kk, const std::vector<Chunk>& m_list,
                     const std::vector<Chunk>& n_list, std::size_t j_begin,
                     std::size_t j_end, std::size_t i_begin,
                     std::size_t i_end);

/// PackAOp for chunk subrange [c0, c1) of a blocked A region.
plan::PackAOp make_pack_a_op(const TileConfig& tiles,
                             const std::vector<Chunk>& m_list,
                             const std::vector<index_t>& offsets,
                             std::size_t c0, std::size_t c1, int buffer,
                             index_t ii, index_t kk, index_t kc_eff);

/// PackBOp for chunk subrange [c0, c1) of a blocked B region.
plan::PackBOp make_pack_b_op(const TileConfig& tiles,
                             const std::vector<Chunk>& n_list,
                             const std::vector<index_t>& offsets,
                             std::size_t c0, std::size_t c1, int buffer,
                             index_t kk, index_t jj, index_t kc_eff);

/// Single-thread Goto driver (Fig. 4's six loops).
void build_singlethread(plan::GemmPlan& plan, const GotoConfig& cfg);

/// 2-D grid parallel driver (Marker / OpenBLAS, Section III-D): C split
/// into a pr x pc thread grid; column groups share a cooperatively packed
/// B buffer with barriers after PackB and at the end of each kk step
/// (elided when pr == 1 — each column thread then owns its B~ outright
/// and the plan is barrier-free).
/// `grid` with pr == 0 means "choose automatically" (most-square split);
/// OpenBLAS passes {nthreads, 1} — the paper: its per-thread workload is
/// mc/64 x nc x kc, i.e. all threads split M.
void build_grid_parallel(plan::GemmPlan& plan, const GotoConfig& cfg,
                         int nthreads, par::Grid2D grid = {0, 0});

/// Multi-dimensional (BLIS-style) parallel driver: explicit ways per loop.
/// jc groups share a B buffer; (jc, ic) subgroups share an A buffer; jr/ir
/// split the micro-tile grid. Barriers follow the paper's Section III-D
/// description (pack A, pack B, end of the kk loop), each involving only
/// the threads that share the buffer; 1-thread groups are provably
/// race-free and emit no barrier at all, so a pure-jc decomposition
/// (disjoint C columns, no K split) synchronizes only at the fork-join
/// edges. Requires pack_a && pack_b.
void build_ways_parallel(plan::GemmPlan& plan, const GotoConfig& cfg,
                         par::Ways ways);

/// Scale/zero C split across threads (the k == 0 degenerate GEMM).
void emit_scale_c(plan::GemmPlan& plan);

}  // namespace smm::libs
