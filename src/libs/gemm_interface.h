// Strategy interface: each of the paper's libraries (and the Section-IV
// reference SMM) is modelled as a GemmStrategy that compiles problems into
// GemmPlans. Table I's rows live in LibraryTraits.
#pragma once

#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/matrix/view.h"
#include "src/plan/plan.h"

namespace smm::libs {

/// How a strategy handles tiles that do not fill the micro-kernel
/// (Section III-B).
enum class EdgeStrategy {
  kEdgeKernels,  ///< dedicated smaller kernels (OpenBLAS, Eigen)
  kPadding       ///< compute a zero-padded full tile (BLIS, BLASFEO)
};

/// Section III-D's two parallelization methods (+ none).
enum class ParallelMethod { kSingleThread, kGrid2D, kMultiDim };

const char* to_string(EdgeStrategy e);
const char* to_string(ParallelMethod p);

struct LibraryTraits {
  std::string name;
  std::string assembly_layers;  ///< Table I row "Layers of assembly"
  int unroll = 1;               ///< Table I row "unrolling factor"
  std::string kernel_tiles;     ///< Table I row "mr x nr"
  bool packs_a = true;
  bool packs_b = true;
  bool panel_major_input = false;  ///< BLASFEO
  EdgeStrategy edge = EdgeStrategy::kEdgeKernels;
  ParallelMethod parallel = ParallelMethod::kGrid2D;
  int max_threads = 4096;
};

class GemmStrategy {
 public:
  virtual ~GemmStrategy() = default;

  [[nodiscard]] virtual const LibraryTraits& traits() const = 0;

  /// Compile a plan for this problem. nthreads is clamped to
  /// traits().max_threads (BLASFEO's SMM routines are single-threaded).
  [[nodiscard]] virtual plan::GemmPlan make_plan(GemmShape shape,
                                                 plan::ScalarType scalar,
                                                 int nthreads) const = 0;
};

/// Convenience: plan + native execution of C = alpha*A*B + beta*C.
template <typename T>
void run(const GemmStrategy& strategy, T alpha, ConstMatrixView<T> a,
         ConstMatrixView<T> b, T beta, MatrixView<T> c, int nthreads = 1);

/// Full BLAS-style entry: C = alpha * op(A) * op(B) + beta * C.
/// Transposition costs nothing up front (op() is a view); strategies that
/// pack absorb it in the pack, the packing-free paths fall back to the
/// generic kernel for strided rows.
template <typename T>
void run(const GemmStrategy& strategy, Trans trans_a, Trans trans_b, T alpha,
         ConstMatrixView<T> a, ConstMatrixView<T> b, T beta,
         MatrixView<T> c, int nthreads = 1);

/// One formatted row of the Table I comparison.
std::string traits_table_row(const LibraryTraits& traits);

}  // namespace smm::libs
