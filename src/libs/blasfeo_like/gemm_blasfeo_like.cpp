#include "src/libs/blasfeo_like/gemm_blasfeo_like.h"

#include <algorithm>

#include "src/common/error.h"
#include "src/kernels/registry.h"
#include "src/plan/plan.h"

namespace smm::libs {

namespace {

constexpr index_t kPs = 4;  // BLASFEO panel height

class BlasfeoLike final : public GemmStrategy {
 public:
  BlasfeoLike() {
    traits_.name = "blasfeo";
    traits_.assembly_layers = "Layer 6-7";
    traits_.unroll = 4;
    traits_.kernel_tiles = "16x4,8x8";
    traits_.packs_a = false;
    traits_.packs_b = false;
    traits_.panel_major_input = true;
    traits_.edge = EdgeStrategy::kPadding;
    traits_.parallel = ParallelMethod::kSingleThread;
    traits_.max_threads = 1;
  }

  [[nodiscard]] const LibraryTraits& traits() const override {
    return traits_;
  }

  [[nodiscard]] plan::GemmPlan make_plan(GemmShape shape,
                                         plan::ScalarType scalar,
                                         int nthreads) const override {
    SMM_EXPECT(nthreads <= 1, "blasfeo-like SMM routines are single-threaded");
    plan::GemmPlan plan;
    plan.strategy = traits_.name;
    plan.shape = shape;
    plan.scalar = scalar;
    plan.nthreads = 1;
    plan.thread_ops.assign(1, {});
    plan.conversion_outside_timing = true;
    plan.blocking = {shape.m, shape.k, shape.n, 16, kPs};
    if (shape.m == 0 || shape.n == 0) {
      plan.validate();
      return plan;
    }
    auto& ops = plan.thread_ops[0];
    if (shape.k == 0) {
      ops.push_back(plan::ScaleCOp{0, 0, shape.m, shape.n});
      plan.validate();
      return plan;
    }

    // Panel-major A (M x K) and Bt (N x K); rows padded to ps.
    const index_t m_pad = pad_up(shape.m);
    const index_t n_pad = pad_up(shape.n);
    const int buf_a = plan::add_buffer(plan, m_pad * shape.k);
    const int buf_bt = plan::add_buffer(plan, n_pad * shape.k);
    {
      plan::ConvertOp conv_a;
      conv_a.which = plan::ConvertOp::Which::kA;
      conv_a.buffer = buf_a;
      conv_a.ps = kPs;
      conv_a.transpose = false;
      ops.push_back(conv_a);
      plan::ConvertOp conv_b;
      conv_b.which = plan::ConvertOp::Which::kB;
      conv_b.buffer = buf_bt;
      conv_b.ps = kPs;
      conv_b.transpose = true;  // store Bt so kernels load B rows as vectors
      ops.push_back(conv_b);
    }

    // No outer blocking (Fig. 4 Layers 1-3 skipped): straight GEBP over
    // the padded extents with kc = K.
    const auto& registry = kern::KernelRegistry::instance();
    const std::vector<index_t> m_tiles{16, 8, 4};
    for (index_t j0 = 0; j0 < n_pad; j0 += kPs) {
      const index_t useful_n = std::min<index_t>(kPs, shape.n - j0);
      for (index_t i0 = 0; i0 < m_pad;) {
        index_t tile = 4;
        for (const index_t cand : m_tiles) {
          if (i0 + cand <= m_pad) {
            tile = cand;
            break;
          }
        }
        plan::KernelOp op;
        op.kernel = registry.find_tile("blasfeo", static_cast<int>(tile), 4);
        op.kc = shape.k;
        op.i0 = i0;
        op.j0 = j0;
        op.useful_m = std::min(tile, shape.m - i0);
        op.useful_n = useful_n;
        op.first_k_block = true;
        op.a.kind = plan::OperandRef::Kind::kBuffer;
        op.a.buffer = buf_a;
        op.a.offset = (i0 / kPs) * kPs * shape.k;
        op.a.ps = kPs;
        op.a.pstride = kPs * shape.k;
        op.a.kstride = kPs;
        op.b.kind = plan::OperandRef::Kind::kBuffer;
        op.b.buffer = buf_bt;
        op.b.offset = (j0 / kPs) * kPs * shape.k;
        op.b.ps = kPs;
        op.b.pstride = kPs * shape.k;
        op.b.kstride = kPs;
        ops.push_back(op);
        i0 += tile;
      }
    }
    plan.validate();
    return plan;
  }

 private:
  static index_t pad_up(index_t x) { return (x + kPs - 1) / kPs * kPs; }

  LibraryTraits traits_;
};

}  // namespace

const GemmStrategy& blasfeo_like() {
  static const BlasfeoLike instance;
  return instance;
}

}  // namespace smm::libs
