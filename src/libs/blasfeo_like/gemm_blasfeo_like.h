// BLASFEO-style GEMM strategy (paper Table I column 3):
//  - operands live in panel-major format (ps = 4, Fig. 3); inside the call
//    there is NO packing and the outer three blocking loops are skipped
//    (the matrices are small enough to stream from cache directly);
//  - assembly micro-kernels 16x4 / 8x8, unroll 4, reading panels with
//    aligned vector loads; row/column edges absorbed by the panel zero
//    padding (computed, store-masked);
//  - single-threaded (the paper: "BLASFEO currently provides only
//    single-threaded routines for SMMs").
//
// The plan carries up-front ConvertOps so it can execute from col-major
// inputs, but — matching BLASFEO's contract that the application already
// stores panel-major — they are flagged conversion_outside_timing and the
// pricer excludes them unless explicitly asked (ablation A3 includes them
// to quantify the Related-Work caveat that the format "is not necessarily
// useful in practical applications").
#pragma once

#include "src/libs/gemm_interface.h"

namespace smm::libs {

const GemmStrategy& blasfeo_like();

}  // namespace smm::libs
