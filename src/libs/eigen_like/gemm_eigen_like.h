// Eigen-style GEMM strategy (paper Table I column 4):
//  - row-major mindset: outermost blocking over M (ii -> kk -> jj);
//  - packs both operands like the others, but the kernel is plain C++
//    ("none" assembly layers): unroll 1, compiler scheduling, B elements
//    broadcast through dup instead of by-lane FMA;
//  - main tile 12x4 with smaller compiler-generated edge fallbacks;
//  - fixed 2-D grid parallelization (the paper groups Eigen with OpenBLAS
//    in Section III-D).
#pragma once

#include "src/libs/gemm_interface.h"

namespace smm::libs {

const GemmStrategy& eigen_like();

}  // namespace smm::libs
