#include "src/libs/eigen_like/gemm_eigen_like.h"

#include "src/libs/goto_common.h"

namespace smm::libs {

namespace {

class EigenLike final : public GemmStrategy {
 public:
  EigenLike() {
    traits_.name = "eigen";
    traits_.assembly_layers = "none";
    traits_.unroll = 1;
    traits_.kernel_tiles = "12x4";
    traits_.packs_a = true;
    traits_.packs_b = true;
    traits_.edge = EdgeStrategy::kEdgeKernels;
    traits_.parallel = ParallelMethod::kGrid2D;

    cfg_.tiles.family = "eigen";
    cfg_.tiles.mr = 12;
    cfg_.tiles.nr = 4;
    cfg_.tiles.m_chunks = {12, 8, 4, 2, 1};
    cfg_.tiles.n_chunks = {4, 2, 1};
    cfg_.tiles.edge = EdgeStrategy::kEdgeKernels;
    cfg_.mc = 192;  // multiple of 12
    cfg_.kc = 256;
    cfg_.nc = 512;
    cfg_.block_from_m = true;
  }

  [[nodiscard]] const LibraryTraits& traits() const override {
    return traits_;
  }

  [[nodiscard]] plan::GemmPlan make_plan(GemmShape shape,
                                         plan::ScalarType scalar,
                                         int nthreads) const override {
    plan::GemmPlan plan;
    plan.strategy = traits_.name;
    plan.shape = shape;
    plan.scalar = scalar;
    GotoConfig cfg = cfg_;
    if (scalar == plan::ScalarType::kF64) {
      cfg.tiles.mr = 8;
      cfg.tiles.m_chunks = {8, 4, 2, 1};
      cfg.mc = 192;
    }
    build_grid_parallel(plan, cfg, nthreads);
    plan.validate();
    return plan;
  }

 private:
  LibraryTraits traits_;
  GotoConfig cfg_;
};

}  // namespace

const GemmStrategy& eigen_like() {
  static const EigenLike instance;
  return instance;
}

}  // namespace smm::libs
