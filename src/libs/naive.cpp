#include "src/libs/naive.h"

#include "src/common/error.h"

namespace smm::libs {

template <typename T>
void naive_gemm(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, T beta,
                MatrixView<T> c) {
  SMM_EXPECT(a.rows() == c.rows() && b.cols() == c.cols() &&
                 a.cols() == b.rows(),
             "naive_gemm dimension mismatch");
  const index_t m = c.rows();
  const index_t n = c.cols();
  const index_t k = a.cols();
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      double acc = 0.0;
      for (index_t p = 0; p < k; ++p)
        acc += static_cast<double>(a(i, p)) * static_cast<double>(b(p, j));
      const double base =
          (beta == T(0)) ? 0.0
                         : static_cast<double>(beta) *
                               static_cast<double>(c(i, j));
      c(i, j) = static_cast<T>(static_cast<double>(alpha) * acc + base);
    }
  }
}

template void naive_gemm(float, ConstMatrixView<float>,
                         ConstMatrixView<float>, float, MatrixView<float>);
template void naive_gemm(double, ConstMatrixView<double>,
                         ConstMatrixView<double>, double,
                         MatrixView<double>);

}  // namespace smm::libs
