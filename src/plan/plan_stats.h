// Structural plan statistics — op counts, packed traffic, padded-flop
// overhead, kernel mix — used by tests and by the Table I / ablation
// benches to report what each strategy actually emits.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/plan/plan.h"

namespace smm::plan {

struct PlanStats {
  index_t pack_a_ops = 0;
  index_t pack_b_ops = 0;
  index_t convert_ops = 0;
  index_t kernel_ops = 0;
  index_t barrier_ops = 0;
  index_t scale_ops = 0;
  index_t reduce_ops = 0;
  /// Elements copied by packing (sum over PackA/PackB, excl. conversions).
  index_t packed_a_elems = 0;
  index_t packed_b_elems = 0;
  /// Flops the kernels compute, including padding zeros.
  double computed_flops = 0;
  /// Flops that contribute to C (== shape.flops() for a correct plan).
  double useful_flops = 0;
  /// Kernel-op count per kernel name.
  std::map<std::string, index_t> kernel_mix;

  /// computed / useful — 1.0 means no padding waste.
  [[nodiscard]] double padding_overhead() const {
    return useful_flops > 0 ? computed_flops / useful_flops : 1.0;
  }
};

PlanStats analyze(const GemmPlan& plan);

/// Structural per-thread breakdown of the same counters: who packs what,
/// who crosses which barriers, how the kernel flops are spread. This is
/// the static complement of ThreadTiming — imbalance visible here (one
/// thread packing while its peers only cross barriers) shows up there as
/// barrier wait time.
struct ThreadOpStats {
  index_t pack_a_ops = 0;
  index_t pack_b_ops = 0;
  index_t convert_ops = 0;
  index_t kernel_ops = 0;
  index_t barrier_ops = 0;
  index_t packed_elems = 0;  ///< PackA + PackB elements this thread copies
  double computed_flops = 0;
};
std::vector<ThreadOpStats> analyze_threads(const GemmPlan& plan);

/// Measured wall-clock breakdown of one thread of one
/// execute_plan_timed() run (native_executor.h), in the Table II
/// categories. barrier_ns includes the wait, so load imbalance lands
/// here rather than inflating a peer's kernel_ns.
struct ThreadTiming {
  double pack_ns = 0;     ///< PackA/PackB/Convert ops
  double kernel_ns = 0;   ///< KernelOps
  double barrier_ns = 0;  ///< BarrierOps (arrival + wait)
  double other_ns = 0;    ///< ScaleC/ReduceC ops
  double total_ns = 0;    ///< whole per-thread op sequence
};

}  // namespace smm::plan
