// Structural plan statistics — op counts, packed traffic, padded-flop
// overhead, kernel mix — used by tests and by the Table I / ablation
// benches to report what each strategy actually emits.
#pragma once

#include <map>
#include <string>

#include "src/common/types.h"
#include "src/plan/plan.h"

namespace smm::plan {

struct PlanStats {
  index_t pack_a_ops = 0;
  index_t pack_b_ops = 0;
  index_t convert_ops = 0;
  index_t kernel_ops = 0;
  index_t barrier_ops = 0;
  index_t scale_ops = 0;
  index_t reduce_ops = 0;
  /// Elements copied by packing (sum over PackA/PackB, excl. conversions).
  index_t packed_a_elems = 0;
  index_t packed_b_elems = 0;
  /// Flops the kernels compute, including padding zeros.
  double computed_flops = 0;
  /// Flops that contribute to C (== shape.flops() for a correct plan).
  double useful_flops = 0;
  /// Kernel-op count per kernel name.
  std::map<std::string, index_t> kernel_mix;

  /// computed / useful — 1.0 means no padding waste.
  [[nodiscard]] double padding_overhead() const {
    return useful_flops > 0 ? computed_flops / useful_flops : 1.0;
  }
};

PlanStats analyze(const GemmPlan& plan);

}  // namespace smm::plan
