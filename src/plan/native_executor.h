// Native plan execution: runs a GemmPlan against real matrices, producing
// C = alpha * A * B + beta * C. This is the correctness path — every
// strategy's plan is executed through here in the test suite, and the
// examples use it via the strategy convenience wrappers.
//
// Scratch comes from the calling thread's ExecScratch arena (zero heap
// allocations once warm); repeated-B callers can additionally hoist the
// B-packing work out of the call entirely with PrepackedB.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common/aligned_buffer.h"
#include "src/common/cancel.h"
#include "src/matrix/view.h"
#include "src/plan/plan.h"
#include "src/plan/plan_stats.h"

namespace smm::plan {

/// Execute `plan` (built for exactly these shapes/layouts). Spawns
/// plan.nthreads bodies on the persistent worker pool when the plan is
/// parallel. Throws smm::Error on shape mismatch.
template <typename T>
void execute_plan(const GemmPlan& plan, T alpha, ConstMatrixView<T> a,
                  ConstMatrixView<T> b, T beta, MatrixView<T> c);

/// Cancellable execution (DESIGN.md §11): every thread consults `cancel`
/// at op boundaries — the cancelled flag each op, the deadline clock on a
/// stride — and unwinds with kCancelled / kDeadlineExceeded. A token
/// observed before the first op leaves C untouched; a mid-plan stop may
/// leave C partially updated (serving callers that need pristine-C
/// semantics wrap the call in robust::GuardedExecutor, whose snapshot
/// restore already provides them). On parallel plans the failure hook
/// poisons the plan barriers, so peers blocked in a barrier unwind
/// instead of waiting for the cancelled body.
template <typename T>
void execute_plan(const GemmPlan& plan, T alpha, ConstMatrixView<T> a,
                  ConstMatrixView<T> b, T beta, MatrixView<T> c,
                  const CancelToken& cancel);

/// execute_plan with a measured per-thread wall-clock breakdown in the
/// Table II categories (pack / kernel / barrier / other). `timings` is
/// resized to plan.nthreads and overwritten. Each op is bracketed by two
/// clock reads, so per-call overhead is higher than execute_plan — this
/// is the diagnosis path (table2_breakdown, ablate_parallel_v2), not the
/// production one.
template <typename T>
void execute_plan_timed(const GemmPlan& plan, T alpha, ConstMatrixView<T> a,
                        ConstMatrixView<T> b, T beta, MatrixView<T> c,
                        std::vector<ThreadTiming>& timings);

/// Timed + cancellable: both the per-op breakdown and the op-boundary
/// cancellation checks of the overloads above, for diagnosing serving
/// calls that carry deadline tokens. Note the autotuner does NOT sample
/// through this path — per-op instrumentation inflates small-shape wall
/// times and biases plans with fewer, larger ops (smm.cpp); tuning
/// samples bracket the plain executor instead. On a cancel unwind
/// `timings` holds the partial breakdown, which callers must discard —
/// a cancelled call is not a cost observation.
template <typename T>
void execute_plan_timed(const GemmPlan& plan, T alpha, ConstMatrixView<T> a,
                        ConstMatrixView<T> b, T beta, MatrixView<T> c,
                        std::vector<ThreadTiming>& timings,
                        const CancelToken& cancel);

/// B packed once, replayed many times — the batch/inference idiom (and
/// IAAT's amortization argument): when one B multiplies a stream of As,
/// the per-call PackB cost that Table II shows dominating small-M GEMM
/// is paid once here and every run() skips it.
///
/// A plan buffer is materialized when it is written exclusively by
/// B-side ops (PackBOp / B ConvertOp) whose written regions are pairwise
/// disjoint — i.e. B is packed once per call, not re-packed per
/// (kk, jj) block. Plans that re-use a pack buffer across blocks (K or N
/// beyond one cache block) replay unchanged instead: run() is then
/// exactly execute_plan, never wrong, just not faster. materialized()
/// reports which case this handle is.
///
/// The handle borrows `b` (direct-B tiles and non-materialized packs
/// still read it): the caller keeps B's storage alive and unmodified for
/// the life of the handle.
///
/// Sealed storage (DESIGN.md §12): each materialized buffer carries a
/// content checksum computed at pack time. While the process integrity
/// mode is on, run() re-derives the checksums before executing; a
/// mismatch means the packed bytes rotted after they were blessed, and
/// the buffer is repacked from the borrowed B (and re-verified) instead
/// of being fed to the kernels. set_repair(false) turns auto-repack into
/// a kCacheCorrupted throw. Validation+repair+execution are serialized
/// per handle (a repack must not swap bytes under a concurrent
/// executor) — callers wanting uncontended concurrency use one handle
/// per stream, or SMMKIT_ABFT=off.
template <typename T>
class PrepackedB {
 public:
  /// Pack B's blocks for `plan` once. Throws kBadShape when b does not
  /// match the plan.
  PrepackedB(std::shared_ptr<const GemmPlan> plan, ConstMatrixView<T> b);

  /// C = alpha * A * B + beta * C, skipping the materialized B packs.
  void run(T alpha, ConstMatrixView<T> a, T beta, MatrixView<T> c) const;

  /// True when at least one plan buffer is served from the handle (the
  /// fast case). False falls back to full per-call execution.
  [[nodiscard]] bool materialized() const { return materialized_; }
  [[nodiscard]] const GemmPlan& plan() const { return *plan_; }

  /// Seal-mismatch policy: true (default) repacks the rotted buffer from
  /// the borrowed B; false makes run() throw kCacheCorrupted instead.
  void set_repair(bool repair) { repair_ = repair; }

  /// Test hook: flip one storage element of the first materialized
  /// buffer (what a real bit flip in cached packed state looks like).
  /// Returns false when nothing is materialized.
  bool corrupt_storage_for_test();

  /// Executor plumbing: whether plan buffer `i` is served by this handle,
  /// and (if so) its packed contents.
  [[nodiscard]] bool serves_buffer(std::size_t i) const {
    return i < is_prepacked_.size() && is_prepacked_[i];
  }
  [[nodiscard]] const T* prepacked_data(std::size_t i) const {
    return storage_[i].data();
  }

 private:
  /// Allocation failure mid-materialization (injected or real memory
  /// pressure): drop to the non-materialized mode — correct, just the
  /// per-call packing cost comes back.
  void degrade_to_unmaterialized();

  /// Re-run the pack/convert ops that own buffer i into its storage.
  void repack_buffer(std::size_t i) const;
  /// Checksum every materialized buffer against its seal; repack (or
  /// throw) on mismatch. Caller holds integrity_mu_.
  void validate_storage_locked() const;

  std::shared_ptr<const GemmPlan> plan_;
  ConstMatrixView<T> b_;
  /// is_prepacked_[i] <=> storage_[i] holds buffer i's packed contents.
  std::vector<bool> is_prepacked_;
  /// mutable: validated (and possibly repacked in place) from const
  /// run(), under integrity_mu_.
  mutable std::vector<AlignedBuffer<T>> storage_;
  /// Content checksum of each materialized buffer, sealed at pack time.
  std::vector<std::uint64_t> seals_;
  /// unique_ptr keeps the handle movable (smm_prepack_b returns by
  /// value); run() is const, hence the pointer-to-mutex is enough.
  std::unique_ptr<std::mutex> integrity_mu_;
  bool materialized_ = false;
  bool repair_ = true;
};

}  // namespace smm::plan
